// Package bglpred is a Go reproduction of "A Meta-Learning Failure
// Predictor for Blue Gene/L Systems" (Gujrati, Li, Lan, Thakur,
// White; ICPP 2007): a three-phase failure predictor for Blue Gene/L
// RAS logs — event preprocessing, statistical and association-rule
// base prediction, and coverage-based meta-learning — together with a
// calibrated Blue Gene/L machine and RAS-log simulator standing in
// for the proprietary ANL and SDSC logs the paper evaluated on.
//
// # Quick start
//
//	profile := bglpred.ANLProfile().Scaled(0.05)
//	gen, _ := bglpred.Generate(profile)
//	pipeline := bglpred.NewPipeline(bglpred.Config{})
//	report, _ := pipeline.Run(gen.Events, nil)
//	fmt.Println(report.Evaluation.MetaSweep[0].Result.MeanPrecision)
//
// The packages under internal/ carry the implementation: raslog (RAS
// event model), catalog (the 101-subcategory taxonomy), bglsim (the
// machine/workload/fault simulator), preprocess (Phase 1), assoc
// (Apriori and FP-growth), predictor (Phases 2-3), eval (10-fold
// cross-validation), online (streaming deployment), and ftsim
// (proactive-checkpointing consumer).
package bglpred

import (
	"time"

	"bglpred/internal/bglsim"
	"bglpred/internal/catalog"
	"bglpred/internal/cluster"
	"bglpred/internal/core"
	"bglpred/internal/ecg"
	"bglpred/internal/eval"
	"bglpred/internal/faultinject"
	"bglpred/internal/lifecycle"
	"bglpred/internal/model"
	"bglpred/internal/online"
	"bglpred/internal/predictor"
	"bglpred/internal/preprocess"
	"bglpred/internal/raslog"
	"bglpred/internal/serve"
)

// Re-exported core types. The facade keeps downstream code to one
// import while the implementation stays modular.
type (
	// Event is a raw RAS record (paper Table 2 attributes).
	Event = raslog.Event
	// Severity is the CMCS severity ladder.
	Severity = raslog.Severity
	// Location is a BG/L packaging-hierarchy location.
	Location = raslog.Location
	// UniqueEvent is a compressed Phase 1 output event.
	UniqueEvent = preprocess.Event
	// Subcategory is a leaf of the 101-entry event taxonomy.
	Subcategory = catalog.Subcategory
	// MainCategory is one of the eight high-level categories.
	MainCategory = catalog.Main
	// Profile describes a synthetic system (ANL- or SDSC-like).
	Profile = bglsim.Profile
	// GenResult is a generated log with ground truth.
	GenResult = bglsim.Result
	// Config parameterizes the three-phase pipeline.
	Config = core.Config
	// Pipeline is the three-phase predictor.
	Pipeline = core.Pipeline
	// Report is a full end-to-end study result.
	Report = core.Report
	// Evaluation holds the Table 5 / Figure 4 / Figure 5 results.
	Evaluation = core.Evaluation
	// Warning is one prediction.
	Warning = predictor.Warning
	// Predictor is the common trainable-predictor interface.
	Predictor = predictor.Predictor
	// BasePredictor is the pluggable base-predictor interface the
	// meta-learner arbitrates over; implementations register under a
	// name with RegisterPredictor.
	BasePredictor = predictor.Base
	// BasePredictorFactory builds a fresh untrained base predictor.
	BasePredictorFactory = predictor.BaseFactory
	// PredictorKind classifies a base as point-of-failure or precursor
	// for arbitration purposes.
	PredictorKind = predictor.Kind
	// ECGPredictor is the event-correlation-graph base predictor
	// (registry name "ecg"): it mines a directed co-occurrence graph
	// over event signatures and warns when observed precursors reach a
	// fatal node through qualified edge chains.
	ECGPredictor = ecg.Predictor
	// ECGConfig parameterizes the event-correlation-graph predictor.
	ECGConfig = ecg.Config
	// SweepPoint is one prediction-window sweep entry.
	SweepPoint = eval.SweepPoint
	// Outcome is a precision/recall evaluation outcome.
	Outcome = eval.Outcome
	// OnlineEngine is the streaming deployment of the meta-learner.
	OnlineEngine = online.Engine
	// OnlineConfig parameterizes the streaming engine.
	OnlineConfig = online.Config
	// OnlineSnapshot is a point-in-time view of an engine's counters.
	OnlineSnapshot = online.Snapshot
	// Server is the sharded HTTP prediction service (cmd/bglserved).
	Server = serve.Server
	// ServerConfig parameterizes the prediction service.
	ServerConfig = serve.Config
	// ServedAlert is one alarm as exposed over the service's HTTP API.
	ServedAlert = serve.Alert
	// ModelArtifact is a trained predictor in its versioned on-disk
	// form: rules, statistical tables, and training provenance.
	ModelArtifact = model.Artifact
	// ModelFileInfo describes a saved artifact file (path, format
	// version, SHA-256, size).
	ModelFileInfo = model.Info
	// ModelProvenance records where and how a model was trained.
	ModelProvenance = model.Provenance
	// ModelInfo is the serving identity of a model (version, hash,
	// source) as exposed on GET /v1/model.
	ModelInfo = serve.ModelInfo
	// Checkpoint is one persisted snapshot of a server's shard state.
	Checkpoint = lifecycle.Checkpoint
	// Checkpointer periodically snapshots a server's shard state.
	Checkpointer = lifecycle.Checkpointer
	// CheckpointerConfig parameterizes the checkpointer.
	CheckpointerConfig = lifecycle.CheckpointerConfig
	// Recorder buffers recently ingested records for retraining.
	Recorder = lifecycle.Recorder
	// Retrainer re-mines the model over recent traffic and hot-swaps
	// it into a running server.
	Retrainer = lifecycle.Retrainer
	// RetrainerConfig parameterizes the retrainer.
	RetrainerConfig = lifecycle.RetrainerConfig
	// RetryPolicy bounds the backoff persistence writes use against
	// transient I/O failures.
	RetryPolicy = lifecycle.RetryPolicy
	// QuarantinedRecord is one malformed ingest line parked at
	// GET /v1/quarantine instead of failing its batch.
	QuarantinedRecord = serve.QuarantinedRecord
	// FaultInjector is the deterministic fault-injection harness for
	// chaos tests: arm named fault points with schedules, wire it into
	// ServerConfig.Inject or wrap a filesystem with NewFaultFs. Nil
	// disables every point.
	FaultInjector = faultinject.Injector
	// FaultPoint names one code location a FaultInjector can perturb.
	FaultPoint = faultinject.Point
	// FaultPlan schedules when and how an armed fault point fires.
	FaultPlan = faultinject.Plan
	// ClusterGate is the multi-node ingest router (cmd/bglgate): an
	// http.Handler routing ingest across several Servers over a
	// consistent-hash ring and merging their read paths.
	ClusterGate = cluster.Gate
	// ClusterGateConfig parameterizes a ClusterGate.
	ClusterGateConfig = cluster.Config
	// ClusterRing is the consistent-hash ring mapping midplane keys to
	// backends.
	ClusterRing = cluster.Ring
	// ClusterAlert is a served alert annotated with its backend of
	// origin, as returned by the gate's merged read path.
	ClusterAlert = cluster.Alert
	// ClusterStatus is the body of the gate's GET /v1/cluster/status.
	ClusterStatus = cluster.StatusResponse
)

// Severity levels, re-exported.
const (
	Info    = raslog.Info
	Warn    = raslog.Warning
	Severe  = raslog.Severe
	Error   = raslog.Error
	Fatal   = raslog.Fatal
	Failure = raslog.Failure
)

// ANLProfile returns the profile calibrated to the Argonne log
// (paper Tables 1 and 4).
func ANLProfile() Profile { return bglsim.ANLProfile() }

// SDSCProfile returns the profile calibrated to the San Diego log.
func SDSCProfile() Profile { return bglsim.SDSCProfile() }

// Profiles returns both calibrated profiles.
func Profiles() []Profile { return bglsim.Profiles() }

// Generate synthesizes a raw RAS log from a profile.
func Generate(p Profile) (*GenResult, error) { return bglsim.Generate(p) }

// NewPipeline builds a three-phase pipeline; the zero Config
// reproduces the paper's settings (300 s compression, confidence 0.2,
// 10-fold cross-validation, coverage-based meta-learning) with one
// deliberate deviation: minimum support defaults to 0.01, not the
// paper's 0.04, because 0.04 over fatal-anchored event-sets would
// exclude the rule families the paper's own Figure 3 prints (see
// DESIGN.md §"Minimum support" and the ablation-support experiment;
// set Rule.MinSupport to 0.04 for the paper's value).
func NewPipeline(cfg Config) *Pipeline { return core.New(cfg) }

// NewOnlineEngine wraps a trained meta-learner (from
// Pipeline.Train(...).Meta) as a streaming prediction engine.
func NewOnlineEngine(meta *predictor.Meta, cfg OnlineConfig) *OnlineEngine {
	return online.New(meta, cfg)
}

// NewServer wraps a trained meta-learner as the sharded HTTP
// prediction service: an http.Handler ingesting raw records over
// POST /v1/ingest and exposing alarms and metrics (see cmd/bglserved
// for the standalone daemon). Call Close to drain the shards.
func NewServer(meta *predictor.Meta, cfg ServerConfig) *Server {
	return serve.New(meta, cfg)
}

// PackageModel wraps a trained meta-learner (from
// Pipeline.Train(...).Meta) as a saveable artifact; prov records
// where the model came from. Save the result with its Save method,
// reload it with LoadModel, and rebuild the predictor with its Meta
// method.
func PackageModel(meta *predictor.Meta, prov ModelProvenance) (*ModelArtifact, error) {
	return model.FromMeta(meta, prov)
}

// LoadModel reads and integrity-checks a saved model artifact.
func LoadModel(path string) (*ModelArtifact, ModelFileInfo, error) {
	return model.Load(path)
}

// VerifyModel integrity-checks a saved model artifact without
// decoding it.
func VerifyModel(path string) (ModelFileInfo, error) { return model.Verify(path) }

// NewRecorder buffers at most window of event time and max records of
// accepted traffic (zero values select the defaults: 6 h, 250k). Wire
// its Observe method as ServerConfig.Observer and hand it to
// NewRetrainer.
func NewRecorder(window time.Duration, max int) *Recorder {
	return lifecycle.NewRecorder(window, max)
}

// NewCheckpointer periodically snapshots srv's shard state into
// cfg.Dir; restore on the next start with RestoreCheckpoint.
func NewCheckpointer(srv *Server, cfg CheckpointerConfig) *Checkpointer {
	return lifecycle.NewCheckpointer(srv, cfg)
}

// NewRetrainer re-mines the model over rec's window and hot-swaps the
// result into srv's shards, either periodically (Run) or on demand
// (RetrainNow).
func NewRetrainer(srv *Server, rec *Recorder, cfg RetrainerConfig) *Retrainer {
	return lifecycle.NewRetrainer(srv, rec, cfg)
}

// RestoreCheckpoint installs the checkpoint saved in dir into a
// freshly built server; wantSHA guards against restoring state taken
// against a different model (pass "" to skip the check). A missing
// checkpoint returns (nil, nil): a cold start.
func RestoreCheckpoint(srv *Server, dir, wantSHA string) (*Checkpoint, error) {
	return lifecycle.Restore(srv, dir, wantSHA)
}

// RegisterPredictor adds a named base predictor to the registry, so
// Config.Predictors, the -predictors flags, and model artifacts can
// select it. Call from an init function; duplicate names panic.
func RegisterPredictor(name string, factory BasePredictorFactory) {
	predictor.Register(name, factory)
}

// NewBasePredictor builds a fresh untrained base predictor by
// registry name ("statistical" (alias "stat"), "rule", "ecg", or
// anything added with RegisterPredictor).
func NewBasePredictor(name string) (BasePredictor, error) { return predictor.NewBase(name) }

// RegisteredPredictors lists the registered base-predictor names in
// registration order.
func RegisteredPredictors() []string { return predictor.Registered() }

// ResolvePredictors canonicalizes a base-predictor selection (e.g.
// from a comma-split flag), failing fast on unknown or duplicate
// names with an error that lists the known set.
func ResolvePredictors(names []string) ([]string, error) { return predictor.Resolve(names) }

// NewECGPredictor builds the event-correlation-graph base predictor
// with the given configuration (zero value selects the defaults).
func NewECGPredictor(cfg ECGConfig) *ECGPredictor { return ecg.New(cfg) }

// PaperWindows returns the paper's prediction windows, 5 to 60
// minutes in 5-minute steps.
func PaperWindows() []time.Duration { return eval.PaperWindows() }

// Subcategories returns the full 101-entry event taxonomy (paper
// Table 3). The slice is shared; do not mutate.
func Subcategories() []Subcategory { return catalog.All() }

// SubcategoryByID resolves a taxonomy entry by its dense ID (the item
// identifiers appearing in mined rules).
func SubcategoryByID(id int) (*Subcategory, bool) { return catalog.ByID(id) }

// SubcategoryName resolves a rule item ID to its name, for rendering
// rules in the paper's Figure 3 style via assoc.Rule.Format.
func SubcategoryName(id int) string {
	if s, ok := catalog.ByID(id); ok {
		return s.Name
	}
	return "?"
}

// ReadLogFile loads a serialized RAS log in either the text dialect
// or the binary format (sniffed by magic) — whatever cmd/bglgen or
// cmd/bglconvert wrote.
func ReadLogFile(path string) ([]Event, error) { return raslog.ReadAnyFile(path) }

// WriteLogFile saves a raw RAS log.
func WriteLogFile(path string, events []Event) error { return raslog.WriteFile(path, events) }

// NewFaultInjector builds a deterministic fault-injection harness
// seeded for reproducible chaos runs. Arm points with Set, wire it
// into ServerConfig.Inject, and wrap filesystems with NewFaultFs.
func NewFaultInjector(seed uint64) *FaultInjector { return faultinject.New(seed) }

// NewFaultFs wraps a model filesystem so inj's fs.* fault points can
// inject ENOSPC, short writes, failed fsyncs and renames, and read
// corruption. Pass it as CheckpointerConfig.FS or RetrainerConfig.FS.
func NewFaultFs(inj *FaultInjector, base model.FS) model.FS {
	return faultinject.NewFs(inj, base)
}

// NewClusterGate builds the multi-node ingest router over the
// configured bglserved base URLs (see cmd/bglgate for the standalone
// daemon). Call Start for background probing and stream fan-in, Close
// to shut down.
func NewClusterGate(cfg ClusterGateConfig) (*ClusterGate, error) { return cluster.New(cfg) }

// NewClusterRing builds a consistent-hash ring over backend
// identities with vnodes virtual nodes per member (<=0 selects the
// default, 128).
func NewClusterRing(members []string, vnodes int) *ClusterRing {
	return cluster.NewRing(members, vnodes)
}

// ClusterLocationKey returns the ring routing key for a record's
// location: its rack/midplane prefix, the same granularity the
// in-process sharder partitions by.
func ClusterLocationKey(loc Location) string { return cluster.LocationKey(loc) }
