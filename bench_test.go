package bglpred

// One benchmark per paper table and figure (backed by the experiments
// registry DESIGN.md §4 indexes), plus micro-benchmarks for the
// hot paths: generation, classification, Phase 1 compression, rule
// mining per window, rule matching, and online ingestion.
//
// Benchmarks run at a reduced scale so `go test -bench=.` finishes in
// minutes; cmd/bglbench reproduces the same experiments at any scale.

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bglpred/internal/assoc"
	"bglpred/internal/bglsim"
	"bglpred/internal/catalog"
	"bglpred/internal/cluster"
	"bglpred/internal/ecg"
	"bglpred/internal/experiments"
	"bglpred/internal/ledger"
	"bglpred/internal/lifecycle"
	"bglpred/internal/model"
	"bglpred/internal/online"
	"bglpred/internal/predictor"
	"bglpred/internal/preprocess"
	"bglpred/internal/raslog"
	"bglpred/internal/serve"
)

const benchScale = 0.1

var benchCtxOnce struct {
	sync.Once
	ctx *experiments.Context
}

// benchCtx shares one generated dataset across all experiment benches.
func benchCtx() *experiments.Context {
	benchCtxOnce.Do(func() {
		benchCtxOnce.ctx = experiments.NewContext(benchScale, 5)
	})
	return benchCtxOnce.ctx
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	ctx := benchCtx()
	// Warm the dataset cache outside the timer.
	if _, err := ctx.Dataset("ANL"); err != nil {
		b.Fatal(err)
	}
	if _, err := ctx.Dataset("SDSC"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables, err := exp.Run(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("experiment produced no tables")
		}
	}
}

// ---- Paper tables ------------------------------------------------------

func BenchmarkTable1_LogSummaries(b *testing.B)          { runExperiment(b, "table1") }
func BenchmarkTable3_Categorization(b *testing.B)        { runExperiment(b, "table3") }
func BenchmarkTable4_CompressedFatalEvents(b *testing.B) { runExperiment(b, "table4") }
func BenchmarkTable5_StatisticalPredictor(b *testing.B)  { runExperiment(b, "table5") }

// ---- Paper figures -----------------------------------------------------

func BenchmarkFigure2_GapCDF(b *testing.B)           { runExperiment(b, "figure2") }
func BenchmarkFigure3_AssociationRules(b *testing.B) { runExperiment(b, "figure3") }
func BenchmarkFigure4_RuleBasedSweep(b *testing.B)   { runExperiment(b, "figure4") }
func BenchmarkFigure5_MetaLearnerSweep(b *testing.B) { runExperiment(b, "figure5") }

// ---- Secondary experiments ---------------------------------------------

func BenchmarkRuleGenWindowSelection(b *testing.B) { runExperiment(b, "rulegen-sweep") }
func BenchmarkAblationPolicy(b *testing.B)         { runExperiment(b, "ablation-policy") }
func BenchmarkAblationMiner(b *testing.B)          { runExperiment(b, "ablation-miner") }
func BenchmarkAblationCompression(b *testing.B)    { runExperiment(b, "ablation-compression") }
func BenchmarkAblationSupport(b *testing.B)        { runExperiment(b, "ablation-support") }

// ---- Micro-benchmarks ---------------------------------------------------

func benchDataset(b *testing.B, system string) *experiments.Dataset {
	b.Helper()
	d, err := benchCtx().Dataset(system)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

func BenchmarkGenerateANL(b *testing.B) {
	p := bglsim.ANLProfile().Scaled(0.02)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := bglsim.Generate(p)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Events)), "records")
	}
}

func BenchmarkClassify(b *testing.B) {
	d := benchDataset(b, "ANL")
	c := catalog.NewClassifier()
	events := d.Gen.Events
	if len(events) > 100000 {
		events = events[:100000]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range events {
			c.Classify(&events[j])
		}
	}
	b.ReportMetric(float64(len(events)), "records/op")
}

func BenchmarkPreprocess(b *testing.B) {
	d := benchDataset(b, "ANL")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		preprocess.Run(d.Gen.Events, preprocess.Options{})
	}
	b.ReportMetric(float64(len(d.Gen.Events)), "records/op")
}

// BenchmarkRuleGeneration_* reproduces the §3.3 timing claim: rule
// generation cost grows with the rule-generation window (the paper
// measured 35 s at 5 min to 167 s at 1 h on 2007 hardware).
func benchRuleGeneration(b *testing.B, window time.Duration) {
	d := benchDataset(b, "ANL")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := predictor.NewRule()
		r.Config.RuleGenWindow = window
		if err := r.Train(d.Pre.Events); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRuleGeneration_5min(b *testing.B)  { benchRuleGeneration(b, 5*time.Minute) }
func BenchmarkRuleGeneration_15min(b *testing.B) { benchRuleGeneration(b, 15*time.Minute) }
func BenchmarkRuleGeneration_30min(b *testing.B) { benchRuleGeneration(b, 30*time.Minute) }
func BenchmarkRuleGeneration_60min(b *testing.B) { benchRuleGeneration(b, time.Hour) }

// BenchmarkRuleMatching covers the paper's companion claim that "the
// rule matching process is trivial".
func BenchmarkRuleMatching(b *testing.B) {
	d := benchDataset(b, "ANL")
	r := predictor.NewRule()
	r.Config.RuleGenWindow = 15 * time.Minute
	if err := r.Train(d.Pre.Events); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Predict(d.Pre.Events, 30*time.Minute)
	}
	b.ReportMetric(float64(len(d.Pre.Events)), "events/op")
}

// BenchmarkTrainPipeline measures the full retraining path at ANL
// scale: Phase 1 compression over ~1M raw records followed by
// association-rule mining (Apriori) at a fixed 15-minute
// rule-generation window — the work one lifecycle.Retrainer cycle
// performs between hot swaps. BENCH_train.json records the tracked
// before/after numbers.
func BenchmarkTrainPipeline(b *testing.B) {
	gen, err := bglsim.Generate(bglsim.ANLProfile().Scaled(0.25))
	if err != nil {
		b.Fatal(err)
	}
	if len(gen.Events) < 1_000_000 {
		b.Fatalf("only %d records generated; the pipeline bench wants >= 1M", len(gen.Events))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pre := preprocess.Run(gen.Events, preprocess.Options{})
		r := predictor.NewRule()
		r.Config.RuleGenWindow = 15 * time.Minute
		r.Config.Miner = &assoc.Apriori{}
		if err := r.Train(pre.Events); err != nil {
			b.Fatal(err)
		}
		if r.Rules().Len() == 0 {
			b.Fatal("training produced no rules")
		}
	}
	b.ReportMetric(float64(len(gen.Events)), "records/op")
}

// BenchmarkECGMine measures event-correlation-graph mining over the
// same ~1M-record ANL-scale corpus BenchmarkTrainPipeline trains on.
// Phase 1 runs outside the timer; the timed op is ecg training —
// per-segment graph mining plus fail-path precomputation — the work a
// three-base retrain cycle adds on top of the classic pair.
// BENCH_train.json records the tracked numbers.
func BenchmarkECGMine(b *testing.B) {
	gen, err := bglsim.Generate(bglsim.ANLProfile().Scaled(0.25))
	if err != nil {
		b.Fatal(err)
	}
	if len(gen.Events) < 1_000_000 {
		b.Fatalf("only %d records generated; the mining bench wants >= 1M", len(gen.Events))
	}
	pre := preprocess.Run(gen.Events, preprocess.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := ecg.New(ecg.Config{})
		if err := p.Train(pre.Events); err != nil {
			b.Fatal(err)
		}
		if p.Graph().NodeCount() == 0 {
			b.Fatal("mining produced an empty graph")
		}
	}
	b.ReportMetric(float64(len(gen.Events)), "records/op")
	b.ReportMetric(float64(len(pre.Events)), "events/op")
}

func BenchmarkStatisticalTrain(b *testing.B) {
	d := benchDataset(b, "ANL")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := predictor.NewStatistical()
		if err := s.Train(d.Pre.Events); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMetaPredict(b *testing.B) {
	d := benchDataset(b, "ANL")
	m := predictor.NewMeta()
	m.Rule.Config.RuleGenWindow = 15 * time.Minute
	if err := m.Train(d.Pre.Events); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(d.Pre.Events, 30*time.Minute)
	}
	b.ReportMetric(float64(len(d.Pre.Events)), "events/op")
}

// benchWireBodies encodes one tail both ways — the pipe dialect and
// binary wire frames — so the serve and gate benches can price the
// formats against each other on an identical record stream.
type benchWireBody struct {
	name        string
	contentType string
	body        []byte
}

func benchWireBodies(b *testing.B, tail []raslog.Event) []benchWireBody {
	b.Helper()
	var text bytes.Buffer
	tw := raslog.NewWriter(&text)
	for i := range tail {
		if err := tw.Write(&tail[i]); err != nil {
			b.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		b.Fatal(err)
	}
	var bin bytes.Buffer
	ww := raslog.NewWireWriter(&bin)
	for i := range tail {
		if err := ww.Write(&tail[i]); err != nil {
			b.Fatal(err)
		}
	}
	if err := ww.Flush(); err != nil {
		b.Fatal(err)
	}
	return []benchWireBody{
		{name: "text", contentType: "application/octet-stream", body: text.Bytes()},
		{name: "bin", contentType: raslog.WireContentType, body: bin.Bytes()},
	}
}

// BenchmarkServeIngest measures records/sec through the sharded
// serving path — HTTP handler, decode, fan-out, shard queues, engines,
// barrier — at 1, 4 and 8 shards, over both the text dialect and the
// binary wire (zero-alloc pooled decode, per-shard event batches).
func BenchmarkServeIngest(b *testing.B) {
	d := benchDataset(b, "ANL")
	cut := len(d.Gen.Events) / 2
	pre := preprocess.Run(d.Gen.Events[:cut], preprocess.Options{})
	m := predictor.NewMeta()
	m.Rule.Config.RuleGenWindow = 15 * time.Minute
	if err := m.Train(pre.Events); err != nil {
		b.Fatal(err)
	}
	tail := d.Gen.Events[cut:]

	for _, wb := range benchWireBodies(b, tail) {
		for _, shards := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("wire=%s/shards=%d", wb.name, shards), func(b *testing.B) {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					srv := serve.New(m, serve.Config{Shards: shards, Window: 30 * time.Minute})
					req := httptest.NewRequest(http.MethodPost, "/v1/ingest", bytes.NewReader(wb.body))
					req.Header.Set("Content-Type", wb.contentType)
					rec := httptest.NewRecorder()
					srv.ServeHTTP(rec, req)
					if rec.Code != http.StatusOK {
						b.Fatalf("ingest: status %d: %s", rec.Code, rec.Body.String())
					}
					b.StopTimer()
					srv.Close()
					b.StartTimer()
				}
				recsPerOp := float64(len(tail))
				b.ReportMetric(recsPerOp, "records/op")
				b.ReportMetric(recsPerOp*float64(b.N)/b.Elapsed().Seconds(), "records/s")
			})
		}
	}
}

// BenchmarkGateIngest measures the same record stream pushed through
// the cluster path instead: bglgate's HTTP handler, ring routing and
// forwards over real loopback TCP to 1, 2 and 4 single-shard bglserved
// backends. The text rows decode and re-encode every record at the
// gate; the bin rows take the pass-through path (peek the location
// prefix, forward raw sub-frames). Comparing records/s against
// BenchmarkServeIngest prices the gate hop.
func BenchmarkGateIngest(b *testing.B) {
	d := benchDataset(b, "ANL")
	cut := len(d.Gen.Events) / 2
	pre := preprocess.Run(d.Gen.Events[:cut], preprocess.Options{})
	m := predictor.NewMeta()
	m.Rule.Config.RuleGenWindow = 15 * time.Minute
	if err := m.Train(pre.Events); err != nil {
		b.Fatal(err)
	}
	tail := d.Gen.Events[cut:]

	for _, wb := range benchWireBodies(b, tail) {
		for _, nodes := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("wire=%s/backends=%d", wb.name, nodes), func(b *testing.B) {
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					urls := make([]string, nodes)
					servers := make([]*serve.Server, nodes)
					listeners := make([]*httptest.Server, nodes)
					for k := range urls {
						servers[k] = serve.New(m, serve.Config{Shards: 1, Window: 30 * time.Minute})
						listeners[k] = httptest.NewServer(servers[k])
						urls[k] = listeners[k].URL
					}
					g, err := cluster.New(cluster.Config{Backends: urls})
					if err != nil {
						b.Fatal(err)
					}
					g.ProbeNow()
					b.StartTimer()

					req := httptest.NewRequest(http.MethodPost, "/v1/ingest", bytes.NewReader(wb.body))
					req.Header.Set("Content-Type", wb.contentType)
					rec := httptest.NewRecorder()
					g.ServeHTTP(rec, req)
					if rec.Code != http.StatusOK {
						b.Fatalf("gate ingest: status %d: %s", rec.Code, rec.Body.String())
					}

					b.StopTimer()
					g.Close()
					for k := range listeners {
						listeners[k].Close()
						servers[k].Close()
					}
					b.StartTimer()
				}
				recsPerOp := float64(len(tail))
				b.ReportMetric(recsPerOp, "records/op")
				b.ReportMetric(recsPerOp*float64(b.N)/b.Elapsed().Seconds(), "records/s")
			})
		}
	}
}

func BenchmarkOnlineIngest(b *testing.B) {
	d := benchDataset(b, "ANL")
	cut := len(d.Gen.Events) / 2
	pre := preprocess.Run(d.Gen.Events[:cut], preprocess.Options{})
	m := predictor.NewMeta()
	m.Rule.Config.RuleGenWindow = 15 * time.Minute
	if err := m.Train(pre.Events); err != nil {
		b.Fatal(err)
	}
	tail := d.Gen.Events[cut:]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := online.New(m, online.Config{Window: 30 * time.Minute})
		for j := range tail {
			if _, err := e.Ingest(&tail[j]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(tail)), "records/op")
}

// BenchmarkCheckpointDurability prices one durable checkpoint under
// concurrent durability demand. mode=statefile is the classic
// per-write discipline (temp file, fsync, rename — every writer pays
// a full fsync); mode=ledger appends the same checkpoint envelope to
// the audit ledger, whose Merkle-batched group commit amortizes one
// fsync across every writer in the batch. writers scales the
// concurrent checkpointing goroutines; the amortization shows as the
// ledger rows flattening while the statefile rows pay per writer.
func BenchmarkCheckpointDurability(b *testing.B) {
	m := predictor.NewMeta()
	d := benchDataset(b, "ANL")
	cut := len(d.Gen.Events) / 4
	pre := preprocess.Run(d.Gen.Events[:cut], preprocess.Options{})
	if err := m.Train(pre.Events); err != nil {
		b.Fatal(err)
	}
	srv := serve.New(m, serve.Config{Shards: 4, Window: 30 * time.Minute})
	cp := &lifecycle.Checkpoint{
		SavedAt:      time.Now(),
		ModelSHA256:  "benchmark-model-sha",
		ModelVersion: 1,
		Shards:       srv.ExportShards(),
	}
	srv.Close()

	for _, writers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("mode=statefile/writers=%d", writers), func(b *testing.B) {
			dir := b.TempDir()
			var id atomic.Int64
			b.SetParallelism(writers)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				path := filepath.Join(dir, fmt.Sprintf("state-%d.bglc", id.Add(1)))
				for pb.Next() {
					if _, err := lifecycle.SaveCheckpointFS(model.OS, path, cp); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "checkpoints/s")
		})
		b.Run(fmt.Sprintf("mode=ledger/writers=%d", writers), func(b *testing.B) {
			led, _, err := ledger.Open(filepath.Join(b.TempDir(), "audit.bgll"), ledger.Config{})
			if err != nil {
				b.Fatal(err)
			}
			defer led.Close()
			b.SetParallelism(writers)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					framed, _, err := model.MarshalEnvelope(lifecycle.CheckpointMagic, lifecycle.CheckpointVersion, cp)
					if err != nil {
						b.Error(err)
						return
					}
					if _, err := led.Append(ledger.KindCheckpoint, framed); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "checkpoints/s")
			if c := led.Commits(); c > 0 {
				b.ReportMetric(float64(b.N)/float64(c), "checkpoints/fsync")
			}
		})
	}
}
