// Public-log workflow: the exact steps a user follows to run the
// predictor against the released LLNL Blue Gene/L trace (CFDR/USENIX
// format). Because that download is hundreds of MB, this example
// stands up a faithful miniature: it exports a synthetic log INTO the
// public format, then treats that file as if it were the real
// download — parse, convert, preprocess, predict.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"bglpred"
	"bglpred/internal/preprocess"
	"bglpred/internal/raslog"
)

func main() {
	dir, err := os.MkdirTemp("", "publiclog")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Stand-in for downloading bgl2.log from the CFDR.
	gen, err := bglpred.Generate(bglpred.ANLProfile().Scaled(0.05))
	if err != nil {
		log.Fatal(err)
	}
	publicPath := filepath.Join(dir, "bgl2.log")
	if err := raslog.WriteCFDRFile(publicPath, gen.Events); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(publicPath)
	fmt.Printf("step 0: %q stands in for the CFDR download (%.1f MB, public format)\n",
		filepath.Base(publicPath), float64(info.Size())/1e6)

	// Step 1: parse the public format. Malformed lines are skipped,
	// exactly as needed for the real trace.
	events, skipped, err := raslog.ReadCFDRFile(publicPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step 1: parsed %d records (skipped %d malformed)\n", len(events), skipped)
	raslog.SortEvents(events)

	// Step 2: convert once to the compact binary format for reuse.
	binPath := filepath.Join(dir, "bgl2.bin")
	if err := raslog.WriteBinFile(binPath, events); err != nil {
		log.Fatal(err)
	}
	binInfo, _ := os.Stat(binPath)
	fmt.Printf("step 2: converted to binary (%.1f MB, %.0fx smaller)\n",
		float64(binInfo.Size())/1e6, float64(info.Size())/float64(binInfo.Size()))

	// Step 3: Phase 1. Note: the public format has no JOB ID column,
	// so compression keys degrade to location/entry only — exactly what
	// happens on the real trace.
	pipeline := bglpred.NewPipeline(bglpred.Config{Folds: 5})
	pre := pipeline.Preprocess(events)
	fmt.Printf("step 3: %d raw -> %d unique events (%d fatal); job attribution lost: %v\n",
		pre.Stats.Input, pre.Stats.AfterSpatial, pre.Stats.FatalUnique,
		preprocess.JobImpact(pre.Events).JobImpacting == 0)

	// Step 4: cross-validate the meta-learner.
	res, err := pipeline.Evaluate(pre.Events, []time.Duration{30 * time.Minute})
	if err != nil {
		log.Fatal(err)
	}
	m := res.MetaSweep[0].Result
	fmt.Printf("step 4: meta-learner @30min on the public-format data: precision=%.3f recall=%.3f\n",
		m.MeanPrecision, m.MeanRecall)
}
