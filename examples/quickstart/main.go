// Quickstart: generate a synthetic ANL-like RAS log, run the
// three-phase pipeline on it, and print the headline numbers —
// the five-minute tour of the library.
package main

import (
	"fmt"
	"log"
	"time"

	"bglpred"
)

func main() {
	// 1. Synthesize about five weeks of an ANL-like Blue Gene/L RAS log
	//    (scale 1.0 would be the full 15 months).
	profile := bglpred.ANLProfile().Scaled(0.08)
	gen, err := bglpred.Generate(profile)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d raw RAS records (%d logical events)\n",
		len(gen.Events), len(gen.Logical))

	// 2. Build the paper-default pipeline and run the full study:
	//    Phase 1 compression, then 10-fold cross-validation of all
	//    three predictors.
	pipeline := bglpred.NewPipeline(bglpred.Config{Folds: 5})
	windows := []time.Duration{5 * time.Minute, 30 * time.Minute, time.Hour}
	report, err := pipeline.Run(gen.Events, windows)
	if err != nil {
		log.Fatal(err)
	}

	st := report.Preprocess.Stats
	fmt.Printf("phase 1: %d -> %d unique events (%.1f%% duplicates removed), %d fatal\n",
		st.Input, st.AfterSpatial, st.CompressionRatio()*100, st.FatalUnique)

	fmt.Printf("\nstatistical predictor ((5min,1h] window): precision=%.3f recall=%.3f\n",
		report.Evaluation.Statistical.MeanPrecision,
		report.Evaluation.Statistical.MeanRecall)

	fmt.Println("\nwindow      rule p/r        meta p/r")
	for i, w := range windows {
		r := report.Evaluation.RuleSweep[i].Result
		m := report.Evaluation.MetaSweep[i].Result
		fmt.Printf("%-10v  %.3f / %.3f   %.3f / %.3f\n",
			w, r.MeanPrecision, r.MeanRecall, m.MeanPrecision, m.MeanRecall)
	}

	// 3. Train production predictors on the whole log and inspect what
	//    they learned.
	trained, err := pipeline.Train(report.Preprocess.Events)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstatistical triggers: %v\n", trained.Statistical.Triggers())
	fmt.Printf("rule-generation window: %v, %d rules; top rule:\n  %s\n",
		trained.Rule.ChosenWindow(), trained.Rule.Rules().Len(),
		trained.Rule.Rules().Rules[0].Format(bglpred.SubcategoryName))
}
