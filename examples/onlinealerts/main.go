// Online alerts: deploy the trained meta-learner as a streaming
// prediction engine (paper §3.3: "practical to deploy the meta-learner
// as an online prediction engine"). The example trains on the first
// 80% of an SDSC-like log, then replays the remaining 20% record by
// record — exactly what a CMCS hook would feed a live engine — and
// scores every alert against the failures that actually followed.
package main

import (
	"fmt"
	"log"
	"time"

	"bglpred"
)

func main() {
	gen, err := bglpred.Generate(bglpred.SDSCProfile().Scaled(0.08))
	if err != nil {
		log.Fatal(err)
	}
	cut := len(gen.Events) * 8 / 10
	trainRaw, liveRaw := gen.Events[:cut], gen.Events[cut:]

	// Train offline on the historical portion.
	pipeline := bglpred.NewPipeline(bglpred.Config{})
	pre := pipeline.Preprocess(trainRaw)
	trained, err := pipeline.Train(pre.Events)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d unique events; %d rules, triggers %v\n\n",
		len(pre.Events), trained.Rule.Rules().Len(), trained.Statistical.Triggers())

	// Deploy: stream the live portion through the online engine.
	window := 30 * time.Minute
	var alerts []bglpred.Warning
	engine := bglpred.NewOnlineEngine(trained.Meta, bglpred.OnlineConfig{
		Window: window,
		OnAlert: func(w bglpred.Warning) {
			alerts = append(alerts, w)
			if len(alerts) <= 8 {
				fmt.Printf("ALERT %s  conf=%.2f  source=%-11s  %s\n",
					w.At.Format("2006-01-02 15:04:05"), w.Confidence, w.Source, truncate(w.Detail, 60))
			}
		},
	})
	var fatalTimes []time.Time
	for i := range liveRaw {
		ing, err := engine.Ingest(&liveRaw[i])
		if err != nil {
			log.Fatal(err)
		}
		if ing.Unique && ing.Sub.IsFatal() {
			fatalTimes = append(fatalTimes, liveRaw[i].Time)
		}
	}
	if len(alerts) > 8 {
		fmt.Printf("... and %d more alerts\n", len(alerts)-8)
	}

	// Score the deployment.
	tp := 0
	covered := make([]bool, len(fatalTimes))
	for _, w := range alerts {
		hit := false
		for i, f := range fatalTimes {
			if w.Covers(f) {
				covered[i] = true
				hit = true
			}
		}
		if hit {
			tp++
		}
	}
	nCovered := 0
	for _, c := range covered {
		if c {
			nCovered++
		}
	}
	c := engine.Counters()
	fmt.Printf("\nstreamed %d raw records -> %d unique (%.1f%% compressed away)\n",
		c.Ingested, c.Unique, 100*(1-float64(c.Unique)/float64(c.Ingested)))
	fmt.Printf("alerts: %d raised, %d renewed; %d/%d correct (precision %.2f)\n",
		c.Alerts, c.Renewals, tp, len(alerts), float64(tp)/float64(max(len(alerts), 1)))
	fmt.Printf("failures: %d/%d predicted (recall %.2f) with a %v window\n",
		nCovered, len(fatalTimes), float64(nCovered)/float64(max(len(fatalTimes), 1)), window)
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
