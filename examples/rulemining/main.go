// Rule mining: reproduce the paper's Figure 3 — mine association
// rules from both systems' logs and print them with confidences —
// and demonstrate the step-3 head combination on a concrete body.
package main

import (
	"fmt"
	"log"
	"time"

	"bglpred"
	"bglpred/internal/predictor"
)

func main() {
	for _, profile := range bglpred.Profiles() {
		gen, err := bglpred.Generate(profile.Scaled(0.15))
		if err != nil {
			log.Fatal(err)
		}
		pipeline := bglpred.NewPipeline(bglpred.Config{})
		pre := pipeline.Preprocess(gen.Events)

		r := predictor.NewRule()
		if err := r.Train(pre.Events); err != nil {
			log.Fatal(err)
		}

		fmt.Printf("=== %s: rule-generation window %v (paper: %s), %d rules\n",
			profile.Name, r.ChosenWindow(), paperWindow(profile.Name), r.Rules().Len())
		for i, rule := range r.Rules().Rules {
			if i >= 11 {
				fmt.Printf("  ... %d more\n", r.Rules().Len()-11)
				break
			}
			fmt.Printf("  %s\n", rule.Format(bglpred.SubcategoryName))
		}

		// Step 3 in action: bodies predicting more than one failure
		// type were merged into a single any-failure rule.
		for _, rule := range r.Rules().Rules {
			if len(rule.Heads) > 1 {
				fmt.Printf("\n  combined rule (step 3): %s\n", rule.Format(bglpred.SubcategoryName))
				fmt.Printf("    body seen %d times; followed by one of %d failure types %d times\n",
					rule.BodyCount, len(rule.Heads), rule.JointCount)
				break
			}
		}
		fmt.Println()
	}
}

func paperWindow(system string) time.Duration {
	if system == "ANL" {
		return 15 * time.Minute
	}
	return 25 * time.Minute
}
