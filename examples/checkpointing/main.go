// Checkpointing: quantify what the predictor buys a fault tolerance
// mechanism — the paper's motivating use case (§1: "successful
// prediction of potential failures can greatly enhance various fault
// tolerance mechanisms"). A long-running application on the ANL-like
// machine checkpoints (a) never, (b) periodically, (c) periodically
// plus proactively on meta-learner alarms; the example compares lost
// work and machine efficiency.
package main

import (
	"fmt"
	"log"
	"time"

	"bglpred"
	"bglpred/internal/ftsim"
)

func main() {
	gen, err := bglpred.Generate(bglpred.ANLProfile().Scaled(0.1))
	if err != nil {
		log.Fatal(err)
	}
	cut := len(gen.Events) / 2
	trainRaw, appRaw := gen.Events[:cut], gen.Events[cut:]

	pipeline := bglpred.NewPipeline(bglpred.Config{})
	trained, err := pipeline.Train(pipeline.Preprocess(trainRaw).Events)
	if err != nil {
		log.Fatal(err)
	}

	// The application phase: failures striking it, and the alarms the
	// trained meta-learner would have raised.
	appEvents := pipeline.Preprocess(appRaw).Events
	warnings := trained.Meta.Predict(appEvents, 30*time.Minute)
	var failures []time.Time
	for i := range appEvents {
		if appEvents[i].Sub.IsFatal() {
			failures = append(failures, appEvents[i].Time)
		}
	}
	start := appEvents[0].Time
	span := appEvents[len(appEvents)-1].Time.Sub(start)
	fmt.Printf("application phase: %v span, %d failures, %d alarms\n\n",
		span.Round(time.Hour), len(failures), len(warnings))

	cfg := ftsim.Config{
		CheckpointCost:   5 * time.Minute,
		PeriodicInterval: 4 * time.Hour,
		RestartCost:      10 * time.Minute,
	}
	outcomes := ftsim.CompareRegimes(start, span, failures, warnings, cfg)
	for _, o := range outcomes {
		fmt.Println(" ", o)
	}

	base := outcomes[1] // periodic
	pred := outcomes[2] // periodic + predictive
	saved := base.LostWork - pred.LostWork
	fmt.Printf("\nproactive checkpoints cut lost work by %v (%.1f%%), efficiency %.4f -> %.4f\n",
		saved.Round(time.Minute),
		100*float64(saved)/float64(max64(base.LostWork, 1)),
		base.Efficiency(), pred.Efficiency())
}

func max64(d time.Duration, floor time.Duration) time.Duration {
	if d < floor {
		return floor
	}
	return d
}
