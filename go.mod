module bglpred

go 1.22
