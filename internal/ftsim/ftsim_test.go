package ftsim

import (
	"testing"
	"time"

	"bglpred/internal/predictor"
)

var t0 = time.Date(2005, 1, 21, 0, 0, 0, 0, time.UTC)

func failuresEvery(n int, gap time.Duration) []time.Time {
	out := make([]time.Time, n)
	for i := range out {
		out[i] = t0.Add(time.Duration(i+1) * gap)
	}
	return out
}

func TestNoCheckpointLosesEverything(t *testing.T) {
	span := 100 * time.Hour
	failures := failuresEvery(4, 20*time.Hour) // at 20h, 40h, 60h, 80h
	o := simulateNoCheckpoint(t0, span, failures, Config{})
	if o.Failures != 4 {
		t.Fatalf("failures = %d", o.Failures)
	}
	if o.LostWork != 80*time.Hour {
		t.Fatalf("lost = %v, want 80h (everything since previous failure)", o.LostWork)
	}
}

func TestPeriodicBoundsLostWork(t *testing.T) {
	span := 100 * time.Hour
	failures := failuresEvery(4, 20*time.Hour)
	cfg := Config{PeriodicInterval: 2 * time.Hour}
	o := Simulate("periodic", t0, span, failures, nil, cfg)
	if o.Failures != 4 {
		t.Fatalf("failures = %d", o.Failures)
	}
	// Lost work per failure is bounded by the checkpoint interval.
	if o.LostWork > 4*2*time.Hour {
		t.Fatalf("lost = %v exceeds 4 intervals", o.LostWork)
	}
	if o.Checkpoints == 0 {
		t.Fatal("no checkpoints written")
	}
	if o.ProactiveCheckpoints != 0 {
		t.Fatal("proactive checkpoints without warnings")
	}
}

func TestProactiveCheckpointCutsLostWork(t *testing.T) {
	span := 100 * time.Hour
	failures := failuresEvery(4, 20*time.Hour)
	// Perfect predictions 15 minutes ahead of each failure.
	var warnings []predictor.Warning
	for _, f := range failures {
		warnings = append(warnings, predictor.Warning{
			At: f.Add(-15 * time.Minute), Start: f.Add(-15 * time.Minute), End: f,
		})
	}
	cfg := Config{PeriodicInterval: 8 * time.Hour}
	plain := Simulate("periodic", t0, span, failures, nil, cfg)
	pred := Simulate("periodic+predictive", t0, span, failures, warnings, cfg)
	if pred.ProactiveCheckpoints != 4 {
		t.Fatalf("proactive = %d, want 4", pred.ProactiveCheckpoints)
	}
	if pred.LostWork >= plain.LostWork {
		t.Fatalf("prediction did not cut lost work: %v vs %v", pred.LostWork, plain.LostWork)
	}
	// With a 15-minute lead, lost work per failure is at most 15min.
	if pred.LostWork > 4*15*time.Minute {
		t.Fatalf("lost = %v with 15m leads", pred.LostWork)
	}
	if pred.Efficiency() <= plain.Efficiency() {
		t.Fatalf("efficiency %v not above %v", pred.Efficiency(), plain.Efficiency())
	}
}

func TestFalseAlarmsCostOverheadOnly(t *testing.T) {
	span := 100 * time.Hour
	failures := failuresEvery(2, 40*time.Hour)
	// Ten spurious warnings predicting nothing.
	var warnings []predictor.Warning
	for i := 0; i < 10; i++ {
		at := t0.Add(time.Duration(i*7+1) * time.Hour)
		warnings = append(warnings, predictor.Warning{At: at, Start: at, End: at.Add(30 * time.Minute)})
	}
	cfg := Config{PeriodicInterval: 8 * time.Hour}
	plain := Simulate("periodic", t0, span, failures, nil, cfg)
	noisy := Simulate("periodic+predictive", t0, span, failures, warnings, cfg)
	if noisy.Overhead <= plain.Overhead {
		t.Fatalf("false alarms should add overhead: %v vs %v", noisy.Overhead, plain.Overhead)
	}
	if noisy.LostWork > plain.LostWork {
		t.Fatalf("false alarms must not increase lost work: %v vs %v", noisy.LostWork, plain.LostWork)
	}
}

func TestProactiveCooldownSuppressesBackToBack(t *testing.T) {
	span := 10 * time.Hour
	failures := []time.Time{t0.Add(5 * time.Hour)}
	// Three warnings two minutes apart; only the first should
	// checkpoint given a 10-minute cooldown.
	var warnings []predictor.Warning
	for i := 0; i < 3; i++ {
		at := t0.Add(4*time.Hour + time.Duration(i*2)*time.Minute)
		warnings = append(warnings, predictor.Warning{At: at, Start: at, End: at.Add(time.Hour)})
	}
	cfg := Config{PeriodicInterval: 100 * time.Hour} // effectively never
	o := Simulate("predictive", t0, span, failures, warnings, cfg)
	if o.ProactiveCheckpoints != 1 {
		t.Fatalf("proactive = %d, want 1 (cooldown)", o.ProactiveCheckpoints)
	}
}

func TestCompareRegimesOrdering(t *testing.T) {
	span := 200 * time.Hour
	failures := failuresEvery(8, 24*time.Hour)
	var warnings []predictor.Warning
	for _, f := range failures[:6] { // predict 6 of 8
		warnings = append(warnings, predictor.Warning{
			At: f.Add(-20 * time.Minute), Start: f.Add(-20 * time.Minute), End: f.Add(time.Minute),
		})
	}
	outcomes := CompareRegimes(t0, span, failures, warnings, Config{})
	if len(outcomes) != 3 {
		t.Fatalf("regimes = %d", len(outcomes))
	}
	none, periodic, pred := outcomes[0], outcomes[1], outcomes[2]
	if !(none.Efficiency() < periodic.Efficiency() && periodic.Efficiency() < pred.Efficiency()) {
		t.Fatalf("efficiency ordering violated: %.4f, %.4f, %.4f",
			none.Efficiency(), periodic.Efficiency(), pred.Efficiency())
	}
	for _, o := range outcomes {
		if o.String() == "" {
			t.Error("empty String")
		}
		if o.UsefulWork() <= 0 {
			t.Errorf("%s: nonpositive useful work", o.Regime)
		}
	}
}

func TestSimulateIgnoresOutOfSpanFailures(t *testing.T) {
	span := 10 * time.Hour
	failures := []time.Time{t0.Add(-time.Hour), t0.Add(5 * time.Hour), t0.Add(20 * time.Hour)}
	o := Simulate("periodic", t0, span, failures, nil, Config{})
	if o.Failures != 1 {
		t.Fatalf("failures = %d, want 1 in span", o.Failures)
	}
}

func TestEfficiencyDegenerate(t *testing.T) {
	var o Outcome
	if o.Efficiency() != 0 {
		t.Error("zero-span efficiency should be 0")
	}
}
