package ftsim

import (
	"math"
	"time"

	"bglpred/internal/predictor"
)

// YoungInterval returns Young's classic approximation of the optimal
// periodic checkpoint interval, sqrt(2 * C * MTBF), for checkpoint
// cost C — the baseline any checkpointing study tunes against.
func YoungInterval(checkpointCost, mtbf time.Duration) time.Duration {
	if checkpointCost <= 0 || mtbf <= 0 {
		return 0
	}
	return time.Duration(math.Sqrt(2 * float64(checkpointCost) * float64(mtbf)))
}

// MTBF returns the mean time between consecutive failures, or 0 for
// fewer than two failures. The input must be sorted ascending.
func MTBF(failures []time.Time) time.Duration {
	if len(failures) < 2 {
		return 0
	}
	span := failures[len(failures)-1].Sub(failures[0])
	return span / time.Duration(len(failures)-1)
}

// SweepResult is one point of an interval sweep.
type SweepResult struct {
	Interval time.Duration
	Outcome  Outcome
}

// SweepIntervals simulates the given regime at each periodic interval
// and returns the outcomes plus the index of the most efficient one.
// warnings may be nil (pure periodic checkpointing).
func SweepIntervals(start time.Time, span time.Duration, failures []time.Time,
	warnings []predictor.Warning, cfg Config, intervals []time.Duration) ([]SweepResult, int) {
	out := make([]SweepResult, len(intervals))
	best := 0
	for i, iv := range intervals {
		c := cfg
		c.PeriodicInterval = iv
		regime := "periodic"
		if warnings != nil {
			regime = "periodic+predictive"
		}
		out[i] = SweepResult{Interval: iv, Outcome: Simulate(regime, start, span, failures, warnings, c)}
		if out[i].Outcome.Efficiency() > out[best].Outcome.Efficiency() {
			best = i
		}
	}
	return out, best
}

// DefaultIntervalGrid returns a geometric grid of candidate intervals
// around Young's estimate for the observed failure trace.
func DefaultIntervalGrid(checkpointCost time.Duration, failures []time.Time) []time.Duration {
	young := YoungInterval(checkpointCost, MTBF(failures))
	if young == 0 {
		young = 4 * time.Hour
	}
	factors := []float64{0.25, 0.5, 0.75, 1, 1.5, 2, 3, 4}
	out := make([]time.Duration, len(factors))
	for i, f := range factors {
		out[i] = time.Duration(float64(young) * f).Round(time.Minute)
		if out[i] < time.Minute {
			out[i] = time.Minute
		}
	}
	return out
}
