// Package ftsim quantifies what failure prediction buys a fault
// tolerance mechanism — the paper's §1 motivation ("successful
// prediction of potential failures can greatly enhance various fault
// tolerance mechanisms"). It simulates an application checkpointing
// under three regimes: no checkpointing, periodic checkpointing, and
// periodic checkpointing augmented with prediction-triggered proactive
// checkpoints.
package ftsim

import (
	"fmt"
	"time"

	"bglpred/internal/predictor"
)

// Config shapes the checkpoint model.
type Config struct {
	// CheckpointCost is the wall-clock cost of writing one checkpoint;
	// default 5 minutes (full-memory dumps on BG/L-era I/O).
	CheckpointCost time.Duration
	// PeriodicInterval is the base checkpoint cadence; default 4h.
	PeriodicInterval time.Duration
	// ProactiveCooldown suppresses proactive checkpoints that would
	// land within this span of the previous checkpoint; default 10min.
	ProactiveCooldown time.Duration
	// RestartCost is the downtime to restart after a failure; default
	// 10 minutes.
	RestartCost time.Duration
}

func (c Config) withDefaults() Config {
	if c.CheckpointCost == 0 {
		c.CheckpointCost = 5 * time.Minute
	}
	if c.PeriodicInterval == 0 {
		c.PeriodicInterval = 4 * time.Hour
	}
	if c.ProactiveCooldown == 0 {
		c.ProactiveCooldown = 10 * time.Minute
	}
	if c.RestartCost == 0 {
		c.RestartCost = 10 * time.Minute
	}
	return c
}

// Outcome summarizes one simulated regime.
type Outcome struct {
	// Regime names the strategy.
	Regime string
	// Span is the simulated wall-clock span.
	Span time.Duration
	// Failures is the number of failures suffered.
	Failures int
	// Checkpoints is the number of checkpoints written.
	Checkpoints int
	// ProactiveCheckpoints counts those triggered by predictions.
	ProactiveCheckpoints int
	// LostWork is computation redone because it postdated the last
	// checkpoint at each failure.
	LostWork time.Duration
	// Overhead is time spent writing checkpoints and restarting.
	Overhead time.Duration
}

// UsefulWork returns span minus lost work and overhead, floored at
// zero (with no checkpointing and frequent failures, rework plus
// restart time can exceed the span — nothing useful ever completes).
func (o Outcome) UsefulWork() time.Duration {
	u := o.Span - o.LostWork - o.Overhead
	if u < 0 {
		return 0
	}
	return u
}

// Efficiency returns useful work as a fraction of the span.
func (o Outcome) Efficiency() float64 {
	if o.Span <= 0 {
		return 0
	}
	return float64(o.UsefulWork()) / float64(o.Span)
}

// String renders a one-line summary.
func (o Outcome) String() string {
	return fmt.Sprintf("%s: failures=%d ckpts=%d (proactive %d) lost=%v overhead=%v efficiency=%.4f",
		o.Regime, o.Failures, o.Checkpoints, o.ProactiveCheckpoints,
		o.LostWork.Round(time.Second), o.Overhead.Round(time.Second), o.Efficiency())
}

// Simulate runs one regime over [start, start+span). failures are the
// fatal-event times striking the application; warnings (may be nil)
// trigger proactive checkpoints at their Start when the regime allows.
// Both slices must be sorted ascending.
func Simulate(regime string, start time.Time, span time.Duration, failures []time.Time, warnings []predictor.Warning, cfg Config) Outcome {
	cfg = cfg.withDefaults()
	end := start.Add(span)
	out := Outcome{Regime: regime, Span: span}

	periodic := cfg.PeriodicInterval > 0
	var nextPeriodic time.Time
	if periodic {
		nextPeriodic = start.Add(cfg.PeriodicInterval)
	}
	wi := 0
	lastCkpt := start

	checkpoint := func(at time.Time, proactive bool) {
		out.Checkpoints++
		if proactive {
			out.ProactiveCheckpoints++
		}
		out.Overhead += cfg.CheckpointCost
		lastCkpt = at
		if periodic {
			nextPeriodic = at.Add(cfg.PeriodicInterval)
		}
	}

	// advance writes every checkpoint scheduled strictly before `until`.
	advance := func(until time.Time) {
		for {
			var candidate time.Time
			proactive := false
			if periodic && nextPeriodic.Before(until) {
				candidate = nextPeriodic
			}
			if warnings != nil && wi < len(warnings) && warnings[wi].Start.Before(until) {
				w := warnings[wi]
				if candidate.IsZero() || w.Start.Before(candidate) {
					// Proactive checkpoint at the alarm, unless one was
					// just written.
					if w.Start.Sub(lastCkpt) >= cfg.ProactiveCooldown {
						candidate = w.Start
						proactive = true
					} else {
						wi++
						continue
					}
				}
			}
			if candidate.IsZero() {
				return
			}
			checkpoint(candidate, proactive)
			if proactive {
				wi++
			}
		}
	}

	for _, f := range failures {
		if f.Before(start) || !f.Before(end) {
			continue
		}
		advance(f)
		out.Failures++
		out.LostWork += f.Sub(lastCkpt)
		out.Overhead += cfg.RestartCost
		lastCkpt = f // restart resumes from the failure point's last state; work restarts here
	}
	// Checkpoints written after the last failure still cost their
	// overhead even though nothing uses them.
	advance(end)
	return out
}

// CompareRegimes runs the three regimes of the paper's motivation over
// the same failure trace: no checkpointing, periodic, and periodic
// plus prediction-triggered proactive checkpoints.
func CompareRegimes(start time.Time, span time.Duration, failures []time.Time, warnings []predictor.Warning, cfg Config) []Outcome {
	return []Outcome{
		simulateNoCheckpoint(start, span, failures, cfg),
		Simulate("periodic", start, span, failures, nil, cfg),
		Simulate("periodic+predictive", start, span, failures, warnings, cfg),
	}
}

// simulateNoCheckpoint loses everything since the last failure.
func simulateNoCheckpoint(start time.Time, span time.Duration, failures []time.Time, cfg Config) Outcome {
	cfg = cfg.withDefaults()
	end := start.Add(span)
	out := Outcome{Regime: "no-checkpoint", Span: span}
	last := start
	for _, f := range failures {
		if f.Before(start) || !f.Before(end) {
			continue
		}
		out.Failures++
		out.LostWork += f.Sub(last)
		out.Overhead += cfg.RestartCost
		last = f
	}
	return out
}
