package ftsim

import (
	"math"
	"testing"
	"time"
)

func TestYoungInterval(t *testing.T) {
	// sqrt(2 * 5min * 24h) ≈ 2h13m.
	got := YoungInterval(5*time.Minute, 24*time.Hour)
	want := time.Duration(math.Sqrt(2 * float64(5*time.Minute) * float64(24*time.Hour)))
	if got != want {
		t.Fatalf("YoungInterval = %v, want %v", got, want)
	}
	if got < 2*time.Hour || got > 2*time.Hour+30*time.Minute {
		t.Fatalf("YoungInterval = %v, expected ~2h13m", got)
	}
	if YoungInterval(0, time.Hour) != 0 || YoungInterval(time.Minute, 0) != 0 {
		t.Fatal("degenerate inputs should give 0")
	}
}

func TestMTBF(t *testing.T) {
	failures := failuresEvery(5, 10*time.Hour)
	if got := MTBF(failures); got != 10*time.Hour {
		t.Fatalf("MTBF = %v, want 10h", got)
	}
	if MTBF(failures[:1]) != 0 || MTBF(nil) != 0 {
		t.Fatal("MTBF of <2 failures should be 0")
	}
}

func TestSweepFindsInteriorOptimum(t *testing.T) {
	// With failures every 12h and 5-minute checkpoints, tiny intervals
	// drown in overhead and huge intervals lose too much work; the
	// best efficiency lies strictly between the extremes.
	span := 600 * time.Hour
	failures := failuresEvery(49, 12*time.Hour)
	cfg := Config{CheckpointCost: 5 * time.Minute}
	intervals := []time.Duration{
		10 * time.Minute, time.Hour, 2 * time.Hour, 4 * time.Hour,
		12 * time.Hour, 48 * time.Hour,
	}
	results, best := SweepIntervals(t0, span, failures, nil, cfg, intervals)
	if len(results) != len(intervals) {
		t.Fatalf("results = %d", len(results))
	}
	if best == 0 || best == len(intervals)-1 {
		t.Fatalf("optimum at boundary (index %d); efficiencies:", best)
	}
	// Young's estimate should be competitive: simulated efficiency at
	// the nearest grid point within a few points of the sweep optimum.
	young := YoungInterval(cfg.CheckpointCost, MTBF(failures))
	nearest := 0
	for i, iv := range intervals {
		if absDur(iv-young) < absDur(intervals[nearest]-young) {
			nearest = i
		}
	}
	if results[best].Outcome.Efficiency()-results[nearest].Outcome.Efficiency() > 0.05 {
		t.Fatalf("Young estimate %v (eff %.4f) far from optimum %v (eff %.4f)",
			young, results[nearest].Outcome.Efficiency(),
			results[best].Interval, results[best].Outcome.Efficiency())
	}
}

func absDur(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}

func TestDefaultIntervalGrid(t *testing.T) {
	failures := failuresEvery(10, 24*time.Hour)
	grid := DefaultIntervalGrid(5*time.Minute, failures)
	if len(grid) != 8 {
		t.Fatalf("grid size = %d", len(grid))
	}
	for i := 1; i < len(grid); i++ {
		if grid[i] < grid[i-1] {
			t.Fatalf("grid not nondecreasing: %v", grid)
		}
	}
	// No failures: still a usable grid around the 4h default.
	empty := DefaultIntervalGrid(5*time.Minute, nil)
	if len(empty) != 8 || empty[3] != 4*time.Hour {
		t.Fatalf("fallback grid = %v", empty)
	}
}
