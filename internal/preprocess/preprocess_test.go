package preprocess

import (
	"testing"
	"time"

	"bglpred/internal/bglsim"
	"bglpred/internal/bglsim/faults"
	"bglpred/internal/catalog"
	"bglpred/internal/raslog"
)

var t0 = time.Date(2005, 1, 21, 0, 0, 0, 0, time.UTC)

// rec builds a raw record of the given subcategory.
func rec(id int64, at time.Time, subName string, job int64, loc raslog.Location, detail string) raslog.Event {
	sub := catalog.MustByName(subName)
	return raslog.Event{
		RecID:     id,
		Type:      raslog.EventTypeRAS,
		Time:      at,
		JobID:     job,
		Location:  loc,
		EntryData: sub.Phrase + detail,
		Facility:  sub.Facility,
		Severity:  sub.Severity,
	}
}

var (
	chipA = raslog.Location{Kind: raslog.KindComputeChip, Rack: 0, Midplane: 0, Card: 1, Chip: 2}
	chipB = raslog.Location{Kind: raslog.KindComputeChip, Rack: 0, Midplane: 0, Card: 3, Chip: 4}
	chipC = raslog.Location{Kind: raslog.KindComputeChip, Rack: 0, Midplane: 1, Card: 5, Chip: 6}
)

func TestTemporalCompressionMergesSameLocation(t *testing.T) {
	raw := []raslog.Event{
		rec(1, t0, "torusFailure", 7, chipA, " at 0x01"),
		rec(2, t0.Add(10*time.Second), "torusFailure", 7, chipA, " at 0x01"),
		rec(3, t0.Add(299*time.Second), "torusFailure", 7, chipA, " at 0x01"),
	}
	res := Run(raw, Options{})
	if len(res.Events) != 1 {
		t.Fatalf("got %d unique events, want 1", len(res.Events))
	}
	ue := res.Events[0]
	if ue.Count != 3 || ue.Locations != 1 || ue.RecID != 1 {
		t.Fatalf("merged event = %+v", ue)
	}
	if res.Stats.AfterTemporal != 1 || res.Stats.FatalUnique != 1 {
		t.Fatalf("stats = %+v", res.Stats)
	}
}

func TestTemporalCompressionRespectsThreshold(t *testing.T) {
	raw := []raslog.Event{
		rec(1, t0, "torusFailure", 7, chipA, " at 0x01"),
		rec(2, t0.Add(301*time.Second), "torusFailure", 7, chipA, " at 0x02"),
	}
	res := Run(raw, Options{})
	if len(res.Events) != 2 {
		t.Fatalf("got %d unique events, want 2 (gap exceeds threshold)", len(res.Events))
	}
}

func TestTemporalCompressionSlidingWindow(t *testing.T) {
	// Records 4 minutes apart chain beyond a single 300 s window; the
	// sliding merge keeps them as one unique event.
	raw := []raslog.Event{
		rec(1, t0, "torusFailure", 7, chipA, " at 0x01"),
		rec(2, t0.Add(4*time.Minute), "torusFailure", 7, chipA, " at 0x01"),
		rec(3, t0.Add(8*time.Minute), "torusFailure", 7, chipA, " at 0x01"),
	}
	res := Run(raw, Options{})
	if len(res.Events) != 1 {
		t.Fatalf("got %d unique events, want 1 (sliding window)", len(res.Events))
	}
}

func TestTemporalCompressionKeysOnJobAndLocation(t *testing.T) {
	raw := []raslog.Event{
		rec(1, t0, "torusFailure", 7, chipA, " at 0x01"),
		rec(2, t0.Add(time.Second), "torusFailure", 8, chipA, " at 0x01"),   // other job
		rec(3, t0.Add(2*time.Second), "torusFailure", 7, chipB, " at 0x01"), // other location
	}
	res := Run(raw, Options{SpatialThreshold: time.Nanosecond})
	if len(res.Events) != 3 {
		t.Fatalf("got %d unique events, want 3 (distinct job/location)", len(res.Events))
	}
}

func TestTemporalCompressionKeysOnCategoryByDefault(t *testing.T) {
	raw := []raslog.Event{
		rec(1, t0, "torusFailure", 7, chipA, " at 0x01"),
		rec(2, t0.Add(time.Second), "rtsFailure", 7, chipA, " at 0x02"),
	}
	if got := len(Run(raw, Options{}).Events); got != 2 {
		t.Fatalf("default: got %d unique, want 2 (category in key)", got)
	}
	// Paper-literal mode merges them (same JOB ID + LOCATION).
	res := Run(raw, Options{TemporalKeyIgnoresCategory: true})
	if got := len(res.Events); got != 1 {
		t.Fatalf("paper-literal: got %d unique, want 1", got)
	}
}

func TestSpatialCompressionMergesAcrossLocations(t *testing.T) {
	// Same entry data + job from three locations within the threshold:
	// one unique event with Locations=3.
	raw := []raslog.Event{
		rec(1, t0, "socketReadFailure", 7, chipA, " rc=-5"),
		rec(2, t0.Add(30*time.Second), "socketReadFailure", 7, chipB, " rc=-5"),
		rec(3, t0.Add(60*time.Second), "socketReadFailure", 7, chipC, " rc=-5"),
	}
	res := Run(raw, Options{})
	if len(res.Events) != 1 {
		t.Fatalf("got %d unique events, want 1", len(res.Events))
	}
	ue := res.Events[0]
	if ue.Locations != 3 || ue.Count != 3 {
		t.Fatalf("merged event = %+v", ue)
	}
	if res.Stats.AfterTemporal != 3 || res.Stats.AfterSpatial != 1 {
		t.Fatalf("stats = %+v", res.Stats)
	}
}

func TestSpatialCompressionRequiresSameEntryAndJob(t *testing.T) {
	raw := []raslog.Event{
		rec(1, t0, "socketReadFailure", 7, chipA, " rc=-5"),
		rec(2, t0.Add(10*time.Second), "socketReadFailure", 7, chipB, " rc=-6"), // different entry
		rec(3, t0.Add(20*time.Second), "socketReadFailure", 8, chipC, " rc=-5"), // different job
	}
	res := Run(raw, Options{})
	if len(res.Events) != 3 {
		t.Fatalf("got %d unique events, want 3", len(res.Events))
	}
}

// TestSpatialCompressionSkipsSameLocation pins the §3.1 reading that
// spatial compression merges reports "from different locations": a
// same-location repeat that survived temporal compression must start
// a new unique event, not vanish into the standing spatial window
// (which record 2 kept alive past record 1's temporal horizon).
func TestSpatialCompressionSkipsSameLocation(t *testing.T) {
	raw := []raslog.Event{
		rec(1, t0, "socketReadFailure", 7, chipA, " rc=-5"),
		rec(2, t0.Add(30*time.Second), "socketReadFailure", 7, chipB, " rc=-5"), // merges: other location
		rec(3, t0.Add(60*time.Second), "socketReadFailure", 7, chipA, " rc=-5"), // same location as representative
	}
	// Temporal compression would swallow record 3 at chipA first; keep
	// it alive by spacing it past the temporal threshold.
	raw[2].Time = t0.Add(301 * time.Second)
	res := Run(raw, Options{})
	if len(res.Events) != 2 {
		t.Fatalf("got %d unique events, want 2 (same-location repeat must survive)", len(res.Events))
	}
	if res.Events[0].Count != 2 || res.Events[1].RecID != 3 {
		t.Fatalf("events = %+v", res.Events)
	}
}

// TestSpatialMergeSameLocationKnob restores the pre-fix behaviour:
// with the knob set, the same-location repeat is absorbed.
func TestSpatialMergeSameLocationKnob(t *testing.T) {
	raw := []raslog.Event{
		rec(1, t0, "socketReadFailure", 7, chipA, " rc=-5"),
		rec(2, t0.Add(30*time.Second), "socketReadFailure", 7, chipB, " rc=-5"),
		rec(3, t0.Add(301*time.Second), "socketReadFailure", 7, chipA, " rc=-5"),
	}
	res := Run(raw, Options{SpatialMergeSameLocation: true})
	if len(res.Events) != 1 {
		t.Fatalf("got %d unique events, want 1 under the relaxed knob", len(res.Events))
	}
	if ue := res.Events[0]; ue.Count != 3 || ue.Locations != 2 {
		t.Fatalf("merged event = %+v", ue)
	}
}

func TestUnclassifiedDropped(t *testing.T) {
	raw := []raslog.Event{
		rec(1, t0, "torusFailure", 7, chipA, ""),
		{RecID: 2, Type: "RAS", Time: t0, JobID: 1, Location: chipA,
			EntryData: "gibberish nobody understands", Facility: "NOPE", Severity: raslog.Info},
	}
	res := Run(raw, Options{})
	if len(res.Events) != 1 || res.Stats.Unclassified != 1 {
		t.Fatalf("events=%d unclassified=%d", len(res.Events), res.Stats.Unclassified)
	}
}

func TestRunEmpty(t *testing.T) {
	res := Run(nil, Options{})
	if len(res.Events) != 0 || res.Stats.Input != 0 || res.Stats.CompressionRatio() != 0 {
		t.Fatalf("empty run: %+v", res.Stats)
	}
}

func TestOutputSortedAndCountsConsistent(t *testing.T) {
	gen, err := bglsim.Generate(bglsim.ANLProfile().Scaled(0.01))
	if err != nil {
		t.Fatal(err)
	}
	res := Run(gen.Events, Options{})
	total := 0
	for i := range res.Events {
		if i > 0 && res.Events[i].Time.Before(res.Events[i-1].Time) {
			t.Fatalf("output not sorted at %d", i)
		}
		if res.Events[i].Count < 1 || res.Events[i].Locations < 1 {
			t.Fatalf("bad counts at %d: %+v", i, res.Events[i])
		}
		total += res.Events[i].Count
	}
	if total+res.Stats.Unclassified != res.Stats.Input {
		t.Fatalf("count conservation: %d merged + %d dropped != %d input",
			total, res.Stats.Unclassified, res.Stats.Input)
	}
}

func TestCompressionRecoversLogicalFatalEvents(t *testing.T) {
	// The pipeline must recover the simulator's logical fatal events:
	// every logical fatal maps to exactly one unique fatal event
	// (the central guarantee Phase 1 provides to Phases 2-3).
	gen, err := bglsim.Generate(bglsim.ANLProfile().Scaled(0.02))
	if err != nil {
		t.Fatal(err)
	}
	res := Run(gen.Events, Options{})

	logicalFatal := 0
	for _, le := range gen.Logical {
		if le.Sub.IsFatal() {
			logicalFatal++
		}
	}
	got := res.Stats.FatalUnique
	// Tolerate a few percent slack: cascade members of the same
	// subcategory occasionally merge, and spread jitter can split an
	// event across a threshold boundary.
	if got < logicalFatal*95/100 || got > logicalFatal*105/100 {
		t.Fatalf("unique fatal = %d, logical fatal = %d; want within 5%%", got, logicalFatal)
	}
}

func TestCompressionRecoversCategoryDistribution(t *testing.T) {
	gen, err := bglsim.Generate(bglsim.ANLProfile().Scaled(0.02))
	if err != nil {
		t.Fatal(err)
	}
	res := Run(gen.Events, Options{})
	want := faults.FatalByMain(gen.Logical)
	got := CountByMain(res.Events, true)
	for _, m := range catalog.Mains() {
		w := want[m]
		g := got[m]
		if w == 0 {
			continue
		}
		diff := g - w
		if diff < 0 {
			diff = -diff
		}
		if float64(diff) > 0.10*float64(w)+3 {
			t.Errorf("%v: unique=%d logical=%d", m, g, w)
		}
	}
}

func TestCompressionRatioHigh(t *testing.T) {
	// CMCS logs are overwhelmingly duplicates; Phase 1 should eliminate
	// well above 90% of raw records (Liang et al. report >99%).
	gen, err := bglsim.Generate(bglsim.ANLProfile().Scaled(0.01))
	if err != nil {
		t.Fatal(err)
	}
	res := Run(gen.Events, Options{})
	if r := res.Stats.CompressionRatio(); r < 0.9 {
		t.Fatalf("compression ratio %.3f, want > 0.9", r)
	}
}

func TestFatalFilter(t *testing.T) {
	raw := []raslog.Event{
		rec(1, t0, "torusFailure", 7, chipA, ""),
		rec(2, t0.Add(10*time.Minute), "scrubCycleInfo", 7, chipA, ""),
	}
	res := Run(raw, Options{})
	f := Fatal(res.Events)
	if len(f) != 1 || f[0].Sub.Name != "torusFailure" {
		t.Fatalf("Fatal = %v", f)
	}
}

func TestCountBySubcategory(t *testing.T) {
	raw := []raslog.Event{
		rec(1, t0, "torusFailure", 7, chipA, ""),
		rec(2, t0.Add(10*time.Minute), "torusFailure", 8, chipB, " x"),
		rec(3, t0.Add(20*time.Minute), "scrubCycleInfo", 7, chipA, ""),
	}
	res := Run(raw, Options{})
	all := CountBySubcategory(res.Events, false)
	if all["torusFailure"] != 2 || all["scrubCycleInfo"] != 1 {
		t.Fatalf("all = %v", all)
	}
	fatal := CountBySubcategory(res.Events, true)
	if fatal["torusFailure"] != 2 || fatal["scrubCycleInfo"] != 0 {
		t.Fatalf("fatal = %v", fatal)
	}
}

func TestParallelClassificationMatchesSequential(t *testing.T) {
	gen, err := bglsim.Generate(bglsim.SDSCProfile().Scaled(0.02))
	if err != nil {
		t.Fatal(err)
	}
	if len(gen.Events) < shardMinRecords {
		t.Fatalf("only %d records; the Workers: 8 run would not exercise sharded compression", len(gen.Events))
	}
	seq := Run(gen.Events, Options{Workers: 1})
	par := Run(gen.Events, Options{Workers: 8})
	if seq.Stats != par.Stats {
		t.Fatalf("stats differ: sequential %+v, sharded %+v", seq.Stats, par.Stats)
	}
	for i := range seq.Events {
		s, p := &seq.Events[i], &par.Events[i]
		if s.RecID != p.RecID || s.Count != p.Count || s.Locations != p.Locations {
			t.Fatalf("event %d differs between sharded and sequential: %+v vs %+v", i, s, p)
		}
	}
}

func BenchmarkPreprocessANL1pct(b *testing.B) {
	gen, err := bglsim.Generate(bglsim.ANLProfile().Scaled(0.01))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportMetric(float64(len(gen.Events)), "records")
	for i := 0; i < b.N; i++ {
		Run(gen.Events, Options{})
	}
}
