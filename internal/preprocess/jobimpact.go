package preprocess

import "bglpred/internal/raslog"

// The paper's §3.1 results discussion flags, citing Oliner & Stearley,
// that "some of these failures are not true/actual failures from the
// perspective of applications" and names filtering them as future
// work. This file implements that filter: a fatal event impacts a job
// when the record was detected by one (it carries a JOB ID), so
// job-less fatal events — service-card trouble on an idle midplane,
// link-card faults during maintenance — can be excluded from both
// analysis and prediction targets.

// ImpactStats summarizes the job-impact split of unique fatal events.
type ImpactStats struct {
	// Fatal is the unique fatal-event count.
	Fatal int
	// JobImpacting is how many carried a JOB ID.
	JobImpacting int
}

// ImpactFraction returns the job-impacting share of fatal events.
func (s ImpactStats) ImpactFraction() float64 {
	if s.Fatal == 0 {
		return 0
	}
	return float64(s.JobImpacting) / float64(s.Fatal)
}

// JobImpact classifies unique fatal events by whether they struck a
// running job.
func JobImpact(events []Event) ImpactStats {
	var s ImpactStats
	for i := range events {
		if !events[i].Sub.IsFatal() {
			continue
		}
		s.Fatal++
		if events[i].JobID != raslog.NoJob {
			s.JobImpacting++
		}
	}
	return s
}

// FilterJobImpacting drops fatal events that no job detected,
// keeping every non-fatal event (they remain precursor material for
// the rule predictor). The result is the event stream the paper's
// future-work filter would hand to Phases 2 and 3.
func FilterJobImpacting(events []Event) []Event {
	out := make([]Event, 0, len(events))
	for i := range events {
		if events[i].Sub.IsFatal() && events[i].JobID == raslog.NoJob {
			continue
		}
		out = append(out, events[i])
	}
	return out
}
