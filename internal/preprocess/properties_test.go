package preprocess

import (
	"math/rand/v2"
	"testing"
	"time"

	"bglpred/internal/catalog"
	"bglpred/internal/raslog"
)

// randomRaw builds a random raw stream over a handful of
// subcategories, jobs and locations, heavy with duplicates.
func randomRaw(rng *rand.Rand, n int) []raslog.Event {
	subs := []string{
		"torusFailure", "socketReadFailure", "scrubCycleInfo",
		"coredumpCreated", "loadProgramFailure", "nodecardStatusInfo",
	}
	locs := []raslog.Location{chipA, chipB, chipC}
	out := make([]raslog.Event, n)
	at := t0
	for i := range out {
		at = at.Add(time.Duration(rng.IntN(120)) * time.Second)
		out[i] = rec(int64(i+1), at, subs[rng.IntN(len(subs))],
			int64(rng.IntN(3)), locs[rng.IntN(len(locs))], "")
	}
	return out
}

// reRun converts unique events back to raw records and preprocesses
// again.
func reRun(events []Event) *Result {
	raw := make([]raslog.Event, len(events))
	for i := range events {
		raw[i] = events[i].Event
	}
	return Run(raw, Options{})
}

func TestPreprocessIdempotentProperty(t *testing.T) {
	// Phase 1 output re-fed to Phase 1 must pass through unchanged:
	// surviving same-key events are farther apart than the threshold
	// by construction.
	rng := rand.New(rand.NewPCG(91, 92))
	for trial := 0; trial < 25; trial++ {
		raw := randomRaw(rng, 300)
		first := Run(raw, Options{})
		second := reRun(first.Events)
		if len(second.Events) != len(first.Events) {
			t.Fatalf("trial %d: second pass changed %d -> %d unique events",
				trial, len(first.Events), len(second.Events))
		}
		for i := range first.Events {
			if second.Events[i].RecID != first.Events[i].RecID {
				t.Fatalf("trial %d: event %d identity changed", trial, i)
			}
		}
	}
}

func TestPreprocessThresholdMonotoneProperty(t *testing.T) {
	// A larger compression threshold can only merge more: unique
	// counts are nonincreasing in the threshold.
	rng := rand.New(rand.NewPCG(93, 94))
	for trial := 0; trial < 10; trial++ {
		raw := randomRaw(rng, 400)
		prev := -1
		for _, th := range []time.Duration{30 * time.Second, 2 * time.Minute,
			5 * time.Minute, 15 * time.Minute} {
			res := Run(raw, Options{TemporalThreshold: th, SpatialThreshold: th})
			if prev >= 0 && res.Stats.AfterSpatial > prev {
				t.Fatalf("trial %d: unique count rose from %d to %d at threshold %v",
					trial, prev, res.Stats.AfterSpatial, th)
			}
			prev = res.Stats.AfterSpatial
		}
	}
}

func TestPreprocessOrderInvariants(t *testing.T) {
	// Representative record of each unique event is its earliest; the
	// output preserves input arrival order of representatives.
	rng := rand.New(rand.NewPCG(95, 96))
	raw := randomRaw(rng, 500)
	res := Run(raw, Options{})
	var prev int64
	for i := range res.Events {
		if res.Events[i].RecID < prev {
			t.Fatalf("representatives out of arrival order at %d", i)
		}
		prev = res.Events[i].RecID
	}
}

func TestPreprocessSeverityPreserved(t *testing.T) {
	rng := rand.New(rand.NewPCG(97, 98))
	raw := randomRaw(rng, 300)
	res := Run(raw, Options{})
	for i := range res.Events {
		e := &res.Events[i]
		if e.Sub.Severity != e.Severity {
			t.Fatalf("event %d: severity %v but subcategory says %v",
				i, e.Severity, e.Sub.Severity)
		}
		if e.Sub.IsFatal() != e.Severity.IsFatal() {
			t.Fatalf("event %d: fatal flag inconsistent", i)
		}
	}
	_ = catalog.NumSubcategories
}
