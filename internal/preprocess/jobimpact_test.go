package preprocess

import (
	"testing"
	"time"

	"bglpred/internal/bglsim"
	"bglpred/internal/raslog"
)

func TestJobImpactCounts(t *testing.T) {
	raw := []raslog.Event{
		rec(1, t0, "torusFailure", 7, chipA, ""),                               // job-impacting fatal
		rec(2, t0.Add(time.Hour), "torusFailure", raslog.NoJob, chipB, " x"),   // job-less fatal
		rec(3, t0.Add(2*time.Hour), "scrubCycleInfo", raslog.NoJob, chipA, ""), // non-fatal
	}
	res := Run(raw, Options{})
	s := JobImpact(res.Events)
	if s.Fatal != 2 || s.JobImpacting != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.ImpactFraction() != 0.5 {
		t.Fatalf("fraction = %v", s.ImpactFraction())
	}
}

func TestJobImpactEmpty(t *testing.T) {
	if JobImpact(nil).ImpactFraction() != 0 {
		t.Fatal("empty fraction should be 0")
	}
}

func TestFilterJobImpacting(t *testing.T) {
	raw := []raslog.Event{
		rec(1, t0, "torusFailure", 7, chipA, ""),
		rec(2, t0.Add(time.Hour), "torusFailure", raslog.NoJob, chipB, " x"),
		rec(3, t0.Add(2*time.Hour), "scrubCycleInfo", raslog.NoJob, chipA, ""),
	}
	res := Run(raw, Options{})
	got := FilterJobImpacting(res.Events)
	if len(got) != 2 {
		t.Fatalf("filtered to %d events, want 2", len(got))
	}
	for _, e := range got {
		if e.Sub.IsFatal() && e.JobID == raslog.NoJob {
			t.Fatalf("job-less fatal survived: %+v", e)
		}
	}
	// Non-fatal events must be preserved (precursor material).
	foundNonFatal := false
	for _, e := range got {
		if !e.Sub.IsFatal() {
			foundNonFatal = true
		}
	}
	if !foundNonFatal {
		t.Fatal("non-fatal event dropped by the filter")
	}
}

func TestJobImpactOnGeneratedLog(t *testing.T) {
	// On a busy simulated machine, most job-visible fatal categories
	// carry job attribution; hardware-card failures never do.
	gen, err := bglsim.Generate(bglsim.ANLProfile().Scaled(0.02))
	if err != nil {
		t.Fatal(err)
	}
	res := Run(gen.Events, Options{})
	s := JobImpact(res.Events)
	if s.Fatal == 0 {
		t.Fatal("no fatal events")
	}
	f := s.ImpactFraction()
	if f < 0.5 || f > 0.99 {
		t.Fatalf("impact fraction = %v; expected most but not all failures to strike jobs", f)
	}
	filtered := FilterJobImpacting(res.Events)
	if len(filtered) >= len(res.Events) {
		t.Fatal("filter removed nothing")
	}
	fs := JobImpact(filtered)
	if fs.JobImpacting != fs.Fatal {
		t.Fatal("filtered stream still contains job-less fatals")
	}
	if fs.JobImpacting != s.JobImpacting {
		t.Fatal("filter changed the job-impacting count")
	}
}
