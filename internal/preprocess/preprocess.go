// Package preprocess implements Phase 1 of the three-phase predictor
// (paper §3.1): event categorization, temporal compression at a single
// location, and spatial compression across locations. Its output is
// the list of unique events the base predictors learn from.
package preprocess

import (
	"runtime"
	"sync"
	"time"

	"bglpred/internal/catalog"
	"bglpred/internal/raslog"
)

// DefaultThreshold is the paper's compression threshold: 300 seconds
// for both temporal and spatial compression. The paper reports that
// larger thresholds no longer improve FAILURE compression and risk
// merging distinct events.
const DefaultThreshold = 300 * time.Second

// Options configures Phase 1. The zero value reproduces the paper.
type Options struct {
	// TemporalThreshold is the single-location coalescing window;
	// 0 means DefaultThreshold.
	TemporalThreshold time.Duration
	// SpatialThreshold is the cross-location coalescing window;
	// 0 means DefaultThreshold.
	SpatialThreshold time.Duration
	// TemporalKeyIgnoresCategory reproduces the paper's literal wording
	// (coalesce on JOB ID and LOCATION only). The default (false)
	// additionally keys on the event subcategory, which prevents a
	// precursor event from being swallowed by an unrelated event at the
	// same location; DESIGN.md §5 lists this as an ablation knob.
	TemporalKeyIgnoresCategory bool
	// Workers bounds the classification goroutines; 0 means GOMAXPROCS.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.TemporalThreshold == 0 {
		o.TemporalThreshold = DefaultThreshold
	}
	if o.SpatialThreshold == 0 {
		o.SpatialThreshold = DefaultThreshold
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Event is one unique event surviving compression.
type Event struct {
	// Event is the representative (earliest) raw record.
	raslog.Event
	// Sub is the categorization result.
	Sub *catalog.Subcategory
	// Count is how many raw records compressed into this one.
	Count int
	// Locations is how many distinct locations reported it.
	Locations int
}

// Stats counts records surviving each Phase 1 step.
type Stats struct {
	// Input is the raw record count.
	Input int
	// Unclassified is how many records matched no subcategory and were
	// dropped during categorization.
	Unclassified int
	// AfterTemporal is the unique count after temporal compression.
	AfterTemporal int
	// AfterSpatial is the final unique count.
	AfterSpatial int
	// FatalUnique is the number of unique fatal events in the output.
	FatalUnique int
}

// CompressionRatio returns 1 - output/input, the fraction of raw
// records eliminated.
func (s Stats) CompressionRatio() float64 {
	if s.Input == 0 {
		return 0
	}
	return 1 - float64(s.AfterSpatial)/float64(s.Input)
}

// Result is the Phase 1 output.
type Result struct {
	// Events is the unique-event list, ordered by representative time.
	Events []Event
	// Stats summarizes the run.
	Stats Stats
}

// Run executes Phase 1 over raw records. The input must be sorted by
// time (raslog.SortEvents); Run does not modify it.
func Run(raw []raslog.Event, opts Options) *Result {
	opts = opts.withDefaults()
	res := &Result{}
	res.Stats.Input = len(raw)

	subs := classifyParallel(raw, opts.Workers)

	// Step 2: temporal compression at a single location. Records with
	// the same JOB ID and LOCATION (and, by default, subcategory)
	// within the threshold coalesce into the earliest record.
	type tkey struct {
		job int64
		loc raslog.Location
		sub int
	}
	type tstate struct {
		idx  int // index into res.Events
		last time.Time
	}
	temporal := make(map[tkey]*tstate)
	for i := range raw {
		sub := subs[i]
		if sub == nil {
			res.Stats.Unclassified++
			continue
		}
		e := &raw[i]
		key := tkey{job: e.JobID, loc: e.Location, sub: sub.ID}
		if opts.TemporalKeyIgnoresCategory {
			key.sub = -1
		}
		if st, ok := temporal[key]; ok && e.Time.Sub(st.last) <= opts.TemporalThreshold {
			// Coalesce: sliding window keyed on the last merged record.
			ue := &res.Events[st.idx]
			ue.Count++
			st.last = e.Time
			continue
		}
		res.Events = append(res.Events, Event{Event: *e, Sub: sub, Count: 1, Locations: 1})
		temporal[key] = &tstate{idx: len(res.Events) - 1, last: e.Time}
	}
	res.Stats.AfterTemporal = len(res.Events)

	// Step 3: spatial compression across locations. Unique events with
	// the same ENTRY DATA and JOB ID within the threshold, reported
	// from different locations, merge into the earliest.
	type skey struct {
		job   int64
		entry string
	}
	type sstate struct {
		idx  int
		last time.Time
	}
	spatial := make(map[skey]*sstate)
	kept := res.Events[:0]
	for i := range res.Events {
		ue := &res.Events[i]
		key := skey{job: ue.JobID, entry: ue.EntryData}
		if st, ok := spatial[key]; ok && ue.Time.Sub(st.last) <= opts.SpatialThreshold {
			target := &kept[st.idx]
			if target.Location != ue.Location {
				target.Locations++
			}
			target.Count += ue.Count
			st.last = ue.Time
			continue
		}
		kept = append(kept, *ue)
		spatial[key] = &sstate{idx: len(kept) - 1, last: ue.Time}
	}
	res.Events = kept
	res.Stats.AfterSpatial = len(res.Events)
	for i := range res.Events {
		if res.Events[i].Sub.IsFatal() {
			res.Stats.FatalUnique++
		}
	}
	return res
}

// classifyParallel maps each record to its subcategory (nil when
// unclassifiable) using a chunked worker pool.
func classifyParallel(raw []raslog.Event, workers int) []*catalog.Subcategory {
	subs := make([]*catalog.Subcategory, len(raw))
	if len(raw) == 0 {
		return subs
	}
	if workers > len(raw) {
		workers = len(raw)
	}
	if workers <= 1 {
		c := catalog.NewClassifier()
		for i := range raw {
			subs[i], _ = c.Classify(&raw[i])
		}
		return subs
	}
	var wg sync.WaitGroup
	chunk := (len(raw) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(raw))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			c := catalog.NewClassifier()
			for i := lo; i < hi; i++ {
				subs[i], _ = c.Classify(&raw[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	return subs
}

// Fatal filters the unique events down to fatal ones.
func Fatal(events []Event) []Event {
	var out []Event
	for i := range events {
		if events[i].Sub.IsFatal() {
			out = append(out, events[i])
		}
	}
	return out
}

// CountByMain tallies unique events per main category, optionally
// restricted to fatal events — the paper's Table 4 when fatalOnly.
func CountByMain(events []Event, fatalOnly bool) map[catalog.Main]int {
	out := make(map[catalog.Main]int)
	for i := range events {
		if fatalOnly && !events[i].Sub.IsFatal() {
			continue
		}
		out[events[i].Sub.Main]++
	}
	return out
}

// CountBySubcategory tallies unique events per subcategory.
func CountBySubcategory(events []Event, fatalOnly bool) map[string]int {
	out := make(map[string]int)
	for i := range events {
		if fatalOnly && !events[i].Sub.IsFatal() {
			continue
		}
		out[events[i].Sub.Name]++
	}
	return out
}
