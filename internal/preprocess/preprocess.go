// Package preprocess implements Phase 1 of the three-phase predictor
// (paper §3.1): event categorization, temporal compression at a single
// location, and spatial compression across locations. Its output is
// the list of unique events the base predictors learn from.
//
// The pipeline is built for ANL-scale logs (4.17M raw records):
// categorization memoizes verdicts per ENTRY DATA string through
// catalog.Interner, and compression partitions records by JOB ID into
// shards that compress concurrently. Both compression keys include
// the job, so every key's record subsequence falls wholly inside one
// shard and the sharded run is bit-identical to the sequential one;
// the shard outputs are merged back into raw-record order.
package preprocess

import (
	"runtime"
	"sync"
	"time"

	"bglpred/internal/catalog"
	"bglpred/internal/raslog"
)

// DefaultThreshold is the paper's compression threshold: 300 seconds
// for both temporal and spatial compression. The paper reports that
// larger thresholds no longer improve FAILURE compression and risk
// merging distinct events.
const DefaultThreshold = 300 * time.Second

// Options configures Phase 1. The zero value reproduces the paper.
type Options struct {
	// TemporalThreshold is the single-location coalescing window;
	// 0 means DefaultThreshold.
	TemporalThreshold time.Duration
	// SpatialThreshold is the cross-location coalescing window;
	// 0 means DefaultThreshold.
	SpatialThreshold time.Duration
	// TemporalKeyIgnoresCategory reproduces the paper's literal wording
	// (coalesce on JOB ID and LOCATION only). The default (false)
	// additionally keys on the event subcategory, which prevents a
	// precursor event from being swallowed by an unrelated event at the
	// same location; DESIGN.md §5 lists this as an ablation knob.
	TemporalKeyIgnoresCategory bool
	// SpatialMergeSameLocation relaxes the paper's §3.1 wording that
	// spatial compression merges records "from different locations":
	// when set, a unique event is absorbed by a same-entry same-job
	// window even when it was reported by the window's own
	// representative location (the pre-fix behaviour). The default
	// honours the paper: a same-location repeat that survived temporal
	// compression starts a new unique event.
	SpatialMergeSameLocation bool
	// Workers bounds the classification goroutines and the compression
	// shards; 0 means GOMAXPROCS, 1 forces the sequential path.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.TemporalThreshold == 0 {
		o.TemporalThreshold = DefaultThreshold
	}
	if o.SpatialThreshold == 0 {
		o.SpatialThreshold = DefaultThreshold
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Event is one unique event surviving compression.
type Event struct {
	// Event is the representative (earliest) raw record.
	raslog.Event
	// Sub is the categorization result.
	Sub *catalog.Subcategory
	// Count is how many raw records compressed into this one.
	Count int
	// Locations is how many distinct locations reported it.
	Locations int
}

// Stats counts records surviving each Phase 1 step.
type Stats struct {
	// Input is the raw record count.
	Input int
	// Unclassified is how many records matched no subcategory and were
	// dropped during categorization.
	Unclassified int
	// AfterTemporal is the unique count after temporal compression.
	AfterTemporal int
	// AfterSpatial is the final unique count.
	AfterSpatial int
	// FatalUnique is the number of unique fatal events in the output.
	FatalUnique int
}

// CompressionRatio returns 1 - output/input, the fraction of raw
// records eliminated.
func (s Stats) CompressionRatio() float64 {
	if s.Input == 0 {
		return 0
	}
	return 1 - float64(s.AfterSpatial)/float64(s.Input)
}

// Result is the Phase 1 output.
type Result struct {
	// Events is the unique-event list, ordered by representative time.
	Events []Event
	// Stats summarizes the run.
	Stats Stats
}

// maxShards bounds compression fan-out: beyond this, merge overhead
// outgrows the per-shard win.
const maxShards = 16

// shardMinRecords gates sharding: short inputs compress sequentially.
const shardMinRecords = 4096

// Run executes Phase 1 over raw records. The input must be sorted by
// time (raslog.SortEvents); Run does not modify it.
func Run(raw []raslog.Event, opts Options) *Result {
	opts = opts.withDefaults()
	res := &Result{}
	res.Stats.Input = len(raw)

	subs := classifyParallel(raw, opts.Workers)

	shards := opts.Workers
	if shards > maxShards {
		shards = maxShards
	}
	if shards <= 1 || len(raw) < shardMinRecords {
		sh := compressShard(raw, subs, nil, opts)
		res.Events = sh.events
		res.Stats.Unclassified = sh.unclassified
		res.Stats.AfterTemporal = sh.afterTemporal
	} else {
		res.Events, res.Stats.Unclassified, res.Stats.AfterTemporal =
			compressSharded(raw, subs, shards, opts)
	}
	res.Stats.AfterSpatial = len(res.Events)
	for i := range res.Events {
		if res.Events[i].Sub.IsFatal() {
			res.Stats.FatalUnique++
		}
	}
	return res
}

// tkey keys temporal compression: same JOB ID and LOCATION (and, by
// default, subcategory) within the threshold coalesce.
type tkey struct {
	job int64
	loc raslog.Location
	sub int
}

// skey keys spatial compression: same ENTRY DATA and JOB ID within
// the threshold merge.
type skey struct {
	job   int64
	entry string
}

// shardOut is the compression result of one shard: unique events plus
// the raw index of each representative, in ascending order.
type shardOut struct {
	events        []Event
	rawIdx        []int
	unclassified  int
	afterTemporal int
}

// compressShard runs temporal then spatial compression over the raw
// records whose indices are listed in idxs (nil means all), reading
// classifications from subs (subcategory ID, -1 for unclassified).
func compressShard(raw []raslog.Event, subs []int32, idxs []int, opts Options) shardOut {
	var sh shardOut

	// Step 2: temporal compression at a single location. Records with
	// the same JOB ID and LOCATION (and, by default, subcategory)
	// within the threshold coalesce into the earliest record; the
	// window slides on the last merged record.
	type tstate struct {
		idx  int // index into sh.events
		last time.Time
	}
	n := len(raw)
	if idxs != nil {
		n = len(idxs)
	}
	temporal := make(map[tkey]tstate)
	for j := 0; j < n; j++ {
		i := j
		if idxs != nil {
			i = idxs[j]
		}
		sid := subs[i]
		if sid < 0 {
			sh.unclassified++
			continue
		}
		e := &raw[i]
		key := tkey{job: e.JobID, loc: e.Location, sub: int(sid)}
		if opts.TemporalKeyIgnoresCategory {
			key.sub = -1
		}
		if st, ok := temporal[key]; ok && e.Time.Sub(st.last) <= opts.TemporalThreshold {
			sh.events[st.idx].Count++
			st.last = e.Time
			temporal[key] = st
			continue
		}
		sub, _ := catalog.ByID(int(sid))
		sh.events = append(sh.events, Event{Event: *e, Sub: sub, Count: 1, Locations: 1})
		sh.rawIdx = append(sh.rawIdx, i)
		temporal[key] = tstate{idx: len(sh.events) - 1, last: e.Time}
	}
	sh.afterTemporal = len(sh.events)

	// Step 3: spatial compression across locations. Unique events with
	// the same ENTRY DATA and JOB ID within the threshold, reported
	// from different locations, merge into the earliest. The window
	// remembers its representative's location so a same-location
	// repeat is only absorbed when SpatialMergeSameLocation is set.
	type sstate struct {
		idx  int
		last time.Time
		loc  raslog.Location
	}
	spatial := make(map[skey]sstate)
	kept := sh.events[:0]
	keptIdx := sh.rawIdx[:0]
	for i := range sh.events {
		ue := &sh.events[i]
		key := skey{job: ue.JobID, entry: ue.EntryData}
		if st, ok := spatial[key]; ok && ue.Time.Sub(st.last) <= opts.SpatialThreshold &&
			(opts.SpatialMergeSameLocation || ue.Location != st.loc) {
			target := &kept[st.idx]
			if target.Location != ue.Location {
				target.Locations++
			}
			target.Count += ue.Count
			st.last = ue.Time
			spatial[key] = st
			continue
		}
		kept = append(kept, *ue)
		keptIdx = append(keptIdx, sh.rawIdx[i])
		spatial[key] = sstate{idx: len(kept) - 1, last: ue.Time, loc: ue.Location}
	}
	sh.events = kept
	sh.rawIdx = keptIdx
	return sh
}

// compressSharded partitions records by JOB ID hash, compresses the
// shards concurrently, and merges the outputs back into raw-record
// order. Both compression keys contain the job, so no key spans
// shards and the result equals the sequential run's exactly.
func compressSharded(raw []raslog.Event, subs []int32, shards int, opts Options) (events []Event, unclassified, afterTemporal int) {
	part := make([][]int, shards)
	est := len(raw)/shards + 1
	for s := range part {
		part[s] = make([]int, 0, est)
	}
	for i := range raw {
		s := jobShard(raw[i].JobID, shards)
		part[s] = append(part[s], i)
	}

	outs := make([]shardOut, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		if len(part[s]) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			outs[s] = compressShard(raw, subs, part[s], opts)
		}(s)
	}
	wg.Wait()

	total := 0
	for s := range outs {
		unclassified += outs[s].unclassified
		afterTemporal += outs[s].afterTemporal
		total += len(outs[s].events)
	}

	// K-way merge by representative raw index: raw is time-sorted, so
	// index order is time order with input-order tie-breaking — the
	// exact order the sequential pass emits.
	events = make([]Event, 0, total)
	heads := make([]int, shards)
	for len(events) < total {
		best, bestIdx := -1, 0
		for s := 0; s < shards; s++ {
			if heads[s] >= len(outs[s].events) {
				continue
			}
			if idx := outs[s].rawIdx[heads[s]]; best < 0 || idx < bestIdx {
				best, bestIdx = s, idx
			}
		}
		events = append(events, outs[best].events[heads[best]])
		heads[best]++
	}
	return events, unclassified, afterTemporal
}

// jobShard maps a job ID onto a shard. Fibonacci hashing spreads
// sequential job IDs evenly.
func jobShard(job int64, shards int) int {
	h := uint64(job) * 0x9E3779B97F4A7C15
	return int(h % uint64(shards))
}

// classifyParallel maps each record to its subcategory ID (-1 when
// unclassifiable) using a chunked worker pool. Each worker owns an
// interning classifier, so the 101-signature keyword scan runs once
// per distinct ENTRY DATA string rather than once per record.
func classifyParallel(raw []raslog.Event, workers int) []int32 {
	subs := make([]int32, len(raw))
	if len(raw) == 0 {
		return subs
	}
	if workers > len(raw) {
		workers = len(raw)
	}
	classify := func(lo, hi int) {
		in := catalog.NewInterner(0)
		for i := lo; i < hi; i++ {
			if s, ok := in.Classify(&raw[i]); ok {
				subs[i] = int32(s.ID)
			} else {
				subs[i] = -1
			}
		}
	}
	if workers <= 1 {
		classify(0, len(raw))
		return subs
	}
	var wg sync.WaitGroup
	chunk := (len(raw) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(raw))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			classify(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return subs
}

// Fatal filters the unique events down to fatal ones.
func Fatal(events []Event) []Event {
	var out []Event
	for i := range events {
		if events[i].Sub.IsFatal() {
			out = append(out, events[i])
		}
	}
	return out
}

// CountByMain tallies unique events per main category, optionally
// restricted to fatal events — the paper's Table 4 when fatalOnly.
func CountByMain(events []Event, fatalOnly bool) map[catalog.Main]int {
	out := make(map[catalog.Main]int)
	for i := range events {
		if fatalOnly && !events[i].Sub.IsFatal() {
			continue
		}
		out[events[i].Sub.Main]++
	}
	return out
}

// CountBySubcategory tallies unique events per subcategory.
func CountBySubcategory(events []Event, fatalOnly bool) map[string]int {
	out := make(map[string]int)
	for i := range events {
		if fatalOnly && !events[i].Sub.IsFatal() {
			continue
		}
		out[events[i].Sub.Name]++
	}
	return out
}
