package catalog

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"bglpred/internal/raslog"
)

func TestTaxonomySizeMatchesPaperTable3(t *testing.T) {
	if got := len(All()); got != NumSubcategories {
		t.Fatalf("taxonomy has %d subcategories, want %d", got, NumSubcategories)
	}
	want := map[Main]int{
		Application: 12,
		Iostream:    8,
		Kernel:      20,
		Memory:      22,
		Midplane:    6,
		Network:     11,
		NodeCard:    10,
		Other:       12,
	}
	got := CountByMain()
	for m, n := range want {
		if got[m] != n {
			t.Errorf("%v: %d subcategories, want %d (paper Table 3)", m, got[m], n)
		}
	}
	total := 0
	for _, n := range want {
		total += n
	}
	if total != NumSubcategories {
		t.Fatalf("paper Table 3 totals %d, want %d", total, NumSubcategories)
	}
}

func TestTaxonomyNamesUniqueAndWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range All() {
		if seen[s.Name] {
			t.Errorf("duplicate subcategory name %q", s.Name)
		}
		seen[s.Name] = true
		if s.Name == "" || s.Phrase == "" || len(s.Keys) == 0 {
			t.Errorf("%q: incomplete definition", s.Name)
		}
		if !s.Main.Valid() {
			t.Errorf("%q: invalid main category", s.Name)
		}
		if !s.Severity.Valid() {
			t.Errorf("%q: invalid severity", s.Name)
		}
		if s.Facility == "" {
			t.Errorf("%q: empty facility", s.Name)
		}
		// Every key must occur in the canonical phrase; otherwise the
		// classifier could never match generated records.
		phrase := strings.ToLower(s.Phrase)
		for _, k := range s.Keys {
			if !strings.Contains(phrase, strings.ToLower(k)) {
				t.Errorf("%q: key %q not in phrase %q", s.Name, k, s.Phrase)
			}
		}
	}
}

func TestFigure3RuleNamesExist(t *testing.T) {
	// Every event name appearing in paper Figure 3's printed rules must
	// be a taxonomy member ("Functioanlity" is the paper's typo for
	// Functionality).
	names := []string{
		"nodemapFileError", "nodemapCreateFailure",
		"controlNetworkNMCSError", "nodeConnectionFailure",
		"ddrErrorCorrectionInfo", "maskInfo", "socketReadFailure",
		"ciodRestartInfo", "midplaneStartInfo", "controlNetworkInfo",
		"rtsLinkFailure", "nodecardUPDMismatch",
		"nodecardAssemblySevereDiscovery", "nodecardFunctionalityWarning",
		"midplaneLinkcardRestartWarning", "linkcardFailure",
		"coredumpCreated", "loadProgramFailure", "BGLMasterRestartInfo",
		"cacheFailure", "nodecardDiscoveryError", "endServiceWarning",
	}
	for _, name := range names {
		if _, ok := ByName(name); !ok {
			t.Errorf("paper Figure 3 name %q missing from taxonomy", name)
		}
	}
}

func eventFor(s *Subcategory, detail string) raslog.Event {
	return raslog.Event{
		RecID:     1,
		Type:      raslog.EventTypeRAS,
		Time:      time.Date(2005, 1, 21, 0, 0, 0, 0, time.UTC),
		JobID:     7,
		Location:  raslog.Location{Kind: raslog.KindComputeChip, Rack: 1},
		EntryData: s.Phrase + detail,
		Facility:  s.Facility,
		Severity:  s.Severity,
	}
}

func TestClassifierSelfConsistent(t *testing.T) {
	// The generator emits each subcategory's canonical phrase; the
	// classifier must map every one of the 101 phrases back to its own
	// subcategory — this is the taxonomy's central invariant.
	c := NewClassifier()
	for i := range All() {
		s := &All()[i]
		ev := eventFor(s, "")
		got, ok := c.Classify(&ev)
		if !ok {
			t.Errorf("%q: classifier found no match", s.Name)
			continue
		}
		if got.Name != s.Name {
			t.Errorf("%q classified as %q", s.Name, got.Name)
		}
	}
}

func TestClassifierToleratesDetailSuffixes(t *testing.T) {
	// Generated ENTRY DATA often carries variable detail after the
	// canonical phrase (addresses, counts, node numbers). Suffixes must
	// not change classification.
	c := NewClassifier()
	suffixes := []string{
		" at address 0x00fe4a10",
		".. 3145 total",
		" (node 512)",
		", rc=-1",
	}
	for i := range All() {
		s := &All()[i]
		for _, suffix := range suffixes {
			ev := eventFor(s, suffix)
			got, ok := c.Classify(&ev)
			if !ok || got.Name != s.Name {
				t.Errorf("%q + %q classified as %v", s.Name, suffix, got)
			}
		}
	}
}

func TestClassifierSpecificityPrefersLongerSignature(t *testing.T) {
	// "uncorrectable ecc" contains "correctable ecc" as a substring, so
	// the fatal record qualifies for both; specificity scoring must
	// pick the uncorrectable one.
	c := NewClassifier()
	s := MustByName("eccUncorrectableFailure")
	ev := eventFor(s, "")
	got, ok := c.Classify(&ev)
	if !ok || got.Name != "eccUncorrectableFailure" {
		t.Fatalf("classified as %v, want eccUncorrectableFailure", got)
	}
}

func TestClassifierNoMatch(t *testing.T) {
	c := NewClassifier()
	ev := raslog.Event{EntryData: "completely unrelated text", Facility: "NOPE"}
	if got, ok := c.Classify(&ev); ok {
		t.Fatalf("classified junk as %v", got)
	}
}

func TestClassifierSeverityIsTieBreakOnly(t *testing.T) {
	// A record with the right keywords but an unusual severity still
	// classifies (severity only breaks ties).
	c := NewClassifier()
	s := MustByName("torusFailure")
	ev := eventFor(s, "")
	ev.Severity = raslog.Error
	got, ok := c.Classify(&ev)
	if !ok || got.Name != "torusFailure" {
		t.Fatalf("classified as %v, want torusFailure", got)
	}
}

func TestByIDRoundTrip(t *testing.T) {
	for i := range All() {
		s, ok := ByID(i)
		if !ok || s.ID != i {
			t.Fatalf("ByID(%d) = %v, %v", i, s, ok)
		}
	}
	if _, ok := ByID(-1); ok {
		t.Error("ByID(-1) should fail")
	}
	if _, ok := ByID(NumSubcategories); ok {
		t.Error("ByID(len) should fail")
	}
}

func TestMustByNamePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustByName of unknown name did not panic")
		}
	}()
	MustByName("noSuchEvent")
}

func TestMainString(t *testing.T) {
	want := []string{"Application", "Iostream", "Kernel", "Memory",
		"Midplane", "Network", "NodeCard", "Other"}
	for i, m := range Mains() {
		if m.String() != want[i] {
			t.Errorf("Main(%d).String() = %q, want %q", i, m.String(), want[i])
		}
	}
	if got := Main(42).String(); got != "Main(42)" {
		t.Errorf("out-of-range String = %q", got)
	}
}

func TestTaxonomyHasFatalAndNonFatalPerMain(t *testing.T) {
	// Rule mining needs non-fatal precursors and fatal heads. Every
	// main category except Other must contain at least one fatal
	// subcategory, and the taxonomy overall needs plenty of non-fatal
	// ones.
	fatal := map[Main]int{}
	nonfatal := 0
	for _, s := range All() {
		if s.IsFatal() {
			fatal[s.Main]++
		} else {
			nonfatal++
		}
	}
	for _, m := range Mains() {
		if m == Other {
			continue
		}
		if fatal[m] == 0 {
			t.Errorf("%v has no fatal subcategory", m)
		}
	}
	if nonfatal < 40 {
		t.Errorf("only %d non-fatal subcategories; precursor mining needs more", nonfatal)
	}
}

func TestClassifyAllPhrasesDistinct(t *testing.T) {
	// No two subcategories may share a canonical phrase.
	seen := map[string]string{}
	for _, s := range All() {
		if prev, dup := seen[s.Phrase]; dup {
			t.Errorf("phrase %q shared by %s and %s", s.Phrase, prev, s.Name)
		}
		seen[s.Phrase] = s.Name
	}
}

func ExampleClassifier_Classify() {
	c := NewClassifier()
	ev := raslog.Event{
		EntryData: "uncorrectable torus error detected at 0x0bad",
		Facility:  FacKernel,
		Severity:  raslog.Fatal,
	}
	s, _ := c.Classify(&ev)
	fmt.Println(s.Name, s.Main, s.IsFatal())
	// Output: torusFailure Network true
}
