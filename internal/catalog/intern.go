package catalog

import "bglpred/internal/raslog"

// Interner is a memoizing classifier: it interns the event vocabulary
// by caching the classification verdict per exact ENTRY DATA string.
// CMCS logs are overwhelmingly duplicates — every chip of a partition
// reports the same fault text, and polling agents repeat it — so after
// the first sighting of an entry, classification is one map lookup
// instead of a 101-signature keyword scan (LogMaster makes the same
// observation: correlation mining over cluster logs becomes tractable
// online once events are interned to integer IDs).
//
// The verdict cache keys on ENTRY DATA alone; FACILITY and SEVERITY
// only break ties between subcategories whose keyword signatures both
// match, and records sharing the exact entry text share those
// attributes in CMCS logs. Callers needing the full attribute-aware
// scoring for adversarial inputs should use Classifier directly.
//
// An Interner is not safe for concurrent use; create one per
// goroutine (they share the underlying taxonomy, which is immutable).
type Interner struct {
	clf *Classifier
	// ids maps ENTRY DATA to a subcategory ID, or -1 for entries that
	// matched no signature.
	ids map[string]int32
	// maxEntries bounds the cache; on overflow the cache resets, which
	// costs re-classification, never correctness.
	maxEntries int
}

// DefaultInternerEntries bounds the verdict cache: at ~60 bytes per
// distinct entry this is a few MB, far below the cost of the raw log
// it summarizes.
const DefaultInternerEntries = 1 << 16

// NewInterner builds an interning classifier over the full taxonomy.
// maxEntries <= 0 selects DefaultInternerEntries.
func NewInterner(maxEntries int) *Interner {
	if maxEntries <= 0 {
		maxEntries = DefaultInternerEntries
	}
	return &Interner{
		clf:        NewClassifier(),
		ids:        make(map[string]int32),
		maxEntries: maxEntries,
	}
}

// Classify returns the best-matching subcategory for the record, or
// ok=false if no subcategory's signature matches. Verdicts are
// memoized per ENTRY DATA string.
func (in *Interner) Classify(e *raslog.Event) (*Subcategory, bool) {
	if id, seen := in.ids[e.EntryData]; seen {
		if id < 0 {
			return nil, false
		}
		return &taxonomy[id], true
	}
	sub, ok := in.clf.Classify(e)
	if len(in.ids) >= in.maxEntries {
		// Reset rather than evict: the working set of a log window is
		// far below the cap, so a reset is rare and the rebuild cheap.
		in.ids = make(map[string]int32, in.maxEntries/4)
	}
	if ok {
		in.ids[e.EntryData] = int32(sub.ID)
	} else {
		in.ids[e.EntryData] = -1
	}
	return sub, ok
}

// Entries reports the current size of the verdict cache.
func (in *Interner) Entries() int { return len(in.ids) }
