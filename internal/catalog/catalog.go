// Package catalog implements Phase 1's hierarchical event
// categorization for Blue Gene/L RAS records (paper §3.1, Table 3):
// eight main categories refined into 101 subcategories. Every
// subcategory carries a canonical ENTRY DATA phrase and a keyword
// signature; the Classifier maps a raw record back to its subcategory
// from the FACILITY, SEVERITY, and ENTRY DATA attributes.
package catalog

import (
	"fmt"
	"strings"

	"bglpred/internal/raslog"
)

// Main is one of the eight high-level RAS categories of paper §3.1.
type Main int

// The eight main categories, in the paper's order.
const (
	Application Main = iota
	Iostream
	Kernel
	Memory
	Midplane
	Network
	NodeCard
	Other

	numMains
)

var mainNames = [...]string{
	Application: "Application",
	Iostream:    "Iostream",
	Kernel:      "Kernel",
	Memory:      "Memory",
	Midplane:    "Midplane",
	Network:     "Network",
	NodeCard:    "NodeCard",
	Other:       "Other",
}

// String returns the category name as printed in the paper's tables.
func (m Main) String() string {
	if m < 0 || int(m) >= len(mainNames) {
		return fmt.Sprintf("Main(%d)", int(m))
	}
	return mainNames[m]
}

// Valid reports whether m is one of the eight categories.
func (m Main) Valid() bool { return m >= Application && m < numMains }

// NumMains is the number of main categories (8).
const NumMains = int(numMains)

// Mains returns the eight main categories in table order.
func Mains() []Main {
	out := make([]Main, numMains)
	for i := range out {
		out[i] = Main(i)
	}
	return out
}

// Subcategory is one leaf of the event taxonomy.
type Subcategory struct {
	// ID is the dense index of the subcategory in All(), stable across
	// a process lifetime and usable as a slice index.
	ID int
	// Name is the camel-case identifier used in mined rules
	// (e.g. "torusFailure", as in paper Figure 3).
	Name string
	// Main is the high-level category the subcategory belongs to.
	Main Main
	// Facility is the FACILITY attribute a record of this subcategory
	// carries (e.g. "KERNEL", "LINKCARD").
	Facility string
	// Severity is the SEVERITY a record of this subcategory carries.
	Severity raslog.Severity
	// Phrase is the canonical ENTRY DATA text. Generated records carry
	// the phrase possibly followed by variable detail (addresses,
	// counters); the classifier matches on Keys, not the whole phrase.
	Phrase string
	// Keys is the keyword signature: a record whose lowercased ENTRY
	// DATA contains every key qualifies for this subcategory.
	Keys []string
}

// IsFatal reports whether records of this subcategory are fatal events
// (the prediction target).
func (s *Subcategory) IsFatal() bool { return s.Severity.IsFatal() }

func (s *Subcategory) String() string { return s.Name }

// sub is a shorthand constructor used by the taxonomy table.
func sub(name string, main Main, fac string, sev raslog.Severity, phrase string, keys ...string) Subcategory {
	return Subcategory{Name: name, Main: main, Facility: fac, Severity: sev, Phrase: phrase, Keys: keys}
}

// Facility identifiers seen in BG/L RAS logs.
const (
	FacApp         = "APP"
	FacCiod        = "CIOD"
	FacKernel      = "KERNEL"
	FacLinkcard    = "LINKCARD"
	FacMMCS        = "MMCS"
	FacMonitor     = "MONITOR"
	FacHardware    = "HARDWARE"
	FacDiscovery   = "DISCOVERY"
	FacBGLMaster   = "BGLMASTER"
	FacCMCS        = "CMCS"
	FacServiceCard = "SERVICECARD"
)

// taxonomy is the full 101-subcategory table (paper Table 3: 12
// application, 8 iostream, 20 kernel, 22 memory, 6 midplane, 11
// network, 10 node card, 12 other). Names quoted in paper Figure 3's
// rule listing all appear here.
var taxonomy = []Subcategory{
	// Application (12)
	sub("loadProgramFailure", Application, FacCiod, raslog.Failure, "ciod: failed to load program image", "load", "program"),
	sub("loginFailure", Application, FacCiod, raslog.Failure, "ciod: login service unavailable to user process", "login"),
	sub("nodemapCreateFailure", Application, FacCiod, raslog.Failure, "ciod: could not create node map", "create", "node map"),
	sub("nodemapFileError", Application, FacCiod, raslog.Error, "ciod: error reading node map file", "node map", "file"),
	sub("appReadError", Application, FacApp, raslog.Error, "application read error on input descriptor", "application", "read"),
	sub("appWriteError", Application, FacApp, raslog.Error, "application write error on output descriptor", "application", "write"),
	sub("appSignalFatal", Application, FacApp, raslog.Fatal, "application terminated by signal", "application", "signal"),
	sub("appExitFailure", Application, FacApp, raslog.Failure, "application exited abnormally with nonzero status", "application", "exited"),
	sub("appLaunchWarning", Application, FacApp, raslog.Warning, "application launch retry pending on partition", "application", "launch"),
	sub("appArgumentError", Application, FacCiod, raslog.Error, "ciod: invalid argument list for application", "invalid", "argument"),
	sub("coredumpCreated", Application, FacCiod, raslog.Info, "ciod: core dump created for failed process", "core dump"),
	sub("appAssertFailure", Application, FacApp, raslog.Failure, "application assertion failed in user code", "assertion"),

	// Iostream (8)
	sub("socketReadFailure", Iostream, FacCiod, raslog.Failure, "communication failure on socket read: connection reset", "socket", "read"),
	sub("socketWriteFailure", Iostream, FacCiod, raslog.Failure, "communication failure on socket write: broken pipe", "socket", "write"),
	sub("socketCloseError", Iostream, FacCiod, raslog.Error, "communication error socket closed prematurely", "socket", "closed"),
	sub("streamReadFailure", Iostream, FacCiod, raslog.Failure, "i/o stream read failure on control stream", "stream", "read"),
	sub("streamWriteFailure", Iostream, FacCiod, raslog.Failure, "i/o stream write failure on data stream", "stream", "write"),
	sub("ciodStreamWarning", Iostream, FacCiod, raslog.Warning, "ciod stream buffer high watermark reached", "stream", "watermark"),
	sub("fileReadError", Iostream, FacCiod, raslog.Error, "file server read error on i/o node", "file server", "read"),
	sub("fileWriteError", Iostream, FacCiod, raslog.Error, "file server write error on i/o node", "file server", "write"),

	// Kernel (20)
	sub("alignmentFailure", Kernel, FacKernel, raslog.Fatal, "alignment exception while accessing data", "alignment"),
	sub("dataAddressFailure", Kernel, FacKernel, raslog.Fatal, "data address exception: invalid data address", "data address"),
	sub("instructionAddressFailure", Kernel, FacKernel, raslog.Fatal, "instruction address exception: invalid fetch", "instruction address"),
	sub("kernelPanicFailure", Kernel, FacKernel, raslog.Fatal, "kernel panic: unable to continue", "kernel panic"),
	sub("tlbExceptionFailure", Kernel, FacKernel, raslog.Fatal, "tlb miss exception on kernel address", "tlb"),
	sub("programInterruptError", Kernel, FacKernel, raslog.Error, "program interrupt: illegal operation", "program interrupt"),
	sub("floatingPointFailure", Kernel, FacKernel, raslog.Fatal, "floating point unavailable exception", "floating point"),
	sub("debugInterruptWarning", Kernel, FacKernel, raslog.Warning, "debug interrupt received by kernel", "debug interrupt"),
	sub("machineCheckError", Kernel, FacKernel, raslog.Error, "machine check interrupt asserted", "machine check"),
	sub("watchdogTimeoutFailure", Kernel, FacKernel, raslog.Fatal, "watchdog timer expired: node unresponsive", "watchdog"),
	sub("syscallError", Kernel, FacKernel, raslog.Error, "unsupported system call in compute kernel", "system call"),
	sub("kernelModeWarning", Kernel, FacKernel, raslog.Warning, "kernel mode transition warning", "kernel mode"),
	sub("pageFaultFailure", Kernel, FacKernel, raslog.Fatal, "unrecoverable page fault in kernel space", "page fault"),
	sub("interruptVectorError", Kernel, FacKernel, raslog.Error, "spurious interrupt on vector", "spurious interrupt"),
	sub("privilegedInstructionFailure", Kernel, FacKernel, raslog.Fatal, "privileged instruction exception in user mode", "privileged"),
	sub("traceInterruptInfo", Kernel, FacKernel, raslog.Info, "trace interrupt enabled for diagnostics", "trace interrupt"),
	sub("kernelShutdownInfo", Kernel, FacKernel, raslog.Info, "compute kernel shutdown complete", "kernel shutdown"),
	sub("stackOverflowFailure", Kernel, FacKernel, raslog.Fatal, "stack overflow detected in kernel thread", "stack overflow"),
	sub("regDumpInfo", Kernel, FacKernel, raslog.Info, "register dump: general purpose registers follow", "register dump"),
	sub("dcrReadError", Kernel, FacKernel, raslog.Error, "dcr read error on device control register", "dcr"),

	// Memory (22)
	sub("cachePrefetchFailure", Memory, FacHardware, raslog.Fatal, "cache prefetch engine failure", "prefetch"),
	sub("dataReadFailure", Memory, FacHardware, raslog.Fatal, "uncorrectable error on data read from memory", "data read"),
	sub("dataStoreFailure", Memory, FacHardware, raslog.Fatal, "uncorrectable error on data store to memory", "data store"),
	sub("parityFailure", Memory, FacHardware, raslog.Fatal, "parity error detected and not recoverable", "parity error"),
	sub("ddrErrorCorrectionInfo", Memory, FacHardware, raslog.Info, "ddr errors detected and corrected", "ddr", "corrected"),
	sub("maskInfo", Memory, FacHardware, raslog.Info, "interrupt mask register updated", "mask"),
	sub("edramFailure", Memory, FacHardware, raslog.Fatal, "uncorrectable error detected in edram bank", "edram"),
	sub("l1CacheError", Memory, FacHardware, raslog.Error, "l1 dcache error detected", "l1 dcache"),
	sub("l2CacheError", Memory, FacHardware, raslog.Error, "l2 cache access error", "l2 cache"),
	sub("l3CacheError", Memory, FacHardware, raslog.Error, "l3 ecc status error", "l3 ecc"),
	sub("sramParityError", Memory, FacHardware, raslog.Error, "sram parity interrupt latched", "sram"),
	sub("ddrSingleSymbolWarning", Memory, FacHardware, raslog.Warning, "ddr single symbol error threshold exceeded", "single symbol"),
	sub("ddrDoubleSymbolFailure", Memory, FacHardware, raslog.Fatal, "ddr double symbol error: not correctable", "double symbol"),
	sub("memoryControllerFailure", Memory, FacHardware, raslog.Fatal, "memory controller initialization failure", "memory controller"),
	sub("scrubCycleInfo", Memory, FacHardware, raslog.Info, "memory scrub cycle completed", "scrub cycle"),
	sub("eccCorrectableInfo", Memory, FacHardware, raslog.Info, "correctable ecc event logged", "correctable ecc"),
	sub("eccUncorrectableFailure", Memory, FacHardware, raslog.Fatal, "uncorrectable ecc error in main store", "uncorrectable ecc"),
	sub("cacheFailure", Memory, FacHardware, raslog.Fatal, "cache coherency failure detected", "cache coherency"),
	sub("lockboxTimeoutError", Memory, FacHardware, raslog.Error, "lockbox acquisition timeout", "lockbox"),
	sub("dmaErrorFailure", Memory, FacHardware, raslog.Fatal, "dma transfer error on reception buffer", "dma"),
	sub("memoryLeakWarning", Memory, FacKernel, raslog.Warning, "kernel heap usage growing: possible memory leak", "memory leak"),
	sub("addressRangeError", Memory, FacHardware, raslog.Error, "address out of physical memory range", "memory range"),

	// Midplane (6)
	sub("linkcardFailure", Midplane, FacLinkcard, raslog.Failure, "linkcard failure: jtag connection lost", "linkcard failure"),
	sub("ciodSignalFailure", Midplane, FacCiod, raslog.Failure, "ciod terminated by signal", "ciod", "signal"),
	sub("midplaneServiceWarning", Midplane, FacMMCS, raslog.Warning, "midplane service action in progress", "midplane service"),
	sub("midplaneStartInfo", Midplane, FacMMCS, raslog.Info, "midplane started by mmcs", "midplane started"),
	sub("midplaneSwitchError", Midplane, FacMMCS, raslog.Error, "midplane switch configuration error", "midplane switch"),
	sub("midplaneLinkcardRestartWarning", Midplane, FacMMCS, raslog.Warning, "midplane linkcard restart initiated", "linkcard restart"),

	// Network (11)
	sub("torusFailure", Network, FacKernel, raslog.Fatal, "uncorrectable torus error detected", "torus error"),
	sub("torusConnectionErrorInfo", Network, FacMMCS, raslog.Info, "torus connection fault counter incremented", "torus connection"),
	sub("rtsFailure", Network, FacKernel, raslog.Fatal, "rts internal failure detected", "rts internal"),
	sub("rtsLinkFailure", Network, FacKernel, raslog.Failure, "rts link failure on tree port", "rts link"),
	sub("rtsPanicFailure", Network, FacKernel, raslog.Fatal, "rts panic - stopping execution", "rts panic"),
	sub("treeNetworkFailure", Network, FacKernel, raslog.Fatal, "tree network reception failure", "tree network"),
	sub("nodeConnectionFailure", Network, FacMMCS, raslog.Failure, "node connection lost: no heartbeat", "node connection"),
	sub("controlNetworkNMCSError", Network, FacMMCS, raslog.Error, "control network nmcs transaction error", "nmcs"),
	sub("controlNetworkInfo", Network, FacMMCS, raslog.Info, "control network poll completed", "control network", "poll"),
	sub("ethernetFailure", Network, FacKernel, raslog.Fatal, "ethernet interface failure: link down", "ethernet", "failure"),
	sub("ethernetLinkWarning", Network, FacMonitor, raslog.Warning, "ethernet link flapping detected", "ethernet link"),

	// NodeCard (10)
	sub("nodecardDiscoveryError", NodeCard, FacDiscovery, raslog.Error, "node card discovery error: no response", "discovery error"),
	sub("nodecardAssemblyWarning", NodeCard, FacDiscovery, raslog.Warning, "node card assembly revision mismatch", "assembly revision"),
	sub("nodecardAssemblySevereDiscovery", NodeCard, FacDiscovery, raslog.Severe, "node card assembly severe fault during discovery", "assembly severe"),
	sub("nodecardUPDMismatch", NodeCard, FacDiscovery, raslog.Warning, "node card upd serial number mismatch", "upd"),
	sub("nodecardFunctionalityWarning", NodeCard, FacMonitor, raslog.Warning, "node card functionality degraded", "functionality"),
	sub("nodecardPowerError", NodeCard, FacMonitor, raslog.Error, "node card power rail error", "power rail"),
	sub("nodecardTempWarning", NodeCard, FacMonitor, raslog.Warning, "node card temperature above threshold", "temperature"),
	sub("nodecardVoltageError", NodeCard, FacMonitor, raslog.Error, "node card voltage out of tolerance", "voltage", "tolerance"),
	sub("nodecardClockFailure", NodeCard, FacHardware, raslog.Fatal, "node card clock distribution failure", "clock"),
	sub("nodecardStatusInfo", NodeCard, FacMonitor, raslog.Info, "node card status poll ok", "status poll"),

	// Other (12)
	sub("BGLMasterRestartInfo", Other, FacBGLMaster, raslog.Info, "bglmaster restarted managed processes", "bglmaster restart"),
	sub("CMCScontrolInfo", Other, FacCMCS, raslog.Info, "cmcs control command accepted", "cmcs control"),
	sub("linkcardServiceWarning", Other, FacLinkcard, raslog.Warning, "linkcard service action requested", "linkcard service"),
	sub("ciodRestartInfo", Other, FacCiod, raslog.Info, "ciod restarted on io node", "ciod restart"),
	sub("endServiceWarning", Other, FacServiceCard, raslog.Warning, "end service action posted", "end service"),
	sub("serviceCardWarning", Other, FacServiceCard, raslog.Warning, "service card environmental warning", "service card"),
	sub("fanSpeedWarning", Other, FacMonitor, raslog.Warning, "fan speed below minimum rpm", "fan speed"),
	sub("powerSupplyVoltageWarning", Other, FacMonitor, raslog.Warning, "power supply voltage fluctuation", "power supply"),
	sub("dbLoggingError", Other, FacCMCS, raslog.Error, "db2 logging backlog error", "db2"),
	sub("pollingAgentInfo", Other, FacCMCS, raslog.Info, "polling agent heartbeat ok", "polling agent"),
	sub("bglmasterFailure", Other, FacBGLMaster, raslog.Failure, "bglmaster process failure: component exited", "bglmaster", "failure"),
	sub("consoleConnectionInfo", Other, FacMMCS, raslog.Info, "mmcs console connection established", "console"),
}

var byName = make(map[string]*Subcategory, len(taxonomy))

func init() {
	for i := range taxonomy {
		s := &taxonomy[i]
		s.ID = i
		if _, dup := byName[s.Name]; dup {
			panic("catalog: duplicate subcategory name " + s.Name)
		}
		byName[s.Name] = s
	}
}

// NumSubcategories is the size of the taxonomy (101, per paper Table 3).
const NumSubcategories = 101

// All returns the full taxonomy in table order. The returned slice is
// shared; callers must not mutate it.
func All() []Subcategory { return taxonomy }

// ByName looks a subcategory up by its rule identifier (e.g.
// "torusFailure").
func ByName(name string) (*Subcategory, bool) {
	s, ok := byName[name]
	return s, ok
}

// ByID returns the subcategory with the given dense ID.
func ByID(id int) (*Subcategory, bool) {
	if id < 0 || id >= len(taxonomy) {
		return nil, false
	}
	return &taxonomy[id], true
}

// MustByName is ByName for statically known names; it panics on a
// missing name and is intended for tests and generators.
func MustByName(name string) *Subcategory {
	s, ok := byName[name]
	if !ok {
		panic("catalog: unknown subcategory " + name)
	}
	return s
}

// CountByMain returns how many subcategories each main category holds
// (paper Table 3's middle column).
func CountByMain() map[Main]int {
	out := make(map[Main]int, numMains)
	for i := range taxonomy {
		out[taxonomy[i].Main]++
	}
	return out
}

// A Classifier maps raw RAS records to subcategories by keyword
// signature. The zero value is not usable; call NewClassifier.
type Classifier struct {
	// lowered caches the lowercase keys per subcategory.
	lowered [][]string
}

// NewClassifier builds a classifier over the full taxonomy.
func NewClassifier() *Classifier {
	c := &Classifier{lowered: make([][]string, len(taxonomy))}
	for i := range taxonomy {
		keys := make([]string, len(taxonomy[i].Keys))
		for j, k := range taxonomy[i].Keys {
			keys[j] = strings.ToLower(k)
		}
		c.lowered[i] = keys
	}
	return c
}

// Classify returns the best-matching subcategory for the record, or
// ok=false if no subcategory's signature matches. Among qualifying
// subcategories the most specific signature (largest total key length)
// wins; ties prefer matching FACILITY, then matching SEVERITY, then
// table order.
func (c *Classifier) Classify(e *raslog.Event) (*Subcategory, bool) {
	entry := strings.ToLower(e.EntryData)
	best := -1
	bestScore := -1
	for i := range taxonomy {
		score := 0
		ok := true
		for _, k := range c.lowered[i] {
			if !strings.Contains(entry, k) {
				ok = false
				break
			}
			score += len(k) * 4
		}
		if !ok {
			continue
		}
		if taxonomy[i].Facility == e.Facility {
			score += 2
		}
		if taxonomy[i].Severity == e.Severity {
			score++
		}
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	if best < 0 {
		return nil, false
	}
	return &taxonomy[best], true
}
