package experiments

import (
	"strings"
	"testing"
)

func testCtx() *Context { return NewContext(0.08, 3) }

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	ctx := testCtx()
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(ctx)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s: no tables", e.ID)
			}
			for _, tb := range tables {
				if tb.Title == "" {
					t.Errorf("%s: untitled table", e.ID)
				}
				if tb.NumRows() == 0 {
					t.Errorf("%s: empty table %q", e.ID, tb.Title)
				}
				if tb.Render() == "" || tb.CSV() == "" {
					t.Errorf("%s: unrenderable table %q", e.ID, tb.Title)
				}
			}
		})
	}
}

func TestByID(t *testing.T) {
	for _, e := range All() {
		got, ok := ByID(e.ID)
		if !ok || got.ID != e.ID {
			t.Errorf("ByID(%q) failed", e.ID)
		}
	}
	if _, ok := ByID("table99"); ok {
		t.Error("ByID accepted junk")
	}
}

func TestIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("%q: incomplete definition", e.ID)
		}
	}
}

func TestDatasetCachedAndShared(t *testing.T) {
	ctx := testCtx()
	a, err := ctx.Dataset("ANL")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ctx.Dataset("ANL")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("dataset not cached")
	}
	if _, err := ctx.Dataset("LLNL"); err == nil {
		t.Error("unknown system accepted")
	}
}

func TestContextDefaults(t *testing.T) {
	c := NewContext(0, 0)
	if c.Scale != 0.1 || c.Folds != 10 {
		t.Fatalf("defaults = %v/%v", c.Scale, c.Folds)
	}
}

func TestTable3MatchesPaperExactly(t *testing.T) {
	tables, err := table3(testCtx())
	if err != nil {
		t.Fatal(err)
	}
	out := tables[0].Render()
	// The taxonomy is static: measured and paper columns must agree on
	// every row, so the rendered table contains no mismatched pairs.
	for _, row := range []string{"12             12", "8              8", "20             20",
		"22             22", "6              6", "11             11", "10             10",
		"101            101"} {
		if !strings.Contains(out, row) {
			t.Errorf("table 3 row missing %q:\n%s", row, out)
		}
	}
}

func TestFigure3PrintsRuleArrows(t *testing.T) {
	tables, err := figure3(testCtx())
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range tables {
		if !strings.Contains(tb.Render(), "==>") {
			t.Errorf("no rules in %q", tb.Title)
		}
	}
}

func TestPaperReferenceTablesComplete(t *testing.T) {
	for _, sys := range Systems {
		if _, ok := paperTable1[sys]; !ok {
			t.Errorf("paperTable1 missing %s", sys)
		}
		if _, ok := paperTable4[sys]; !ok {
			t.Errorf("paperTable4 missing %s", sys)
		}
		if _, ok := paperTable5[sys]; !ok {
			t.Errorf("paperTable5 missing %s", sys)
		}
		if _, ok := paperFigure5[sys]; !ok {
			t.Errorf("paperFigure5 missing %s", sys)
		}
	}
	// Paper Table 4 totals must be the published 2823 and 2182.
	tot := map[string]int{}
	for sys, rows := range paperTable4 {
		for _, n := range rows {
			tot[sys] += n
		}
	}
	if tot["ANL"] != 2823 || tot["SDSC"] != 2182 {
		t.Fatalf("paper totals = %v", tot)
	}
}

func TestMeanStddev(t *testing.T) {
	mean, sd := meanStddev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 {
		t.Fatalf("mean = %v", mean)
	}
	if sd != 2 {
		t.Fatalf("sd = %v", sd)
	}
	if m, s := meanStddev(nil); m != 0 || s != 0 {
		t.Fatal("empty input should give zeros")
	}
}
