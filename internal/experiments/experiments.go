// Package experiments regenerates every table and figure of the
// paper's evaluation, printing measured values beside the published
// ones. It is the engine behind cmd/bglbench and the repository-root
// benchmarks; DESIGN.md §4 maps each experiment to the modules it
// exercises.
package experiments

import (
	"fmt"
	"math"
	"sync"
	"time"

	"bglpred/internal/assoc"
	"bglpred/internal/bglsim"
	"bglpred/internal/catalog"
	_ "bglpred/internal/ecg" // register the "ecg" base for predictorComparison
	"bglpred/internal/eval"
	"bglpred/internal/ftsim"
	"bglpred/internal/predictor"
	"bglpred/internal/preprocess"
	"bglpred/internal/raslog"
	"bglpred/internal/report"
	"bglpred/internal/stats"
)

// Context carries shared experiment state; datasets are generated
// once per system and cached.
type Context struct {
	// Scale shrinks the log span (1.0 = the full 14-15 months).
	Scale float64
	// Folds is the cross-validation fold count (paper: 10).
	Folds int

	mu    sync.Mutex
	cache map[string]*Dataset
}

// NewContext builds a context; scale<=0 defaults to 0.1 and folds<=0
// to 10.
func NewContext(scale float64, folds int) *Context {
	if scale <= 0 {
		scale = 0.1
	}
	if folds <= 0 {
		folds = 10
	}
	return &Context{Scale: scale, Folds: folds, cache: make(map[string]*Dataset)}
}

// Dataset is one generated and preprocessed log.
type Dataset struct {
	Profile bglsim.Profile
	Gen     *bglsim.Result
	Pre     *preprocess.Result
}

// Dataset returns the (cached) dataset for "ANL" or "SDSC".
func (c *Context) Dataset(system string) (*Dataset, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d, ok := c.cache[system]; ok {
		return d, nil
	}
	prof, ok := bglsim.ProfileByName(system)
	if !ok {
		return nil, fmt.Errorf("experiments: unknown system %q", system)
	}
	scaled := prof.Scaled(c.Scale)
	gen, err := bglsim.Generate(scaled)
	if err != nil {
		return nil, err
	}
	d := &Dataset{
		Profile: scaled,
		Gen:     gen,
		Pre:     preprocess.Run(gen.Events, preprocess.Options{}),
	}
	c.cache[system] = d
	return d, nil
}

// Systems are the two evaluated machines, in the paper's order.
var Systems = []string{"ANL", "SDSC"}

// Experiment is one reproducible table or figure.
type Experiment struct {
	// ID is the flag-friendly identifier ("table4", "figure5", ...).
	ID string
	// Title describes the experiment.
	Title string
	// Run produces the result tables.
	Run func(*Context) ([]*report.Table, error)
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"table1", "Table 1: RAS log summaries", table1},
		{"table3", "Table 3: hierarchical event categorization", table3},
		{"table4", "Table 4: distribution of compressed fatal events", table4},
		{"table5", "Table 5: statistical predictor precision/recall", table5},
		{"figure2", "Figure 2: CDF of inter-failure gaps", figure2},
		{"figure3", "Figure 3: generated association rules", figure3},
		{"figure4", "Figure 4: rule-based prediction vs window", figure4},
		{"figure5", "Figure 5: meta-learning prediction vs window", figure5},
		{"rulegen-sweep", "§3.2.2 step 5: rule-generation window selection", ruleGenSweep},
		{"timing", "§3.3: rule generation cost vs window", timing},
		{"lead-time", "Extension: warning lead-time distribution (actionability)", leadTime},
		{"coverage-by-category", "Extension: per-category recall and base-method coverage", coverageByCategory},
		{"spatial", "Extension: spatial correlation among fatal events (Liang et al.)", spatialCorrelation},
		{"job-impact", "Extension (paper future work): job-impacting failure filter", jobImpact},
		{"checkpointing", "Extension: what prediction buys proactive checkpointing (paper §1)", checkpointing},
		{"robustness", "Extension: headline metrics across generator seeds (mean±sd)", robustness},
		{"predictors", "Extension: base-predictor comparison (statistical, rule, ecg, meta ensembles)", predictorComparison},
		{"ablation-policy", "Ablation: meta-learner arbitration policies", ablationPolicy},
		{"ablation-miner", "Ablation: Apriori vs FP-growth", ablationMiner},
		{"ablation-compression", "Ablation: compression threshold sweep", ablationCompression},
		{"ablation-support", "Ablation: minimum support sensitivity", ablationSupport},
	}
}

// ByID resolves an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ---- Table 1 ----------------------------------------------------------

var paperTable1 = map[string]struct {
	start, end string
	records    int64
	size       string
}{
	"ANL":  {"1/21/2005", "4/28/2006", 4172359, "5 GB"},
	"SDSC": {"12/6/2004", "2/21/2006", 428953, "540 MB"},
}

func table1(c *Context) ([]*report.Table, error) {
	t := report.NewTable(
		fmt.Sprintf("Table 1 — log summaries (scale %.2f; paper records are full-scale)", c.Scale),
		"system", "start", "end", "records", "records/scale", "serialized", "paper-records", "paper-size")
	for _, sys := range Systems {
		d, err := c.Dataset(sys)
		if err != nil {
			return nil, err
		}
		sum := raslog.Summarize(d.Gen.Events)
		ref := paperTable1[sys]
		t.AddRow(sys,
			sum.Start.Format("1/2/2006"), sum.End.Format("1/2/2006"),
			sum.Records, fmt.Sprintf("%.0f", float64(sum.Records)/c.Scale),
			fmt.Sprintf("%.0f MB", float64(sum.Bytes)/1e6),
			ref.records, ref.size)
	}
	return []*report.Table{t}, nil
}

// ---- Table 3 ----------------------------------------------------------

var paperTable3 = map[catalog.Main]int{
	catalog.Application: 12, catalog.Iostream: 8, catalog.Kernel: 20,
	catalog.Memory: 22, catalog.Midplane: 6, catalog.Network: 11,
	catalog.NodeCard: 10, catalog.Other: 12,
}

func table3(*Context) ([]*report.Table, error) {
	t := report.NewTable("Table 3 — event categorization",
		"main category", "subcategories", "paper", "examples")
	counts := catalog.CountByMain()
	for _, m := range catalog.Mains() {
		var examples []string
		for _, s := range catalog.All() {
			if s.Main == m && len(examples) < 3 {
				examples = append(examples, s.Name)
			}
		}
		t.AddRow(m, counts[m], paperTable3[m], fmt.Sprintf("%v", examples))
	}
	t.AddRow("TOTAL", catalog.NumSubcategories, 101, "")
	return []*report.Table{t}, nil
}

// ---- Table 4 ----------------------------------------------------------

var paperTable4 = map[string]map[catalog.Main]int{
	"ANL": {
		catalog.Application: 762, catalog.Iostream: 1173, catalog.Kernel: 224,
		catalog.Memory: 52, catalog.Midplane: 102, catalog.Network: 482,
		catalog.NodeCard: 20, catalog.Other: 8,
	},
	"SDSC": {
		catalog.Application: 587, catalog.Iostream: 905, catalog.Kernel: 182,
		catalog.Memory: 25, catalog.Midplane: 97, catalog.Network: 366,
		catalog.NodeCard: 17, catalog.Other: 3,
	},
}

func table4(c *Context) ([]*report.Table, error) {
	t := report.NewTable(
		fmt.Sprintf("Table 4 — compressed fatal events by category (measured/scale %.2f vs paper)", c.Scale),
		"main category", "ANL", "ANL-paper", "SDSC", "SDSC-paper")
	measured := map[string]map[catalog.Main]int{}
	for _, sys := range Systems {
		d, err := c.Dataset(sys)
		if err != nil {
			return nil, err
		}
		measured[sys] = preprocess.CountByMain(d.Pre.Events, true)
	}
	totals := map[string]float64{}
	for _, m := range catalog.Mains() {
		anl := float64(measured["ANL"][m]) / c.Scale
		sdsc := float64(measured["SDSC"][m]) / c.Scale
		totals["ANL"] += anl
		totals["SDSC"] += sdsc
		t.AddRow(m, fmt.Sprintf("%.0f", anl), paperTable4["ANL"][m],
			fmt.Sprintf("%.0f", sdsc), paperTable4["SDSC"][m])
	}
	t.AddRow("TOTAL", fmt.Sprintf("%.0f", totals["ANL"]), 2823,
		fmt.Sprintf("%.0f", totals["SDSC"]), 2182)
	return []*report.Table{t}, nil
}

// ---- Table 5 ----------------------------------------------------------

var paperTable5 = map[string][2]float64{
	"ANL":  {0.5157, 0.4872},
	"SDSC": {0.2837, 0.3117},
}

func table5(c *Context) ([]*report.Table, error) {
	t := report.NewTable("Table 5 — statistical predictor (window (5min, 1h], 10-fold CV)",
		"system", "precision", "recall", "paper-precision", "paper-recall")
	for _, sys := range Systems {
		d, err := c.Dataset(sys)
		if err != nil {
			return nil, err
		}
		res, err := eval.CrossValidate(d.Pre.Events, c.Folds,
			func() predictor.Predictor { return predictor.NewStatistical() }, time.Hour)
		if err != nil {
			return nil, err
		}
		ref := paperTable5[sys]
		t.AddRow(sys,
			fmt.Sprintf("%.4f±%.3f", res.MeanPrecision, res.StddevPrecision()),
			fmt.Sprintf("%.4f±%.3f", res.MeanRecall, res.StddevRecall()),
			ref[0], ref[1])
	}
	return []*report.Table{t}, nil
}

// ---- Figure 2 ---------------------------------------------------------

func figure2(c *Context) ([]*report.Table, error) {
	t := report.NewTable("Figure 2 — CDF of gaps between consecutive compressed fatal events",
		"gap <=", "ANL", "SDSC")
	cdfs := map[string]*stats.CDF{}
	for _, sys := range Systems {
		d, err := c.Dataset(sys)
		if err != nil {
			return nil, err
		}
		fatal := preprocess.Fatal(d.Pre.Events)
		times := make([]time.Time, len(fatal))
		for i := range fatal {
			times[i] = fatal[i].Time
		}
		cdfs[sys] = stats.NewCDF(stats.InterArrivalGaps(times))
	}
	grid := []time.Duration{
		time.Minute, 5 * time.Minute, 10 * time.Minute, 30 * time.Minute,
		time.Hour, 2 * time.Hour, 6 * time.Hour, 24 * time.Hour,
	}
	for _, g := range grid {
		t.AddRow(g, cdfs["ANL"].At(g), cdfs["SDSC"].At(g))
	}
	return []*report.Table{t}, nil
}

// ---- Figure 3 ---------------------------------------------------------

func figure3(c *Context) ([]*report.Table, error) {
	var out []*report.Table
	for _, sys := range Systems {
		d, err := c.Dataset(sys)
		if err != nil {
			return nil, err
		}
		r := predictor.NewRule()
		if err := r.Train(d.Pre.Events); err != nil {
			return nil, err
		}
		t := report.NewTable(
			fmt.Sprintf("Figure 3 (%s) — top association rules (rule-gen window %v, %d rules)",
				sys, r.ChosenWindow(), r.Rules().Len()),
			"rule")
		for i, rule := range r.Rules().Rules {
			if i >= 11 { // the paper prints 11
				break
			}
			t.AddRow(rule.Format(itemName))
		}
		out = append(out, t)
	}
	return out, nil
}

func itemName(it int) string {
	if s, ok := catalog.ByID(it); ok {
		return s.Name
	}
	return fmt.Sprint(it)
}

// ---- Figures 4 and 5 --------------------------------------------------

// Paper endpoints quoted in the text for Figure 5; Figure 4 is
// characterized by its printed bands (precision 0.7-0.9, recall
// 0.22-0.55).
var paperFigure5 = map[string]map[time.Duration][2]float64{
	"ANL":  {5 * time.Minute: {0.88, 0.64}, time.Hour: {0.65, 0.78}},
	"SDSC": {5 * time.Minute: {0.99, 0.65}, time.Hour: {0.89, 0.65}},
}

func sweepWindows() []time.Duration {
	return []time.Duration{
		5 * time.Minute, 10 * time.Minute, 15 * time.Minute, 20 * time.Minute,
		30 * time.Minute, 40 * time.Minute, 50 * time.Minute, 60 * time.Minute,
	}
}

// paperRuleGenWindow is the rule-generation window the paper's step-5
// sweep selected per system (§3.2.2); Figures 4 and 5 were produced
// with these fixed.
func paperRuleGenWindow(system string) time.Duration {
	if system == "ANL" {
		return 15 * time.Minute
	}
	return 25 * time.Minute
}

func figure4(c *Context) ([]*report.Table, error) {
	var out []*report.Table
	for _, sys := range Systems {
		d, err := c.Dataset(sys)
		if err != nil {
			return nil, err
		}
		ruleWindow := paperRuleGenWindow(sys)
		pts, err := eval.WindowSweep(d.Pre.Events, c.Folds,
			func() predictor.Predictor {
				r := predictor.NewRule()
				r.Config.RuleGenWindow = ruleWindow
				return r
			}, sweepWindows())
		if err != nil {
			return nil, err
		}
		out = append(out, report.SweepTable(
			fmt.Sprintf("Figure 4 (%s, rule-gen window %v) — rule-based predictor (paper band: precision 0.7-0.9, recall 0.22-0.55)",
				sys, ruleWindow),
			pts))
	}
	return out, nil
}

func figure5(c *Context) ([]*report.Table, error) {
	var out []*report.Table
	for _, sys := range Systems {
		d, err := c.Dataset(sys)
		if err != nil {
			return nil, err
		}
		ruleWindow := paperRuleGenWindow(sys)
		pts, err := eval.WindowSweep(d.Pre.Events, c.Folds,
			func() predictor.Predictor {
				m := predictor.NewMeta()
				m.Rule.Config.RuleGenWindow = ruleWindow
				return m
			}, sweepWindows())
		if err != nil {
			return nil, err
		}
		out = append(out, report.SweepComparisonTable(
			fmt.Sprintf("Figure 5 (%s, rule-gen window %v) — meta-learning predictor", sys, ruleWindow),
			pts, paperFigure5[sys]))
	}
	return out, nil
}

// ---- Rule-generation window sweep (§3.2.2 step 5) ----------------------

func ruleGenSweep(c *Context) ([]*report.Table, error) {
	var out []*report.Table
	for _, sys := range Systems {
		d, err := c.Dataset(sys)
		if err != nil {
			return nil, err
		}
		t := report.NewTable(
			fmt.Sprintf("Rule-generation window sweep (%s; paper selects 15min for ANL, 25min for SDSC)", sys),
			"rule-gen window", "rules", "precision", "recall", "F1")
		events := d.Pre.Events
		cut := len(events) * 3 / 4
		train, hold := events[:cut], events[cut:]
		for _, w := range []time.Duration{5 * time.Minute, 10 * time.Minute, 15 * time.Minute,
			20 * time.Minute, 25 * time.Minute, 30 * time.Minute, 45 * time.Minute, time.Hour} {
			r := predictor.NewRule()
			r.Config.RuleGenWindow = w
			if err := r.Train(train); err != nil {
				return nil, err
			}
			o := eval.Match(r.Predict(hold, 30*time.Minute), hold)
			t.AddRow(w, r.Rules().Len(), o.Precision(), o.Recall(), o.F1())
		}
		// The automatic selection's verdict.
		auto := predictor.NewRule()
		if err := auto.Train(events); err != nil {
			return nil, err
		}
		t.AddRow("auto-selected", fmt.Sprint(auto.ChosenWindow()), "", "", "")
		out = append(out, t)
	}
	return out, nil
}

// ---- Timing (§3.3) -----------------------------------------------------

func timing(c *Context) ([]*report.Table, error) {
	d, err := c.Dataset("ANL")
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		"Rule generation cost vs window (paper: 35s at 5min to 167s at 1h on 2007 hardware; shape matters, not absolutes)",
		"rule-gen window", "transactions", "rules", "mining time")
	for _, w := range []time.Duration{5 * time.Minute, 15 * time.Minute, 30 * time.Minute, time.Hour} {
		r := predictor.NewRule()
		r.Config.RuleGenWindow = w
		tx := predictor.BuildTransactions(d.Pre.Events, w)
		//bglvet:ignore determinism mining time is the measurand here; the table states shape matters, not absolutes
		startT := time.Now()
		if err := r.Train(d.Pre.Events); err != nil {
			return nil, err
		}
		t.AddRow(w, len(tx), r.Rules().Len(), time.Since(startT).Round(time.Millisecond).String())
	}
	return []*report.Table{t}, nil
}

// ---- Extensions ---------------------------------------------------------

// holdoutMeta trains a meta-learner on the first three quarters of a
// system's stream and returns (trained, holdout).
func holdoutMeta(c *Context, sys string) (*predictor.Meta, []preprocess.Event, error) {
	d, err := c.Dataset(sys)
	if err != nil {
		return nil, nil, err
	}
	events := d.Pre.Events
	cut := len(events) * 3 / 4
	m := predictor.NewMeta()
	m.Rule.Config.RuleGenWindow = paperRuleGenWindow(sys)
	if err := m.Train(events[:cut]); err != nil {
		return nil, nil, err
	}
	return m, events[cut:], nil
}

func leadTime(c *Context) ([]*report.Table, error) {
	t := report.NewTable(
		"Warning lead time before predicted failures (meta-learner, 30min window; the paper's actionability floor is 5min)",
		"system", "predicted", "P(lead>=5min)", "median lead", "p90 lead", "mean lead")
	for _, sys := range Systems {
		m, hold, err := holdoutMeta(c, sys)
		if err != nil {
			return nil, err
		}
		warnings := m.Predict(hold, 30*time.Minute)
		cdf := eval.LeadCDF(warnings, hold)
		if cdf.N() == 0 {
			t.AddRow(sys, 0, "-", "-", "-", "-")
			continue
		}
		t.AddRow(sys, cdf.N(),
			1-cdf.At(5*time.Minute-time.Nanosecond),
			cdf.Quantile(0.5).Round(time.Second),
			cdf.Quantile(0.9).Round(time.Second),
			cdf.Mean().Round(time.Second))
	}
	return []*report.Table{t}, nil
}

func coverageByCategory(c *Context) ([]*report.Table, error) {
	var out []*report.Table
	for _, sys := range Systems {
		m, hold, err := holdoutMeta(c, sys)
		if err != nil {
			return nil, err
		}
		warnings := m.Predict(hold, 30*time.Minute)
		t := report.NewTable(
			fmt.Sprintf("Per-category coverage (%s, meta-learner, 30min window)", sys),
			"category", "fatal", "predicted", "recall", "via rules", "via statistical")
		for _, row := range eval.ByCategory(warnings, hold) {
			t.AddRow(row.Category, row.Total, row.Predicted, row.Recall(),
				row.BySource[predictor.SourceRule], row.BySource[predictor.SourceStatistical])
		}
		out = append(out, t)
	}
	return out, nil
}

func spatialCorrelation(c *Context) ([]*report.Table, error) {
	t := report.NewTable(
		"Spatial correlation of consecutive fatal events (within 1h; lift 1.0 = uncorrelated)",
		"system", "pairs", "same midplane", "P(same)", "baseline", "lift")
	hot := report.NewTable("Failure hotspots (share of unique fatal events per midplane)",
		"system", "midplane", "share")
	for _, sys := range Systems {
		d, err := c.Dataset(sys)
		if err != nil {
			return nil, err
		}
		var located []stats.LocatedEvent
		for _, e := range preprocess.Fatal(d.Pre.Events) {
			located = append(located, stats.LocatedEvent{
				Time:  e.Time,
				Place: e.Location.MidplaneOf().String(),
			})
		}
		sp := stats.AnalyzeSpatial(located, time.Hour)
		t.AddRow(sys, sp.Pairs, sp.SamePlace, sp.SamePlaceProbability(),
			sp.ExpectedSamePlace, sp.SpatialLift())
		for _, h := range sp.Hotspots(2) {
			hot.AddRow(sys, h.Place, h.Share)
		}
	}
	return []*report.Table{t, hot}, nil
}

func jobImpact(c *Context) ([]*report.Table, error) {
	t := report.NewTable(
		"Job-impacting failures (paper §3.1 future work: filter failures invisible to applications)",
		"system", "unique fatal", "job-impacting", "fraction",
		"meta precision (all)", "meta recall (all)", "meta precision (filtered)", "meta recall (filtered)")
	for _, sys := range Systems {
		d, err := c.Dataset(sys)
		if err != nil {
			return nil, err
		}
		impact := preprocess.JobImpact(d.Pre.Events)
		filtered := preprocess.FilterJobImpacting(d.Pre.Events)
		ruleWindow := paperRuleGenWindow(sys)
		factory := func() predictor.Predictor {
			m := predictor.NewMeta()
			m.Rule.Config.RuleGenWindow = ruleWindow
			return m
		}
		all, err := eval.CrossValidate(d.Pre.Events, c.Folds, factory, 30*time.Minute)
		if err != nil {
			return nil, err
		}
		flt, err := eval.CrossValidate(filtered, c.Folds, factory, 30*time.Minute)
		if err != nil {
			return nil, err
		}
		t.AddRow(sys, impact.Fatal, impact.JobImpacting, impact.ImpactFraction(),
			all.MeanPrecision, all.MeanRecall, flt.MeanPrecision, flt.MeanRecall)
	}
	return []*report.Table{t}, nil
}

// checkpointing quantifies the paper's §1 motivation: predictions
// driving proactive checkpoints cut lost work beyond a Young-tuned
// periodic baseline.
func checkpointing(c *Context) ([]*report.Table, error) {
	t := report.NewTable(
		"Proactive checkpointing on meta-learner alarms (holdout quarter; Young-optimal periodic interval)",
		"system", "regime", "interval", "failures", "ckpts", "proactive", "lost work", "overhead", "efficiency")
	for _, sys := range Systems {
		m, hold, err := holdoutMeta(c, sys)
		if err != nil {
			return nil, err
		}
		warnings := m.Predict(hold, 30*time.Minute)
		var failures []time.Time
		for i := range hold {
			if hold[i].Sub.IsFatal() {
				failures = append(failures, hold[i].Time)
			}
		}
		if len(failures) < 2 {
			continue
		}
		start := hold[0].Time
		span := hold[len(hold)-1].Time.Sub(start)
		cfg := ftsim.Config{CheckpointCost: 5 * time.Minute, RestartCost: 10 * time.Minute}
		interval := ftsim.YoungInterval(cfg.CheckpointCost, ftsim.MTBF(failures))
		cfg.PeriodicInterval = interval

		for _, o := range []ftsim.Outcome{
			ftsim.Simulate("periodic", start, span, failures, nil, cfg),
			ftsim.Simulate("periodic+predictive", start, span, failures, warnings, cfg),
		} {
			t.AddRow(sys, o.Regime, interval.Round(time.Minute), o.Failures,
				o.Checkpoints, o.ProactiveCheckpoints,
				o.LostWork.Round(time.Minute).String(),
				o.Overhead.Round(time.Minute).String(), o.Efficiency())
		}
	}
	return []*report.Table{t}, nil
}

// robustness regenerates each system under several seeds and reports
// the spread of the headline metrics — the reproduction's error bars.
func robustness(c *Context) ([]*report.Table, error) {
	const seeds = 3
	t := report.NewTable(
		fmt.Sprintf("Seed robustness (%d seeds, scale %.2f, meta @30min and statistical @(5min,1h])", seeds, c.Scale),
		"system", "metric", "mean", "stddev")
	for _, sys := range Systems {
		prof, _ := bglsim.ProfileByName(sys)
		var statP, statR, metaP, metaR []float64
		for s := 0; s < seeds; s++ {
			p := prof
			p.Seed = prof.Seed + uint64(s)*7919
			gen, err := bglsim.Generate(p.Scaled(c.Scale))
			if err != nil {
				return nil, err
			}
			pre := preprocess.Run(gen.Events, preprocess.Options{})
			stat, err := eval.CrossValidate(pre.Events, c.Folds,
				func() predictor.Predictor { return predictor.NewStatistical() }, time.Hour)
			if err != nil {
				return nil, err
			}
			ruleWindow := paperRuleGenWindow(sys)
			meta, err := eval.CrossValidate(pre.Events, c.Folds, func() predictor.Predictor {
				m := predictor.NewMeta()
				m.Rule.Config.RuleGenWindow = ruleWindow
				return m
			}, 30*time.Minute)
			if err != nil {
				return nil, err
			}
			statP = append(statP, stat.MeanPrecision)
			statR = append(statR, stat.MeanRecall)
			metaP = append(metaP, meta.MeanPrecision)
			metaR = append(metaR, meta.MeanRecall)
		}
		for _, row := range []struct {
			name string
			vals []float64
		}{
			{"statistical precision", statP},
			{"statistical recall", statR},
			{"meta precision", metaP},
			{"meta recall", metaR},
		} {
			mean, sd := meanStddev(row.vals)
			t.AddRow(sys, row.name, mean, sd)
		}
	}
	return []*report.Table{t}, nil
}

func meanStddev(vals []float64) (mean, sd float64) {
	if len(vals) == 0 {
		return 0, 0
	}
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	for _, v := range vals {
		sd += (v - mean) * (v - mean)
	}
	sd = math.Sqrt(sd / float64(len(vals)))
	return mean, sd
}

// ---- Base-predictor comparison (DESIGN.md §11) -------------------------

// predictorComparison cross-validates every registered base predictor
// alone and the meta-learner over the classic pair and over all three
// bases, at the paper's 30-minute prediction window. It is the
// registry's accuracy story: what each base contributes, and what
// arbitration buys on top.
func predictorComparison(c *Context) ([]*report.Table, error) {
	var out []*report.Table
	for _, sys := range Systems {
		d, err := c.Dataset(sys)
		if err != nil {
			return nil, err
		}
		ruleWindow := paperRuleGenWindow(sys)
		rows := []struct {
			name    string
			factory func() predictor.Predictor
		}{
			{"statistical", func() predictor.Predictor { return predictor.NewStatistical() }},
			{"rule", func() predictor.Predictor {
				r := predictor.NewRule()
				r.Config.RuleGenWindow = ruleWindow
				return r
			}},
			{"ecg", func() predictor.Predictor {
				b, err := predictor.NewBase("ecg")
				if err != nil {
					panic(err) // registered via the blank import above
				}
				return b
			}},
			{"meta (stat+rule)", func() predictor.Predictor {
				m := predictor.NewMeta()
				m.Rule.Config.RuleGenWindow = ruleWindow
				return m
			}},
			{"meta (stat+rule+ecg)", func() predictor.Predictor {
				r := predictor.NewRule()
				r.Config.RuleGenWindow = ruleWindow
				ecgBase, err := predictor.NewBase("ecg")
				if err != nil {
					panic(err)
				}
				return predictor.NewMetaBases(predictor.NewStatistical(), r, ecgBase)
			}},
		}
		t := report.NewTable(
			fmt.Sprintf("Base-predictor comparison (%s, 30min window)", sys),
			"predictor", "precision", "recall", "F1")
		for _, row := range rows {
			res, err := eval.CrossValidate(d.Pre.Events, c.Folds, row.factory, 30*time.Minute)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", sys, row.name, err)
			}
			f1 := 0.0
			if res.MeanPrecision+res.MeanRecall > 0 {
				f1 = 2 * res.MeanPrecision * res.MeanRecall / (res.MeanPrecision + res.MeanRecall)
			}
			t.AddRow(row.name, res.MeanPrecision, res.MeanRecall, f1)
		}
		out = append(out, t)
	}
	return out, nil
}

// ---- Ablations (DESIGN.md §5) ------------------------------------------

func ablationPolicy(c *Context) ([]*report.Table, error) {
	var out []*report.Table
	for _, sys := range Systems {
		d, err := c.Dataset(sys)
		if err != nil {
			return nil, err
		}
		t := report.NewTable(
			fmt.Sprintf("Meta-learner arbitration policy ablation (%s, 30min window)", sys),
			"policy", "precision", "recall", "F1")
		for _, pol := range []predictor.Policy{
			predictor.PolicyCoverage, predictor.PolicyStrictCoverage,
			predictor.PolicyRulePriority, predictor.PolicyUnion,
		} {
			pol := pol
			ruleWindow := paperRuleGenWindow(sys)
			res, err := eval.CrossValidate(d.Pre.Events, c.Folds, func() predictor.Predictor {
				m := predictor.NewMeta()
				m.Policy = pol
				m.Rule.Config.RuleGenWindow = ruleWindow
				return m
			}, 30*time.Minute)
			if err != nil {
				return nil, err
			}
			f1 := 0.0
			if res.MeanPrecision+res.MeanRecall > 0 {
				f1 = 2 * res.MeanPrecision * res.MeanRecall / (res.MeanPrecision + res.MeanRecall)
			}
			t.AddRow(pol.String(), res.MeanPrecision, res.MeanRecall, f1)
		}
		out = append(out, t)
	}
	return out, nil
}

func ablationMiner(c *Context) ([]*report.Table, error) {
	d, err := c.Dataset("ANL")
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Frequent-itemset miner ablation (ANL, 15min rule-gen window)",
		"miner", "rules", "top rule", "mining time")
	miners := []struct {
		name  string
		miner assoc.Miner
	}{
		{"apriori", &assoc.Apriori{}},
		{"fpgrowth", &assoc.FPGrowth{}},
	}
	for _, m := range miners {
		r := predictor.NewRule()
		r.Config.RuleGenWindow = 15 * time.Minute
		r.Config.Miner = m.miner
		//bglvet:ignore determinism miner wall-clock comparison is the experiment; absolutes are not asserted
		startT := time.Now()
		if err := r.Train(d.Pre.Events); err != nil {
			return nil, err
		}
		elapsed := time.Since(startT).Round(time.Millisecond)
		top := "-"
		if r.Rules().Len() > 0 {
			top = r.Rules().Rules[0].Format(itemName)
		}
		t.AddRow(m.name, r.Rules().Len(), top, elapsed.String())
	}
	return []*report.Table{t}, nil
}

func ablationCompression(c *Context) ([]*report.Table, error) {
	d, err := c.Dataset("ANL")
	if err != nil {
		return nil, err
	}
	t := report.NewTable(
		"Compression threshold ablation (ANL; paper fixes 300s and reports no gain above it)",
		"threshold", "unique events", "unique fatal", "compression")
	for _, th := range []time.Duration{60 * time.Second, 150 * time.Second,
		300 * time.Second, 450 * time.Second, 600 * time.Second} {
		res := preprocess.Run(d.Gen.Events, preprocess.Options{
			TemporalThreshold: th, SpatialThreshold: th,
		})
		t.AddRow(th, res.Stats.AfterSpatial, res.Stats.FatalUnique,
			fmt.Sprintf("%.2f%%", res.Stats.CompressionRatio()*100))
	}
	return []*report.Table{t}, nil
}

func ablationSupport(c *Context) ([]*report.Table, error) {
	d, err := c.Dataset("ANL")
	if err != nil {
		return nil, err
	}
	events := d.Pre.Events
	cut := len(events) * 3 / 4
	train, hold := events[:cut], events[cut:]
	t := report.NewTable(
		"Minimum support sensitivity (ANL, 15min rule-gen window, 30min prediction window; paper states 0.04)",
		"min support", "rules", "precision", "recall")
	for _, sup := range []float64{0.002, 0.005, 0.01, 0.02, 0.04, 0.08} {
		r := predictor.NewRule()
		r.Config.RuleGenWindow = 15 * time.Minute
		r.Config.MinSupport = sup
		if err := r.Train(train); err != nil {
			return nil, err
		}
		o := eval.Match(r.Predict(hold, 30*time.Minute), hold)
		t.AddRow(fmt.Sprintf("%.3f", sup), r.Rules().Len(), o.Precision(), o.Recall())
	}
	return []*report.Table{t}, nil
}
