package raslog

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"time"
)

// Wire format. The binary *file* format (binlog.go) interns strings
// cumulatively and delta-encodes each record against the previous one,
// which makes a stream unsplittable: drop or reroute one record and
// every later delta is wrong. The wire format trades a few bytes per
// frame for exactly the properties a routing gate needs:
//
//	frame:  "BGLW" magic (4 bytes)
//	        version byte (0x01)
//	        varint  baseSec   (unix seconds; per-event times are
//	                           deltas from this, not from each other)
//	        varint  baseRecID (per-event rec ids likewise)
//	        uvarint payloadLen
//	        payload of records
//	record: tag byte
//	          0x01 = string-table add: uvarint len + bytes
//	          0x02 = event: uvarint bodyLen + body
//	body:   byte    location kind
//	        uvarint rack; then per kind: midplane/card/chip
//	        varint  time delta seconds from baseSec
//	        varint  rec id delta from baseRecID
//	        varint  job id
//	        byte    severity
//	        uvarint facility string index
//	        uvarint entry-data string index
//	        uvarint type string index
//
// The string table is scoped to one frame and capped (a week-long
// ingest connection cannot grow decoder memory without bound), every
// event body is length-prefixed (a corrupt record is skippable, and a
// gate can copy its raw bytes without decoding it), and the location
// comes first (a gate peeks the routing key and forwards the rest
// untouched). Because deltas are frame-relative, any subsequence of a
// frame's events — prefixed with the string-add records their indices
// require and the same frame header — is itself a valid frame: that is
// the splitting property the gate's peek-and-forward path relies on.

// WireContentType is the Content-Type negotiating the binary wire
// format on POST /v1/ingest. Anything else is read as text/NDJSON.
const WireContentType = "application/x-bglbin"

const (
	wireMagic   = "BGLW"
	wireVersion = 0x01

	// wireMaxFrameStrings caps one frame's string table; the writer
	// splits frames to respect it and the decoder rejects frames beyond
	// it. Together with payload chunked reads this bounds decoder
	// memory per connection regardless of stream length.
	wireMaxFrameStrings = 4096
	// wireMaxPayload caps one frame's payload length.
	wireMaxPayload = 1 << 24
	// wireFlushPayload is the writer's auto-split threshold.
	wireFlushPayload = 1 << 20
	// wireMaxString caps one interned string, as in the file format.
	wireMaxString = 1 << 20
	// wireMaxEventBody caps one event record's body.
	wireMaxEventBody = 1 << 16
	// wireInternCap caps the decoder's cross-frame intern map (distinct
	// strings kept alive for zero-alloc re-reads; beyond it, strings
	// still decode, they just allocate).
	wireInternCap = 1 << 14
	// wireReadChunk is the unit payload bytes are read in, so a frame
	// header lying about its length cannot make the decoder allocate
	// more than the bytes that actually arrive.
	wireReadChunk = 64 << 10
)

// Record tags within a wire frame payload. Exported so pass-through
// routers (the cluster gate) can classify records in WireFrame.Records
// callbacks without decoding event bodies.
const (
	WireTagString byte = 0x01 // string-table add: uvarint len + bytes
	WireTagEvent  byte = 0x02 // event record: uvarint bodyLen + body
)

// WireWriter encodes events into a stream of wire frames. Frames are
// cut automatically at the string-table cap and the payload threshold;
// Flush emits the pending frame. Unlike the file BinWriter it does not
// require time order (deltas are base-relative), though producers that
// feed engines should still send log order.
type WireWriter struct {
	w       io.Writer
	payload []byte
	body    []byte
	head    []byte
	strings map[string]uint64
	nstr    uint64
	baseSec int64
	baseID  int64
	n       int   // events in the pending frame
	count   int64 // lifetime events written
	err     error
}

// NewWireWriter returns a writer emitting frames to w.
func NewWireWriter(w io.Writer) *WireWriter {
	return &WireWriter{w: w, strings: make(map[string]uint64)}
}

// missing reports how many distinct strings of the event's three are
// not yet in the pending frame's table.
func (w *WireWriter) missing(e *Event) uint64 {
	var seen [3]string
	var m uint64
	for _, s := range [3]string{e.Facility, e.EntryData, e.Type} {
		if _, ok := w.strings[s]; ok {
			continue
		}
		dup := false
		for i := uint64(0); i < m; i++ {
			if seen[i] == s {
				dup = true
				break
			}
		}
		if !dup {
			seen[m] = s
			m++
		}
	}
	return m
}

// intern returns the frame-local string index, emitting an add record
// the first time the string appears in this frame.
func (w *WireWriter) intern(s string) uint64 {
	if idx, ok := w.strings[s]; ok {
		return idx
	}
	w.payload = append(w.payload, WireTagString)
	w.payload = binary.AppendUvarint(w.payload, uint64(len(s)))
	w.payload = append(w.payload, s...)
	idx := w.nstr
	w.strings[s] = idx
	w.nstr++
	return idx
}

// Write appends one event, opening or splitting frames as needed.
func (w *WireWriter) Write(e *Event) error {
	if w.err != nil {
		return w.err
	}
	if err := e.Validate(); err != nil {
		w.err = err
		return err
	}
	if len(e.Facility) > wireMaxString || len(e.EntryData) > wireMaxString || len(e.Type) > wireMaxString {
		w.err = fmt.Errorf("raslog: wire string over %d bytes", wireMaxString)
		return w.err
	}
	if w.n > 0 && (w.nstr+w.missing(e) > wireMaxFrameStrings || len(w.payload) >= wireFlushPayload) {
		if err := w.Flush(); err != nil {
			return err
		}
	}
	if w.n == 0 {
		w.baseSec = e.Time.Unix()
		w.baseID = e.RecID
	}
	facIdx := w.intern(e.Facility)
	entryIdx := w.intern(e.EntryData)
	typeIdx := w.intern(e.Type)

	b := w.body[:0]
	b = append(b, byte(e.Location.Kind))
	b = binary.AppendUvarint(b, uint64(e.Location.Rack))
	switch e.Location.Kind {
	case KindMidplane, KindServiceCard:
		b = binary.AppendUvarint(b, uint64(e.Location.Midplane))
	case KindNodeCard, KindLinkCard:
		b = binary.AppendUvarint(b, uint64(e.Location.Midplane))
		b = binary.AppendUvarint(b, uint64(e.Location.Card))
	case KindComputeChip, KindIONode:
		b = binary.AppendUvarint(b, uint64(e.Location.Midplane))
		b = binary.AppendUvarint(b, uint64(e.Location.Card))
		b = binary.AppendUvarint(b, uint64(e.Location.Chip))
	}
	b = binary.AppendVarint(b, e.Time.Unix()-w.baseSec)
	b = binary.AppendVarint(b, e.RecID-w.baseID)
	b = binary.AppendVarint(b, e.JobID)
	b = append(b, byte(e.Severity))
	b = binary.AppendUvarint(b, facIdx)
	b = binary.AppendUvarint(b, entryIdx)
	b = binary.AppendUvarint(b, typeIdx)
	w.body = b

	w.payload = append(w.payload, WireTagEvent)
	w.payload = binary.AppendUvarint(w.payload, uint64(len(b)))
	w.payload = append(w.payload, b...)
	w.n++
	w.count++
	return nil
}

// Flush emits the pending frame, if any, and resets the per-frame
// string table — the bounded-memory rule the wire format is built
// around.
func (w *WireWriter) Flush() error {
	if w.err != nil {
		return w.err
	}
	if w.n == 0 {
		return nil
	}
	w.head = AppendWireFrameHeader(w.head[:0], w.baseSec, w.baseID, len(w.payload))
	if _, err := w.w.Write(w.head); err != nil {
		w.err = err
		return err
	}
	if _, err := w.w.Write(w.payload); err != nil {
		w.err = err
		return err
	}
	w.payload = w.payload[:0]
	clear(w.strings)
	w.nstr = 0
	w.n = 0
	return nil
}

// Count returns the lifetime number of events written.
func (w *WireWriter) Count() int64 { return w.count }

// AppendWireFrameHeader appends a wire frame header for a payload of
// payloadLen bytes. The gate's pass-through path uses it to stamp the
// source frame's bases onto the per-owner sub-frames it assembles from
// raw record bytes.
func AppendWireFrameHeader(dst []byte, baseSec, baseRecID int64, payloadLen int) []byte {
	dst = append(dst, wireMagic...)
	dst = append(dst, wireVersion)
	dst = binary.AppendVarint(dst, baseSec)
	dst = binary.AppendVarint(dst, baseRecID)
	dst = binary.AppendUvarint(dst, uint64(payloadLen))
	return dst
}

// WireDecoder decodes a stream of wire frames with zero steady-state
// allocations: the payload buffer, the per-frame string table and the
// event arena are all reused across frames, and repeated strings
// resolve through a capped intern map without copying. It is intended
// to be pooled (sync.Pool) and re-armed per connection with Reset.
type WireDecoder struct {
	br      *bufio.Reader
	head    [5]byte
	payload []byte
	tbl     []string
	evs     []Event
	intern  map[string]string

	// OnSkip, when set, makes event-record decode failures non-fatal:
	// the bad record is skipped (its length prefix tells the decoder
	// where the next one starts) and handed to the callback. Frame-level
	// corruption — bad magic, a broken string table, truncation — still
	// fails ReadFrame, since nothing after it is trustworthy.
	OnSkip func(rec []byte, err error)
}

// NewWireDecoder returns a decoder reading frames from r.
func NewWireDecoder(r io.Reader) *WireDecoder {
	d := &WireDecoder{
		br:     bufio.NewReaderSize(r, 1<<16),
		intern: make(map[string]string),
	}
	return d
}

// Reset re-arms the decoder for a new stream, keeping its buffers and
// intern map — the pooling hook.
func (d *WireDecoder) Reset(r io.Reader) {
	d.br.Reset(r)
	d.OnSkip = nil
}

// errWire marks frame-level wire corruption.
var errWire = errors.New("raslog: corrupt wire frame")

func wiref(format string, args ...any) error {
	//bglvet:ignore hotpathalloc error construction runs only on corrupt frames, which abort the decode
	return fmt.Errorf("%w: %s", errWire, fmt.Sprintf(format, args...))
}

// ReadFrame decodes the next frame and returns its events. The slice
// (and the events' strings) is only valid until the next ReadFrame —
// callers that retain events must copy them out. io.EOF is returned at
// a clean frame boundary.
//
//bglvet:hotpath
func (d *WireDecoder) ReadFrame() ([]Event, error) {
	baseSec, baseID, err := d.readFrameHeader()
	if err != nil {
		return nil, err
	}
	d.tbl = d.tbl[:0]
	d.evs = d.evs[:0]
	payload := d.payload
	for pos := 0; pos < len(payload); {
		tag := payload[pos]
		pos++
		switch tag {
		case WireTagString:
			n, w := binary.Uvarint(payload[pos:])
			if w <= 0 || n > wireMaxString {
				return nil, wiref("bad string length at %d", pos)
			}
			pos += w
			if pos+int(n) > len(payload) {
				return nil, wiref("string truncated at %d", pos)
			}
			if len(d.tbl) >= wireMaxFrameStrings {
				return nil, wiref("frame exceeds %d strings", wireMaxFrameStrings)
			}
			b := payload[pos : pos+int(n)]
			s, ok := d.intern[string(b)] // no allocation on the hit path
			if !ok {
				//bglvet:ignore hotpathalloc intern-miss copy; the cache amortizes it to zero on the steady-state path the AllocsPerRun test pins
				s = string(b)
				if len(d.intern) < wireInternCap {
					d.intern[s] = s
				}
			}
			d.tbl = append(d.tbl, s)
			pos += int(n)
		case WireTagEvent:
			n, w := binary.Uvarint(payload[pos:])
			if w <= 0 || n > wireMaxEventBody {
				return nil, wiref("bad event length at %d", pos)
			}
			pos += w
			if pos+int(n) > len(payload) {
				return nil, wiref("event truncated at %d", pos)
			}
			body := payload[pos : pos+int(n)]
			pos += int(n)
			ev, err := decodeWireEvent(body, baseSec, baseID, d.tbl)
			if err != nil {
				if d.OnSkip == nil {
					return nil, err
				}
				d.OnSkip(body, err)
				continue
			}
			d.evs = append(d.evs, ev)
		default:
			return nil, wiref("unknown record tag 0x%02x at %d", tag, pos-1)
		}
	}
	return d.evs, nil
}

// readFrameHeader reads one frame header and fills d.payload with the
// frame's records, reading in bounded chunks so a hostile length
// prefix cannot force a large allocation.
func (d *WireDecoder) readFrameHeader() (baseSec, baseID int64, err error) {
	if _, err := io.ReadFull(d.br, d.head[:]); err != nil {
		if err == io.EOF {
			return 0, 0, io.EOF // clean end between frames
		}
		return 0, 0, wiref("header: %v", err)
	}
	if string(d.head[:4]) != wireMagic {
		return 0, 0, wiref("bad magic %q", d.head[:4])
	}
	if d.head[4] != wireVersion {
		return 0, 0, wiref("unsupported version 0x%02x", d.head[4])
	}
	if baseSec, err = binary.ReadVarint(d.br); err != nil {
		return 0, 0, wiref("base time: %v", err)
	}
	if baseID, err = binary.ReadVarint(d.br); err != nil {
		return 0, 0, wiref("base rec id: %v", err)
	}
	plen, err := binary.ReadUvarint(d.br)
	if err != nil || plen > wireMaxPayload {
		return 0, 0, wiref("payload length: err=%v len=%d", err, plen)
	}
	d.payload = d.payload[:0]
	for remaining := int(plen); remaining > 0; {
		chunk := remaining
		if chunk > wireReadChunk {
			chunk = wireReadChunk
		}
		n := len(d.payload)
		if cap(d.payload) < n+chunk {
			grown := make([]byte, n, n+chunk+(n+chunk)/2)
			copy(grown, d.payload)
			d.payload = grown
		}
		d.payload = d.payload[:n+chunk]
		if _, err := io.ReadFull(d.br, d.payload[n:]); err != nil {
			return 0, 0, wiref("payload truncated: %v", err)
		}
		remaining -= chunk
	}
	return baseSec, baseID, nil
}

// decodeWireLocation decodes the leading location of an event body and
// returns it with the number of bytes consumed.
func decodeWireLocation(body []byte) (Location, int, error) {
	if len(body) == 0 {
		return Location{}, 0, wiref("empty event body")
	}
	var loc Location
	loc.Kind = LocationKind(body[0])
	if loc.Kind < KindUnknown || loc.Kind > KindServiceCard {
		return Location{}, 0, wiref("invalid location kind %d", body[0])
	}
	pos := 1
	next := func(dst *int) error {
		v, w := binary.Uvarint(body[pos:])
		if w <= 0 || v > 1<<31 {
			return wiref("bad location field at %d", pos)
		}
		pos += w
		*dst = int(v)
		return nil
	}
	if err := next(&loc.Rack); err != nil {
		return Location{}, 0, err
	}
	fields := 0
	switch loc.Kind {
	case KindMidplane, KindServiceCard:
		fields = 1
	case KindNodeCard, KindLinkCard:
		fields = 2
	case KindComputeChip, KindIONode:
		fields = 3
	}
	dsts := [3]*int{&loc.Midplane, &loc.Card, &loc.Chip}
	for i := 0; i < fields; i++ {
		if err := next(dsts[i]); err != nil {
			return Location{}, 0, err
		}
	}
	return loc, pos, nil
}

// decodeWireEvent decodes one event body against the frame bases and
// string table.
func decodeWireEvent(body []byte, baseSec, baseID int64, tbl []string) (Event, error) {
	loc, pos, err := decodeWireLocation(body)
	if err != nil {
		return Event{}, err
	}
	var e Event
	e.Location = loc
	varint := func(what string) (int64, error) {
		v, w := binary.Varint(body[pos:])
		if w <= 0 {
			return 0, wiref("bad %s at %d", what, pos)
		}
		pos += w
		return v, nil
	}
	dsec, err := varint("time delta")
	if err != nil {
		return Event{}, err
	}
	e.Time = time.Unix(baseSec+dsec, 0).UTC()
	did, err := varint("rec id delta")
	if err != nil {
		return Event{}, err
	}
	e.RecID = baseID + did
	if e.JobID, err = varint("job id"); err != nil {
		return Event{}, err
	}
	if pos >= len(body) {
		return Event{}, wiref("severity missing")
	}
	e.Severity = Severity(body[pos])
	pos++
	if !e.Severity.Valid() {
		return Event{}, wiref("invalid severity %d", e.Severity)
	}
	str := func(what string) (string, error) {
		v, w := binary.Uvarint(body[pos:])
		if w <= 0 || v >= uint64(len(tbl)) {
			return "", wiref("bad %s index at %d", what, pos)
		}
		pos += w
		return tbl[v], nil
	}
	if e.Facility, err = str("facility"); err != nil {
		return Event{}, err
	}
	if e.EntryData, err = str("entry"); err != nil {
		return Event{}, err
	}
	if e.Type, err = str("type"); err != nil {
		return Event{}, err
	}
	return e, nil
}

// PeekWireEvent decodes only the routing prefix of an event body — its
// location and time — leaving the rest untouched. This is the gate's
// whole per-record decode cost on the pass-through path.
//
//bglvet:hotpath
func PeekWireEvent(body []byte, baseSec int64) (Location, time.Time, error) {
	loc, pos, err := decodeWireLocation(body)
	if err != nil {
		return Location{}, time.Time{}, err
	}
	dsec, w := binary.Varint(body[pos:])
	if w <= 0 {
		return Location{}, time.Time{}, wiref("bad time delta at %d", pos)
	}
	return loc, time.Unix(baseSec+dsec, 0).UTC(), nil
}

// WireFrame is one frame as surfaced by a WireScanner: the header
// bases plus the raw payload. Payload is only valid until the next
// Next call.
type WireFrame struct {
	BaseSec   int64
	BaseRecID int64
	Payload   []byte
}

// Records walks the frame's records in order. fn receives the tag, the
// full raw record bytes (tag + length prefix + content, ready to copy
// into another frame verbatim) and the content alone. A non-nil error
// from fn stops the walk.
func (f *WireFrame) Records(fn func(tag byte, raw, content []byte) error) error {
	p := f.Payload
	for pos := 0; pos < len(p); {
		start := pos
		tag := p[pos]
		pos++
		if tag != WireTagString && tag != WireTagEvent {
			return wiref("unknown record tag 0x%02x at %d", tag, start)
		}
		n, w := binary.Uvarint(p[pos:])
		limit := uint64(wireMaxString)
		if tag == WireTagEvent {
			limit = wireMaxEventBody
		}
		if w <= 0 || n > limit {
			return wiref("bad record length at %d", pos)
		}
		pos += w
		if pos+int(n) > len(p) {
			return wiref("record truncated at %d", pos)
		}
		if err := fn(tag, p[start:pos+int(n)], p[pos:pos+int(n)]); err != nil {
			return err
		}
		pos += int(n)
	}
	return nil
}

// WireScanner reads raw frames from a stream without decoding events —
// the gate's side of the format. It shares the chunked-read bounds of
// WireDecoder but keeps records as bytes.
type WireScanner struct {
	d     WireDecoder
	frame WireFrame
}

// NewWireScanner returns a scanner over r.
func NewWireScanner(r io.Reader) *WireScanner {
	s := &WireScanner{}
	s.d.br = bufio.NewReaderSize(r, 1<<16)
	return s
}

// Next reads the next frame. The returned frame's Payload is only
// valid until the following Next. io.EOF is returned at a clean
// boundary.
func (s *WireScanner) Next() (*WireFrame, error) {
	baseSec, baseID, err := s.d.readFrameHeader()
	if err != nil {
		return nil, err
	}
	s.frame = WireFrame{BaseSec: baseSec, BaseRecID: baseID, Payload: s.d.payload}
	return &s.frame, nil
}

// WriteWireFile writes events to path as a stream of wire frames.
func WriteWireFile(path string, events []Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := NewWireWriter(f)
	for i := range events {
		if err := w.Write(&events[i]); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadWireFile reads a wire-frame file written by WriteWireFile.
func ReadWireFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d := NewWireDecoder(f)
	var out []Event
	for {
		evs, err := d.ReadFrame()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, evs...)
	}
}
