package raslog

import (
	"math/rand/v2"
	"strings"
	"testing"
	"time"
)

func mkEvent(recID int64, t time.Time) Event {
	return Event{
		RecID:     recID,
		Type:      EventTypeRAS,
		Time:      t,
		JobID:     42,
		Location:  Location{Kind: KindComputeChip, Rack: 1, Midplane: 0, Card: 2, Chip: 3},
		EntryData: "torusFailure: uncorrectable torus error",
		Facility:  "KERNEL",
		Severity:  Fatal,
	}
}

var t0 = time.Date(2005, 1, 21, 0, 0, 0, 0, time.UTC)

func TestEventBefore(t *testing.T) {
	a := mkEvent(1, t0)
	b := mkEvent(2, t0)
	c := mkEvent(3, t0.Add(time.Second))
	if !a.Before(&b) {
		t.Error("same-second events must order by RecID")
	}
	if b.Before(&a) {
		t.Error("Before must not be symmetric")
	}
	if !b.Before(&c) || c.Before(&b) {
		t.Error("time order must dominate")
	}
	if a.Before(&a) {
		t.Error("Before must be irreflexive")
	}
}

func TestEventValidate(t *testing.T) {
	good := mkEvent(1, t0)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid event rejected: %v", err)
	}
	cases := map[string]func(*Event){
		"empty type":       func(e *Event) { e.Type = "" },
		"zero time":        func(e *Event) { e.Time = time.Time{} },
		"bad severity":     func(e *Event) { e.Severity = 17 },
		"pipe in entry":    func(e *Event) { e.EntryData = "a|b" },
		"newline in entry": func(e *Event) { e.EntryData = "a\nb" },
		"pipe in facility": func(e *Event) { e.Facility = "a|b" },
	}
	for name, mutate := range cases {
		e := mkEvent(1, t0)
		mutate(&e)
		if err := e.Validate(); err == nil {
			t.Errorf("%s: Validate succeeded, want error", name)
		}
	}
}

func TestSortEventsOnShuffled(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	events := make([]Event, 500)
	for i := range events {
		// Deliberately many duplicate timestamps to exercise the RecID
		// tiebreak.
		events[i] = mkEvent(int64(i), t0.Add(time.Duration(rng.IntN(60))*time.Second))
	}
	rng.Shuffle(len(events), func(i, j int) { events[i], events[j] = events[j], events[i] })
	SortEvents(events)
	if !EventsSorted(events) {
		t.Fatal("SortEvents left events unsorted")
	}
	// All 500 RecIDs must survive (permutation, not overwrite).
	seen := make(map[int64]bool, len(events))
	for i := range events {
		seen[events[i].RecID] = true
	}
	if len(seen) != 500 {
		t.Fatalf("sort lost records: %d unique of 500", len(seen))
	}
}

func TestSortEventsPresortedIsNoop(t *testing.T) {
	events := make([]Event, 100)
	for i := range events {
		events[i] = mkEvent(int64(i), t0.Add(time.Duration(i)*time.Second))
	}
	SortEvents(events)
	for i := range events {
		if events[i].RecID != int64(i) {
			t.Fatalf("presorted input reordered at %d", i)
		}
	}
}

func TestSortEventsStability(t *testing.T) {
	// Records already ordered by RecID within one second must keep that
	// order.
	events := []Event{mkEvent(5, t0), mkEvent(1, t0), mkEvent(3, t0)}
	SortEvents(events)
	want := []int64{1, 3, 5}
	for i, id := range want {
		if events[i].RecID != id {
			t.Fatalf("got order %v at %d, want %v", events[i].RecID, i, id)
		}
	}
}

func TestEventString(t *testing.T) {
	e := mkEvent(9, t0)
	s := e.String()
	for _, want := range []string{"#9", "FATAL", "KERNEL", "torusFailure", "R01-M0-N02-C03"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}
