package raslog

import (
	"bytes"
	"io"
	"math/rand/v2"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"
)

// sortedRandomEvents yields time-ordered events with realistic
// repetition (shared facilities and entry texts).
func sortedRandomEvents(rng *rand.Rand, n int) []Event {
	events := make([]Event, n)
	for i := range events {
		events[i] = randomEvent(rng, int64(i+1))
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Time.Before(events[j].Time) })
	for i := range events {
		events[i].RecID = int64(i + 1)
	}
	return events
}

func TestBinRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	events := sortedRandomEvents(rng, 2000)
	var buf bytes.Buffer
	w, err := NewBinWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range events {
		if err := w.Write(&events[i]); err != nil {
			t.Fatalf("Write(%d): %v", i, err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 2000 {
		t.Fatalf("Count = %d", w.Count())
	}

	r, err := NewBinReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got[i], events[i])
		}
	}
}

func TestBinCompactness(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 42))
	events := sortedRandomEvents(rng, 5000)
	var text, bin bytes.Buffer
	tw := NewWriter(&text)
	for i := range events {
		if err := tw.Write(&events[i]); err != nil {
			t.Fatal(err)
		}
	}
	tw.Flush()
	bw, err := NewBinWriter(&bin)
	if err != nil {
		t.Fatal(err)
	}
	for i := range events {
		if err := bw.Write(&events[i]); err != nil {
			t.Fatal(err)
		}
	}
	bw.Flush()
	if bin.Len()*3 > text.Len() {
		t.Fatalf("binary %d bytes vs text %d: want at least 3x smaller", bin.Len(), text.Len())
	}
}

func TestBinRejectsOutOfOrder(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewBinWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a := mkEvent(1, t0.Add(time.Hour))
	b := mkEvent(2, t0)
	if err := w.Write(&a); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(&b); err == nil {
		t.Fatal("out-of-order record accepted")
	}
}

func TestBinRejectsInvalidEvent(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewBinWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	bad := mkEvent(1, t0)
	bad.Severity = 42
	if err := w.Write(&bad); err == nil {
		t.Fatal("invalid event accepted")
	}
}

func TestBinReaderRejectsBadMagic(t *testing.T) {
	if _, err := NewBinReader(strings.NewReader("NOTALOG!")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := NewBinReader(strings.NewReader("x")); err == nil {
		t.Fatal("short header accepted")
	}
}

func TestBinReaderRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewPCG(51, 52))
	events := sortedRandomEvents(rng, 50)
	var buf bytes.Buffer
	w, _ := NewBinWriter(&buf)
	for i := range events {
		w.Write(&events[i])
	}
	w.Flush()
	data := buf.Bytes()

	// Truncation mid-record: the reader must error, not hang or panic.
	r, err := NewBinReader(bytes.NewReader(data[:len(data)-3]))
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.ReadAll()
	if err == nil || err == io.EOF {
		t.Fatalf("truncated log read cleanly: %v", err)
	}

	// Corrupt a tag byte past the header: unknown tag error.
	mutated := append([]byte(nil), data...)
	mutated[len(binMagic)] = 0x7f
	r, err = NewBinReader(bytes.NewReader(mutated))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadAll(); err == nil {
		t.Fatal("corrupt tag read cleanly")
	}
}

func TestWriteBinFileReadAnyFile(t *testing.T) {
	rng := rand.New(rand.NewPCG(61, 62))
	events := sortedRandomEvents(rng, 300)
	dir := t.TempDir()

	binPath := filepath.Join(dir, "log.bin")
	if err := WriteBinFile(binPath, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAnyFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) || got[0] != events[0] {
		t.Fatal("binary ReadAnyFile mismatch")
	}

	textPath := filepath.Join(dir, "log.txt")
	if err := WriteFile(textPath, events); err != nil {
		t.Fatal(err)
	}
	got, err = ReadAnyFile(textPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) || got[len(got)-1] != events[len(events)-1] {
		t.Fatal("text ReadAnyFile mismatch")
	}
}

func TestReadAnyFileTinyTextLog(t *testing.T) {
	// A text log shorter than the binary magic must still read.
	dir := t.TempDir()
	path := filepath.Join(dir, "tiny.txt")
	if err := WriteFile(path, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAnyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d events from empty log", len(got))
	}
}

func TestBinStringInterning(t *testing.T) {
	// Identical entry texts across records must be stored once: two
	// records sharing everything textual should cost far less than
	// double one record.
	e1 := mkEvent(1, t0)
	sizeOf := func(events []Event) int {
		var buf bytes.Buffer
		w, _ := NewBinWriter(&buf)
		for i := range events {
			if err := w.Write(&events[i]); err != nil {
				t.Fatal(err)
			}
		}
		w.Flush()
		return buf.Len()
	}
	one := sizeOf([]Event{e1})
	e2 := mkEvent(2, t0.Add(time.Second))
	two := sizeOf([]Event{e1, e2})
	if two-one > 20 {
		t.Fatalf("second interned record cost %d bytes; interning broken", two-one)
	}
}

func BenchmarkBinWrite(b *testing.B) {
	rng := rand.New(rand.NewPCG(71, 72))
	events := sortedRandomEvents(rng, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, _ := NewBinWriter(io.Discard)
		for j := range events {
			w.Write(&events[j])
		}
		w.Flush()
	}
	b.ReportMetric(float64(len(events)), "records/op")
}

func BenchmarkBinRead(b *testing.B) {
	rng := rand.New(rand.NewPCG(81, 82))
	events := sortedRandomEvents(rng, 10000)
	var buf bytes.Buffer
	w, _ := NewBinWriter(&buf)
	for i := range events {
		w.Write(&events[i])
	}
	w.Flush()
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := NewBinReader(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.ReadAll(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(events)), "records/op")
}
