package raslog

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// Reader for the publicly released Blue Gene/L RAS log format (the
// LLNL BG/L log distributed through the USENIX Computer Failure Data
// Repository and mirrored widely as "bgl2"). Lines look like:
//
//	- 1117838570 2005.06.03 R02-M1-N0-C:J12-U11 2005-06-03-15.42.50.363779 R02-M1-N0-C:J12-U11 RAS KERNEL INFO instruction cache parity error corrected
//
// Fields (space-separated):
//
//	0  alert category tag ("-" = non-alert)
//	1  unix timestamp (seconds)
//	2  date (yyyy.mm.dd)
//	3  source location
//	4  full-precision timestamp
//	5  location (again)
//	6  message type (RAS, ...)
//	7  facility (KERNEL, APP, DISCOVERY, MMCS, LINKCARD, MONITOR, HARDWARE, ...)
//	8  severity (INFO, WARNING, SEVERE, ERROR, FATAL, FAILURE)
//	9+ message text
//
// This reader lets the predictor run against the real public trace:
// the severity ladder and facilities match the paper's Table 2
// attributes directly; LOCATION uses LLNL's node-card grammar, which
// parseCFDRLocation maps onto our Location model; the public log
// carries no JOB ID column, so records get NoJob (the paper's ANL and
// SDSC dumps did include it).

// CFDRReader streams Events from the public BG/L log format.
type CFDRReader struct {
	sc   *bufio.Scanner
	line int64
	recs int64
	// Strict rejects malformed lines instead of skipping them.
	Strict bool
	// Skipped counts malformed lines dropped in non-strict mode.
	Skipped int64
}

// NewCFDRReader wraps r.
func NewCFDRReader(r io.Reader) *CFDRReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	return &CFDRReader{sc: sc}
}

// Read returns the next event, or io.EOF.
func (r *CFDRReader) Read() (Event, error) {
	for r.sc.Scan() {
		r.line++
		line := strings.TrimRight(r.sc.Text(), "\r")
		if line == "" {
			continue
		}
		ev, err := parseCFDRLine(line)
		if err != nil {
			if r.Strict {
				return Event{}, fmt.Errorf("line %d: %w", r.line, err)
			}
			r.Skipped++
			continue
		}
		r.recs++
		ev.RecID = r.recs
		return ev, nil
	}
	if err := r.sc.Err(); err != nil {
		return Event{}, err
	}
	return Event{}, io.EOF
}

// ReadAll drains the reader.
func (r *CFDRReader) ReadAll() ([]Event, error) {
	var out []Event
	for {
		ev, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, ev)
	}
}

func parseCFDRLine(line string) (Event, error) {
	fields := strings.SplitN(line, " ", 10)
	if len(fields) < 9 {
		return Event{}, fmt.Errorf("raslog: cfdr line has %d fields, want >= 9", len(fields))
	}
	sec, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Event{}, fmt.Errorf("raslog: cfdr timestamp %q", fields[1])
	}
	sev, err := ParseSeverity(fields[8])
	if err != nil {
		return Event{}, err
	}
	loc, err := ParseCFDRLocation(fields[3])
	if err != nil {
		// Some records locate at named services ("UNKNOWN_LOCATION",
		// "NULL"); keep them with an unknown location.
		loc = Location{}
	}
	msg := ""
	if len(fields) >= 10 {
		msg = fields[9]
	}
	// The log dialect reserves '|'; the public trace never uses it in
	// practice, but sanitize defensively.
	msg = strings.ReplaceAll(msg, "|", "/")
	return Event{
		Type:      fields[6],
		Time:      time.Unix(sec, 0).UTC(),
		JobID:     NoJob, // the public trace has no JOB ID column
		Location:  loc,
		Facility:  fields[7],
		Severity:  sev,
		EntryData: msg,
	}, nil
}

// ParseCFDRLocation parses LLNL's location grammar:
//
//	R02            rack
//	R02-M1         midplane
//	R02-M1-N0      node card (single hex-ish digit 0-F)
//	R02-M1-N0-C:J12-U11   compute card J slot / U chip position
//	R02-M1-N0-I:J18-U01   I/O card
//	R02-M1-L2      link card  (also seen as R02-M1-L2-U01)
//	R02-M1-S       service card
//
// J/U positions are folded into our card-relative chip index.
func ParseCFDRLocation(text string) (Location, error) {
	if text == "" || text == "-" {
		return Location{}, nil
	}
	parts := strings.Split(text, "-")
	bad := func() (Location, error) {
		return Location{}, fmt.Errorf("raslog: malformed cfdr location %q", text)
	}
	if len(parts[0]) < 2 || parts[0][0] != 'R' {
		return bad()
	}
	rack, err := strconv.Atoi(parts[0][1:])
	if err != nil || rack < 0 {
		return bad()
	}
	loc := Location{Kind: KindRack, Rack: rack}
	if len(parts) == 1 {
		return loc, nil
	}
	if len(parts[1]) != 2 || parts[1][0] != 'M' || (parts[1][1] != '0' && parts[1][1] != '1') {
		return bad()
	}
	loc.Kind = KindMidplane
	loc.Midplane = int(parts[1][1] - '0')
	if len(parts) == 2 {
		return loc, nil
	}
	seg := parts[2]
	if seg == "" {
		return bad()
	}
	switch seg[0] {
	case 'S':
		loc.Kind = KindServiceCard
		return loc, nil
	case 'L':
		n, err := strconv.Atoi(seg[1:])
		if err != nil || n < 0 {
			return bad()
		}
		loc.Kind = KindLinkCard
		loc.Card = n
		return loc, nil // trailing -U01 ignored: link card granularity
	case 'N':
		// Node card index is hexadecimal (N0..NF).
		n, err := strconv.ParseInt(seg[1:], 16, 32)
		if err != nil || n < 0 {
			return bad()
		}
		loc.Kind = KindNodeCard
		loc.Card = int(n)
	default:
		return bad()
	}
	if len(parts) == 3 {
		return loc, nil
	}
	// Compute or I/O card: "C:J12" / "I:J18" then "U11".
	cardSeg := parts[3]
	var kind LocationKind
	switch {
	case strings.HasPrefix(cardSeg, "C:J"):
		kind = KindComputeChip
	case strings.HasPrefix(cardSeg, "I:J"):
		kind = KindIONode
	default:
		return bad()
	}
	jpos, err := strconv.Atoi(cardSeg[3:])
	if err != nil || jpos < 0 {
		return bad()
	}
	upos := 0
	if len(parts) >= 5 {
		useg := parts[4]
		if len(useg) < 2 || useg[0] != 'U' {
			return bad()
		}
		if upos, err = strconv.Atoi(useg[1:]); err != nil || upos < 0 {
			return bad()
		}
	}
	loc.Kind = kind
	// Fold the (J, U) position into a stable per-card chip index. Each
	// J slot carries two chips, U01 and U11. The exact physical
	// mapping is irrelevant to the predictor — the index only needs to
	// be stable and injective, so: slot*2 + (0 for U01, 1 for U11).
	loc.Chip = jpos*2 + upos/10
	return loc, nil
}

// FormatCFDRLocation renders a Location in LLNL's grammar — the
// inverse of ParseCFDRLocation (J/U positions reconstruct from the
// folded chip index).
func FormatCFDRLocation(loc Location) string {
	switch loc.Kind {
	case KindRack:
		return fmt.Sprintf("R%02d", loc.Rack)
	case KindMidplane:
		return fmt.Sprintf("R%02d-M%d", loc.Rack, loc.Midplane)
	case KindNodeCard:
		return fmt.Sprintf("R%02d-M%d-N%X", loc.Rack, loc.Midplane, loc.Card)
	case KindLinkCard:
		return fmt.Sprintf("R%02d-M%d-L%d", loc.Rack, loc.Midplane, loc.Card)
	case KindServiceCard:
		return fmt.Sprintf("R%02d-M%d-S", loc.Rack, loc.Midplane)
	case KindComputeChip:
		return fmt.Sprintf("R%02d-M%d-N%X-C:J%02d-U%d1",
			loc.Rack, loc.Midplane, loc.Card, loc.Chip/2, loc.Chip%2)
	case KindIONode:
		return fmt.Sprintf("R%02d-M%d-N%X-I:J%02d-U%d1",
			loc.Rack, loc.Midplane, loc.Card, loc.Chip/2, loc.Chip%2)
	default:
		return "UNKNOWN_LOCATION"
	}
}

// WriteCFDR serializes events in the public trace format, enabling
// round trips with tools built against the CFDR release. Records with
// job attribution lose it (the public format has no JOB ID column).
func WriteCFDR(w io.Writer, events []Event) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	for i := range events {
		e := &events[i]
		loc := FormatCFDRLocation(e.Location)
		msg := strings.ReplaceAll(e.EntryData, "\n", " ")
		_, err := fmt.Fprintf(bw, "- %d %s %s %s %s %s %s %s %s\n",
			e.Time.Unix(),
			e.Time.UTC().Format("2006.01.02"),
			loc,
			e.Time.UTC().Format("2006-01-02-15.04.05.000000"),
			loc,
			e.Type, e.Facility, e.Severity, msg)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteCFDRFile writes events to path in the public trace format.
func WriteCFDRFile(path string, events []Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCFDR(f, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadCFDRFile loads a public-format BG/L log. Malformed lines are
// skipped (the published trace contains a handful); the skipped count
// is returned alongside the events.
func ReadCFDRFile(path string) ([]Event, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	r := NewCFDRReader(f)
	events, err := r.ReadAll()
	return events, r.Skipped, err
}
