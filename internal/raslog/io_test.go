package raslog

import (
	"bytes"
	"io"
	"math/rand/v2"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func randomEvent(rng *rand.Rand, recID int64) Event {
	facilities := []string{"KERNEL", "APP", "LINKCARD", "MMCS", "MONITOR", "HARDWARE"}
	entries := []string{
		"uncorrectable torus error",
		"socket closed",
		"ddr error correction info",
		"instruction address: 0x0000dead",
		"node card assembly warning",
	}
	return Event{
		RecID:     recID,
		Type:      EventTypeRAS,
		Time:      t0.Add(time.Duration(rng.IntN(100000)) * time.Second),
		JobID:     int64(rng.IntN(2000)) - 1,
		Location:  randomLocation(rng),
		EntryData: entries[rng.IntN(len(entries))],
		Facility:  facilities[rng.IntN(len(facilities))],
		Severity:  Severity(rng.IntN(int(numSeverities))),
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	events := make([]Event, 1000)
	for i := range events {
		events[i] = randomEvent(rng, int64(i))
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := range events {
		if err := w.Write(&events[i]); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if w.Count() != 1000 {
		t.Fatalf("Count = %d, want 1000", w.Count())
	}

	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d round trip mismatch:\n got %+v\nwant %+v", i, got[i], events[i])
		}
	}
}

func TestWriterRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	bad := mkEvent(1, t0)
	bad.EntryData = "has|pipe"
	if err := w.Write(&bad); err == nil {
		t.Fatal("Write accepted invalid event")
	}
	// Sticky error: subsequent valid writes must fail too.
	good := mkEvent(2, t0)
	if err := w.Write(&good); err == nil {
		t.Fatal("Write after error should keep failing")
	}
}

func TestReaderSkipsCommentsAndBlanks(t *testing.T) {
	input := "# header comment\n\n" +
		"1|RAS|2005-01-21 00:00:00|42|R01-M0-N02-C03|KERNEL|FATAL|x\n" +
		"\n# trailing\n"
	got, err := NewReader(strings.NewReader(input)).ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != 1 || got[0].RecID != 1 {
		t.Fatalf("got %v, want single record 1", got)
	}
}

func TestReaderReportsLineNumbers(t *testing.T) {
	input := "1|RAS|2005-01-21 00:00:00|42|R01|KERNEL|FATAL|ok\nnot-a-record\n"
	r := NewReader(strings.NewReader(input))
	if _, err := r.Read(); err != nil {
		t.Fatalf("first record: %v", err)
	}
	_, err := r.Read()
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-numbered error, got %v", err)
	}
}

func TestReaderMalformedFields(t *testing.T) {
	base := []string{"1", "RAS", "2005-01-21 00:00:00", "42", "R01", "KERNEL", "FATAL", "ok"}
	mutations := []struct {
		name  string
		field int
		value string
	}{
		{"bad recid", 0, "xx"},
		{"bad time", 2, "2005/01/21"},
		{"bad job", 3, "j9"},
		{"bad location", 4, "Z99"},
		{"bad severity", 6, "MEH"},
	}
	for _, m := range mutations {
		fields := append([]string(nil), base...)
		fields[m.field] = m.value
		_, err := NewReader(strings.NewReader(strings.Join(fields, "|"))).Read()
		if err == nil {
			t.Errorf("%s: Read succeeded, want error", m.name)
		}
	}
	if _, err := NewReader(strings.NewReader("a|b|c")).Read(); err == nil {
		t.Error("short line: Read succeeded, want error")
	}
}

func TestReadAtEOF(t *testing.T) {
	r := NewReader(strings.NewReader(""))
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("empty input: err = %v, want io.EOF", err)
	}
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "test.raslog")
	events := []Event{mkEvent(1, t0), mkEvent(2, t0.Add(time.Minute))}
	if err := WriteFile(path, events); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if len(got) != 2 || got[0] != events[0] || got[1] != events[1] {
		t.Fatalf("file round trip mismatch: %+v", got)
	}
}

func TestSummarize(t *testing.T) {
	events := []Event{
		mkEvent(1, t0.Add(time.Hour)),
		mkEvent(2, t0),
		mkEvent(3, t0.Add(2*time.Hour)),
	}
	events[1].Severity = Info
	s := Summarize(events)
	if s.Records != 3 {
		t.Errorf("Records = %d, want 3", s.Records)
	}
	if !s.Start.Equal(t0) || !s.End.Equal(t0.Add(2*time.Hour)) {
		t.Errorf("span [%v, %v], want [%v, %v]", s.Start, s.End, t0, t0.Add(2*time.Hour))
	}
	if s.Duration() != 2*time.Hour {
		t.Errorf("Duration = %v, want 2h", s.Duration())
	}
	if s.FatalRecs != 2 {
		t.Errorf("FatalRecs = %d, want 2", s.FatalRecs)
	}
	if s.BySev[Info] != 1 || s.BySev[Fatal] != 2 {
		t.Errorf("BySev = %v", s.BySev)
	}
	if s.Bytes <= 0 {
		t.Errorf("Bytes = %d, want > 0", s.Bytes)
	}
}

func TestSummarizeBytesMatchesSerialization(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	events := make([]Event, 200)
	for i := range events {
		events[i] = randomEvent(rng, int64(i))
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := range events {
		if err := w.Write(&events[i]); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	w.Flush()
	if got, want := Summarize(events).Bytes, int64(buf.Len()); got != want {
		t.Fatalf("Summary.Bytes = %d, serialized = %d", got, want)
	}
}

// writeFileString is a test helper shared with the CFDR tests.
func writeFileString(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
