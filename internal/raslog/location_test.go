package raslog

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestLocationStringParseRoundTrip(t *testing.T) {
	cases := []Location{
		{Kind: KindRack, Rack: 0},
		{Kind: KindRack, Rack: 31},
		{Kind: KindMidplane, Rack: 7, Midplane: 1},
		{Kind: KindNodeCard, Rack: 0, Midplane: 0, Card: 15},
		{Kind: KindComputeChip, Rack: 3, Midplane: 1, Card: 4, Chip: 31},
		{Kind: KindIONode, Rack: 3, Midplane: 0, Card: 9, Chip: 1},
		{Kind: KindLinkCard, Rack: 12, Midplane: 1, Card: 3},
		{Kind: KindServiceCard, Rack: 2, Midplane: 0},
	}
	for _, loc := range cases {
		text := loc.String()
		got, err := ParseLocation(text)
		if err != nil {
			t.Fatalf("ParseLocation(%q): %v", text, err)
		}
		if got != loc {
			t.Errorf("round trip %q: got %+v, want %+v", text, got, loc)
		}
	}
}

func TestParseLocationExamples(t *testing.T) {
	cases := map[string]Location{
		"R00":            {Kind: KindRack},
		"R07-M1":         {Kind: KindMidplane, Rack: 7, Midplane: 1},
		"R07-M1-N04":     {Kind: KindNodeCard, Rack: 7, Midplane: 1, Card: 4},
		"R07-M1-N04-C32": {Kind: KindComputeChip, Rack: 7, Midplane: 1, Card: 4, Chip: 32},
		"R07-M1-N04-I00": {Kind: KindIONode, Rack: 7, Midplane: 1, Card: 4},
		"R07-M1-L2":      {Kind: KindLinkCard, Rack: 7, Midplane: 1, Card: 2},
		"R07-M1-S":       {Kind: KindServiceCard, Rack: 7, Midplane: 1},
		"":               {},
		"?":              {},
	}
	for text, want := range cases {
		got, err := ParseLocation(text)
		if err != nil {
			t.Fatalf("ParseLocation(%q): %v", text, err)
		}
		if got != want {
			t.Errorf("ParseLocation(%q) = %+v, want %+v", text, got, want)
		}
	}
}

func TestParseLocationRejectsMalformed(t *testing.T) {
	bad := []string{
		"X00", "R", "Rxx", "R00-M2", "R00-MA", "R00-M0-X1",
		"R00-M0-N04-C32-Z9", "R00-M0-S-C1", "R00-M0-L1-C2",
		"R00-M0-N04-Q1", "R-1", "R00-M0-Ncc", "R00-M0-N04-C", "R00-M0-",
	}
	for _, text := range bad {
		if _, err := ParseLocation(text); err == nil {
			t.Errorf("ParseLocation(%q) succeeded, want error", text)
		}
	}
}

func TestLocationMidplaneOf(t *testing.T) {
	chip := Location{Kind: KindComputeChip, Rack: 5, Midplane: 1, Card: 3, Chip: 7}
	mp := chip.MidplaneOf()
	want := Location{Kind: KindMidplane, Rack: 5, Midplane: 1}
	if mp != want {
		t.Errorf("MidplaneOf = %+v, want %+v", mp, want)
	}
	rack := Location{Kind: KindRack, Rack: 5}
	if rack.MidplaneOf() != rack {
		t.Errorf("rack MidplaneOf should be identity")
	}
	var unknown Location
	if unknown.MidplaneOf() != unknown {
		t.Errorf("unknown MidplaneOf should be identity")
	}
}

func TestLocationContains(t *testing.T) {
	rack := Location{Kind: KindRack, Rack: 1}
	mp := Location{Kind: KindMidplane, Rack: 1, Midplane: 0}
	otherMP := Location{Kind: KindMidplane, Rack: 1, Midplane: 1}
	nc := Location{Kind: KindNodeCard, Rack: 1, Midplane: 0, Card: 2}
	chip := Location{Kind: KindComputeChip, Rack: 1, Midplane: 0, Card: 2, Chip: 9}
	io := Location{Kind: KindIONode, Rack: 1, Midplane: 0, Card: 2, Chip: 0}
	lc := Location{Kind: KindLinkCard, Rack: 1, Midplane: 0, Card: 1}

	tests := []struct {
		outer, inner Location
		want         bool
	}{
		{rack, mp, true},
		{rack, chip, true},
		{mp, nc, true},
		{mp, lc, true},
		{mp, otherMP, false},
		{nc, chip, true},
		{nc, io, true},
		{nc, lc, false},
		{chip, chip, true},
		{chip, nc, false},
		{Location{}, rack, false},
		{rack, Location{}, false},
		{Location{Kind: KindRack, Rack: 2}, mp, false},
	}
	for _, tc := range tests {
		if got := tc.outer.Contains(tc.inner); got != tc.want {
			t.Errorf("%v.Contains(%v) = %v, want %v", tc.outer, tc.inner, got, tc.want)
		}
	}
}

// randomLocation draws a structurally valid location.
func randomLocation(rng *rand.Rand) Location {
	kinds := []LocationKind{KindRack, KindMidplane, KindNodeCard,
		KindComputeChip, KindIONode, KindLinkCard, KindServiceCard}
	loc := Location{Kind: kinds[rng.IntN(len(kinds))], Rack: rng.IntN(64)}
	if loc.Kind != KindRack {
		loc.Midplane = rng.IntN(2)
	}
	switch loc.Kind {
	case KindNodeCard, KindComputeChip, KindIONode:
		loc.Card = rng.IntN(16)
	case KindLinkCard:
		loc.Card = rng.IntN(4)
	}
	switch loc.Kind {
	case KindComputeChip:
		loc.Chip = rng.IntN(32)
	case KindIONode:
		loc.Chip = rng.IntN(2)
	}
	return loc
}

func TestLocationRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	f := func() bool {
		loc := randomLocation(rng)
		got, err := ParseLocation(loc.String())
		return err == nil && got == loc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestLocationContainsIsReflexiveOnKnown(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	f := func() bool {
		loc := randomLocation(rng)
		return loc.Contains(loc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
