package raslog

import (
	"io"
	"math/rand/v2"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const cfdrSample = `- 1117838570 2005.06.03 R02-M1-N0-C:J12-U11 2005-06-03-15.42.50.363779 R02-M1-N0-C:J12-U11 RAS KERNEL INFO instruction cache parity error corrected
- 1117838573 2005.06.03 R24-M0-N9-I:J18-U01 2005-06-03-15.42.53.100000 R24-M0-N9-I:J18-U01 RAS KERNEL FATAL data TLB error interrupt
KERNDTLB 1117838976 2005.06.03 R23-M0-NE-C:J05-U01 2005-06-03-15.49.36.156884 R23-M0-NE-C:J05-U01 RAS KERNEL FATAL data TLB error interrupt
- 1117842440 2005.06.03 R16-M1-L2 2005-06-03-16.47.20.730545 R16-M1-L2 RAS LINKCARD FAILURE MidplaneSwitchController
- 1117842441 2005.06.03 R16-M1-S 2005-06-03-16.47.21.000000 R16-M1-S RAS MMCS WARNING service action started
- 1117842442 2005.06.03 UNKNOWN_LOCATION 2005-06-03-16.47.22.000000 UNKNOWN_LOCATION RAS MONITOR SEVERE fan speed low`

func TestCFDRReaderParsesSample(t *testing.T) {
	r := NewCFDRReader(strings.NewReader(cfdrSample))
	events, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 6 {
		t.Fatalf("parsed %d events, want 6", len(events))
	}
	if r.Skipped != 0 {
		t.Fatalf("skipped %d valid lines", r.Skipped)
	}

	e := events[0]
	if e.RecID != 1 || e.Type != "RAS" || e.Facility != "KERNEL" || e.Severity != Info {
		t.Fatalf("first event = %+v", e)
	}
	if !e.Time.Equal(time.Unix(1117838570, 0).UTC()) {
		t.Fatalf("time = %v", e.Time)
	}
	if e.JobID != NoJob {
		t.Fatalf("public trace has no job ids; got %d", e.JobID)
	}
	if e.EntryData != "instruction cache parity error corrected" {
		t.Fatalf("entry = %q", e.EntryData)
	}
	want := Location{Kind: KindComputeChip, Rack: 2, Midplane: 1, Card: 0, Chip: 25}
	if e.Location != want {
		t.Fatalf("location = %+v, want %+v", e.Location, want)
	}

	if events[1].Location.Kind != KindIONode || !events[1].Severity.IsFatal() {
		t.Fatalf("io event = %+v", events[1])
	}
	// Hex node card NE = 14.
	if events[2].Location.Card != 14 {
		t.Fatalf("hex node card = %+v", events[2].Location)
	}
	if events[3].Location.Kind != KindLinkCard || events[3].Severity != Failure {
		t.Fatalf("linkcard event = %+v", events[3])
	}
	if events[4].Location.Kind != KindServiceCard {
		t.Fatalf("service event = %+v", events[4])
	}
	// Unknown location tolerated.
	if events[5].Location.Kind != KindUnknown {
		t.Fatalf("unknown location = %+v", events[5].Location)
	}
}

func TestCFDRLocationGrammar(t *testing.T) {
	cases := map[string]Location{
		"R02":                 {Kind: KindRack, Rack: 2},
		"R02-M1":              {Kind: KindMidplane, Rack: 2, Midplane: 1},
		"R02-M1-N0":           {Kind: KindNodeCard, Rack: 2, Midplane: 1},
		"R02-M1-NF":           {Kind: KindNodeCard, Rack: 2, Midplane: 1, Card: 15},
		"R02-M1-L3":           {Kind: KindLinkCard, Rack: 2, Midplane: 1, Card: 3},
		"R02-M1-S":            {Kind: KindServiceCard, Rack: 2, Midplane: 1},
		"R02-M1-N0-C:J04":     {Kind: KindComputeChip, Rack: 2, Midplane: 1, Chip: 8},
		"R02-M1-N0-C:J04-U11": {Kind: KindComputeChip, Rack: 2, Midplane: 1, Chip: 9},
		"R02-M1-N0-I:J18-U01": {Kind: KindIONode, Rack: 2, Midplane: 1, Chip: 36},
		"-":                   {},
		"":                    {},
	}
	for text, want := range cases {
		got, err := ParseCFDRLocation(text)
		if err != nil {
			t.Fatalf("ParseCFDRLocation(%q): %v", text, err)
		}
		if got != want {
			t.Errorf("ParseCFDRLocation(%q) = %+v, want %+v", text, got, want)
		}
	}
	for _, bad := range []string{"X02", "R02-M2", "R02-M1-Q0", "R02-M1-N0-Z:J1",
		"R02-M1-N0-C:Jxx", "R02-M1-N0-C:J04-Vxx", "R02-M1-NZZ", "R02-M1-"} {
		if _, err := ParseCFDRLocation(bad); err == nil {
			t.Errorf("ParseCFDRLocation(%q) succeeded, want error", bad)
		}
	}
}

func TestCFDRChipIndexInjectivePerCard(t *testing.T) {
	// Distinct (J, U) positions on one card must map to distinct chip
	// indices, or compression would over-merge.
	seen := map[int]string{}
	for j := 2; j <= 17; j++ {
		for _, u := range []int{1, 11} {
			text := "R00-M0-N0-C:J" + itoa2(j) + "-U" + itoa2(u)
			loc, err := ParseCFDRLocation(text)
			if err != nil {
				t.Fatalf("%q: %v", text, err)
			}
			if prev, dup := seen[loc.Chip]; dup {
				t.Fatalf("chip index collision: %q and %q both map to %d", prev, text, loc.Chip)
			}
			seen[loc.Chip] = text
		}
	}
}

func itoa2(n int) string {
	if n < 10 {
		return "0" + string(rune('0'+n))
	}
	return string(rune('0'+n/10)) + string(rune('0'+n%10))
}

func TestCFDRReaderSkipsMalformedByDefault(t *testing.T) {
	input := "garbage line\n" + cfdrSample
	r := NewCFDRReader(strings.NewReader(input))
	events, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 6 || r.Skipped != 1 {
		t.Fatalf("events=%d skipped=%d", len(events), r.Skipped)
	}
}

func TestCFDRReaderStrictMode(t *testing.T) {
	r := NewCFDRReader(strings.NewReader("garbage line"))
	r.Strict = true
	if _, err := r.Read(); err == nil || err == io.EOF {
		t.Fatalf("strict mode tolerated garbage: %v", err)
	}
}

func TestCFDRReaderRejectsBadSeverity(t *testing.T) {
	line := "- 1117838570 2005.06.03 R02-M1-S 2005-06-03-15.42.50.363779 R02-M1-S RAS KERNEL NOTASEVERITY text"
	r := NewCFDRReader(strings.NewReader(line))
	r.Strict = true
	if _, err := r.Read(); err == nil || err == io.EOF {
		t.Fatal("bad severity accepted")
	}
}

func TestReadCFDRFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bgl.log")
	if err := writeFileString(path, cfdrSample+"\nbroken\n"); err != nil {
		t.Fatal(err)
	}
	events, skipped, err := ReadCFDRFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 6 || skipped != 1 {
		t.Fatalf("events=%d skipped=%d", len(events), skipped)
	}
}

func TestCFDREventsFeedTheLogDialect(t *testing.T) {
	// Parsed public-trace events must be writable in our dialect (the
	// bridge a user needs to convert the real log once and reuse it).
	r := NewCFDRReader(strings.NewReader(cfdrSample))
	events, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "converted.raslog")
	if err := WriteFile(path, events); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("round trip %d != %d", len(back), len(events))
	}
}

func TestCFDRWriteReadRoundTrip(t *testing.T) {
	// Events exported to the public format and re-imported must agree
	// on every attribute the format can carry (JOB ID is lost; RecIDs
	// are re-assigned by arrival order).
	events := []Event{
		mkEvent(1, t0),
		mkEvent(2, t0.Add(time.Minute)),
	}
	events[1].Location = Location{Kind: KindIONode, Rack: 3, Midplane: 1, Card: 9, Chip: 37}
	events[1].Severity = Failure
	events[1].Facility = "LINKCARD"
	events[1].EntryData = "MidplaneSwitchController failure"

	dir := t.TempDir()
	path := filepath.Join(dir, "export.cfdr")
	if err := WriteCFDRFile(path, events); err != nil {
		t.Fatal(err)
	}
	back, skipped, err := ReadCFDRFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(back) != len(events) {
		t.Fatalf("skipped=%d len=%d", skipped, len(back))
	}
	for i := range events {
		e, b := events[i], back[i]
		if !b.Time.Equal(e.Time) || b.Severity != e.Severity ||
			b.Facility != e.Facility || b.EntryData != e.EntryData ||
			b.Location != e.Location || b.Type != e.Type {
			t.Fatalf("record %d drift:\n out %+v\n in  %+v", i, e, b)
		}
		if b.JobID != NoJob {
			t.Fatalf("record %d kept a job id through a format without one", i)
		}
	}
}

func TestFormatCFDRLocationRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(121, 122))
	for trial := 0; trial < 2000; trial++ {
		loc := randomLocation(rng)
		text := FormatCFDRLocation(loc)
		back, err := ParseCFDRLocation(text)
		if err != nil {
			t.Fatalf("cannot re-parse %q (from %+v): %v", text, loc, err)
		}
		if back != loc {
			t.Fatalf("round trip drift: %+v -> %q -> %+v", loc, text, back)
		}
	}
	if FormatCFDRLocation(Location{}) != "UNKNOWN_LOCATION" {
		t.Fatal("unknown location should format as UNKNOWN_LOCATION")
	}
}
