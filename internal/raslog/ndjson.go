package raslog

import (
	"encoding/json"
	"fmt"
	"time"
)

// NDJSON wire form of an Event. The serving path (internal/serve)
// accepts newline-delimited records in either the pipe dialect or this
// JSON object form, one record per line; Reader sniffs the two by the
// leading byte. Field names follow the DB2 column names of paper
// Table 2, TIME uses the same "2006-01-02 15:04:05" UTC layout as the
// pipe dialect (RFC 3339 is tolerated on read).
type eventJSON struct {
	RecID     int64  `json:"recid"`
	Type      string `json:"type"`
	Time      string `json:"time"`
	JobID     int64  `json:"jobid"`
	Location  string `json:"location"`
	Facility  string `json:"facility"`
	Severity  string `json:"severity"`
	EntryData string `json:"entry_data"`
}

// MarshalJSON renders the event as one NDJSON object.
func (e Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(eventJSON{
		RecID:     e.RecID,
		Type:      e.Type,
		Time:      e.Time.UTC().Format(timeLayout),
		JobID:     e.JobID,
		Location:  e.Location.String(),
		Facility:  e.Facility,
		Severity:  e.Severity.String(),
		EntryData: e.EntryData,
	})
}

// UnmarshalJSON parses the NDJSON object form.
func (e *Event) UnmarshalJSON(data []byte) error {
	var w eventJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	ts, err := time.ParseInLocation(timeLayout, w.Time, time.UTC)
	if err != nil {
		if ts, err = time.Parse(time.RFC3339, w.Time); err != nil {
			return fmt.Errorf("raslog: bad timestamp %q", w.Time)
		}
	}
	loc, err := ParseLocation(w.Location)
	if err != nil {
		return err
	}
	sev, err := ParseSeverity(w.Severity)
	if err != nil {
		return err
	}
	*e = Event{
		RecID:     w.RecID,
		Type:      w.Type,
		Time:      ts,
		JobID:     w.JobID,
		Location:  loc,
		Facility:  w.Facility,
		Severity:  sev,
		EntryData: w.EntryData,
	}
	return nil
}
