package raslog

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"
)

// The fuzz targets double as robustness unit tests: `go test` runs
// every seed, and `go test -fuzz=FuzzX ./internal/raslog` explores
// further. The parsers must never panic and must reject what they
// cannot round-trip.

func FuzzParseLocation(f *testing.F) {
	for _, seed := range []string{
		"R00", "R07-M1", "R07-M1-N04", "R07-M1-N04-C32", "R07-M1-N04-I00",
		"R07-M1-L2", "R07-M1-S", "", "?", "R", "R-1", "R00-M2", "R00-M0-X9",
		"R00-M0-N04-C32-Z9", "R99-M1-N99-C99", "R00-M0-NX", "-M0", "R00--N01",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		loc, err := ParseLocation(text)
		if err != nil {
			return
		}
		// Anything accepted must render and re-parse to itself.
		back, err := ParseLocation(loc.String())
		if err != nil {
			t.Fatalf("accepted %q -> %v but cannot re-parse: %v", text, loc, err)
		}
		if back != loc {
			t.Fatalf("round trip drift: %q -> %v -> %v", text, loc, back)
		}
	})
}

func FuzzParseLine(f *testing.F) {
	f.Add("1|RAS|2005-01-21 00:00:00|42|R01-M0-N02-C03|KERNEL|FATAL|uncorrectable torus error")
	f.Add("1|RAS|2005-01-21 00:00:00|-1|R01|KERNEL|INFO|x")
	f.Add("||||||| ")
	f.Add("1|RAS|bad time|42|R01|KERNEL|FATAL|x")
	f.Add("9223372036854775807|T|2005-01-21 00:00:00|0|?|F|FAILURE|")
	f.Fuzz(func(t *testing.T, line string) {
		ev, err := parseLine(line)
		if err != nil {
			return
		}
		// Accepted records with writable fields must survive a
		// write/read cycle.
		if ev.Validate() != nil {
			return // parseLine tolerates some fields Writer rejects
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.Write(&ev); err != nil {
			t.Fatalf("cannot re-write parsed record: %v", err)
		}
		w.Flush()
		back, err := NewReader(&buf).Read()
		if err != nil {
			t.Fatalf("cannot re-read written record: %v", err)
		}
		if back != ev {
			t.Fatalf("round trip drift:\n in  %+v\n out %+v", ev, back)
		}
	})
}

func FuzzBinReader(f *testing.F) {
	// Seed with a valid log and some corruptions of it.
	var buf bytes.Buffer
	w, _ := NewBinWriter(&buf)
	e := mkEvent(1, t0)
	w.Write(&e)
	e2 := mkEvent(2, t0.Add(time.Minute))
	w.Write(&e2)
	w.Flush()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add([]byte(binMagic))
	f.Add([]byte("BGLRAS1\n\xff\xff\xff\xff"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewBinReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Must terminate without panicking; errors are fine. Cap reads
		// so a pathological input cannot balloon.
		for i := 0; i < 100000; i++ {
			_, err := r.Read()
			if err == io.EOF || err != nil {
				return
			}
		}
	})
}

func FuzzParseSeverity(f *testing.F) {
	for _, s := range []string{"INFO", "FATAL", "FAILURE", "", "fatal", "X"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		sev, err := ParseSeverity(text)
		if err != nil {
			return
		}
		if sev.String() != strings.ToUpper(text) {
			t.Fatalf("accepted %q as %v", text, sev)
		}
	})
}
