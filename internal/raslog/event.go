package raslog

import (
	"fmt"
	"strings"
	"time"
)

// NoJob is the JOB ID value for records not attributable to a user job
// (for example service-card or link-card events raised by CMCS itself).
const NoJob int64 = -1

// Event is a single RAS record with the seven attributes of paper
// Table 2.
type Event struct {
	// RecID is a monotonically increasing record identifier assigned by
	// the logging mechanism. It is not one of the seven attributes but
	// every DB2 dump carries one; it breaks ties among same-timestamp
	// records.
	RecID int64

	// Type is the EVENT TYPE attribute: "the mechanism through which the
	// event is recorded, mostly RAS".
	Type string

	// Time is the EVENT TIME attribute. CMCS checks at sub-millisecond
	// granularity but records timestamps in seconds, which is why raw
	// logs contain many same-second duplicates.
	Time time.Time

	// JobID is the JOB ID attribute: the job that detects the event, or
	// NoJob.
	JobID int64

	// Location is the parsed LOCATION attribute.
	Location Location

	// EntryData is the ENTRY DATA attribute: a short description of the
	// event. Phase 1 categorization keys off keywords in this field.
	EntryData string

	// Facility is the FACILITY attribute: the service or hardware
	// component that experienced the event (e.g. KERNEL, LINKCARD,
	// MMCS, APP).
	Facility string

	// Severity is the SEVERITY attribute.
	Severity Severity
}

// EventTypeRAS is the EVENT TYPE carried by almost all records.
const EventTypeRAS = "RAS"

// IsFatal reports whether the record is a fatal event (severity FATAL
// or FAILURE) — the prediction target.
func (e *Event) IsFatal() bool { return e.Severity.IsFatal() }

// String renders a one-line human-readable form (not the serialization
// format; see Writer).
func (e *Event) String() string {
	return fmt.Sprintf("#%d %s %s job=%d loc=%s fac=%s sev=%s %q",
		e.RecID, e.Type, e.Time.UTC().Format(time.RFC3339), e.JobID,
		e.Location, e.Facility, e.Severity, e.EntryData)
}

// Before orders events by time, breaking ties by RecID so that sorting
// is deterministic for the many same-second records in a raw log.
func (e *Event) Before(other *Event) bool {
	if !e.Time.Equal(other.Time) {
		return e.Time.Before(other.Time)
	}
	return e.RecID < other.RecID
}

// Validate checks structural invariants a well-formed record satisfies.
func (e *Event) Validate() error {
	switch {
	case e.Type == "":
		return fmt.Errorf("raslog: record %d: empty event type", e.RecID)
	case e.Time.IsZero():
		return fmt.Errorf("raslog: record %d: zero timestamp", e.RecID)
	case !e.Severity.Valid():
		return fmt.Errorf("raslog: record %d: invalid severity %d", e.RecID, int(e.Severity))
	case strings.ContainsAny(e.EntryData, "\n|"):
		return fmt.Errorf("raslog: record %d: entry data contains reserved characters", e.RecID)
	case strings.ContainsAny(e.Facility, "\n|"):
		return fmt.Errorf("raslog: record %d: facility contains reserved characters", e.RecID)
	}
	return nil
}

// SortEvents orders events in place by (Time, RecID).
func SortEvents(events []Event) {
	// Insertion of sort.Slice here would be fine, but logs are huge and
	// nearly sorted (generators and real CMCS dumps emit in time order),
	// so use a simple binary-insertion pass that is O(n) when presorted.
	for i := 1; i < len(events); i++ {
		if events[i-1].Before(&events[i]) || !events[i].Before(&events[i-1]) {
			continue
		}
		// Find insertion point for events[i] in events[:i].
		lo, hi := 0, i
		for lo < hi {
			mid := (lo + hi) / 2
			if events[mid].Before(&events[i]) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		ev := events[i]
		copy(events[lo+1:i+1], events[lo:i])
		events[lo] = ev
	}
}

// EventsSorted reports whether events are ordered by (Time, RecID).
func EventsSorted(events []Event) bool {
	for i := 1; i < len(events); i++ {
		if events[i].Before(&events[i-1]) {
			return false
		}
	}
	return true
}
