package raslog

import (
	"fmt"
	"strconv"
	"strings"
)

// LocationKind identifies which hardware level of the Blue Gene/L
// packaging hierarchy a LOCATION string names.
type LocationKind int

// Location kinds, from coarse to fine.
const (
	KindUnknown LocationKind = iota
	KindRack
	KindMidplane
	KindNodeCard
	KindComputeChip
	KindIONode
	KindLinkCard
	KindServiceCard
)

var kindNames = map[LocationKind]string{
	KindUnknown:     "unknown",
	KindRack:        "rack",
	KindMidplane:    "midplane",
	KindNodeCard:    "node-card",
	KindComputeChip: "compute-chip",
	KindIONode:      "io-node",
	KindLinkCard:    "link-card",
	KindServiceCard: "service-card",
}

// String returns a human-readable name for the kind.
func (k LocationKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("LocationKind(%d)", int(k))
}

// Location is a parsed LOCATION attribute. It names a place in the
// BG/L packaging hierarchy:
//
//	R07            rack 7
//	R07-M1         midplane 1 of rack 7
//	R07-M1-N04     node card 4 of that midplane
//	R07-M1-N04-C32 compute chip 32 on that node card
//	R07-M1-N04-I00 I/O chip 0 on that node card
//	R07-M1-L2      link card 2 of that midplane
//	R07-M1-S       the midplane's service card
//
// Fields below the named Kind are zero and ignored by comparisons.
type Location struct {
	Kind     LocationKind
	Rack     int
	Midplane int // 0 or 1
	Card     int // node card (0-15) or link card (0-3) index
	Chip     int // compute chip (0-31) or I/O chip index on a node card
}

// String formats the location in the BG/L LOCATION grammar shown above.
// Unknown locations format as "?".
func (l Location) String() string {
	switch l.Kind {
	case KindRack:
		return fmt.Sprintf("R%02d", l.Rack)
	case KindMidplane:
		return fmt.Sprintf("R%02d-M%d", l.Rack, l.Midplane)
	case KindNodeCard:
		return fmt.Sprintf("R%02d-M%d-N%02d", l.Rack, l.Midplane, l.Card)
	case KindComputeChip:
		return fmt.Sprintf("R%02d-M%d-N%02d-C%02d", l.Rack, l.Midplane, l.Card, l.Chip)
	case KindIONode:
		return fmt.Sprintf("R%02d-M%d-N%02d-I%02d", l.Rack, l.Midplane, l.Card, l.Chip)
	case KindLinkCard:
		return fmt.Sprintf("R%02d-M%d-L%d", l.Rack, l.Midplane, l.Card)
	case KindServiceCard:
		return fmt.Sprintf("R%02d-M%d-S", l.Rack, l.Midplane)
	default:
		return "?"
	}
}

// ParseLocation parses a LOCATION string in the grammar documented on
// Location. It accepts any truncation point of the hierarchy.
func ParseLocation(text string) (Location, error) {
	var loc Location
	if text == "" || text == "?" {
		return loc, nil
	}
	parts := strings.Split(text, "-")
	bad := func() (Location, error) {
		return Location{}, fmt.Errorf("raslog: malformed location %q", text)
	}
	// Rack segment.
	if len(parts[0]) < 2 || parts[0][0] != 'R' {
		return bad()
	}
	n, err := strconv.Atoi(parts[0][1:])
	if err != nil || n < 0 {
		return bad()
	}
	loc = Location{Kind: KindRack, Rack: n}
	if len(parts) == 1 {
		return loc, nil
	}
	// Midplane segment.
	if len(parts[1]) != 2 || parts[1][0] != 'M' || (parts[1][1] != '0' && parts[1][1] != '1') {
		return bad()
	}
	loc.Kind = KindMidplane
	loc.Midplane = int(parts[1][1] - '0')
	if len(parts) == 2 {
		return loc, nil
	}
	// Card segment: Nxx, Lx, or S.
	seg := parts[2]
	if seg == "" {
		return bad()
	}
	switch {
	case seg == "S":
		if len(parts) != 3 {
			return bad()
		}
		loc.Kind = KindServiceCard
		return loc, nil
	case seg[0] == 'L':
		if len(parts) != 3 {
			return bad()
		}
		n, err := strconv.Atoi(seg[1:])
		if err != nil || n < 0 {
			return bad()
		}
		loc.Kind = KindLinkCard
		loc.Card = n
		return loc, nil
	case seg[0] == 'N':
		n, err := strconv.Atoi(seg[1:])
		if err != nil || n < 0 {
			return bad()
		}
		loc.Kind = KindNodeCard
		loc.Card = n
	default:
		return bad()
	}
	if len(parts) == 3 {
		return loc, nil
	}
	if len(parts) != 4 || len(parts[3]) < 2 {
		return bad()
	}
	// Chip segment: Cxx or Ixx.
	n, err = strconv.Atoi(parts[3][1:])
	if err != nil || n < 0 {
		return bad()
	}
	switch parts[3][0] {
	case 'C':
		loc.Kind = KindComputeChip
	case 'I':
		loc.Kind = KindIONode
	default:
		return bad()
	}
	loc.Chip = n
	return loc, nil
}

// MidplaneOf returns the midplane-level prefix of the location, which is
// the granularity jobs are scheduled at. Rack-level and unknown
// locations are returned unchanged.
func (l Location) MidplaneOf() Location {
	switch l.Kind {
	case KindUnknown, KindRack:
		return l
	default:
		return Location{Kind: KindMidplane, Rack: l.Rack, Midplane: l.Midplane}
	}
}

// Contains reports whether the subtree of the packaging hierarchy rooted
// at l includes other. A location contains itself. Unknown locations
// contain nothing and are contained by nothing.
func (l Location) Contains(other Location) bool {
	if l.Kind == KindUnknown || other.Kind == KindUnknown {
		return false
	}
	if l.Rack != other.Rack {
		return false
	}
	switch l.Kind {
	case KindRack:
		return true
	case KindMidplane:
		return l.Midplane == other.Midplane
	case KindNodeCard:
		if other.Kind != KindNodeCard && other.Kind != KindComputeChip && other.Kind != KindIONode {
			return false
		}
		return l.Midplane == other.Midplane && l.Card == other.Card
	default:
		return l == other
	}
}
