package raslog

import "testing"

func TestSeverityOrdering(t *testing.T) {
	// The constant order must match the CMCS "increasing order of
	// severity" wording: INFO < WARNING < SEVERE < ERROR < FATAL < FAILURE.
	order := []Severity{Info, Warning, Severe, Error, Fatal, Failure}
	for i := 1; i < len(order); i++ {
		if order[i-1] >= order[i] {
			t.Errorf("severity %v not below %v", order[i-1], order[i])
		}
	}
}

func TestSeverityString(t *testing.T) {
	want := map[Severity]string{
		Info:    "INFO",
		Warning: "WARNING",
		Severe:  "SEVERE",
		Error:   "ERROR",
		Fatal:   "FATAL",
		Failure: "FAILURE",
	}
	for sev, name := range want {
		if got := sev.String(); got != name {
			t.Errorf("%d.String() = %q, want %q", int(sev), got, name)
		}
	}
	if got := Severity(99).String(); got != "Severity(99)" {
		t.Errorf("out-of-range String() = %q", got)
	}
}

func TestParseSeverityRoundTrip(t *testing.T) {
	for _, sev := range Severities() {
		got, err := ParseSeverity(sev.String())
		if err != nil {
			t.Fatalf("ParseSeverity(%q): %v", sev.String(), err)
		}
		if got != sev {
			t.Errorf("round trip %v -> %v", sev, got)
		}
	}
}

func TestParseSeverityRejectsUnknown(t *testing.T) {
	for _, bad := range []string{"", "fatal", "FATAL ", "CRITICAL"} {
		if _, err := ParseSeverity(bad); err == nil {
			t.Errorf("ParseSeverity(%q) succeeded, want error", bad)
		}
	}
}

func TestIsFatal(t *testing.T) {
	for _, sev := range Severities() {
		want := sev == Fatal || sev == Failure
		if got := sev.IsFatal(); got != want {
			t.Errorf("%v.IsFatal() = %v, want %v", sev, got, want)
		}
	}
}

func TestSeverityValid(t *testing.T) {
	for _, sev := range Severities() {
		if !sev.Valid() {
			t.Errorf("%v.Valid() = false", sev)
		}
	}
	for _, bad := range []Severity{-1, numSeverities, 42} {
		if bad.Valid() {
			t.Errorf("Severity(%d).Valid() = true", int(bad))
		}
	}
}
