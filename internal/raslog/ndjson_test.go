package raslog

import (
	"encoding/json"
	"io"
	"strings"
	"testing"
	"time"
)

func sampleEvent() Event {
	return Event{
		RecID:     42,
		Type:      EventTypeRAS,
		Time:      time.Date(2005, 1, 21, 3, 4, 5, 0, time.UTC),
		JobID:     7,
		Location:  Location{Kind: KindComputeChip, Rack: 7, Midplane: 1, Card: 4, Chip: 31},
		Facility:  "KERNEL",
		Severity:  Fatal,
		EntryData: "rts tree receiver failure",
	}
}

func TestEventJSONRoundTrip(t *testing.T) {
	want := sampleEvent()
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	var got Event
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestReaderMixedDialects(t *testing.T) {
	ev := sampleEvent()
	jsonLine, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	var pipe strings.Builder
	w := NewWriter(&pipe)
	if err := w.Write(&ev); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// A stream mixing a pipe line, a comment, and an NDJSON line.
	stream := pipe.String() + "# comment\n" + string(jsonLine) + "\n"
	r := NewReader(strings.NewReader(stream))
	for i := 0; i < 2; i++ {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != ev {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got, ev)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
}

func TestReaderBadJSONLine(t *testing.T) {
	r := NewReader(strings.NewReader("{\"recid\": \"nope\"}\n"))
	if _, err := r.Read(); err == nil {
		t.Fatal("malformed JSON line accepted")
	}
	r = NewReader(strings.NewReader("{\"recid\": 1, \"time\": \"yesterday\"}\n"))
	if _, err := r.Read(); err == nil || !strings.Contains(err.Error(), "timestamp") {
		t.Fatalf("want timestamp error, got %v", err)
	}
}

func TestEventJSONRFC3339Tolerated(t *testing.T) {
	var got Event
	line := `{"recid":1,"type":"RAS","time":"2005-01-21T03:04:05Z","jobid":-1,"location":"R07-M1","facility":"MMCS","severity":"ERROR","entry_data":"x"}`
	if err := json.Unmarshal([]byte(line), &got); err != nil {
		t.Fatal(err)
	}
	if !got.Time.Equal(time.Date(2005, 1, 21, 3, 4, 5, 0, time.UTC)) {
		t.Fatalf("time = %v", got.Time)
	}
	if got.Location.Kind != KindMidplane || got.Location.Rack != 7 {
		t.Fatalf("location = %+v", got.Location)
	}
}
