package raslog

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"time"
)

// Binary log format. Full-scale logs run to millions of records
// (paper Table 1: 4.2M for ANL) and the text dialect costs ~110 bytes
// per record; this format exploits the log's structure — timestamps
// are nondecreasing, entry texts repeat across CMCS duplicates, and
// facilities come from a tiny set — to get well under 20 bytes per
// record:
//
//	header: "BGLRAS1\n"
//	record: tag byte
//	          0x01 = string-table add: uvarint len + bytes
//	          0x02 = event
//	          0x03 = string-table reset (see below)
//	event:  uvarint  time delta seconds (from previous event; first is
//	                 delta from unix epoch)
//	        varint   job id
//	        byte     location kind
//	        uvarint  rack; then per kind: midplane/card/chip
//	        byte     severity
//	        uvarint  facility string index
//	        uvarint  entry-data string index
//	        uvarint  rec id delta (from previous rec id, zigzag)
//	        uvarint  type string index
//
// Strings are interned in arrival order; index n refers to the n-th
// 0x01 record since the last 0x03 reset (or stream start). The table
// is capped at binMaxStrings: when the writer would exceed it, it
// emits a reset and re-interns from an empty table, so a long-lived
// stream with unbounded distinct strings holds reader and writer
// memory at the cap instead of growing forever. Readers reject a
// stream whose table passes the cap without a reset.

const binMagic = "BGLRAS1\n"

const (
	tagString byte = 0x01
	tagEvent  byte = 0x02
	tagReset  byte = 0x03

	// binMaxStrings caps the string table between resets.
	binMaxStrings = 1 << 16
)

// BinWriter streams RAS records in the binary format.
type BinWriter struct {
	bw      *bufio.Writer
	strings map[string]uint64
	nstr    uint64
	lastSec int64
	lastID  int64
	count   int64
	err     error
	started bool
	scratch [binary.MaxVarintLen64]byte
}

// NewBinWriter writes the header and returns a writer.
func NewBinWriter(w io.Writer) (*BinWriter, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(binMagic); err != nil {
		return nil, err
	}
	return &BinWriter{bw: bw, strings: make(map[string]uint64)}, nil
}

func (w *BinWriter) uvarint(v uint64) {
	if w.err != nil {
		return
	}
	n := binary.PutUvarint(w.scratch[:], v)
	_, w.err = w.bw.Write(w.scratch[:n])
}

func (w *BinWriter) varint(v int64) {
	if w.err != nil {
		return
	}
	n := binary.PutVarint(w.scratch[:], v)
	_, w.err = w.bw.Write(w.scratch[:n])
}

func (w *BinWriter) byte(b byte) {
	if w.err != nil {
		return
	}
	w.err = w.bw.WriteByte(b)
}

// missing reports how many distinct strings of the event's three are
// not yet in the current table generation.
func (w *BinWriter) missing(e *Event) uint64 {
	var seen [3]string
	var m uint64
	for _, s := range [3]string{e.Facility, e.EntryData, e.Type} {
		if _, ok := w.strings[s]; ok {
			continue
		}
		dup := false
		for i := uint64(0); i < m; i++ {
			if seen[i] == s {
				dup = true
				break
			}
		}
		if !dup {
			seen[m] = s
			m++
		}
	}
	return m
}

// intern returns the string-table index, emitting an add record the
// first time a string is seen in the current table generation.
func (w *BinWriter) intern(s string) uint64 {
	if idx, ok := w.strings[s]; ok {
		return idx
	}
	w.byte(tagString)
	w.uvarint(uint64(len(s)))
	if w.err == nil {
		_, w.err = w.bw.WriteString(s)
	}
	idx := w.nstr
	w.strings[s] = idx
	w.nstr++
	return idx
}

// Write appends one record. Records must arrive in nondecreasing
// time order (the order logs are stored in).
func (w *BinWriter) Write(e *Event) error {
	if w.err != nil {
		return w.err
	}
	if err := e.Validate(); err != nil {
		w.err = err
		return err
	}
	sec := e.Time.Unix()
	if w.started && sec < w.lastSec {
		w.err = fmt.Errorf("raslog: binary log requires time order (record %d went backwards)", e.RecID)
		return w.err
	}
	// Reset before interning anything: all three of this event's
	// indices must come from the same table generation.
	if w.nstr+w.missing(e) > binMaxStrings {
		w.byte(tagReset)
		clear(w.strings)
		w.nstr = 0
	}
	facIdx := w.intern(e.Facility)
	entryIdx := w.intern(e.EntryData)
	typeIdx := w.intern(e.Type)

	w.byte(tagEvent)
	if !w.started {
		w.uvarint(uint64(sec))
		w.started = true
	} else {
		w.uvarint(uint64(sec - w.lastSec))
	}
	w.lastSec = sec
	w.varint(e.JobID)
	w.byte(byte(e.Location.Kind))
	w.uvarint(uint64(e.Location.Rack))
	switch e.Location.Kind {
	case KindMidplane, KindServiceCard:
		w.uvarint(uint64(e.Location.Midplane))
	case KindNodeCard, KindLinkCard:
		w.uvarint(uint64(e.Location.Midplane))
		w.uvarint(uint64(e.Location.Card))
	case KindComputeChip, KindIONode:
		w.uvarint(uint64(e.Location.Midplane))
		w.uvarint(uint64(e.Location.Card))
		w.uvarint(uint64(e.Location.Chip))
	}
	w.byte(byte(e.Severity))
	w.uvarint(facIdx)
	w.uvarint(entryIdx)
	w.varint(e.RecID - w.lastID)
	w.lastID = e.RecID
	w.uvarint(typeIdx)
	if w.err == nil {
		w.count++
	}
	return w.err
}

// Count returns records written.
func (w *BinWriter) Count() int64 { return w.count }

// Flush drains buffered output.
func (w *BinWriter) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.err = w.bw.Flush()
	return w.err
}

// BinReader streams records from the binary format.
type BinReader struct {
	br      *bufio.Reader
	strings []string
	lastSec int64
	lastID  int64
	started bool
}

// NewBinReader validates the header and returns a reader.
func NewBinReader(r io.Reader) (*BinReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head := make([]byte, len(binMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("raslog: reading binary header: %w", err)
	}
	if string(head) != binMagic {
		return nil, fmt.Errorf("raslog: not a binary RAS log (bad magic %q)", head)
	}
	return &BinReader{br: br}, nil
}

func (r *BinReader) str(idx uint64) (string, error) {
	if idx >= uint64(len(r.strings)) {
		return "", fmt.Errorf("raslog: string index %d out of range", idx)
	}
	return r.strings[idx], nil
}

// Read returns the next record, or io.EOF at the end.
func (r *BinReader) Read() (Event, error) {
	for {
		tag, err := r.br.ReadByte()
		if err != nil {
			return Event{}, err // io.EOF at a record boundary is clean
		}
		switch tag {
		case tagString:
			n, err := binary.ReadUvarint(r.br)
			if err != nil {
				return Event{}, fmt.Errorf("raslog: string length: %w", err)
			}
			if n > 1<<20 {
				return Event{}, fmt.Errorf("raslog: string of %d bytes implausible", n)
			}
			if len(r.strings) >= binMaxStrings {
				return Event{}, fmt.Errorf("raslog: string table exceeds %d entries without a reset", binMaxStrings)
			}
			buf := make([]byte, n)
			if _, err := io.ReadFull(r.br, buf); err != nil {
				return Event{}, fmt.Errorf("raslog: string body: %w", err)
			}
			r.strings = append(r.strings, string(buf))
		case tagReset:
			r.strings = r.strings[:0]
		case tagEvent:
			return r.readEvent()
		default:
			return Event{}, fmt.Errorf("raslog: unknown record tag 0x%02x", tag)
		}
	}
}

func (r *BinReader) readEvent() (Event, error) {
	var e Event
	fail := func(what string, err error) (Event, error) {
		return Event{}, fmt.Errorf("raslog: %s: %w", what, err)
	}
	dsec, err := binary.ReadUvarint(r.br)
	if err != nil {
		return fail("time delta", err)
	}
	if r.started {
		r.lastSec += int64(dsec)
	} else {
		r.lastSec = int64(dsec)
		r.started = true
	}
	e.Time = time.Unix(r.lastSec, 0).UTC()
	if e.JobID, err = binary.ReadVarint(r.br); err != nil {
		return fail("job id", err)
	}
	kind, err := r.br.ReadByte()
	if err != nil {
		return fail("location kind", err)
	}
	e.Location.Kind = LocationKind(kind)
	if e.Location.Kind < KindUnknown || e.Location.Kind > KindServiceCard {
		return Event{}, fmt.Errorf("raslog: invalid location kind %d", kind)
	}
	rack, err := binary.ReadUvarint(r.br)
	if err != nil {
		return fail("rack", err)
	}
	e.Location.Rack = int(rack)
	readInt := func(dst *int, what string) error {
		v, err := binary.ReadUvarint(r.br)
		if err != nil {
			return fmt.Errorf("raslog: %s: %w", what, err)
		}
		*dst = int(v)
		return nil
	}
	switch e.Location.Kind {
	case KindMidplane, KindServiceCard:
		if err := readInt(&e.Location.Midplane, "midplane"); err != nil {
			return Event{}, err
		}
	case KindNodeCard, KindLinkCard:
		if err := readInt(&e.Location.Midplane, "midplane"); err != nil {
			return Event{}, err
		}
		if err := readInt(&e.Location.Card, "card"); err != nil {
			return Event{}, err
		}
	case KindComputeChip, KindIONode:
		if err := readInt(&e.Location.Midplane, "midplane"); err != nil {
			return Event{}, err
		}
		if err := readInt(&e.Location.Card, "card"); err != nil {
			return Event{}, err
		}
		if err := readInt(&e.Location.Chip, "chip"); err != nil {
			return Event{}, err
		}
	}
	sev, err := r.br.ReadByte()
	if err != nil {
		return fail("severity", err)
	}
	e.Severity = Severity(sev)
	if !e.Severity.Valid() {
		return Event{}, fmt.Errorf("raslog: invalid severity %d", sev)
	}
	facIdx, err := binary.ReadUvarint(r.br)
	if err != nil {
		return fail("facility index", err)
	}
	if e.Facility, err = r.str(facIdx); err != nil {
		return Event{}, err
	}
	entryIdx, err := binary.ReadUvarint(r.br)
	if err != nil {
		return fail("entry index", err)
	}
	if e.EntryData, err = r.str(entryIdx); err != nil {
		return Event{}, err
	}
	did, err := binary.ReadVarint(r.br)
	if err != nil {
		return fail("rec id delta", err)
	}
	r.lastID += did
	e.RecID = r.lastID
	typeIdx, err := binary.ReadUvarint(r.br)
	if err != nil {
		return fail("type index", err)
	}
	if e.Type, err = r.str(typeIdx); err != nil {
		return Event{}, err
	}
	return e, nil
}

// ReadAll drains the reader.
func (r *BinReader) ReadAll() ([]Event, error) {
	var out []Event
	for {
		e, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
}

// WriteBinFile writes events (time-sorted) to path in binary format.
func WriteBinFile(path string, events []Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w, err := NewBinWriter(f)
	if err != nil {
		f.Close()
		return err
	}
	for i := range events {
		if err := w.Write(&events[i]); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadAnyFile reads a RAS log in either format, sniffing the binary
// magic.
func ReadAnyFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	head := make([]byte, len(binMagic))
	n, err := io.ReadFull(f, head)
	if err != nil && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	if n == len(binMagic) && string(head) == binMagic {
		r, err := NewBinReader(f)
		if err != nil {
			return nil, err
		}
		return r.ReadAll()
	}
	if n >= len(wireMagic) && string(head[:len(wireMagic)]) == wireMagic {
		d := NewWireDecoder(f)
		var out []Event
		for {
			evs, err := d.ReadFrame()
			if err == io.EOF {
				return out, nil
			}
			if err != nil {
				return out, err
			}
			out = append(out, evs...)
		}
	}
	return NewReader(f).ReadAll()
}
