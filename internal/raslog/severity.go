// Package raslog defines the RAS (Reliability, Availability,
// Serviceability) event model used throughout the predictor: the seven
// log attributes of the Blue Gene/L CMCS repository (paper Table 2), the
// severity ladder, the BG/L location grammar, and a streaming log
// serialization format.
package raslog

import "fmt"

// Severity is the SEVERITY attribute of a RAS record. The ordering of
// the constants is the increasing order of severity used by CMCS:
// INFO < WARNING < SEVERE < ERROR < FATAL < FAILURE.
type Severity int

// Severity levels, in increasing order of severity.
const (
	Info Severity = iota
	Warning
	Severe
	Error
	Fatal
	Failure

	numSeverities
)

var severityNames = [...]string{
	Info:    "INFO",
	Warning: "WARNING",
	Severe:  "SEVERE",
	Error:   "ERROR",
	Fatal:   "FATAL",
	Failure: "FAILURE",
}

// String returns the CMCS spelling of the severity (e.g. "FATAL").
func (s Severity) String() string {
	if s < 0 || int(s) >= len(severityNames) {
		return fmt.Sprintf("Severity(%d)", int(s))
	}
	return severityNames[s]
}

// Valid reports whether s is one of the six CMCS severities.
func (s Severity) Valid() bool { return s >= Info && s < numSeverities }

// IsFatal reports whether the severity denotes a fatal event in the
// paper's sense: FATAL and FAILURE records "usually lead to
// application/software crashes" and are the prediction targets. All
// other severities are non-fatal.
func (s Severity) IsFatal() bool { return s == Fatal || s == Failure }

// ParseSeverity converts a CMCS severity spelling back to a Severity.
func ParseSeverity(text string) (Severity, error) {
	for i, name := range severityNames {
		if name == text {
			return Severity(i), nil
		}
	}
	return 0, fmt.Errorf("raslog: unknown severity %q", text)
}

// Severities returns all six severity levels in increasing order.
// The slice is freshly allocated; callers may mutate it.
func Severities() []Severity {
	out := make([]Severity, numSeverities)
	for i := range out {
		out[i] = Severity(i)
	}
	return out
}
