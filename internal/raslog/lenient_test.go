package raslog

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"strings"
	"testing"
)

// interleavedGarbage renders n valid records with garbage lines
// spliced in at the given 1-based line numbers.
func interleavedGarbage(t *testing.T, n int, garbageAt map[int]string) (string, []Event) {
	t.Helper()
	rng := rand.New(rand.NewPCG(7, 8))
	events := make([]Event, n)
	for i := range events {
		events[i] = randomEvent(rng, int64(i))
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	line := 0
	var out bytes.Buffer
	for i := range events {
		line++
		for g, ok := garbageAt[line]; ok; g, ok = garbageAt[line] {
			out.WriteString(g + "\n")
			line++
		}
		buf.Reset()
		if err := w.Write(&events[i]); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		out.Write(buf.Bytes())
	}
	line++
	if g, ok := garbageAt[line]; ok {
		out.WriteString(g + "\n")
	}
	return out.String(), events
}

func TestLenientReaderSkipsGarbage(t *testing.T) {
	garbage := map[int]string{
		1: "<<< log rotated >>>", // a leading '#' would count as a comment

		4: "this|has|too|few|fields",
		7: "0|RAS|not-a-time|0|R00-M0|KERNEL|INFO|x",
	}
	input, events := interleavedGarbage(t, 5, garbage)

	var seen []LineError
	r := NewReader(strings.NewReader(input)).Lenient(func(le LineError) {
		seen = append(seen, le)
	})
	got, err := r.ReadAll()
	if err != nil {
		t.Fatalf("lenient ReadAll: %v", err)
	}
	if len(got) != len(events) {
		t.Fatalf("decoded %d records, want %d around the garbage", len(got), len(events))
	}
	for i := range got {
		if got[i].RecID != events[i].RecID || !got[i].Time.Equal(events[i].Time) {
			t.Fatalf("record %d mangled by lenient mode: %+v", i, got[i])
		}
	}
	if r.SkippedLines() != int64(len(garbage)) {
		t.Fatalf("SkippedLines = %d, want %d", r.SkippedLines(), len(garbage))
	}
	if len(seen) != len(garbage) {
		t.Fatalf("onSkip saw %d lines, want %d", len(seen), len(garbage))
	}
	for _, le := range seen {
		want, ok := garbage[int(le.Line)]
		if !ok {
			t.Fatalf("skipped line %d was not a garbage line", le.Line)
		}
		if le.Raw != want {
			t.Fatalf("line %d raw = %q, want %q", le.Line, le.Raw, want)
		}
		if le.Err == nil {
			t.Fatalf("line %d has no cause", le.Line)
		}
	}
}

func TestStrictReaderStillFailsWithLineError(t *testing.T) {
	input, _ := interleavedGarbage(t, 3, map[int]string{2: "garbage"})
	r := NewReader(strings.NewReader(input))
	if _, err := r.Read(); err != nil {
		t.Fatalf("line 1 is valid: %v", err)
	}
	_, err := r.Read()
	if err == nil {
		t.Fatal("strict reader accepted garbage")
	}
	var le *LineError
	if !errors.As(err, &le) {
		t.Fatalf("strict error %T does not unwrap to *LineError", err)
	}
	if le.Line != 2 || le.Raw != "garbage" {
		t.Fatalf("LineError = %+v, want line 2 %q", le, "garbage")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error %q lost the line number", err)
	}
}
