package raslog

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// The on-disk dialect is one record per line, eight pipe-separated
// fields mirroring a DB2 RAS dump:
//
//	RECID|TYPE|TIME|JOBID|LOCATION|FACILITY|SEVERITY|ENTRY_DATA
//
// TIME is RFC 3339 in UTC at one-second resolution, matching the
// paper's observation that "the recorded event time is generally in
// seconds". ENTRY_DATA is last because it is the only field with
// free-ish text (pipes and newlines are rejected at write time).

const timeLayout = "2006-01-02 15:04:05"

// A Writer streams RAS records to an underlying io.Writer in the log
// dialect above.
type Writer struct {
	bw    *bufio.Writer
	count int64
	err   error
}

// NewWriter returns a Writer emitting to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<16)}
}

// Write appends one record. The first error encountered is sticky.
func (w *Writer) Write(e *Event) error {
	if w.err != nil {
		return w.err
	}
	if err := e.Validate(); err != nil {
		w.err = err
		return err
	}
	_, err := fmt.Fprintf(w.bw, "%d|%s|%s|%d|%s|%s|%s|%s\n",
		e.RecID, e.Type, e.Time.UTC().Format(timeLayout), e.JobID,
		e.Location, e.Facility, e.Severity, e.EntryData)
	if err != nil {
		w.err = err
		return err
	}
	w.count++
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() int64 { return w.count }

// Flush drains buffered output to the underlying writer.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.err = w.bw.Flush()
	return w.err
}

// LineError describes one line a Reader could not decode: where it
// was, what it looked like, and why it failed. Strict readers return
// it from Read; lenient readers hand it to the OnSkip callback and
// keep going.
type LineError struct {
	// Line is the 1-based line number within the stream.
	Line int64
	// Raw is the offending line's text.
	Raw string
	// Err is the decode failure.
	Err error
}

func (e *LineError) Error() string { return fmt.Sprintf("line %d: %v", e.Line, e.Err) }
func (e *LineError) Unwrap() error { return e.Err }

// A Reader streams RAS records from an underlying io.Reader. Each
// line is either a pipe-dialect record or an NDJSON object (see
// ndjson.go); the two may be mixed freely within one stream.
//
// By default the reader is strict: the first undecodable line fails
// Read with a *LineError. Lenient switches it to skip such lines —
// counting them and surfacing each to a callback — so one garbage
// line interleaved into a production RAS stream cannot terminate
// ingestion of everything after it.
type Reader struct {
	sc      *bufio.Scanner
	line    int64
	last    string
	lenient bool
	skipped int64
	onSkip  func(LineError)
}

// NewReader returns a Reader consuming the log dialect from r.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	return &Reader{sc: sc}
}

// Lenient switches the reader to skip undecodable lines instead of
// failing the stream. Each skipped line is counted (SkippedLines) and
// passed to onSkip (which may be nil). Returns r for chaining.
func (r *Reader) Lenient(onSkip func(LineError)) *Reader {
	r.lenient = true
	r.onSkip = onSkip
	return r
}

// SkippedLines reports how many undecodable lines a lenient reader
// has skipped so far.
func (r *Reader) SkippedLines() int64 { return r.skipped }

// Raw returns the raw text of the line most recently scanned — the one
// the last successful Read decoded. Callers that transform decoded
// events (the gate's re-encode path) use it to preserve the original
// bytes of a record they cannot reproduce.
func (r *Reader) Raw() string { return r.last }

// Line returns the 1-based line number of the most recently scanned
// line.
func (r *Reader) Line() int64 { return r.line }

// Read returns the next record, or io.EOF after the last one. In
// strict mode (the default) an undecodable line returns a *LineError;
// in lenient mode it is skipped and the scan continues.
func (r *Reader) Read() (Event, error) {
	for r.sc.Scan() {
		r.line++
		line := r.sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue // blank lines and comments are permitted
		}
		r.last = line
		var ev Event
		var err error
		if line[0] == '{' {
			err = json.Unmarshal(r.sc.Bytes(), &ev)
		} else {
			ev, err = parseLine(line)
		}
		if err != nil {
			le := LineError{Line: r.line, Raw: line, Err: err}
			if r.lenient {
				r.skipped++
				if r.onSkip != nil {
					r.onSkip(le)
				}
				continue
			}
			return Event{}, &le
		}
		return ev, nil
	}
	if err := r.sc.Err(); err != nil {
		return Event{}, err
	}
	return Event{}, io.EOF
}

// ReadAll drains the reader into a slice.
func (r *Reader) ReadAll() ([]Event, error) {
	var out []Event
	for {
		ev, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, ev)
	}
}

func parseLine(line string) (Event, error) {
	// SplitN so a stray pipe in ENTRY_DATA (rejected by the writer, but
	// tolerated on read) stays in the final field.
	fields := strings.SplitN(line, "|", 8)
	if len(fields) != 8 {
		return Event{}, fmt.Errorf("raslog: want 8 fields, got %d", len(fields))
	}
	recID, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return Event{}, fmt.Errorf("raslog: bad record id %q", fields[0])
	}
	ts, err := time.ParseInLocation(timeLayout, fields[2], time.UTC)
	if err != nil {
		return Event{}, fmt.Errorf("raslog: bad timestamp %q", fields[2])
	}
	jobID, err := strconv.ParseInt(fields[3], 10, 64)
	if err != nil {
		return Event{}, fmt.Errorf("raslog: bad job id %q", fields[3])
	}
	loc, err := ParseLocation(fields[4])
	if err != nil {
		return Event{}, err
	}
	sev, err := ParseSeverity(fields[6])
	if err != nil {
		return Event{}, err
	}
	return Event{
		RecID:     recID,
		Type:      fields[1],
		Time:      ts,
		JobID:     jobID,
		Location:  loc,
		Facility:  fields[5],
		Severity:  sev,
		EntryData: fields[7],
	}, nil
}

// WriteFile writes events to path in the log dialect.
func WriteFile(path string, events []Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := NewWriter(f)
	for i := range events {
		if err := w.Write(&events[i]); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads an entire log file.
func ReadFile(path string) ([]Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return NewReader(f).ReadAll()
}

// Summary aggregates what paper Table 1 reports about a log.
type Summary struct {
	Records   int64
	Start     time.Time
	End       time.Time
	Bytes     int64 // serialized size in the log dialect
	BySev     [int(numSeverities)]int64
	FatalRecs int64
}

// Summarize scans events (any order) and accumulates a Summary.
func Summarize(events []Event) Summary {
	var s Summary
	for i := range events {
		e := &events[i]
		s.Records++
		if s.Start.IsZero() || e.Time.Before(s.Start) {
			s.Start = e.Time
		}
		if e.Time.After(s.End) {
			s.End = e.Time
		}
		if e.Severity.Valid() {
			s.BySev[e.Severity]++
		}
		if e.IsFatal() {
			s.FatalRecs++
		}
		// Serialized size: field bytes + 7 pipes + newline. RecID and
		// JobID use their decimal widths; TIME is fixed-width.
		s.Bytes += int64(decWidth(e.RecID) + len(e.Type) + len(timeLayout) +
			decWidth(e.JobID) + len(e.Location.String()) + len(e.Facility) +
			len(e.Severity.String()) + len(e.EntryData) + 8)
	}
	return s
}

func decWidth(n int64) int {
	w := 1
	if n < 0 {
		w++
		n = -n
	}
	for n >= 10 {
		n /= 10
		w++
	}
	return w
}

// Duration returns the span covered by the log.
func (s Summary) Duration() time.Duration { return s.End.Sub(s.Start) }
