package raslog

import (
	"bytes"
	"fmt"
	"io"
	"math/rand/v2"
	"testing"
	"time"
)

// encodeWire encodes events into wire frames.
func encodeWire(t testing.TB, events []Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWireWriter(&buf)
	for i := range events {
		if err := w.Write(&events[i]); err != nil {
			t.Fatalf("wire Write(%d): %v", i, err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// decodeWire drains a wire stream, copying events out of the arena.
func decodeWire(t testing.TB, data []byte) []Event {
	t.Helper()
	d := NewWireDecoder(bytes.NewReader(data))
	var out []Event
	for {
		evs, err := d.ReadFrame()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		out = append(out, evs...)
	}
}

func TestWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(91, 92))
	events := sortedRandomEvents(rng, 2000)
	got := decodeWire(t, encodeWire(t, events))
	if len(got) != len(events) {
		t.Fatalf("read %d, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got[i], events[i])
		}
	}
}

func TestWireRoundTripAllLocationKinds(t *testing.T) {
	var events []Event
	for k := KindUnknown; k <= KindServiceCard; k++ {
		e := mkEvent(int64(len(events)+1), t0.Add(time.Duration(len(events))*time.Second))
		e.Location = Location{Kind: k, Rack: 7, Midplane: 1, Card: 3, Chip: 19}
		switch k {
		case KindUnknown:
			e.Location = Location{}
		case KindRack:
			e.Location = Location{Kind: k, Rack: 7}
		case KindMidplane, KindServiceCard:
			e.Location = Location{Kind: k, Rack: 7, Midplane: 1}
		case KindNodeCard, KindLinkCard:
			e.Location = Location{Kind: k, Rack: 7, Midplane: 1, Card: 3}
		}
		events = append(events, e)
	}
	got := decodeWire(t, encodeWire(t, events))
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("kind %v mismatch:\n got %+v\nwant %+v", events[i].Location.Kind, got[i], events[i])
		}
	}
}

// TestWireDecodeZeroAllocs asserts the tentpole property: once warm, a
// pooled decoder re-reading a stream performs zero heap allocations
// per frame — payload buffer, string table and event arena are all
// reused and repeated strings hit the intern map.
func TestWireDecodeZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 102))
	events := sortedRandomEvents(rng, 5000)
	data := encodeWire(t, events)

	var br bytes.Reader
	d := NewWireDecoder(bytes.NewReader(nil))
	run := func() {
		br.Reset(data)
		d.Reset(&br)
		n := 0
		for {
			evs, err := d.ReadFrame()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("ReadFrame: %v", err)
			}
			n += len(evs)
		}
		if n != len(events) {
			t.Fatalf("decoded %d, want %d", n, len(events))
		}
	}
	run() // warm the arena, table and intern map
	if avg := testing.AllocsPerRun(50, run); avg != 0 {
		t.Fatalf("steady-state wire decode allocates %.1f allocs/run, want 0", avg)
	}
}

// TestWireWriterSplitsFrames is the intern-growth regression test:
// streaming well over 2x the per-frame string cap of distinct strings
// must split into multiple frames, keep every frame's table within the
// cap (the decoder rejects violations), and round-trip losslessly.
func TestWireWriterSplitsFrames(t *testing.T) {
	n := 2*wireMaxFrameStrings + 500
	events := make([]Event, n)
	for i := range events {
		e := mkEvent(int64(i+1), t0.Add(time.Duration(i)*time.Second))
		e.EntryData = fmt.Sprintf("distinct entry text %d", i)
		events[i] = e
	}
	data := encodeWire(t, events)

	frames := 0
	sc := NewWireScanner(bytes.NewReader(data))
	for {
		_, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("frame %d: %v", frames, err)
		}
		frames++
	}
	if frames < 3 {
		t.Fatalf("%d distinct strings produced %d frames; table cap not enforced", n, frames)
	}
	got := decodeWire(t, data)
	if len(got) != n {
		t.Fatalf("decoded %d, want %d", len(got), n)
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("record %d mismatch after frame split", i)
		}
	}
}

// TestBinLogTableReset is the file-format half of the same fix: a
// BinWriter streaming >2x the table cap of distinct strings must emit
// reset records and still round-trip through BinReader, whose table
// never grows past the cap.
func TestBinLogTableReset(t *testing.T) {
	if testing.Short() {
		t.Skip("writes ~2x binMaxStrings records")
	}
	n := 2*binMaxStrings + 100
	var buf bytes.Buffer
	w, err := NewBinWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(i int) Event {
		e := mkEvent(int64(i+1), t0.Add(time.Duration(i)*time.Second))
		e.EntryData = fmt.Sprintf("distinct entry %d", i)
		return e
	}
	for i := 0; i < n; i++ {
		e := mk(i)
		if err := w.Write(&e); err != nil {
			t.Fatalf("Write(%d): %v", i, err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewBinReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("Read(%d): %v", i, err)
		}
		if want := mk(i); got != want {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got, want)
		}
		if len(r.strings) > binMaxStrings {
			t.Fatalf("reader table grew to %d at record %d", len(r.strings), i)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

// TestWireFramePassThrough exercises the splitting property the gate
// relies on: raw records copied out of a frame and re-wrapped with the
// same header decode to the same events.
func TestWireFramePassThrough(t *testing.T) {
	rng := rand.New(rand.NewPCG(111, 112))
	events := sortedRandomEvents(rng, 300)
	data := encodeWire(t, events)

	var rebuilt bytes.Buffer
	sc := NewWireScanner(bytes.NewReader(data))
	for {
		f, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		var payload []byte
		var peeked int
		err = f.Records(func(tag byte, raw, content []byte) error {
			if tag == WireTagEvent {
				loc, at, err := PeekWireEvent(content, f.BaseSec)
				if err != nil {
					return err
				}
				if at.IsZero() || (loc.Kind != KindUnknown && loc.Rack < 0) {
					return fmt.Errorf("implausible peek: %v %v", loc, at)
				}
				peeked++
			}
			payload = append(payload, raw...)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if peeked == 0 {
			t.Fatal("frame with no events")
		}
		rebuilt.Write(AppendWireFrameHeader(nil, f.BaseSec, f.BaseRecID, len(payload)))
		rebuilt.Write(payload)
	}
	got := decodeWire(t, rebuilt.Bytes())
	if len(got) != len(events) {
		t.Fatalf("rebuilt stream has %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("record %d drifted through pass-through", i)
		}
	}
}

// TestWireDecoderLenientSkip: a corrupt event record inside an
// otherwise-valid frame is skipped via OnSkip (its length prefix makes
// it skippable); without OnSkip it fails the frame.
func TestWireDecoderLenientSkip(t *testing.T) {
	e1 := mkEvent(1, t0)
	e2 := mkEvent(2, t0.Add(time.Second))
	data := encodeWire(t, []Event{e1, e2})

	sc := NewWireScanner(bytes.NewReader(data))
	f, err := sc.Next()
	if err != nil {
		t.Fatal(err)
	}
	var payload []byte
	injected := false
	err = f.Records(func(tag byte, raw, content []byte) error {
		if tag == WireTagEvent && !injected {
			// A one-byte body with an invalid location kind.
			payload = append(payload, WireTagEvent, 1, 0xEE)
			injected = true
		}
		payload = append(payload, raw...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	corrupt := AppendWireFrameHeader(nil, f.BaseSec, f.BaseRecID, len(payload))
	corrupt = append(corrupt, payload...)

	d := NewWireDecoder(bytes.NewReader(corrupt))
	skips := 0
	d.OnSkip = func(rec []byte, err error) {
		if err == nil || len(rec) != 1 {
			t.Errorf("OnSkip(%x, %v)", rec, err)
		}
		skips++
	}
	evs, err := d.ReadFrame()
	if err != nil {
		t.Fatalf("lenient decode failed: %v", err)
	}
	if skips != 1 || len(evs) != 2 {
		t.Fatalf("skips=%d events=%d, want 1 and 2", skips, len(evs))
	}
	if evs[0] != e1 || evs[1] != e2 {
		t.Fatal("surviving events drifted")
	}

	strict := NewWireDecoder(bytes.NewReader(corrupt))
	if _, err := strict.ReadFrame(); err == nil {
		t.Fatal("strict decode accepted a corrupt record")
	}
}

func TestWireWriterRejectsInvalid(t *testing.T) {
	w := NewWireWriter(io.Discard)
	bad := mkEvent(1, t0)
	bad.Severity = 42
	if err := w.Write(&bad); err == nil {
		t.Fatal("invalid event accepted")
	}
}

func TestWriteWireFileReadAnyFile(t *testing.T) {
	rng := rand.New(rand.NewPCG(121, 122))
	events := sortedRandomEvents(rng, 300)
	path := t.TempDir() + "/log.wire"
	if err := WriteWireFile(path, events); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWireFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) || got[0] != events[0] || got[len(got)-1] != events[len(events)-1] {
		t.Fatal("ReadWireFile mismatch")
	}
	got, err = ReadAnyFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) || got[0] != events[0] {
		t.Fatal("ReadAnyFile did not sniff the wire magic")
	}
}

func FuzzBinWireDecode(f *testing.F) {
	e1 := mkEvent(1, t0)
	e2 := mkEvent(2, t0.Add(time.Minute))
	var buf bytes.Buffer
	w := NewWireWriter(&buf)
	w.Write(&e1)
	w.Flush()
	w.Write(&e2)
	w.Flush()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add(valid[:5])
	f.Add([]byte("BGLW\x01"))
	// Hostile payload length: a huge uvarint must not allocate its
	// claimed size.
	f.Add([]byte("BGLW\x01\x00\x00\xff\xff\xff\xff\xff\xff\xff\xff\x7f"))
	f.Add([]byte{})
	for i := 0; i < len(valid); i += 7 {
		m := append([]byte(nil), valid...)
		m[i] ^= 0x40
		f.Add(m)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewWireDecoder(bytes.NewReader(data))
		d.OnSkip = func([]byte, error) {}
		for i := 0; i < 100000; i++ {
			_, err := d.ReadFrame()
			if err != nil {
				break // io.EOF or a decode error; both fine
			}
		}
		// Over-allocation guard: the chunked reader only grows the
		// payload buffer for bytes that actually arrived, so a lying
		// length prefix cannot balloon memory past the input size plus
		// growth slack.
		if max := 2*len(data) + 2*wireReadChunk; cap(d.payload) > max {
			t.Fatalf("payload buffer grew to %d for %d input bytes", cap(d.payload), len(data))
		}
	})
}
