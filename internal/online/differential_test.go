package online

import (
	"fmt"
	"testing"

	"bglpred/internal/bglsim"
	"bglpred/internal/predictor"
	"bglpred/internal/preprocess"
)

// TestStreamingMatchesBatchCompression is the differential test
// between the two Phase 1 implementations: batch preprocess.Run
// (sharded, parallel) and the engine's streaming compression must
// keep exactly the same raw records as unique events. An untrained
// meta-learner raises no alarms, so the engine acts as a pure
// streaming compressor here. Both settings of the spatial
// same-location knob are pinned.
func TestStreamingMatchesBatchCompression(t *testing.T) {
	gen, err := bglsim.Generate(bglsim.ANLProfile().Scaled(0.004))
	if err != nil {
		t.Fatal(err)
	}
	if len(gen.Events) < 2*4096 {
		t.Fatalf("only %d records; need enough to exercise the sharded batch path", len(gen.Events))
	}
	for _, same := range []bool{false, true} {
		t.Run(fmt.Sprintf("sameLocation=%v", same), func(t *testing.T) {
			batch := preprocess.Run(gen.Events, preprocess.Options{
				Workers:                  4, // force the shard-then-merge path
				SpatialMergeSameLocation: same,
			})
			want := make(map[int64]bool, len(batch.Events))
			for i := range batch.Events {
				want[batch.Events[i].RecID] = true
			}

			eng := New(predictor.NewMeta(), Config{SpatialMergeSameLocation: same})
			got := make(map[int64]bool, len(want))
			for i := range gen.Events {
				ing, err := eng.Ingest(&gen.Events[i])
				if err != nil {
					t.Fatal(err)
				}
				if ing.Unique {
					got[gen.Events[i].RecID] = true
				}
			}

			for id := range want {
				if !got[id] {
					t.Errorf("record %d unique in batch, suppressed in streaming", id)
				}
			}
			for id := range got {
				if !want[id] {
					t.Errorf("record %d unique in streaming, suppressed in batch", id)
				}
			}
			c := eng.Counters()
			if int(c.Unique) != batch.Stats.AfterSpatial {
				t.Errorf("unique counts: streaming %d, batch %d", c.Unique, batch.Stats.AfterSpatial)
			}
			if int(c.Unclassified) != batch.Stats.Unclassified {
				t.Errorf("unclassified counts: streaming %d, batch %d", c.Unclassified, batch.Stats.Unclassified)
			}
		})
	}
}
