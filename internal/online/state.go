package online

import (
	"fmt"
	"time"

	"bglpred/internal/predictor"
	"bglpred/internal/raslog"
)

// This file is the engine's checkpoint/restore and hot-swap seam.
// internal/lifecycle persists State values inside crash-safe
// checkpoints so a restarted daemon resumes mid-stream, and swaps a
// retrained meta-learner into a live engine without losing the
// observation window or the standing alarm.

// TemporalEntry is one streaming temporal-compression key with its
// last-seen time.
type TemporalEntry struct {
	Job  int64
	Loc  raslog.Location
	Sub  int
	Last time.Time
}

// SpatialEntry is one streaming spatial-compression key with its
// last-seen time and the location of its representative record (the
// paper's spatial rule only merges reports from other locations).
type SpatialEntry struct {
	Job   int64
	Entry string
	Last  time.Time
	Loc   raslog.Location
}

// State is the complete mutable state of an Engine as plain,
// serializable data: the dedup tables driving streaming Phase 1
// compression, the activity counters, the engine clock, and the
// Stepper's observation window and standing alarm. The trained model
// itself is NOT part of the state — it is persisted separately as a
// model artifact (internal/model), and a checkpoint records which
// artifact it was taken against.
type State struct {
	LastSeen time.Time
	LastGC   time.Time
	Counters Counters
	Temporal []TemporalEntry
	Spatial  []SpatialEntry
	Stepper  predictor.StepperState
}

// State exports a consistent snapshot of the engine's mutable state.
func (e *Engine) State() State {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := State{
		LastSeen: e.lastSeen,
		LastGC:   e.lastGC,
		Counters: e.counters,
		Stepper:  e.stepper.State(),
	}
	if len(e.temporal) > 0 {
		st.Temporal = make([]TemporalEntry, 0, len(e.temporal))
		for k, last := range e.temporal {
			st.Temporal = append(st.Temporal, TemporalEntry{Job: k.job, Loc: k.loc, Sub: k.sub, Last: last})
		}
	}
	if len(e.spatial) > 0 {
		st.Spatial = make([]SpatialEntry, 0, len(e.spatial))
		for k, sp := range e.spatial {
			st.Spatial = append(st.Spatial, SpatialEntry{Job: k.job, Entry: k.entry, Last: sp.last, Loc: sp.loc})
		}
	}
	return st
}

// Restore replaces the engine's mutable state with a previously
// exported one, so a fresh engine over an equivalent trained model
// continues the stream exactly where the exported engine stopped —
// same dedup decisions, same standing alarm, same counters.
func (e *Engine) Restore(st State) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.counters.Ingested != 0 {
		return fmt.Errorf("online: cannot restore state into an engine that has already ingested %d records", e.counters.Ingested)
	}
	e.lastSeen = st.LastSeen
	e.lastGC = st.LastGC
	e.counters = st.Counters
	e.temporal = make(map[tkey]time.Time, len(st.Temporal))
	for _, t := range st.Temporal {
		e.temporal[tkey{job: t.Job, loc: t.Loc, sub: t.Sub}] = t.Last
	}
	e.spatial = make(map[skey]sstate, len(st.Spatial))
	for _, s := range st.Spatial {
		e.spatial[skey{job: s.Job, entry: s.Entry}] = sstate{last: s.Last, loc: s.Loc}
	}
	e.stepper.Restore(st.Stepper)
	return nil
}

// SwapModel atomically replaces the engine's trained meta-learner with
// a new one. The Stepper's mutable state — the observation window of
// recent non-fatal events and the standing alarm — is transplanted
// onto a fresh Stepper over the new model, so no evidence is dropped
// and no duplicate alarm is raised across the swap: ingestion before
// and after the swap behaves as one continuous stream. Safe to call
// concurrently with Ingest; the swap happens between two records.
func (e *Engine) SwapModel(meta *predictor.Meta) {
	e.mu.Lock()
	defer e.mu.Unlock()
	next := meta.Stepper(e.cfg.Window)
	next.Restore(e.stepper.State())
	e.stepper = next
}
