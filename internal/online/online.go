// Package online is the deployable form of the three-phase predictor
// (paper §3.3: "it is practical to deploy the meta-learner as an
// online prediction engine"). An Engine ingests raw RAS records one
// at a time, performs streaming Phase 1 compression with bounded
// memory, and drives a trained meta-learner incrementally, surfacing
// alarm transitions as they happen.
package online

import (
	"fmt"
	"io"
	"sync"
	"time"

	"bglpred/internal/catalog"
	"bglpred/internal/predictor"
	"bglpred/internal/preprocess"
	"bglpred/internal/raslog"
)

// Config parameterizes the engine. The zero value uses the paper's
// 300 s compression thresholds and a 30-minute prediction window.
type Config struct {
	// Window is the prediction window alarms cover.
	Window time.Duration
	// TemporalThreshold and SpatialThreshold are the Phase 1
	// compression windows (default 300 s each).
	TemporalThreshold time.Duration
	SpatialThreshold  time.Duration
	// OnAlert, when set, is invoked synchronously for every new alarm
	// (not for renewals). It runs outside the engine's state lock, so
	// it may call back into the engine (Counters, ActiveAlert); with
	// concurrent ingesters it may be invoked from multiple goroutines,
	// though never concurrently with itself or a Journal write.
	OnAlert func(predictor.Warning)
	// Journal, when set, receives one line per new alarm — an
	// append-only operations log (timestamp, confidence, source,
	// detail).
	Journal io.Writer
	// SpatialMergeSameLocation relaxes the paper's "different
	// locations" wording for streaming spatial compression, mirroring
	// preprocess.Options.SpatialMergeSameLocation: when set, a record
	// is suppressed by a same-entry same-job window even when it comes
	// from the window's own representative location.
	SpatialMergeSameLocation bool
}

func (c Config) withDefaults() Config {
	if c.Window == 0 {
		c.Window = 30 * time.Minute
	}
	if c.TemporalThreshold == 0 {
		c.TemporalThreshold = preprocess.DefaultThreshold
	}
	if c.SpatialThreshold == 0 {
		c.SpatialThreshold = preprocess.DefaultThreshold
	}
	return c
}

// Counters tracks engine activity.
type Counters struct {
	Ingested     int64 // raw records seen
	Unique       int64 // records surviving streaming compression
	Unclassified int64 // records matching no subcategory
	Alerts       int64 // new alarms raised
	Renewals     int64 // standing-alarm renewals
}

// Ingestion reports what one record did.
type Ingestion struct {
	// Unique is true when the record survived compression and was fed
	// to the predictor.
	Unique bool
	// Sub is the categorization result (nil if unclassified).
	Sub *catalog.Subcategory
	// Alert is the alarm raised or renewed by this record, if any.
	Alert *predictor.Warning
	// Renewed distinguishes a renewal from a fresh alarm.
	Renewed bool
}

// Engine is a thread-safe streaming predictor. Records must be
// ingested in non-decreasing time order (the CMCS log order).
type Engine struct {
	mu      sync.Mutex // guards all mutable state below
	emitMu  sync.Mutex // serializes Journal writes and OnAlert calls
	cfg     Config
	clf     *catalog.Interner
	stepper *predictor.Stepper

	temporal map[tkey]time.Time
	spatial  map[skey]sstate
	lastSeen time.Time
	lastGC   time.Time

	counters Counters
}

type tkey struct {
	job int64
	loc raslog.Location
	sub int
}

type skey struct {
	job   int64
	entry string
}

// sstate is a spatial window: when it last absorbed a record and the
// location of its representative (first) record, which the paper's
// "different locations" rule compares against.
type sstate struct {
	last time.Time
	loc  raslog.Location
}

// New builds an engine over a trained meta-learner.
func New(meta *predictor.Meta, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	return &Engine{
		cfg:      cfg,
		clf:      catalog.NewInterner(0),
		stepper:  meta.Stepper(cfg.Window),
		temporal: make(map[tkey]time.Time),
		spatial:  make(map[skey]sstate),
	}
}

// Ingest processes one raw record.
func (e *Engine) Ingest(ev *raslog.Event) (Ingestion, error) {
	e.mu.Lock()
	out, err := e.ingestLocked(ev)
	e.mu.Unlock()
	if err != nil || out.Alert == nil || out.Renewed {
		return out, err
	}
	// A new alarm: emit after releasing the state lock so OnAlert may
	// reenter the engine. emitMu keeps the journal and callback stream
	// serialized even under concurrent ingesters.
	e.emitMu.Lock()
	w := *out.Alert
	if e.cfg.Journal != nil {
		fmt.Fprintf(e.cfg.Journal, "%s alert conf=%.3f source=%s until=%s detail=%q\n",
			w.At.UTC().Format(time.RFC3339), w.Confidence, w.Source,
			w.End.UTC().Format(time.RFC3339), w.Detail)
	}
	if e.cfg.OnAlert != nil {
		e.cfg.OnAlert(w)
	}
	e.emitMu.Unlock()
	return out, nil
}

// IngestBatch processes a batch of records under a single state-lock
// acquisition — the hot path for wire-frame ingest, where per-record
// locking would dominate the decode cost. Per-record semantics match
// Ingest exactly: a record rejected for time-order violation is
// counted and skipped (the rest of the batch proceeds), and each new
// alarm is emitted in order after the state lock is released.
//
//bglvet:hotpath
func (e *Engine) IngestBatch(evs []raslog.Event) (rejected int64) {
	if len(evs) == 0 {
		return 0
	}
	var pend []predictor.Warning
	e.mu.Lock()
	for i := range evs {
		out, err := e.ingestLocked(&evs[i])
		if err != nil {
			rejected++
			continue
		}
		if out.Alert != nil && !out.Renewed {
			pend = append(pend, *out.Alert)
		}
	}
	e.mu.Unlock()
	if len(pend) == 0 {
		return rejected
	}
	e.emitMu.Lock()
	for _, w := range pend {
		if e.cfg.Journal != nil {
			//bglvet:ignore hotpathalloc journal lines are written per emitted alarm, which is rare relative to ingest volume
			fmt.Fprintf(e.cfg.Journal, "%s alert conf=%.3f source=%s until=%s detail=%q\n",
				w.At.UTC().Format(time.RFC3339), w.Confidence, w.Source,
				w.End.UTC().Format(time.RFC3339), w.Detail)
		}
		if e.cfg.OnAlert != nil {
			e.cfg.OnAlert(w)
		}
	}
	e.emitMu.Unlock()
	return rejected
}

// ingestLocked is the state transition; e.mu must be held.
func (e *Engine) ingestLocked(ev *raslog.Event) (Ingestion, error) {
	if ev.Time.Before(e.lastSeen) {
		//bglvet:ignore hotpathalloc rejection detail is built only for out-of-order records, which quarantine off the fast path
		return Ingestion{}, fmt.Errorf("online: record %d at %v arrived after %v; the engine requires log order",
			ev.RecID, ev.Time, e.lastSeen)
	}
	e.lastSeen = ev.Time
	e.counters.Ingested++
	e.maybeGC(ev.Time)

	sub, ok := e.clf.Classify(ev)
	if !ok {
		e.counters.Unclassified++
		return Ingestion{}, nil
	}
	out := Ingestion{Sub: sub}

	// Streaming temporal compression (single location).
	tk := tkey{job: ev.JobID, loc: ev.Location, sub: sub.ID}
	if last, seen := e.temporal[tk]; seen && ev.Time.Sub(last) <= e.cfg.TemporalThreshold {
		e.temporal[tk] = ev.Time
		return out, nil
	}
	e.temporal[tk] = ev.Time

	// Streaming spatial compression (same entry and job; per the
	// paper, from a location other than the representative's, unless
	// configured to merge same-location repeats too).
	sk := skey{job: ev.JobID, entry: ev.EntryData}
	if st, seen := e.spatial[sk]; seen && ev.Time.Sub(st.last) <= e.cfg.SpatialThreshold &&
		(e.cfg.SpatialMergeSameLocation || ev.Location != st.loc) {
		st.last = ev.Time
		e.spatial[sk] = st
		return out, nil
	}
	e.spatial[sk] = sstate{last: ev.Time, loc: ev.Location}

	out.Unique = true
	e.counters.Unique++

	ue := preprocess.Event{Event: *ev, Sub: sub, Count: 1, Locations: 1}
	w, res := e.stepper.Step(&ue)
	switch res {
	case predictor.StepNew:
		e.counters.Alerts++
		out.Alert = &w
	case predictor.StepRenewed:
		e.counters.Renewals++
		out.Alert = &w
		out.Renewed = true
	}
	return out, nil
}

// maybeGC prunes compression state older than both thresholds; it
// bounds memory to the working set of the last few minutes.
func (e *Engine) maybeGC(now time.Time) {
	const gcEvery = 10 * time.Minute
	if !e.lastGC.IsZero() && now.Sub(e.lastGC) < gcEvery {
		return
	}
	e.lastGC = now
	horizon := e.cfg.TemporalThreshold
	if e.cfg.SpatialThreshold > horizon {
		horizon = e.cfg.SpatialThreshold
	}
	cutoff := now.Add(-horizon)
	for k, last := range e.temporal {
		if last.Before(cutoff) {
			delete(e.temporal, k)
		}
	}
	for k, st := range e.spatial {
		if st.last.Before(cutoff) {
			delete(e.spatial, k)
		}
	}
}

// ActiveAlert returns the alarm standing at time t, if any.
func (e *Engine) ActiveAlert(t time.Time) (predictor.Warning, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stepper.Standing(t)
}

// Counters returns a snapshot of engine activity.
func (e *Engine) Counters() Counters {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.counters
}

// Snapshot is a consistent point-in-time view of engine state, for
// observability surfaces (the /metrics and /v1/alerts endpoints of
// internal/serve read one per shard).
type Snapshot struct {
	Counters
	// LastSeen is the timestamp of the newest record ingested (zero if
	// none yet) — the engine's notion of "now".
	LastSeen time.Time
	// PendingKeys is the current size of the streaming-compression
	// dedup state (temporal + spatial keys), a memory gauge.
	PendingKeys int
	// Standing is the alarm in force at LastSeen, nil if none — the
	// same state a checkpoint persists, so observability surfaces
	// (/healthz, /v1/alerts) and checkpoints agree on whether the
	// engine is carrying an active prediction.
	Standing *predictor.Warning
}

// Snapshot returns a consistent snapshot of counters and engine time.
func (e *Engine) Snapshot() Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	snap := Snapshot{
		Counters:    e.counters,
		LastSeen:    e.lastSeen,
		PendingKeys: len(e.temporal) + len(e.spatial),
	}
	if w, ok := e.stepper.Standing(e.lastSeen); ok {
		snap.Standing = &w
	}
	return snap
}
