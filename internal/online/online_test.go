package online

import (
	"strings"
	"sync"
	"testing"
	"time"

	"bglpred/internal/bglsim"
	"bglpred/internal/predictor"
	"bglpred/internal/preprocess"
	"bglpred/internal/raslog"
)

// trainedMeta fits a meta-learner on a small generated log and returns
// it with a held-out raw tail for streaming.
func trainedMeta(t *testing.T) (*predictor.Meta, []raslog.Event) {
	t.Helper()
	gen, err := bglsim.Generate(bglsim.ANLProfile().Scaled(0.05))
	if err != nil {
		t.Fatal(err)
	}
	cut := len(gen.Events) * 8 / 10
	trainRaw, testRaw := gen.Events[:cut], gen.Events[cut:]
	pre := preprocess.Run(trainRaw, preprocess.Options{})
	m := predictor.NewMeta()
	if err := m.Train(pre.Events); err != nil {
		t.Fatal(err)
	}
	return m, testRaw
}

func TestEngineStreamsAndCompresses(t *testing.T) {
	meta, raw := trainedMeta(t)
	e := New(meta, Config{Window: 30 * time.Minute})
	for i := range raw {
		if _, err := e.Ingest(&raw[i]); err != nil {
			t.Fatalf("Ingest(%d): %v", i, err)
		}
	}
	c := e.Counters()
	if c.Ingested != int64(len(raw)) {
		t.Fatalf("ingested %d of %d", c.Ingested, len(raw))
	}
	if c.Unique == 0 || c.Unique > c.Ingested/5 {
		t.Fatalf("unique = %d of %d; online compression looks wrong", c.Unique, c.Ingested)
	}
	if c.Alerts == 0 {
		t.Fatal("no alerts raised over a failure-rich stream")
	}
}

func TestEngineMatchesOfflineCompression(t *testing.T) {
	// Streaming compression must agree with batch Phase 1 on unique
	// counts (both use sliding-window semantics).
	meta, raw := trainedMeta(t)
	batch := preprocess.Run(raw, preprocess.Options{})
	e := New(meta, Config{Window: 30 * time.Minute})
	unique := 0
	for i := range raw {
		ing, err := e.Ingest(&raw[i])
		if err != nil {
			t.Fatal(err)
		}
		if ing.Unique {
			unique++
		}
	}
	got, want := unique, batch.Stats.AfterSpatial
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	// The batch spatial pass can merge across a location's temporal
	// groups in an order the streaming engine sees differently; allow
	// a small divergence.
	if float64(diff) > 0.02*float64(want)+2 {
		t.Fatalf("online unique = %d, batch = %d", got, want)
	}
}

func TestEngineRejectsOutOfOrder(t *testing.T) {
	meta, raw := trainedMeta(t)
	e := New(meta, Config{})
	if _, err := e.Ingest(&raw[10]); err != nil {
		t.Fatal(err)
	}
	early := raw[10]
	early.Time = early.Time.Add(-time.Hour)
	if _, err := e.Ingest(&early); err == nil {
		t.Fatal("out-of-order record accepted")
	}
}

func TestEngineOnAlertCallback(t *testing.T) {
	meta, raw := trainedMeta(t)
	var got []predictor.Warning
	e := New(meta, Config{
		Window:  30 * time.Minute,
		OnAlert: func(w predictor.Warning) { got = append(got, w) },
	})
	for i := range raw {
		if _, err := e.Ingest(&raw[i]); err != nil {
			t.Fatal(err)
		}
	}
	if int64(len(got)) != e.Counters().Alerts {
		t.Fatalf("callback saw %d alerts, counters say %d", len(got), e.Counters().Alerts)
	}
	if len(got) == 0 {
		t.Fatal("no alerts delivered")
	}
	for _, w := range got {
		if !w.Start.Before(w.End) {
			t.Fatalf("degenerate alert interval: %+v", w)
		}
	}
}

func TestEngineActiveAlert(t *testing.T) {
	meta, raw := trainedMeta(t)
	e := New(meta, Config{Window: 30 * time.Minute})
	var lastAlert predictor.Warning
	seen := false
	for i := range raw {
		ing, err := e.Ingest(&raw[i])
		if err != nil {
			t.Fatal(err)
		}
		if ing.Alert != nil {
			lastAlert = *ing.Alert
			seen = true
		}
	}
	if !seen {
		t.Skip("no alerts in tail (seed-dependent)")
	}
	if w, ok := e.ActiveAlert(lastAlert.End.Add(-time.Second)); !ok || w.End != lastAlert.End {
		// Another alert may have superseded it; at minimum the engine
		// must report SOME standing alarm at that instant.
		if !ok {
			t.Fatalf("no active alert at %v", lastAlert.End)
		}
	}
	if _, ok := e.ActiveAlert(lastAlert.End.Add(48 * time.Hour)); ok {
		t.Fatal("alert standing two days later")
	}
}

func TestEngineBoundedMemory(t *testing.T) {
	meta, raw := trainedMeta(t)
	e := New(meta, Config{})
	for i := range raw {
		if _, err := e.Ingest(&raw[i]); err != nil {
			t.Fatal(err)
		}
	}
	// After GC the dedup maps must hold far fewer keys than the number
	// of unique events processed.
	if n := len(e.temporal) + len(e.spatial); int64(n) > e.Counters().Unique/2+100 {
		t.Fatalf("dedup state holds %d keys for %d unique events; GC not working",
			n, e.Counters().Unique)
	}
}

func TestEngineUnclassifiedCounted(t *testing.T) {
	meta, _ := trainedMeta(t)
	e := New(meta, Config{})
	junk := raslog.Event{
		Type: "RAS", Time: time.Date(2005, 1, 21, 0, 0, 0, 0, time.UTC),
		JobID: 1, EntryData: "nonsense", Facility: "NOPE", Severity: raslog.Info,
	}
	ing, err := e.Ingest(&junk)
	if err != nil {
		t.Fatal(err)
	}
	if ing.Unique || ing.Sub != nil {
		t.Fatalf("junk ingestion = %+v", ing)
	}
	if e.Counters().Unclassified != 1 {
		t.Fatalf("unclassified = %d", e.Counters().Unclassified)
	}
}

func TestEngineConcurrentIngest(t *testing.T) {
	// The engine must be safe for concurrent ingesters (run under
	// -race). All records share one timestamp so the log-order check
	// never rejects, whatever the interleaving; OnAlert reenters the
	// engine, which deadlocked when callbacks fired under the state
	// lock.
	meta, raw := trainedMeta(t)
	at := raw[len(raw)-1].Time
	records := make([]raslog.Event, len(raw))
	for i := range raw {
		records[i] = raw[i]
		records[i].Time = at
	}
	var e *Engine
	var alerts int64
	var alertMu sync.Mutex
	e = New(meta, Config{
		Window: 30 * time.Minute,
		OnAlert: func(w predictor.Warning) {
			_ = e.Counters() // reentrant read must not deadlock
			alertMu.Lock()
			alerts++
			alertMu.Unlock()
		},
	})
	const workers = 8
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(records); i += workers {
				if _, err := e.Ingest(&records[i]); err != nil {
					t.Errorf("Ingest(%d): %v", i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	snap := e.Snapshot()
	if snap.Ingested != int64(len(records)) {
		t.Fatalf("ingested %d of %d", snap.Ingested, len(records))
	}
	if !snap.LastSeen.Equal(at) {
		t.Fatalf("LastSeen = %v, want %v", snap.LastSeen, at)
	}
	alertMu.Lock()
	got := alerts
	alertMu.Unlock()
	if got != snap.Alerts {
		t.Fatalf("callback saw %d alerts, counters say %d", got, snap.Alerts)
	}
}

func TestEngineJournal(t *testing.T) {
	meta, raw := trainedMeta(t)
	var journal strings.Builder
	e := New(meta, Config{Window: 30 * time.Minute, Journal: &journal})
	for i := range raw {
		if _, err := e.Ingest(&raw[i]); err != nil {
			t.Fatal(err)
		}
	}
	lines := strings.Count(journal.String(), "\n")
	if int64(lines) != e.Counters().Alerts {
		t.Fatalf("journal has %d lines, %d alerts raised", lines, e.Counters().Alerts)
	}
	if lines > 0 && !strings.Contains(journal.String(), "conf=") {
		t.Fatalf("journal format wrong: %q", journal.String()[:80])
	}
}
