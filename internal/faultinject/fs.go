package faultinject

import (
	"fmt"

	"bglpred/internal/model"
)

// Fs is model.FS middleware that injects filesystem faults into the
// model-artifact and checkpoint persistence path: failed or short
// writes (FsWrite), fsync errors (FsSync), failed commit renames
// (FsRename), failed reads (FsRead), and silent read corruption
// (FsCorrupt — truncation or a payload bit flip, the two shapes the
// envelope decoder must catch).
//
// Wrap the real filesystem with NewFs(inj, model.OS) and hand the
// result to the FS-taking persistence entry points
// (lifecycle.CheckpointerConfig.FS, model.Artifact.SaveFS, ...).
type Fs struct {
	inj  *Injector
	base model.FS
}

// NewFs wraps base (nil = model.OS) with inj's filesystem fault
// points. A nil injector yields a pure passthrough.
func NewFs(inj *Injector, base model.FS) *Fs {
	if base == nil {
		base = model.OS
	}
	return &Fs{inj: inj, base: base}
}

// ReadFile reads through the base FS, then applies FsRead (failed
// read) and FsCorrupt (mutated bytes) faults.
func (f *Fs) ReadFile(name string) ([]byte, error) {
	if err := f.inj.Fire(FsRead); err != nil {
		return nil, err
	}
	data, err := f.base.ReadFile(name)
	if err != nil {
		return nil, err
	}
	if fire, plan := f.inj.check(FsCorrupt); fire {
		data = corrupt(data, plan.Corrupt)
	}
	return data, nil
}

// corrupt returns a mutated copy of data (the original belongs to the
// caller's cache, never scribble on it).
func corrupt(data []byte, mode CorruptMode) []byte {
	switch mode {
	case Truncate:
		return append([]byte(nil), data[:len(data)/2]...)
	case FlipByte:
		out := append([]byte(nil), data...)
		if len(out) > 0 {
			// Flip a bit in the final byte: deep in the payload, past the
			// framing, so only the SHA-256 check can catch it.
			out[len(out)-1] ^= 0x01
		}
		return out
	default:
		return data
	}
}

// CreateTemp opens a staging file whose Write and Sync are themselves
// fault points.
func (f *Fs) CreateTemp(dir, pattern string) (model.File, error) {
	file, err := f.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{inj: f.inj, base: file}, nil
}

// Rename applies FsRename, then renames through the base FS.
func (f *Fs) Rename(oldpath, newpath string) error {
	if err := f.inj.Fire(FsRename); err != nil {
		return err
	}
	return f.base.Rename(oldpath, newpath)
}

// Remove passes through (cleanup never injects: a failed cleanup of a
// failed write would mask the interesting error).
func (f *Fs) Remove(name string) error { return f.base.Remove(name) }

// SyncDir passes through; the injectable fsync is the staged file's
// (File.Sync), which the save path actually depends on.
func (f *Fs) SyncDir(dir string) error { return f.base.SyncDir(dir) }

// faultFile interposes FsWrite and FsSync on a staged file.
type faultFile struct {
	inj  *Injector
	base model.File
}

func (f *faultFile) Name() string { return f.base.Name() }

func (f *faultFile) Write(p []byte) (int, error) {
	if fire, plan := f.inj.check(FsWrite); fire {
		cause := plan.Err
		if cause == nil {
			cause = ENOSPC
		}
		err := fmt.Errorf("faultinject: %s: %w", FsWrite, cause)
		if plan.ShortWrite && len(p) > 1 {
			// Model a disk filling mid-write: half the bytes land.
			n, werr := f.base.Write(p[:len(p)/2])
			if werr != nil {
				return n, werr
			}
			return n, err
		}
		return 0, err
	}
	return f.base.Write(p)
}

func (f *faultFile) Sync() error {
	if err := f.inj.Fire(FsSync); err != nil {
		return err
	}
	return f.base.Sync()
}

func (f *faultFile) Close() error { return f.base.Close() }
