package faultinject

import (
	"fmt"

	"bglpred/internal/ledger"
)

// LedgerFs is ledger.FS middleware injecting faults into the audit
// ledger's durability path: failed or short batch writes
// (LedgerWrite), failed group-commit fsyncs (LedgerSync), failed reads
// (LedgerRead), failed rollback truncates (LedgerTruncate — the path
// that poisons the ledger), and failed anchor renames (LedgerAnchor).
//
// Wrap the real filesystem with NewLedgerFs(inj, ledger.OS) and hand
// the result to ledger.Config.FS.
type LedgerFs struct {
	inj  *Injector
	base ledger.FS
}

// NewLedgerFs wraps base (nil = ledger.OS) with inj's ledger fault
// points. A nil injector yields a pure passthrough.
func NewLedgerFs(inj *Injector, base ledger.FS) *LedgerFs {
	if base == nil {
		base = ledger.OS
	}
	return &LedgerFs{inj: inj, base: base}
}

// OpenAppend opens the append handle; its Write and Sync are the
// LedgerWrite and LedgerSync fault points.
func (f *LedgerFs) OpenAppend(path string) (ledger.File, error) {
	file, err := f.base.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &ledgerFile{inj: f.inj, base: file}, nil
}

// ReadFile applies LedgerRead, then reads through the base FS.
func (f *LedgerFs) ReadFile(path string) ([]byte, error) {
	if err := f.inj.Fire(LedgerRead); err != nil {
		return nil, err
	}
	return f.base.ReadFile(path)
}

// Truncate applies LedgerTruncate, then truncates through the base FS.
func (f *LedgerFs) Truncate(path string, size int64) error {
	if err := f.inj.Fire(LedgerTruncate); err != nil {
		return err
	}
	return f.base.Truncate(path, size)
}

// CreateTemp stages an anchor sidecar; staging writes pass through
// (the anchor's integrity-relevant step is the rename).
func (f *LedgerFs) CreateTemp(dir, pattern string) (ledger.File, error) {
	return f.base.CreateTemp(dir, pattern)
}

// Rename applies LedgerAnchor, then renames through the base FS.
func (f *LedgerFs) Rename(oldPath, newPath string) error {
	if err := f.inj.Fire(LedgerAnchor); err != nil {
		return err
	}
	return f.base.Rename(oldPath, newPath)
}

// Remove passes through (cleanup never injects).
func (f *LedgerFs) Remove(path string) error { return f.base.Remove(path) }

// ledgerFile interposes LedgerWrite and LedgerSync on the append
// handle.
type ledgerFile struct {
	inj  *Injector
	base ledger.File
}

func (f *ledgerFile) Name() string { return f.base.Name() }

func (f *ledgerFile) Write(p []byte) (int, error) {
	if fire, plan := f.inj.check(LedgerWrite); fire {
		cause := plan.Err
		if cause == nil {
			cause = ENOSPC
		}
		err := fmt.Errorf("faultinject: %s: %w", LedgerWrite, cause)
		if plan.ShortWrite && len(p) > 1 {
			// Model a disk filling mid-batch: half the bytes land.
			n, werr := f.base.Write(p[:len(p)/2])
			if werr != nil {
				return n, werr
			}
			return n, err
		}
		return 0, err
	}
	return f.base.Write(p)
}

func (f *ledgerFile) Sync() error {
	if err := f.inj.Fire(LedgerSync); err != nil {
		return err
	}
	return f.base.Sync()
}

func (f *ledgerFile) Close() error { return f.base.Close() }
