package faultinject

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestNilInjectorIsNoOp(t *testing.T) {
	var in *Injector
	in.Set(ShardPanic, Plan{Panic: true}) // must not panic or crash
	in.Clear(ShardPanic)
	for i := 0; i < 3; i++ {
		if err := in.Fire(ShardPanic); err != nil {
			t.Fatalf("nil injector fired: %v", err)
		}
	}
	if in.Hits(ShardPanic) != 0 || in.Fires(ShardPanic) != 0 {
		t.Fatal("nil injector reported activity")
	}
}

func TestUnarmedPointNeverFires(t *testing.T) {
	in := New(1)
	for i := 0; i < 100; i++ {
		if err := in.Fire(FsWrite); err != nil {
			t.Fatalf("unarmed point fired: %v", err)
		}
	}
	if in.Hits(FsWrite) != 0 {
		t.Fatal("unarmed point accumulated hits")
	}
}

func TestEverySchedule(t *testing.T) {
	in := New(1)
	in.Set(FsWrite, Plan{Every: 3})
	var pattern []bool
	for i := 0; i < 9; i++ {
		pattern = append(pattern, in.Fire(FsWrite) != nil)
	}
	want := []bool{false, false, true, false, false, true, false, false, true}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("Every=3 pattern = %v, want %v", pattern, want)
		}
	}
}

func TestAfterAndTimes(t *testing.T) {
	in := New(1)
	in.Set(FsSync, Plan{After: 2, Times: 2})
	var fired int
	for i := 1; i <= 10; i++ {
		err := in.Fire(FsSync)
		if err != nil {
			fired++
			if i <= 2 {
				t.Fatalf("fired on hit %d, inside the After=2 grace", i)
			}
		}
	}
	if fired != 2 {
		t.Fatalf("fired %d times, Times=2 should bound it", fired)
	}
	if in.Hits(FsSync) != 10 || in.Fires(FsSync) != 2 {
		t.Fatalf("hits=%d fires=%d, want 10/2", in.Hits(FsSync), in.Fires(FsSync))
	}
}

func TestProbIsDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) []bool {
		in := New(seed)
		in.Set(IngestCorrupt, Plan{Prob: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.Fire(IngestCorrupt) != nil
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different fire sequences")
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 64-step sequences (PRNG not seeded)")
	}
	var fires int
	for _, f := range a {
		if f {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Fatalf("Prob=0.5 fired %d of %d (gate not probabilistic)", fires, len(a))
	}
}

func TestSetRearmsAndResetsCounters(t *testing.T) {
	in := New(1)
	in.Set(FsRename, Plan{})
	_ = in.Fire(FsRename)
	in.Set(FsRename, Plan{After: 1})
	if in.Hits(FsRename) != 0 {
		t.Fatal("re-arming did not reset counters")
	}
	if err := in.Fire(FsRename); err != nil {
		t.Fatal("After=1 must skip the first hit after re-arm")
	}
	in.Clear(FsRename)
	if err := in.Fire(FsRename); err != nil {
		t.Fatal("cleared point fired")
	}
}

func TestPlanErrAndErrInjected(t *testing.T) {
	in := New(1)
	in.Set(FsWrite, Plan{})
	if err := in.Fire(FsWrite); !errors.Is(err, ErrInjected) {
		t.Fatalf("default injected error = %v, want ErrInjected", err)
	}
	in.Set(FsWrite, Plan{Err: ENOSPC})
	if err := in.Fire(FsWrite); !errors.Is(err, ENOSPC) {
		t.Fatalf("Plan.Err not propagated: %v", err)
	}
}

func TestPanicPlanThrowsTypedValue(t *testing.T) {
	in := New(1)
	in.Set(ShardPanic, Plan{Panic: true})
	defer func() {
		r := recover()
		p, ok := r.(Panic)
		if !ok || p.Point != ShardPanic {
			t.Fatalf("panic value = %#v, want Panic{ShardPanic}", r)
		}
	}()
	_ = in.Fire(ShardPanic)
	t.Fatal("panic plan did not panic")
}

func TestDelayOnlyPlanIsSlowNotFailed(t *testing.T) {
	in := New(1)
	in.Set(ShardSlow, Plan{Delay: 10 * time.Millisecond})
	start := time.Now()
	if err := in.Fire(ShardSlow); err != nil {
		t.Fatalf("delay-only plan returned an error: %v", err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("Fire returned after %v, want >= 10ms", d)
	}
}

// writeVia stages and commits one file through fsys the way the
// envelope writer does: temp, write, sync, rename.
func writeVia(t *testing.T, fsys *Fs, path string, data []byte) error {
	t.Helper()
	f, err := fsys.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(f.Name())
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fsys.Rename(f.Name(), path)
}

func TestFsFaultModes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.bin")
	payload := []byte("0123456789abcdef")

	t.Run("passthrough", func(t *testing.T) {
		fsys := NewFs(nil, nil) // nil injector: pure passthrough
		if err := writeVia(t, fsys, path, payload); err != nil {
			t.Fatal(err)
		}
		got, err := fsys.ReadFile(path)
		if err != nil || string(got) != string(payload) {
			t.Fatalf("passthrough read = %q, %v", got, err)
		}
	})

	t.Run("enospc", func(t *testing.T) {
		in := New(1)
		in.Set(FsWrite, Plan{Err: ENOSPC})
		err := writeVia(t, NewFs(in, nil), filepath.Join(dir, "x"), payload)
		if !errors.Is(err, ENOSPC) {
			t.Fatalf("err = %v, want ENOSPC through the wrap", err)
		}
	})

	t.Run("short write", func(t *testing.T) {
		in := New(1)
		in.Set(FsWrite, Plan{Err: ENOSPC, ShortWrite: true})
		fsys := NewFs(in, nil)
		f, err := fsys.CreateTemp(dir, ".tmp-*")
		if err != nil {
			t.Fatal(err)
		}
		defer os.Remove(f.Name())
		n, err := f.Write(payload)
		f.Close()
		if n != len(payload)/2 || !errors.Is(err, ENOSPC) {
			t.Fatalf("short write = (%d, %v), want (%d, ENOSPC)", n, err, len(payload)/2)
		}
	})

	t.Run("fsync", func(t *testing.T) {
		in := New(1)
		in.Set(FsSync, Plan{})
		err := writeVia(t, NewFs(in, nil), filepath.Join(dir, "y"), payload)
		if !errors.Is(err, ErrInjected) || !strings.Contains(err.Error(), "fs.sync") {
			t.Fatalf("fsync fault = %v", err)
		}
	})

	t.Run("rename", func(t *testing.T) {
		in := New(1)
		in.Set(FsRename, Plan{})
		target := filepath.Join(dir, "z")
		err := writeVia(t, NewFs(in, nil), target, payload)
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("rename fault = %v", err)
		}
		if _, statErr := os.Stat(target); !os.IsNotExist(statErr) {
			t.Fatal("failed rename must not leave the target in place")
		}
	})

	t.Run("read failure", func(t *testing.T) {
		in := New(1)
		in.Set(FsRead, Plan{})
		if _, err := NewFs(in, nil).ReadFile(path); !errors.Is(err, ErrInjected) {
			t.Fatalf("read fault = %v", err)
		}
	})

	t.Run("read truncation", func(t *testing.T) {
		in := New(1)
		in.Set(FsCorrupt, Plan{Corrupt: Truncate})
		got, err := NewFs(in, nil).ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(payload)/2 {
			t.Fatalf("truncated read returned %d bytes, want %d", len(got), len(payload)/2)
		}
	})

	t.Run("read bit flip", func(t *testing.T) {
		in := New(1)
		in.Set(FsCorrupt, Plan{Corrupt: FlipByte})
		got, err := NewFs(in, nil).ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(payload) || got[len(got)-1] == payload[len(payload)-1] {
			t.Fatalf("flip read = %q, want last byte mutated", got)
		}
		// The on-disk file must be untouched: corruption is read-side.
		clean, _ := os.ReadFile(path)
		if string(clean) != string(payload) {
			t.Fatal("read corruption scribbled on the underlying file")
		}
	})
}

func BenchmarkFireNilInjector(b *testing.B) {
	var in *Injector
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := in.Fire(ShardPanic); err != nil {
			b.Fatal(err)
		}
	}
}
