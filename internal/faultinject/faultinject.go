// Package faultinject is a deterministic, seedable fault-injection
// harness for the serving and lifecycle layers: it lets a chaos test
// (or an operator drill) make a shard worker panic between two
// records, slow a shard down until its queue saturates, corrupt an
// ingest payload, or fail a checkpoint write with ENOSPC — all on a
// fixed schedule reproducible from a seed, with zero cost on the
// production path.
//
// Two pieces:
//
//   - Injector: a registry of named fault Points. Code under test
//     calls Fire (or Delay) at each point; an armed plan decides —
//     deterministically, from hit counters and a seeded PRNG — whether
//     the fault fires. A nil *Injector is the production configuration:
//     every method is a nil-receiver no-op, so fault points compile to
//     a pointer compare and nothing else.
//   - Fs: a model.FS middleware injecting filesystem faults (ENOSPC,
//     short writes, fsync errors, failed renames, read-side truncation
//     and bit corruption) into the model/checkpoint persistence path.
package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"syscall"
	"time"
)

// Point names one fault site. The constants below are the points the
// serving and lifecycle layers consult; tests may mint their own.
type Point string

const (
	// ShardPanic panics a serve shard worker between two records,
	// exercising the supervisor's restart-from-snapshot path.
	ShardPanic Point = "serve.shard.panic"
	// ShardSlow stalls a shard worker per record (Plan.Delay), backing
	// its queue up into the load-shedding path.
	ShardSlow Point = "serve.shard.slow"
	// IngestCorrupt marks a decoded ingest record as corrupt, routing
	// it to the quarantine ring instead of its shard.
	IngestCorrupt Point = "serve.ingest.corrupt"
	// GateForwardDown fails a bglgate→backend ingest forward before any
	// bytes leave the gate, modeling a backend that times out; the
	// batch lands in the backend's replay buffer instead of vanishing.
	GateForwardDown Point = "gate.forward.down"
	// GateForwardPartial truncates a backend's ingest reply after the
	// status line, modeling a connection cut mid-response (the batch
	// was delivered; only the acknowledgment was lost).
	GateForwardPartial Point = "gate.forward.partial"
	// GateProbeFlap fails one bglgate health probe against a healthy
	// backend, modeling flapping health checks; routing must buffer
	// and recover without losing or reordering lines.
	GateProbeFlap Point = "gate.probe.flap"
	// FsWrite fails a staged write (ENOSPC, optionally after a short
	// write), FsSync an fsync, FsRename the commit rename, FsRead a
	// whole-file read; FsCorrupt mutates read bytes instead of failing
	// the read (truncation or a bit flip — the SHA-mismatch path).
	FsWrite   Point = "fs.write"
	FsSync    Point = "fs.sync"
	FsRename  Point = "fs.rename"
	FsRead    Point = "fs.read"
	FsCorrupt Point = "fs.corrupt"
	// LedgerWrite fails (or short-writes) an audit-ledger batch write,
	// LedgerSync the group-commit fsync, LedgerRead a ledger file read,
	// LedgerTruncate the rollback truncate after a failed commit (the
	// ledger-poisoning path), and LedgerAnchor the anchor sidecar's
	// commit rename.
	LedgerWrite    Point = "ledger.append.write"
	LedgerSync     Point = "ledger.commit.sync"
	LedgerRead     Point = "ledger.read"
	LedgerTruncate Point = "ledger.rollback.truncate"
	LedgerAnchor   Point = "ledger.anchor.rename"
)

// ErrInjected is the default error injected faults return; plans may
// override it (e.g. with syscall.ENOSPC) via Plan.Err.
var ErrInjected = errors.New("faultinject: injected fault")

// ENOSPC is syscall.ENOSPC, re-exported so tests need not import
// syscall.
var ENOSPC error = syscall.ENOSPC

// Panic is the value an injected panic throws, so a supervisor's
// recover can tell an injected crash from a real bug while both take
// the same recovery path.
type Panic struct{ Point Point }

func (p Panic) String() string { return fmt.Sprintf("faultinject: injected panic at %s", p.Point) }

// CorruptMode selects how Fs mutates read bytes at FsCorrupt.
type CorruptMode int

const (
	// Truncate drops the second half of the file.
	Truncate CorruptMode = iota + 1
	// FlipByte XORs one payload byte, leaving framing intact — the
	// checksum-mismatch corruption.
	FlipByte
)

// Plan schedules when an armed point fires. The deterministic
// schedule is: skip the first After hits; then fire on every Every-th
// hit (1 = every hit); Prob, when nonzero, additionally gates each
// candidate fire on a seeded PRNG; Times, when nonzero, bounds total
// fires, after which the point goes quiet.
type Plan struct {
	Every int
	After int
	Times int
	// Prob in (0,1] gates candidate fires pseudo-randomly (still
	// reproducible: the PRNG is derived from the injector seed and the
	// point name).
	Prob float64
	// Err is what Fire returns when the fault fires (default
	// ErrInjected).
	Err error
	// Delay, when nonzero, is slept before Fire returns (slow-path
	// faults). A plan with only Delay set returns nil from Fire: the
	// operation is slow, not failed.
	Delay time.Duration
	// Panic makes the fault panic(Panic{Point}) instead of returning.
	Panic bool
	// Corrupt selects the read-corruption mode for FsCorrupt plans.
	Corrupt CorruptMode
	// ShortWrite makes an FsWrite fault consume half the buffer before
	// failing, modeling a disk that filled mid-write.
	ShortWrite bool
}

type pointState struct {
	plan  Plan
	hits  int
	fires int
	rng   uint64 // splitmix64 state
}

// Injector is a concurrency-safe registry of armed fault points. The
// zero value and the nil pointer are both valid and never fire.
type Injector struct {
	mu     sync.Mutex
	seed   uint64
	points map[Point]*pointState
}

// New builds an injector whose probabilistic plans derive their PRNG
// streams from seed (per point, so arming order doesn't matter).
func New(seed uint64) *Injector {
	return &Injector{seed: seed, points: make(map[Point]*pointState)}
}

// Set arms (or re-arms, resetting counters) a fault point.
func (in *Injector) Set(p Point, plan Plan) {
	if in == nil {
		return
	}
	if plan.Every <= 0 {
		plan.Every = 1
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.points == nil {
		in.points = make(map[Point]*pointState)
	}
	in.points[p] = &pointState{plan: plan, rng: in.seed ^ hashPoint(p)}
}

// Clear disarms a point.
func (in *Injector) Clear(p Point) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.points, p)
}

// Fire consults a point: nil on the non-fault path; the plan's error
// (after the plan's delay) when the fault fires; or a panic for
// panicking plans. A nil injector always returns nil.
func (in *Injector) Fire(p Point) error {
	fire, plan := in.check(p)
	if !fire {
		return nil
	}
	if plan.Delay > 0 {
		time.Sleep(plan.Delay)
	}
	if plan.Panic {
		panic(Panic{Point: p})
	}
	if plan.Err == nil {
		if plan.Delay > 0 || plan.Corrupt != 0 {
			return nil // slow-only or corrupt-only plan: not a failure
		}
		return fmt.Errorf("faultinject: %s: %w", p, ErrInjected)
	}
	return fmt.Errorf("faultinject: %s: %w", p, plan.Err)
}

// check advances a point's schedule and reports whether the fault
// fires, with the plan to apply; it never acts on the plan itself
// (Fs consults it directly for write/read mutation modes).
func (in *Injector) check(p Point) (bool, Plan) {
	if in == nil {
		return false, Plan{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	st, ok := in.points[p]
	if !ok {
		return false, Plan{}
	}
	return st.step()
}

// step advances the point's deterministic schedule; the injector lock
// must be held. It returns whether this hit fires, plus a copy of the
// plan to act on outside the lock.
func (st *pointState) step() (bool, Plan) {
	st.hits++
	p := st.plan
	if st.hits <= p.After {
		return false, p
	}
	if p.Times > 0 && st.fires >= p.Times {
		return false, p
	}
	if (st.hits-p.After)%p.Every != 0 {
		return false, p
	}
	if p.Prob > 0 && p.Prob < 1 {
		if float64(splitmix64(&st.rng)>>11)/float64(1<<53) >= p.Prob {
			return false, p
		}
	}
	st.fires++
	return true, p
}

// Hits reports how many times a point has been consulted; Fires how
// many times it actually fired. Both are 0 on a nil injector.
func (in *Injector) Hits(p Point) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if st, ok := in.points[p]; ok {
		return st.hits
	}
	return 0
}

func (in *Injector) Fires(p Point) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if st, ok := in.points[p]; ok {
		return st.fires
	}
	return 0
}

// hashPoint is FNV-1a over the point name, mixed into the seed so each
// point gets an independent PRNG stream.
func hashPoint(p Point) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(p); i++ {
		h ^= uint64(p[i])
		h *= 1099511628211
	}
	return h
}

// splitmix64 advances the state and returns the next value; it is the
// standard seeding-quality generator, plenty for fault schedules.
func splitmix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
