package stats

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

var base = time.Date(2005, 1, 21, 0, 0, 0, 0, time.UTC)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]time.Duration{time.Second, 2 * time.Second, 3 * time.Second, 4 * time.Second})
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 0},
		{time.Second, 0.25},
		{2500 * time.Millisecond, 0.5},
		{4 * time.Second, 1},
		{time.Hour, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.at); got != tc.want {
			t.Errorf("At(%v) = %v, want %v", tc.at, got, tc.want)
		}
	}
	if c.N() != 4 {
		t.Errorf("N = %d, want 4", c.N())
	}
	if got := c.Mean(); got != 2500*time.Millisecond {
		t.Errorf("Mean = %v, want 2.5s", got)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(time.Hour) != 0 || c.N() != 0 || c.Quantile(0.5) != 0 || c.Mean() != 0 {
		t.Error("empty CDF should be all zeros")
	}
	if c.String() != "CDF{empty}" {
		t.Errorf("String = %q", c.String())
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]time.Duration{10, 20, 30, 40, 50})
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{-1, 10}, {0, 10}, {0.2, 10}, {0.21, 20}, {0.5, 30}, {1, 50}, {2, 50},
	}
	for _, tc := range cases {
		if got := c.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	f := func() bool {
		n := 1 + rng.IntN(200)
		samples := make([]time.Duration, n)
		for i := range samples {
			samples[i] = time.Duration(rng.IntN(10000)) * time.Millisecond
		}
		c := NewCDF(samples)
		// CDF must be monotone nondecreasing and hit 1 at the max.
		prev := 0.0
		for d := time.Duration(0); d <= 10*time.Second; d += 500 * time.Millisecond {
			p := c.At(d)
			if p < prev {
				return false
			}
			prev = p
		}
		return c.At(10*time.Second) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCDFQuantileInverseProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	f := func() bool {
		n := 1 + rng.IntN(100)
		samples := make([]time.Duration, n)
		for i := range samples {
			samples[i] = time.Duration(rng.IntN(1000)) * time.Millisecond
		}
		c := NewCDF(samples)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.9, 1.0} {
			if c.At(c.Quantile(q)) < q-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]time.Duration{time.Minute, time.Hour})
	got := c.Points([]time.Duration{0, time.Minute, time.Hour})
	want := []float64{0, 0.5, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Points[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestInterArrivalGaps(t *testing.T) {
	times := []time.Time{base, base.Add(time.Minute), base.Add(3 * time.Minute)}
	gaps := InterArrivalGaps(times)
	want := []time.Duration{time.Minute, 2 * time.Minute}
	if len(gaps) != 2 || gaps[0] != want[0] || gaps[1] != want[1] {
		t.Fatalf("gaps = %v, want %v", gaps, want)
	}
	if InterArrivalGaps(times[:1]) != nil {
		t.Error("single timestamp should yield no gaps")
	}
	if InterArrivalGaps(nil) != nil {
		t.Error("empty input should yield no gaps")
	}
}

func TestAnalyzeFollowSimple(t *testing.T) {
	// Category 1 at t0 and t0+10m: first is followed (10m gap in
	// (5m, 60m]), second is not. Category 2 at t0+10m+30s: gap to
	// nothing after.
	events := []TimedEvent{
		{base, 1},
		{base.Add(10 * time.Minute), 1},
		{base.Add(10*time.Minute + 30*time.Second), 2},
	}
	fs := AnalyzeFollow(events, 5*time.Minute, time.Hour)
	if fs.Total[1] != 2 || fs.Total[2] != 1 {
		t.Fatalf("Total = %v", fs.Total)
	}
	// First cat-1 event: follower at +10m (within (5m,60m]) -> followed.
	// Second cat-1 event: follower at +30s, gap <= minLead -> NOT followed.
	if fs.Followed[1] != 1 {
		t.Errorf("Followed[1] = %d, want 1", fs.Followed[1])
	}
	if fs.Followed[2] != 0 {
		t.Errorf("Followed[2] = %d, want 0", fs.Followed[2])
	}
	if got := fs.Probability(1); got != 0.5 {
		t.Errorf("Probability(1) = %v, want 0.5", got)
	}
	if got := fs.Probability(99); got != 0 {
		t.Errorf("Probability(unknown) = %v, want 0", got)
	}
}

func TestAnalyzeFollowUnsortedInput(t *testing.T) {
	events := []TimedEvent{
		{base.Add(10 * time.Minute), 1},
		{base, 1},
	}
	fs := AnalyzeFollow(events, 0, time.Hour)
	if fs.Followed[1] != 1 {
		t.Errorf("unsorted input: Followed[1] = %d, want 1", fs.Followed[1])
	}
}

func TestAnalyzeFollowMinLeadClamp(t *testing.T) {
	events := []TimedEvent{{base, 1}, {base.Add(time.Second), 1}}
	fs := AnalyzeFollow(events, -time.Hour, time.Hour)
	if fs.MinLead != 0 {
		t.Errorf("MinLead = %v, want 0", fs.MinLead)
	}
	if fs.Followed[1] != 1 {
		t.Errorf("Followed[1] = %d, want 1", fs.Followed[1])
	}
}

func TestFollowStatsCategories(t *testing.T) {
	events := []TimedEvent{{base, 3}, {base, 1}, {base, 2}, {base, 1}}
	fs := AnalyzeFollow(events, 0, time.Hour)
	got := fs.Categories()
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("Categories = %v, want %v", got, want)
	}
	if !sort.IntsAreSorted(got) {
		t.Errorf("Categories not sorted: %v", got)
	}
}

func TestCoveredBy(t *testing.T) {
	// Trigger category 1 at t0. Events at +10m (covered), +2h (not).
	events := []TimedEvent{
		{base, 1},
		{base.Add(10 * time.Minute), 2},
		{base.Add(2 * time.Hour), 2},
	}
	got := CoveredBy(events, map[int]bool{1: true}, 5*time.Minute, time.Hour)
	// Only the +10m event is covered; the trigger itself and the +2h
	// event are not -> 1/3.
	if want := 1.0 / 3.0; got != want {
		t.Errorf("CoveredBy = %v, want %v", got, want)
	}
	if CoveredBy(nil, nil, 0, time.Hour) != 0 {
		t.Error("empty CoveredBy should be 0")
	}
}

func TestAnalyzeFollowBurstIsFullyChained(t *testing.T) {
	// A burst of 5 events, 10 minutes apart: the first 4 are followed.
	var events []TimedEvent
	for i := 0; i < 5; i++ {
		events = append(events, TimedEvent{base.Add(time.Duration(i) * 10 * time.Minute), 7})
	}
	fs := AnalyzeFollow(events, 5*time.Minute, time.Hour)
	if fs.Followed[7] != 4 {
		t.Errorf("Followed = %d, want 4", fs.Followed[7])
	}
	if got, want := fs.Probability(7), 0.8; got != want {
		t.Errorf("Probability = %v, want %v", got, want)
	}
}
