// Package stats provides the statistical machinery behind the
// statistical-based predictor (paper §3.2.1) and Figure 2: empirical
// distributions of inter-failure gaps and per-category temporal
// correlation probabilities among fatal events.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// CDF is an empirical cumulative distribution function over durations.
// The zero value is an empty distribution.
type CDF struct {
	sorted []time.Duration
}

// NewCDF builds an empirical CDF from samples. The input slice is not
// retained.
func NewCDF(samples []time.Duration) *CDF {
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return &CDF{sorted: s}
}

// N returns the number of samples.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(X <= d), the fraction of samples not exceeding d.
func (c *CDF) At(d time.Duration) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// First index with sample > d.
	idx := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > d })
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the smallest sample x with P(X <= x) >= q.
// q outside (0, 1] is clamped.
func (c *CDF) Quantile(q float64) time.Duration {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q > 1 {
		q = 1
	}
	idx := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(c.sorted) {
		idx = len(c.sorted) - 1
	}
	return c.sorted[idx]
}

// Points samples the CDF at the given durations, returning matching
// probabilities. Useful for rendering figure series.
func (c *CDF) Points(at []time.Duration) []float64 {
	out := make([]float64, len(at))
	for i, d := range at {
		out[i] = c.At(d)
	}
	return out
}

// Mean returns the sample mean, or 0 for an empty distribution.
func (c *CDF) Mean() time.Duration {
	if len(c.sorted) == 0 {
		return 0
	}
	var sum float64
	for _, d := range c.sorted {
		sum += float64(d)
	}
	return time.Duration(sum / float64(len(c.sorted)))
}

// String summarizes the distribution.
func (c *CDF) String() string {
	if c.N() == 0 {
		return "CDF{empty}"
	}
	return fmt.Sprintf("CDF{n=%d p50=%v p90=%v}", c.N(), c.Quantile(0.5), c.Quantile(0.9))
}

// InterArrivalGaps returns the gaps between consecutive timestamps.
// The input must be sorted ascending; n timestamps yield n-1 gaps.
func InterArrivalGaps(times []time.Time) []time.Duration {
	if len(times) < 2 {
		return nil
	}
	gaps := make([]time.Duration, 0, len(times)-1)
	for i := 1; i < len(times); i++ {
		gaps = append(gaps, times[i].Sub(times[i-1]))
	}
	return gaps
}
