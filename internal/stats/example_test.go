package stats_test

import (
	"fmt"
	"time"

	"bglpred/internal/stats"
)

// Measuring the temporal correlation the statistical predictor uses:
// category 1's events are followed within the window, category 2's
// are not.
func ExampleAnalyzeFollow() {
	t0 := time.Date(2005, 1, 21, 0, 0, 0, 0, time.UTC)
	events := []stats.TimedEvent{
		{Time: t0, Category: 1},
		{Time: t0.Add(20 * time.Minute), Category: 1},
		{Time: t0.Add(40 * time.Minute), Category: 2},
		{Time: t0.Add(5 * time.Hour), Category: 2},
	}
	fs := stats.AnalyzeFollow(events, 5*time.Minute, time.Hour)
	fmt.Printf("P(follow|cat1)=%.2f P(follow|cat2)=%.2f\n",
		fs.Probability(1), fs.Probability(2))
	// Output: P(follow|cat1)=1.00 P(follow|cat2)=0.00
}

// The Figure 2 analysis: an empirical CDF over inter-failure gaps.
func ExampleNewCDF() {
	gaps := []time.Duration{
		2 * time.Minute, 4 * time.Minute, 30 * time.Minute, 3 * time.Hour,
	}
	cdf := stats.NewCDF(gaps)
	fmt.Printf("CDF(5min)=%.2f CDF(1h)=%.2f median=%v\n",
		cdf.At(5*time.Minute), cdf.At(time.Hour), cdf.Quantile(0.5))
	// Output: CDF(5min)=0.50 CDF(1h)=0.75 median=4m0s
}
