package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"time"
)

func TestAnalyzeSpatialPerfectCorrelation(t *testing.T) {
	// Pairs of events 10 minutes apart, always on the same midplane.
	var events []LocatedEvent
	at := base
	for i := 0; i < 20; i++ {
		place := "R00-M0"
		if i%2 == 1 {
			place = "R00-M1"
		}
		events = append(events,
			LocatedEvent{at, place},
			LocatedEvent{at.Add(10 * time.Minute), place})
		at = at.Add(6 * time.Hour)
	}
	sp := AnalyzeSpatial(events, time.Hour)
	if sp.Pairs != 20 {
		t.Fatalf("pairs = %d, want 20 (cross-episode gaps exceed window)", sp.Pairs)
	}
	if sp.SamePlaceProbability() != 1 {
		t.Fatalf("P(same) = %v, want 1", sp.SamePlaceProbability())
	}
	// Two equally loaded places: baseline 0.5, lift 2.
	if math.Abs(sp.ExpectedSamePlace-0.5) > 1e-9 {
		t.Fatalf("baseline = %v, want 0.5", sp.ExpectedSamePlace)
	}
	if math.Abs(sp.SpatialLift()-2) > 1e-9 {
		t.Fatalf("lift = %v, want 2", sp.SpatialLift())
	}
}

func TestAnalyzeSpatialUncorrelated(t *testing.T) {
	// Uniformly random placement over 4 places: lift should approach 1.
	rng := rand.New(rand.NewPCG(1, 2))
	places := []string{"A", "B", "C", "D"}
	var events []LocatedEvent
	at := base
	for i := 0; i < 4000; i++ {
		events = append(events, LocatedEvent{at, places[rng.IntN(len(places))]})
		at = at.Add(10 * time.Minute)
	}
	sp := AnalyzeSpatial(events, time.Hour)
	if lift := sp.SpatialLift(); lift < 0.85 || lift > 1.15 {
		t.Fatalf("uncorrelated lift = %v, want ~1", lift)
	}
}

func TestAnalyzeSpatialWindowExcludesDistantPairs(t *testing.T) {
	events := []LocatedEvent{
		{base, "A"},
		{base.Add(2 * time.Hour), "A"},
	}
	sp := AnalyzeSpatial(events, time.Hour)
	if sp.Pairs != 0 {
		t.Fatalf("pairs = %d, want 0", sp.Pairs)
	}
	if sp.SamePlaceProbability() != 0 {
		t.Fatal("no pairs should mean probability 0")
	}
}

func TestAnalyzeSpatialUnsortedInput(t *testing.T) {
	events := []LocatedEvent{
		{base.Add(10 * time.Minute), "A"},
		{base, "A"},
	}
	sp := AnalyzeSpatial(events, time.Hour)
	if sp.Pairs != 1 || sp.SamePlace != 1 {
		t.Fatalf("unsorted input mishandled: %+v", sp)
	}
}

func TestHotspots(t *testing.T) {
	var events []LocatedEvent
	at := base
	add := func(place string, n int) {
		for i := 0; i < n; i++ {
			events = append(events, LocatedEvent{at, place})
			at = at.Add(time.Hour)
		}
	}
	add("hot", 6)
	add("warm", 3)
	add("cold", 1)
	sp := AnalyzeSpatial(events, time.Minute)
	hs := sp.Hotspots(2)
	if len(hs) != 2 || hs[0].Place != "hot" || hs[1].Place != "warm" {
		t.Fatalf("hotspots = %v", hs)
	}
	if math.Abs(hs[0].Share-0.6) > 1e-9 {
		t.Fatalf("hot share = %v", hs[0].Share)
	}
	if all := sp.Hotspots(0); len(all) != 3 {
		t.Fatalf("Hotspots(0) = %v", all)
	}
}

func TestSpatialEmptyInput(t *testing.T) {
	sp := AnalyzeSpatial(nil, time.Hour)
	if sp.SamePlaceProbability() != 0 || sp.SpatialLift() != 0 || len(sp.Hotspots(0)) != 0 {
		t.Fatal("empty input should yield zeros")
	}
}
