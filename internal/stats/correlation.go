package stats

import (
	"sort"
	"time"
)

// TimedEvent is the minimal view of a fatal event the temporal
// correlation analysis needs: when it happened and which category
// (an opaque small integer, e.g. catalog.Main) it belongs to.
type TimedEvent struct {
	Time     time.Time
	Category int
}

// FollowStats captures, per category, how often a fatal event of that
// category is followed by another fatal event within (MinLead, Window]
// — the temporal correlation the statistical predictor exploits
// (paper §3.2.1: "if a network or I/O stream failure is reported, it is
// predicted that another failure is possible within a time period of
// 5 minutes to 1 hour").
type FollowStats struct {
	MinLead  time.Duration
	Window   time.Duration
	Total    map[int]int // events per category
	Followed map[int]int // events per category with a follower in (MinLead, Window]
}

// AnalyzeFollow computes FollowStats over fatal events. Events are
// sorted by time internally; the input slice is not modified.
// MinLead < 0 is treated as 0. A follower is any later fatal event
// (of any category) whose gap g satisfies minLead < g <= window.
func AnalyzeFollow(events []TimedEvent, minLead, window time.Duration) *FollowStats {
	if minLead < 0 {
		minLead = 0
	}
	sorted := append([]TimedEvent(nil), events...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Time.Before(sorted[j].Time) })

	fs := &FollowStats{
		MinLead:  minLead,
		Window:   window,
		Total:    make(map[int]int),
		Followed: make(map[int]int),
	}
	for i, ev := range sorted {
		fs.Total[ev.Category]++
		// Scan forward until the gap leaves the window. Logs cluster, so
		// this is near-linear overall.
		for j := i + 1; j < len(sorted); j++ {
			gap := sorted[j].Time.Sub(ev.Time)
			if gap > window {
				break
			}
			if gap > minLead {
				fs.Followed[ev.Category]++
				break
			}
		}
	}
	return fs
}

// Merge folds another analysis's counts into fs. Analyzing segments
// of a discontiguous stream separately and merging keeps follow
// windows from spanning the gaps between segments (the
// cross-validation protocol excises a test fold from the middle of
// the training stream); both analyses must share MinLead and Window.
func (fs *FollowStats) Merge(other *FollowStats) {
	for c, n := range other.Total {
		fs.Total[c] += n
	}
	for c, n := range other.Followed {
		fs.Followed[c] += n
	}
}

// Probability returns the empirical P(another fatal within the window |
// fatal of category c), or 0 if the category was never seen.
func (fs *FollowStats) Probability(category int) float64 {
	total := fs.Total[category]
	if total == 0 {
		return 0
	}
	return float64(fs.Followed[category]) / float64(total)
}

// Categories returns the categories seen, sorted ascending.
func (fs *FollowStats) Categories() []int {
	out := make([]int, 0, len(fs.Total))
	for c := range fs.Total {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// CoveredBy returns, over all events, the fraction that occur within
// (MinLead, Window] AFTER an event of one of the trigger categories —
// an upper bound on the statistical predictor's recall for those
// triggers.
func CoveredBy(events []TimedEvent, triggers map[int]bool, minLead, window time.Duration) float64 {
	if len(events) == 0 {
		return 0
	}
	sorted := append([]TimedEvent(nil), events...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Time.Before(sorted[j].Time) })
	covered := 0
	for i := range sorted {
		for j := i - 1; j >= 0; j-- {
			gap := sorted[i].Time.Sub(sorted[j].Time)
			if gap > window {
				break
			}
			if gap > minLead && triggers[sorted[j].Category] {
				covered++
				break
			}
		}
	}
	return float64(covered) / float64(len(sorted))
}
