package stats

import (
	"sort"
	"time"
)

// The paper's statistical phase builds on Liang et al. [22], who
// report both temporal AND spatial correlation among BG/L failures:
// failures cluster on the same midplane, and a small set of locations
// produces a disproportionate share of all failures. This file adds
// the spatial side of that analysis.

// LocatedEvent is the minimal view the spatial analysis needs.
type LocatedEvent struct {
	Time time.Time
	// Place is an opaque location key at the granularity under study
	// (typically the midplane string).
	Place string
}

// SpatialStats summarizes spatial correlation among fatal events.
type SpatialStats struct {
	// Window is the temporal window pairs were tested within.
	Window time.Duration
	// Pairs is the number of (event, next-event-within-window) pairs.
	Pairs int
	// SamePlace is how many of those pairs share a location.
	SamePlace int
	// PlaceShare maps each place to its share of all events.
	PlaceShare map[string]float64
	// ExpectedSamePlace is the same-place probability a spatially
	// uncorrelated process would show (the sum of squared place
	// shares) — the baseline SamePlaceProbability is compared against.
	ExpectedSamePlace float64
}

// SamePlaceProbability returns P(consecutive failures within the
// window strike the same place).
func (s *SpatialStats) SamePlaceProbability() float64 {
	if s.Pairs == 0 {
		return 0
	}
	return float64(s.SamePlace) / float64(s.Pairs)
}

// SpatialLift returns how many times likelier a same-place follow-up
// is than the uncorrelated baseline; 1.0 means no spatial correlation.
func (s *SpatialStats) SpatialLift() float64 {
	if s.ExpectedSamePlace == 0 {
		return 0
	}
	return s.SamePlaceProbability() / s.ExpectedSamePlace
}

// AnalyzeSpatial measures same-place correlation between each event
// and its immediate successor within the window. Events are sorted
// internally.
func AnalyzeSpatial(events []LocatedEvent, window time.Duration) *SpatialStats {
	sorted := append([]LocatedEvent(nil), events...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Time.Before(sorted[j].Time) })

	out := &SpatialStats{Window: window, PlaceShare: make(map[string]float64)}
	for _, e := range sorted {
		out.PlaceShare[e.Place]++
	}
	for p := range out.PlaceShare {
		out.PlaceShare[p] /= float64(len(sorted))
	}
	for _, share := range out.PlaceShare {
		out.ExpectedSamePlace += share * share
	}
	for i := 0; i+1 < len(sorted); i++ {
		gap := sorted[i+1].Time.Sub(sorted[i].Time)
		if gap > window {
			continue
		}
		out.Pairs++
		if sorted[i+1].Place == sorted[i].Place {
			out.SamePlace++
		}
	}
	return out
}

// Hotspots returns places ordered by descending event share — Liang
// et al.'s observation that a few locations dominate the failure
// count. topN <= 0 returns all places.
func (s *SpatialStats) Hotspots(topN int) []Hotspot {
	out := make([]Hotspot, 0, len(s.PlaceShare))
	for p, share := range s.PlaceShare {
		out = append(out, Hotspot{Place: p, Share: share})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Share != out[j].Share {
			return out[i].Share > out[j].Share
		}
		return out[i].Place < out[j].Place
	})
	if topN > 0 && topN < len(out) {
		out = out[:topN]
	}
	return out
}

// Hotspot is one place and its share of all events.
type Hotspot struct {
	Place string
	Share float64
}
