// Package model persists trained predictors as versioned,
// self-describing, integrity-checked artifacts, so a daemon can load a
// model in milliseconds instead of re-mining it, ship it between
// machines, and verify on every load that the bytes are exactly the
// bytes that were saved.
//
// Two layers:
//
//   - The envelope: a generic binary container — magic, format
//     version, payload length, SHA-256 of the payload, then a gob
//     payload — written atomically (temp file, fsync, rename). The
//     checkpoint files of internal/lifecycle reuse it under their own
//     magic.
//   - The Artifact: the model payload itself — the statistical
//     predictor's temporal-correlation tables and triggers, the mined
//     association-rule set, the meta policy, and training provenance.
package model

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"path/filepath"
)

// envelope layout:
//
//	[0:4]   magic (4 ASCII bytes, e.g. "BGLM")
//	[4:8]   format version, big-endian uint32
//	[8:16]  payload length, big-endian uint64
//	[16:48] SHA-256 of the payload
//	[48:]   payload (gob stream)
const headerLen = 48

// maxPayload bounds how much a reader will allocate on the word of an
// untrusted header (a corrupted length field must not OOM the daemon).
const maxPayload = 1 << 30

// Info identifies one stored envelope: where it lives, what format
// version it carries, and the hash that names its content. The hex
// SHA-256 is the artifact's identity — /v1/model reports it, and
// checkpoints record it to detect model/state mismatches.
type Info struct {
	Path    string
	Version uint32
	SHA256  string
	Size    int64
}

// encodeEnvelope frames a payload under a magic and version.
func encodeEnvelope(magic string, version uint32, payload []byte) ([]byte, error) {
	if len(magic) != 4 {
		return nil, fmt.Errorf("model: magic must be 4 bytes, got %q", magic)
	}
	buf := make([]byte, headerLen+len(payload))
	copy(buf[0:4], magic)
	binary.BigEndian.PutUint32(buf[4:8], version)
	binary.BigEndian.PutUint64(buf[8:16], uint64(len(payload)))
	sum := sha256.Sum256(payload)
	copy(buf[16:48], sum[:])
	copy(buf[headerLen:], payload)
	return buf, nil
}

// decodeEnvelope validates a framed buffer and returns its payload.
// Every failure mode — wrong magic, future version, truncation,
// trailing garbage, hash mismatch — is a distinct error; none panics.
func decodeEnvelope(data []byte, magic string, maxVersion uint32) (version uint32, payload []byte, err error) {
	if len(data) < headerLen {
		return 0, nil, fmt.Errorf("model: truncated header: %d bytes, need %d", len(data), headerLen)
	}
	if got := string(data[0:4]); got != magic {
		return 0, nil, fmt.Errorf("model: bad magic %q, want %q", got, magic)
	}
	version = binary.BigEndian.Uint32(data[4:8])
	if version == 0 || version > maxVersion {
		return 0, nil, fmt.Errorf("model: unsupported %s format version %d (this build reads 1..%d)", magic, version, maxVersion)
	}
	n := binary.BigEndian.Uint64(data[8:16])
	if n > maxPayload {
		return 0, nil, fmt.Errorf("model: declared payload of %d bytes exceeds the %d limit", n, int64(maxPayload))
	}
	if uint64(len(data)-headerLen) != n {
		return 0, nil, fmt.Errorf("model: payload is %d bytes, header declares %d", len(data)-headerLen, n)
	}
	payload = data[headerLen:]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], data[16:48]) {
		return 0, nil, fmt.Errorf("model: SHA-256 mismatch: artifact is corrupted")
	}
	return version, payload, nil
}

// SaveEnvelope gob-encodes v and writes it crash-safely under the
// given magic and version: the bytes land in a temp file in the target
// directory, are fsynced, and are renamed over path, so a crash at any
// point leaves either the old file or the new one — never a torn mix.
func SaveEnvelope(path, magic string, version uint32, v any) (Info, error) {
	return SaveEnvelopeFS(OS, path, magic, version, v)
}

// SaveEnvelopeFS is SaveEnvelope over an explicit filesystem — the
// fault-injection seam for persistence resilience tests.
func SaveEnvelopeFS(fsys FS, path, magic string, version uint32, v any) (Info, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(v); err != nil {
		return Info{}, fmt.Errorf("model: encode %s: %w", magic, err)
	}
	framed, err := encodeEnvelope(magic, version, payload.Bytes())
	if err != nil {
		return Info{}, err
	}
	if err := writeFileAtomic(fsys, path, framed); err != nil {
		return Info{}, err
	}
	sum := sha256.Sum256(payload.Bytes())
	return Info{Path: path, Version: version, SHA256: hex.EncodeToString(sum[:]), Size: int64(len(framed))}, nil
}

// MarshalEnvelope gob-encodes v and frames it under the given magic
// and version, returning the envelope bytes without touching a
// filesystem — for callers that persist envelopes through another
// durability path (the audit ledger's group commit).
func MarshalEnvelope(magic string, version uint32, v any) ([]byte, Info, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(v); err != nil {
		return nil, Info{}, fmt.Errorf("model: encode %s: %w", magic, err)
	}
	framed, err := encodeEnvelope(magic, version, payload.Bytes())
	if err != nil {
		return nil, Info{}, err
	}
	sum := sha256.Sum256(payload.Bytes())
	return framed, Info{Version: version, SHA256: hex.EncodeToString(sum[:]), Size: int64(len(framed))}, nil
}

// UnmarshalEnvelope is LoadEnvelope over in-memory envelope bytes —
// the inverse of MarshalEnvelope.
func UnmarshalEnvelope(data []byte, magic string, maxVersion uint32, v any) (Info, error) {
	return loadEnvelopeBytes(data, "", magic, maxVersion, v)
}

// LoadEnvelope reads path, verifies the envelope under the given magic
// (accepting versions 1..maxVersion), and gob-decodes the payload
// into v.
func LoadEnvelope(path, magic string, maxVersion uint32, v any) (Info, error) {
	return LoadEnvelopeFS(OS, path, magic, maxVersion, v)
}

// LoadEnvelopeFS is LoadEnvelope over an explicit filesystem.
func LoadEnvelopeFS(fsys FS, path, magic string, maxVersion uint32, v any) (Info, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return Info{}, err
	}
	return loadEnvelopeBytes(data, path, magic, maxVersion, v)
}

// loadEnvelopeBytes is LoadEnvelope over in-memory bytes (the fuzz
// seam: no filesystem in the loop).
func loadEnvelopeBytes(data []byte, path, magic string, maxVersion uint32, v any) (Info, error) {
	version, payload, err := decodeEnvelope(data, magic, maxVersion)
	if err != nil {
		return Info{}, err
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return Info{}, fmt.Errorf("model: decode %s payload: %w", magic, err)
	}
	sum := sha256.Sum256(payload)
	return Info{Path: path, Version: version, SHA256: hex.EncodeToString(sum[:]), Size: int64(len(data))}, nil
}

// VerifyEnvelope checks a file's framing and integrity hash without
// decoding the payload — a cheap preflight for operators ("is this
// artifact intact?") and for startup paths that want to fail early.
func VerifyEnvelope(path, magic string, maxVersion uint32) (Info, error) {
	data, err := OS.ReadFile(path)
	if err != nil {
		return Info{}, err
	}
	version, payload, err := decodeEnvelope(data, magic, maxVersion)
	if err != nil {
		return Info{}, err
	}
	sum := sha256.Sum256(payload)
	return Info{Path: path, Version: version, SHA256: hex.EncodeToString(sum[:]), Size: int64(len(data))}, nil
}

// writeFileAtomic writes data next to path and renames it into place,
// fsyncing the file and its directory.
func writeFileAtomic(fsys FS, path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer fsys.Remove(tmpName) // no-op after a successful rename
	if n, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	} else if n < len(data) {
		tmp.Close()
		return fmt.Errorf("model: short write: %d of %d bytes", n, len(data))
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmpName, path); err != nil {
		return err
	}
	// Persist the rename itself. Best effort: some filesystems refuse
	// directory fsync, and the data file is already durable.
	_ = fsys.SyncDir(dir)
	return nil
}
