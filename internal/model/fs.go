package model

import (
	"io"
	"os"
)

// FS abstracts the handful of file operations envelope persistence
// performs, so resilience tests can interpose injected I/O faults
// (internal/faultinject.Fs) between the persistence logic and the real
// filesystem. Production code uses OS, the passthrough implementation;
// every FS-taking entry point has a convenience wrapper that defaults
// to it.
type FS interface {
	// ReadFile reads the named file whole (os.ReadFile semantics).
	ReadFile(name string) ([]byte, error)
	// CreateTemp creates a new temporary file in dir (os.CreateTemp
	// semantics); atomic writes stage their bytes here.
	CreateTemp(dir, pattern string) (File, error)
	// Rename moves a staged temp file over its destination.
	Rename(oldpath, newpath string) error
	// Remove deletes a file (cleanup of failed staging).
	Remove(name string) error
	// SyncDir fsyncs a directory, persisting a completed rename.
	// Implementations may make this best effort: some filesystems
	// refuse directory fsync.
	SyncDir(dir string) error
}

// File is the writable handle CreateTemp returns: enough surface to
// stream bytes, fsync, and close.
type File interface {
	io.Writer
	// Name reports the file's path (for the later Rename/Remove).
	Name() string
	// Sync flushes the file's bytes to stable storage.
	Sync() error
	// Close closes the handle.
	Close() error
}

// OS is the passthrough FS over the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil // best effort; the data file is already durable
	}
	_ = d.Sync()
	return d.Close()
}
