package model

import (
	"fmt"
	"time"

	"bglpred/internal/assoc"
	"bglpred/internal/catalog"
	"bglpred/internal/predictor"
	"bglpred/internal/stats"
)

// ArtifactMagic and ArtifactVersion identify the model artifact
// format. Bump ArtifactVersion when the payload schema changes; Load
// keeps accepting every version up to the current one (the golden-file
// test in artifact_test.go pins version 1 forever).
const (
	ArtifactMagic   = "BGLM"
	ArtifactVersion = 1
)

// Provenance records where a model came from: the log it was trained
// on, its span and size, and the mining parameters — enough to audit a
// serving model ("which data, which thresholds?") and to reproduce the
// training run.
type Provenance struct {
	// TrainedAt is when training finished (wall clock).
	TrainedAt time.Time
	// Source describes the training data (file path or generator spec).
	Source string
	// Records is the raw record count; Unique the count surviving
	// Phase 1 compression.
	Records int
	Unique  int
	// LogStart and LogEnd span the training log's event times.
	LogStart time.Time
	LogEnd   time.Time
	// Params are the mining parameters in force.
	Params MiningParams
}

// MiningParams are the training knobs that shaped the rule set.
type MiningParams struct {
	MinSupport    float64
	MinConfidence float64
	MaxBodyLen    int
	RuleGenWindow time.Duration
	Miner         string
}

// StatModel is the serialized statistical base predictor (§3.2.1):
// its configuration and the learned temporal-correlation tables.
type StatModel struct {
	MinLead        time.Duration
	MaxWindow      time.Duration
	MinProbability float64
	MinCount       int
	// FollowMinLead/FollowWindow frame the follow counts below (they
	// mirror MinLead/MaxWindow at training time).
	FollowMinLead time.Duration
	FollowWindow  time.Duration
	// Total and Followed are the per-main-category follow counts of
	// stats.FollowStats.
	Total    map[int]int
	Followed map[int]int
	// Triggers maps trigger categories (catalog.Main as int) to their
	// learned confidence.
	Triggers map[int]float64
}

// RuleModel is the serialized rule-based base predictor (§3.2.2): the
// mined rule set, in BestMatch order, and its rule-generation window.
type RuleModel struct {
	Window time.Duration
	// Rules carry supports, confidences and counts; assoc.Rule is plain
	// exported data.
	Rules []assoc.Rule
}

// Artifact is a complete trained predictor as plain serializable data:
// everything needed to reconstruct a predictor.Meta that behaves
// identically to the one that was saved.
type Artifact struct {
	Provenance Provenance
	// Policy is the meta-learner arbitration policy (predictor.Policy).
	Policy int
	Stat   StatModel
	Rule   RuleModel
}

// FromMeta captures a trained meta-learner as an artifact. The
// returned artifact shares no mutable state with the predictor: maps
// and slices are copied, so later retraining cannot corrupt a saved
// model.
func FromMeta(m *predictor.Meta, prov Provenance) (*Artifact, error) {
	if m == nil || m.Stat == nil || m.Rule == nil {
		return nil, fmt.Errorf("model: meta-learner is not trained (nil base predictor)")
	}
	follow := m.Stat.FollowStats()
	if follow == nil {
		return nil, fmt.Errorf("model: statistical predictor is not trained")
	}
	rules := m.Rule.Rules()
	if rules == nil {
		return nil, fmt.Errorf("model: rule predictor is not trained")
	}
	a := &Artifact{
		Provenance: prov,
		Policy:     int(m.Policy),
		Stat: StatModel{
			MinLead:        m.Stat.MinLead,
			MaxWindow:      m.Stat.MaxWindow,
			MinProbability: m.Stat.MinProbability,
			MinCount:       m.Stat.MinCount,
			FollowMinLead:  follow.MinLead,
			FollowWindow:   follow.Window,
			Total:          copyIntMap(follow.Total),
			Followed:       copyIntMap(follow.Followed),
			Triggers:       make(map[int]float64),
		},
		Rule: RuleModel{
			Window: m.Rule.ChosenWindow(),
			Rules:  make([]assoc.Rule, len(rules.Rules)),
		},
	}
	for main, conf := range m.Stat.Triggers() {
		a.Stat.Triggers[int(main)] = conf
	}
	for i, r := range rules.Rules {
		r.Body = r.Body.Clone()
		r.Heads = r.Heads.Clone()
		a.Rule.Rules[i] = r
	}
	return a, nil
}

// Meta reconstructs a trained meta-learner from the artifact. The
// result predicts identically to the meta-learner FromMeta captured
// (the round-trip test in artifact_test.go asserts this event for
// event).
func (a *Artifact) Meta() *predictor.Meta {
	stat := &predictor.Statistical{
		MinLead:        a.Stat.MinLead,
		MaxWindow:      a.Stat.MaxWindow,
		MinProbability: a.Stat.MinProbability,
		MinCount:       a.Stat.MinCount,
	}
	follow := &stats.FollowStats{
		MinLead:  a.Stat.FollowMinLead,
		Window:   a.Stat.FollowWindow,
		Total:    copyIntMap(a.Stat.Total),
		Followed: copyIntMap(a.Stat.Followed),
	}
	triggers := make(map[catalog.Main]float64, len(a.Stat.Triggers))
	for main, conf := range a.Stat.Triggers {
		triggers[catalog.Main(main)] = conf
	}
	stat.SetTrained(follow, triggers)

	rule := predictor.NewRule()
	ruleCopies := make([]assoc.Rule, len(a.Rule.Rules))
	for i, r := range a.Rule.Rules {
		r.Body = r.Body.Clone()
		r.Heads = r.Heads.Clone()
		ruleCopies[i] = r
	}
	rule.SetTrained(assoc.NewRuleSet(ruleCopies), a.Rule.Window)

	return &predictor.Meta{Stat: stat, Rule: rule, Policy: predictor.Policy(a.Policy)}
}

// Save writes the artifact to path in the versioned envelope format,
// atomically. The returned Info carries the payload's SHA-256 — the
// artifact's identity.
func (a *Artifact) Save(path string) (Info, error) {
	return a.SaveFS(OS, path)
}

// SaveFS is Save over an explicit filesystem (the fault-injection
// seam).
func (a *Artifact) SaveFS(fsys FS, path string) (Info, error) {
	return SaveEnvelopeFS(fsys, path, ArtifactMagic, ArtifactVersion, a)
}

// Load reads and verifies a model artifact. It accepts any format
// version up to ArtifactVersion; corrupted or truncated files return
// an error, never a panic.
func Load(path string) (*Artifact, Info, error) {
	var a Artifact
	info, err := LoadEnvelope(path, ArtifactMagic, ArtifactVersion, &a)
	if err != nil {
		return nil, Info{}, err
	}
	return &a, info, nil
}

// Decode is Load over in-memory bytes (used by the fuzz harness and
// anything shipping artifacts over a wire instead of a file).
func Decode(data []byte) (*Artifact, Info, error) {
	var a Artifact
	info, err := loadEnvelopeBytes(data, "", ArtifactMagic, ArtifactVersion, &a)
	if err != nil {
		return nil, Info{}, err
	}
	return &a, info, nil
}

// Verify checks a model artifact's framing and integrity without
// decoding it.
func Verify(path string) (Info, error) {
	return VerifyEnvelope(path, ArtifactMagic, ArtifactVersion)
}

func copyIntMap(m map[int]int) map[int]int {
	out := make(map[int]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
