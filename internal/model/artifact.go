package model

import (
	"fmt"
	"time"

	"bglpred/internal/assoc"
	"bglpred/internal/catalog"
	"bglpred/internal/predictor"
	"bglpred/internal/stats"
)

// ArtifactMagic and ArtifactVersion identify the model artifact
// format. Bump ArtifactVersion when the payload schema changes; Load
// keeps accepting every version up to the current one (the golden-file
// test in artifact_test.go pins version 1 forever).
const (
	ArtifactMagic   = "BGLM"
	ArtifactVersion = 2
)

// Provenance records where a model came from: the log it was trained
// on, its span and size, and the mining parameters — enough to audit a
// serving model ("which data, which thresholds?") and to reproduce the
// training run.
type Provenance struct {
	// TrainedAt is when training finished (wall clock).
	TrainedAt time.Time
	// Source describes the training data (file path or generator spec).
	Source string
	// Records is the raw record count; Unique the count surviving
	// Phase 1 compression.
	Records int
	Unique  int
	// LogStart and LogEnd span the training log's event times.
	LogStart time.Time
	LogEnd   time.Time
	// Params are the mining parameters in force.
	Params MiningParams
}

// MiningParams are the training knobs that shaped the rule set.
type MiningParams struct {
	MinSupport    float64
	MinConfidence float64
	MaxBodyLen    int
	RuleGenWindow time.Duration
	Miner         string
}

// StatModel is the serialized statistical base predictor (§3.2.1):
// its configuration and the learned temporal-correlation tables.
type StatModel struct {
	MinLead        time.Duration
	MaxWindow      time.Duration
	MinProbability float64
	MinCount       int
	// FollowMinLead/FollowWindow frame the follow counts below (they
	// mirror MinLead/MaxWindow at training time).
	FollowMinLead time.Duration
	FollowWindow  time.Duration
	// Total and Followed are the per-main-category follow counts of
	// stats.FollowStats.
	Total    map[int]int
	Followed map[int]int
	// Triggers maps trigger categories (catalog.Main as int) to their
	// learned confidence.
	Triggers map[int]float64
}

// RuleModel is the serialized rule-based base predictor (§3.2.2): the
// mined rule set, in BestMatch order, and its rule-generation window.
type RuleModel struct {
	Window time.Duration
	// Rules carry supports, confidences and counts; assoc.Rule is plain
	// exported data.
	Rules []assoc.Rule
}

// Section is one named per-predictor payload of a version-2
// artifact: Name is the base predictor's registry name and Data is
// its predictor.Base State payload. Meta rebuilds each section
// through the registry, so an artifact can carry any registered base
// set, not just the classic pair.
type Section struct {
	Name string
	Data []byte
}

// Artifact is a complete trained predictor as plain serializable data:
// everything needed to reconstruct a predictor.Meta that behaves
// identically to the one that was saved.
type Artifact struct {
	Provenance Provenance
	// Policy is the meta-learner arbitration policy (predictor.Policy).
	Policy int
	// Stat and Rule are the version-1 payload: the classic pair's
	// tables. Version-2 artifacts keep filling them when the pair is
	// present — they stay the quick-inspection mirror (rule counts in
	// logs and /v1/model) — but reconstruction uses Sections.
	Stat StatModel
	Rule RuleModel
	// Sections carries every base predictor's serialized state in
	// meta-learner arbitration order (version >= 2; nil in version-1
	// files, which map to the legacy statistical+rule pair).
	Sections []Section
}

// FromMeta captures a trained meta-learner as an artifact. The
// returned artifact shares no mutable state with the predictor: maps
// and slices are copied, so later retraining cannot corrupt a saved
// model.
func FromMeta(m *predictor.Meta, prov Provenance) (*Artifact, error) {
	if m == nil || len(m.Bases()) == 0 {
		return nil, fmt.Errorf("model: meta-learner is not trained (no base predictors)")
	}
	a := &Artifact{Provenance: prov, Policy: int(m.Policy)}
	for _, b := range m.Bases() {
		data, err := b.State()
		if err != nil {
			return nil, fmt.Errorf("model: %s predictor: %w", b.Name(), err)
		}
		a.Sections = append(a.Sections, Section{Name: b.Name(), Data: data})
	}
	// The classic pair additionally fills the version-1 mirror tables:
	// logs and /v1/model read rule counts and trigger tables from them
	// without decoding section payloads.
	if m.Stat != nil {
		follow := m.Stat.FollowStats()
		a.Stat = StatModel{
			MinLead:        m.Stat.MinLead,
			MaxWindow:      m.Stat.MaxWindow,
			MinProbability: m.Stat.MinProbability,
			MinCount:       m.Stat.MinCount,
			FollowMinLead:  follow.MinLead,
			FollowWindow:   follow.Window,
			Total:          copyIntMap(follow.Total),
			Followed:       copyIntMap(follow.Followed),
			Triggers:       make(map[int]float64),
		}
		for main, conf := range m.Stat.Triggers() {
			a.Stat.Triggers[int(main)] = conf
		}
	}
	if m.Rule != nil {
		rules := m.Rule.Rules()
		a.Rule = RuleModel{
			Window: m.Rule.ChosenWindow(),
			Rules:  make([]assoc.Rule, len(rules.Rules)),
		}
		for i, r := range rules.Rules {
			r.Body = r.Body.Clone()
			r.Heads = r.Heads.Clone()
			a.Rule.Rules[i] = r
		}
	}
	return a, nil
}

// Meta reconstructs a trained meta-learner from the artifact. The
// result predicts identically to the meta-learner FromMeta captured
// (the round-trip test in artifact_test.go asserts this event for
// event). A version-2 artifact rebuilds each per-predictor section
// through the base-predictor registry; a version-1 artifact (no
// sections) maps to the legacy statistical+rule pair.
func (a *Artifact) Meta() (*predictor.Meta, error) {
	if len(a.Sections) == 0 {
		return a.legacyMeta(), nil
	}
	bases := make([]predictor.Base, 0, len(a.Sections))
	for _, sec := range a.Sections {
		b, err := predictor.NewBase(sec.Name)
		if err != nil {
			return nil, fmt.Errorf("model: artifact section %q: %w", sec.Name, err)
		}
		if err := b.SetState(sec.Data); err != nil {
			return nil, fmt.Errorf("model: restore %s predictor: %w", sec.Name, err)
		}
		bases = append(bases, b)
	}
	m := predictor.NewMetaBases(bases...)
	m.Policy = predictor.Policy(a.Policy)
	return m, nil
}

// legacyMeta rebuilds the classic pair from the version-1 mirror
// tables.
func (a *Artifact) legacyMeta() *predictor.Meta {
	stat := &predictor.Statistical{
		MinLead:        a.Stat.MinLead,
		MaxWindow:      a.Stat.MaxWindow,
		MinProbability: a.Stat.MinProbability,
		MinCount:       a.Stat.MinCount,
	}
	follow := &stats.FollowStats{
		MinLead:  a.Stat.FollowMinLead,
		Window:   a.Stat.FollowWindow,
		Total:    copyIntMap(a.Stat.Total),
		Followed: copyIntMap(a.Stat.Followed),
	}
	triggers := make(map[catalog.Main]float64, len(a.Stat.Triggers))
	for main, conf := range a.Stat.Triggers {
		triggers[catalog.Main(main)] = conf
	}
	stat.SetTrained(follow, triggers)

	rule := predictor.NewRule()
	ruleCopies := make([]assoc.Rule, len(a.Rule.Rules))
	for i, r := range a.Rule.Rules {
		r.Body = r.Body.Clone()
		r.Heads = r.Heads.Clone()
		ruleCopies[i] = r
	}
	rule.SetTrained(assoc.NewRuleSet(ruleCopies), a.Rule.Window)

	return &predictor.Meta{Stat: stat, Rule: rule, Policy: predictor.Policy(a.Policy)}
}

// Save writes the artifact to path in the versioned envelope format,
// atomically. The returned Info carries the payload's SHA-256 — the
// artifact's identity.
func (a *Artifact) Save(path string) (Info, error) {
	return a.SaveFS(OS, path)
}

// SaveFS is Save over an explicit filesystem (the fault-injection
// seam).
func (a *Artifact) SaveFS(fsys FS, path string) (Info, error) {
	return SaveEnvelopeFS(fsys, path, ArtifactMagic, ArtifactVersion, a)
}

// Load reads and verifies a model artifact. It accepts any format
// version up to ArtifactVersion; corrupted or truncated files return
// an error, never a panic.
func Load(path string) (*Artifact, Info, error) {
	var a Artifact
	info, err := LoadEnvelope(path, ArtifactMagic, ArtifactVersion, &a)
	if err != nil {
		return nil, Info{}, err
	}
	return &a, info, nil
}

// Decode is Load over in-memory bytes (used by the fuzz harness and
// anything shipping artifacts over a wire instead of a file).
func Decode(data []byte) (*Artifact, Info, error) {
	var a Artifact
	info, err := loadEnvelopeBytes(data, "", ArtifactMagic, ArtifactVersion, &a)
	if err != nil {
		return nil, Info{}, err
	}
	return &a, info, nil
}

// Verify checks a model artifact's framing and integrity without
// decoding it.
func Verify(path string) (Info, error) {
	return VerifyEnvelope(path, ArtifactMagic, ArtifactVersion)
}

func copyIntMap(m map[int]int) map[int]int {
	out := make(map[int]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
