package model

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzDecode feeds arbitrary bytes through the artifact decoder. The
// contract under fuzzing: corrupted, truncated, or adversarial inputs
// return an error — they never panic, never hang, and never allocate
// unboundedly (the header's declared length is capped before any
// allocation trusts it).
func FuzzDecode(f *testing.F) {
	// Seed with a valid artifact and characteristic damage so the
	// fuzzer starts at the interesting boundaries.
	valid, err := encodedGolden()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:headerLen])
	f.Add(valid[:headerLen-1])
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(ArtifactMagic))
	f.Add([]byte{})
	flipped := append([]byte(nil), valid...)
	flipped[headerLen] ^= 0xff
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		a, info, err := Decode(data)
		if err != nil {
			if a != nil {
				t.Fatal("Decode returned both an artifact and an error")
			}
			return
		}
		// A successful decode must round-trip: re-saving the artifact
		// yields a loadable file with the same content hash semantics.
		path := filepath.Join(t.TempDir(), "refuzz.bglm")
		if _, err := a.Save(path); err != nil {
			t.Fatalf("decoded artifact failed to re-save: %v", err)
		}
		if _, err := Verify(path); err != nil {
			t.Fatalf("re-saved artifact failed verification: %v", err)
		}
		_ = info
	})
}

// encodedGolden renders the golden artifact to bytes without touching
// testdata (the fuzz corpus must not depend on -update having run).
func encodedGolden() ([]byte, error) {
	dir, err := os.MkdirTemp("", "bglm-fuzz-seed")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "seed.bglm")
	if _, err := goldenArtifact().Save(path); err != nil {
		return nil, err
	}
	return os.ReadFile(path)
}
