package model

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"bglpred/internal/assoc"
	"bglpred/internal/bglsim"
	_ "bglpred/internal/ecg" // register the "ecg" base for the three-base round-trip
	"bglpred/internal/predictor"
	"bglpred/internal/preprocess"
)

var update = flag.Bool("update", false, "regenerate testdata/golden_v1.bglm")

// goldenArtifact is a fixed, hand-built artifact. Its saved form is
// committed as testdata/golden_v1.bglm; the golden test proves every
// future build keeps decoding version-1 files into exactly this value.
func goldenArtifact() *Artifact {
	return &Artifact{
		Provenance: Provenance{
			TrainedAt: time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC),
			Source:    "golden fixture",
			Records:   1000,
			Unique:    100,
			LogStart:  time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC),
			LogEnd:    time.Date(2026, 1, 31, 0, 0, 0, 0, time.UTC),
			Params: MiningParams{
				MinSupport:    0.01,
				MinConfidence: 0.2,
				MaxBodyLen:    4,
				RuleGenWindow: 15 * time.Minute,
				Miner:         "fpgrowth",
			},
		},
		Policy: int(predictor.PolicyCoverage),
		Stat: StatModel{
			MinLead:        5 * time.Minute,
			MaxWindow:      time.Hour,
			MinProbability: 0.4,
			MinCount:       20,
			FollowMinLead:  5 * time.Minute,
			FollowWindow:   time.Hour,
			Total:          map[int]int{1: 40, 5: 60},
			Followed:       map[int]int{1: 25, 5: 30},
			Triggers:       map[int]float64{1: 0.625, 5: 0.5},
		},
		Rule: RuleModel{
			Window: 15 * time.Minute,
			Rules: []assoc.Rule{
				{
					Body: assoc.NewItemset(3, 7), Heads: assoc.NewItemset(42),
					BodyCount: 19, JointCount: 18, Support: 0.018, Confidence: 0.947368,
				},
				{
					Body: assoc.NewItemset(9), Heads: assoc.NewItemset(42, 55),
					BodyCount: 30, JointCount: 21, Support: 0.021, Confidence: 0.7,
				},
			},
		},
	}
}

// TestGoldenV1Compatibility pins the on-disk format: the committed
// version-1 file must keep loading, byte-verified, into the exact
// expected artifact. Run with -update to regenerate the file after an
// intentional (backward-compatible) change.
func TestGoldenV1Compatibility(t *testing.T) {
	golden := filepath.Join("testdata", "golden_v1.bglm")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		info, err := goldenArtifact().Save(golden)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (sha256 %s)", golden, info.SHA256)
	}

	a, info, err := Load(golden)
	if err != nil {
		t.Fatalf("golden artifact failed to load: %v", err)
	}
	if info.Version != 1 {
		t.Fatalf("golden artifact version = %d, want 1", info.Version)
	}
	if len(info.SHA256) != 64 {
		t.Fatalf("info.SHA256 = %q, want 64 hex chars", info.SHA256)
	}
	if want := goldenArtifact(); !reflect.DeepEqual(a, want) {
		t.Fatalf("golden artifact decoded to\n%+v\nwant\n%+v", a, want)
	}
	if vinfo, err := Verify(golden); err != nil || vinfo.SHA256 != info.SHA256 {
		t.Fatalf("Verify = %+v, %v; want sha %s", vinfo, err, info.SHA256)
	}
}

// TestRoundTripPredictsIdentically trains a real meta-learner, pushes
// it through FromMeta -> Save -> Load -> Meta, and asserts the
// reconstructed predictor issues the same warnings on a held-out tail.
func TestRoundTripPredictsIdentically(t *testing.T) {
	gen, err := bglsim.Generate(bglsim.ANLProfile().Scaled(0.05))
	if err != nil {
		t.Fatal(err)
	}
	cut := len(gen.Events) * 8 / 10
	pre := preprocess.Run(gen.Events[:cut], preprocess.Options{})
	m := predictor.NewMeta()
	if err := m.Train(pre.Events); err != nil {
		t.Fatal(err)
	}

	prov := Provenance{
		TrainedAt: time.Now().UTC(),
		Source:    "anl scale=0.05",
		Records:   cut,
		Unique:    len(pre.Events),
	}
	a, err := FromMeta(m, prov)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.bglm")
	saved, err := a.Save(path)
	if err != nil {
		t.Fatal(err)
	}
	loaded, info, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.SHA256 != saved.SHA256 {
		t.Fatalf("load sha %s != save sha %s", info.SHA256, saved.SHA256)
	}
	if !reflect.DeepEqual(loaded, a) {
		t.Fatal("artifact did not round-trip structurally")
	}

	m2, err := loaded.Meta()
	if err != nil {
		t.Fatal(err)
	}
	tail := preprocess.Run(gen.Events[cut:], preprocess.Options{}).Events
	const window = 30 * time.Minute
	got := m2.Predict(tail, window)
	want := m.Predict(tail, window)
	if len(want) == 0 {
		t.Fatal("no warnings on a failure-rich tail; fixture is degenerate")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reconstructed meta predicts differently:\n got %d warnings %+v\nwant %d warnings %+v",
			len(got), got, len(want), want)
	}

	// The artifact must be an independent copy: mutating it cannot
	// reach back into the trained predictor.
	if len(a.Rule.Rules) > 0 && len(a.Rule.Rules[0].Body) > 0 {
		a.Rule.Rules[0].Body[0] = 9999
		if reflect.DeepEqual(m.Rule.Rules().Rules[0].Body, a.Rule.Rules[0].Body) {
			t.Fatal("artifact shares rule storage with the live predictor")
		}
	}
}

// TestV1UpgradesToV2 is the format-migration path: a version-1 file
// loads through the legacy mirror tables, and re-saving the rebuilt
// predictor produces a version-2 artifact with per-predictor sections
// that reconstructs the exact same base predictors.
func TestV1UpgradesToV2(t *testing.T) {
	golden := filepath.Join("testdata", "golden_v1.bglm")
	v1, info, err := Load(golden)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 || v1.Sections != nil {
		t.Fatalf("golden file: version %d, sections %v; want version 1, nil sections", info.Version, v1.Sections)
	}
	legacy, err := v1.Meta()
	if err != nil {
		t.Fatal(err)
	}
	if got := legacy.BaseNames(); !reflect.DeepEqual(got, []string{predictor.SourceStatistical, predictor.SourceRule}) {
		t.Fatalf("legacy bases = %v, want the classic pair", got)
	}

	upgraded, err := FromMeta(legacy, v1.Provenance)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.bglm")
	if _, err := upgraded.Save(path); err != nil {
		t.Fatal(err)
	}
	v2, info2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if info2.Version != ArtifactVersion {
		t.Fatalf("re-saved artifact version = %d, want %d", info2.Version, ArtifactVersion)
	}
	var names []string
	for _, sec := range v2.Sections {
		names = append(names, sec.Name)
	}
	if !reflect.DeepEqual(names, []string{predictor.SourceStatistical, predictor.SourceRule}) {
		t.Fatalf("v2 sections = %v, want [statistical rule]", names)
	}
	// The v1 mirror tables must survive the upgrade byte for byte:
	// they are what logs and /v1/model read without decoding sections.
	if !reflect.DeepEqual(v2.Stat, v1.Stat) || !reflect.DeepEqual(v2.Rule, v1.Rule) {
		t.Fatal("upgrade changed the v1 mirror tables")
	}

	// Reconstruction through sections must equal reconstruction through
	// the legacy tables, base by base.
	rebuilt, err := v2.Meta()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rebuilt.Stat, legacy.Stat) {
		t.Fatalf("statistical predictor diverged across the upgrade:\n got %+v\nwant %+v", rebuilt.Stat, legacy.Stat)
	}
	if !reflect.DeepEqual(rebuilt.Rule.Rules(), legacy.Rule.Rules()) ||
		rebuilt.Rule.ChosenWindow() != legacy.Rule.ChosenWindow() {
		t.Fatal("rule predictor diverged across the upgrade")
	}
	if rebuilt.Policy != legacy.Policy {
		t.Fatalf("policy diverged: %v != %v", rebuilt.Policy, legacy.Policy)
	}
}

// TestMetaRejectsCorruptSections extends the corruption matrix from
// the envelope down into per-predictor sections: a section naming an
// unregistered predictor or carrying a mangled payload must fail
// reconstruction with a useful error, never panic or silently drop a
// base.
func TestMetaRejectsCorruptSections(t *testing.T) {
	legacy, err := goldenArtifact().Meta()
	if err != nil {
		t.Fatal(err)
	}
	fresh := func() *Artifact {
		a, err := FromMeta(legacy, Provenance{Source: "section corruption"})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}

	check := func(name string, mutate func(*Artifact), errSubstr string) {
		t.Helper()
		a := fresh()
		mutate(a)
		// The envelope cannot catch this: a freshly saved artifact with a
		// bad section is internally consistent bytes. Meta must.
		path := filepath.Join(t.TempDir(), "m.bglm")
		if _, err := a.Save(path); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		loaded, _, err := Load(path)
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		if _, err := loaded.Meta(); err == nil {
			t.Fatalf("%s: Meta() accepted a corrupt section", name)
		} else if errSubstr != "" && !strings.Contains(err.Error(), errSubstr) {
			t.Fatalf("%s: error %q does not mention %q", name, err, errSubstr)
		}
	}
	check("unknown section name",
		func(a *Artifact) { a.Sections[0].Name = "nosuch" }, `"nosuch"`)
	check("unknown name lists registry",
		func(a *Artifact) { a.Sections[0].Name = "nosuch" }, predictor.SourceRule)
	check("mangled statistical payload",
		func(a *Artifact) { a.Sections[0].Data = []byte("not gob") }, "statistical")
	check("mangled rule payload",
		func(a *Artifact) { a.Sections[1].Data = []byte{0xff, 0x00} }, "rule")
	check("empty section payload",
		func(a *Artifact) { a.Sections[1].Data = nil }, "")
}

// TestFromMetaUntrained rejects half-built predictors.
func TestFromMetaUntrained(t *testing.T) {
	if _, err := FromMeta(nil, Provenance{}); err == nil {
		t.Fatal("nil meta accepted")
	}
	if _, err := FromMeta(predictor.NewMeta(), Provenance{}); err == nil {
		t.Fatal("untrained meta accepted")
	}
}

// TestThreeBaseRoundTrip saves and reloads a meta-learner arbitrating
// three registered bases — the classic pair plus the event-correlation
// graph. The reconstructed ensemble must carry all three sections and
// predict identically; the v1 mirror tables must still be filled for
// the classic pair.
func TestThreeBaseRoundTrip(t *testing.T) {
	gen, err := bglsim.Generate(bglsim.ANLProfile().Scaled(0.05))
	if err != nil {
		t.Fatal(err)
	}
	cut := len(gen.Events) * 8 / 10
	pre := preprocess.Run(gen.Events[:cut], preprocess.Options{})
	bases := make([]predictor.Base, 0, 3)
	for _, name := range []string{predictor.SourceStatistical, predictor.SourceRule, "ecg"} {
		b, err := predictor.NewBase(name)
		if err != nil {
			t.Fatal(err)
		}
		bases = append(bases, b)
	}
	m := predictor.NewMetaBases(bases...)
	if err := m.Train(pre.Events); err != nil {
		t.Fatal(err)
	}

	a, err := FromMeta(m, Provenance{Source: "three bases"})
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, sec := range a.Sections {
		names = append(names, sec.Name)
	}
	if !reflect.DeepEqual(names, []string{predictor.SourceStatistical, predictor.SourceRule, "ecg"}) {
		t.Fatalf("sections = %v, want all three bases in arbitration order", names)
	}
	if a.Stat.Total == nil || a.Rule.Rules == nil {
		t.Fatal("classic-pair mirror tables not filled alongside sections")
	}

	path := filepath.Join(t.TempDir(), "m.bglm")
	if _, err := a.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, info, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != ArtifactVersion {
		t.Fatalf("version = %d, want %d", info.Version, ArtifactVersion)
	}
	m2, err := loaded.Meta()
	if err != nil {
		t.Fatal(err)
	}
	if got := m2.BaseNames(); !reflect.DeepEqual(got, []string{predictor.SourceStatistical, predictor.SourceRule, "ecg"}) {
		t.Fatalf("reconstructed bases = %v", got)
	}
	tail := preprocess.Run(gen.Events[cut:], preprocess.Options{}).Events
	const window = 30 * time.Minute
	got := m2.Predict(tail, window)
	want := m.Predict(tail, window)
	if len(want) == 0 {
		t.Fatal("no warnings on a failure-rich tail; fixture is degenerate")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reconstructed three-base meta predicts differently:\n got %d warnings\nwant %d warnings", len(got), len(want))
	}
}

// TestLoadRejectsCorruption exercises every framing failure mode:
// wrong magic, truncations at each boundary, a flipped payload byte,
// a future version, and declared-length mismatches.
func TestLoadRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.bglm")
	if _, err := goldenArtifact().Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, mutate func([]byte) []byte) {
		t.Helper()
		bad := mutate(append([]byte(nil), data...))
		if _, _, err := Decode(bad); err == nil {
			t.Fatalf("%s: corrupted artifact decoded without error", name)
		}
	}
	check("empty", func(b []byte) []byte { return nil })
	check("truncated header", func(b []byte) []byte { return b[:10] })
	check("truncated payload", func(b []byte) []byte { return b[:len(b)-1] })
	check("trailing garbage", func(b []byte) []byte { return append(b, 0xff) })
	check("bad magic", func(b []byte) []byte { b[0] = 'X'; return b })
	check("future version", func(b []byte) []byte { b[7] = 99; return b })
	check("zero version", func(b []byte) []byte { b[4], b[5], b[6], b[7] = 0, 0, 0, 0; return b })
	check("flipped payload byte", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b })
	check("flipped hash byte", func(b []byte) []byte { b[20] ^= 0x01; return b })
	check("huge declared length", func(b []byte) []byte {
		for i := 8; i < 16; i++ {
			b[i] = 0xff
		}
		return b
	})

	// Verify must reject the same corruption without decoding.
	if err := os.WriteFile(path, append(data[:40:40], data[41:]...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(path); err == nil {
		t.Fatal("Verify accepted a corrupted file")
	}
}

// TestSaveAtomicOverwrite proves an overwrite leaves no temp debris
// and the new content lands fully.
func TestSaveAtomicOverwrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.bglm")
	first := goldenArtifact()
	if _, err := first.Save(path); err != nil {
		t.Fatal(err)
	}
	second := goldenArtifact()
	second.Provenance.Records = 2000
	if _, err := second.Save(path); err != nil {
		t.Fatal(err)
	}
	got, _, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Provenance.Records != 2000 {
		t.Fatalf("overwrite did not land: Records = %d", got.Provenance.Records)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries, want just the artifact", len(entries))
	}
}
