package assoc

// Interned mining support: Apriori's candidate counting used to key
// its lookup maps on Itemset.Key() strings, rebuilding a string per
// enumerated subset in the counting hot loop. Mining instead interns
// the frequent-item vocabulary into dense byte codes and packs whole
// (coded) itemsets into a single uint64, so every hot-loop lookup is
// an integer map access with zero allocation (LogMaster applies the
// same trick — event types interned to integer IDs — to make
// correlation mining over multi-million-record cluster logs tractable
// online).
//
// The packed representation holds itemsets of up to 8 items over a
// vocabulary of up to 255 frequent items — far beyond the paper's
// regime (101 subcategories, bodies of at most 4 items). Mining falls
// back to the string-keyed path when a run exceeds either bound.

const (
	// maxInternItems is the largest frequent-item vocabulary the packed
	// representation supports (byte codes 1..255; 0 marks an empty slot).
	maxInternItems = 255
	// maxInternLen is the largest itemset a setKey can hold.
	maxInternLen = 8
)

// setKey is a packed itemset: the i-th chosen code plus one, in the
// i-th byte (codes are packed in ascending order, so equal itemsets
// produce equal keys).
type setKey uint64

// vocab is a dense byte-code interning of the frequent items of one
// mining run. Codes are assigned in ascending item order, so sorted
// itemsets map to sorted code sequences and back.
type vocab struct {
	items []Item       // code -> item, ascending
	codes map[Item]int // item -> code
}

// newVocab interns the given ascending item list, or returns ok=false
// when it exceeds maxInternItems.
func newVocab(items []Item) (*vocab, bool) {
	if len(items) > maxInternItems {
		return nil, false
	}
	v := &vocab{items: items, codes: make(map[Item]int, len(items))}
	for c, it := range items {
		v.codes[it] = c
	}
	return v, true
}

// encode maps an itemset into code space. Inputs contain only interned
// items (mining pre-filters transactions to frequent items).
func (v *vocab) encode(s Itemset) Itemset {
	out := make(Itemset, len(s))
	for i, it := range s {
		out[i] = v.codes[it]
	}
	return out
}

// decode maps a code-space itemset back to items.
func (v *vocab) decode(s Itemset) Itemset {
	out := make(Itemset, len(s))
	for i, c := range s {
		out[i] = v.items[c]
	}
	return out
}

// packKey packs a sorted code-space itemset of at most maxInternLen
// items into its setKey.
func packKey(s Itemset) setKey {
	var k setKey
	for i, c := range s {
		k |= setKey(c+1) << (8 * i)
	}
	return k
}
