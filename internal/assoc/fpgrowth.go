package assoc

import "sort"

// FPGrowth is the pattern-growth frequent-itemset miner of Han, Pei,
// Yin & Mao (paper reference [15]). It avoids candidate generation by
// projecting the transaction database into an FP-tree and mining
// conditional trees recursively.
type FPGrowth struct{}

type fpNode struct {
	item     Item
	count    int
	parent   *fpNode
	children map[Item]*fpNode
	next     *fpNode // header-table chain of nodes with the same item
}

type fpTree struct {
	root    *fpNode
	headers map[Item]*fpNode
	counts  map[Item]int
}

func newFPTree() *fpTree {
	return &fpTree{
		root:    &fpNode{children: make(map[Item]*fpNode)},
		headers: make(map[Item]*fpNode),
		counts:  make(map[Item]int),
	}
}

// insert adds a (frequency-ordered) item path with the given count.
func (t *fpTree) insert(path []Item, count int) {
	node := t.root
	for _, it := range path {
		child, ok := node.children[it]
		if !ok {
			child = &fpNode{item: it, parent: node, children: make(map[Item]*fpNode)}
			child.next = t.headers[it]
			t.headers[it] = child
			node.children[it] = child
		}
		child.count += count
		t.counts[it] += count
		node = child
	}
}

// Mine implements Miner.
func (f *FPGrowth) Mine(tx []Transaction, minCount, maxLen int) []FrequentItemset {
	if minCount < 1 {
		minCount = 1
	}
	// Global item counts determine the canonical insertion order.
	counts := make(map[Item]int)
	for _, t := range tx {
		for _, it := range t {
			counts[it]++
		}
	}
	order := func(a, b Item) bool {
		if counts[a] != counts[b] {
			return counts[a] > counts[b]
		}
		return a < b
	}
	tree := newFPTree()
	var path []Item
	for _, t := range tx {
		path = path[:0]
		for _, it := range t {
			if counts[it] >= minCount {
				path = append(path, it)
			}
		}
		sort.Slice(path, func(i, j int) bool { return order(path[i], path[j]) })
		if len(path) > 0 {
			tree.insert(path, 1)
		}
	}
	var out []FrequentItemset
	mineTree(tree, nil, minCount, maxLen, &out)
	return out
}

// mineTree emits all frequent itemsets extending suffix.
func mineTree(t *fpTree, suffix Itemset, minCount, maxLen int, out *[]FrequentItemset) {
	if maxLen > 0 && len(suffix) >= maxLen {
		return
	}
	// Iterate items in deterministic order for reproducible output.
	items := make([]Item, 0, len(t.headers))
	for it := range t.headers {
		items = append(items, it)
	}
	sort.Ints(items)
	for _, it := range items {
		support := t.counts[it]
		if support < minCount {
			continue
		}
		pattern := NewItemset(append(suffix.Clone(), it)...)
		*out = append(*out, FrequentItemset{Items: pattern, Count: support})

		if maxLen > 0 && len(pattern) >= maxLen {
			continue
		}
		// Build the conditional tree for `it`: every prefix path leading
		// to an `it` node, weighted by that node's count.
		cond := newFPTree()
		var rev []Item
		for node := t.headers[it]; node != nil; node = node.next {
			rev = rev[:0]
			for p := node.parent; p != nil && p.parent != nil; p = p.parent {
				rev = append(rev, p.item)
			}
			if len(rev) == 0 {
				continue
			}
			// rev is leaf-to-root; reverse into root-to-leaf order.
			fwd := make([]Item, len(rev))
			for i, v := range rev {
				fwd[len(rev)-1-i] = v
			}
			cond.insert(fwd, node.count)
		}
		if len(cond.headers) > 0 {
			mineTree(cond, pattern, minCount, maxLen, out)
		}
	}
}
