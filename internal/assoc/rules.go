package assoc

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Rule is a combined association rule Body -> Heads (paper §3.2.2
// step 3): observing every body item predicts that at least one of the
// head (fatal) items is imminent.
type Rule struct {
	Body  Itemset // non-fatal precursor items
	Heads Itemset // fatal items the body predicts

	// BodyCount is the number of transactions containing Body.
	BodyCount int
	// JointCount is the number of transactions containing Body plus at
	// least one head.
	JointCount int
	// Support is JointCount over the transaction count.
	Support float64
	// Confidence is JointCount / BodyCount: the probability that some
	// head failure accompanies the body.
	Confidence float64
}

// Matches reports whether every body item is present in observed
// (a sorted itemset).
func (r *Rule) Matches(observed Itemset) bool {
	return observed.ContainsAll(r.Body)
}

// String renders the rule in the paper's Figure 3 style when names are
// unavailable: "{3 7} ==> {15}: 0.71".
func (r *Rule) String() string {
	return fmt.Sprintf("%v ==> %v: %.6g", r.Body, r.Heads, r.Confidence)
}

// Format renders the rule with item names resolved through name, in
// the exact layout of paper Figure 3
// ("a b ==> f: 0.947368").
func (r *Rule) Format(name func(Item) string) string {
	var b strings.Builder
	for i, it := range r.Body {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(name(it))
	}
	b.WriteString(" ==> ")
	for i, it := range r.Heads {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(name(it))
	}
	fmt.Fprintf(&b, ": %.6g", r.Confidence)
	return b.String()
}

// Config parameterizes rule mining. Zero values select the paper's
// settings.
type Config struct {
	// MinSupport is the fractional minimum support; the paper uses 0.04.
	MinSupport float64
	// MinConfidence is the minimum rule confidence; the paper uses 0.2.
	MinConfidence float64
	// MaxBodyLen bounds the precursor-set size; default 4 (the longest
	// rule shown in paper Figure 3 has a four-item body).
	MaxBodyLen int
	// MaxBodyItemShare excludes ubiquitous items from rule bodies: an
	// item present in more than this fraction of transactions carries
	// no predictive information (periodic heartbeats would otherwise
	// decorate every rule). Default 0.15.
	MaxBodyItemShare float64
	// MinCountFloor is the absolute minimum number of supporting
	// transactions regardless of MinSupport — a rule witnessed once or
	// twice is never meaningful, however small the log. Default 5.
	MinCountFloor int
	// MinZ requires each rule's confidence to exceed the head's base
	// rate by MinZ binomial standard errors — the statistical
	// significance companion to MinLift, which alone cannot protect
	// rare heads from small-sample coincidences. Negative disables;
	// default 2.5.
	MinZ float64
	// MinLift requires each rule's confidence to exceed MinLift times
	// the head's base rate across all transactions. Without it, any
	// moderately common non-fatal item forms a rule onto the most
	// common failure type with confidence equal to that failure's
	// share — a rule with no information that floods prediction with
	// false alarms. Default 2.2.
	MinLift float64
	// Miner selects the frequent-itemset algorithm; default FPGrowth.
	Miner Miner
}

func (c Config) withDefaults() Config {
	if c.MinSupport == 0 {
		c.MinSupport = 0.04
	}
	if c.MinConfidence == 0 {
		c.MinConfidence = 0.2
	}
	if c.MaxBodyLen == 0 {
		c.MaxBodyLen = 4
	}
	if c.MaxBodyItemShare == 0 {
		c.MaxBodyItemShare = 0.15
	}
	if c.MinCountFloor == 0 {
		c.MinCountFloor = 5
	}
	if c.MinLift == 0 {
		c.MinLift = 2.2
	}
	if c.MinZ == 0 {
		c.MinZ = 2.5
	}
	if c.Miner == nil {
		c.Miner = &FPGrowth{}
	}
	return c
}

// MineRules extracts combined association rules from transactions
// (paper §3.2.2 steps 2-4). isHead classifies items as rule heads
// (fatal subcategories); all other items are body material. The
// returned rules are sorted by descending confidence.
func MineRules(tx []Transaction, isHead func(Item) bool, cfg Config) []Rule {
	cfg = cfg.withDefaults()
	if len(tx) == 0 {
		return nil
	}
	minCount := SupportCount(cfg.MinSupport, len(tx))
	if minCount < cfg.MinCountFloor {
		minCount = cfg.MinCountFloor
	}
	// Bodies have up to MaxBodyLen items plus one head.
	frequent := cfg.Miner.Mine(tx, minCount, cfg.MaxBodyLen+1)

	counts := make(map[string]int, len(frequent))
	for _, fi := range frequent {
		counts[fi.Items.Key()] = fi.Count
	}

	// Ubiquity cap: items in more than MaxBodyItemShare of the
	// transactions are ineligible as body material. Head base rates
	// feed the lift filter.
	maxBodyCount := int(cfg.MaxBodyItemShare * float64(len(tx)))
	ubiquitous := make(map[Item]bool)
	headRate := make(map[Item]float64)
	for _, fi := range frequent {
		if len(fi.Items) != 1 {
			continue
		}
		it := fi.Items[0]
		if isHead(it) {
			headRate[it] = float64(fi.Count) / float64(len(tx))
		} else if fi.Count > maxBodyCount {
			ubiquitous[it] = true
		}
	}

	// Step 2: raw rules body -> single head, then step 3: merge heads
	// over identical bodies.
	heads := make(map[string]map[Item]bool) // body key -> head set
	bodies := make(map[string]Itemset)
	for _, fi := range frequent {
		var headItem Item
		nHeads := 0
		skip := false
		body := make(Itemset, 0, len(fi.Items))
		for _, it := range fi.Items {
			switch {
			case isHead(it):
				headItem = it
				nHeads++
			case ubiquitous[it]:
				skip = true
			default:
				body = append(body, it)
			}
		}
		// A rule needs exactly one head (step 2 mines body -> f), a
		// non-empty body, and no ubiquitous body items.
		if skip || nHeads != 1 || len(body) == 0 {
			continue
		}
		bodyCount, ok := counts[body.Key()]
		if !ok || bodyCount == 0 {
			// Anti-monotonicity guarantees the body is frequent whenever
			// body+head is; missing means maxLen clipped it, so recount.
			bodyCount = countContaining(tx, body)
		}
		conf := float64(fi.Count) / float64(bodyCount)
		if conf < cfg.MinConfidence {
			continue
		}
		if conf < cfg.MinLift*headRate[headItem] {
			continue // no lift over the head's base rate
		}
		if cfg.MinZ > 0 {
			base := headRate[headItem]
			se := math.Sqrt(base * (1 - base) / float64(bodyCount))
			if conf < base+cfg.MinZ*se {
				continue // not significantly above the base rate
			}
		}
		key := body.Key()
		if heads[key] == nil {
			heads[key] = make(map[Item]bool)
			bodies[key] = body
		}
		heads[key][headItem] = true
	}

	// Step 3 continued: compute exact combined counts with one pass per
	// rule body over the transactions.
	rules := make([]Rule, 0, len(heads))
	for key, headSet := range heads {
		body := bodies[key]
		hs := make(Itemset, 0, len(headSet))
		for h := range headSet {
			hs = append(hs, h)
		}
		sort.Ints(hs)
		bodyCount, jointCount := 0, 0
		for _, t := range tx {
			if !t.ContainsAll(body) {
				continue
			}
			bodyCount++
			for _, h := range hs {
				if t.Contains(h) {
					jointCount++
					break
				}
			}
		}
		if bodyCount == 0 {
			continue
		}
		conf := float64(jointCount) / float64(bodyCount)
		if conf < cfg.MinConfidence {
			continue
		}
		rules = append(rules, Rule{
			Body:       body,
			Heads:      hs,
			BodyCount:  bodyCount,
			JointCount: jointCount,
			Support:    float64(jointCount) / float64(len(tx)),
			Confidence: conf,
		})
	}

	// Step 4: sort by descending confidence; deterministic tie-breaks.
	sort.Slice(rules, func(i, j int) bool {
		a, b := &rules[i], &rules[j]
		if a.Confidence != b.Confidence {
			return a.Confidence > b.Confidence
		}
		if a.Support != b.Support {
			return a.Support > b.Support
		}
		if len(a.Body) != len(b.Body) {
			return len(a.Body) < len(b.Body)
		}
		return a.Body.Key() < b.Body.Key()
	})
	return rules
}

func countContaining(tx []Transaction, set Itemset) int {
	n := 0
	for _, t := range tx {
		if t.ContainsAll(set) {
			n++
		}
	}
	return n
}

// RuleSet is an ordered rule collection supporting best-match lookup;
// rules must be sorted by descending confidence (as MineRules returns).
type RuleSet struct {
	Rules []Rule
}

// NewRuleSet wraps mined rules.
func NewRuleSet(rules []Rule) *RuleSet { return &RuleSet{Rules: rules} }

// BestMatch returns the highest-confidence rule whose body is contained
// in observed, per paper §3.2.2 step 6 ("if multiple rules are
// observed, select the rule with the highest confidence").
func (rs *RuleSet) BestMatch(observed Itemset) (*Rule, bool) {
	for i := range rs.Rules {
		if rs.Rules[i].Matches(observed) {
			return &rs.Rules[i], true
		}
	}
	return nil, false
}

// Len returns the number of rules.
func (rs *RuleSet) Len() int { return len(rs.Rules) }

// Prune removes dominated rules: a rule is dominated when another
// rule's body is a subset of its body with confidence at least as
// high — the dominating rule fires whenever (and no later than) the
// dominated one would, so BestMatch can never prefer the latter.
// Pruning changes no prediction; it shrinks the set mining inflation
// produces (every frequent superset of a good body yields a shadow
// rule). Returns the number of rules removed.
func (rs *RuleSet) Prune() int {
	keep := rs.Rules[:0]
	removed := 0
	for i := range rs.Rules {
		r := &rs.Rules[i]
		dominated := false
		for j := range rs.Rules {
			if i == j {
				continue
			}
			q := &rs.Rules[j]
			if q.Confidence < r.Confidence {
				continue
			}
			if len(q.Body) < len(r.Body) && r.Body.ContainsAll(q.Body) {
				dominated = true
				break
			}
			// Equal bodies cannot occur (MineRules merges them), so a
			// strict-subset check suffices.
		}
		if dominated {
			removed++
			continue
		}
		keep = append(keep, *r)
	}
	rs.Rules = keep
	return removed
}
