package assoc_test

import (
	"fmt"

	"bglpred/internal/assoc"
)

// Mining a toy log: non-fatal item 1 precedes fatal item 100 in three
// of its four windows.
func ExampleMineRules() {
	tx := []assoc.Transaction{
		assoc.NewItemset(1, 100),
		assoc.NewItemset(1, 100),
		assoc.NewItemset(1, 100),
		assoc.NewItemset(1),
		assoc.NewItemset(2),
	}
	isFatal := func(it assoc.Item) bool { return it >= 100 }
	rules := assoc.MineRules(tx, isFatal, assoc.Config{
		MinSupport: 0.1, MinConfidence: 0.2,
		// Tiny toy dataset: disable the production-scale hygiene
		// filters (ubiquity cap, lift, significance, count floor).
		MaxBodyItemShare: 1, MinLift: 1e-9, MinCountFloor: 1, MinZ: -1,
	})
	for _, r := range rules {
		fmt.Printf("%v -> %v conf=%.2f support=%.2f\n", r.Body, r.Heads, r.Confidence, r.Support)
	}
	// Output: {1} -> {100} conf=0.75 support=0.60
}

// Both cited miners return identical frequent itemsets.
func ExampleFPGrowth_Mine() {
	tx := []assoc.Transaction{
		assoc.NewItemset(1, 2, 3),
		assoc.NewItemset(1, 2),
		assoc.NewItemset(1, 3),
	}
	fp := (&assoc.FPGrowth{}).Mine(tx, 2, 0)
	ap := (&assoc.Apriori{}).Mine(tx, 2, 0)
	assoc.SortFrequent(fp)
	assoc.SortFrequent(ap)
	fmt.Println("agree:", len(fp) == len(ap))
	for _, fi := range fp {
		fmt.Printf("%v x%d\n", fi.Items, fi.Count)
	}
	// Output:
	// agree: true
	// {1} x3
	// {2} x2
	// {3} x2
	// {1 2} x2
	// {1 3} x2
}
