package assoc

import (
	"math/rand/v2"
	"testing"
)

func TestPruneRemovesDominatedSupersets(t *testing.T) {
	rs := NewRuleSet([]Rule{
		{Body: NewItemset(1), Heads: NewItemset(100), Confidence: 0.9},
		{Body: NewItemset(1, 2), Heads: NewItemset(100), Confidence: 0.9},  // dominated (equal conf)
		{Body: NewItemset(1, 3), Heads: NewItemset(100), Confidence: 0.95}, // NOT dominated (higher conf)
		{Body: NewItemset(4), Heads: NewItemset(101), Confidence: 0.5},
		{Body: NewItemset(4, 5), Heads: NewItemset(101), Confidence: 0.4}, // dominated
	})
	removed := rs.Prune()
	if removed != 2 {
		t.Fatalf("removed %d rules, want 2", removed)
	}
	for _, r := range rs.Rules {
		if r.Body.Equal(NewItemset(1, 2)) || r.Body.Equal(NewItemset(4, 5)) {
			t.Fatalf("dominated rule survived: %v", r)
		}
	}
	if rs.Len() != 3 {
		t.Fatalf("Len = %d, want 3", rs.Len())
	}
}

func TestPruneKeepsIncomparableRules(t *testing.T) {
	rs := NewRuleSet([]Rule{
		{Body: NewItemset(1, 2), Heads: NewItemset(100), Confidence: 0.8},
		{Body: NewItemset(2, 3), Heads: NewItemset(100), Confidence: 0.8},
	})
	if rs.Prune() != 0 {
		t.Fatal("incomparable bodies pruned")
	}
}

func TestPrunePreservesBestMatchBehaviour(t *testing.T) {
	// Pruning must never change BestMatch's answer on any observation.
	rng := rand.New(rand.NewPCG(111, 112))
	for trial := 0; trial < 40; trial++ {
		var tx []Transaction
		for i := 0; i < 300; i++ {
			items := randomItemset(rng, 5, 12)
			if rng.Float64() < 0.5 {
				items = NewItemset(append(items, 100+rng.IntN(3))...)
			}
			tx = append(tx, items)
		}
		rules := MineRules(tx, testIsHead, permissive(0.02, 0.15))
		full := NewRuleSet(append([]Rule(nil), rules...))
		pruned := NewRuleSet(append([]Rule(nil), rules...))
		pruned.Prune()

		for probe := 0; probe < 60; probe++ {
			obs := randomItemset(rng, 6, 12)
			a, okA := full.BestMatch(obs)
			b, okB := pruned.BestMatch(obs)
			if okA != okB {
				t.Fatalf("trial %d: match disagreement on %v", trial, obs)
			}
			if okA && a.Confidence != b.Confidence {
				t.Fatalf("trial %d: confidence disagreement on %v: %v vs %v",
					trial, obs, a, b)
			}
		}
	}
}

func TestPruneEmpty(t *testing.T) {
	rs := NewRuleSet(nil)
	if rs.Prune() != 0 || rs.Len() != 0 {
		t.Fatal("empty prune misbehaved")
	}
}
