package assoc

import (
	"math/rand/v2"
	"testing"
)

// internTx builds a deterministic transaction set over nItems items
// with transactions of up to maxTxLen items.
func internTx(nTx, nItems, maxTxLen int, seed uint64) []Transaction {
	rng := rand.New(rand.NewPCG(seed, 0))
	tx := make([]Transaction, nTx)
	for i := range tx {
		n := 2 + rng.IntN(maxTxLen-1)
		items := make([]Item, n)
		for j := range items {
			items[j] = rng.IntN(nItems)
		}
		tx[i] = NewItemset(items...)
	}
	return tx
}

// TestInternedMiningMatchesStringKeyed pins the packed path to the
// string-keyed fallback: same transactions, same results. maxLen = 0
// (unbounded) forces the fallback, maxLen = 4 takes the packed path.
func TestInternedMiningMatchesStringKeyed(t *testing.T) {
	tx := internTx(300, 24, 7, 42)
	a := &Apriori{Workers: 1}
	packed := a.Mine(tx, 8, 4)
	fallback := a.Mine(tx, 8, 0)
	// The unbounded run may find longer itemsets; compare up to len 4.
	var clipped []FrequentItemset
	for _, fi := range fallback {
		if len(fi.Items) <= 4 {
			clipped = append(clipped, fi)
		}
	}
	SortFrequent(packed)
	SortFrequent(clipped)
	if len(packed) != len(clipped) {
		t.Fatalf("packed path found %d itemsets, fallback %d", len(packed), len(clipped))
	}
	for i := range packed {
		if !packed[i].Items.Equal(clipped[i].Items) || packed[i].Count != clipped[i].Count {
			t.Fatalf("itemset %d: packed %v(%d) != fallback %v(%d)", i,
				packed[i].Items, packed[i].Count, clipped[i].Items, clipped[i].Count)
		}
	}
}

// TestWideVocabularyFallsBack mines over more distinct items than the
// packed representation holds; the fallback must produce correct
// counts (cross-checked against FP-growth).
func TestWideVocabularyFallsBack(t *testing.T) {
	tx := internTx(400, maxInternItems+40, 6, 7)
	ap := (&Apriori{Workers: 1}).Mine(tx, 2, 3)
	fp := (&FPGrowth{}).Mine(tx, 2, 3)
	SortFrequent(ap)
	SortFrequent(fp)
	if len(ap) != len(fp) {
		t.Fatalf("apriori found %d itemsets, fpgrowth %d", len(ap), len(fp))
	}
	for i := range ap {
		if !ap[i].Items.Equal(fp[i].Items) || ap[i].Count != fp[i].Count {
			t.Fatalf("itemset %d differs: %v(%d) vs %v(%d)", i,
				ap[i].Items, ap[i].Count, fp[i].Items, fp[i].Count)
		}
	}
}

func TestPackKeyRoundTrip(t *testing.T) {
	v, ok := newVocab([]Item{3, 17, 101, 254})
	if !ok {
		t.Fatal("vocab rejected a 4-item vocabulary")
	}
	s := NewItemset(17, 101, 3)
	coded := v.encode(s)
	if got := v.decode(coded); !got.Equal(s) {
		t.Fatalf("decode(encode(%v)) = %v", s, got)
	}
	if packKey(v.encode(NewItemset(3, 17))) == packKey(v.encode(NewItemset(3, 101))) {
		t.Fatal("distinct itemsets packed to the same key")
	}
	if _, ok := newVocab(make([]Item, maxInternItems+1)); ok {
		t.Fatal("vocab accepted more items than the packed representation holds")
	}
}

// TestCountChunkPackedZeroAllocs is the hot-loop allocation
// regression test: counting candidates over the packed subset
// enumeration must not allocate at all (the ISSUE 3 acceptance
// criterion; the old path built one Itemset.Key() string per subset).
func TestCountChunkPackedZeroAllocs(t *testing.T) {
	tx := internTx(64, 20, 8, 11)
	// Mine level 1 by hand to produce realistic level-2 candidates.
	a := &Apriori{Workers: 1}
	frequent := a.Mine(tx, 4, 2)
	var level2 []Itemset
	for _, fi := range frequent {
		if len(fi.Items) == 2 {
			level2 = append(level2, fi.Items)
		}
	}
	if len(level2) < 4 {
		t.Fatalf("only %d level-2 itemsets; test needs a denser set", len(level2))
	}
	index := make(map[setKey]int, len(level2))
	for i, c := range level2 {
		index[packKey(c)] = i
	}
	counts := make([]int, len(level2))
	allocs := testing.AllocsPerRun(50, func() {
		countChunkPacked(tx, level2, index, 2, counts)
	})
	if allocs != 0 {
		t.Fatalf("countChunkPacked allocated %.1f times per run; want 0", allocs)
	}
}

// BenchmarkCountChunk compares the packed counting hot loop against
// the string-keyed fallback on identical inputs.
func BenchmarkCountChunk(b *testing.B) {
	tx := internTx(2000, 40, 8, 3)
	a := &Apriori{Workers: 1}
	frequent := a.Mine(tx, 20, 3)
	var level []Itemset
	for _, fi := range frequent {
		if len(fi.Items) == 2 {
			level = append(level, fi.Items)
		}
	}
	if len(level) == 0 {
		b.Fatal("no level-2 itemsets")
	}
	b.Run("packed", func(b *testing.B) {
		index := make(map[setKey]int, len(level))
		for i, c := range level {
			index[packKey(c)] = i
		}
		counts := make([]int, len(level))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			countChunkPacked(tx, level, index, 2, counts)
		}
	})
	b.Run("string", func(b *testing.B) {
		index := make(map[string]int, len(level))
		for i, c := range level {
			index[c.Key()] = i
		}
		counts := make([]int, len(level))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			countChunk(tx, level, index, 2, counts)
		}
	})
}
