package assoc

import "testing"

func TestMineRulesLiftFilterRejectsBaseRateRules(t *testing.T) {
	// Head 100 appears in half of all transactions. Item 1 co-occurs
	// with it at exactly the base rate (no information): conf == head
	// share == 0.5, lift 1.0. Item 2 concentrates on 100: conf 1.0,
	// lift 2.0.
	var tx []Transaction
	for i := 0; i < 40; i++ {
		switch i % 4 {
		case 0:
			tx = append(tx, NewItemset(1, 100))
		case 1:
			tx = append(tx, NewItemset(1, 101))
		case 2:
			tx = append(tx, NewItemset(2, 100))
		default:
			tx = append(tx, NewItemset(3, 101))
		}
	}
	cfg := Config{MinSupport: 0.01, MinConfidence: 0.2, MaxBodyItemShare: 1, MinLift: 1.5}
	rules := MineRules(tx, testIsHead, cfg)
	sawLifted := false
	for _, r := range rules {
		if r.Body.Contains(1) && r.Heads.Contains(100) && len(r.Heads) == 1 {
			t.Errorf("base-rate rule survived the lift filter: %v", r)
		}
		if r.Body.Equal(NewItemset(2)) {
			sawLifted = true
		}
	}
	if !sawLifted {
		t.Error("genuinely predictive rule {2} -> {100} was filtered")
	}
}

func TestMineRulesUbiquityFilter(t *testing.T) {
	// Item 9 is in every transaction (a heartbeat); item 1 is a real
	// precursor. No surviving rule may mention item 9.
	var tx []Transaction
	for i := 0; i < 30; i++ {
		if i%3 == 0 {
			tx = append(tx, NewItemset(9, 1, 100))
		} else {
			tx = append(tx, NewItemset(9, 2+i%5, 101+i%2))
		}
	}
	cfg := Config{MinSupport: 0.01, MinConfidence: 0.2, MaxBodyItemShare: 0.5, MinLift: 1e-9}
	rules := MineRules(tx, testIsHead, cfg)
	if len(rules) == 0 {
		t.Fatal("no rules mined at all")
	}
	for _, r := range rules {
		if r.Body.Contains(9) {
			t.Errorf("ubiquitous item in rule body: %v", r)
		}
	}
	// The clean rule {1} -> {100} must survive.
	found := false
	for _, r := range rules {
		if r.Body.Equal(NewItemset(1)) && r.Heads.Contains(100) {
			found = true
		}
	}
	if !found {
		t.Error("rule {1} -> {100} missing")
	}
}

func TestMineRulesUbiquityDoesNotApplyToHeads(t *testing.T) {
	// A head present in most transactions is still a valid head (the
	// ubiquity cap governs bodies only); with a permissive lift the
	// rule must survive.
	var tx []Transaction
	for i := 0; i < 20; i++ {
		tx = append(tx, NewItemset(1, 100))
	}
	cfg := Config{MinSupport: 0.01, MinConfidence: 0.2, MaxBodyItemShare: 1, MinLift: 1e-9}
	rules := MineRules(tx, testIsHead, cfg)
	if len(rules) != 1 || !rules[0].Heads.Contains(100) {
		t.Fatalf("rules = %v, want {1} -> {100}", rules)
	}
}

func TestMineRulesDefaultsApplyFilters(t *testing.T) {
	// With default config (lift 2.2), a base-rate body must not form a
	// rule even though its confidence clears 0.2.
	var tx []Transaction
	for i := 0; i < 100; i++ {
		if i%2 == 0 {
			tx = append(tx, NewItemset(1, 100))
		} else {
			tx = append(tx, NewItemset(1, 101, 102, 103))
		}
	}
	// conf({1}->100) = 0.5 = base rate of 100 -> lift 1 -> rejected.
	rules := MineRules(tx, testIsHead, Config{})
	for _, r := range rules {
		if len(r.Heads) == 1 && r.Heads.Contains(100) {
			t.Errorf("lift-1 rule survived default config: %v", r)
		}
	}
}
