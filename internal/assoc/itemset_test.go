package assoc

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewItemsetSortsAndDedupes(t *testing.T) {
	s := NewItemset(5, 1, 3, 1, 5, 5)
	want := Itemset{1, 3, 5}
	if !s.Equal(want) {
		t.Fatalf("NewItemset = %v, want %v", s, want)
	}
	if len(NewItemset()) != 0 {
		t.Error("empty NewItemset should be empty")
	}
}

func TestItemsetContains(t *testing.T) {
	s := NewItemset(2, 4, 6)
	for _, it := range []Item{2, 4, 6} {
		if !s.Contains(it) {
			t.Errorf("Contains(%d) = false", it)
		}
	}
	for _, it := range []Item{1, 3, 5, 7} {
		if s.Contains(it) {
			t.Errorf("Contains(%d) = true", it)
		}
	}
}

func TestItemsetContainsAll(t *testing.T) {
	s := NewItemset(1, 2, 3, 4, 5)
	cases := []struct {
		sub  Itemset
		want bool
	}{
		{NewItemset(), true},
		{NewItemset(1), true},
		{NewItemset(1, 5), true},
		{NewItemset(2, 3, 4), true},
		{NewItemset(1, 2, 3, 4, 5), true},
		{NewItemset(0), false},
		{NewItemset(1, 6), false},
		{NewItemset(1, 2, 3, 4, 5, 6), false},
	}
	for _, tc := range cases {
		if got := s.ContainsAll(tc.sub); got != tc.want {
			t.Errorf("ContainsAll(%v) = %v, want %v", tc.sub, got, tc.want)
		}
	}
}

func TestItemsetKeyUnique(t *testing.T) {
	sets := []Itemset{
		NewItemset(), NewItemset(1), NewItemset(2), NewItemset(1, 2),
		NewItemset(1, 2, 3), NewItemset(258), NewItemset(1, 258),
		// 258 = 1 + 257; the two-byte encoding must not collide with {2,1}.
		NewItemset(2, 256),
	}
	seen := map[string]Itemset{}
	for _, s := range sets {
		if prev, dup := seen[s.Key()]; dup {
			t.Errorf("key collision: %v and %v", prev, s)
		}
		seen[s.Key()] = s
	}
}

func TestItemsetKeyEqualityProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	f := func() bool {
		a := randomItemset(rng, 6, 101)
		b := randomItemset(rng, 6, 101)
		return (a.Key() == b.Key()) == a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func randomItemset(rng *rand.Rand, maxLen, universe int) Itemset {
	n := rng.IntN(maxLen + 1)
	items := make([]Item, n)
	for i := range items {
		items[i] = rng.IntN(universe)
	}
	return NewItemset(items...)
}

func TestItemsetClone(t *testing.T) {
	s := NewItemset(1, 2)
	c := s.Clone()
	c[0] = 99
	if s[0] != 1 {
		t.Error("Clone shares backing array")
	}
}

func TestItemsetString(t *testing.T) {
	if got := NewItemset(3, 1).String(); got != "{1 3}" {
		t.Errorf("String = %q, want {1 3}", got)
	}
	if got := NewItemset().String(); got != "{}" {
		t.Errorf("empty String = %q, want {}", got)
	}
}

func TestSupportCount(t *testing.T) {
	cases := []struct {
		sup  float64
		n    int
		want int
	}{
		{0.04, 100, 4},
		{0.04, 99, 4},   // ceil(3.96)
		{0.04, 101, 5},  // ceil(4.04)
		{0, 1000, 1},    // floor at 1
		{0.001, 100, 1}, // ceil(0.1) -> 1
		{1, 50, 50},     // everything
		{0.5, 3, 2},     // ceil(1.5)
	}
	for _, tc := range cases {
		if got := SupportCount(tc.sup, tc.n); got != tc.want {
			t.Errorf("SupportCount(%v, %d) = %d, want %d", tc.sup, tc.n, got, tc.want)
		}
	}
}

func TestSortFrequentDeterministic(t *testing.T) {
	fs := []FrequentItemset{
		{Items: NewItemset(2, 3)},
		{Items: NewItemset(1)},
		{Items: NewItemset(1, 2)},
		{Items: NewItemset(3)},
	}
	SortFrequent(fs)
	want := []string{"{1}", "{3}", "{1 2}", "{2 3}"}
	for i, w := range want {
		if fs[i].Items.String() != w {
			t.Fatalf("order[%d] = %v, want %v", i, fs[i].Items, w)
		}
	}
}
