package assoc

import (
	"runtime"
	"sort"
	"sync"
)

// Apriori is the level-wise frequent-itemset miner of Agrawal &
// Srikant (paper reference [1]). It generates candidate k-itemsets by
// joining frequent (k-1)-itemsets and prunes candidates with an
// infrequent subset before counting.
type Apriori struct {
	// Workers bounds the goroutines used for candidate counting.
	// Zero means GOMAXPROCS.
	Workers int
}

// Mine implements Miner.
func (a *Apriori) Mine(tx []Transaction, minCount, maxLen int) []FrequentItemset {
	if minCount < 1 {
		minCount = 1
	}
	var out []FrequentItemset

	// Level 1: plain item counting.
	counts := make(map[Item]int)
	for _, t := range tx {
		for _, it := range t {
			counts[it]++
		}
	}
	frequent := make(map[Item]bool)
	var level []Itemset
	for it, c := range counts {
		if c >= minCount {
			frequent[it] = true
			out = append(out, FrequentItemset{Items: Itemset{it}, Count: c})
			level = append(level, Itemset{it})
		}
	}
	if maxLen == 1 {
		return out
	}

	// Pre-filter transactions down to their frequent items; infrequent
	// items can never appear in a frequent itemset (anti-monotonicity).
	filtered := make([]Transaction, 0, len(tx))
	for _, t := range tx {
		ft := make(Itemset, 0, len(t))
		for _, it := range t {
			if frequent[it] {
				ft = append(ft, it)
			}
		}
		if len(ft) >= 2 {
			filtered = append(filtered, ft)
		}
	}

	for k := 2; maxLen <= 0 || k <= maxLen; k++ {
		candidates := joinAndPrune(level)
		if len(candidates) == 0 {
			break
		}
		candCounts := a.countCandidates(filtered, candidates, k)
		level = level[:0]
		for i, c := range candCounts {
			if c >= minCount {
				out = append(out, FrequentItemset{Items: candidates[i], Count: c})
				level = append(level, candidates[i])
			}
		}
		if len(level) < 2 {
			break
		}
	}
	return out
}

// joinAndPrune produces candidate (k+1)-itemsets from frequent
// k-itemsets: join pairs sharing the first k-1 items, then drop
// candidates with any infrequent k-subset.
func joinAndPrune(level []Itemset) []Itemset {
	if len(level) == 0 {
		return nil
	}
	sortItemsetsLex(level)
	known := make(map[string]bool, len(level))
	for _, s := range level {
		known[s.Key()] = true
	}
	k := len(level[0])
	var cands []Itemset
	for i := 0; i < len(level); i++ {
		for j := i + 1; j < len(level); j++ {
			if !samePrefix(level[i], level[j], k-1) {
				break // sorted, so no later j matches either
			}
			cand := append(level[i].Clone(), level[j][k-1])
			if hasInfrequentSubset(cand, known) {
				continue
			}
			cands = append(cands, cand)
		}
	}
	return cands
}

// sortItemsetsLex orders itemsets lexicographically in place so
// prefix-joins can early-terminate.
func sortItemsetsLex(level []Itemset) {
	sort.Slice(level, func(i, j int) bool {
		a, b := level[i], level[j]
		for k := range a {
			if k >= len(b) {
				return false
			}
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}

func samePrefix(a, b Itemset, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// hasInfrequentSubset checks every (len-1)-subset of cand against the
// known frequent sets.
func hasInfrequentSubset(cand Itemset, known map[string]bool) bool {
	sub := make(Itemset, len(cand)-1)
	for skip := range cand {
		sub = sub[:0]
		for i, it := range cand {
			if i != skip {
				sub = append(sub, it)
			}
		}
		if !known[sub.Key()] {
			return true
		}
	}
	return false
}

// countCandidates counts candidate occurrences across transactions,
// fanning out over worker goroutines with per-worker count arrays.
func (a *Apriori) countCandidates(tx []Transaction, candidates []Itemset, k int) []int {
	index := make(map[string]int, len(candidates))
	for i, c := range candidates {
		index[c.Key()] = i
	}
	workers := a.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tx) {
		workers = len(tx)
	}
	if workers <= 1 {
		counts := make([]int, len(candidates))
		countChunk(tx, candidates, index, k, counts)
		return counts
	}

	var wg sync.WaitGroup
	partials := make([][]int, workers)
	chunk := (len(tx) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(tx))
		if lo >= hi {
			break
		}
		wg.Add(1)
		partials[w] = make([]int, len(candidates))
		go func(part []int, txs []Transaction) {
			defer wg.Done()
			countChunk(txs, candidates, index, k, part)
		}(partials[w], tx[lo:hi])
	}
	wg.Wait()
	counts := make([]int, len(candidates))
	for _, part := range partials {
		for i, c := range part {
			counts[i] += c
		}
	}
	return counts
}

// countChunk adds candidate occurrence counts for one slice of
// transactions into counts. When a transaction is small it enumerates
// the transaction's k-subsets and looks them up; when the subset space
// explodes it falls back to per-candidate containment checks.
func countChunk(tx []Transaction, candidates []Itemset, index map[string]int, k int, counts []int) {
	var buf Itemset
	for _, t := range tx {
		if len(t) < k {
			continue
		}
		if binomialAtMost(len(t), k, 4*len(candidates)) {
			buf = buf[:0]
			enumerateSubsets(t, k, buf, func(sub Itemset) {
				if idx, ok := index[sub.Key()]; ok {
					counts[idx]++
				}
			})
		} else {
			for i, cand := range candidates {
				if t.ContainsAll(cand) {
					counts[i]++
				}
			}
		}
	}
}

// binomialAtMost reports whether C(n, k) <= limit without overflow.
func binomialAtMost(n, k, limit int) bool {
	if k > n {
		return true
	}
	if k > n-k {
		k = n - k
	}
	c := 1
	for i := 1; i <= k; i++ {
		c = c * (n - k + i) / i
		if c > limit {
			return false
		}
	}
	return true
}

// enumerateSubsets calls fn for every k-subset of the sorted set t.
// The callback's argument is reused between calls.
func enumerateSubsets(t Itemset, k int, buf Itemset, fn func(Itemset)) {
	var rec func(start int)
	rec = func(start int) {
		if len(buf) == k {
			fn(buf)
			return
		}
		// Not enough items left to fill the subset.
		for i := start; i <= len(t)-(k-len(buf)); i++ {
			buf = append(buf, t[i])
			rec(i + 1)
			buf = buf[:len(buf)-1]
		}
	}
	rec(0)
}
