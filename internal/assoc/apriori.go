package assoc

import (
	"runtime"
	"sort"
	"sync"
)

// Apriori is the level-wise frequent-itemset miner of Agrawal &
// Srikant (paper reference [1]). It generates candidate k-itemsets by
// joining frequent (k-1)-itemsets and prunes candidates with an
// infrequent subset before counting.
//
// When the run fits the interned representation (at most 255 frequent
// items and a bounded itemset length of at most 8 — see intern.go),
// mining runs entirely over packed integer keys; otherwise it falls
// back to string-keyed maps.
type Apriori struct {
	// Workers bounds the goroutines used for candidate counting.
	// Zero means GOMAXPROCS.
	Workers int
}

// Mine implements Miner.
func (a *Apriori) Mine(tx []Transaction, minCount, maxLen int) []FrequentItemset {
	if minCount < 1 {
		minCount = 1
	}
	var out []FrequentItemset

	// Level 1: plain item counting.
	counts := make(map[Item]int)
	for _, t := range tx {
		for _, it := range t {
			counts[it]++
		}
	}
	frequent := make(map[Item]bool)
	freqItems := make([]Item, 0, len(counts))
	for it, c := range counts {
		if c >= minCount {
			frequent[it] = true
			freqItems = append(freqItems, it)
		}
	}
	sort.Ints(freqItems)
	// Emit level-1 itemsets in sorted item order, not map order: Mine
	// feeds rule generation and the experiment tables, which must be
	// byte-identical run to run.
	for _, it := range freqItems {
		out = append(out, FrequentItemset{Items: Itemset{it}, Count: counts[it]})
	}
	if maxLen == 1 {
		return out
	}

	// Pre-filter transactions down to their frequent items; infrequent
	// items can never appear in a frequent itemset (anti-monotonicity).
	filtered := make([]Transaction, 0, len(tx))
	for _, t := range tx {
		ft := make(Itemset, 0, len(t))
		for _, it := range t {
			if frequent[it] {
				ft = append(ft, it)
			}
		}
		if len(ft) >= 2 {
			filtered = append(filtered, ft)
		}
	}

	// Intern the frequent vocabulary when the run fits the packed
	// representation; the level loop then never touches a string key.
	if maxLen > 0 && maxLen <= maxInternLen {
		if v, ok := newVocab(freqItems); ok {
			coded := make([]Transaction, len(filtered))
			for i, t := range filtered {
				coded[i] = v.encode(t) // order-preserving, stays sorted
			}
			return a.mineLevels(coded, minCount, maxLen, out, v)
		}
	}
	return a.mineLevels(filtered, minCount, maxLen, out, nil)
}

// mineLevels runs the level-wise join/prune/count loop. With a vocab,
// tx and all intermediate itemsets are in code space and lookup maps
// key on packed uint64 setKeys; with a nil vocab they key on
// Itemset.Key() strings.
func (a *Apriori) mineLevels(tx []Transaction, minCount, maxLen int, out []FrequentItemset, v *vocab) []FrequentItemset {
	level := make([]Itemset, 0, len(out))
	for _, fi := range out {
		items := fi.Items
		if v != nil {
			items = v.encode(items)
		}
		level = append(level, items)
	}
	for k := 2; maxLen <= 0 || k <= maxLen; k++ {
		candidates := joinAndPrune(level, v)
		if len(candidates) == 0 {
			break
		}
		candCounts := a.countCandidates(tx, candidates, k, v)
		level = level[:0]
		for i, c := range candCounts {
			if c >= minCount {
				items := candidates[i]
				if v != nil {
					items = v.decode(items)
				}
				out = append(out, FrequentItemset{Items: items, Count: c})
				level = append(level, candidates[i])
			}
		}
		if len(level) < 2 {
			break
		}
	}
	return out
}

// joinAndPrune produces candidate (k+1)-itemsets from frequent
// k-itemsets: join pairs sharing the first k-1 items, then drop
// candidates with any infrequent k-subset.
func joinAndPrune(level []Itemset, v *vocab) []Itemset {
	if len(level) == 0 {
		return nil
	}
	sortItemsetsLex(level)
	var knownPacked map[setKey]bool
	var knownStr map[string]bool
	if v != nil {
		knownPacked = make(map[setKey]bool, len(level))
		for _, s := range level {
			knownPacked[packKey(s)] = true
		}
	} else {
		knownStr = make(map[string]bool, len(level))
		for _, s := range level {
			knownStr[s.Key()] = true
		}
	}
	known := func(s Itemset) bool {
		if v != nil {
			return knownPacked[packKey(s)]
		}
		return knownStr[s.Key()]
	}
	k := len(level[0])
	var cands []Itemset
	for i := 0; i < len(level); i++ {
		for j := i + 1; j < len(level); j++ {
			if !samePrefix(level[i], level[j], k-1) {
				break // sorted, so no later j matches either
			}
			cand := append(level[i].Clone(), level[j][k-1])
			if hasInfrequentSubset(cand, known) {
				continue
			}
			cands = append(cands, cand)
		}
	}
	return cands
}

// sortItemsetsLex orders itemsets lexicographically in place so
// prefix-joins can early-terminate.
func sortItemsetsLex(level []Itemset) {
	sort.Slice(level, func(i, j int) bool {
		a, b := level[i], level[j]
		for k := range a {
			if k >= len(b) {
				return false
			}
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}

func samePrefix(a, b Itemset, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// hasInfrequentSubset checks every (len-1)-subset of cand against the
// known frequent sets.
func hasInfrequentSubset(cand Itemset, known func(Itemset) bool) bool {
	sub := make(Itemset, len(cand)-1)
	for skip := range cand {
		sub = sub[:0]
		for i, it := range cand {
			if i != skip {
				sub = append(sub, it)
			}
		}
		if !known(sub) {
			return true
		}
	}
	return false
}

// countCandidates counts candidate occurrences across transactions,
// fanning out over worker goroutines with per-worker count arrays.
func (a *Apriori) countCandidates(tx []Transaction, candidates []Itemset, k int, v *vocab) []int {
	var indexPacked map[setKey]int
	var indexStr map[string]int
	if v != nil {
		indexPacked = make(map[setKey]int, len(candidates))
		for i, c := range candidates {
			indexPacked[packKey(c)] = i
		}
	} else {
		indexStr = make(map[string]int, len(candidates))
		for i, c := range candidates {
			indexStr[c.Key()] = i
		}
	}
	count := func(txs []Transaction, counts []int) {
		if v != nil {
			countChunkPacked(txs, candidates, indexPacked, k, counts)
		} else {
			countChunk(txs, candidates, indexStr, k, counts)
		}
	}
	workers := a.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tx) {
		workers = len(tx)
	}
	if workers <= 1 {
		counts := make([]int, len(candidates))
		count(tx, counts)
		return counts
	}

	var wg sync.WaitGroup
	partials := make([][]int, workers)
	chunk := (len(tx) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(tx))
		if lo >= hi {
			break
		}
		wg.Add(1)
		partials[w] = make([]int, len(candidates))
		go func(part []int, txs []Transaction) {
			defer wg.Done()
			count(txs, part)
		}(partials[w], tx[lo:hi])
	}
	wg.Wait()
	counts := make([]int, len(candidates))
	for _, part := range partials {
		for i, c := range part {
			counts[i] += c
		}
	}
	return counts
}

// countChunkPacked adds candidate occurrence counts for one slice of
// code-space transactions into counts. When a transaction is small it
// enumerates the transaction's k-subsets iteratively, packing each
// directly into a setKey — no buffer, no string, no allocation — and
// looks them up; when the subset space explodes it falls back to
// per-candidate containment checks.
//
//bglvet:hotpath
func countChunkPacked(tx []Transaction, candidates []Itemset, index map[setKey]int, k int, counts []int) {
	// pos[d] is the transaction position chosen at subset depth d;
	// pre[d] is the packed prefix of the first d chosen codes.
	var pos [maxInternLen]int
	var pre [maxInternLen + 1]setKey
	for _, t := range tx {
		n := len(t)
		if n < k {
			continue
		}
		if !binomialAtMost(n, k, 4*len(candidates)) {
			for i, cand := range candidates {
				if t.ContainsAll(cand) {
					counts[i]++
				}
			}
			continue
		}
		d := 0
		pos[0] = 0
		for d >= 0 {
			if pos[d] > n-k+d {
				// Choices at this depth exhausted; backtrack.
				d--
				if d >= 0 {
					pos[d]++
				}
				continue
			}
			pre[d+1] = pre[d] | setKey(t[pos[d]]+1)<<(8*d)
			if d == k-1 {
				if idx, ok := index[pre[k]]; ok {
					counts[idx]++
				}
				pos[d]++
			} else {
				pos[d+1] = pos[d] + 1
				d++
			}
		}
	}
}

// countChunk is the string-keyed fallback of countChunkPacked, used
// when the run exceeds the interned representation. The enumeration
// buffer is allocated once with capacity k, so the k-subset recursion
// never reallocates per transaction.
func countChunk(tx []Transaction, candidates []Itemset, index map[string]int, k int, counts []int) {
	buf := make(Itemset, 0, k)
	for _, t := range tx {
		if len(t) < k {
			continue
		}
		if binomialAtMost(len(t), k, 4*len(candidates)) {
			enumerateSubsets(t, k, buf, func(sub Itemset) {
				if idx, ok := index[sub.Key()]; ok {
					counts[idx]++
				}
			})
		} else {
			for i, cand := range candidates {
				if t.ContainsAll(cand) {
					counts[i]++
				}
			}
		}
	}
}

// binomialAtMost reports whether C(n, k) <= limit without overflow.
func binomialAtMost(n, k, limit int) bool {
	if k > n {
		return true
	}
	if k > n-k {
		k = n - k
	}
	c := 1
	for i := 1; i <= k; i++ {
		c = c * (n - k + i) / i
		if c > limit {
			return false
		}
	}
	return true
}

// enumerateSubsets calls fn for every k-subset of the sorted set t.
// The callback's argument is reused between calls; buf must have
// capacity at least k (its contents are ignored).
func enumerateSubsets(t Itemset, k int, buf Itemset, fn func(Itemset)) {
	buf = buf[:0]
	var rec func(start int)
	rec = func(start int) {
		if len(buf) == k {
			fn(buf)
			return
		}
		// Not enough items left to fill the subset.
		for i := start; i <= len(t)-(k-len(buf)); i++ {
			buf = append(buf, t[i])
			rec(i + 1)
			buf = buf[:len(buf)-1]
		}
	}
	rec(0)
}
