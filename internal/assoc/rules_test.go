package assoc

import (
	"math/rand/v2"
	"sort"
	"strings"
	"testing"
)

// Items >= 100 act as fatal heads in these tests.
func testIsHead(it Item) bool { return it >= 100 }

// permissive disables the ubiquity and lift filters so tests can probe
// support/confidence mechanics on tiny hand-built datasets where every
// item is "ubiquitous" and head base rates are huge.
func permissive(minSup, minConf float64) Config {
	return Config{MinSupport: minSup, MinConfidence: minConf,
		MaxBodyItemShare: 1, MinLift: 1e-9, MinCountFloor: 1, MinZ: -1}
}

func TestMineRulesSimpleCausalChain(t *testing.T) {
	// Item 1 precedes failure 100 in 3 of 4 of its transactions.
	tx := []Transaction{
		NewItemset(1, 100),
		NewItemset(1, 100),
		NewItemset(1, 100),
		NewItemset(1),
		NewItemset(2), // unrelated
	}
	rules := MineRules(tx, testIsHead, permissive(0.1, 0.2))
	if len(rules) != 1 {
		t.Fatalf("got %d rules (%v), want 1", len(rules), rules)
	}
	r := rules[0]
	if !r.Body.Equal(NewItemset(1)) || !r.Heads.Equal(NewItemset(100)) {
		t.Fatalf("rule = %v", r)
	}
	if r.BodyCount != 4 || r.JointCount != 3 {
		t.Fatalf("counts = %d/%d, want 4/3", r.BodyCount, r.JointCount)
	}
	if want := 0.75; r.Confidence != want {
		t.Fatalf("confidence = %v, want %v", r.Confidence, want)
	}
	if want := 3.0 / 5.0; r.Support != want {
		t.Fatalf("support = %v, want %v", r.Support, want)
	}
}

func TestMineRulesCombinesHeads(t *testing.T) {
	// Body {1} precedes failure 100 twice and failure 101 twice; the
	// combined rule {1} -> {100 101} must count any-head transactions.
	tx := []Transaction{
		NewItemset(1, 100),
		NewItemset(1, 100),
		NewItemset(1, 101),
		NewItemset(1, 101),
		NewItemset(1),
	}
	rules := MineRules(tx, testIsHead, permissive(0.2, 0.2))
	if len(rules) != 1 {
		t.Fatalf("got %d rules (%v), want 1 combined", len(rules), rules)
	}
	r := rules[0]
	if !r.Heads.Equal(NewItemset(100, 101)) {
		t.Fatalf("heads = %v, want {100 101}", r.Heads)
	}
	// Combined confidence: 4 of 5 body transactions carry some head —
	// higher than either single-head rule (0.4 each).
	if want := 0.8; r.Confidence != want {
		t.Fatalf("combined confidence = %v, want %v", r.Confidence, want)
	}
}

func TestMineRulesMinConfidenceFilters(t *testing.T) {
	tx := []Transaction{
		NewItemset(1, 100),
		NewItemset(1),
		NewItemset(1),
		NewItemset(1),
		NewItemset(1),
	}
	// Confidence 0.2 passes at threshold 0.2 but not above.
	if rules := MineRules(tx, testIsHead, permissive(0.1, 0.2)); len(rules) != 1 {
		t.Fatalf("at threshold: %d rules, want 1", len(rules))
	}
	if rules := MineRules(tx, testIsHead, permissive(0.1, 0.25)); len(rules) != 0 {
		t.Fatalf("above threshold: %d rules, want 0", len(rules))
	}
}

func TestMineRulesMinSupportFilters(t *testing.T) {
	// Pair (2,101) appears once in 10 transactions: support 0.1.
	tx := make([]Transaction, 10)
	for i := range tx {
		tx[i] = NewItemset(1, 100)
	}
	tx[9] = NewItemset(2, 101)
	rules := MineRules(tx, testIsHead, permissive(0.2, 0.2))
	for _, r := range rules {
		if r.Body.Contains(2) {
			t.Fatalf("low-support rule survived: %v", r)
		}
	}
	if len(rules) != 1 {
		t.Fatalf("got %d rules, want 1", len(rules))
	}
}

func TestMineRulesSortedByConfidence(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 3))
	var tx []Transaction
	// Three bodies with distinct confidences.
	for i := 0; i < 100; i++ {
		if rng.Float64() < 0.9 {
			tx = append(tx, NewItemset(1, 100))
		} else {
			tx = append(tx, NewItemset(1))
		}
		if rng.Float64() < 0.5 {
			tx = append(tx, NewItemset(2, 100))
		} else {
			tx = append(tx, NewItemset(2))
		}
		if rng.Float64() < 0.25 {
			tx = append(tx, NewItemset(3, 100))
		} else {
			tx = append(tx, NewItemset(3))
		}
	}
	rules := MineRules(tx, testIsHead, permissive(0.01, 0.1))
	if !sort.SliceIsSorted(rules, func(i, j int) bool {
		return rules[i].Confidence > rules[j].Confidence
	}) {
		t.Fatalf("rules not sorted by confidence: %v", rules)
	}
	if len(rules) < 3 {
		t.Fatalf("got %d rules, want >= 3", len(rules))
	}
}

func TestMineRulesNoBodylessOrHeadlessRules(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	var tx []Transaction
	for i := 0; i < 200; i++ {
		items := randomItemset(rng, 5, 10)
		if rng.Float64() < 0.5 {
			items = NewItemset(append(items, 100+rng.IntN(3))...)
		}
		tx = append(tx, items)
	}
	rules := MineRules(tx, testIsHead, permissive(0.01, 0.1))
	for _, r := range rules {
		if len(r.Body) == 0 {
			t.Errorf("bodyless rule: %v", r)
		}
		if len(r.Heads) == 0 {
			t.Errorf("headless rule: %v", r)
		}
		for _, it := range r.Body {
			if testIsHead(it) {
				t.Errorf("fatal item %d in body of %v", it, r)
			}
		}
		for _, h := range r.Heads {
			if !testIsHead(h) {
				t.Errorf("non-fatal head %d in %v", h, r)
			}
		}
		if r.Confidence < 0.1 || r.Confidence > 1 {
			t.Errorf("confidence out of range: %v", r)
		}
		if r.JointCount > r.BodyCount {
			t.Errorf("joint > body count: %v", r)
		}
	}
}

func TestMineRulesEmptyInput(t *testing.T) {
	if rules := MineRules(nil, testIsHead, Config{}); rules != nil {
		t.Fatalf("MineRules(nil) = %v", rules)
	}
}

func TestMineRulesMinersAgree(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 88))
	var tx []Transaction
	for i := 0; i < 500; i++ {
		items := randomItemset(rng, 6, 20)
		if rng.Float64() < 0.4 {
			items = NewItemset(append(items, 100+rng.IntN(4))...)
		}
		tx = append(tx, items)
	}
	ap := MineRules(tx, testIsHead, Config{Miner: &Apriori{}})
	fp := MineRules(tx, testIsHead, Config{Miner: &FPGrowth{}})
	if len(ap) != len(fp) {
		t.Fatalf("apriori %d rules, fpgrowth %d", len(ap), len(fp))
	}
	for i := range ap {
		if !ap[i].Body.Equal(fp[i].Body) || !ap[i].Heads.Equal(fp[i].Heads) ||
			ap[i].Confidence != fp[i].Confidence {
			t.Fatalf("rule %d differs: %v vs %v", i, ap[i], fp[i])
		}
	}
}

func TestRuleMatches(t *testing.T) {
	r := Rule{Body: NewItemset(1, 3)}
	if !r.Matches(NewItemset(1, 2, 3)) {
		t.Error("superset should match")
	}
	if r.Matches(NewItemset(1, 2)) {
		t.Error("missing body item should not match")
	}
	if r.Matches(NewItemset()) {
		t.Error("empty observation should not match")
	}
}

func TestRuleSetBestMatchPicksHighestConfidence(t *testing.T) {
	rs := NewRuleSet([]Rule{
		{Body: NewItemset(1, 2), Heads: NewItemset(100), Confidence: 0.9},
		{Body: NewItemset(1), Heads: NewItemset(101), Confidence: 0.5},
	})
	r, ok := rs.BestMatch(NewItemset(1, 2, 7))
	if !ok || r.Confidence != 0.9 {
		t.Fatalf("BestMatch = %v, %v; want the 0.9 rule", r, ok)
	}
	r, ok = rs.BestMatch(NewItemset(1, 7))
	if !ok || r.Confidence != 0.5 {
		t.Fatalf("BestMatch = %v, %v; want the 0.5 rule", r, ok)
	}
	if _, ok := rs.BestMatch(NewItemset(7)); ok {
		t.Fatal("BestMatch matched nothing-in-common observation")
	}
	if rs.Len() != 2 {
		t.Fatalf("Len = %d, want 2", rs.Len())
	}
}

func TestRuleFormatFigure3Style(t *testing.T) {
	names := map[Item]string{1: "nodemapFileError", 100: "nodemapCreateFailure"}
	r := Rule{Body: NewItemset(1), Heads: NewItemset(100), Confidence: 0.947368}
	got := r.Format(func(it Item) string { return names[it] })
	want := "nodemapFileError ==> nodemapCreateFailure: 0.947368"
	if got != want {
		t.Fatalf("Format = %q, want %q", got, want)
	}
	if !strings.Contains(r.String(), "==>") {
		t.Errorf("String = %q", r.String())
	}
}

func BenchmarkMineRules(b *testing.B) {
	rng := rand.New(rand.NewPCG(4, 5))
	var tx []Transaction
	for i := 0; i < 3000; i++ {
		items := randomItemset(rng, 8, 60)
		if rng.Float64() < 0.5 {
			items = NewItemset(append(items, 100+rng.IntN(10))...)
		}
		tx = append(tx, items)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MineRules(tx, testIsHead, Config{})
	}
}
