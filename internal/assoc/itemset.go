// Package assoc implements association-rule mining (paper §3.2.2): the
// Apriori algorithm of Agrawal & Srikant [1] and the FP-growth
// algorithm of Han et al. [15], plus the paper's rule post-processing
// (combining rules with equal bodies, sorting by confidence).
//
// Items are small non-negative integers; in this system they are
// catalog subcategory IDs. A transaction is the "event-set" of paper
// §3.2.2 step 1: the subcategories observed in a rule-generation
// window, including the fatal event.
package assoc

import (
	"fmt"
	"sort"
	"strings"
)

// Item is an element of a transaction, e.g. a catalog subcategory ID.
type Item = int

// Itemset is a sorted, duplicate-free set of items.
type Itemset []Item

// Transaction is the itemset recorded for one observation window.
type Transaction = Itemset

// NewItemset builds a sorted, duplicate-free itemset from items in any
// order.
func NewItemset(items ...Item) Itemset {
	s := append(Itemset(nil), items...)
	sort.Ints(s)
	out := s[:0]
	for i, it := range s {
		if i == 0 || it != s[i-1] {
			out = append(out, it)
		}
	}
	return out
}

// Contains reports whether the sorted itemset s contains item.
func (s Itemset) Contains(item Item) bool {
	idx := sort.SearchInts(s, item)
	return idx < len(s) && s[idx] == item
}

// ContainsAll reports whether the sorted itemset s is a superset of the
// sorted itemset other.
func (s Itemset) ContainsAll(other Itemset) bool {
	if len(other) > len(s) {
		return false
	}
	i := 0
	for _, want := range other {
		for i < len(s) && s[i] < want {
			i++
		}
		if i >= len(s) || s[i] != want {
			return false
		}
		i++
	}
	return true
}

// Equal reports whether two sorted itemsets hold the same items.
func (s Itemset) Equal(other Itemset) bool {
	if len(s) != len(other) {
		return false
	}
	for i := range s {
		if s[i] != other[i] {
			return false
		}
	}
	return true
}

// Key returns a compact map key uniquely identifying the itemset.
func (s Itemset) Key() string {
	var b strings.Builder
	b.Grow(len(s) * 2)
	for _, it := range s {
		// Two-byte little-endian encoding supports item IDs up to 65535,
		// far beyond the 101 subcategories.
		b.WriteByte(byte(it))
		b.WriteByte(byte(it >> 8))
	}
	return b.String()
}

// String renders the itemset as "{1 4 9}".
func (s Itemset) String() string {
	parts := make([]string, len(s))
	for i, it := range s {
		parts[i] = fmt.Sprint(it)
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// Clone returns an independent copy.
func (s Itemset) Clone() Itemset { return append(Itemset(nil), s...) }

// FrequentItemset pairs an itemset with its transaction count.
type FrequentItemset struct {
	Items Itemset
	Count int
}

// Miner finds all itemsets whose support count meets minCount, with at
// most maxLen items (maxLen <= 0 means unbounded). Implementations:
// Apriori and FPGrowth.
type Miner interface {
	// Mine returns frequent itemsets in no particular order.
	Mine(tx []Transaction, minCount, maxLen int) []FrequentItemset
}

// SupportCount converts a fractional minimum support into an absolute
// transaction count (at least 1).
func SupportCount(minSupport float64, numTransactions int) int {
	c := int(minSupport * float64(numTransactions))
	if float64(c) < minSupport*float64(numTransactions) {
		c++
	}
	if c < 1 {
		c = 1
	}
	return c
}

// SortFrequent orders frequent itemsets canonically (by length, then
// lexicographically) for deterministic comparisons.
func SortFrequent(fs []FrequentItemset) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i].Items, fs[j].Items
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}
