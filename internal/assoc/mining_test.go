package assoc

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// classicTx is the textbook example from Han et al.'s FP-growth paper.
var classicTx = []Transaction{
	NewItemset(1, 2, 5),
	NewItemset(2, 4),
	NewItemset(2, 3),
	NewItemset(1, 2, 4),
	NewItemset(1, 3),
	NewItemset(2, 3),
	NewItemset(1, 3),
	NewItemset(1, 2, 3, 5),
	NewItemset(1, 2, 3),
}

// bruteForce counts every itemset appearing in any transaction.
func bruteForce(tx []Transaction, minCount, maxLen int) map[string]int {
	counts := map[string]int{}
	var rec func(t Transaction, start int, cur Itemset)
	rec = func(t Transaction, start int, cur Itemset) {
		if len(cur) > 0 {
			counts[cur.Key()]++
		}
		if maxLen > 0 && len(cur) >= maxLen {
			return
		}
		for i := start; i < len(t); i++ {
			rec(t, i+1, append(cur, t[i]))
		}
	}
	for _, t := range tx {
		rec(t, 0, nil)
	}
	for k, c := range counts {
		if c < minCount {
			delete(counts, k)
		}
	}
	return counts
}

func toMap(fs []FrequentItemset) map[string]int {
	m := make(map[string]int, len(fs))
	for _, fi := range fs {
		m[fi.Items.Key()] = fi.Count
	}
	return m
}

func minersUnderTest() map[string]Miner {
	return map[string]Miner{
		"apriori":            &Apriori{},
		"apriori-sequential": &Apriori{Workers: 1},
		"fpgrowth":           &FPGrowth{},
	}
}

func TestMinersMatchBruteForceOnClassic(t *testing.T) {
	for _, minCount := range []int{1, 2, 3, 5} {
		want := bruteForce(classicTx, minCount, 0)
		for name, m := range minersUnderTest() {
			got := toMap(m.Mine(classicTx, minCount, 0))
			if len(got) != len(want) {
				t.Errorf("%s minCount=%d: %d itemsets, want %d", name, minCount, len(got), len(want))
				continue
			}
			for k, c := range want {
				if got[k] != c {
					t.Errorf("%s minCount=%d: count mismatch for key %q: got %d want %d",
						name, minCount, k, got[k], c)
				}
			}
		}
	}
}

func TestMinersRespectMaxLen(t *testing.T) {
	for name, m := range minersUnderTest() {
		for _, maxLen := range []int{1, 2, 3} {
			for _, fi := range m.Mine(classicTx, 1, maxLen) {
				if len(fi.Items) > maxLen {
					t.Errorf("%s: itemset %v exceeds maxLen %d", name, fi.Items, maxLen)
				}
			}
			want := bruteForce(classicTx, 1, maxLen)
			got := toMap(m.Mine(classicTx, 1, maxLen))
			if len(got) != len(want) {
				t.Errorf("%s maxLen=%d: %d itemsets, want %d", name, maxLen, len(got), len(want))
			}
		}
	}
}

func TestMinersEmptyInputs(t *testing.T) {
	for name, m := range minersUnderTest() {
		if got := m.Mine(nil, 1, 0); len(got) != 0 {
			t.Errorf("%s: Mine(nil) = %v", name, got)
		}
		if got := m.Mine([]Transaction{{}, {}}, 1, 0); len(got) != 0 {
			t.Errorf("%s: Mine(empty tx) = %v", name, got)
		}
	}
}

func randomTransactions(rng *rand.Rand, n, maxItems, universe int) []Transaction {
	tx := make([]Transaction, n)
	for i := range tx {
		tx[i] = randomItemset(rng, maxItems, universe)
	}
	return tx
}

func TestAprioriEqualsFPGrowthProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 43))
	ap := &Apriori{}
	fp := &FPGrowth{}
	f := func() bool {
		tx := randomTransactions(rng, 5+rng.IntN(60), 8, 12)
		minCount := 1 + rng.IntN(5)
		maxLen := rng.IntN(5) // 0 = unbounded
		a := toMap(ap.Mine(tx, minCount, maxLen))
		b := toMap(fp.Mine(tx, minCount, maxLen))
		if len(a) != len(b) {
			return false
		}
		for k, c := range a {
			if b[k] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestAntiMonotonicityProperty(t *testing.T) {
	// Every subset of a frequent itemset must itself be frequent, with
	// count >= the superset's count.
	rng := rand.New(rand.NewPCG(7, 8))
	fp := &FPGrowth{}
	f := func() bool {
		tx := randomTransactions(rng, 5+rng.IntN(40), 6, 10)
		minCount := 1 + rng.IntN(3)
		fs := fp.Mine(tx, minCount, 0)
		counts := toMap(fs)
		for _, fi := range fs {
			for skip := range fi.Items {
				sub := make(Itemset, 0, len(fi.Items)-1)
				for i, it := range fi.Items {
					if i != skip {
						sub = append(sub, it)
					}
				}
				if len(sub) == 0 {
					continue
				}
				c, ok := counts[sub.Key()]
				if !ok || c < fi.Count {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMinersMatchBruteForceProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(100, 200))
	f := func() bool {
		tx := randomTransactions(rng, 3+rng.IntN(25), 5, 8)
		minCount := 1 + rng.IntN(3)
		want := bruteForce(tx, minCount, 0)
		for _, m := range minersUnderTest() {
			got := toMap(m.Mine(tx, minCount, 0))
			if len(got) != len(want) {
				return false
			}
			for k, c := range want {
				if got[k] != c {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestAprioriParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewPCG(55, 66))
	tx := randomTransactions(rng, 4000, 10, 30)
	seq := toMap((&Apriori{Workers: 1}).Mine(tx, 40, 0))
	par := toMap((&Apriori{Workers: 8}).Mine(tx, 40, 0))
	if len(seq) != len(par) {
		t.Fatalf("parallel found %d itemsets, sequential %d", len(par), len(seq))
	}
	for k, c := range seq {
		if par[k] != c {
			t.Fatalf("count mismatch for %q: par %d, seq %d", k, par[k], c)
		}
	}
}

func TestBinomialAtMost(t *testing.T) {
	cases := []struct {
		n, k, limit int
		want        bool
	}{
		{5, 2, 10, true}, // C(5,2)=10
		{5, 2, 9, false},
		{10, 4, 210, true}, // C(10,4)=210
		{10, 4, 209, false},
		{3, 5, 0, true}, // k > n: zero subsets
		{50, 25, 1000000, false},
	}
	for _, tc := range cases {
		if got := binomialAtMost(tc.n, tc.k, tc.limit); got != tc.want {
			t.Errorf("binomialAtMost(%d,%d,%d) = %v, want %v", tc.n, tc.k, tc.limit, got, tc.want)
		}
	}
}

func BenchmarkApriori(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	tx := randomTransactions(rng, 5000, 12, 101)
	m := &Apriori{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Mine(tx, 50, 5)
	}
}

func BenchmarkFPGrowth(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	tx := randomTransactions(rng, 5000, 12, 101)
	m := &FPGrowth{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Mine(tx, 50, 5)
	}
}

// TestMineLevel1Deterministic pins the level-1 emission order: two
// mines of the same transactions must produce identical slices, and
// singleton itemsets must come out in ascending item order. A map-order
// iteration here leaked Go's randomized map order into the rule tables.
func TestMineLevel1Deterministic(t *testing.T) {
	for name, m := range minersUnderTest() {
		a := m.Mine(classicTx, 2, 1)
		b := m.Mine(classicTx, 2, 1)
		if len(a) == 0 {
			t.Fatalf("%s: no level-1 itemsets", name)
		}
		for i := range a {
			if a[i].Items.Key() != b[i].Items.Key() || a[i].Count != b[i].Count {
				t.Fatalf("%s: two mines disagree at %d: %v vs %v", name, i, a[i], b[i])
			}
			if i > 0 && a[i-1].Items[0] >= a[i].Items[0] {
				t.Fatalf("%s: level-1 itemsets out of order: %v before %v", name, a[i-1], a[i])
			}
		}
	}
}
