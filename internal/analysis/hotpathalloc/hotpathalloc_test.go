package hotpathalloc_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bglpred/internal/analysis"
	"bglpred/internal/analysis/analysistest"
	"bglpred/internal/analysis/hotpathalloc"
)

func TestHotpathallocCorpus(t *testing.T) {
	analysistest.Run(t, hotpathalloc.Analyzer, "a")
}

// TestCrossPackageClosure: the root is annotated in hota, the
// allocation sits in hotb — the closure must cross the package
// boundary through the Finish hook's stitched summaries.
func TestCrossPackageClosure(t *testing.T) {
	findings := analysistest.Run(t, hotpathalloc.Analyzer, "hota", "hotb")
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want exactly 1 (hotb.Sum's slice literal): %v", len(findings), findings)
	}
}

// runOn analyzes one synthesized package and returns the surviving
// findings — the suppression-semantics harness.
func runOn(t *testing.T, src string) []analysis.Finding {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	l.ExtraRoots = map[string]string{"a": dir}
	pkg, err := l.Load("a")
	if err != nil {
		t.Fatal(err)
	}
	s := &analysis.Suite{Analyzers: []*analysis.Analyzer{hotpathalloc.Analyzer}}
	findings, err := s.Run(l, []*analysis.Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

// TestIgnoreSilencesExactlyOneFinding: two identical allocations on
// the hot path, one reasoned ignore — only the annotated one goes
// quiet. Suppression must reach findings reported by the Finish hook,
// not just per-package Run diagnostics.
func TestIgnoreSilencesExactlyOneFinding(t *testing.T) {
	findings := runOn(t, `package a

//bglvet:hotpath
func Root(b []byte) int {
	//bglvet:ignore hotpathalloc intern-miss copy, amortized by the hit path
	excused := string(b)
	unexcused := string(b)
	return len(excused) + len(unexcused)
}
`)
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want exactly 1 (the unexcused conversion): %v", len(findings), findings)
	}
	if f := findings[0]; f.Analyzer != "hotpathalloc" || f.Pos.Line != 7 {
		t.Fatalf("surviving finding is not the unexcused conversion: %v", f)
	}
}

// TestStaleIgnoreReported: a hotpathalloc ignore outside any hot
// closure silences nothing and is reported.
func TestStaleIgnoreReported(t *testing.T) {
	findings := runOn(t, `package a

func cold(b []byte) string {
	//bglvet:ignore hotpathalloc this function used to be hot
	return string(b)
}
`)
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1 stale-ignore report: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != analysis.MetaName || !strings.Contains(f.Message, "stale ignore") {
		t.Fatalf("want a stale-ignore meta finding, got: %v", f)
	}
}
