// Package hotpathalloc guards the zero-allocation contracts of the
// ingest hot path. The runtime AllocsPerRun tests prove specific
// executed paths allocation-free; this analyzer complements them by
// walking every path: a `//bglvet:hotpath` doc-comment annotation
// marks root functions (the binwire decoder, packed Apriori counting,
// serve's wire ingest), the whole-program Finish hook computes the
// static call closure of those roots across the admitted packages,
// and every allocating construct inside the closure is reported:
//
//   - map and slice literals, and &composite literals (heap escape);
//   - non-constant string concatenation;
//   - string ↔ []byte conversions — except a conversion used directly
//     as a map index or a comparison operand, the compiler's
//     recognized no-alloc forms (the decoder's `intern[string(b)]`
//     lookup, the header's `string(head) != magic` check);
//   - interface boxing: a non-pointer, non-constant, non-zero-size
//     value passed as a fixed-arity interface-typed argument (variadic
//     ...any parameters are the formatting-API shape, judged by the
//     call as a whole);
//   - escaping closures — function literals passed, returned, sent, or
//     stored into fields; literals that stay local (assigned to a
//     local variable, immediately invoked, or deferred) are exempt;
//   - any call into package fmt.
//
// Calls that cannot be resolved statically (interface methods,
// function values) end the walk at that edge: the closure is the
// static one, and the runtime tests remain the backstop for dynamic
// dispatch. `make` is deliberately not flagged — the hot path's idiom
// is amortized, pre-sized buffers whose growth the runtime tests
// already bound — and findings are deduplicated per position with the
// first (alphabetically smallest) root recorded as provenance.
package hotpathalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"bglpred/internal/analysis"
)

// HotpathMarker is the doc-comment annotation that marks a root.
const HotpathMarker = "//bglvet:hotpath"

// Analyzer is the hot-path allocation checker.
var Analyzer = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc: "no allocating constructs (literals, string conversions, boxing, escaping " +
		"closures, fmt) reachable from //bglvet:hotpath roots",
	Run:    run,
	Finish: finish,
}

// alloc is one allocating construct found in a function body.
type alloc struct {
	pos  token.Position
	what string
}

// fnInfo is the per-function summary Finish stitches into the closure.
type fnInfo struct {
	key     string
	hot     bool
	callees []string
	allocs  []alloc
}

type result struct {
	funcs []*fnInfo
}

func run(pass *analysis.Pass) (any, error) {
	res := &result{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			info := &fnInfo{key: analysis.FuncKey(fn), hot: isHot(fd)}
			if info.key == "" {
				continue
			}
			scanBody(pass, fd.Body, info)
			res.funcs = append(res.funcs, info)
		}
	}
	return res, nil
}

// isHot reports whether the declaration carries the hotpath marker.
func isHot(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == HotpathMarker || strings.HasPrefix(c.Text, HotpathMarker+" ") {
			return true
		}
	}
	return false
}

// scanBody collects callees and allocating constructs.
func scanBody(pass *analysis.Pass, body *ast.BlockStmt, info *fnInfo) {
	pos := func(n ast.Node) token.Position { return pass.Fset.Position(n.Pos()) }
	analysis.WalkStack(body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			switch typeOf(pass, n).(type) {
			case *types.Map:
				info.allocs = append(info.allocs, alloc{pos(n), "map literal"})
			case *types.Slice:
				info.allocs = append(info.allocs, alloc{pos(n), "slice literal"})
			default:
				// A plain value literal stays on the stack; the
				// escaping form is &T{...}, handled at the UnaryExpr.
			}
			return true
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					info.allocs = append(info.allocs, alloc{pos(n), "&composite literal (heap escape)"})
				}
			}
			return true
		case *ast.BinaryExpr:
			if n.Op == token.ADD && !isConst(pass, n) {
				if b, ok := typeOf(pass, n).(*types.Basic); ok && b.Info()&types.IsString != 0 {
					info.allocs = append(info.allocs, alloc{pos(n), "string concatenation"})
				}
			}
			return true
		case *ast.FuncLit:
			if what := escapingLit(n, stack); what != "" {
				info.allocs = append(info.allocs, alloc{pos(n), what})
			}
			// Walk the literal's body too: it runs on the hot path
			// unless it escaped, and if it escaped that is already the
			// finding.
			return true
		case *ast.CallExpr:
			scanCall(pass, n, stack, info)
			return true
		}
		return true
	})
	sort.Slice(info.allocs, func(i, j int) bool {
		return posLess(info.allocs[i].pos, info.allocs[j].pos)
	})
}

// scanCall handles conversions, fmt calls, boxing, and callee
// collection.
func scanCall(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node, info *fnInfo) {
	pos := pass.Fset.Position(call.Pos())

	// Type conversion?
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type, typeOf(pass, call.Args[0])
		if isStringByte(to, from) || isStringByte(from, to) {
			if !mapIndexOperand(call, stack) && !comparisonOperand(call, stack) && !isConst(pass, call.Args[0]) {
				info.allocs = append(info.allocs, alloc{pos, "string ↔ []byte conversion (copies)"})
			}
		}
		return
	}

	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		info.allocs = append(info.allocs, alloc{pos, "fmt." + fn.Name() + " call"})
		return // fmt's own boxing is subsumed by this finding
	}
	if key := analysis.FuncKey(fn); key != "" {
		info.callees = append(info.callees, key)
	}

	// Interface boxing of arguments.
	sig, ok := typeOf(pass, call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		if sig.Variadic() && i >= params.Len()-1 {
			// Variadic interface parameters are the formatting-API shape
			// (wiref, logf, fmt itself): there the call is the
			// actionable unit — flagged above when it is fmt, excused
			// as a whole otherwise — not each boxed argument.
			break
		}
		if i >= params.Len() {
			continue
		}
		pt := params.At(i).Type()
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := typeOf(pass, arg)
		if at == nil || isConst(pass, arg) || pointerShaped(at) || zeroSized(at) {
			continue
		}
		if _, isIface := at.Underlying().(*types.Interface); isIface {
			continue
		}
		info.allocs = append(info.allocs, alloc{
			pass.Fset.Position(arg.Pos()),
			"interface boxing of non-pointer " + at.String() + " argument",
		})
	}
}

// escapingLit classifies a function literal's fate from its parents;
// "" means it provably stays local (no heap escape).
func escapingLit(lit *ast.FuncLit, stack []ast.Node) string {
	if len(stack) == 0 {
		return "escaping closure"
	}
	parent := stack[len(stack)-1]
	switch p := parent.(type) {
	case *ast.ParenExpr:
		if len(stack) < 2 {
			return "escaping closure"
		}
		parent = stack[len(stack)-2]
		if c, ok := parent.(*ast.CallExpr); ok && ast.Unparen(c.Fun) == lit {
			return "" // (func(){...})(): immediately invoked
		}
		return "escaping closure"
	case *ast.CallExpr:
		if ast.Unparen(p.Fun) == lit {
			return "" // IIFE: invoked on the spot, does not escape
		}
		return "closure passed as argument (escapes)"
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			switch ast.Unparen(lhs).(type) {
			case *ast.Ident:
				return "" // local helper, invoked in place
			}
		}
		return "closure stored outside the frame (escapes)"
	case *ast.ReturnStmt:
		return "closure returned (escapes)"
	case *ast.SendStmt:
		return "closure sent on a channel (escapes)"
	case *ast.KeyValueExpr, *ast.CompositeLit:
		return "closure stored in a literal (escapes)"
	case *ast.DeferStmt, *ast.GoStmt:
		return "" // spawn/defer discipline is other analyzers' domain
	case *ast.ValueSpec:
		return "" // var f = func(){...}: local helper
	}
	return ""
}

// mapIndexOperand reports whether the conversion is used directly as a
// map index — m[string(b)] — which the compiler performs without
// allocating.
func mapIndexOperand(call *ast.CallExpr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	idx, ok := stack[len(stack)-1].(*ast.IndexExpr)
	return ok && idx.Index == call
}

// comparisonOperand reports whether the conversion is an operand of a
// comparison — string(b) == magic — which the compiler also performs
// without materializing the string.
func comparisonOperand(call *ast.CallExpr, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	bin, ok := stack[len(stack)-1].(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch bin.Op {
	case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
		return bin.X == call || bin.Y == call
	}
	return false
}

// zeroSized reports types whose values occupy no memory: boxing one
// hands out the runtime's shared zero base, no allocation. Untyped
// operands size as their default type; Sizeof panics on untyped input.
func zeroSized(t types.Type) bool {
	t = types.Default(t)
	if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsUntyped != 0 {
		return false
	}
	s := types.SizesFor("gc", "amd64")
	if s == nil {
		return false
	}
	return s.Sizeof(t) == 0
}

func typeOf(pass *analysis.Pass, e ast.Expr) types.Type {
	if tv, ok := pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func isConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// isStringByte reports a (string, []byte) type pair in that order.
func isStringByte(a, b types.Type) bool {
	ab, ok := a.Underlying().(*types.Basic)
	if !ok || ab.Info()&types.IsString == 0 {
		return false
	}
	sl, ok := b.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	el, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && el.Kind() == types.Byte
}

// pointerShaped reports types whose interface representation is a
// plain pointer word and therefore boxes without copying the value.
// Untyped nil counts: it boxes to the nil interface, no allocation.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return u.Kind() == types.UntypedNil
	}
	return false
}

func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

// finish computes the static call closure of every hot root across
// the admitted packages and reports the allocating constructs inside
// it, deduplicated by position, tagged with the root that reached
// them.
func finish(results []analysis.PkgResult, report func(analysis.Finding)) {
	byKey := make(map[string]*fnInfo)
	var roots []string
	for _, r := range results {
		res, ok := r.Result.(*result)
		if !ok || res == nil {
			continue
		}
		for _, f := range res.funcs {
			byKey[f.key] = f
			if f.hot {
				roots = append(roots, f.key)
			}
		}
	}
	sort.Strings(roots)

	// BFS per root in sorted order; the first root to reach a function
	// owns its findings.
	rootOf := make(map[string]string)
	for _, root := range roots {
		queue := []string{root}
		for len(queue) > 0 {
			key := queue[0]
			queue = queue[1:]
			if _, seen := rootOf[key]; seen {
				continue
			}
			rootOf[key] = root
			f := byKey[key]
			if f == nil {
				continue
			}
			for _, c := range f.callees {
				if _, seen := rootOf[c]; !seen && byKey[c] != nil {
					queue = append(queue, c)
				}
			}
		}
	}

	var keys []string
	for key := range rootOf {
		if byKey[key] != nil {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	seenPos := make(map[token.Position]bool)
	for _, key := range keys {
		f := byKey[key]
		for _, a := range f.allocs {
			if seenPos[a.pos] {
				continue
			}
			seenPos[a.pos] = true
			report(analysis.Finding{
				Analyzer: "hotpathalloc",
				Pos:      a.pos,
				Message: a.what + " on the hot path (reached from " +
					shortKey(rootOf[key]) + ")",
				SuggestedFix: "hoist the allocation out of the hot path, reuse an amortized buffer, " +
					"or move the work to the slow path",
			})
		}
	}
}

// shortKey trims the module prefix from a function key.
func shortKey(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}
