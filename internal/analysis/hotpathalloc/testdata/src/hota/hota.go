// Package hota holds the annotated root; the allocation it reaches
// lives across the package boundary in hotb, so only the Finish hook
// stitching both packages' summaries can see it.
package hota

import "hotb"

//bglvet:hotpath
func Root(vals []int) int {
	return hotb.Sum(vals)
}
