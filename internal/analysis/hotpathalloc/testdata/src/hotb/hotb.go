// Package hotb is not annotated itself; Sum is hot only because
// hota.Root reaches it, and Scratch is cold because nothing hot does.
package hotb

func Sum(vals []int) int {
	scratch := []int{0} // want `slice literal on the hot path \(reached from hota\.Root\)`
	for _, v := range vals {
		scratch[0] += v
	}
	return scratch[0]
}

func Scratch() []int {
	return []int{1, 2, 3}
}
