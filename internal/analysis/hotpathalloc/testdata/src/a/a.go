// Corpus for the hotpathalloc analyzer: allocating constructs inside
// the //bglvet:hotpath closure are reported; the same constructs
// outside it, and the recognized no-alloc forms inside it, are not.
package a

import "fmt"

var n int

// Root is the annotated hot entry point.
//
//bglvet:hotpath
func Root(b []byte, m map[string]int, vals []int) int {
	total := m[string(b)] // no finding: map-index conversion is the compiler's no-alloc form
	total += clean(vals)
	total += dirty(b)
	if noAllocForms(b) {
		total++
	}
	return total
}

// clean is in the closure and allocation-free: amortized index math
// only, plus the exempt closure shapes.
func clean(vals []int) int {
	sum := func(a, b int) int { return a + b } // local helper: no escape
	s := 0
	for _, v := range vals {
		s = sum(s, v)
	}
	s += func() int { return 1 }() // IIFE: no escape
	defer func() { n = s }()       // deferred: other analyzers' domain
	return s
}

// dirty is reached from Root; every construct below is a finding.
func dirty(b []byte) int {
	xs := []int{1, 2, 3}          // want `slice literal on the hot path \(reached from a\.Root\)`
	counts := map[string]int{}    // want `map literal on the hot path`
	p := &pair{x: 1}              // want `&composite literal \(heap escape\) on the hot path`
	s := string(b)                // want `string ↔ \[\]byte conversion \(copies\) on the hot path`
	bs := []byte(s)               // want `string ↔ \[\]byte conversion \(copies\) on the hot path`
	s2 := s + "suffix"            // want `string concatenation on the hot path`
	take(len(xs))                 // want `interface boxing of non-pointer int argument`
	msg := fmt.Sprintf("%d", n)   // want `fmt\.Sprintf call on the hot path`
	hold(func() int { return 1 }) // want `closure passed as argument \(escapes\) on the hot path`
	return len(xs) + len(counts) + p.x + len(bs) + len(s2) + len(msg)
}

// noAllocForms is in the closure; every construct below is one the
// compiler or runtime performs without allocating, so none is a
// finding.
func noAllocForms(b []byte) bool {
	logf("count=%d and %v", n, empty{}) // variadic ...any: judged by the call, not per boxed argument
	take(empty{})                       // zero-size value boxes to the shared zero base
	return string(b) == "magic"         // comparison operand: no string materialized
}

func logf(format string, args ...any) { _ = format }

type pair struct{ x int }

type empty struct{}

func take(v any) { _ = v }

func hold(f func() int) { n = f() }

// notReached has the same constructs but is outside the closure: the
// runtime tests govern it, not this analyzer.
func notReached(b []byte) string {
	xs := []int{1, 2, 3}
	_ = xs
	return string(b) + fmt.Sprint(n)
}
