package lockorder_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bglpred/internal/analysis"
	"bglpred/internal/analysis/analysistest"
	"bglpred/internal/analysis/lockorder"
)

func TestLockorderCorpus(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "a")
}

// TestCrossPackageCycle drives the Finish hook across a multi-package
// corpus: locka holds its lock while calling into lockc, lockb holds
// lockc's lock while calling into locka. No single package contains a
// cycle — only the whole-program graph stitched from the three
// summaries does.
func TestCrossPackageCycle(t *testing.T) {
	findings := analysistest.Run(t, lockorder.Analyzer, "lockc", "locka", "lockb")
	analysistest.MustContain(t, findings,
		`lock-order cycle: locka\.Mu → lockc\.Mu .*via lockc\.Touch.*lockc\.Mu → locka\.Mu .*via locka\.Touch`)
}

// TestNoCycleWithoutClosingPackage proves the cycle above is genuinely
// cross-package: analyzing lockc and locka without lockb (whose BA
// holds lockc.Mu into locka) leaves the graph acyclic.
func TestNoCycleWithoutClosingPackage(t *testing.T) {
	srcRoot, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	l.ExtraRoots = map[string]string{
		"lockc": filepath.Join(srcRoot, "lockc"),
		"locka": filepath.Join(srcRoot, "locka"),
	}
	var pkgs []*analysis.Package
	for _, name := range []string{"lockc", "locka"} {
		pkg, err := l.Load(name)
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, pkg)
	}
	suite := &analysis.Suite{Analyzers: []*analysis.Analyzer{lockorder.Analyzer}}
	findings, err := suite.Run(l, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if strings.Contains(f.Message, "cycle") {
			t.Errorf("cycle reported without the closing package: %v", f)
		}
	}
}

// runOn analyzes one synthesized package with lockorder and returns
// the surviving findings — the suppression-semantics harness.
func runOn(t *testing.T, src string) []analysis.Finding {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	l.ExtraRoots = map[string]string{"a": dir}
	pkg, err := l.Load("a")
	if err != nil {
		t.Fatal(err)
	}
	s := &analysis.Suite{Analyzers: []*analysis.Analyzer{lockorder.Analyzer}}
	findings, err := s.Run(l, []*analysis.Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

// TestIgnoreSilencesExactlyOneFinding: two identical re-entry
// deadlocks, one reasoned ignore — exactly the annotated one goes
// quiet.
func TestIgnoreSilencesExactlyOneFinding(t *testing.T) {
	findings := runOn(t, `package a

import "sync"

type S struct {
	mu sync.Mutex
	n  int
}

func excused(s *S) {
	s.mu.Lock()
	//bglvet:ignore lockorder corpus demonstration of single-finding suppression
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

func unexcused(s *S) {
	s.mu.Lock()
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}
`)
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want exactly 1 (the unexcused site): %v", len(findings), findings)
	}
	if f := findings[0]; f.Analyzer != "lockorder" || f.Pos.Line != 20 {
		t.Fatalf("surviving finding is not the unexcused site: %v", f)
	}
}

// TestStaleIgnoreReported: a lockorder ignore on clean code is itself
// a finding.
func TestStaleIgnoreReported(t *testing.T) {
	findings := runOn(t, `package a

import "sync"

type S struct {
	mu sync.Mutex
	n  int
}

func clean(s *S) {
	//bglvet:ignore lockorder the deadlock here was fixed long ago
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}
`)
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1 stale-ignore report: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != analysis.MetaName || !strings.Contains(f.Message, "stale ignore") {
		t.Fatalf("want a stale-ignore meta finding, got: %v", f)
	}
}
