// Package lockorder enforces two mutex disciplines the concurrency
// layer (serve's shard supervisors, the cluster gate's replay loops,
// the ledger's group-commit leader, lifecycle's retrain path) depends
// on but no test can exhaustively exercise:
//
//   - A global lock ORDER. Every sync.Mutex/RWMutex field is a node
//     keyed by its declaration ("pkg.(Type).field"); acquiring B while
//     A is held is an edge A→B, including acquisitions reached through
//     calls (f holds A and calls g, g locks B — even when g lives in
//     another package, which is why the edge collection runs in the
//     whole-program Finish hook over per-package call summaries). A
//     cycle in that graph is a potential deadlock: two goroutines
//     walking the cycle from different entry points block each other
//     forever, and no chaos seed is guaranteed to find the
//     interleaving.
//
//   - No skippable unlocks. A Lock whose Unlock is not deferred must
//     be released on every path; a return (or an implicit fall-off of
//     the function end) reached while the lock is still held leaks it,
//     and the next acquirer deadlocks. The walk is path-sensitive with
//     must-hold merging: a lock released on both arms of a branch is
//     released, a lock released on only one arm stays held on the
//     other, and a deferred unlock protects every path at once.
//
// A Lock on a path that already holds the same lock instance is
// reported directly: sync.Mutex is not reentrant, so that goroutine
// deadlocks against itself with certainty.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"bglpred/internal/analysis"
)

// Analyzer is the lock-ordering and lock-leak checker.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "build the cross-package lock-ordering graph and report cycles (potential " +
		"deadlocks), plus non-deferred Unlocks skippable on an early-return path",
	Run:    run,
	Finish: finish,
}

// Edge is one observed acquisition order: To was locked while From
// was held.
type Edge struct {
	From, To string
	Pos      token.Position
	// Via names the callee the acquisition was reached through, ""
	// for a direct Lock in the holding function.
	Via string
}

// fnSummary is the per-function slice of the whole-program graph.
type fnSummary struct {
	key string
	// directLocks are lock keys this function acquires in its own body.
	directLocks []string
	// callees are the statically resolved functions this body calls.
	callees []string
	// heldCalls are calls made while at least one keyed lock is held.
	heldCalls []heldCall
	// edges are direct held→acquire observations.
	edges []Edge
}

type heldCall struct {
	held   []string
	callee string
	pos    token.Position
}

// result is the per-package Run result consumed by finish.
type result struct {
	funcs []*fnSummary
}

func run(pass *analysis.Pass) (any, error) {
	res := &result{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sum := &fnSummary{key: funcDeclKey(pass, fd)}
			w := &walker{pass: pass, sum: sum, held: map[string]*heldLock{}}
			if !w.block(fd.Body) {
				// Implicit return at the closing brace: anything still
				// held here is held forever.
				w.checkReturn(fd.Body.Rbrace)
			}
			// Function literals run with their own (empty) lock
			// context, but their acquisitions and calls belong to the
			// enclosing function's summary — a closure invoked inline
			// (flush helpers, deferred cleanups) acquires under
			// whatever the encloser holds at the call site, which the
			// conservative closure in finish over-approximates.
			// Literals launched with `go` are excluded: they run on
			// their own goroutine with provably nothing inherited.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					if _, isLit := g.Call.Fun.(*ast.FuncLit); isLit {
						lw := &walker{pass: pass, sum: sum, held: map[string]*heldLock{}, litOnly: true}
						lw.block(g.Call.Fun.(*ast.FuncLit).Body)
						return false
					}
					return true
				}
				lit, ok := n.(*ast.FuncLit)
				if !ok {
					return true
				}
				lw := &walker{pass: pass, sum: sum, held: map[string]*heldLock{}}
				if !lw.block(lit.Body) {
					lw.checkReturn(lit.Body.Rbrace)
				}
				return false
			})
			res.funcs = append(res.funcs, sum)
		}
	}
	return res, nil
}

// funcDeclKey resolves a declaration to its FuncKey.
func funcDeclKey(pass *analysis.Pass, fd *ast.FuncDecl) string {
	fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	return analysis.FuncKey(fn)
}

// heldLock is one lock the current path holds.
type heldLock struct {
	path     string // instance selector path, e.g. "l.mu"
	key      string // declaration key, "" for locals
	pos      token.Pos
	method   string // Lock or RLock
	deferred bool   // a deferred Unlock protects every path
}

type walker struct {
	pass *analysis.Pass
	sum  *fnSummary
	held map[string]*heldLock
	// litOnly marks a goroutine-literal walk: acquisitions and calls
	// still feed the summary (the goroutine imposes its own order),
	// but leaks at its end are the goroutine's to keep — a worker
	// loop may hold a lock across its whole life by design.
	litOnly bool
}

func (w *walker) clone() *walker {
	held := make(map[string]*heldLock, len(w.held))
	for k, v := range w.held {
		cp := *v
		held[k] = &cp
	}
	return &walker{pass: w.pass, sum: w.sum, held: held, litOnly: w.litOnly}
}

// merge keeps only locks held in both outcomes (must-hold); a
// deferred unlock on either side protects the survivor.
func (w *walker) merge(a, b map[string]*heldLock) {
	out := make(map[string]*heldLock, len(a))
	for k, va := range a {
		if vb, ok := b[k]; ok {
			cp := *va
			cp.deferred = va.deferred || vb.deferred
			out[k] = &cp
		}
	}
	w.held = out
}

// block walks statements in order; true means the path terminated
// (return/branch), so following statements are unreachable.
func (w *walker) block(b *ast.BlockStmt) bool {
	for _, s := range b.List {
		if w.stmt(s) {
			return true
		}
	}
	return false
}

func (w *walker) stmt(s ast.Stmt) (term bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.block(s)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok && w.lockOp(call) {
			return false
		}
		w.expr(s.X)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e)
		}
		for _, e := range s.Lhs {
			w.expr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v)
					}
				}
			}
		}
	case *ast.DeferStmt:
		if path := w.unlockPath(s.Call); path != "" {
			if h, ok := w.held[path]; ok {
				h.deferred = true
			}
			return false
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			// A deferred closure that unlocks protects the path just
			// like a direct deferred Unlock does.
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if c, ok := n.(*ast.CallExpr); ok {
					if p := w.unlockPath(c); p != "" {
						if h, ok := w.held[p]; ok {
							h.deferred = true
						}
					}
				}
				return true
			})
		}
		w.expr(s.Call)
	case *ast.GoStmt:
		// The goroutine body is walked separately with an empty
		// context; only argument expressions evaluate here.
		for _, a := range s.Call.Args {
			w.expr(a)
		}
		if _, isLit := s.Call.Fun.(*ast.FuncLit); !isLit {
			w.expr(s.Call.Fun)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r)
		}
		w.checkReturn(s.Pos())
		return true
	case *ast.BranchStmt:
		// break/continue/goto leave this block; the lock state rejoins
		// at a point this linear walk does not model, so treat the
		// path as terminated here (conservative for must-hold).
		return true
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.expr(s.Cond)
		tw := w.clone()
		tterm := tw.block(s.Body)
		if s.Else == nil {
			if !tterm {
				w.merge(w.held, tw.held)
			}
			return false
		}
		ew := w.clone()
		eterm := ew.stmt(s.Else)
		switch {
		case tterm && eterm:
			return true
		case tterm:
			w.held = ew.held
		case eterm:
			w.held = tw.held
		default:
			w.merge(tw.held, ew.held)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		bw := w.clone()
		bterm := bw.block(s.Body)
		if s.Post != nil {
			bw.stmt(s.Post)
		}
		if !bterm {
			w.merge(w.held, bw.held)
		}
	case *ast.RangeStmt:
		w.expr(s.X)
		bw := w.clone()
		if !bw.block(s.Body) {
			w.merge(w.held, bw.held)
		}
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		w.clauses(s)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt)
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.IncDecStmt:
		w.expr(s.X)
	}
	return false
}

// clauses walks each case of a switch/type-switch/select on its own
// clone and must-hold-merges the fall-through outcomes. A missing
// default keeps the incoming state in the merge (no case may match).
func (w *walker) clauses(s ast.Stmt) {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	outcomes := []map[string]*heldLock{}
	for _, c := range body.List {
		cw := w.clone()
		term := false
		switch cc := c.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			for _, e := range cc.List {
				cw.expr(e)
			}
			for _, st := range cc.Body {
				if term = cw.stmt(st); term {
					break
				}
			}
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			} else {
				cw.stmt(cc.Comm)
			}
			for _, st := range cc.Body {
				if term = cw.stmt(st); term {
					break
				}
			}
		}
		if !term {
			outcomes = append(outcomes, cw.held)
		}
	}
	if !hasDefault {
		outcomes = append(outcomes, w.held)
	}
	if len(outcomes) == 0 {
		return // every clause terminates and a default exists
	}
	merged := outcomes[0]
	for _, o := range outcomes[1:] {
		w.merge(merged, o)
		merged = w.held
	}
	w.held = merged
}

// checkReturn reports locks still held (and not defer-protected) when
// a path leaves the function.
func (w *walker) checkReturn(at token.Pos) {
	if w.litOnly {
		return
	}
	var leaked []*heldLock
	for _, h := range w.held {
		if !h.deferred {
			leaked = append(leaked, h)
		}
	}
	sort.Slice(leaked, func(i, j int) bool { return leaked[i].path < leaked[j].path })
	for _, h := range leaked {
		w.pass.Report(analysis.Diagnostic{
			Pos: at,
			Message: fmt.Sprintf("this return path leaves %s locked (%s at %s is not deferred); the next %s deadlocks",
				h.path, h.method, w.pass.Fset.Position(h.pos), h.method),
			SuggestedFix: fmt.Sprintf("defer %s.Unlock() right after the Lock, or unlock on this path", h.path),
		})
	}
}

// lockOp handles x.mu.Lock()-family statements: updates held state,
// records graph edges, reports same-instance re-acquisition. Reports
// whether the call was a lock operation.
func (w *walker) lockOp(call *ast.CallExpr) bool {
	name := w.lockMethod(call)
	if name == "" {
		return false
	}
	sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	path := analysis.PathString(sel.X)
	if path == "" {
		return true // m[i].mu etc.: untrackable instance, conservative no-op
	}
	switch name {
	case "Lock", "RLock":
		if prev, ok := w.held[path]; ok {
			w.pass.Report(analysis.Diagnostic{
				Pos: call.Pos(),
				Message: fmt.Sprintf("%s.%s while %s is already held (%s at %s); sync mutexes are not reentrant, this goroutine deadlocks",
					path, name, path, prev.method, w.pass.Fset.Position(prev.pos)),
				SuggestedFix: "split the locked region or take the lock once at the outermost caller",
			})
			return true
		}
		key := w.lockKey(sel.X)
		if key != "" {
			w.sum.directLocks = append(w.sum.directLocks, key)
			for _, h := range w.held {
				if h.key != "" && h.key != key {
					w.sum.edges = append(w.sum.edges, Edge{
						From: h.key, To: key, Pos: w.pass.Fset.Position(call.Pos()),
					})
				}
			}
		}
		w.held[path] = &heldLock{path: path, key: key, pos: call.Pos(), method: name}
	case "Unlock", "RUnlock":
		delete(w.held, path)
	}
	return true
}

// lockMethod returns the method name for sync.Mutex/RWMutex
// Lock/RLock/Unlock/RUnlock calls, else "".
func (w *walker) lockMethod(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return ""
	}
	fn, ok := w.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	rt := sig.Recv().Type()
	if analysis.IsNamed(rt, "sync", "Mutex") || analysis.IsNamed(rt, "sync", "RWMutex") {
		return sel.Sel.Name
	}
	return ""
}

// unlockPath returns the instance path for a deferred
// x.mu.Unlock()/RUnlock() call, "" otherwise.
func (w *walker) unlockPath(call *ast.CallExpr) string {
	name := w.lockMethod(call)
	if name != "Unlock" && name != "RUnlock" {
		return ""
	}
	sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return analysis.PathString(sel.X)
}

// lockKey resolves the mutex expression (the receiver of a Lock call)
// to its declaration key: "pkg.(Type).field" for struct fields,
// "pkg.name" for package-level vars, "" for locals.
func (w *walker) lockKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if selx, ok := w.pass.TypesInfo.Selections[e]; ok && selx.Kind() == types.FieldVal {
			obj := selx.Obj()
			if named := analysis.NamedType(selx.Recv()); named != nil && obj.Pkg() != nil {
				return obj.Pkg().Path() + ".(" + named.Obj().Name() + ")." + obj.Name()
			}
			return ""
		}
		// Qualified package-level var: pkg.Mu.
		if v, ok := w.pass.TypesInfo.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil &&
			v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
	case *ast.Ident:
		if v, ok := w.pass.TypesInfo.Uses[e].(*types.Var); ok && v.Pkg() != nil &&
			v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
	}
	return ""
}

// expr records static calls (for the acquisition closure) and calls
// made under held locks (for cross-function edges). Function literals
// are walked separately.
func (w *walker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(w.pass.TypesInfo, call)
		key := analysis.FuncKey(fn)
		if key == "" {
			return true
		}
		w.sum.callees = append(w.sum.callees, key)
		var held []string
		for _, h := range w.held {
			if h.key != "" {
				held = append(held, h.key)
			}
		}
		if len(held) > 0 {
			sort.Strings(held)
			w.sum.heldCalls = append(w.sum.heldCalls, heldCall{
				held: held, callee: key, pos: w.pass.Fset.Position(call.Pos()),
			})
		}
		return true
	})
}

// finish stitches the per-package summaries into one graph: the lock
// set each function may acquire (directly or transitively) is closed
// over the call graph by fixpoint, held calls contribute edges into
// their callee's closure, and every cycle is reported once.
func finish(results []analysis.PkgResult, report func(analysis.Finding)) {
	var funcs []*fnSummary
	for _, r := range results {
		res, ok := r.Result.(*result)
		if !ok || res == nil {
			continue
		}
		funcs = append(funcs, res.funcs...)
	}

	// acquire[f] = every lock key f may take, transitively.
	acquire := make(map[string]map[string]bool)
	callees := make(map[string][]string)
	for _, f := range funcs {
		if f.key == "" {
			continue
		}
		set := acquire[f.key]
		if set == nil {
			set = make(map[string]bool)
			acquire[f.key] = set
		}
		for _, l := range f.directLocks {
			set[l] = true
		}
		callees[f.key] = append(callees[f.key], f.callees...)
	}
	for changed := true; changed; {
		changed = false
		for key, set := range acquire {
			for _, c := range callees[key] {
				for l := range acquire[c] {
					if !set[l] {
						set[l] = true
						changed = true
					}
				}
			}
		}
	}

	type edgeKey struct{ from, to string }
	edges := make(map[edgeKey]Edge)
	addEdge := func(e Edge) {
		k := edgeKey{e.From, e.To}
		if prev, ok := edges[k]; ok {
			// Deterministic representative: keep the smallest position.
			if posLess(prev.Pos, e.Pos) {
				return
			}
		}
		edges[k] = e
	}
	for _, f := range funcs {
		for _, e := range f.edges {
			addEdge(e)
		}
		for _, hc := range f.heldCalls {
			for to := range acquire[hc.callee] {
				for _, from := range hc.held {
					if from != to {
						addEdge(Edge{From: from, To: to, Pos: hc.pos, Via: hc.callee})
					}
				}
			}
		}
	}

	adj := make(map[string][]string)
	for k := range edges {
		adj[k.from] = append(adj[k.from], k.to)
	}
	for _, tos := range adj {
		sort.Strings(tos)
	}

	for _, cycle := range findCycles(adj) {
		var parts []string
		var first *Edge
		for i, from := range cycle {
			to := cycle[(i+1)%len(cycle)]
			e := edges[edgeKey{from, to}]
			if first == nil {
				first = &e
			}
			via := ""
			if e.Via != "" {
				via = " via " + shortFunc(e.Via)
			}
			parts = append(parts, fmt.Sprintf("%s → %s (%s%s)", shortLock(from), shortLock(to), e.Pos, via))
		}
		report(analysis.Finding{
			Analyzer: "lockorder",
			Pos:      first.Pos,
			Message: fmt.Sprintf("lock-order cycle: %s; goroutines taking these locks in different orders can deadlock",
				strings.Join(parts, ", ")),
			SuggestedFix: "impose a single global acquisition order (document it on the lock fields) or collapse the locks",
		})
	}
}

func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

// shortLock trims the module prefix from a lock key for readability.
func shortLock(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}

func shortFunc(key string) string { return shortLock(key) }

// findCycles returns every elementary cycle's node set, canonicalized
// (rotated to start at the smallest node, deduplicated, sorted).
// Graphs here are tiny, so a DFS per node is plenty.
func findCycles(adj map[string][]string) [][]string {
	nodes := make([]string, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	seen := make(map[string]bool) // canonical cycle signature
	var cycles [][]string
	var path []string
	onPath := make(map[string]int)

	var dfs func(n string)
	dfs = func(n string) {
		if i, ok := onPath[n]; ok {
			cyc := append([]string(nil), path[i:]...)
			cyc = canonical(cyc)
			sig := strings.Join(cyc, "\x00")
			if !seen[sig] {
				seen[sig] = true
				cycles = append(cycles, cyc)
			}
			return
		}
		onPath[n] = len(path)
		path = append(path, n)
		for _, m := range adj[n] {
			dfs(m)
		}
		path = path[:len(path)-1]
		delete(onPath, n)
	}
	for _, n := range nodes {
		dfs(n)
	}
	sort.Slice(cycles, func(i, j int) bool {
		return strings.Join(cycles[i], "\x00") < strings.Join(cycles[j], "\x00")
	})
	return cycles
}

// canonical rotates a cycle to start at its smallest node.
func canonical(cyc []string) []string {
	min := 0
	for i, n := range cyc {
		if n < cyc[min] {
			min = i
		}
	}
	out := make([]string, 0, len(cyc))
	out = append(out, cyc[min:]...)
	out = append(out, cyc[:min]...)
	return out
}
