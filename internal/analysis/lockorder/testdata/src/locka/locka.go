// Package locka takes its own lock first, then calls into lockc —
// the locka.Mu → lockc.Mu half of the cross-package cycle.
package locka

import (
	"sync"

	"lockc"
)

var Mu sync.Mutex

var N int

// Touch lets other packages acquire locka.Mu through a call.
func Touch() {
	Mu.Lock()
	defer Mu.Unlock()
	N++
}

func AB() {
	Mu.Lock()
	defer Mu.Unlock()
	lockc.Touch() // want `lock-order cycle`
}
