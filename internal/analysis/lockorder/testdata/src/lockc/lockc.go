// Package lockc holds the shared package-level lock of the
// cross-package corpus. locka and lockb each combine it with their
// own locks in opposite orders; only the whole-program Finish hook,
// stitching the three per-package summaries together, can see the
// resulting cycle.
package lockc

import "sync"

var Mu sync.Mutex

var N int

// Touch acquires and releases Mu; callers holding their own lock
// create an edge into Mu through the acquire-set fixpoint.
func Touch() {
	Mu.Lock()
	defer Mu.Unlock()
	N++
}
