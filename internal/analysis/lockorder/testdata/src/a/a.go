// Corpus for the lockorder analyzer: intra-package order cycles,
// skippable unlocks on early-return paths, self-deadlocks — and the
// disciplined shapes the repo actually uses, which must stay silent.
package a

import (
	"errors"
	"sync"
)

type S struct {
	mu sync.Mutex
	n  int
}

type T struct {
	mu sync.RWMutex
	n  int
}

// --- lock-order cycle (reported once, via the Finish hook) ---

func ab(s *S, t *T) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t.mu.Lock() // want `lock-order cycle`
	defer t.mu.Unlock()
	t.n = s.n
}

func ba(s *S, t *T) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n = t.n
}

// --- skippable unlock on an early-return path ---

func leakReturn(s *S, bad bool) error {
	s.mu.Lock()
	if bad {
		return errors.New("bad") // want `leaves s\.mu locked`
	}
	s.mu.Unlock()
	return nil
}

func leakEnd(s *S) {
	s.mu.Lock()
	s.n++
} // want `leaves s\.mu locked`

// --- self-deadlock: sync mutexes are not reentrant ---

func reenter(s *S) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mu.Lock() // want `not reentrant`
	s.n++
}

// --- disciplined shapes: no findings ---

// deferProtected: the idiomatic form; every path is covered.
func deferProtected(s *S, bad bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if bad {
		return errors.New("bad")
	}
	s.n++
	return nil
}

// perPathUnlock is the ledger.Append shape: the unlock is not
// deferred, but every return path releases first.
func perPathUnlock(s *S, bad bool) error {
	s.mu.Lock()
	if bad {
		s.mu.Unlock()
		return errors.New("bad")
	}
	s.n++
	s.mu.Unlock()
	return nil
}

// bothArmsUnlock: must-hold merging sees the lock released on every
// surviving branch.
func bothArmsUnlock(s *S, bad bool) {
	s.mu.Lock()
	if bad {
		s.n = 0
		s.mu.Unlock()
	} else {
		s.n++
		s.mu.Unlock()
	}
}

// deferredClosure releases through a deferred closure; that protects
// the early return just like a direct deferred Unlock.
func deferredClosure(s *S, bad bool) error {
	s.mu.Lock()
	defer func() {
		s.n++
		s.mu.Unlock()
	}()
	if bad {
		return errors.New("bad")
	}
	return nil
}

// condLoop is the group-commit leader shape: a wait loop that keeps
// the lock across iterations and releases on the way out.
func condLoop(s *S, c *sync.Cond) {
	s.mu.Lock()
	for s.n == 0 {
		c.Wait()
	}
	s.n--
	s.mu.Unlock()
}

// workerHoldsForever: a goroutine literal may hold a lock across its
// whole life by design; leaks at its end are not reported.
func workerHoldsForever(s *S) {
	go func() {
		s.mu.Lock()
		s.n++
	}()
}

// rlockOrdered takes the same two locks as ab/ba but in the ab order,
// so it adds no new edge and no new cycle.
func rlockOrdered(s *S, t *T) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	t.mu.RLock()
	defer t.mu.RUnlock()
	return s.n + t.n
}
