// Package lockb closes the cross-package cycle: it holds lockc.Mu
// while calling into locka, the lockc.Mu → locka.Mu half. Neither
// this package nor locka alone contains a cycle — only the Finish
// hook over all three summaries does.
package lockb

import (
	"lockc"

	"locka"
)

func BA() {
	lockc.Mu.Lock()
	defer lockc.Mu.Unlock()
	locka.Touch()
}
