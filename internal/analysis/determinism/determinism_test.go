package determinism_test

import (
	"testing"

	"bglpred/internal/analysis/analysistest"
	"bglpred/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	findings := analysistest.Run(t, determinism.Analyzer, "a")
	if want := 6; len(findings) != want {
		t.Errorf("got %d findings, want %d: %v", len(findings), want, findings)
	}
}
