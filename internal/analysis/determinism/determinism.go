// Package determinism enforces the deterministic-pipeline contract of
// PR 3 (DESIGN.md §6.7–6.9): the training pipeline — preprocess,
// assoc, catalog, predictor, eval — and the report/experiments output
// paths must be bit-identical run to run, or the shard-then-merge
// parallel Phase 1 and the CV fold evaluation cannot be trusted. The
// compiler cannot see any of this; three bug classes reintroduce
// nondeterminism silently:
//
//   - time.Now — wall-clock reads make output depend on when, not
//     what; clocks must come in as inputs.
//   - global math/rand — process-seeded randomness; a seeded
//     *rand.Rand (or rand/v2 with explicit source) is fine.
//   - map iteration feeding output — Go randomizes map order per run,
//     so ranging over a map while appending to a slice, emitting rows
//     or accumulating floats reorders results unless the collection
//     is sorted before use.
package determinism

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"bglpred/internal/analysis"
)

// Analyzer is the determinism checker.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid time.Now, global math/rand, and map-ordered output " +
		"(unsorted map iteration that appends, emits, or accumulates floats) " +
		"in the deterministic pipeline packages",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkCall(pass, call)
			}
			if fn := funcBody(n); fn != nil {
				checkMapRanges(pass, fn)
			}
			return true
		})
	}
	return nil, nil
}

// funcBody returns the body of a function declaration or literal.
func funcBody(n ast.Node) *ast.BlockStmt {
	switch n := n.(type) {
	case *ast.FuncDecl:
		return n.Body
	case *ast.FuncLit:
		return n.Body
	}
	return nil
}

// checkCall flags wall-clock and global-randomness calls.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	if analysis.IsPkgFunc(pass.TypesInfo, call, "time", "Now") {
		pass.Report(analysis.Diagnostic{
			Pos: call.Pos(),
			Message: "time.Now in a deterministic pipeline package makes output depend on wall clock " +
				"(PR 3 bit-identical contract)",
			SuggestedFix: "take the clock or timestamp as an input",
		})
		return
	}
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if pkg := fn.Pkg().Path(); pkg == "math/rand" || pkg == "math/rand/v2" {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil && fn.Name() != "New" &&
			fn.Name() != "NewSource" && fn.Name() != "NewPCG" && fn.Name() != "NewChaCha8" && fn.Name() != "NewZipf" {
			pass.Report(analysis.Diagnostic{
				Pos: call.Pos(),
				Message: fmt.Sprintf("global %s.%s draws from the process-wide, nondeterministically seeded generator",
					pkg, fn.Name()),
				SuggestedFix: "use a *rand.Rand built from an explicit seed",
			})
		}
	}
}

// checkMapRanges inspects every range-over-map in one function body
// and flags order-dependent dataflow out of the loop.
func checkMapRanges(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // visited separately as its own function
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if _, isMap := pass.TypesInfo.TypeOf(rs.X).Underlying().(*types.Map); !isMap {
			return true
		}
		checkOneMapRange(pass, body, rs)
		return true
	})
}

func checkOneMapRange(pass *analysis.Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt) {
	info := pass.TypesInfo
	mapName := analysis.PathString(rs.X)
	if mapName == "" {
		mapName = "map"
	}
	outer := func(obj types.Object) bool {
		return obj != nil && (obj.Pos() < rs.Pos() || obj.Pos() > rs.End())
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// xs = append(xs, …) into a variable that outlives the loop.
			if len(n.Rhs) == 1 {
				if call, ok := n.Rhs[0].(*ast.CallExpr); ok && isAppend(info, call) {
					if id := analysis.BaseIdent(n.Lhs[0]); id != nil {
						obj := objOf(info, id)
						if outer(obj) && !sortedAfter(info, funcBody, rs, obj) {
							pass.Report(analysis.Diagnostic{
								Pos: n.Pos(),
								Message: fmt.Sprintf("append to %s inside iteration over map %s leaks random map order "+
									"and %s is never sorted afterwards in this function", id.Name, mapName, id.Name),
								SuggestedFix: "collect the keys, sort them, and iterate the sorted keys (or sort the result before use)",
							})
						}
					}
				}
			}
			// f += v with a float accumulator: float addition does not
			// commute bit-exactly, so map order changes the result.
			if n.Tok == token.ADD_ASSIGN || n.Tok == token.MUL_ASSIGN {
				if id := analysis.BaseIdent(n.Lhs[0]); id != nil {
					obj := objOf(info, id)
					if outer(obj) && isFloat(info.TypeOf(n.Lhs[0])) {
						pass.Report(analysis.Diagnostic{
							Pos: n.Pos(),
							Message: fmt.Sprintf("floating-point accumulation into %s over map %s is order-dependent "+
								"(float addition does not commute bit-exactly)", id.Name, mapName),
							SuggestedFix: "iterate sorted keys, or accumulate into per-key slots and reduce in fixed order",
						})
					}
				}
			}
		case *ast.CallExpr:
			if name, emits := emissionCall(info, n); emits {
				pass.Report(analysis.Diagnostic{
					Pos: n.Pos(),
					Message: fmt.Sprintf("%s inside iteration over map %s emits rows in random map order",
						name, mapName),
					SuggestedFix: "collect the keys, sort them, and iterate the sorted keys",
				})
				return false
			}
		case *ast.FuncLit:
			return false // its body runs elsewhere
		}
		return true
	})
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

func isAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// emissionCall recognizes calls that write output where ordering is
// observable: the fmt print family and row/write-style sinks
// (report.Table.AddRow, io writers, string builders).
func emissionCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil {
		return "", false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return "fmt." + fn.Name(), true
		}
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		name := fn.Name()
		if name == "AddRow" || name == "WriteString" || name == "WriteByte" || name == "WriteRune" || name == "Write" {
			return name, true
		}
	}
	return "", false
}

// sortedAfter reports whether obj is handed to a sort.* or slices.*
// sorting call after the range statement, anywhere later in the
// enclosing function.
func sortedAfter(info *types.Info, funcBody *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	sorted := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		fn := analysis.CalleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			found := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && info.Uses[id] == obj {
					found = true
				}
				return !found
			})
			if found {
				sorted = true
				break
			}
		}
		return !sorted
	})
	return sorted
}
