// Package a is the determinism corpus: flagged lines carry expectation
// comments; the clean half shows the blessed alternatives.
package a

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"
)

// wallClock: reading the clock inside the pipeline.
func wallClock() time.Time {
	return time.Now() // want `time.Now in a deterministic pipeline package`
}

// clockAsInput is the blessed form: the caller owns the clock.
func clockAsInput(now time.Time) time.Time {
	return now.Add(time.Minute)
}

// globalRand: process-seeded randomness.
func globalRand(n int) int {
	return rand.Intn(n) // want `global math/rand.Intn draws from the process-wide`
}

// seededRand is fine: explicit seed, reproducible stream.
func seededRand(n int) int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(n)
}

// unsortedAppend leaks map order into the returned slice.
func unsortedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside iteration over map m leaks random map order`
	}
	return keys
}

// sortedAppend is the blessed form: sorted before use.
func sortedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// emitInMapOrder prints rows in random order.
func emitInMapOrder(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt.Fprintf inside iteration over map m emits rows in random map order`
	}
}

// emitSorted iterates a sorted key slice.
func emitSorted(w io.Writer, m map[string]int) {
	for _, k := range sortedAppend(m) {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// edgeKey and edgeStat mirror a correlation-graph adjacency map, the
// shape the ECG miner serializes.
type edgeKey struct{ from, to int }

type edgeStat struct{ count int }

// unsortedEdges leaks map order into the emitted edge list.
func unsortedEdges(edges map[edgeKey]*edgeStat) []edgeKey {
	var out []edgeKey
	for k := range edges {
		out = append(out, k) // want `append to out inside iteration over map edges leaks random map order`
	}
	return out
}

// sortedEdges is the blessed form: collect, then impose a total order
// on the composite key before anything downstream sees the slice.
func sortedEdges(edges map[edgeKey]*edgeStat) []edgeKey {
	var out []edgeKey
	for k := range edges {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].from != out[j].from {
			return out[i].from < out[j].from
		}
		return out[i].to < out[j].to
	})
	return out
}

// floatAccum: float addition is order-dependent.
func floatAccum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation into sum over map m is order-dependent`
	}
	return sum
}

// intAccum is fine: integer addition commutes exactly.
func intAccum(m map[string]int) int {
	var sum int
	for _, v := range m {
		sum += v
	}
	return sum
}

// deleteInRange is fine: pruning a map in place is order-independent.
func deleteInRange(m map[string]int, cut int) {
	for k, v := range m {
		if v < cut {
			delete(m, k)
		}
	}
}

// localAppend is fine: the slice never escapes the iteration.
func localAppend(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		tmp := append([]int(nil), vs...)
		n += len(tmp)
	}
	return n
}
