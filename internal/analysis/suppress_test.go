package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bglpred/internal/analysis"
	"bglpred/internal/analysis/wrapsentinel"
)

// runOn analyzes one synthesized package with wrapsentinel and
// returns the surviving findings.
func runOn(t *testing.T, src string) []analysis.Finding {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	l.ExtraRoots = map[string]string{"a": dir}
	pkg, err := l.Load("a")
	if err != nil {
		t.Fatal(err)
	}
	s := &analysis.Suite{Analyzers: []*analysis.Analyzer{wrapsentinel.Analyzer}}
	findings, err := s.Run(l, []*analysis.Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

// TestIgnoreSilencesExactlyOneFinding: two identical violations, one
// ignore — exactly the annotated one goes quiet.
func TestIgnoreSilencesExactlyOneFinding(t *testing.T) {
	findings := runOn(t, `package a

import (
	"errors"
	"fmt"
)

var ErrX = errors.New("x")

func excused() error {
	//bglvet:ignore wrapsentinel legacy message format, callers parse the string
	return fmt.Errorf("wrap: %v", ErrX)
}

func unexcused() error {
	return fmt.Errorf("wrap: %v", ErrX)
}
`)
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want exactly 1 (the unexcused site): %v", len(findings), findings)
	}
	if f := findings[0]; f.Analyzer != "wrapsentinel" || f.Pos.Line != 16 {
		t.Fatalf("surviving finding is not the unexcused site: %v", f)
	}
}

// TestTrailingIgnore: the suppression also works as a trailing
// comment on the offending line itself.
func TestTrailingIgnore(t *testing.T) {
	findings := runOn(t, `package a

import (
	"errors"
	"fmt"
)

var ErrX = errors.New("x")

func excused() error {
	return fmt.Errorf("wrap: %v", ErrX) //bglvet:ignore wrapsentinel legacy message format
}
`)
	if len(findings) != 0 {
		t.Fatalf("trailing ignore did not suppress: %v", findings)
	}
}

// TestStaleIgnoreReported: an ignore that silences nothing is itself
// a (meta) finding, so suppressions cannot outlive the code they
// excuse.
func TestStaleIgnoreReported(t *testing.T) {
	findings := runOn(t, `package a

import "errors"

var ErrX = errors.New("x")

//bglvet:ignore wrapsentinel this code was fixed long ago
var clean = ErrX
`)
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1 stale-ignore report: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != analysis.MetaName || !strings.Contains(f.Message, "stale ignore") {
		t.Fatalf("want a %s stale-ignore finding, got: %v", analysis.MetaName, f)
	}
	if f.Pos.Line != 7 {
		t.Fatalf("stale report at line %d, want the comment line 7", f.Pos.Line)
	}
}

// TestIgnoreWithoutReasonReported: the reason is mandatory.
func TestIgnoreWithoutReasonReported(t *testing.T) {
	findings := runOn(t, `package a

import (
	"errors"
	"fmt"
)

var ErrX = errors.New("x")

func excused() error {
	//bglvet:ignore wrapsentinel
	return fmt.Errorf("wrap: %v", ErrX)
}
`)
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2 (broken ignore + unsuppressed finding): %v", len(findings), findings)
	}
	var sawNoReason, sawOriginal bool
	for _, f := range findings {
		if f.Analyzer == analysis.MetaName && strings.Contains(f.Message, "no reason") {
			sawNoReason = true
		}
		if f.Analyzer == "wrapsentinel" {
			sawOriginal = true
		}
	}
	if !sawNoReason || !sawOriginal {
		t.Fatalf("reasonless ignore must be reported and must not suppress: %v", findings)
	}
}

// TestUnknownAnalyzerIgnoreReported: the analyzer name must be real.
func TestUnknownAnalyzerIgnoreReported(t *testing.T) {
	findings := runOn(t, `package a

//bglvet:ignore nosuchchecker because reasons
var x = 1
`)
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(findings), findings)
	}
	if f := findings[0]; f.Analyzer != analysis.MetaName || !strings.Contains(f.Message, "unknown analyzer") {
		t.Fatalf("want unknown-analyzer report, got: %v", f)
	}
}

// TestDisabledAnalyzerIgnoreNotStale: ignores for analyzers that
// exist in the registry but did not run this invocation are left
// alone — a -only subset run must not flag the others' excuses.
func TestDisabledAnalyzerIgnoreNotStale(t *testing.T) {
	dir := t.TempDir()
	src := `package a

//bglvet:ignore determinism wall-clock measurement is the point
var x = 1
`
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	l.ExtraRoots = map[string]string{"a": dir}
	pkg, err := l.Load("a")
	if err != nil {
		t.Fatal(err)
	}
	s := &analysis.Suite{
		Analyzers: []*analysis.Analyzer{wrapsentinel.Analyzer},
		Known:     map[string]bool{"wrapsentinel": true, "determinism": true},
	}
	findings, err := s.Run(l, []*analysis.Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("ignore for a disabled analyzer misreported: %v", findings)
	}
}
