package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: syntax plus types.
type Package struct {
	// Path is the import path ("bglpred/internal/serve").
	Path string
	// Dir is the directory the sources were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads and type-checks packages from source with no help from
// the go command: module packages resolve against the module root,
// everything else against GOROOT/src (with the GOROOT vendor tree as
// fallback). Loaded packages are cached, so a process-wide Loader
// type-checks each dependency once. Cgo is disabled so the pure-Go
// variants of net, os/user etc. are selected — type information is
// identical for the analyses here, and it keeps loading hermetic.
type Loader struct {
	// ModulePath and ModuleDir anchor the main module ("bglpred" →
	// /path/to/repo).
	ModulePath string
	ModuleDir  string
	// ExtraRoots maps additional import-path prefixes to directories —
	// the analysistest hook that lets testdata packages resolve (e.g.
	// "a" → .../testdata/src/a) while still importing real module
	// packages.
	ExtraRoots map[string]string

	Fset *token.FileSet

	ctx  build.Context
	pkgs map[string]*Package
	busy map[string]bool
}

// NewLoader builds a loader for the module containing dir (found by
// walking up to go.mod).
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	ctx := build.Default
	ctx.CgoEnabled = false
	return &Loader{
		ModulePath: modPath,
		ModuleDir:  root,
		Fset:       token.NewFileSet(),
		ctx:        ctx,
		pkgs:       make(map[string]*Package),
		busy:       make(map[string]bool),
	}, nil
}

// findModule walks up from dir to the nearest go.mod and returns the
// module directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Load returns the type-checked package for an import path, loading
// and caching it (and, transitively, its dependencies) on first use.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.busy[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	dir, err := l.resolve(path)
	if err != nil {
		return nil, err
	}
	return l.loadDir(path, dir)
}

// LoadDir loads the package in dir under its module import path.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModuleDir, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("analysis: %s is outside module %s", dir, l.ModuleDir)
	}
	path := l.ModulePath
	if rel != "." {
		path = l.ModulePath + "/" + filepath.ToSlash(rel)
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	return l.loadDir(path, dir)
}

// LoadAll loads every buildable non-test package of the module — the
// loader's "./..." — in deterministic path order, skipping testdata,
// vendor and hidden directories.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleDir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.ModuleDir && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, p)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var out []*Package
	for _, dir := range dirs {
		if _, err := l.ctx.ImportDir(dir, 0); err != nil {
			continue // not a buildable package (no .go files, all excluded, …)
		}
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// resolve maps an import path to a source directory.
func (l *Loader) resolve(path string) (string, error) {
	for prefix, dir := range l.ExtraRoots {
		if path == prefix {
			return dir, nil
		}
		if rest, ok := strings.CutPrefix(path, prefix+"/"); ok {
			return filepath.Join(dir, filepath.FromSlash(rest)), nil
		}
	}
	if path == l.ModulePath {
		return l.ModuleDir, nil
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleDir, filepath.FromSlash(rest)), nil
	}
	goroot := l.ctx.GOROOT
	std := filepath.Join(goroot, "src", filepath.FromSlash(path))
	if isDir(std) {
		return std, nil
	}
	vendored := filepath.Join(goroot, "src", "vendor", filepath.FromSlash(path))
	if isDir(vendored) {
		return vendored, nil
	}
	return "", fmt.Errorf("analysis: cannot resolve import %q (module %s, GOROOT %s)", path, l.ModulePath, goroot)
}

func isDir(p string) bool {
	fi, err := os.Stat(p)
	return err == nil && fi.IsDir()
}

// inModule reports whether an import path belongs to the main module
// or an extra root (i.e. is analysis subject matter rather than a
// dependency): those packages keep their comments for suppression
// scanning.
func (l *Loader) inModule(path string) bool {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		return true
	}
	for prefix := range l.ExtraRoots {
		if path == prefix || strings.HasPrefix(path, prefix+"/") {
			return true
		}
	}
	return false
}

// loadDir parses and type-checks the package in dir, recursing into
// imports through the importer hook.
func (l *Loader) loadDir(path, dir string) (*Package, error) {
	l.busy[path] = true
	defer delete(l.busy, path)

	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", dir, err)
	}
	mode := parser.SkipObjectResolution
	if l.inModule(path) {
		mode |= parser.ParseComments
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, mode)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importerFunc(l.importFor)}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}

	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// importFor is the types.Importer hook.
func (l *Loader) importFor(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	pkg, err := l.Load(path)
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
