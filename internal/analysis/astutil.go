package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// PathString renders a pure selector chain ("s.cfg.Observer") or ""
// if the expression is anything more complicated (calls, indexing) —
// the analyzers track locks and callbacks only through plain paths.
func PathString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if base := PathString(e.X); base != "" {
			return base + "." + e.Sel.Name
		}
	case *ast.ParenExpr:
		return PathString(e.X)
	}
	return ""
}

// BaseIdent returns the root identifier of a selector chain, or nil.
func BaseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// LastComponent returns the final element of a dotted path.
func LastComponent(path string) string {
	if i := strings.LastIndexByte(path, '.'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// CalleeFunc resolves a call to the package-level function or method
// object it invokes, nil for indirect calls through variables.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether a call invokes pkgPath.name (a
// package-level function, e.g. "time".Now).
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := CalleeFunc(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name &&
		fn.Type().(*types.Signature).Recv() == nil
}

// FuncKey renders a stable cross-package identity for a function or
// method object: "pkg/path.Func" or "pkg/path.(Type).Method". It is
// the vocabulary the whole-program Finish hooks use to stitch
// per-package call summaries into one graph. Returns "" for nil
// objects and for methods whose receiver is not a named type (there
// is no declaration to resolve them to).
func FuncKey(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		n := NamedType(sig.Recv().Type())
		if n == nil {
			return ""
		}
		return fn.Pkg().Path() + ".(" + n.Obj().Name() + ")." + fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// WalkStack is ast.Inspect with an ancestor stack: f sees each node
// with stack[0] the file down to stack[len-1] the node's parent.
func WalkStack(root ast.Node, f func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := f(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}

// NamedType unwraps pointers and aliases to the *types.Named beneath,
// or nil.
func NamedType(t types.Type) *types.Named {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// IsNamed reports whether t (possibly behind a pointer) is the named
// type pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	n := NamedType(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
