// Package b re-declares a family package a already owns — the
// whole-program duplicate check must flag the second declaration.
package b

import (
	"fmt"
	"io"
)

func metrics(w io.Writer) {
	fmt.Fprintf(w, "# HELP bglserved_good_total Someone else's family.\n# TYPE bglserved_good_total counter\nbglserved_good_total %d\n", 1) // want `metric bglserved_good_total declared more than once`
	fmt.Fprintf(w, "# HELP bglserved_b_only Depth.\n# TYPE bglserved_b_only gauge\nbglserved_b_only %d\n", 2)
}
