// Package a mirrors the serve-layer /metrics idiom: a counter helper
// closure plus raw # HELP/# TYPE Fprintf literals, with one violation
// of each naming rule next to its conforming twin.
package a

import (
	"fmt"
	"io"
)

func metrics(w io.Writer) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("bglserved_good_total", "Conforming counter.", 1)
	counter("bglgate_good_total", "Conforming counter in the gate namespace.", 1)
	counter("bglserved_bad_restarts", "Counter missing _total.", 2)   // want `counter bglserved_bad_restarts must end in _total`
	counter("bglgate_bad_forwards", "Gate counter missing _total.", 2) // want `counter bglgate_bad_forwards must end in _total`
	counter("bglledger_good_total", "Conforming counter in the ledger namespace.", 1)
	counter("bglledger_bad_appends", "Ledger counter missing _total.", 2) // want `counter bglledger_bad_appends must end in _total`
	counter("served_wrong_prefix_total", "Counter off-namespace.", 3) // want `lacks a recognized prefix`

	fmt.Fprintf(w, "# HELP bglserved_depth Queue depth.\n# TYPE bglserved_depth gauge\nbglserved_depth %d\n", 4)
	fmt.Fprintf(w, "# HELP bglserved_bad_gauge_total Gauge named like a counter.\n# TYPE bglserved_bad_gauge_total gauge\nbglserved_bad_gauge_total %d\n", 5) // want `gauge bglserved_bad_gauge_total must not end in _total`
	fmt.Fprintf(w, "bglserved_phantom_total %d\n", 6)                                                                                                         // want `series bglserved_phantom_total emitted without a # TYPE declaration`

	fmt.Fprintf(w, "# HELP bglserved_lat_seconds Latency.\n# TYPE bglserved_lat_seconds histogram\n")
	fmt.Fprintf(w, "bglserved_lat_seconds_bucket{le=\"+Inf\"} %d\n", 7)
	fmt.Fprintf(w, "bglserved_lat_seconds_sum %g\n", 0.1)
	fmt.Fprintf(w, "bglserved_lat_seconds_count %d\n", 7)
}
