// Package metricconv enforces the Prometheus exposition conventions
// of the serve layer (PR 2). bglserved writes its /metrics text by
// hand — fmt.Fprintf with "# HELP/# TYPE" literals and small helper
// closures — so nothing but a checker stands between a typo and a
// silently malformed exposition. The rules:
//
//   - counters end in _total; gauges and histograms never do
//     (_total is the counter marker; Prometheus tooling keys on it)
//   - every family carries a recognized namespace prefix — bglserved_
//     for the serving daemon, bglgate_ for the cluster ingest router
//   - every emitted series has a # TYPE declaration in its package
//     (histogram _bucket/_sum/_count series resolve to their family)
//   - no family is declared twice across the serve packages — a
//     duplicate # TYPE corrupts the exposition (whole-program check)
//
// Declarations are recognised two ways: "# TYPE <name> <kind>" inside
// any string literal, and calls to helper closures named counter/
// gauge/histogram whose first argument is the family name literal.
package metricconv

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"

	"bglpred/internal/analysis"
)

// Analyzer is the Prometheus-conventions checker.
var Analyzer = &analysis.Analyzer{
	Name: "metricconv",
	Doc: "enforce Prometheus naming conventions in the hand-written /metrics " +
		"exposition: _total on counters only, bglserved_/bglgate_/bglledger_ prefix, " +
		"declared-before-emitted, no duplicate families",
	Run:    run,
	Finish: finish,
}

// Prefixes are the recognized family namespaces: every family must
// carry exactly one of them. The serving daemon owns bglserved_, the
// cluster ingest router owns bglgate_, the audit ledger's own counters
// (exported wholesale into the daemon's exposition) own bglledger_;
// keeping them disjoint lets one scrape config collect every layer
// without collisions.
var Prefixes = []string{"bglserved_", "bglgate_", "bglledger_"}

// Decl is one metric-family declaration.
type Decl struct {
	Name string
	Kind string // counter, gauge, histogram, summary
	Pos  token.Position
}

type result struct {
	decls []Decl
}

var (
	typeRE   = regexp.MustCompile(`# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary)`)
	sampleRE = regexp.MustCompile(`^((?:` + strings.Join(Prefixes, `|`) + `)[a-zA-Z0-9_]*)[{ ]`)
)

// hasPrefix reports whether name carries one of the recognized
// namespace prefixes.
func hasPrefix(name string) bool {
	for _, p := range Prefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// helperKinds maps metric-helper closure names to the kind they
// declare (the serve idiom: counter := func(name, help string, v int64)).
var helperKinds = map[string]string{
	"counter":   "counter",
	"gauge":     "gauge",
	"histogram": "histogram",
}

func run(pass *analysis.Pass) (any, error) {
	var decls []Decl
	declared := make(map[string]bool)
	type emission struct {
		name string
		pos  token.Pos
	}
	var emitted []emission

	addDecl := func(name, kind string, pos token.Pos) {
		decls = append(decls, Decl{Name: name, Kind: kind, Pos: pass.Fset.Position(pos)})
		declared[name] = true
		if !hasPrefix(name) {
			pass.Report(analysis.Diagnostic{
				Pos:          pos,
				Message:      fmt.Sprintf("metric %s lacks a recognized prefix (%s); every family is namespaced", name, strings.Join(Prefixes, " or ")),
				SuggestedFix: Prefixes[0] + strings.TrimLeft(name, "_"),
			})
		}
		switch {
		case kind == "counter" && !strings.HasSuffix(name, "_total"):
			pass.Report(analysis.Diagnostic{
				Pos:          pos,
				Message:      fmt.Sprintf("counter %s must end in _total (Prometheus naming convention)", name),
				SuggestedFix: name + "_total",
			})
		case kind != "counter" && strings.HasSuffix(name, "_total"):
			pass.Report(analysis.Diagnostic{
				Pos:          pos,
				Message:      fmt.Sprintf("%s %s must not end in _total; _total is reserved for counters", kind, name),
				SuggestedFix: strings.TrimSuffix(name, "_total"),
			})
		}
	}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				id, ok := ast.Unparen(n.Fun).(*ast.Ident)
				if !ok {
					return true
				}
				kind, ok := helperKinds[id.Name]
				if !ok || len(n.Args) == 0 {
					return true
				}
				lit, ok := ast.Unparen(n.Args[0]).(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				if name, err := strconv.Unquote(lit.Value); err == nil {
					addDecl(name, kind, lit.Pos())
				}
			case *ast.BasicLit:
				if n.Kind != token.STRING {
					return true
				}
				text, err := strconv.Unquote(n.Value)
				if err != nil {
					return true
				}
				for _, m := range typeRE.FindAllStringSubmatch(text, -1) {
					addDecl(m[1], m[2], n.Pos())
				}
				for _, line := range strings.Split(text, "\n") {
					if m := sampleRE.FindStringSubmatch(line); m != nil {
						emitted = append(emitted, emission{name: m[1], pos: n.Pos()})
					}
				}
			}
			return true
		})
	}

	reported := make(map[string]bool)
	for _, e := range emitted {
		family := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(e.name, "_bucket"), "_sum"), "_count")
		if declared[e.name] || declared[family] || reported[e.name] {
			continue
		}
		reported[e.name] = true
		pass.Report(analysis.Diagnostic{
			Pos:          e.pos,
			Message:      fmt.Sprintf("series %s emitted without a # TYPE declaration in this package", e.name),
			SuggestedFix: fmt.Sprintf("write \"# HELP %s …\\n# TYPE %s <kind>\\n\" before the first sample", e.name, e.name),
		})
	}
	return &result{decls: decls}, nil
}

// finish flags families declared more than once across the analyzed
// packages.
func finish(results []analysis.PkgResult, report func(analysis.Finding)) {
	first := make(map[string]Decl)
	for _, r := range results {
		res, ok := r.Result.(*result)
		if !ok || res == nil {
			continue
		}
		for _, d := range res.decls {
			if prev, dup := first[d.Name]; dup {
				report(analysis.Finding{
					Analyzer: "metricconv",
					Pos:      d.Pos,
					Message: fmt.Sprintf("metric %s declared more than once (first at %s); duplicate families corrupt the exposition",
						d.Name, prev.Pos),
					SuggestedFix: "merge the two declarations or rename one family",
				})
				continue
			}
			first[d.Name] = d
		}
	}
}
