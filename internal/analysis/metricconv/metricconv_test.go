package metricconv_test

import (
	"testing"

	"bglpred/internal/analysis/analysistest"
	"bglpred/internal/analysis/metricconv"
)

func TestMetricConv(t *testing.T) {
	findings := analysistest.Run(t, metricconv.Analyzer, "a", "b")
	if want := 7; len(findings) != want {
		t.Errorf("got %d findings, want %d: %v", len(findings), want, findings)
	}
	analysistest.MustContain(t, findings, `first at .*a/a\.go`)
}
