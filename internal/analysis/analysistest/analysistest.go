// Package analysistest runs an analyzer over a testdata corpus and
// checks its findings against // want comments, in the style of
// golang.org/x/tools/go/analysis/analysistest (which this module does
// not depend on).
//
// Corpus layout: <analyzer package>/testdata/src/<name>/*.go, loaded
// as import path <name>. Corpus files may import real module packages
// ("bglpred/internal/faultinject") — the loader resolves them against
// the enclosing module — so positive and negative cases exercise the
// analyzers against the genuine types they guard.
//
// A finding on a line must be matched by a trailing comment on that
// line of the form
//
//	// want "regexp"
//
// (several quoted regexps allowed, each matching one finding). A
// finding with no matching want, or a want with no finding, fails the
// test.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"bglpred/internal/analysis"
)

var (
	loaderMu sync.Mutex
	loaders  = make(map[string]*analysis.Loader)
)

// loaderFor returns the (cached) loader whose extra roots cover every
// package under the given testdata/src directory.
func loaderFor(t *testing.T, srcRoot string) *analysis.Loader {
	t.Helper()
	loaderMu.Lock()
	defer loaderMu.Unlock()
	if l, ok := loaders[srcRoot]; ok {
		return l
	}
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	l.ExtraRoots = make(map[string]string)
	entries, err := os.ReadDir(srcRoot)
	if err != nil {
		t.Fatalf("analysistest: reading %s: %v", srcRoot, err)
	}
	for _, e := range entries {
		if e.IsDir() {
			l.ExtraRoots[e.Name()] = filepath.Join(srcRoot, e.Name())
		}
	}
	loaders[srcRoot] = l
	return l
}

// Run analyzes the corpus packages named by pkgs (default: every
// package under testdata/src) and checks findings against their want
// comments. It returns the unsuppressed findings for extra assertions.
func Run(t *testing.T, a *analysis.Analyzer, pkgs ...string) []analysis.Finding {
	t.Helper()
	srcRoot, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	l := loaderFor(t, srcRoot)
	if len(pkgs) == 0 {
		for name := range l.ExtraRoots {
			pkgs = append(pkgs, name)
		}
	}
	var loaded []*analysis.Package
	for _, name := range pkgs {
		pkg, err := l.Load(name)
		if err != nil {
			t.Fatalf("analysistest: loading corpus %q: %v", name, err)
		}
		loaded = append(loaded, pkg)
	}
	suite := &analysis.Suite{Analyzers: []*analysis.Analyzer{a}}
	findings, err := suite.Run(l, loaded)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	checkWants(t, loaded, findings)
	return findings
}

var wantRE = regexp.MustCompile("^//\\s*want\\s+([\"`].*)$")

// checkWants compares findings to // want comments line by line.
func checkWants(t *testing.T, pkgs []*analysis.Package, findings []analysis.Finding) {
	t.Helper()
	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := make(map[lineKey][]*want)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, q := range splitQuoted(t, pos.String(), m[1]) {
						re, err := regexp.Compile(q)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, q, err)
						}
						k := lineKey{pos.Filename, pos.Line}
						wants[k] = append(wants[k], &want{re: re})
					}
				}
			}
		}
	}
	for _, f := range findings {
		k := lineKey{f.Pos.Filename, f.Pos.Line}
		matched := false
		for _, w := range wants[k] {
			if !w.matched && w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected finding: [%s] %s", f.Pos, f.Analyzer, f.Message)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: no finding matched want %q", k.file, k.line, w.re)
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

// splitQuoted parses the sequence of quoted regexps after "want";
// both double-quoted (escapes allowed) and backquoted (raw) forms
// work, as in strconv.Unquote.
func splitQuoted(t *testing.T, pos, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		quote := s[0]
		if quote != '"' && quote != '`' {
			t.Fatalf("%s: malformed want clause at %q (expected quoted regexp)", pos, s)
		}
		end := -1
		for i := 1; i < len(s); i++ {
			if quote == '"' && s[i] == '\\' {
				i++
				continue
			}
			if s[i] == quote {
				end = i
				break
			}
		}
		if end < 0 {
			t.Fatalf("%s: unterminated want regexp in %q", pos, s)
		}
		q, err := strconv.Unquote(s[:end+1])
		if err != nil {
			t.Fatalf("%s: bad want regexp %q: %v", pos, s[:end+1], err)
		}
		out = append(out, q)
		s = strings.TrimSpace(s[end+1:])
	}
	if len(out) == 0 {
		t.Fatalf("%s: want clause with no regexps", pos)
	}
	return out
}

// MustContain asserts that some finding message matches the pattern —
// the hook corpus-free tests (e.g. Finish-hook duplicates) use.
func MustContain(t *testing.T, findings []analysis.Finding, pattern string) {
	t.Helper()
	re := regexp.MustCompile(pattern)
	for _, f := range findings {
		if re.MatchString(f.Message) {
			return
		}
	}
	t.Errorf("no finding matched %q; findings: %v", pattern, fmt.Sprint(findings))
}
