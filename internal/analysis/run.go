package analysis

import (
	"fmt"
	"sort"
)

// MetaName is the pseudo-analyzer findings about the suppression
// mechanism itself are attributed to (malformed, unknown-analyzer and
// stale ignores). Meta findings cannot be suppressed.
const MetaName = "bglvet"

// Suite is a set of analyzers plus the policy of which packages each
// one applies to.
type Suite struct {
	Analyzers []*Analyzer
	// Filter, when non-nil, reports whether an analyzer runs on a
	// package path. Whole-program Finish hooks always run, seeing the
	// results of exactly the packages the filter admitted.
	Filter func(pkgPath, analyzerName string) bool
	// Known is the full analyzer-name registry used to validate ignore
	// comments; defaults to the suite's own analyzers.
	Known map[string]bool
}

// Run analyzes pkgs with every analyzer, applies //bglvet:ignore
// suppressions, reports stale ignores, and returns the surviving
// findings sorted by position. The loader is the one the packages
// came from — analyzers reach sibling packages through it.
func (s *Suite) Run(l *Loader, pkgs []*Package) ([]Finding, error) {
	known := s.Known
	if known == nil {
		known = make(map[string]bool, len(s.Analyzers))
		for _, a := range s.Analyzers {
			known[a.Name] = true
		}
	}

	var findings []Finding
	report := func(f Finding) { findings = append(findings, f) }

	ignores := make(map[lineKey][]*ignore)
	enabled := make(map[string]bool, len(s.Analyzers))
	for _, a := range s.Analyzers {
		enabled[a.Name] = true
	}
	for _, pkg := range pkgs {
		for k, v := range scanIgnores(pkg.Fset, pkg.Files, known, report) {
			ignores[k] = append(ignores[k], v...)
		}
	}

	results := make(map[string][]PkgResult)
	for _, pkg := range pkgs {
		for _, a := range s.Analyzers {
			if s.Filter != nil && !s.Filter(pkg.Path, a.Name) {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Load:      l.Load,
			}
			name := a.Name
			pass.Report = func(d Diagnostic) {
				report(Finding{
					Analyzer:     name,
					Pos:          pkg.Fset.Position(d.Pos),
					Message:      d.Message,
					SuggestedFix: d.SuggestedFix,
				})
			}
			res, err := a.Run(pass)
			if err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
			results[a.Name] = append(results[a.Name], PkgResult{Path: pkg.Path, Result: res})
		}
	}
	for _, a := range s.Analyzers {
		if a.Finish != nil {
			a.Finish(results[a.Name], report)
		}
	}

	kept := findings[:0]
	for _, f := range findings {
		if f.Analyzer != MetaName && suppressed(ignores, f) {
			continue
		}
		kept = append(kept, f)
	}
	findings = kept

	// An ignore for an analyzer this run executed that silenced nothing
	// is stale: the offending code was fixed or moved, so the excuse
	// must go too. Ignores for disabled analyzers are left alone.
	var stale []Finding
	for _, igs := range ignores {
		for _, ig := range igs {
			if !ig.broken && !ig.used && enabled[ig.analyzer] {
				stale = append(stale, Finding{
					Analyzer:     MetaName,
					Pos:          positionOf(ig),
					Message:      fmt.Sprintf("stale ignore: no %s finding on this or the next line; delete the comment", ig.analyzer),
					SuggestedFix: "remove the //bglvet:ignore comment",
				})
			}
		}
	}
	findings = append(findings, stale...)

	// (file, line, analyzer) is the stable order bglvet -json
	// publishes; message breaks the remaining ties.
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if findings[i].Analyzer != findings[j].Analyzer {
			return findings[i].Analyzer < findings[j].Analyzer
		}
		return findings[i].Message < findings[j].Message
	})
	return findings, nil
}
