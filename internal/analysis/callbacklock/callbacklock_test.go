package callbacklock_test

import (
	"testing"

	"bglpred/internal/analysis/analysistest"
	"bglpred/internal/analysis/callbacklock"
)

func TestCallbackLock(t *testing.T) {
	findings := analysistest.Run(t, callbacklock.Analyzer, "a")
	if want := 5; len(findings) != want {
		t.Errorf("got %d findings, want %d: %v", len(findings), want, findings)
	}
}
