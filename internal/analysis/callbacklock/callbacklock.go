// Package callbacklock enforces the PR 1 reentrancy contract: a
// callback/observer/hook field must never be invoked while a mutex of
// the same struct is held. The original bug fired online.Engine's
// OnAlert inside the engine state lock, so a callback that reentered
// the engine (Counters, ActiveAlert) deadlocked; the fix — copy the
// callback under the lock, invoke it after unlocking, serialize
// emission with a dedicated lock — is prose in DESIGN.md that this
// analyzer turns into a build-time check.
//
// The analysis is an intra-procedural lock-region walk: within each
// function body it tracks which mutex paths (e.g. "e.mu", "s.closeMu")
// are held, by Lock/RLock/Unlock/RUnlock calls and deferred unlocks,
// cloning the held set into branches and loop bodies. A call is
// flagged when its target is a func-typed struct field (or a local
// copied from one) rooted at the same receiver as a held lock.
//
// Locks whose field name marks them as emission serializers (emitMu,
// notifyMu, journalMu, …) are exempt: serializing the callback stream
// with a lock that guards no engine state is exactly the PR 1 fix.
package callbacklock

import (
	"fmt"
	"go/ast"
	"go/types"
	"regexp"

	"bglpred/internal/analysis"
)

// Analyzer is the callback-under-lock checker.
var Analyzer = &analysis.Analyzer{
	Name: "callbacklock",
	Doc: "flag calls to callback/observer/hook fields while a sync.Mutex or RWMutex " +
		"of the same struct is held (PR 1 reentrancy contract)",
	Run: run,
}

// emissionLockRE marks lock names that exist to serialize callback and
// journal emission rather than to guard state; calling a callback
// under one is the documented-safe pattern.
var emissionLockRE = regexp.MustCompile(`(?i)(emit|journal|notify|publish|callback)`)

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				// A literal's body runs on its own goroutine or call
				// stack; it starts with no locks held.
				body = n.Body
			}
			if body != nil {
				w := &walker{pass: pass, held: map[string]*lockEnt{}, tainted: map[types.Object]taint{}}
				w.block(body)
			}
			return true
		})
	}
	return nil, nil
}

// lockEnt is one held lock.
type lockEnt struct {
	path     string
	base     types.Object
	emission bool
}

// taint records that a local variable holds a callback copied from a
// struct field, and which base object it came from.
type taint struct {
	base types.Object
	path string
}

type walker struct {
	pass    *analysis.Pass
	held    map[string]*lockEnt
	tainted map[types.Object]taint
}

// clone branches the held set; taints stay shared (a copy made in a
// branch is still a copy).
func (w *walker) clone() *walker {
	held := make(map[string]*lockEnt, len(w.held))
	for k, v := range w.held {
		held[k] = v
	}
	return &walker{pass: w.pass, held: held, tainted: w.tainted}
}

func (w *walker) block(b *ast.BlockStmt) {
	for _, s := range b.List {
		w.stmt(s)
	}
}

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.block(s)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if w.lockOp(call) {
				return
			}
		}
		w.expr(s.X)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			w.expr(rhs)
		}
		for _, lhs := range s.Lhs {
			w.expr(lhs)
		}
		w.recordTaints(s.Lhs, s.Rhs)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v)
					}
					lhs := make([]ast.Expr, len(vs.Names))
					for i, n := range vs.Names {
						lhs[i] = n
					}
					w.recordTaints(lhs, vs.Values)
				}
			}
		}
	case *ast.DeferStmt:
		// defer x.mu.Unlock() keeps the lock held for the walk; any
		// other deferred call still runs before that unlock, so it is
		// checked as if called here.
		if w.isLockMethod(s.Call) != "" {
			return
		}
		w.expr(s.Call)
	case *ast.GoStmt:
		// Runs on another goroutine without our locks; its FuncLit
		// body is analyzed separately.
		for _, arg := range s.Call.Args {
			w.expr(arg)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.expr(s.Cond)
		w.clone().block(s.Body)
		if s.Else != nil {
			w.clone().stmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		inner := w.clone()
		inner.block(s.Body)
		if s.Post != nil {
			inner.stmt(s.Post)
		}
	case *ast.RangeStmt:
		w.expr(s.X)
		w.taintRangeValue(s)
		w.clone().block(s.Body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				inner := w.clone()
				for _, e := range cc.List {
					inner.expr(e)
				}
				for _, st := range cc.Body {
					inner.stmt(st)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				inner := w.clone()
				for _, st := range cc.Body {
					inner.stmt(st)
				}
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				inner := w.clone()
				if cc.Comm != nil {
					inner.stmt(cc.Comm)
				}
				for _, st := range cc.Body {
					inner.stmt(st)
				}
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r)
		}
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.IncDecStmt:
		w.expr(s.X)
	}
}

// lockOp updates the held set for x.mu.Lock()-family statements and
// reports whether the call was one.
func (w *walker) lockOp(call *ast.CallExpr) bool {
	name := w.isLockMethod(call)
	if name == "" {
		return false
	}
	sel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	path := analysis.PathString(sel.X)
	if path == "" {
		return true // untrackable receiver (m[i].mu etc.); conservative no-op
	}
	switch name {
	case "Lock", "RLock":
		base := w.pass.TypesInfo.Uses[analysis.BaseIdent(sel.X)]
		w.held[path] = &lockEnt{
			path:     path,
			base:     base,
			emission: emissionLockRE.MatchString(analysis.LastComponent(path)),
		}
	case "Unlock", "RUnlock":
		delete(w.held, path)
	}
	return true
}

// isLockMethod returns the method name for calls to
// sync.Mutex/RWMutex Lock/RLock/Unlock/RUnlock, else "".
func (w *walker) isLockMethod(call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return ""
	}
	fn, ok := w.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	rt := sig.Recv().Type()
	if analysis.IsNamed(rt, "sync", "Mutex") || analysis.IsNamed(rt, "sync", "RWMutex") {
		return sel.Sel.Name
	}
	return ""
}

// recordTaints marks locals assigned from func-typed struct fields.
func (w *walker) recordTaints(lhs, rhs []ast.Expr) {
	if len(lhs) != len(rhs) {
		return
	}
	for i, l := range lhs {
		id, ok := l.(*ast.Ident)
		if !ok {
			continue
		}
		obj := w.pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = w.pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			continue
		}
		if base, path, ok := w.callbackField(rhs[i]); ok {
			w.tainted[obj] = taint{base: base, path: path}
		}
	}
}

// taintRangeValue marks `for _, cb := range x.hooks` loop variables
// when hooks is a slice/array of funcs on a struct.
func (w *walker) taintRangeValue(s *ast.RangeStmt) {
	id, ok := s.Value.(*ast.Ident)
	if !ok {
		return
	}
	xt := w.pass.TypesInfo.TypeOf(s.X)
	if xt == nil {
		return
	}
	var elem types.Type
	switch t := xt.Underlying().(type) {
	case *types.Slice:
		elem = t.Elem()
	case *types.Array:
		elem = t.Elem()
	default:
		return
	}
	if _, ok := elem.Underlying().(*types.Signature); !ok {
		return
	}
	sel, ok := ast.Unparen(s.X).(*ast.SelectorExpr)
	if !ok {
		return
	}
	base := w.pass.TypesInfo.Uses[analysis.BaseIdent(sel)]
	if base == nil {
		return
	}
	if obj := w.pass.TypesInfo.Defs[id]; obj != nil {
		w.tainted[obj] = taint{base: base, path: analysis.PathString(sel)}
	}
}

// callbackField reports whether e selects a func-typed struct field,
// returning the root object and rendered path.
func (w *walker) callbackField(e ast.Expr) (types.Object, string, bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	selection := w.pass.TypesInfo.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return nil, "", false
	}
	if _, ok := selection.Type().Underlying().(*types.Signature); !ok {
		return nil, "", false
	}
	base := w.pass.TypesInfo.Uses[analysis.BaseIdent(sel)]
	if base == nil {
		return nil, "", false
	}
	return base, analysis.PathString(sel), true
}

// expr scans an expression tree for callback invocations under held
// locks, skipping nested function literals (analyzed separately).
func (w *walker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		w.checkCall(call)
		return true
	})
}

// checkCall flags a call whose target is a callback field (or a local
// copied from one) rooted at the same object as a held state lock.
func (w *walker) checkCall(call *ast.CallExpr) {
	var base types.Object
	var path string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		b, p, ok := w.callbackField(fun)
		if !ok {
			return
		}
		base, path = b, p
	case *ast.Ident:
		obj := w.pass.TypesInfo.Uses[fun]
		t, ok := w.tainted[obj]
		if !ok {
			return
		}
		base, path = t.base, t.path+" (via "+fun.Name+")"
	default:
		return
	}
	for _, lk := range w.held {
		if lk.emission || lk.base != base {
			continue
		}
		w.pass.Report(analysis.Diagnostic{
			Pos: call.Pos(),
			Message: fmt.Sprintf("callback %s invoked while %s is held; a reentrant callback deadlocks (PR 1 contract)",
				path, lk.path),
			SuggestedFix: "copy the callback under the lock and invoke it after unlocking, " +
				"or serialize emission with a dedicated emitMu",
		})
		return
	}
}
