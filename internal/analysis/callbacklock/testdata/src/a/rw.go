package a

import "sync"

// Server mirrors serve.Server's close-coordination shape: an RWMutex
// read-held across a request while config callbacks fire.
type Server struct {
	closeMu  sync.RWMutex
	closed   bool
	Observer func(string)
}

// badUnderRLock: a reader-held RWMutex still deadlocks if the
// callback reenters a method that takes the write lock (Close).
func (s *Server) badUnderRLock(line string) {
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return
	}
	if s.Observer != nil {
		s.Observer(line) // want `callback s.Observer invoked while s.closeMu is held`
	}
}

// goodAfterRUnlock releases the read lock before emitting.
func (s *Server) goodAfterRUnlock(line string) {
	s.closeMu.RLock()
	closed := s.closed
	obs := s.Observer
	s.closeMu.RUnlock()
	if !closed && obs != nil {
		obs(line)
	}
}
