// Package a reproduces the PR 1 engine shapes: callbacks fired under
// the state lock (the bug), and the blessed copy-then-call and
// emission-lock patterns (the fix).
package a

import "sync"

// Engine mirrors online.Engine: a state lock, an emission lock, and
// callback fields.
type Engine struct {
	mu     sync.Mutex
	emitMu sync.Mutex
	state  int

	OnAlert func(int)
	hooks   []func(int)
}

// badDirect is the original PR 1 bug: callback invoked under mu.
func (e *Engine) badDirect() {
	e.mu.Lock()
	e.state++
	if e.OnAlert != nil {
		e.OnAlert(e.state) // want `callback e.OnAlert invoked while e.mu is held`
	}
	e.mu.Unlock()
}

// badDeferred holds mu via defer for the whole body.
func (e *Engine) badDeferred() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.state++
	e.OnAlert(e.state) // want `callback e.OnAlert invoked while e.mu is held`
}

// badLoop fires each hook while still under the lock.
func (e *Engine) badLoop() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, h := range e.hooks {
		h(e.state) // want `callback e.hooks \(via h\) invoked while e.mu is held`
	}
}

// badCopyCalledEarly copies the callback under the lock — good — but
// then invokes the copy before unlocking — still the bug.
func (e *Engine) badCopyCalledEarly() {
	e.mu.Lock()
	cb := e.OnAlert
	cb(e.state) // want `callback e.OnAlert \(via cb\) invoked while e.mu is held`
	e.mu.Unlock()
}

// goodCopyThenCall is the PR 1 fix: copy under the lock, call after.
func (e *Engine) goodCopyThenCall() {
	e.mu.Lock()
	cb := e.OnAlert
	v := e.state
	e.mu.Unlock()
	if cb != nil {
		cb(v)
	}
}

// goodEmissionLock serializes the callback stream with a lock that
// guards no state — the emitMu idiom; exempt by name.
func (e *Engine) goodEmissionLock(v int) {
	e.emitMu.Lock()
	defer e.emitMu.Unlock()
	if e.OnAlert != nil {
		e.OnAlert(v)
	}
}

// goodUnrelatedLock holds a DIFFERENT struct's lock; calling our
// callback cannot reenter that struct.
func (e *Engine) goodUnrelatedLock(other *Engine, v int) {
	other.mu.Lock()
	defer other.mu.Unlock()
	if e.OnAlert != nil {
		e.OnAlert(v)
	}
}

// goodMethodCall: calling a method (not a callback field) under the
// lock is ordinary synchronized code.
func (e *Engine) goodMethodCall() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.bump()
}

func (e *Engine) bump() { e.state++ }

// goodAsync hands the callback to a fresh goroutine; it does not run
// under our lock.
func (e *Engine) goodAsync(v int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	go func() {
		if e.OnAlert != nil {
			e.OnAlert(v)
		}
	}()
}
