// Package a is the wrapsentinel corpus: every way the PR 4 give-up
// sentinels have been (or could be) severed from errors.Is, next to
// the blessed forms.
package a

import (
	"errors"
	"fmt"
)

// Exported sentinels in the lifecycle style.
var (
	ErrGiveUp   = errors.New("a: retries exhausted")
	ErrNotReady = errors.New("a: not ready")
)

// errInternal is unexported: not part of the contract, not checked.
var errInternal = errors.New("a: internal")

func badVerbWrap(cause error) error {
	return fmt.Errorf("%v: %w", ErrGiveUp, cause) // want `sentinel ErrGiveUp wrapped with %v`
}

func badStringVerb() error {
	return fmt.Errorf("gave up: %s", ErrGiveUp) // want `sentinel ErrGiveUp wrapped with %s`
}

func badCauseLost(cause error) error {
	return fmt.Errorf("%w (after %v)", ErrGiveUp, cause) // want `error cause formatted with %v inside fmt.Errorf`
}

func badStringSurgery() string {
	return "failed: " + ErrGiveUp.Error() // want `ErrGiveUp.Error\(\) turns the sentinel into a bare string`
}

func badCompare(err error) bool {
	return err == ErrGiveUp // want `comparison with ErrGiveUp using == fails on wrapped errors`
}

func badCompareNeq(err error) bool {
	return err != ErrNotReady // want `comparison with ErrNotReady using != fails on wrapped errors`
}

func badSwitch(err error) string {
	switch err {
	case ErrGiveUp: // want `switch case ErrGiveUp compares errors directly`
		return "gave up"
	}
	return ""
}

// goodDoubleWrap is the lifecycle convention: both halves stay in the
// chain.
func goodDoubleWrap(cause error) error {
	return fmt.Errorf("%w: %w", ErrGiveUp, cause)
}

// goodIs is the blessed comparison.
func goodIs(err error) bool {
	return errors.Is(err, ErrGiveUp)
}

// goodNilCheck: nil comparisons are not sentinel comparisons.
func goodNilCheck(err error) bool {
	return err == nil || errInternal != nil
}

// goodUnexported: the contract covers exported sentinels only.
func goodUnexported(err error) bool {
	return err == errInternal
}

// goodMessageOnly: %v on a non-error value is ordinary formatting.
func goodMessageOnly(n int) error {
	return fmt.Errorf("bad count %v", n)
}
