package wrapsentinel_test

import (
	"testing"

	"bglpred/internal/analysis/analysistest"
	"bglpred/internal/analysis/wrapsentinel"
)

func TestWrapSentinel(t *testing.T) {
	findings := analysistest.Run(t, wrapsentinel.Analyzer, "a")
	if want := 7; len(findings) != want {
		t.Errorf("got %d findings, want %d: %v", len(findings), want, findings)
	}
}
