// Package wrapsentinel enforces the PR 4 retry/give-up error
// contract: exported Err… sentinels must stay visible to errors.Is
// through every wrapping layer. Three ways the contract silently
// breaks:
//
//   - fmt.Errorf("…: %v", ErrGiveUp) — formats the sentinel into the
//     message and severs the chain; callers doing
//     errors.Is(err, ErrGiveUp) stop matching (the lifecycle
//     checkpoint/retrain give-up paths depend on exactly this).
//   - err == ErrSomething — direct comparison fails on any wrapped
//     error even when errors.Is would match.
//   - ErrX.Error() string surgery — once a sentinel is a string, no
//     inspection works at all.
//
// The analyzer also flags any error-typed argument formatted with
// %v/%s/%q inside fmt.Errorf: wrapping a cause with anything but %w
// discards it from the chain (the "%w: %w" double-wrap convention of
// the lifecycle layer exists because both halves matter).
package wrapsentinel

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"bglpred/internal/analysis"
)

// Analyzer is the sentinel-wrapping checker.
var Analyzer = &analysis.Analyzer{
	Name: "wrapsentinel",
	Doc: "require %w (never %v/%s or string surgery) when wrapping error sentinels, " +
		"and errors.Is instead of == against Err… sentinels (PR 4 contract)",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if analysis.IsPkgFunc(info, n, "fmt", "Errorf") {
					checkErrorf(pass, n)
				}
				checkSentinelError(pass, n)
			case *ast.BinaryExpr:
				checkComparison(pass, n)
			case *ast.SwitchStmt:
				checkSwitch(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// sentinelOf resolves an expression to the exported package-level
// error sentinel it names (ErrFoo or pkg.ErrFoo), or nil.
func sentinelOf(info *types.Info, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	name := v.Name()
	if len(name) < 4 || !strings.HasPrefix(name, "Err") || name[3] < 'A' || name[3] > 'Z' {
		return nil
	}
	return v
}

// isErrorType reports whether t is or implements error.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errType) || types.Implements(types.NewPointer(t), errType) ||
		types.Identical(t, errType)
}

// verb is one parsed format verb.
type verb struct {
	letter byte
	argIdx int // index into the variadic args, -1 if none consumed
}

// parseVerbs extracts verbs and their argument mapping from a format
// string; explicit argument indexes (%[1]d) abort parsing — rare, and
// not worth mismatched reports.
func parseVerbs(format string) ([]verb, bool) {
	var out []verb
	arg := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			continue
		}
		for i < len(format) {
			c := format[i]
			if c == '[' {
				return nil, false
			}
			if c == '*' {
				arg++
				i++
				continue
			}
			if strings.ContainsRune("+-# 0123456789.", rune(c)) {
				i++
				continue
			}
			break
		}
		if i >= len(format) {
			break
		}
		out = append(out, verb{letter: format[i], argIdx: arg})
		arg++
	}
	return out, true
}

// checkErrorf inspects one fmt.Errorf call.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	verbs, ok := parseVerbs(format)
	if !ok {
		return
	}
	args := call.Args[1:]
	for _, v := range verbs {
		if v.argIdx >= len(args) {
			continue
		}
		arg := args[v.argIdx]
		if v.letter == 'w' {
			continue
		}
		if s := sentinelOf(pass.TypesInfo, arg); s != nil {
			pass.Report(analysis.Diagnostic{
				Pos: arg.Pos(),
				Message: fmt.Sprintf("sentinel %s wrapped with %%%c; errors.Is(err, %s) will no longer match",
					s.Name(), v.letter, s.Name()),
				SuggestedFix: fmt.Sprintf("use %%w for %s", s.Name()),
			})
			continue
		}
		if (v.letter == 'v' || v.letter == 's' || v.letter == 'q') && isErrorType(pass.TypesInfo.TypeOf(arg)) {
			pass.Report(analysis.Diagnostic{
				Pos: arg.Pos(),
				Message: fmt.Sprintf("error cause formatted with %%%c inside fmt.Errorf discards it from the error chain",
					v.letter),
				SuggestedFix: "wrap the cause with %w so errors.Is still sees it",
			})
		}
	}
}

// checkSentinelError flags ErrX.Error() — string surgery on a
// sentinel kills every form of inspection downstream.
func checkSentinelError(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
		return
	}
	if s := sentinelOf(pass.TypesInfo, sel.X); s != nil {
		pass.Report(analysis.Diagnostic{
			Pos:          call.Pos(),
			Message:      fmt.Sprintf("%s.Error() turns the sentinel into a bare string; no caller can match it again", s.Name()),
			SuggestedFix: fmt.Sprintf("pass %s itself and wrap with %%w", s.Name()),
		})
	}
}

// checkComparison flags err ==/!= ErrX.
func checkComparison(pass *analysis.Pass, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	for _, pair := range [2][2]ast.Expr{{b.X, b.Y}, {b.Y, b.X}} {
		s := sentinelOf(pass.TypesInfo, pair[0])
		if s == nil {
			continue
		}
		if id, ok := ast.Unparen(pair[1]).(*ast.Ident); ok && id.Name == "nil" {
			continue
		}
		pass.Report(analysis.Diagnostic{
			Pos: b.Pos(),
			Message: fmt.Sprintf("comparison with %s using %s fails on wrapped errors; the retry/give-up paths wrap (PR 4 contract)",
				s.Name(), b.Op),
			SuggestedFix: fmt.Sprintf("use errors.Is(err, %s)", s.Name()),
		})
		return
	}
}

// checkSwitch flags `switch err { case ErrX: }` — the same defeat in
// switch clothing.
func checkSwitch(pass *analysis.Pass, s *ast.SwitchStmt) {
	if s.Tag == nil || !isErrorType(pass.TypesInfo.TypeOf(s.Tag)) {
		return
	}
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if sent := sentinelOf(pass.TypesInfo, e); sent != nil {
				pass.Report(analysis.Diagnostic{
					Pos:          e.Pos(),
					Message:      fmt.Sprintf("switch case %s compares errors directly and fails on wrapped errors", sent.Name()),
					SuggestedFix: fmt.Sprintf("use if/else with errors.Is(err, %s)", sent.Name()),
				})
			}
		}
	}
}
