package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// IgnorePrefix is the in-source suppression marker. A comment of the
// form
//
//	//bglvet:ignore <analyzer> <reason>
//
// placed on the offending line (trailing) or on the line immediately
// above silences that analyzer's findings on that line. The reason is
// mandatory — an unexplained suppression is itself a finding — and an
// ignore that silences nothing is reported as stale, so suppressions
// cannot outlive the code they excuse.
const IgnorePrefix = "//bglvet:ignore"

// ignore is one parsed suppression comment.
type ignore struct {
	analyzer string
	reason   string
	file     string
	line     int
	pos      token.Pos
	used     bool
	// broken marks a malformed or unknown-analyzer ignore; it is
	// reported directly and exempt from staleness.
	broken bool
}

// lineKey addresses findings and ignores by file and line.
type lineKey struct {
	file string
	line int
}

// scanIgnores parses every suppression comment in a package.
// known is the full analyzer registry (not just the enabled set), so
// disabling an analyzer for a run does not misreport its ignores as
// referring to an unknown checker.
func scanIgnores(fset *token.FileSet, files []*ast.File, known map[string]bool, report func(Finding)) map[lineKey][]*ignore {
	out := make(map[lineKey][]*ignore)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, IgnorePrefix)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				ig := &ignore{file: pos.Filename, line: pos.Line, pos: c.Pos()}
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					ig.broken = true
					report(Finding{
						Analyzer: MetaName, Pos: pos,
						Message:      "malformed ignore: missing analyzer name and reason",
						SuggestedFix: fmt.Sprintf("write %q", IgnorePrefix+" <analyzer> <reason>"),
					})
				case len(fields) == 1:
					ig.broken = true
					report(Finding{
						Analyzer: MetaName, Pos: pos,
						Message: fmt.Sprintf("ignore for %q has no reason; unexplained suppressions are not allowed", fields[0]),
					})
				case !known[fields[0]]:
					ig.broken = true
					report(Finding{
						Analyzer: MetaName, Pos: pos,
						Message: fmt.Sprintf("ignore names unknown analyzer %q", fields[0]),
					})
				default:
					ig.analyzer = fields[0]
					ig.reason = strings.Join(fields[1:], " ")
				}
				out[lineKey{pos.Filename, pos.Line}] = append(out[lineKey{pos.Filename, pos.Line}], ig)
			}
		}
	}
	return out
}

// positionOf rebuilds a printable position for an ignore comment.
func positionOf(ig *ignore) token.Position {
	return token.Position{Filename: ig.file, Line: ig.line}
}

// suppressed consumes a matching ignore for a finding, if one exists
// on the finding's line or the line above.
func suppressed(ignores map[lineKey][]*ignore, f Finding) bool {
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		for _, ig := range ignores[lineKey{f.Pos.Filename, line}] {
			if !ig.broken && ig.analyzer == f.Analyzer {
				ig.used = true
				return true
			}
		}
	}
	return false
}
