package analysis

import "testing"

// TestLoaderResolvesModuleAndStdlib loads a real module package whose
// dependency closure crosses into GOROOT (sync, time, fmt) and checks
// types came out usable.
func TestLoaderResolvesModuleAndStdlib(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if l.ModulePath != "bglpred" {
		t.Fatalf("module path = %q", l.ModulePath)
	}
	pkg, err := l.Load("bglpred/internal/faultinject")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types.Name() != "faultinject" {
		t.Fatalf("package name = %q", pkg.Types.Name())
	}
	inj := pkg.Types.Scope().Lookup("Injector")
	if inj == nil {
		t.Fatal("Injector not found in type-checked package")
	}
	if len(pkg.Info.Defs) == 0 {
		t.Fatal("no Defs recorded; types.Info not populated")
	}
	// Cached on second load: same pointer.
	again, err := l.Load("bglpred/internal/faultinject")
	if err != nil {
		t.Fatal(err)
	}
	if again != pkg {
		t.Fatal("second Load did not hit the cache")
	}
}

// TestLoaderLoadAll walks the module; the serving stack pulls in
// net/http, exercising GOROOT vendor resolution.
func TestLoaderLoadAll(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		seen[p.Path] = true
	}
	for _, want := range []string{"bglpred", "bglpred/internal/serve", "bglpred/cmd/bglserved"} {
		if !seen[want] {
			t.Errorf("LoadAll missed %s (got %d packages)", want, len(pkgs))
		}
	}
}
