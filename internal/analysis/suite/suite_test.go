package suite_test

import (
	"go/ast"
	"strings"
	"testing"

	"bglpred/internal/analysis"
	"bglpred/internal/analysis/hotpathalloc"
	"bglpred/internal/analysis/suite"
)

// TestZeroFindings runs the full bglvet suite over the whole module
// in-process and requires a clean bill: the tree stays at a
// zero-finding baseline, so any new violation (or newly stale ignore)
// fails the build here as well as in the CI bglvet job.
func TestZeroFindings(t *testing.T) {
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; the module walk looks broken", len(pkgs))
	}
	findings, err := suite.New().Run(l, pkgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f.String())
	}
}

// TestHotpathRootsAnnotated pins the //bglvet:hotpath annotation set:
// the zero-finding gate above only fires when findings appear, so
// deleting a root marker would silently shrink hotpathalloc's closure
// to nothing. This test fails instead.
func TestHotpathRootsAnnotated(t *testing.T) {
	want := map[string][]string{
		"internal/raslog": {"ReadFrame", "PeekWireEvent"},
		"internal/assoc":  {"countChunkPacked"},
		"internal/serve":  {"ingestWire"},
		"internal/online": {"IngestBatch"},
	}
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	for rel, fns := range want {
		pkg, err := l.Load("bglpred/" + rel)
		if err != nil {
			t.Fatal(err)
		}
		marked := make(map[string]bool)
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					if strings.HasPrefix(c.Text, hotpathalloc.HotpathMarker) {
						marked[fd.Name.Name] = true
					}
				}
			}
		}
		for _, fn := range fns {
			if !marked[fn] {
				t.Errorf("%s.%s lost its %s annotation", rel, fn, hotpathalloc.HotpathMarker)
			}
		}
	}
}

// TestFilterScopes pins the package-scoping policy.
func TestFilterScopes(t *testing.T) {
	cases := []struct {
		pkg, analyzer string
		want          bool
	}{
		{"bglpred/internal/preprocess", "determinism", true},
		{"bglpred/internal/experiments", "determinism", true},
		{"bglpred/internal/ecg", "determinism", true},
		{"bglpred/internal/serve", "determinism", false},
		{"bglpred/internal/serve", "metricconv", true},
		{"bglpred/cmd/bglserved", "metricconv", true},
		{"bglpred/internal/preprocess", "metricconv", false},
		{"bglpred/internal/serve", "callbacklock", true},
		{"bglpred/internal/online", "wrapsentinel", true},
		{"bglpred/internal/lifecycle", "faultpoint", true},
		{"bglpred/internal/serve", "lockorder", true},
		{"bglpred/internal/ledger", "lockorder", true},
		{"bglpred/internal/raslog", "lockorder", false},
		{"bglpred/internal/cluster", "goroutinelife", true},
		{"bglpred/internal/lifecycle", "goroutinelife", true},
		{"bglpred/internal/assoc", "goroutinelife", false},
		{"bglpred/internal/raslog", "hotpathalloc", true},
		{"bglpred/internal/assoc", "hotpathalloc", true},
		{"bglpred/internal/online", "hotpathalloc", true},
		{"bglpred/internal/ledger", "hotpathalloc", false},
	}
	for _, c := range cases {
		if got := suite.Filter(c.pkg, c.analyzer); got != c.want {
			t.Errorf("Filter(%q, %q) = %v, want %v", c.pkg, c.analyzer, got, c.want)
		}
	}
}

// TestRegistryComplete pins the registry contents: every contract
// named in DESIGN.md section 8 has its checker present.
func TestRegistryComplete(t *testing.T) {
	want := []string{
		"callbacklock", "determinism", "faultpoint", "goroutinelife",
		"hotpathalloc", "lockorder", "metricconv", "wrapsentinel",
	}
	known := suite.Known()
	if len(known) != len(want) {
		t.Fatalf("registry has %d analyzers, want %d", len(known), len(want))
	}
	for _, name := range want {
		if !known[name] {
			t.Errorf("registry is missing %s", name)
		}
	}
}
