// Package suite assembles the bglvet registry: the eight invariant
// analyzers plus the policy of which packages each one patrols.
//
// callbacklock, faultpoint and wrapsentinel apply everywhere — their
// contracts (no callbacks under locks, nil-tolerant fault points,
// errors.Is-visible sentinels) are repo-wide. determinism is scoped
// to the pipeline packages whose outputs must be byte-stable run to
// run, and metricconv to the packages that hand-write the Prometheus
// exposition. The concurrency pair — lockorder and goroutinelife —
// patrols the packages that own mutexes and long-lived goroutines
// (serve, cluster, ledger, lifecycle, online), and hotpathalloc the
// packages the //bglvet:hotpath roots and their call closures live in
// (raslog, assoc, serve, online, catalog).
package suite

import (
	"strings"

	"bglpred/internal/analysis"
	"bglpred/internal/analysis/callbacklock"
	"bglpred/internal/analysis/determinism"
	"bglpred/internal/analysis/faultpoint"
	"bglpred/internal/analysis/goroutinelife"
	"bglpred/internal/analysis/hotpathalloc"
	"bglpred/internal/analysis/lockorder"
	"bglpred/internal/analysis/metricconv"
	"bglpred/internal/analysis/wrapsentinel"
)

// All returns the full analyzer registry in name order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		callbacklock.Analyzer,
		determinism.Analyzer,
		faultpoint.Analyzer,
		goroutinelife.Analyzer,
		hotpathalloc.Analyzer,
		lockorder.Analyzer,
		metricconv.Analyzer,
		wrapsentinel.Analyzer,
	}
}

// Known is the registry as a name set — the validator for
// //bglvet:ignore comments, which must name a real analyzer even when
// only a subset runs.
func Known() map[string]bool {
	out := make(map[string]bool)
	for _, a := range All() {
		out[a.Name] = true
	}
	return out
}

// deterministicPkgs are the pipeline stages whose outputs feed
// experiment artifacts and must be byte-identical across runs
// (ROADMAP: "two runs of the pipeline produce identical tables").
var deterministicPkgs = map[string]bool{
	"preprocess":  true,
	"assoc":       true,
	"catalog":     true,
	"predictor":   true,
	"ecg":         true,
	"eval":        true,
	"report":      true,
	"experiments": true,
}

// metricPkgs hand-write the Prometheus text exposition.
var metricPkgs = []string{"internal/serve", "cmd/bglserved", "internal/cluster", "cmd/bglgate"}

// concurrencyPkgs own the mutexes and long-lived goroutines the
// lockorder/goroutinelife pair patrols: the serving layer's shard
// supervisors, the cluster gate's replay loops, the ledger's
// group-commit leader, lifecycle's retrain machinery and the online
// engine's dual-lock emission path.
var concurrencyPkgs = []string{
	"internal/serve", "internal/cluster", "internal/ledger",
	"internal/lifecycle", "internal/online",
}

// hotPkgs hold the //bglvet:hotpath roots (binwire decoding, packed
// Apriori counting, serve/online ingest) and the packages their call
// closures stay within.
var hotPkgs = []string{
	"internal/raslog", "internal/assoc", "internal/serve",
	"internal/online", "internal/catalog",
}

// Filter is the default package-scoping policy.
func Filter(pkgPath, analyzer string) bool {
	switch analyzer {
	case determinism.Analyzer.Name:
		return deterministicPkgs[lastElem(pkgPath)]
	case metricconv.Analyzer.Name:
		return hasSuffixIn(pkgPath, metricPkgs)
	case lockorder.Analyzer.Name, goroutinelife.Analyzer.Name:
		return hasSuffixIn(pkgPath, concurrencyPkgs)
	case hotpathalloc.Analyzer.Name:
		return hasSuffixIn(pkgPath, hotPkgs)
	}
	return true
}

func hasSuffixIn(pkgPath string, suffixes []string) bool {
	for _, suffix := range suffixes {
		if pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix) {
			return true
		}
	}
	return false
}

func lastElem(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// New returns the default suite: every analyzer, default scoping.
func New() *analysis.Suite {
	return &analysis.Suite{Analyzers: All(), Filter: Filter, Known: Known()}
}
