// Package analysis is a self-contained static-analysis framework in
// the spirit of golang.org/x/tools/go/analysis, built only on the
// standard library's go/ast, go/parser, go/token and go/types (this
// repo vendors no third-party modules). It exists to turn the
// concurrency, determinism and resilience contracts written down in
// DESIGN.md — callbacks outside locks (PR 1), bit-identical
// deterministic pipelines (PR 3), nil-safe fault points and %w
// sentinel wrapping (PR 4) — into machine-checked invariants that run
// on every build via cmd/bglvet.
//
// The shape mirrors x/tools deliberately (Analyzer, Pass, Diagnostic,
// an analysistest-style corpus runner) so the suite can migrate to
// the real framework wholesale if the module ever takes on the
// dependency; the one addition is Analyzer.Finish, a whole-program
// hook used for cross-package invariants such as fault-point name
// uniqueness.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in findings, command-line flags and
	// //bglvet:ignore suppression comments.
	Name string
	// Doc is the one-paragraph contract statement shown by bglvet -help.
	Doc string
	// Run analyzes a single package and reports findings via
	// pass.Report. Its result value (may be nil) is collected per
	// package and handed to Finish.
	Run func(pass *Pass) (any, error)
	// Finish, when non-nil, runs once after every package has been
	// analyzed, seeing all per-package Run results — the hook for
	// whole-program invariants (e.g. fault-point names unique across
	// the repo). Findings are reported through report.
	Finish func(results []PkgResult, report func(Finding))
}

// PkgResult pairs a package path with its Run result for Finish.
type PkgResult struct {
	Path   string
	Result any
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Load resolves another package of the module (or a dependency) to
	// its loaded form, ASTs included — cross-package syntax access for
	// analyzers that must read a dependency's method bodies (faultpoint
	// derives the nil-safe Injector method set this way).
	Load func(path string) (*Package, error)
	// Report records one finding.
	Report func(Diagnostic)
}

// Diagnostic is one finding inside the package under analysis.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// SuggestedFix, when non-empty, is the mechanical remedy ("wrap
	// with %w instead of %v"); bglvet prints it after the message.
	SuggestedFix string
}

// Finding is a resolved diagnostic: position translated, analyzer
// attached, suppression applied. This is what the runner and bglvet
// traffic in.
type Finding struct {
	Analyzer     string
	Pos          token.Position
	Message      string
	SuggestedFix string
}

// String renders a finding the way bglvet prints it.
func (f Finding) String() string {
	s := f.Pos.String() + ": [" + f.Analyzer + "] " + f.Message
	if f.SuggestedFix != "" {
		s += " (fix: " + f.SuggestedFix + ")"
	}
	return s
}
