// Package goroutinelife enforces the goroutine-lifecycle contract the
// serving layer is built on: every goroutine the infrastructure spawns
// must be joinable or cancellable, because a predictor that leaks
// goroutines under sustained ingest eventually becomes the failure it
// was built to predict. A `go` statement passes if its body carries at
// least one of the accepted disciplines:
//
//   - WaitGroup join — the body calls (usually defers) a
//     sync.WaitGroup Done, pairing with the spawner's Add/Wait (the
//     supervised shard workers, the cluster gate's loops);
//
//   - cancel or drain signal — the body receives from a channel:
//     a ctx.Done()/close-channel select, or a `for range ch` worker
//     loop that terminates when the spawner closes the channel;
//
//   - joined hand-off — the body sends on or closes a channel that the
//     spawning function itself receives from (the barrier shape:
//     `go func() { wg.Wait(); close(done) }()` with a later
//     `<-done`), so the spawner observes termination.
//
// Anything else is a fire-and-forget goroutine that can outlive Close
// and is reported. Bodies are resolved through same-package
// declarations or, for `go pkg.Worker()`, through the loader's
// cross-package syntax hook; a body that cannot be resolved at all
// (a computed function value) is reported too, because the discipline
// cannot be verified. Capturing a loop variable aggravates the
// finding: the leaked goroutines multiply per iteration.
package goroutinelife

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"bglpred/internal/analysis"
)

// Analyzer is the goroutine-lifecycle checker.
var Analyzer = &analysis.Analyzer{
	Name: "goroutinelife",
	Doc: "every spawned goroutine must carry a join or cancel discipline " +
		"(WaitGroup.Done, channel receive/ctx.Done, or a result channel the spawner receives from)",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	// Same-package declaration index, for `go s.worker()` bodies.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}

	for _, file := range pass.Files {
		analysis.WalkStack(file, func(n ast.Node, stack []ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			check(pass, decls, g, stack)
			return true
		})
	}
	return nil, nil
}

// check classifies one go statement.
func check(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, g *ast.GoStmt, stack []ast.Node) {
	body, info, resolved := goBody(pass, decls, g)
	if resolved && disciplined(pass, body, info, g, stack) {
		return
	}

	var msg string
	if !resolved {
		msg = "cannot resolve this goroutine's body (computed function value), so its join/cancel discipline cannot be verified"
	} else {
		msg = "fire-and-forget goroutine: no WaitGroup.Done, no channel receive or ctx.Done, and no result channel the spawner receives from; it can outlive Close"
	}
	if v := capturedLoopVar(pass, g, stack); v != "" {
		msg += fmt.Sprintf("; it also captures loop variable %q, so one leaks per iteration", v)
	}
	pass.Report(analysis.Diagnostic{
		Pos:     g.Pos(),
		Message: msg,
		SuggestedFix: "pair with wg.Add(1)/defer wg.Done(), select on a ctx.Done()/close channel, " +
			"or have the spawner receive the goroutine's completion",
	})
}

// goBody resolves the statement's function body and the types.Info
// that describes it: a literal, a same-package declaration, or a
// cross-package declaration reached through the loader.
func goBody(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, g *ast.GoStmt) (*ast.BlockStmt, *types.Info, bool) {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body, pass.TypesInfo, true
	}
	fn := analysis.CalleeFunc(pass.TypesInfo, g.Call)
	if fn == nil || fn.Pkg() == nil {
		return nil, nil, false
	}
	if fd, ok := decls[fn]; ok {
		return fd.Body, pass.TypesInfo, true
	}
	if fn.Pkg() == pass.Pkg || pass.Load == nil {
		return nil, nil, false
	}
	dep, err := pass.Load(fn.Pkg().Path())
	if err != nil {
		return nil, nil, false
	}
	for _, file := range dep.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if dep.Info.Defs[fd.Name] == fn {
				return fd.Body, dep.Info, true
			}
		}
	}
	return nil, nil, false
}

// disciplined reports whether the goroutine body carries any accepted
// join/cancel mechanism.
func disciplined(pass *analysis.Pass, body *ast.BlockStmt, info *types.Info, g *ast.GoStmt, stack []ast.Node) bool {
	joins := false
	var sent []types.Object // channels the body closes or sends on
	ast.Inspect(body, func(n ast.Node) bool {
		if joins {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			// wg.Done() — the WaitGroup join.
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if fn, ok := info.Uses[sel.Sel].(*types.Func); ok {
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil &&
						analysis.IsNamed(sig.Recv().Type(), "sync", "WaitGroup") {
						joins = true
						return false
					}
				}
			}
			// close(ch) — candidate joined hand-off.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					if obj := chanObj(info, n.Args[0]); obj != nil {
						sent = append(sent, obj)
					}
				}
			}
		case *ast.UnaryExpr:
			// <-ch anywhere (select case, assignment, statement) is a
			// cancel/termination signal the goroutine listens to.
			if n.Op == token.ARROW {
				joins = true
				return false
			}
		case *ast.RangeStmt:
			// for range ch — the worker-drain loop; ends when the
			// spawner closes the channel.
			if t, ok := info.Types[n.X]; ok {
				if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
					joins = true
					return false
				}
			}
		case *ast.SendStmt:
			if obj := chanObj(info, n.Chan); obj != nil {
				sent = append(sent, obj)
			}
		}
		return true
	})
	if joins {
		return true
	}
	if len(sent) == 0 {
		return false
	}
	// Joined hand-off: the spawning function receives from a channel
	// the body completes through. Only meaningful when spawner and
	// body share one types.Info (literals and same-package bodies).
	if info != pass.TypesInfo {
		return false
	}
	encl := enclosingBody(stack)
	if encl == nil {
		return false
	}
	joined := false
	ast.Inspect(encl, func(n ast.Node) bool {
		if joined {
			return false
		}
		recv, ok := n.(*ast.UnaryExpr)
		if !ok || recv.Op != token.ARROW {
			return true
		}
		obj := chanObj(pass.TypesInfo, recv.X)
		for _, s := range sent {
			if obj != nil && obj == s {
				joined = true
				return false
			}
		}
		return true
	})
	return joined
}

// chanObj resolves a channel expression to the variable object at the
// end of its selector path, nil for anything unnamed.
func chanObj(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

// enclosingBody finds the innermost function body the go statement
// sits in — the scope whose receives can join a hand-off channel.
func enclosingBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncLit:
			return f.Body
		case *ast.FuncDecl:
			return f.Body
		}
	}
	return nil
}

// capturedLoopVar returns the name of a for/range variable of an
// enclosing loop that the goroutine literal's body references, "" if
// none. (Since Go 1.22 each iteration gets a fresh variable, so this
// is not a data race — but an undisciplined goroutine in a loop leaks
// one goroutine per iteration, which is why it aggravates rather than
// constitutes the finding.)
func capturedLoopVar(pass *analysis.Pass, g *ast.GoStmt, stack []ast.Node) string {
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return ""
	}
	loopVars := make(map[types.Object]string)
	add := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				loopVars[obj] = id.Name
			}
		}
	}
	for _, n := range stack {
		switch n := n.(type) {
		case *ast.RangeStmt:
			add(n.Key)
			add(n.Value)
		case *ast.ForStmt:
			if a, ok := n.Init.(*ast.AssignStmt); ok {
				for _, lhs := range a.Lhs {
					add(lhs)
				}
			}
		}
	}
	if len(loopVars) == 0 {
		return ""
	}
	// A variable passed as a call argument is a copy, not a capture.
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if name, ok := loopVars[pass.TypesInfo.Uses[id]]; ok {
				captured = name
				return false
			}
		}
		return true
	})
	return captured
}
