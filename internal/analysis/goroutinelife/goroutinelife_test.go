package goroutinelife_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bglpred/internal/analysis"
	"bglpred/internal/analysis/analysistest"
	"bglpred/internal/analysis/goroutinelife"
)

func TestGoroutinelifeCorpus(t *testing.T) {
	analysistest.Run(t, goroutinelife.Analyzer, "a")
}

// TestCrossPackageBodies: worka spawns workc functions; the verdict
// (Drain is disciplined, Tick is not) requires loading workc's syntax
// through Pass.Load.
func TestCrossPackageBodies(t *testing.T) {
	findings := analysistest.Run(t, goroutinelife.Analyzer, "worka")
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want exactly 1 (the Tick spawn): %v", len(findings), findings)
	}
}

// runOn analyzes one synthesized package and returns the surviving
// findings — the suppression-semantics harness.
func runOn(t *testing.T, src string) []analysis.Finding {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	l.ExtraRoots = map[string]string{"a": dir}
	pkg, err := l.Load("a")
	if err != nil {
		t.Fatal(err)
	}
	s := &analysis.Suite{Analyzers: []*analysis.Analyzer{goroutinelife.Analyzer}}
	findings, err := s.Run(l, []*analysis.Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

// TestIgnoreSilencesExactlyOneFinding: two identical fire-and-forget
// spawns, one reasoned ignore — only the annotated one goes quiet.
func TestIgnoreSilencesExactlyOneFinding(t *testing.T) {
	findings := runOn(t, `package a

var n int

func excused() {
	//bglvet:ignore goroutinelife process-lifetime sampler, dies with main
	go func() { n++ }()
}

func unexcused() {
	go func() { n++ }()
}
`)
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want exactly 1 (the unexcused spawn): %v", len(findings), findings)
	}
	if f := findings[0]; f.Analyzer != "goroutinelife" || f.Pos.Line != 11 {
		t.Fatalf("surviving finding is not the unexcused spawn: %v", f)
	}
}

// TestStaleIgnoreReported: an ignore on a disciplined spawn is itself
// a finding.
func TestStaleIgnoreReported(t *testing.T) {
	findings := runOn(t, `package a

import "sync"

var n int

func clean(wg *sync.WaitGroup) {
	wg.Add(1)
	//bglvet:ignore goroutinelife this spawn was undisciplined once
	go func() {
		defer wg.Done()
		n++
	}()
	wg.Wait()
}
`)
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1 stale-ignore report: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Analyzer != analysis.MetaName || !strings.Contains(f.Message, "stale ignore") {
		t.Fatalf("want a stale-ignore meta finding, got: %v", f)
	}
}
