// Package worka spawns goroutines whose bodies live in workc; the
// verdict depends on what those bodies do, which only the
// cross-package loader hook can see.
package worka

import "workc"

func Spawn(ch chan int) {
	go workc.Drain(ch)
	go workc.Tick() // want `fire-and-forget goroutine`
}
