// Corpus for the goroutinelife analyzer: fire-and-forget goroutines
// (reported) against every join/cancel discipline the repo uses
// (silent).
package a

import "sync"

var n int

func work() { n++ }

// --- positives ---

func fireAndForget() {
	go func() { // want `fire-and-forget goroutine`
		work()
	}()
}

func leakPerIteration(items []int) {
	for i := range items {
		go func() { // want `fire-and-forget goroutine.*captures loop variable "i"`
			n += i
		}()
	}
}

func unresolvable(f func()) {
	go f() // want `cannot resolve this goroutine's body`
}

func namedLeaker() { work() }

func spawnsNamedLeaker() {
	go namedLeaker() // want `fire-and-forget goroutine`
}

// --- negatives: the accepted disciplines ---

// waitGroupJoin: the canonical Add/Done/Wait pair.
func waitGroupJoin(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

type S struct {
	wg sync.WaitGroup
	ch chan int
}

// runShard is the supervised-worker shape: a named method whose body
// both joins (defer Done) and drains (range over the feed channel).
func (s *S) runShard() {
	defer s.wg.Done()
	for v := range s.ch {
		n += v
	}
}

func (s *S) start() {
	s.wg.Add(1)
	go s.runShard()
}

// cancelSelect listens on a close-channel; Close fires it.
func cancelSelect(done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				work()
			}
		}
	}()
}

// barrier is the Wait-then-close shape: the spawner joins by
// receiving from the channel the goroutine closes.
func barrier(wg *sync.WaitGroup) bool {
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	<-done
	return true
}

// scatter hands each result to a channel the spawner drains — the
// goroutines cannot outlive the collection loop. The loop variable is
// passed as an argument (a copy), not captured.
func scatter(items []int) int {
	res := make(chan int, len(items))
	for _, v := range items {
		go func(v int) {
			res <- v * 2
		}(v)
	}
	total := 0
	for range items {
		total += <-res
	}
	return total
}
