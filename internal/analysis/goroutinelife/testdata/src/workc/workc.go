// Package workc supplies goroutine bodies that worka spawns across
// the package boundary — the analyzer must fetch these bodies through
// the loader's cross-package syntax hook to judge them.
package workc

var N int

// Drain terminates when its feed channel closes: disciplined.
func Drain(ch chan int) {
	for v := range ch {
		N += v
	}
}

// Tick runs unsupervised: spawning it fire-and-forget is a finding at
// the spawn site.
func Tick() { N++ }
