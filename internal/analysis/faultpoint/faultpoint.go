// Package faultpoint enforces the PR 4 fault-injection contract: the
// production configuration is a nil *faultinject.Injector, so every
// fault point must compile down to a nil-receiver no-op. Concretely:
//
//   - Every exported Injector method must be nil-safe — begin with an
//     `if in == nil` guard or delegate every receiver use to methods
//     that do (Fire delegates to check). Verified on the faultinject
//     package itself.
//   - Every call site on an *Injector elsewhere must either invoke a
//     nil-safe method or sit inside an explicit `!= nil` guard — the
//     nil-safe method set is derived from the faultinject package's
//     sources at analysis time, not hardcoded, so adding an unsafe
//     method breaks its callers' builds, not production.
//   - Fault-point name literals must be unique across the repo: two
//     points minting the same name would make Hits/Fires accounting
//     and chaos-test assertions silently ambiguous. This is a
//     whole-program check (the analyzer's Finish hook).
package faultpoint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"bglpred/internal/analysis"
)

// Analyzer is the fault-point checker.
var Analyzer = &analysis.Analyzer{
	Name: "faultpoint",
	Doc: "verify faultinject call sites tolerate a nil injector and " +
		"fault-point name literals are unique across the repo (PR 4 contract)",
	Run:    run,
	Finish: finish,
}

// PointLit is one fault-point name minted from a string literal.
type PointLit struct {
	Name string
	Pos  token.Position
}

// result is the per-package Run result consumed by finish.
type result struct {
	points []PointLit
}

func run(pass *analysis.Pass) (any, error) {
	inj := findInjector(pass)
	if inj == nil {
		return nil, nil
	}
	safe, err := nilSafeMethods(pass, inj)
	if err != nil {
		return nil, err
	}
	if inj.self {
		checkExportedNilSafe(pass, inj, safe)
	}
	checkCallSites(pass, inj, safe)
	return &result{points: collectPoints(pass, inj)}, nil
}

// injector describes where the faultinject package is relative to the
// package under analysis.
type injector struct {
	pkg   *types.Package
	self  bool
	files []*ast.File // faultinject sources (own or loaded)
}

// findInjector locates the faultinject package (by package name and
// its Injector type): the package under analysis itself, or one of
// its direct imports. Matching by name rather than a hardcoded path
// keeps the analyzer honest in its own corpus, which ships a
// miniature faultinject with a deliberately unsafe method.
func findInjector(pass *analysis.Pass) *injector {
	if pass.Pkg.Name() == "faultinject" && pass.Pkg.Scope().Lookup("Injector") != nil {
		return &injector{pkg: pass.Pkg, self: true, files: pass.Files}
	}
	for _, imp := range pass.Pkg.Imports() {
		if imp.Name() == "faultinject" && imp.Scope().Lookup("Injector") != nil {
			loaded, err := pass.Load(imp.Path())
			if err != nil {
				return nil
			}
			return &injector{pkg: imp, files: loaded.Files}
		}
	}
	return nil
}

// injectorMethods returns the *Injector method declarations by name.
func injectorMethods(files []*ast.File) map[string]*ast.FuncDecl {
	out := make(map[string]*ast.FuncDecl)
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			t := fd.Recv.List[0].Type
			if star, ok := t.(*ast.StarExpr); ok {
				t = star.X
			}
			if id, ok := t.(*ast.Ident); ok && id.Name == "Injector" {
				out[fd.Name.Name] = fd
			}
		}
	}
	return out
}

// nilSafeMethods computes, by fixpoint over the faultinject sources,
// which Injector methods are no-ops on a nil receiver: the body
// either opens with an `if recv == nil` guard, or uses the receiver
// only to call other nil-safe methods (or compare it to nil).
func nilSafeMethods(pass *analysis.Pass, inj *injector) (map[string]bool, error) {
	methods := injectorMethods(inj.files)
	const (
		unknown = iota
		safeState
		unsafeState
	)
	state := make(map[string]int, len(methods))
	for name, fd := range methods {
		if fd.Body == nil {
			state[name] = unsafeState
			continue
		}
		if recvName(fd) == "" || hasNilGuard(fd) {
			state[name] = safeState
		}
	}
	// Propagate delegation until stable.
	for changed := true; changed; {
		changed = false
		for name, fd := range methods {
			if state[name] != unknown {
				continue
			}
			st := delegationState(fd, methods, state)
			if st != unknown {
				state[name] = st
				changed = true
			}
		}
	}
	safe := make(map[string]bool, len(methods))
	for name, st := range state {
		safe[name] = st == safeState
	}
	return safe, nil
}

// recvName is the receiver identifier, "" if unnamed (an unnamed
// receiver cannot be dereferenced — trivially nil-safe).
func recvName(fd *ast.FuncDecl) string {
	names := fd.Recv.List[0].Names
	if len(names) == 0 || names[0].Name == "_" {
		return ""
	}
	return names[0].Name
}

// hasNilGuard reports whether the body opens with `if recv == nil`.
func hasNilGuard(fd *ast.FuncDecl) bool {
	if len(fd.Body.List) == 0 {
		return true // empty body: nothing dereferences the receiver
	}
	ifs, ok := fd.Body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	cond, ok := ifs.Cond.(*ast.BinaryExpr)
	if !ok || cond.Op != token.EQL {
		return false
	}
	recv := recvName(fd)
	return (isIdent(cond.X, recv) && isIdent(cond.Y, "nil")) ||
		(isIdent(cond.Y, recv) && isIdent(cond.X, "nil"))
}

func isIdent(e ast.Expr, name string) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == name
}

// delegationState classifies a guardless method by its receiver uses:
// safe when every use is a call to a safe sibling or a nil
// comparison; unsafe on any direct dereference; unknown while a
// sibling's state is still unresolved.
func delegationState(fd *ast.FuncDecl, methods map[string]*ast.FuncDecl, state map[string]int) int {
	const (
		unknown = iota
		safeState
		unsafeState
	)
	recv := recvName(fd)
	verdict := safeState
	analysis.WalkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
		if verdict == unsafeState {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || id.Name != recv || len(stack) == 0 {
			return true
		}
		parent := stack[len(stack)-1]
		switch p := parent.(type) {
		case *ast.SelectorExpr:
			// recv.something — safe only as recv.M(...) with M safe.
			if len(stack) >= 2 {
				if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == parent {
					if _, isMethod := methods[p.Sel.Name]; isMethod {
						switch state[p.Sel.Name] {
						case safeState:
							return true
						case unknown:
							if verdict == safeState {
								verdict = unknown
							}
							return true
						}
					}
				}
			}
			verdict = unsafeState
		case *ast.BinaryExpr:
			if (p.Op == token.EQL || p.Op == token.NEQ) &&
				(isIdent(p.X, "nil") || isIdent(p.Y, "nil")) {
				return true
			}
			verdict = unsafeState
		default:
			verdict = unsafeState
		}
		return true
	})
	return verdict
}

// checkExportedNilSafe reports exported Injector methods that are not
// nil-safe, on the faultinject package itself.
func checkExportedNilSafe(pass *analysis.Pass, inj *injector, safe map[string]bool) {
	for name, fd := range injectorMethods(pass.Files) {
		if !ast.IsExported(name) || safe[name] {
			continue
		}
		pass.Report(analysis.Diagnostic{
			Pos: fd.Name.Pos(),
			Message: fmt.Sprintf("exported Injector method %s is not nil-safe; production fault points run with a nil injector",
				name),
			SuggestedFix: "open the method with `if " + recvDisplay(fd) + " == nil { return … }`",
		})
	}
}

func recvDisplay(fd *ast.FuncDecl) string {
	if n := recvName(fd); n != "" {
		return n
	}
	return "in"
}

// checkCallSites verifies every *Injector method call outside the
// faultinject package is nil-tolerant.
func checkCallSites(pass *analysis.Pass, inj *injector, safe map[string]bool) {
	if inj.self {
		return // internal helpers may assume non-nil receivers behind guards
	}
	for _, file := range pass.Files {
		analysis.WalkStack(file, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				return true
			}
			named := analysis.NamedType(sig.Recv().Type())
			if named == nil || named.Obj().Name() != "Injector" || named.Obj().Pkg() != inj.pkg {
				return true
			}
			if safe[fn.Name()] {
				return true
			}
			recvPath := analysis.PathString(sel.X)
			if recvPath != "" && guardedByNilCheck(stack, recvPath) {
				return true
			}
			pass.Report(analysis.Diagnostic{
				Pos: call.Pos(),
				Message: fmt.Sprintf("Injector.%s is not nil-safe and this call is not inside an `%s != nil` guard; "+
					"a production (nil) injector would panic here", fn.Name(), displayPath(recvPath)),
				SuggestedFix: fmt.Sprintf("guard the call with `if %s != nil` or make the method a nil-receiver no-op",
					displayPath(recvPath)),
			})
			return true
		})
	}
}

func displayPath(p string) string {
	if p == "" {
		return "<injector>"
	}
	return p
}

// guardedByNilCheck reports whether an enclosing if condition checks
// recvPath != nil.
func guardedByNilCheck(stack []ast.Node, recvPath string) bool {
	for _, anc := range stack {
		ifs, ok := anc.(*ast.IfStmt)
		if !ok {
			continue
		}
		found := false
		ast.Inspect(ifs.Cond, func(n ast.Node) bool {
			b, ok := n.(*ast.BinaryExpr)
			if ok && b.Op == token.NEQ {
				if (analysis.PathString(b.X) == recvPath && isIdent(b.Y, "nil")) ||
					(analysis.PathString(b.Y) == recvPath && isIdent(b.X, "nil")) {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// collectPoints gathers fault-point names minted from string literals:
// Point-typed consts/vars, Point("…") conversions, and string
// literals passed directly to Point parameters.
func collectPoints(pass *analysis.Pass, inj *injector) []PointLit {
	pointObj := inj.pkg.Scope().Lookup("Point")
	if pointObj == nil {
		return nil
	}
	pointType := pointObj.Type()
	var out []PointLit
	add := func(lit *ast.BasicLit) {
		if lit.Kind != token.STRING {
			return
		}
		if v, err := strconv.Unquote(lit.Value); err == nil {
			out = append(out, PointLit{Name: v, Pos: pass.Fset.Position(lit.Pos())})
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ValueSpec:
				for i, name := range n.Names {
					obj := pass.TypesInfo.Defs[name]
					if obj == nil || !types.Identical(obj.Type(), pointType) || i >= len(n.Values) {
						continue
					}
					if lit, ok := ast.Unparen(n.Values[i]).(*ast.BasicLit); ok {
						add(lit)
					}
				}
			case *ast.CallExpr:
				// Point("…") conversion.
				if tv, ok := pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() && types.Identical(tv.Type, pointType) {
					if len(n.Args) == 1 {
						if lit, ok := ast.Unparen(n.Args[0]).(*ast.BasicLit); ok {
							add(lit)
						}
					}
					return true
				}
				// String literal handed straight to a Point parameter.
				fn := analysis.CalleeFunc(pass.TypesInfo, n)
				if fn == nil {
					return true
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok {
					return true
				}
				for i, arg := range n.Args {
					pi := i
					if pi >= sig.Params().Len() {
						if !sig.Variadic() {
							break
						}
						pi = sig.Params().Len() - 1
					}
					if !types.Identical(sig.Params().At(pi).Type(), pointType) {
						continue
					}
					if lit, ok := ast.Unparen(arg).(*ast.BasicLit); ok {
						add(lit)
					}
				}
			}
			return true
		})
	}
	return out
}

// finish checks fault-point name uniqueness across every analyzed
// package.
func finish(results []analysis.PkgResult, report func(analysis.Finding)) {
	first := make(map[string]PointLit)
	for _, r := range results {
		res, ok := r.Result.(*result)
		if !ok || res == nil {
			continue
		}
		for _, p := range res.points {
			if prev, dup := first[p.Name]; dup {
				report(analysis.Finding{
					Analyzer: "faultpoint",
					Pos:      p.Pos,
					Message: fmt.Sprintf("fault-point name %q already minted at %s; point names must be unique across the repo",
						p.Name, prev.Pos),
					SuggestedFix: "pick a distinct dotted name (layer.component.fault)",
				})
				continue
			}
			first[p.Name] = p
		}
	}
}
