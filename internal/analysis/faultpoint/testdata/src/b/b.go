// Package b reuses a fault-point name minted in package a — the
// whole-program uniqueness check must flag the second minting.
package b

import "faultinject"

// PStolen collides with a.PShard's name.
const PStolen faultinject.Point = "a.shard.panic" // want `fault-point name "a.shard.panic" already minted`

// PFresh is fine.
const PFresh faultinject.Point = "b.fresh.point"
