// Package b reuses a fault-point name minted in package a — the
// whole-program uniqueness check must flag the second minting.
package b

import "faultinject"

// PStolen collides with a.PShard's name.
const PStolen faultinject.Point = "a.shard.panic" // want `fault-point name "a.shard.panic" already minted`

// PFresh is fine.
const PFresh faultinject.Point = "b.fresh.point"

// PLedgerStolen re-mints the ledger's group-commit sync point: a
// second mint would make the chaos suite's Fires assertions ambiguous.
const PLedgerStolen faultinject.Point = "ledger.commit.sync" // want `fault-point name "ledger.commit.sync" already minted`
