// Package a exercises the call-site rules: nil-safe methods may be
// called bare, unsafe ones only behind an explicit nil check.
package a

import "faultinject"

// PShard mints a fault-point name.
const PShard faultinject.Point = "a.shard.panic"

// PLedgerSync mirrors the audit ledger's group-commit fsync point —
// the mint the uniqueness check guards for the chaos suite.
const PLedgerSync faultinject.Point = "ledger.commit.sync"

// Inj is nil in production.
var Inj *faultinject.Injector

func goodSafeCall() bool {
	return Inj.Fire(PShard)
}

func goodDelegatedCall() int {
	return Inj.Hits(PShard)
}

func goodGuarded() {
	if Inj != nil {
		Inj.Arm(PShard)
	}
}

func goodLiteralParam() bool {
	return Inj.Fire("a.inline.lit")
}

func badUnguarded() {
	Inj.Arm(PShard) // want `Injector.Arm is not nil-safe`
}

func badConversion() {
	Inj.Arm(faultinject.Point("a.fs.write")) // want `Injector.Arm is not nil-safe`
}
