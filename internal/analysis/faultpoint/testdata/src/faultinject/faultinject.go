// Package faultinject is a miniature of the real injector: Fire and
// count open with nil guards, Hits delegates, and Arm deliberately
// violates the contract so the self-check has a positive case.
package faultinject

import "sync"

// Point names one fault site.
type Point string

// Injector arms faults; a nil *Injector must behave as "nothing
// armed".
type Injector struct {
	mu    sync.Mutex
	armed map[Point]int
}

// Fire is nil-safe via a leading guard.
func (in *Injector) Fire(p Point) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.armed[p] > 0
}

// Hits is nil-safe by delegation: every receiver use is a call to a
// nil-safe sibling.
func (in *Injector) Hits(p Point) int {
	return in.count(p)
}

func (in *Injector) count(p Point) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.armed[p]
}

// Arm dereferences its receiver with no guard.
func (in *Injector) Arm(p Point) { // want `exported Injector method Arm is not nil-safe`
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.armed == nil {
		in.armed = make(map[Point]int)
	}
	in.armed[p]++
}
