package faultpoint_test

import (
	"testing"

	"bglpred/internal/analysis/analysistest"
	"bglpred/internal/analysis/faultpoint"
)

func TestFaultPoint(t *testing.T) {
	// Order matters for the duplicate check: a mints "a.shard.panic"
	// first, so b's reuse is the one flagged.
	findings := analysistest.Run(t, faultpoint.Analyzer, "faultinject", "a", "b")
	if want := 5; len(findings) != want {
		t.Errorf("got %d findings, want %d: %v", len(findings), want, findings)
	}
	analysistest.MustContain(t, findings, `already minted at .*a/a\.go`)
}
