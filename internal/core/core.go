// Package core assembles the paper's three-phase failure predictor
// end to end (paper Figure 1): Phase 1 event preprocessing, Phase 2
// base prediction (statistical and rule-based), and Phase 3
// meta-learning prediction, plus the paper's 10-fold cross-validation
// protocol over prediction-window sweeps.
package core

import (
	"fmt"
	"time"

	"bglpred/internal/catalog"
	_ "bglpred/internal/ecg" // register the "ecg" base predictor
	"bglpred/internal/eval"
	"bglpred/internal/predictor"
	"bglpred/internal/preprocess"
	"bglpred/internal/raslog"
	"bglpred/internal/stats"
)

// Config parameterizes the whole pipeline. The zero value reproduces
// the paper's settings.
type Config struct {
	// Preprocess configures Phase 1.
	Preprocess preprocess.Options
	// Rule configures the rule-based base predictor.
	Rule predictor.RuleConfig
	// StatMinLead, StatMaxWindow and StatMinProbability configure the
	// statistical base predictor (defaults: 5m, 1h, 0.4).
	StatMinLead        time.Duration
	StatMaxWindow      time.Duration
	StatMinProbability float64
	// ForceTriggers pins the statistical trigger categories (the paper
	// hardcodes Network and Iostream); empty means learn them.
	ForceTriggers []catalog.Main
	// Policy is the meta-learner arbitration policy.
	Policy predictor.Policy
	// Predictors selects the base predictors the meta-learner
	// arbitrates over, by registry name ("statistical" (alias "stat"),
	// "rule", "ecg", ...). Empty selects the classic pair, the paper's
	// configuration. Statistical and rule selections carry this
	// Config's tuning; other bases get their registry defaults.
	Predictors []string
	// Folds is the cross-validation fold count (paper: 10).
	Folds int
}

func (c Config) withDefaults() Config {
	if c.Folds == 0 {
		c.Folds = 10
	}
	return c
}

// Pipeline is a configured three-phase predictor.
type Pipeline struct {
	cfg Config
}

// New builds a pipeline (zero Config reproduces the paper).
func New(cfg Config) *Pipeline {
	return &Pipeline{cfg: cfg.withDefaults()}
}

// Config returns the effective configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// Preprocess runs Phase 1 on a raw, time-sorted log.
func (p *Pipeline) Preprocess(raw []raslog.Event) *preprocess.Result {
	return preprocess.Run(raw, p.cfg.Preprocess)
}

// newStatistical builds a configured statistical predictor.
func (p *Pipeline) newStatistical() *predictor.Statistical {
	return &predictor.Statistical{
		MinLead:        p.cfg.StatMinLead,
		MaxWindow:      p.cfg.StatMaxWindow,
		MinProbability: p.cfg.StatMinProbability,
		ForceTriggers:  p.cfg.ForceTriggers,
	}
}

// newRule builds a configured rule predictor.
func (p *Pipeline) newRule() *predictor.Rule {
	return &predictor.Rule{Config: p.cfg.Rule}
}

// newMeta builds a configured meta-learner over the selected base
// predictors. Call validatePredictors first: unknown names here mean
// the selection was never validated, and panicking beats silently
// serving a smaller ensemble than configured.
func (p *Pipeline) newMeta() *predictor.Meta {
	if len(p.cfg.Predictors) == 0 {
		return &predictor.Meta{
			Stat:   p.newStatistical(),
			Rule:   p.newRule(),
			Policy: p.cfg.Policy,
		}
	}
	bases := make([]predictor.Base, 0, len(p.cfg.Predictors))
	for _, name := range p.cfg.Predictors {
		switch predictor.CanonicalName(name) {
		case predictor.SourceStatistical:
			bases = append(bases, p.newStatistical())
		case predictor.SourceRule:
			bases = append(bases, p.newRule())
		default:
			b, err := predictor.NewBase(name)
			if err != nil {
				panic(fmt.Sprintf("core: %v (validate Config.Predictors before training)", err))
			}
			bases = append(bases, b)
		}
	}
	m := predictor.NewMetaBases(bases...)
	m.Policy = p.cfg.Policy
	return m
}

// validatePredictors fails fast on an unknown or duplicate
// Config.Predictors selection.
func (p *Pipeline) validatePredictors() error {
	if len(p.cfg.Predictors) == 0 {
		return nil
	}
	_, err := predictor.Resolve(p.cfg.Predictors)
	return err
}

// Trained bundles the three predictors fitted on one training stream.
type Trained struct {
	Statistical *predictor.Statistical
	Rule        *predictor.Rule
	Meta        *predictor.Meta
}

// Train fits all three predictors on a unique-event stream. The
// meta-learner owns its own base instances, as in the paper's
// protocol (its bases train on the same learning set).
func (p *Pipeline) Train(events []preprocess.Event) (*Trained, error) {
	if err := p.validatePredictors(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	t := &Trained{
		Statistical: p.newStatistical(),
		Rule:        p.newRule(),
		Meta:        p.newMeta(),
	}
	if err := t.Statistical.Train(events); err != nil {
		return nil, fmt.Errorf("core: statistical: %w", err)
	}
	if err := t.Rule.Train(events); err != nil {
		return nil, fmt.Errorf("core: rule: %w", err)
	}
	if err := t.Meta.Train(events); err != nil {
		return nil, fmt.Errorf("core: meta: %w", err)
	}
	return t, nil
}

// Evaluation is the paper's full accuracy study on one log.
type Evaluation struct {
	// Statistical is the Table 5 experiment: the statistical predictor
	// cross-validated with its (MinLead, 1h] correlation window.
	Statistical eval.CVResult
	// RuleSweep is the Figure 4 experiment: the rule-based predictor
	// cross-validated per prediction window.
	RuleSweep []eval.SweepPoint
	// MetaSweep is the Figure 5 experiment: the meta-learner
	// cross-validated per prediction window.
	MetaSweep []eval.SweepPoint
}

// Evaluate runs the paper's evaluation protocol over the unique-event
// stream: Table 5, Figure 4, and Figure 5, with Folds-fold
// cross-validation at each point.
func (p *Pipeline) Evaluate(events []preprocess.Event, windows []time.Duration) (*Evaluation, error) {
	if err := p.validatePredictors(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if len(windows) == 0 {
		windows = eval.PaperWindows()
	}
	out := &Evaluation{}
	statWindow := p.cfg.StatMaxWindow
	if statWindow == 0 {
		statWindow = time.Hour
	}
	var err error
	out.Statistical, err = eval.CrossValidate(events, p.cfg.Folds,
		func() predictor.Predictor { return p.newStatistical() }, statWindow)
	if err != nil {
		return nil, fmt.Errorf("core: statistical CV: %w", err)
	}
	out.RuleSweep, err = eval.WindowSweep(events, p.cfg.Folds,
		func() predictor.Predictor { return p.newRule() }, windows)
	if err != nil {
		return nil, fmt.Errorf("core: rule sweep: %w", err)
	}
	out.MetaSweep, err = eval.WindowSweep(events, p.cfg.Folds,
		func() predictor.Predictor { return p.newMeta() }, windows)
	if err != nil {
		return nil, fmt.Errorf("core: meta sweep: %w", err)
	}
	return out, nil
}

// Report is the complete end-to-end result for one raw log.
type Report struct {
	// Preprocess is the Phase 1 output.
	Preprocess *preprocess.Result
	// FatalByMain is the paper's Table 4 for this log.
	FatalByMain map[catalog.Main]int
	// GapCDF is the inter-failure gap distribution behind Figure 2.
	GapCDF *stats.CDF
	// Evaluation holds Table 5, Figure 4 and Figure 5.
	Evaluation *Evaluation
}

// Run executes the full three-phase study on a raw log: preprocess,
// analyze, cross-validate everything.
func (p *Pipeline) Run(raw []raslog.Event, windows []time.Duration) (*Report, error) {
	pre := p.Preprocess(raw)
	fatal := preprocess.Fatal(pre.Events)
	times := make([]time.Time, len(fatal))
	for i := range fatal {
		times[i] = fatal[i].Time
	}
	ev, err := p.Evaluate(pre.Events, windows)
	if err != nil {
		return nil, err
	}
	return &Report{
		Preprocess:  pre,
		FatalByMain: preprocess.CountByMain(pre.Events, true),
		GapCDF:      stats.NewCDF(stats.InterArrivalGaps(times)),
		Evaluation:  ev,
	}, nil
}
