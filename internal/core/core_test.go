package core

import (
	"testing"
	"time"

	"bglpred/internal/bglsim"
	"bglpred/internal/catalog"
	"bglpred/internal/preprocess"
)

// smallLog generates a fast ANL-like log shared by the tests.
func smallLog(t *testing.T) []preprocess.Event {
	t.Helper()
	gen, err := bglsim.Generate(bglsim.ANLProfile().Scaled(0.05))
	if err != nil {
		t.Fatal(err)
	}
	return preprocess.Run(gen.Events, preprocess.Options{}).Events
}

func TestPipelineTrainProducesAllPredictors(t *testing.T) {
	p := New(Config{})
	events := smallLog(t)
	trained, err := p.Train(events)
	if err != nil {
		t.Fatal(err)
	}
	if trained.Statistical == nil || trained.Rule == nil || trained.Meta == nil {
		t.Fatal("missing trained predictor")
	}
	if trained.Rule.Rules().Len() == 0 {
		t.Error("no rules mined")
	}
	if len(trained.Statistical.Triggers()) == 0 {
		t.Error("no statistical triggers learned")
	}
}

func TestPipelineEvaluateShape(t *testing.T) {
	p := New(Config{Folds: 4})
	events := smallLog(t)
	windows := []time.Duration{10 * time.Minute, 30 * time.Minute}
	ev, err := p.Evaluate(events, windows)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.RuleSweep) != 2 || len(ev.MetaSweep) != 2 {
		t.Fatalf("sweep sizes: rule=%d meta=%d", len(ev.RuleSweep), len(ev.MetaSweep))
	}
	if len(ev.Statistical.Folds) != 4 {
		t.Fatalf("stat folds = %d", len(ev.Statistical.Folds))
	}
	for _, pt := range ev.MetaSweep {
		if pt.Result.MeanPrecision < 0 || pt.Result.MeanPrecision > 1 {
			t.Errorf("meta precision out of range at %v", pt.Window)
		}
	}
}

func TestPipelineMetaBeatsBasesOnRecall(t *testing.T) {
	// The paper's headline claim: the meta-learner's recall dominates
	// both base predictors at the same prediction window.
	p := New(Config{Folds: 5})
	events := smallLog(t)
	windows := []time.Duration{30 * time.Minute}
	ev, err := p.Evaluate(events, windows)
	if err != nil {
		t.Fatal(err)
	}
	meta := ev.MetaSweep[0].Result.MeanRecall
	rule := ev.RuleSweep[0].Result.MeanRecall
	if meta < rule {
		t.Errorf("meta recall %.3f below rule recall %.3f", meta, rule)
	}
	if meta < ev.Statistical.MeanRecall {
		t.Errorf("meta recall %.3f below statistical recall %.3f", meta, ev.Statistical.MeanRecall)
	}
}

func TestPipelineRunEndToEnd(t *testing.T) {
	gen, err := bglsim.Generate(bglsim.SDSCProfile().Scaled(0.05))
	if err != nil {
		t.Fatal(err)
	}
	p := New(Config{Folds: 3})
	rep, err := p.Run(gen.Events, []time.Duration{20 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Preprocess.Stats.Input != len(gen.Events) {
		t.Errorf("preprocess input %d != %d", rep.Preprocess.Stats.Input, len(gen.Events))
	}
	total := 0
	for _, m := range catalog.Mains() {
		total += rep.FatalByMain[m]
	}
	if total != rep.Preprocess.Stats.FatalUnique {
		t.Errorf("FatalByMain sums to %d, stats say %d", total, rep.Preprocess.Stats.FatalUnique)
	}
	if rep.GapCDF.N() == 0 {
		t.Error("empty gap CDF")
	}
	// Inter-failure gaps cluster: the CDF at 1 hour must be well above
	// the uniform-random baseline.
	if got := rep.GapCDF.At(time.Hour); got < 0.2 {
		t.Errorf("CDF(1h) = %v; failures should cluster (paper Figure 2)", got)
	}
}

func TestPipelineConfigDefaults(t *testing.T) {
	p := New(Config{})
	if p.Config().Folds != 10 {
		t.Errorf("default folds = %d, want 10 (paper protocol)", p.Config().Folds)
	}
}

func TestPipelineForceTriggers(t *testing.T) {
	p := New(Config{ForceTriggers: []catalog.Main{catalog.Network}})
	events := smallLog(t)
	trained, err := p.Train(events)
	if err != nil {
		t.Fatal(err)
	}
	trig := trained.Statistical.Triggers()
	if len(trig) != 1 {
		t.Fatalf("forced triggers = %v", trig)
	}
	if _, ok := trig[catalog.Network]; !ok {
		t.Fatalf("Network missing from %v", trig)
	}
}

func TestPipelineEvaluateDefaultsToPaperWindows(t *testing.T) {
	p := New(Config{Folds: 2})
	events := smallLog(t)[:400]
	ev, err := p.Evaluate(events, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.RuleSweep) != 12 {
		t.Fatalf("default sweep has %d points, want 12 (5..60 min)", len(ev.RuleSweep))
	}
}

func TestPipelineHonoursConfig(t *testing.T) {
	cfg := Config{
		Folds:  7,
		Policy: 3, // predictor.PolicyRulePriority
	}
	cfg.Rule.RuleGenWindow = 10 * time.Minute
	cfg.Preprocess.TemporalThreshold = 120 * time.Second
	p := New(cfg)

	events := smallLog(t)
	trained, err := p.Train(events)
	if err != nil {
		t.Fatal(err)
	}
	if got := trained.Rule.ChosenWindow(); got != 10*time.Minute {
		t.Fatalf("rule window = %v, want configured 10m", got)
	}
	if trained.Meta.Policy != cfg.Policy {
		t.Fatalf("meta policy = %v, want %v", trained.Meta.Policy, cfg.Policy)
	}
	if trained.Meta.Rule.ChosenWindow() != 10*time.Minute {
		t.Fatalf("meta's rule base ignored the configured window")
	}
	if p.Config().Folds != 7 {
		t.Fatalf("folds = %d", p.Config().Folds)
	}
}

func TestPipelinePreprocessOptionsApplied(t *testing.T) {
	gen, err := bglsim.Generate(bglsim.ANLProfile().Scaled(0.02))
	if err != nil {
		t.Fatal(err)
	}
	tight := New(Config{Preprocess: preprocess.Options{
		TemporalThreshold: time.Second, SpatialThreshold: time.Second,
	}})
	loose := New(Config{})
	nTight := len(tight.Preprocess(gen.Events).Events)
	nLoose := len(loose.Preprocess(gen.Events).Events)
	if nTight <= nLoose {
		t.Fatalf("1s thresholds produced %d unique vs %d at 300s; options not applied", nTight, nLoose)
	}
}
