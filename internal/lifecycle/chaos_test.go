package lifecycle

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bglpred/internal/faultinject"
	"bglpred/internal/model"
	"bglpred/internal/serve"
)

// chaosSeed fixes the whole acceptance run: the injector schedules,
// the retry jitter, everything. CI replays this exact run under -race.
const chaosSeed = 0xB61C0FFEE

// TestChaosAcceptance is the fault-injection acceptance test: it
// replays the bglsim tail through a server while shard workers panic
// on a schedule and every persistence write fights injected ENOSPC
// and fsync failures, and asserts the resilience contract end to end:
//
//   - /healthz answers ok after every chunk (alert continuity — the
//     service never went down),
//   - every injected panic produced a supervised restart, and the
//     alert stream still matches a fault-free reference run exactly
//     (SnapshotEvery=1 makes restarts provably lossless),
//   - checkpoints and the retrained model artifact land despite the
//     write faults (retries spent, zero give-ups, files verify
//     through a clean filesystem),
//   - the final checkpoint restores into a fresh server whose
//     standing alarms match the chaos run's,
//   - injected ingest corruption is bounded by the quarantine
//     accounting: exactly the faulted records are parked, everything
//     else is served.
func TestChaosAcceptance(t *testing.T) {
	meta, _, tail := fixture(t)

	// Reference: the per-shard alert streams of a fault-free server.
	clean := serve.New(meta, serve.Config{Shards: 2, History: 1 << 16, Window: 30 * time.Minute})
	post(t, clean, encode(t, tail))
	cleanAlerts := getAlerts(t, clean)
	cleanStanding := keysOf(cleanAlerts.Standing)
	if cleanAlerts.TotalAlerts == 0 {
		t.Fatal("fault-free reference raised no alerts; fixture is degenerate")
	}
	clean.Close()

	// Chaos run: panics on the shard workers, ENOSPC and fsync faults
	// on every persistence write.
	in := faultinject.New(chaosSeed)
	in.Set(faultinject.ShardPanic, faultinject.Plan{Every: 400, Panic: true})
	in.Set(faultinject.FsWrite, faultinject.Plan{Err: faultinject.ENOSPC, Every: 4})
	in.Set(faultinject.FsSync, faultinject.Plan{Every: 7})
	faultFs := faultinject.NewFs(in, nil)

	dir := t.TempDir()
	rec := NewRecorder(0, 0)
	s := serve.New(meta, serve.Config{
		Shards:        2,
		History:       1 << 16,
		Window:        30 * time.Minute,
		SnapshotEvery: 1,
		Observer:      rec.Observe,
		Inject:        in,
	})
	defer s.Close()
	ck := NewCheckpointer(s, CheckpointerConfig{
		Dir:   dir,
		FS:    faultFs,
		Retry: RetryPolicy{MaxAttempts: 8, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Seed: chaosSeed},
		Logf:  t.Logf,
	})

	healthz := func() (status string, code int) {
		t.Helper()
		req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
		rc := httptest.NewRecorder()
		s.ServeHTTP(rc, req)
		var hz struct {
			Status string `json:"status"`
		}
		if err := json.Unmarshal(rc.Body.Bytes(), &hz); err != nil {
			t.Fatal(err)
		}
		return hz.Status, rc.Code
	}

	// Replay in chunks; between chunks the service must be healthy and
	// a checkpoint must land through the faulty filesystem.
	const chunks = 5
	for i := 0; i < chunks; i++ {
		lo, hi := i*len(tail)/chunks, (i+1)*len(tail)/chunks
		post(t, s, encode(t, tail[lo:hi]))
		if status, code := healthz(); status != "ok" || code != http.StatusOK {
			t.Fatalf("healthz after chunk %d: %q (%d); the chaos run must stay serving", i, status, code)
		}
		if _, err := ck.CheckpointNow(); err != nil {
			t.Fatalf("checkpoint after chunk %d: %v", i, err)
		}
	}

	// Supervised restarts happened on schedule...
	wantRestarts := int64(in.Fires(faultinject.ShardPanic))
	if wantRestarts == 0 {
		t.Fatal("the panic point never fired; the chaos run exercised nothing")
	}
	if got := s.Restarts(); got != wantRestarts {
		t.Fatalf("restarts = %d, injected panics = %d", got, wantRestarts)
	}

	// ...and were lossless: per-shard alert streams match the
	// fault-free reference exactly.
	chaosAlerts := getAlerts(t, s)
	if chaosAlerts.TotalAlerts != cleanAlerts.TotalAlerts {
		t.Fatalf("chaos run raised %d alerts, fault-free reference %d", chaosAlerts.TotalAlerts, cleanAlerts.TotalAlerts)
	}
	got, want := keysOf(chaosAlerts.Recent), keysOf(cleanAlerts.Recent)
	for shard, wantSeq := range want {
		gotSeq := got[shard]
		if len(gotSeq) != len(wantSeq) {
			t.Fatalf("shard %d: %d alerts, reference %d", shard, len(gotSeq), len(wantSeq))
		}
		for i := range wantSeq {
			if gotSeq[i] != wantSeq[i] {
				t.Fatalf("shard %d alert %d diverged:\n got %+v\nwant %+v", shard, i, gotSeq[i], wantSeq[i])
			}
		}
	}

	// Persistence fought real faults and won: retries were spent, no
	// checkpoint was abandoned, and the landed bytes verify clean.
	if ck.Retries() == 0 {
		t.Fatal("no write retries despite the armed ENOSPC/fsync plans")
	}
	if ck.GiveUps() != 0 || ck.Saves() != chunks {
		t.Fatalf("saves=%d giveups=%d, want %d/0", ck.Saves(), ck.GiveUps(), chunks)
	}

	// The retrained model artifact persists through the same faults.
	rt := NewRetrainer(s, rec, RetrainerConfig{
		MinEvents: 10,
		Dir:       dir,
		FS:        faultFs,
		Retry:     RetryPolicy{MaxAttempts: 8, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Seed: chaosSeed},
		Logf:      t.Logf,
	})
	rt.cfg.Pipeline.Rule.RuleGenWindow = 15 * time.Minute
	info, err := rt.RetrainNow()
	if err != nil {
		t.Fatalf("retrain under fs faults: %v", err)
	}
	if _, err := model.Verify(ModelPath(dir)); err != nil {
		t.Fatalf("model artifact written under faults does not verify: %v", err)
	}
	if got := s.Model(); got.Version != info.Version {
		t.Fatalf("serving model %+v, retrain returned %+v", got, info)
	}

	// Final checkpoint (post-swap) and restore continuity: a fresh
	// server built from the chaos run's checkpoint carries the same
	// standing alarms.
	if _, err := ck.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	fresh := serve.New(meta, serve.Config{Shards: 2, History: 1 << 16, Window: 30 * time.Minute, Model: serve.ModelInfo{SHA256: info.SHA256}})
	defer fresh.Close()
	if _, err := Restore(fresh, dir, info.SHA256); err != nil {
		t.Fatalf("restore from the chaos checkpoint: %v", err)
	}
	freshStanding := keysOf(getAlerts(t, fresh).Standing)
	for shard, wantSeq := range cleanStanding {
		gotSeq := freshStanding[shard]
		if len(gotSeq) != len(wantSeq) {
			t.Fatalf("restored shard %d: %d standing alarms, reference %d", shard, len(gotSeq), len(wantSeq))
		}
		for i := range wantSeq {
			if gotSeq[i] != wantSeq[i] {
				t.Fatalf("restored shard %d standing alarm diverged:\n got %+v\nwant %+v", shard, gotSeq[i], wantSeq[i])
			}
		}
	}

	// Quarantine bound: a separate pass with injected ingest
	// corruption parks exactly the faulted records and serves the
	// rest.
	in2 := faultinject.New(chaosSeed)
	in2.Set(faultinject.IngestCorrupt, faultinject.Plan{Every: 50, Times: 5})
	qs := serve.New(meta, serve.Config{Shards: 2, Window: 30 * time.Minute, Inject: in2})
	defer qs.Close()
	n := 1000
	if n > len(tail) {
		n = len(tail)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/ingest", strings.NewReader(string(encode(t, tail[:n]))))
	rc := httptest.NewRecorder()
	qs.ServeHTTP(rc, req)
	if rc.Code != http.StatusOK {
		t.Fatalf("corrupted-ingest status %d: %s", rc.Code, rc.Body.String())
	}
	var resp serve.IngestResponse
	if err := json.Unmarshal(rc.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Quarantined != 5 || resp.Accepted != int64(n-5) {
		t.Fatalf("quarantine accounting = %+v, want exactly 5 of %d parked", resp, n)
	}
	qreq := httptest.NewRequest(http.MethodGet, "/v1/quarantine", nil)
	qrc := httptest.NewRecorder()
	qs.ServeHTTP(qrc, qreq)
	var q serve.QuarantineResponse
	if err := json.Unmarshal(qrc.Body.Bytes(), &q); err != nil {
		t.Fatal(err)
	}
	if q.Total != 5 {
		t.Fatalf("quarantine total = %d, want 5", q.Total)
	}
}
