package lifecycle

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"bglpred/internal/ledger"
	"bglpred/internal/model"
	"bglpred/internal/serve"
)

// CheckpointerConfig parameterizes the periodic checkpointer.
type CheckpointerConfig struct {
	// Dir is the checkpoint directory (required). The shard-state file
	// lands at StatePath(Dir).
	Dir string
	// Interval between snapshots; default 30 s.
	Interval time.Duration
	// FS is the filesystem checkpoints are written through (nil =
	// model.OS); fault-injection tests interpose faultinject.Fs here.
	FS model.FS
	// Retry bounds the backoff against transient write failures; the
	// zero value selects the defaults (5 attempts, 50 ms..2 s).
	Retry RetryPolicy
	// Ledger, when set, moves checkpoint durability onto the audit
	// ledger's group-commit path: each snapshot is appended as a
	// KindCheckpoint entry (full envelope bytes in the payload) whose
	// fsync is shared with concurrent ingest/alert appends, instead of
	// the per-write temp+fsync+rename dance on StateFile. Restore reads
	// the newest such entry; StateFile is neither written nor read.
	Ledger *ledger.Ledger
	// Logf, when set, receives operational log lines.
	Logf func(format string, args ...any)
}

// Checkpointer periodically snapshots a server's shard state to disk.
// Every write is crash-safe: a kill at any moment leaves the previous
// complete checkpoint in place. Transient write failures (ENOSPC, a
// failed fsync or rename) are retried with jittered exponential
// backoff; only an exhausted budget surfaces, as an error wrapping
// ErrCheckpointGiveUp.
type Checkpointer struct {
	srv       *serve.Server
	cfg       CheckpointerConfig
	saves     atomic.Int64
	retries   atomic.Int64
	giveups   atomic.Int64
	lastSaved atomic.Int64 // unixnano of the newest durable checkpoint
}

// NewCheckpointer builds a checkpointer over a server.
func NewCheckpointer(srv *serve.Server, cfg CheckpointerConfig) *Checkpointer {
	if cfg.Interval <= 0 {
		cfg.Interval = 30 * time.Second
	}
	if cfg.FS == nil {
		cfg.FS = model.OS
	}
	return &Checkpointer{srv: srv, cfg: cfg}
}

// CheckpointNow takes and persists one snapshot immediately, retrying
// transient write failures.
func (c *Checkpointer) CheckpointNow() (model.Info, error) {
	return c.checkpoint(context.Background())
}

// checkpoint is CheckpointNow under a context: a cancelled ctx stops
// the retry loop early (shutdown must not serve a full backoff
// schedule to a dead disk).
func (c *Checkpointer) checkpoint(ctx context.Context) (model.Info, error) {
	m := c.srv.Model()
	cp := &Checkpoint{
		SavedAt:      time.Now(),
		ModelSHA256:  m.SHA256,
		ModelVersion: m.Version,
		Shards:       c.srv.ExportShards(),
	}
	var info model.Info
	save := func() error {
		var saveErr error
		info, saveErr = SaveCheckpointFS(c.cfg.FS, StatePath(c.cfg.Dir), cp)
		return saveErr
	}
	if c.cfg.Ledger != nil {
		// Group-commit path: the checkpoint envelope rides inside the
		// ledger, so its durability cost is one share of a batched
		// fsync — and its provenance is chained like everything else.
		framed, envInfo, err := model.MarshalEnvelope(CheckpointMagic, CheckpointVersion, cp)
		if err != nil {
			return model.Info{}, err
		}
		save = func() error {
			r, appendErr := c.cfg.Ledger.Append(ledger.KindCheckpoint, framed)
			if appendErr != nil {
				return appendErr
			}
			info = envInfo
			info.Path = fmt.Sprintf("ledger:seq=%d", r.Seq)
			return nil
		}
	}
	retries, err := retryWithBackoff(ctx, c.cfg.Retry, save)
	c.retries.Add(int64(retries))
	if err != nil {
		c.giveups.Add(1)
		return model.Info{}, fmt.Errorf("%w: %w", ErrCheckpointGiveUp, err)
	}
	c.saves.Add(1)
	c.lastSaved.Store(time.Now().UnixNano())
	if retries > 0 {
		c.logf("checkpoint landed after %d retries", retries)
	}
	return info, nil
}

// LastSaved reports when the newest checkpoint became durable (zero
// time when none has landed this process). /healthz surfaces its age
// so a stalled Checkpointer is visible before a crash needs it.
func (c *Checkpointer) LastSaved() time.Time {
	ns := c.lastSaved.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// Saves reports completed checkpoints; Retries the write re-tries
// spent landing them; GiveUps the checkpoints abandoned with their
// retry budget exhausted.
func (c *Checkpointer) Saves() int64   { return c.saves.Load() }
func (c *Checkpointer) Retries() int64 { return c.retries.Load() }
func (c *Checkpointer) GiveUps() int64 { return c.giveups.Load() }

// Run checkpoints on the configured interval until ctx is cancelled,
// then takes one final snapshot so a graceful shutdown preserves the
// very latest state. Errors are logged, not fatal: a transiently full
// disk must not take the serving path down.
func (c *Checkpointer) Run(ctx context.Context) {
	t := time.NewTicker(c.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if _, err := c.checkpoint(ctx); err != nil {
				c.logf("checkpoint: %v", err)
			}
		case <-ctx.Done():
			// The final snapshot runs without the cancelled ctx (it would
			// abort the retries a shutdown most wants to see through).
			if _, err := c.checkpoint(context.Background()); err != nil {
				c.logf("final checkpoint: %v", err)
			}
			return
		}
	}
}

func (c *Checkpointer) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}
