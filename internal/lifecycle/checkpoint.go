package lifecycle

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"bglpred/internal/model"
	"bglpred/internal/serve"
)

// CheckpointerConfig parameterizes the periodic checkpointer.
type CheckpointerConfig struct {
	// Dir is the checkpoint directory (required). The shard-state file
	// lands at StatePath(Dir).
	Dir string
	// Interval between snapshots; default 30 s.
	Interval time.Duration
	// FS is the filesystem checkpoints are written through (nil =
	// model.OS); fault-injection tests interpose faultinject.Fs here.
	FS model.FS
	// Retry bounds the backoff against transient write failures; the
	// zero value selects the defaults (5 attempts, 50 ms..2 s).
	Retry RetryPolicy
	// Logf, when set, receives operational log lines.
	Logf func(format string, args ...any)
}

// Checkpointer periodically snapshots a server's shard state to disk.
// Every write is crash-safe: a kill at any moment leaves the previous
// complete checkpoint in place. Transient write failures (ENOSPC, a
// failed fsync or rename) are retried with jittered exponential
// backoff; only an exhausted budget surfaces, as an error wrapping
// ErrCheckpointGiveUp.
type Checkpointer struct {
	srv     *serve.Server
	cfg     CheckpointerConfig
	saves   atomic.Int64
	retries atomic.Int64
	giveups atomic.Int64
}

// NewCheckpointer builds a checkpointer over a server.
func NewCheckpointer(srv *serve.Server, cfg CheckpointerConfig) *Checkpointer {
	if cfg.Interval <= 0 {
		cfg.Interval = 30 * time.Second
	}
	if cfg.FS == nil {
		cfg.FS = model.OS
	}
	return &Checkpointer{srv: srv, cfg: cfg}
}

// CheckpointNow takes and persists one snapshot immediately, retrying
// transient write failures.
func (c *Checkpointer) CheckpointNow() (model.Info, error) {
	return c.checkpoint(context.Background())
}

// checkpoint is CheckpointNow under a context: a cancelled ctx stops
// the retry loop early (shutdown must not serve a full backoff
// schedule to a dead disk).
func (c *Checkpointer) checkpoint(ctx context.Context) (model.Info, error) {
	m := c.srv.Model()
	cp := &Checkpoint{
		SavedAt:      time.Now(),
		ModelSHA256:  m.SHA256,
		ModelVersion: m.Version,
		Shards:       c.srv.ExportShards(),
	}
	var info model.Info
	retries, err := retryWithBackoff(ctx, c.cfg.Retry, func() error {
		var saveErr error
		info, saveErr = SaveCheckpointFS(c.cfg.FS, StatePath(c.cfg.Dir), cp)
		return saveErr
	})
	c.retries.Add(int64(retries))
	if err != nil {
		c.giveups.Add(1)
		return model.Info{}, fmt.Errorf("%w: %w", ErrCheckpointGiveUp, err)
	}
	c.saves.Add(1)
	if retries > 0 {
		c.logf("checkpoint landed after %d retries", retries)
	}
	return info, nil
}

// Saves reports completed checkpoints; Retries the write re-tries
// spent landing them; GiveUps the checkpoints abandoned with their
// retry budget exhausted.
func (c *Checkpointer) Saves() int64   { return c.saves.Load() }
func (c *Checkpointer) Retries() int64 { return c.retries.Load() }
func (c *Checkpointer) GiveUps() int64 { return c.giveups.Load() }

// Run checkpoints on the configured interval until ctx is cancelled,
// then takes one final snapshot so a graceful shutdown preserves the
// very latest state. Errors are logged, not fatal: a transiently full
// disk must not take the serving path down.
func (c *Checkpointer) Run(ctx context.Context) {
	t := time.NewTicker(c.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if _, err := c.checkpoint(ctx); err != nil {
				c.logf("checkpoint: %v", err)
			}
		case <-ctx.Done():
			// The final snapshot runs without the cancelled ctx (it would
			// abort the retries a shutdown most wants to see through).
			if _, err := c.checkpoint(context.Background()); err != nil {
				c.logf("final checkpoint: %v", err)
			}
			return
		}
	}
}

func (c *Checkpointer) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}
