package lifecycle

import (
	"context"
	"sync/atomic"
	"time"

	"bglpred/internal/model"
	"bglpred/internal/serve"
)

// CheckpointerConfig parameterizes the periodic checkpointer.
type CheckpointerConfig struct {
	// Dir is the checkpoint directory (required). The shard-state file
	// lands at StatePath(Dir).
	Dir string
	// Interval between snapshots; default 30 s.
	Interval time.Duration
	// Logf, when set, receives operational log lines.
	Logf func(format string, args ...any)
}

// Checkpointer periodically snapshots a server's shard state to disk.
// Every write is crash-safe: a kill at any moment leaves the previous
// complete checkpoint in place.
type Checkpointer struct {
	srv   *serve.Server
	cfg   CheckpointerConfig
	saves atomic.Int64
}

// NewCheckpointer builds a checkpointer over a server.
func NewCheckpointer(srv *serve.Server, cfg CheckpointerConfig) *Checkpointer {
	if cfg.Interval <= 0 {
		cfg.Interval = 30 * time.Second
	}
	return &Checkpointer{srv: srv, cfg: cfg}
}

// CheckpointNow takes and persists one snapshot immediately.
func (c *Checkpointer) CheckpointNow() (model.Info, error) {
	m := c.srv.Model()
	cp := &Checkpoint{
		SavedAt:      time.Now(),
		ModelSHA256:  m.SHA256,
		ModelVersion: m.Version,
		Shards:       c.srv.ExportShards(),
	}
	info, err := SaveCheckpoint(StatePath(c.cfg.Dir), cp)
	if err == nil {
		c.saves.Add(1)
	}
	return info, err
}

// Saves reports completed checkpoints.
func (c *Checkpointer) Saves() int64 { return c.saves.Load() }

// Run checkpoints on the configured interval until ctx is cancelled,
// then takes one final snapshot so a graceful shutdown preserves the
// very latest state. Errors are logged, not fatal: a transiently full
// disk must not take the serving path down.
func (c *Checkpointer) Run(ctx context.Context) {
	t := time.NewTicker(c.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if _, err := c.CheckpointNow(); err != nil {
				c.logf("checkpoint: %v", err)
			}
		case <-ctx.Done():
			if _, err := c.CheckpointNow(); err != nil {
				c.logf("final checkpoint: %v", err)
			}
			return
		}
	}
}

func (c *Checkpointer) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}
