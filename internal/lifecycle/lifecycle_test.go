package lifecycle

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"bglpred/internal/bglsim"
	"bglpred/internal/model"
	"bglpred/internal/predictor"
	"bglpred/internal/preprocess"
	"bglpred/internal/raslog"
	"bglpred/internal/serve"
)

// fixtureOnce shares one trained meta-learner, its artifact, and a
// held-out tail across the package's tests.
var fixtureOnce struct {
	sync.Once
	meta *predictor.Meta
	art  *model.Artifact
	tail []raslog.Event
	err  error
}

func fixture(t *testing.T) (*predictor.Meta, *model.Artifact, []raslog.Event) {
	t.Helper()
	fixtureOnce.Do(func() {
		gen, err := bglsim.Generate(bglsim.ANLProfile().Scaled(0.05))
		if err != nil {
			fixtureOnce.err = err
			return
		}
		cut := len(gen.Events) * 8 / 10
		pre := preprocess.Run(gen.Events[:cut], preprocess.Options{})
		m := predictor.NewMeta()
		if err := m.Train(pre.Events); err != nil {
			fixtureOnce.err = err
			return
		}
		art, err := model.FromMeta(m, model.Provenance{Source: "lifecycle fixture"})
		if err != nil {
			fixtureOnce.err = err
			return
		}
		fixtureOnce.meta = m
		fixtureOnce.art = art
		fixtureOnce.tail = gen.Events[cut:]
	})
	if fixtureOnce.err != nil {
		t.Fatal(fixtureOnce.err)
	}
	return fixtureOnce.meta, fixtureOnce.art, fixtureOnce.tail
}

func encode(t *testing.T, events []raslog.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := raslog.NewWriter(&buf)
	for i := range events {
		if err := w.Write(&events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func post(t *testing.T, s *serve.Server, body []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/ingest", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest: status %d: %s", rec.Code, rec.Body.String())
	}
}

func getAlerts(t *testing.T, s *serve.Server) serve.AlertsResponse {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/v1/alerts", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("alerts: status %d", rec.Code)
	}
	var resp serve.AlertsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// alertKey strips server-assigned sequence numbers so alert streams
// from different server instances compare by content.
type alertKey struct {
	Shard      int
	At, End    time.Time
	Confidence float64
	Source     string
}

// keysOf groups alerts by shard, preserving per-shard order. Shards
// drain concurrently, so the global interleaving in the ring buffer is
// scheduling-dependent — but each shard's subsequence is deterministic
// and is what equivalence means for sharded streams.
func keysOf(alerts []serve.Alert) map[int][]alertKey {
	out := make(map[int][]alertKey)
	for _, a := range alerts {
		out[a.Shard] = append(out[a.Shard],
			alertKey{Shard: a.Shard, At: a.At, End: a.End, Confidence: a.Confidence, Source: a.Source})
	}
	return out
}

// TestKillAndRestoreEquivalence is the crash-recovery acceptance test:
// a server killed mid-stream and restored from its checkpoint must
// emit exactly the alerts an uninterrupted server emits — same
// alarms, same shards, same confidences — over the remainder of the
// stream.
func TestKillAndRestoreEquivalence(t *testing.T) {
	meta, art, tail := fixture(t)
	dir := t.TempDir()
	cfg := serve.Config{Shards: 2, History: 1 << 16, Window: 30 * time.Minute}

	// The uninterrupted control run.
	control := serve.New(meta, cfg)
	defer control.Close()
	post(t, control, encode(t, tail))
	want := getAlerts(t, control)

	// The interrupted run: ingest half, checkpoint, die (Close without
	// any further teardown — the checkpoint is all that survives).
	mi, err := art.Save(ModelPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	half := len(tail) / 2
	firstCfg := cfg
	firstCfg.Model = serve.ModelInfo{SHA256: mi.SHA256}
	first := serve.New(meta, firstCfg)
	post(t, first, encode(t, tail[:half]))
	firstAlerts := getAlerts(t, first)
	if _, err := NewCheckpointer(first, CheckpointerConfig{Dir: dir}).CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	first.Close()

	// The restored run: load the model artifact from disk, rebuild the
	// server, restore shard state, continue the stream.
	loadedArt, info, err := model.Load(ModelPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	loadedMeta, err := loadedArt.Meta()
	if err != nil {
		t.Fatal(err)
	}
	restored := serve.New(loadedMeta, cfg)
	defer restored.Close()
	cp, err := Restore(restored, dir, info.SHA256)
	if err != nil {
		t.Fatal(err)
	}
	if cp == nil {
		t.Fatal("no checkpoint found after CheckpointNow")
	}
	if cp.ModelSHA256 != info.SHA256 {
		t.Fatalf("checkpoint model sha %.12s != artifact sha %.12s", cp.ModelSHA256, info.SHA256)
	}
	post(t, restored, encode(t, tail[half:]))
	got := getAlerts(t, restored)

	// Equivalence: per shard, first-half alerts ++ restored-run alerts
	// == control.
	combined := keysOf(firstAlerts.Recent)
	for shard, keys := range keysOf(got.Recent) {
		combined[shard] = append(combined[shard], keys...)
	}
	if !reflect.DeepEqual(combined, keysOf(want.Recent)) {
		t.Fatalf("alert streams diverge:\ninterrupted+restored: %+v\nuninterrupted: %+v",
			combined, keysOf(want.Recent))
	}
	if want.TotalAlerts == 0 {
		t.Fatal("control run raised no alerts; fixture is degenerate")
	}
	// The restored server's lifetime counters continue the first run's
	// (it retrained nothing and re-ingested nothing).
	if got.TotalAlerts != want.TotalAlerts-firstAlerts.TotalAlerts {
		t.Fatalf("restored run raised %d alerts, want %d", got.TotalAlerts, want.TotalAlerts-firstAlerts.TotalAlerts)
	}
}

// TestRestoreRefusesWrongModel: stale state over different rules must
// be refused, not silently served.
func TestRestoreRefusesWrongModel(t *testing.T) {
	meta, _, tail := fixture(t)
	dir := t.TempDir()
	cfg := serve.Config{Shards: 2, Model: serve.ModelInfo{SHA256: "aaaa"}}
	s := serve.New(meta, cfg)
	post(t, s, encode(t, tail[:100]))
	if _, err := NewCheckpointer(s, CheckpointerConfig{Dir: dir}).CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	fresh := serve.New(meta, serve.Config{Shards: 2})
	defer fresh.Close()
	if _, err := Restore(fresh, dir, "bbbb"); err == nil {
		t.Fatal("restore accepted a checkpoint taken against a different model")
	}
	// Missing checkpoint dir is a clean cold start.
	if cp, err := Restore(fresh, t.TempDir(), "bbbb"); cp != nil || err != nil {
		t.Fatalf("cold start: cp=%v err=%v", cp, err)
	}
}

// TestGoldenV1HotSwap is the cross-version serving acceptance test:
// the committed version-1 artifact must load, rebuild through the
// legacy path, and hot-swap into a running server, with /v1/model
// reporting the classic base-predictor pair.
func TestGoldenV1HotSwap(t *testing.T) {
	meta, _, _ := fixture(t)
	s := serve.New(meta, serve.Config{Shards: 2})
	defer s.Close()

	golden := filepath.Join("..", "model", "testdata", "golden_v1.bglm")
	art, info, err := model.Load(golden)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 {
		t.Fatalf("golden artifact version = %d, want 1", info.Version)
	}
	goldenMeta, err := art.Meta()
	if err != nil {
		t.Fatal(err)
	}
	swapped := s.SwapModel(goldenMeta, serve.ModelInfo{
		SHA256:    info.SHA256,
		Source:    art.Provenance.Source,
		TrainedAt: art.Provenance.TrainedAt,
		Rules:     len(art.Rule.Rules),
	})
	if swapped.Version != 2 {
		t.Fatalf("swap version = %d, want 2 (generation after startup)", swapped.Version)
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/model", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/model: status %d", rec.Code)
	}
	var resp serve.ModelResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.SHA256 != info.SHA256 {
		t.Fatalf("/v1/model sha %.12s, want golden %.12s", resp.SHA256, info.SHA256)
	}
	if want := []string{predictor.SourceStatistical, predictor.SourceRule}; !reflect.DeepEqual(resp.Predictors, want) {
		t.Fatalf("/v1/model predictors = %v, want %v", resp.Predictors, want)
	}
	if resp.Rules != len(art.Rule.Rules) {
		t.Fatalf("/v1/model rules = %d, want %d", resp.Rules, len(art.Rule.Rules))
	}
}

// TestHotSwapUnderConcurrentIngest is the zero-loss acceptance test,
// meant for -race: ingestion hammers the server from several
// goroutines while the model is hot-swapped repeatedly mid-stream.
// Because each swap transplants shard state onto an equivalent
// reloaded model, the final alert stream must be identical to a
// swap-free control run: nothing lost, nothing duplicated.
func TestHotSwapUnderConcurrentIngest(t *testing.T) {
	meta, art, tail := fixture(t)
	cfg := serve.Config{Shards: 4, History: 1 << 16, Window: 30 * time.Minute}

	control := serve.New(meta, cfg)
	defer control.Close()
	post(t, control, encode(t, tail))
	want := getAlerts(t, control)
	if want.TotalAlerts == 0 {
		t.Fatal("control run raised no alerts")
	}

	s := serve.New(meta, cfg)
	defer s.Close()

	// Swapper: rebuild an equivalent meta from the artifact and swap it
	// in, concurrently with ingestion.
	swapMeta, err := art.Meta()
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s.SwapModel(swapMeta, serve.ModelInfo{Source: "race swap"})
				time.Sleep(time.Millisecond)
			}
		}
	}()

	// Ingest the tail in small chunks; each post is a synchronous
	// barrier, so chunks interleave with swaps.
	const chunk = 64
	for i := 0; i < len(tail); i += chunk {
		end := i + chunk
		if end > len(tail) {
			end = len(tail)
		}
		post(t, s, encode(t, tail[i:end]))
	}
	close(stop)
	swapper.Wait()

	got := getAlerts(t, s)
	if s.Swaps() == 0 {
		t.Fatal("no swaps happened during ingestion; the race never raced")
	}
	if !reflect.DeepEqual(keysOf(got.Recent), keysOf(want.Recent)) {
		t.Fatalf("hot-swaps perturbed the alert stream after %d swaps:\ngot  (%d): %+v\nwant (%d): %+v",
			s.Swaps(), len(got.Recent), keysOf(got.Recent), len(want.Recent), keysOf(want.Recent))
	}
	t.Logf("alert stream identical across %d hot-swaps", s.Swaps())
}

// TestCheckpointerRun drives the periodic loop: snapshots appear on
// the interval and a final one lands on shutdown.
func TestCheckpointerRun(t *testing.T) {
	meta, _, tail := fixture(t)
	dir := t.TempDir()
	s := serve.New(meta, serve.Config{Shards: 2})
	defer s.Close()
	post(t, s, encode(t, tail[:200]))

	ck := NewCheckpointer(s, CheckpointerConfig{Dir: dir, Interval: 10 * time.Millisecond, Logf: t.Logf})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { ck.Run(ctx); close(done) }()
	time.Sleep(60 * time.Millisecond)
	periodic := ck.Saves()
	cancel()
	<-done

	if periodic < 2 {
		t.Fatalf("only %d periodic checkpoints in 60ms at 10ms interval", periodic)
	}
	if ck.Saves() <= periodic {
		t.Fatal("no final checkpoint on shutdown")
	}
	cp, _, err := LoadCheckpoint(StatePath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.Shards) != 2 || cp.SavedAt.IsZero() {
		t.Fatalf("checkpoint = %+v", cp)
	}
	var ingested int64
	for _, st := range cp.Shards {
		ingested += st.Counters.Ingested
	}
	if ingested != 200 {
		t.Fatalf("checkpoint records %d ingested, want 200", ingested)
	}
}

// TestRecorderWindowAndCap exercises pruning by event-time window and
// by the hard cap.
func TestRecorderWindowAndCap(t *testing.T) {
	base := time.Date(2026, 8, 6, 0, 0, 0, 0, time.UTC)
	r := NewRecorder(time.Hour, 100)
	for i := 0; i < 300; i++ {
		r.Observe(raslog.Event{RecID: int64(i), Time: base.Add(time.Duration(i) * time.Minute)})
	}
	snap := r.Snapshot()
	if len(snap) > 100 {
		t.Fatalf("cap leaked: %d records", len(snap))
	}
	// Everything kept must be within the window of the newest record.
	latest := snap[len(snap)-1].Time
	for _, ev := range snap {
		if latest.Sub(ev.Time) > time.Hour {
			t.Fatalf("record at %v survived a 1h window ending %v", ev.Time, latest)
		}
	}
	// Sorted by time.
	for i := 1; i < len(snap); i++ {
		if snap[i].Time.Before(snap[i-1].Time) {
			t.Fatal("snapshot is not time-sorted")
		}
	}
	if r.Seen() != 300 {
		t.Fatalf("lifetime seen = %d", r.Seen())
	}
}

// TestRetrainerRetrainNow: a retrain over recorded traffic swaps a
// fresh model in and persists both the active and the versioned
// artifact.
func TestRetrainerRetrainNow(t *testing.T) {
	meta, _, tail := fixture(t)
	dir := t.TempDir()
	rec := NewRecorder(0, 0)
	s := serve.New(meta, serve.Config{Shards: 2, Window: 30 * time.Minute, Observer: rec.Observe})
	defer s.Close()
	post(t, s, encode(t, tail))
	if rec.Len() == 0 {
		t.Fatal("recorder saw nothing")
	}

	rt := NewRetrainer(s, rec, RetrainerConfig{
		MinEvents: 10,
		Dir:       dir,
		Logf:      t.Logf,
	})
	// Pin the rule window so the test skips the 12-candidate sweep.
	rt.cfg.Pipeline.Rule.RuleGenWindow = 15 * time.Minute

	info, err := rt.RetrainNow()
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 2 || info.SHA256 == "" {
		t.Fatalf("retrained info = %+v", info)
	}
	if got := s.Model(); got.Version != 2 || got.SHA256 != info.SHA256 {
		t.Fatalf("server model = %+v, want swap to %+v", got, info)
	}
	for _, p := range []string{ModelPath(dir), VersionedModelPath(dir, 2)} {
		if _, err := model.Verify(p); err != nil {
			t.Fatalf("artifact %s: %v", p, err)
		}
	}
	// The persisted artifact is loadable and reports the provenance of
	// this retrain.
	a, _, err := model.Load(ModelPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if a.Provenance.Records == 0 || a.Provenance.Unique == 0 || a.Provenance.LogEnd.Before(a.Provenance.LogStart) {
		t.Fatalf("provenance = %+v", a.Provenance)
	}

	// Too little data refuses and leaves the serving model untouched.
	starved := NewRetrainer(s, NewRecorder(0, 0), RetrainerConfig{MinEvents: 10})
	if _, err := starved.RetrainNow(); err == nil {
		t.Fatal("retrain over an empty recorder succeeded")
	}
	if got := s.Model(); got.Version != 2 {
		t.Fatalf("failed retrain moved the model: %+v", got)
	}

}
