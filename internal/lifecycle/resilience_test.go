package lifecycle

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"bglpred/internal/faultinject"
	"bglpred/internal/serve"
)

// fastRetry keeps backoff tests from actually sleeping.
var fastRetry = RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}

func TestCheckpointLandsAfterTransientFailures(t *testing.T) {
	meta, _, tail := fixture(t)
	s := serve.New(meta, serve.Config{Shards: 2, Window: 30 * time.Minute})
	defer s.Close()
	post(t, s, encode(t, tail[:500]))

	in := faultinject.New(1)
	// The first two write attempts hit ENOSPC, then the disk "clears".
	in.Set(faultinject.FsWrite, faultinject.Plan{Err: faultinject.ENOSPC, Times: 2})
	dir := t.TempDir()
	c := NewCheckpointer(s, CheckpointerConfig{
		Dir:   dir,
		FS:    faultinject.NewFs(in, nil),
		Retry: fastRetry,
		Logf:  t.Logf,
	})
	info, err := c.CheckpointNow()
	if err != nil {
		t.Fatalf("checkpoint with 2 transient failures: %v", err)
	}
	if c.Saves() != 1 || c.Retries() != 2 || c.GiveUps() != 0 {
		t.Fatalf("saves=%d retries=%d giveups=%d, want 1/2/0", c.Saves(), c.Retries(), c.GiveUps())
	}
	if info.SHA256 == "" {
		t.Fatal("landed checkpoint has no hash")
	}
	// The landed file is intact: it loads through the clean filesystem.
	if _, _, err := LoadCheckpoint(StatePath(dir)); err != nil {
		t.Fatalf("checkpoint written under faults does not load: %v", err)
	}
}

func TestCheckpointGiveUpIsDistinctAndPreservesPredecessor(t *testing.T) {
	meta, _, tail := fixture(t)
	s := serve.New(meta, serve.Config{Shards: 2, Window: 30 * time.Minute})
	defer s.Close()
	post(t, s, encode(t, tail[:500]))

	dir := t.TempDir()
	// A good checkpoint lands first; the give-up must not clobber it.
	good := NewCheckpointer(s, CheckpointerConfig{Dir: dir, Retry: fastRetry})
	if _, err := good.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	before, _, err := LoadCheckpoint(StatePath(dir))
	if err != nil {
		t.Fatal(err)
	}

	in := faultinject.New(1)
	in.Set(faultinject.FsWrite, faultinject.Plan{Err: faultinject.ENOSPC}) // every attempt fails
	c := NewCheckpointer(s, CheckpointerConfig{
		Dir:   dir,
		FS:    faultinject.NewFs(in, nil),
		Retry: fastRetry,
		Logf:  t.Logf,
	})
	_, err = c.CheckpointNow()
	if !errors.Is(err, ErrCheckpointGiveUp) {
		t.Fatalf("err = %v, want ErrCheckpointGiveUp", err)
	}
	if errors.Is(err, ErrModelPersistGiveUp) {
		t.Fatal("checkpoint give-up is not distinguishable from model-persist give-up")
	}
	if c.GiveUps() != 1 || c.Saves() != 0 || c.Retries() != int64(fastRetry.MaxAttempts-1) {
		t.Fatalf("saves=%d retries=%d giveups=%d, want 0/%d/1", c.Saves(), c.Retries(), c.GiveUps(), fastRetry.MaxAttempts-1)
	}
	// Crash-safety held: the previous complete checkpoint is untouched.
	after, _, err := LoadCheckpoint(StatePath(dir))
	if err != nil {
		t.Fatalf("predecessor checkpoint destroyed by failed save: %v", err)
	}
	if !after.SavedAt.Equal(before.SavedAt) {
		t.Fatal("failed save replaced the previous checkpoint")
	}
}

func TestRetrainerPersistGiveUpAbortsSwap(t *testing.T) {
	meta, _, tail := fixture(t)
	rec := NewRecorder(0, 0)
	s := serve.New(meta, serve.Config{Shards: 2, Window: 30 * time.Minute, Observer: rec.Observe})
	defer s.Close()
	post(t, s, encode(t, tail))

	in := faultinject.New(1)
	in.Set(faultinject.FsWrite, faultinject.Plan{Err: faultinject.ENOSPC})
	rt := NewRetrainer(s, rec, RetrainerConfig{
		MinEvents: 10,
		Dir:       t.TempDir(),
		FS:        faultinject.NewFs(in, nil),
		Retry:     fastRetry,
		Logf:      t.Logf,
	})
	rt.cfg.Pipeline.Rule.RuleGenWindow = 15 * time.Minute

	_, err := rt.RetrainNow()
	if !errors.Is(err, ErrModelPersistGiveUp) {
		t.Fatalf("err = %v, want ErrModelPersistGiveUp", err)
	}
	if errors.Is(err, ErrCheckpointGiveUp) {
		t.Fatal("give-up sentinels are not distinct")
	}
	if rt.PersistGiveUps() != 1 {
		t.Fatalf("PersistGiveUps = %d, want 1", rt.PersistGiveUps())
	}
	// The swap never happened: serving a model whose hash names bytes
	// that don't exist would poison every subsequent checkpoint.
	if got := s.Model(); got.Version != 1 {
		t.Fatalf("failed persist still swapped the model: %+v", got)
	}
}

func TestRetryBackoffStopsOnContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	cause := errors.New("disk on fire")
	_, err := retryWithBackoff(ctx, RetryPolicy{MaxAttempts: 100, BaseDelay: time.Hour}, func() error {
		calls++
		return cause
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled wrapped", err)
	}
	// Both halves stay in the chain: cancellation for the shutdown
	// paths, the op error for diagnosis.
	if !errors.Is(err, cause) {
		t.Fatalf("err = %v lost the underlying cause from the error chain", err)
	}
	if !strings.Contains(err.Error(), "disk on fire") {
		t.Fatalf("err = %v lost the underlying cause", err)
	}
	if calls != 1 {
		t.Fatalf("op ran %d times under a cancelled ctx, want 1", calls)
	}
}

// TestCheckpointRestoreCorruptionMatrix proves the restore path fails
// with a distinct, diagnosable error for each injected corruption
// shape — truncation, a payload bit flip (SHA mismatch), and a failed
// commit rename — instead of silently restoring garbage state.
func TestCheckpointRestoreCorruptionMatrix(t *testing.T) {
	meta, _, tail := fixture(t)
	s := serve.New(meta, serve.Config{Shards: 2, Window: 30 * time.Minute})
	defer s.Close()
	post(t, s, encode(t, tail[:500]))

	dir := t.TempDir()
	c := NewCheckpointer(s, CheckpointerConfig{Dir: dir, Retry: fastRetry})
	if _, err := c.CheckpointNow(); err != nil {
		t.Fatal(err)
	}

	t.Run("truncated snapshot", func(t *testing.T) {
		in := faultinject.New(1)
		in.Set(faultinject.FsCorrupt, faultinject.Plan{Corrupt: faultinject.Truncate})
		_, _, err := LoadCheckpointFS(faultinject.NewFs(in, nil), StatePath(dir))
		if err == nil || !strings.Contains(err.Error(), "header declares") {
			t.Fatalf("truncated restore error = %v, want the length-mismatch diagnosis", err)
		}
	})

	t.Run("payload bit flip", func(t *testing.T) {
		in := faultinject.New(1)
		in.Set(faultinject.FsCorrupt, faultinject.Plan{Corrupt: faultinject.FlipByte})
		_, _, err := LoadCheckpointFS(faultinject.NewFs(in, nil), StatePath(dir))
		if err == nil || !strings.Contains(err.Error(), "SHA-256 mismatch") {
			t.Fatalf("bit-flip restore error = %v, want the checksum diagnosis", err)
		}
	})

	t.Run("failed rename leaves predecessor", func(t *testing.T) {
		before, _, err := LoadCheckpoint(StatePath(dir))
		if err != nil {
			t.Fatal(err)
		}
		in := faultinject.New(1)
		in.Set(faultinject.FsRename, faultinject.Plan{})
		cc := NewCheckpointer(s, CheckpointerConfig{
			Dir:   dir,
			FS:    faultinject.NewFs(in, nil),
			Retry: RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond},
		})
		if _, err := cc.CheckpointNow(); !errors.Is(err, ErrCheckpointGiveUp) || !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("rename-failure error = %v, want give-up wrapping the injected fault", err)
		}
		after, _, err := LoadCheckpoint(StatePath(dir))
		if err != nil || !after.SavedAt.Equal(before.SavedAt) {
			t.Fatalf("failed rename disturbed the committed checkpoint: %v", err)
		}
	})

	// The uncorrupted file still restores into a fresh server.
	fresh := serve.New(meta, serve.Config{Shards: 2, Window: 30 * time.Minute})
	defer fresh.Close()
	if _, err := Restore(fresh, dir, ""); err != nil {
		t.Fatalf("clean restore after the matrix: %v", err)
	}
}
