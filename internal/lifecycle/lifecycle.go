// Package lifecycle keeps a running bglserved's learned state durable
// and fresh: it checkpoints the serving state to disk so a crashed or
// restarted daemon resumes within seconds instead of retraining, and
// it retrains the model in the background over a sliding window of
// recently ingested events, hot-swapping the result into the live
// shards.
//
// Three cooperating pieces:
//
//   - Recorder: a bounded sliding window over the raw records the
//     server accepts — the retrainer's training data.
//   - Checkpointer: periodically snapshots every shard engine's
//     mutable state (dedup tables, observation windows, standing
//     alarms, counters) into a crash-safe checkpoint file, tagged with
//     the hash of the model artifact it was taken against.
//   - Retrainer: re-mines rules and re-learns temporal correlations
//     over the recorder's window, persists the result as a versioned
//     model artifact (internal/model), and swaps it into all serving
//     shards between two records (serve.Server.SwapModel) — zero
//     dropped ingests, no lost or duplicated alerts.
package lifecycle

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"bglpred/internal/model"
	"bglpred/internal/online"
	"bglpred/internal/serve"
)

// Checkpoint file format identity; the envelope machinery is shared
// with model artifacts.
const (
	CheckpointMagic   = "BGLC"
	CheckpointVersion = 1
)

// Default file names inside a checkpoint directory.
const (
	// ModelFile is the active model artifact.
	ModelFile = "model.bglm"
	// StateFile is the shard-state checkpoint.
	StateFile = "state.bglc"
)

// ModelPath and StatePath name the well-known files in a checkpoint
// directory.
func ModelPath(dir string) string { return filepath.Join(dir, ModelFile) }
func StatePath(dir string) string { return filepath.Join(dir, StateFile) }

// Checkpoint is one persisted snapshot of a server's mutable serving
// state. The model itself is not inside (it lives in its own artifact
// file); ModelSHA256 records which model the state was built over, so
// a restore against the wrong model is detected instead of silently
// producing nonsense predictions.
type Checkpoint struct {
	// SavedAt is when the snapshot was taken.
	SavedAt time.Time
	// ModelSHA256 and ModelVersion identify the serving model at save
	// time (empty SHA for an in-memory model that was never persisted).
	ModelSHA256  string
	ModelVersion int64
	// Shards holds one engine state per shard, indexed by shard ID.
	Shards []online.State
}

// SaveCheckpoint writes a checkpoint crash-safely (temp file, fsync,
// rename) in the shared envelope format.
func SaveCheckpoint(path string, cp *Checkpoint) (model.Info, error) {
	return SaveCheckpointFS(model.OS, path, cp)
}

// SaveCheckpointFS is SaveCheckpoint over an explicit filesystem (the
// fault-injection seam).
func SaveCheckpointFS(fsys model.FS, path string, cp *Checkpoint) (model.Info, error) {
	return model.SaveEnvelopeFS(fsys, path, CheckpointMagic, CheckpointVersion, cp)
}

// LoadCheckpoint reads and integrity-checks a checkpoint file.
func LoadCheckpoint(path string) (*Checkpoint, model.Info, error) {
	return LoadCheckpointFS(model.OS, path)
}

// LoadCheckpointFS is LoadCheckpoint over an explicit filesystem.
func LoadCheckpointFS(fsys model.FS, path string) (*Checkpoint, model.Info, error) {
	var cp Checkpoint
	info, err := model.LoadEnvelopeFS(fsys, path, CheckpointMagic, CheckpointVersion, &cp)
	if err != nil {
		return nil, model.Info{}, err
	}
	return &cp, info, nil
}

// Restore installs the checkpoint at StatePath(dir) into a freshly
// built server, if one exists. wantSHA is the hash of the model the
// server was built with; a checkpoint taken against a different model
// is refused (stale state over new rules would mis-predict). Returns
// (nil, nil) when dir holds no checkpoint — a cold start.
func Restore(srv *serve.Server, dir, wantSHA string) (*Checkpoint, error) {
	path := StatePath(dir)
	cp, _, err := LoadCheckpoint(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("lifecycle: load checkpoint %s: %w", path, err)
	}
	if cp.ModelSHA256 != "" && wantSHA != "" && cp.ModelSHA256 != wantSHA {
		return nil, fmt.Errorf("lifecycle: checkpoint %s was taken against model %.12s, server is running model %.12s (delete %s to start fresh)",
			path, cp.ModelSHA256, wantSHA, path)
	}
	if err := srv.RestoreShards(cp.Shards); err != nil {
		return nil, err
	}
	return cp, nil
}
