package lifecycle

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bglpred/internal/ledger"
	"bglpred/internal/model"
	"bglpred/internal/serve"
)

func openTestLedger(t *testing.T, dir string) *ledger.Ledger {
	t.Helper()
	led, _, err := ledger.Open(LedgerPath(dir), ledger.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { led.Close() })
	return led
}

// TestCheckpointerLedgerRoundTrip: with a ledger configured, the
// checkpointer persists through the group-commit path — no state file
// lands — and RestoreMatching resumes from the ledgered snapshot.
func TestCheckpointerLedgerRoundTrip(t *testing.T) {
	meta, _, tail := fixture(t)
	dir := t.TempDir()
	led := openTestLedger(t, dir)

	s := serve.New(meta, serve.Config{Shards: 2, Model: serve.ModelInfo{SHA256: "aaaa"}})
	post(t, s, encode(t, tail[:200]))
	ck := NewCheckpointer(s, CheckpointerConfig{Dir: dir, Ledger: led})
	if !ck.LastSaved().IsZero() {
		t.Fatal("LastSaved non-zero before any checkpoint")
	}
	info, err := ck.CheckpointNow()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(info.Path, "ledger:seq=") {
		t.Fatalf("ledger-mode checkpoint path %q", info.Path)
	}
	if ck.LastSaved().IsZero() {
		t.Fatal("LastSaved still zero after a durable checkpoint")
	}
	if _, err := os.Stat(StatePath(dir)); !os.IsNotExist(err) {
		t.Fatalf("ledger mode wrote the state file anyway (stat err %v)", err)
	}
	want := s.ExportShards()
	s.Close()

	fresh := serve.New(meta, serve.Config{Shards: 2, Model: serve.ModelInfo{SHA256: "aaaa"}})
	defer fresh.Close()
	cp, err := RestoreMatching(fresh, dir, led, "aaaa", t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if cp == nil {
		t.Fatal("no checkpoint restored from the ledger")
	}
	if len(cp.Shards) != len(want) {
		t.Fatalf("restored %d shards, checkpointed %d", len(cp.Shards), len(want))
	}
}

// TestRestoreMatchingAfterTornUpgrade is the crash-between-writes
// acceptance test: a retrain's artifact rename lands, the process dies
// before the next checkpoint, and the restart boots the new model with
// the old model's state on disk. RestoreMatching must notice the SHA
// mismatch, hunt down the artifact the checkpoint was actually taken
// against, and restore that matching pair — and the ledger's
// provenance chain must pinpoint the lost write.
func TestRestoreMatchingAfterTornUpgrade(t *testing.T) {
	meta, artOld, tail := fixture(t)
	dir := t.TempDir()
	led := openTestLedger(t, dir)

	// Generation 1: the old artifact, both active and versioned.
	oldInfo, err := artOld.Save(VersionedModelPath(dir, 1))
	if err != nil {
		t.Fatal(err)
	}

	// A server runs the old model and checkpoints against it.
	s := serve.New(meta, serve.Config{Shards: 2, Model: serve.ModelInfo{SHA256: oldInfo.SHA256}})
	post(t, s, encode(t, tail[:200]))
	if _, err := NewCheckpointer(s, CheckpointerConfig{Dir: dir, Ledger: led}).CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Generation 2 begins: the retrain's artifact rename lands (a new
	// active artifact with a different SHA, its provenance chained into
	// the ledger) — and then the process dies before any checkpoint
	// against it.
	artNew, err := model.FromMeta(meta, model.Provenance{Source: "torn upgrade", TrainedAt: time.Now().UTC()})
	if err != nil {
		t.Fatal(err)
	}
	newInfo, err := artNew.Save(ModelPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if newInfo.SHA256 == oldInfo.SHA256 {
		t.Fatal("fixture degenerate: both generations hash identically")
	}
	payload, err := json.Marshal(ModelLedgerRecord{Version: 2, SHA256: newInfo.SHA256, Path: ModelPath(dir)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := led.Append(ledger.KindModel, payload); err != nil {
		t.Fatal(err)
	}

	// The ledger pinpoints the torn upgrade: the newest model record
	// names a SHA no checkpoint ever referenced.
	modelRec, ok, err := LastModelRecord(led)
	if err != nil || !ok {
		t.Fatalf("model record: ok=%v err=%v", ok, err)
	}
	cpFromLedger, _, ok, err := LoadCheckpointFromLedger(led)
	if err != nil || !ok {
		t.Fatalf("ledgered checkpoint: ok=%v err=%v", ok, err)
	}
	if modelRec.SHA256 != newInfo.SHA256 || cpFromLedger.ModelSHA256 != oldInfo.SHA256 {
		t.Fatalf("provenance chain does not pinpoint the lost write: model %.12s vs checkpoint %.12s",
			modelRec.SHA256, cpFromLedger.ModelSHA256)
	}

	// Restart: the boot path loads the new active artifact, but the
	// only checkpoint names the old model. The matching pair wins.
	fresh := serve.New(meta, serve.Config{Shards: 2, Model: serve.ModelInfo{SHA256: newInfo.SHA256}})
	defer fresh.Close()
	cp, err := RestoreMatching(fresh, dir, led, newInfo.SHA256, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if cp == nil {
		t.Fatal("matching pair discarded: cold start despite an intact old artifact")
	}
	if got := fresh.Model().SHA256; got != oldInfo.SHA256 {
		t.Fatalf("restored server runs model %.12s, want the checkpoint's %.12s", got, oldInfo.SHA256)
	}

	// With the matching artifact gone too, mismatched state must not be
	// served: cold start, not a silent mispair.
	if err := os.Remove(VersionedModelPath(dir, 1)); err != nil {
		t.Fatal(err)
	}
	cold := serve.New(meta, serve.Config{Shards: 2, Model: serve.ModelInfo{SHA256: newInfo.SHA256}})
	defer cold.Close()
	cp, err = RestoreMatching(cold, dir, led, newInfo.SHA256, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if cp != nil {
		t.Fatal("restored state against a model that does not match it")
	}
	if got := cold.Model().SHA256; got != newInfo.SHA256 {
		t.Fatalf("cold start swapped models anyway: %.12s", got)
	}
}

// TestRetrainerChainsModelProvenance: a successful retrain appends a
// KindModel record naming the generation it produced.
func TestRetrainerChainsModelProvenance(t *testing.T) {
	meta, _, tail := fixture(t)
	dir := t.TempDir()
	led := openTestLedger(t, dir)

	s := serve.New(meta, serve.Config{Shards: 1, Window: 30 * time.Minute})
	defer s.Close()
	rec := NewRecorder(0, 0)
	for i := range tail {
		rec.Observe(tail[i])
	}
	rt := NewRetrainer(s, rec, RetrainerConfig{MinEvents: 1, Dir: dir, Ledger: led, Logf: t.Logf})
	info, err := rt.RetrainNow()
	if err != nil {
		t.Fatal(err)
	}

	mrec, ok, err := LastModelRecord(led)
	if err != nil || !ok {
		t.Fatalf("no model record after a retrain: ok=%v err=%v", ok, err)
	}
	if mrec.SHA256 != info.SHA256 || mrec.Version != info.Version {
		t.Fatalf("ledgered %+v, retrain produced v%d %.12s", mrec, info.Version, info.SHA256)
	}
	if mrec.Path != VersionedModelPath(dir, info.Version) {
		t.Fatalf("ledgered path %s", mrec.Path)
	}
	if _, err := os.Stat(filepath.Join(dir, "model-v2.bglm")); err != nil && mrec.Path == filepath.Join(dir, "model-v2.bglm") {
		t.Fatalf("ledgered path does not exist: %v", err)
	}
}
