package lifecycle

import (
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"bglpred/internal/core"
	"bglpred/internal/ledger"
	"bglpred/internal/model"
	"bglpred/internal/serve"
)

// RetrainerConfig parameterizes background retraining.
type RetrainerConfig struct {
	// Interval between retrain attempts; default 10 min.
	Interval time.Duration
	// MinEvents skips a retrain when the recorder holds fewer raw
	// records (too little data mines a degenerate rule set); default
	// 1000.
	MinEvents int
	// Pipeline carries the mining parameters retrains use (min
	// support, confidence thresholds, rule window, policy, ...). The
	// zero value reproduces the repository defaults.
	Pipeline core.Config
	// Dir, when non-empty, persists each retrained model: the active
	// artifact at ModelPath(Dir) plus an immutable versioned copy
	// (model-v<N>.bglm) per generation, so operators can diff or roll
	// back models.
	Dir string
	// FS is the filesystem artifacts are written through (nil =
	// model.OS); fault-injection tests interpose faultinject.Fs here.
	FS model.FS
	// Retry bounds the backoff against transient artifact-write
	// failures; the zero value selects the defaults.
	Retry RetryPolicy
	// Source tags the provenance of retrained models (e.g. "retrain
	// window=6h"); a sensible default is derived when empty.
	Source string
	// Ledger, when set, receives a KindModel provenance entry after
	// each retrained artifact lands, chaining the new generation's
	// version/SHA/path into the audit trail so bglaudit can verify
	// every model-v<N>.bglm back to genesis.
	Ledger *ledger.Ledger
	// Logf, when set, receives operational log lines.
	Logf func(format string, args ...any)
}

// Retrainer re-mines the model over the recorder's sliding window and
// hot-swaps the result into the server. Retrains are serialized: the
// periodic loop and POST /v1/model/reload share one mutex, so two
// trainings never race each other or double-swap.
type Retrainer struct {
	srv *serve.Server
	rec *Recorder
	cfg RetrainerConfig

	mu             sync.Mutex // serializes RetrainNow
	persistRetries atomic.Int64
	persistGiveups atomic.Int64
}

// NewRetrainer builds a retrainer over a server and its recorder.
func NewRetrainer(srv *serve.Server, rec *Recorder, cfg RetrainerConfig) *Retrainer {
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * time.Minute
	}
	if cfg.MinEvents <= 0 {
		cfg.MinEvents = 1000
	}
	if cfg.Source == "" {
		cfg.Source = "background retrain"
	}
	if cfg.FS == nil {
		cfg.FS = model.OS
	}
	return &Retrainer{srv: srv, rec: rec, cfg: cfg}
}

// PersistRetries reports artifact-write re-tries spent; PersistGiveUps
// the retrains whose artifact never landed (the in-memory hot-swap
// still happens for the versioned copy path, never for the active
// artifact — see RetrainNow).
func (r *Retrainer) PersistRetries() int64 { return r.persistRetries.Load() }
func (r *Retrainer) PersistGiveUps() int64 { return r.persistGiveups.Load() }

// RetrainNow trains a new model on the recorder's current window,
// persists it (when Dir is set), and hot-swaps it into every serving
// shard. It returns the identity of the model now serving, or an
// error that leaves the previous model serving untouched — a failed
// retrain never degrades the running service. Artifact writes retry
// with backoff; an exhausted budget on the active artifact aborts the
// swap with an error wrapping ErrModelPersistGiveUp (serving a model
// whose SHA names bytes that don't exist would poison checkpoints).
func (r *Retrainer) RetrainNow() (serve.ModelInfo, error) {
	return r.retrainNow(context.Background())
}

func (r *Retrainer) retrainNow(ctx context.Context) (serve.ModelInfo, error) {
	r.mu.Lock()
	defer r.mu.Unlock()

	started := time.Now()
	raw := r.rec.Snapshot()
	if len(raw) < r.cfg.MinEvents {
		return serve.ModelInfo{}, fmt.Errorf("lifecycle: only %d records in the retraining window (need %d); serving model unchanged",
			len(raw), r.cfg.MinEvents)
	}

	pipeline := core.New(r.cfg.Pipeline)
	pre := pipeline.Preprocess(raw)
	trained, err := pipeline.Train(pre.Events)
	if err != nil {
		return serve.ModelInfo{}, fmt.Errorf("lifecycle: retrain: %w", err)
	}

	ruleCfg := trained.Rule.Config
	prov := model.Provenance{
		TrainedAt: time.Now().UTC(),
		Source:    r.cfg.Source,
		Records:   len(raw),
		Unique:    len(pre.Events),
		LogStart:  raw[0].Time,
		LogEnd:    raw[len(raw)-1].Time,
		Params: model.MiningParams{
			MinSupport:    ruleCfg.MinSupport,
			MinConfidence: ruleCfg.MinConfidence,
			MaxBodyLen:    ruleCfg.MaxBodyLen,
			RuleGenWindow: trained.Rule.ChosenWindow(),
			Miner:         fmt.Sprintf("%T", ruleCfg.Miner),
		},
	}
	artifact, err := model.FromMeta(trained.Meta, prov)
	if err != nil {
		return serve.ModelInfo{}, fmt.Errorf("lifecycle: retrain produced an incomplete model: %w", err)
	}

	// Persist before swapping so the SHA in the published ModelInfo
	// names bytes that actually exist on disk; a crash between save
	// and swap leaves a newer artifact with older state, which the
	// checkpoint SHA check surfaces at restore time.
	var sha string
	if r.cfg.Dir != "" {
		var info model.Info
		retries, err := retryWithBackoff(ctx, r.cfg.Retry, func() error {
			var saveErr error
			info, saveErr = artifact.SaveFS(r.cfg.FS, ModelPath(r.cfg.Dir))
			return saveErr
		})
		r.persistRetries.Add(int64(retries))
		if err != nil {
			r.persistGiveups.Add(1)
			return serve.ModelInfo{}, fmt.Errorf("%w: %w", ErrModelPersistGiveUp, err)
		}
		sha = info.SHA256
	}

	newInfo := r.srv.SwapModel(trained.Meta, serve.ModelInfo{
		SHA256:    sha,
		TrainedAt: prov.TrainedAt,
		Source:    r.cfg.Source,
		Rules:     trained.Rule.Rules().Len(),
	})

	// Immutable per-generation copy, named by the version just
	// assigned. Best effort with the same retry budget: the active
	// artifact already landed, so a lost versioned copy costs only the
	// rollback convenience.
	if r.cfg.Dir != "" {
		retries, err := retryWithBackoff(ctx, r.cfg.Retry, func() error {
			_, saveErr := artifact.SaveFS(r.cfg.FS, VersionedModelPath(r.cfg.Dir, newInfo.Version))
			return saveErr
		})
		r.persistRetries.Add(int64(retries))
		if err != nil {
			r.logf("versioned artifact copy: %v", err)
		}
	}
	// Chain the new generation into the audit ledger. Retried with the
	// same budget as the artifact writes; a give-up costs only the
	// audit entry (the artifact and swap already happened), so it logs
	// rather than fails the retrain.
	if r.cfg.Ledger != nil && sha != "" {
		payload, merr := json.Marshal(ModelLedgerRecord{
			Version:   newInfo.Version,
			SHA256:    sha,
			Path:      VersionedModelPath(r.cfg.Dir, newInfo.Version),
			TrainedAt: prov.TrainedAt,
			Source:    r.cfg.Source,
		})
		if merr == nil {
			retries, err := retryWithBackoff(ctx, r.cfg.Retry, func() error {
				_, appendErr := r.cfg.Ledger.Append(ledger.KindModel, payload)
				return appendErr
			})
			r.persistRetries.Add(int64(retries))
			if err != nil {
				r.logf("model provenance ledger entry: %v", err)
			}
		}
	}
	r.logf("retrained model v%d on %d records (%d unique, %d rules, sha %.12s) in %v",
		newInfo.Version, len(raw), len(pre.Events), newInfo.Rules, sha,
		time.Since(started).Round(time.Millisecond))
	return newInfo, nil
}

// VersionedModelPath names the immutable artifact copy for one model
// generation.
func VersionedModelPath(dir string, version int64) string {
	return filepath.Join(dir, fmt.Sprintf("model-v%d.bglm", version))
}

// Run retrains on the configured interval until ctx is cancelled.
// Failed or skipped retrains are logged and retried next tick.
func (r *Retrainer) Run(ctx context.Context) {
	t := time.NewTicker(r.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if _, err := r.retrainNow(ctx); err != nil {
				r.logf("%v", err)
			}
		case <-ctx.Done():
			return
		}
	}
}

func (r *Retrainer) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}
