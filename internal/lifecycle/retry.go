package lifecycle

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Distinct give-up errors for the two persistence paths, so operators
// and tests can tell a checkpoint that never landed from a model
// artifact that never landed. Both wrap the last underlying I/O error
// (errors.Is sees ENOSPC through them).
var (
	// ErrCheckpointGiveUp marks a shard-state checkpoint abandoned
	// after exhausting its retry budget.
	ErrCheckpointGiveUp = errors.New("lifecycle: checkpoint retries exhausted")
	// ErrModelPersistGiveUp marks a retrained-model artifact abandoned
	// after exhausting its retry budget.
	ErrModelPersistGiveUp = errors.New("lifecycle: model persist retries exhausted")
)

// RetryPolicy bounds the exponential backoff persistence writes use
// against transient I/O failures (a briefly full disk, a flaky NFS
// mount). The zero value selects the defaults: 5 attempts starting at
// 50 ms, doubling to a 2 s cap, with ±20 % deterministic jitter.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first try included).
	MaxAttempts int
	// BaseDelay is the wait after the first failure; each subsequent
	// wait doubles, capped at MaxDelay.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Jitter spreads each wait by ±Jitter fraction (0.2 = ±20 %),
	// decorrelating retry storms across shards and daemons. The jitter
	// stream is deterministic per policy value (seeded by Seed), so
	// chaos tests replay identically.
	Jitter float64
	// Seed derives the deterministic jitter stream.
	Seed uint64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 5
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Jitter < 0 || p.Jitter >= 1 {
		p.Jitter = 0.2
	}
	return p
}

// retryWithBackoff runs op up to p.MaxAttempts times, sleeping an
// exponentially growing, jittered delay between failures. It stops
// early when ctx is cancelled (returning ctx.Err() wrapped over the
// last op error, so a shutdown mid-retry is not misread as a disk
// problem). retries reports how many re-tries ran (attempts - 1,
// successful or not); err is nil on success and the last op error
// otherwise.
func retryWithBackoff(ctx context.Context, p RetryPolicy, op func() error) (retries int, err error) {
	p = p.withDefaults()
	rng := p.Seed ^ 0x9e3779b97f4a7c15
	delay := p.BaseDelay
	for attempt := 1; ; attempt++ {
		err = op()
		if err == nil || attempt >= p.MaxAttempts {
			return attempt - 1, err
		}
		if ctx != nil && ctx.Err() != nil {
			return attempt - 1, fmt.Errorf("%w (after %w)", ctx.Err(), err)
		}
		d := jitter(delay, p.Jitter, &rng)
		select {
		case <-time.After(d):
		case <-ctxDone(ctx):
			return attempt - 1, fmt.Errorf("%w (after %w)", ctx.Err(), err)
		}
		if delay *= 2; delay > p.MaxDelay {
			delay = p.MaxDelay
		}
	}
}

// ctxDone tolerates a nil context (retry without cancellation).
func ctxDone(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// jitter spreads d by ±frac using a splitmix64 step over *state.
func jitter(d time.Duration, frac float64, state *uint64) time.Duration {
	if frac <= 0 {
		return d
	}
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	// u in [0,1); scale to [1-frac, 1+frac).
	u := float64(z>>11) / float64(1<<53)
	return time.Duration(float64(d) * (1 - frac + 2*frac*u))
}
