package lifecycle

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"bglpred/internal/ledger"
	"bglpred/internal/model"
	"bglpred/internal/serve"
)

// LedgerFile is the audit ledger inside a checkpoint directory.
const LedgerFile = "audit.bgll"

// LedgerPath names the audit ledger in a checkpoint directory.
func LedgerPath(dir string) string { return filepath.Join(dir, LedgerFile) }

// ModelLedgerRecord is the KindModel payload the retrainer appends
// after a model artifact lands: the provenance chain that lets
// bglaudit trace every model-v<N>.bglm back to genesis.
type ModelLedgerRecord struct {
	Version   int64     `json:"version"`
	SHA256    string    `json:"sha256"`
	Path      string    `json:"path"`
	TrainedAt time.Time `json:"trained_at"`
	Source    string    `json:"source"`
}

// LastModelRecord returns the newest model-provenance entry in the
// ledger, or ok=false when none has been appended yet.
func LastModelRecord(led *ledger.Ledger) (ModelLedgerRecord, bool, error) {
	seq, ok := led.LastSeqOf(ledger.KindModel)
	if !ok {
		return ModelLedgerRecord{}, false, nil
	}
	_, payload, err := led.Payload(seq)
	if err != nil {
		return ModelLedgerRecord{}, false, err
	}
	var rec ModelLedgerRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		return ModelLedgerRecord{}, false, fmt.Errorf("lifecycle: model record at seq %d: %w", seq, err)
	}
	return rec, true, nil
}

// LoadCheckpointFromLedger returns the newest checkpoint carried in
// the ledger (the group-commit Checkpointer's persistence path), or
// ok=false when the ledger holds none.
func LoadCheckpointFromLedger(led *ledger.Ledger) (*Checkpoint, model.Info, bool, error) {
	seq, ok := led.LastSeqOf(ledger.KindCheckpoint)
	if !ok {
		return nil, model.Info{}, false, nil
	}
	_, payload, err := led.Payload(seq)
	if err != nil {
		return nil, model.Info{}, false, fmt.Errorf("lifecycle: checkpoint entry %d: %w", seq, err)
	}
	var cp Checkpoint
	info, err := model.UnmarshalEnvelope(payload, CheckpointMagic, CheckpointVersion, &cp)
	if err != nil {
		return nil, model.Info{}, false, fmt.Errorf("lifecycle: checkpoint entry %d: %w", seq, err)
	}
	info.Path = fmt.Sprintf("ledger:seq=%d", seq)
	return &cp, info, true, nil
}

// MatchModelForCheckpoint finds the on-disk model artifact whose
// content hash is sha: the active ModelPath(dir) first, then the
// versioned model-v<N>.bglm copies (newest first). It returns the
// artifact's path, or an error when no intact artifact matches.
func MatchModelForCheckpoint(dir, sha string) (string, error) {
	candidates := []string{ModelPath(dir)}
	versioned, _ := filepath.Glob(filepath.Join(dir, "model-v*.bglm"))
	sort.Sort(sort.Reverse(sort.StringSlice(versioned)))
	candidates = append(candidates, versioned...)
	for _, path := range candidates {
		info, err := model.Verify(path)
		if err != nil {
			continue // missing or damaged artifact: keep looking
		}
		if info.SHA256 == sha {
			return path, nil
		}
	}
	return "", fmt.Errorf("lifecycle: no intact artifact in %s matches checkpoint model %.12s", dir, sha)
}

// RestoreMatching is Restore hardened against a crash between the two
// persistence writes (artifact rename and checkpoint): instead of
// refusing on a model/state SHA mismatch, it hunts for the artifact
// the checkpoint was actually taken against — the active model file or
// a versioned copy — swaps it in, and restores the matching pair. The
// newest checkpoint is taken from the ledger when one is carried
// there, falling back to StateFile for pre-ledger directories.
//
// Only when no intact artifact matches does it fall back to a cold
// start (with a logged warning): serving mismatched state would
// mis-predict silently, which is strictly worse than re-learning.
func RestoreMatching(srv *serve.Server, dir string, led *ledger.Ledger, wantSHA string, logf func(string, ...any)) (*Checkpoint, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var (
		cp  *Checkpoint
		src string
	)
	if led != nil {
		lcp, info, ok, err := LoadCheckpointFromLedger(led)
		if err != nil {
			return nil, err
		}
		if ok {
			cp, src = lcp, info.Path
		}
	}
	if cp == nil {
		path := StatePath(dir)
		fcp, _, err := LoadCheckpoint(path)
		if os.IsNotExist(err) {
			return nil, nil // cold start
		}
		if err != nil {
			return nil, fmt.Errorf("lifecycle: load checkpoint %s: %w", path, err)
		}
		cp, src = fcp, path
	}

	if cp.ModelSHA256 == "" || wantSHA == "" || cp.ModelSHA256 == wantSHA {
		if err := srv.RestoreShards(cp.Shards); err != nil {
			return nil, err
		}
		return cp, nil
	}

	// The checkpoint was taken against a different model than the one
	// the server booted with — the signature of a crash between the
	// artifact write and the checkpoint write. Find the matching
	// artifact and restore the pair.
	path, err := MatchModelForCheckpoint(dir, cp.ModelSHA256)
	if err != nil {
		logf("restore: checkpoint %s was taken against model %.12s, server has %.12s, and no matching artifact survives; cold start (%v)",
			src, cp.ModelSHA256, wantSHA, err)
		return nil, nil
	}
	art, info, err := model.Load(path)
	if err != nil {
		return nil, fmt.Errorf("lifecycle: load matching artifact %s: %w", path, err)
	}
	meta, err := art.Meta()
	if err != nil {
		return nil, fmt.Errorf("lifecycle: matching artifact %s: %w", path, err)
	}
	logf("restore: checkpoint %s matches artifact %s (%.12s), not the boot model (%.12s); swapping to the matching pair",
		src, path, cp.ModelSHA256, wantSHA)
	srv.SwapModel(meta, serve.ModelInfo{
		SHA256:    info.SHA256,
		TrainedAt: art.Provenance.TrainedAt,
		Source:    art.Provenance.Source,
	})
	if err := srv.RestoreShards(cp.Shards); err != nil {
		return nil, err
	}
	return cp, nil
}
