package lifecycle

import (
	"sync"
	"time"

	"bglpred/internal/raslog"
)

// Recorder is a bounded sliding window over recently ingested raw
// records: the retrainer's training set. Wire its Observe method as
// serve.Config.Observer; it is cheap (mutex + append, amortized
// compaction) and never blocks on I/O.
type Recorder struct {
	mu     sync.Mutex
	window time.Duration
	max    int
	events []raslog.Event
	seen   int64 // lifetime observed count
}

// Default recorder bounds: six hours of events, capped at 250k
// records (~the scale a retrain can chew through in seconds).
const (
	DefaultRecorderWindow = 6 * time.Hour
	DefaultRecorderMax    = 250_000
)

// NewRecorder builds a recorder keeping at most window of event time
// and max records (zero values select the defaults).
func NewRecorder(window time.Duration, max int) *Recorder {
	if window <= 0 {
		window = DefaultRecorderWindow
	}
	if max <= 0 {
		max = DefaultRecorderMax
	}
	return &Recorder{window: window, max: max}
}

// Observe appends one accepted record to the sliding window.
func (r *Recorder) Observe(ev raslog.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, ev)
	r.seen++
	// Compact lazily: prune expired records when the buffer runs past
	// its cap, and always keep the hard cap.
	if len(r.events) > r.max {
		r.pruneLocked()
	}
}

// pruneLocked drops records older than the window (relative to the
// newest record's event time) and enforces the hard cap; r.mu held.
func (r *Recorder) pruneLocked() {
	latest := r.events[0].Time
	for i := range r.events {
		if r.events[i].Time.After(latest) {
			latest = r.events[i].Time
		}
	}
	cutoff := latest.Add(-r.window)
	keep := r.events[:0]
	for _, ev := range r.events {
		if !ev.Time.Before(cutoff) {
			keep = append(keep, ev)
		}
	}
	if len(keep) > r.max {
		// Still over: keep the newest max records (the slice is in
		// arrival order, which tracks event order closely).
		copy(keep, keep[len(keep)-r.max:])
		keep = keep[:r.max]
	}
	// Release the tail so pruned records can be collected.
	for i := len(keep); i < len(r.events); i++ {
		r.events[i] = raslog.Event{}
	}
	r.events = keep
}

// Snapshot returns the window's records, time-sorted, as an
// independent copy ready to feed a training pipeline.
func (r *Recorder) Snapshot() []raslog.Event {
	r.mu.Lock()
	r.pruneIfNeededLocked()
	out := make([]raslog.Event, len(r.events))
	copy(out, r.events)
	r.mu.Unlock()
	raslog.SortEvents(out)
	return out
}

// pruneIfNeededLocked expires old records before a snapshot without
// waiting for the cap to trip.
func (r *Recorder) pruneIfNeededLocked() {
	if len(r.events) > 0 {
		r.pruneLocked()
	}
}

// Len reports the records currently buffered.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Seen reports the lifetime observed record count.
func (r *Recorder) Seen() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seen
}
