package bglsim

import (
	"math"
	"strings"
	"testing"
	"time"

	"bglpred/internal/bglsim/faults"
	"bglpred/internal/catalog"
	"bglpred/internal/raslog"
)

func generateScaled(t *testing.T, p Profile, scale float64) *Result {
	t.Helper()
	res, err := Generate(p.Scaled(scale))
	if err != nil {
		t.Fatalf("Generate(%s): %v", p.Name, err)
	}
	return res
}

func TestGenerateDeterministic(t *testing.T) {
	p := ANLProfile().Scaled(0.02)
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("non-deterministic: %d vs %d events", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs between runs", i)
		}
	}
}

func TestGenerateEventsWellFormed(t *testing.T) {
	res := generateScaled(t, ANLProfile(), 0.02)
	if len(res.Events) == 0 {
		t.Fatal("no events")
	}
	p := res.Profile
	for i := range res.Events {
		e := &res.Events[i]
		if err := e.Validate(); err != nil {
			t.Fatalf("event %d invalid: %v", i, err)
		}
		if e.RecID != int64(i+1) {
			t.Fatalf("event %d has RecID %d", i, e.RecID)
		}
		if e.Time.Before(p.Start) || e.Time.After(p.End.Add(p.Dup.Spread)) {
			t.Fatalf("event %d time %v escapes span", i, e.Time)
		}
		if !e.Time.Equal(e.Time.Truncate(time.Second)) {
			t.Fatalf("event %d has sub-second timestamp (CMCS records whole seconds)", i)
		}
		if e.Location.Kind == raslog.KindUnknown {
			t.Fatalf("event %d has unknown location", i)
		}
	}
	if !raslog.EventsSorted(res.Events) {
		t.Fatal("events not sorted")
	}
}

func TestGenerateEventsClassifiable(t *testing.T) {
	// Every generated record must classify back to the subcategory that
	// produced it — the simulator and Phase 1 must agree end to end.
	res := generateScaled(t, SDSCProfile(), 0.02)
	c := catalog.NewClassifier()
	for i := range res.Events {
		e := &res.Events[i]
		s, ok := c.Classify(e)
		if !ok {
			t.Fatalf("event %d unclassifiable: %q", i, e.EntryData)
		}
		if s.Severity != e.Severity || s.Facility != e.Facility {
			t.Fatalf("event %d classified as %s but severity/facility mismatch: %v", i, s.Name, e)
		}
	}
}

func TestGenerateDuplicationExpands(t *testing.T) {
	res := generateScaled(t, ANLProfile(), 0.02)
	if len(res.Events) < 5*len(res.Logical) {
		t.Fatalf("duplication factor %.1f too low; CMCS logs are heavily duplicated",
			float64(len(res.Events))/float64(len(res.Logical)))
	}
}

func TestGenerateJobAttribution(t *testing.T) {
	res := generateScaled(t, ANLProfile(), 0.02)
	withJob := 0
	for i := range res.Events {
		e := &res.Events[i]
		if e.JobID != raslog.NoJob {
			withJob++
			job, ok := res.Schedule.JobAt(e.Time.Add(-res.Profile.Dup.Spread), e.Location.MidplaneOf())
			if !ok {
				// The duplicate jitter may land just past the job end;
				// accept if a job covers the undithered time.
				continue
			}
			if job.ID != e.JobID {
				// Distinct overlapping jobs can't exist per midplane, so
				// the ID must match the resident job.
				t.Fatalf("event %d attributed to job %d but %d resident", i, e.JobID, job.ID)
			}
		}
	}
	if withJob == 0 {
		t.Fatal("no events carry job attribution")
	}
}

// tolerancePct asserts got within pct% of want.
func tolerancePct(t *testing.T, what string, got, want, pct float64) {
	t.Helper()
	if want == 0 {
		return
	}
	if math.Abs(got-want)/want > pct/100 {
		t.Errorf("%s = %.0f, want within %.0f%% of %.0f", what, got, pct, want)
	}
}

func TestANLCalibrationAgainstPaperTables(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration test generates a large log")
	}
	const scale = 0.25
	res := generateScaled(t, ANLProfile(), scale)

	// Table 1: 4,172,359 raw records at full scale.
	tolerancePct(t, "ANL raw records", float64(len(res.Events))/scale, 4172359, 20)

	// Table 4: compressed fatal counts by category (here: logical
	// ground truth; preprocess_test checks the pipeline recovers them).
	want := map[catalog.Main]float64{
		catalog.Application: 762, catalog.Iostream: 1173,
		catalog.Kernel: 224, catalog.Memory: 52, catalog.Midplane: 102,
		catalog.Network: 482, catalog.NodeCard: 20, catalog.Other: 8,
	}
	got := faults.FatalByMain(res.Logical)
	for m, w := range want {
		mean := w * scale
		pct := 15 + 400/math.Sqrt(mean)
		tolerancePct(t, "ANL fatal "+m.String(), float64(got[m])/scale, w, pct)
	}
}

func TestSDSCCalibrationAgainstPaperTables(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration test generates a large log")
	}
	const scale = 0.25
	res := generateScaled(t, SDSCProfile(), scale)
	tolerancePct(t, "SDSC raw records", float64(len(res.Events))/scale, 428953, 20)

	want := map[catalog.Main]float64{
		catalog.Application: 587, catalog.Iostream: 905,
		catalog.Kernel: 182, catalog.Memory: 25, catalog.Midplane: 97,
		catalog.Network: 366, catalog.NodeCard: 17, catalog.Other: 3,
	}
	got := faults.FatalByMain(res.Logical)
	for m, w := range want {
		// Expected counts at this scale are small, so allow ~4 sigma of
		// Poisson noise on top of a 15% calibration budget.
		mean := w * scale
		pct := 15 + 400/math.Sqrt(mean)
		tolerancePct(t, "SDSC fatal "+m.String(), float64(got[m])/scale, w, pct)
	}
}

func TestProfilesValidate(t *testing.T) {
	for _, p := range Profiles() {
		if err := p.Faults.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if p.Span() <= 0 || p.FullSpan <= 0 {
			t.Errorf("%s: bad span", p.Name)
		}
	}
}

func TestProfileExpectedFatalsMatchTable4(t *testing.T) {
	// The analytic expectation (no sampling noise) must sit very close
	// to the paper's Table 4.
	want := map[string]map[catalog.Main]float64{
		"ANL": {
			catalog.Application: 762, catalog.Iostream: 1173,
			catalog.Kernel: 224, catalog.Memory: 52, catalog.Midplane: 102,
			catalog.Network: 482, catalog.NodeCard: 20, catalog.Other: 8,
		},
		"SDSC": {
			catalog.Application: 587, catalog.Iostream: 905,
			catalog.Kernel: 182, catalog.Memory: 25, catalog.Midplane: 97,
			catalog.Network: 366, catalog.NodeCard: 17, catalog.Other: 3,
		},
	}
	for _, p := range Profiles() {
		exp := p.Faults.ExpectedFatals()
		for m, w := range want[p.Name] {
			tolerancePct(t, p.Name+" expected "+m.String(), exp[m], w, 12)
		}
	}
}

func TestScaled(t *testing.T) {
	p := ANLProfile()
	half := p.Scaled(0.5)
	if got, want := half.Span(), p.FullSpan/2; got != want {
		t.Fatalf("Scaled(0.5).Span = %v, want %v", got, want)
	}
	two := p.Scaled(2)
	if two.Span() != p.FullSpan {
		t.Fatal("Scaled should clamp above 1")
	}
	neg := p.Scaled(-1)
	if neg.Span() <= 0 {
		t.Fatal("Scaled should clamp nonpositive scales")
	}
}

func TestProfileByName(t *testing.T) {
	if p, ok := ProfileByName("ANL"); !ok || p.Name != "ANL" {
		t.Fatal("ProfileByName(ANL) failed")
	}
	if p, ok := ProfileByName("SDSC"); !ok || p.Name != "SDSC" {
		t.Fatal("ProfileByName(SDSC) failed")
	}
	if _, ok := ProfileByName("LLNL"); ok {
		t.Fatal("ProfileByName(LLNL) should fail")
	}
}

func TestGenerateRejectsBadProfiles(t *testing.T) {
	p := ANLProfile()
	p.End = p.Start
	if _, err := Generate(p); err == nil {
		t.Error("empty span accepted")
	}
	p = ANLProfile()
	p.Faults.Chains[0].Confidence = 2
	if _, err := Generate(p); err == nil {
		t.Error("invalid fault model accepted")
	}
}

func TestEpisodeSpatialCoherence(t *testing.T) {
	// All raw records of one chain episode must land on one midplane.
	res := generateScaled(t, ANLProfile(), 0.02)
	// Duplicates of one logical event share their entry data; entries
	// with an " at 0x" suffix have a 2^32 detail space, so equal entry
	// text identifies one logical event with near certainty. All its
	// duplicates must sit on one midplane.
	byEntry := map[string]raslog.Location{}
	checked := 0
	for i := range res.Events {
		e := &res.Events[i]
		if !strings.Contains(e.EntryData, " at 0x") {
			continue
		}
		mp := e.Location.MidplaneOf()
		if prev, ok := byEntry[e.EntryData]; ok {
			checked++
			if prev != mp {
				t.Fatalf("duplicates of %q span midplanes %v and %v", e.EntryData, prev, mp)
			}
		} else {
			byEntry[e.EntryData] = mp
		}
	}
	if checked == 0 {
		t.Fatal("no duplicated detailed entries found; test is vacuous")
	}
}

func BenchmarkGenerateANLScale2pct(b *testing.B) {
	p := ANLProfile().Scaled(0.02)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(p); err != nil {
			b.Fatal(err)
		}
	}
}

func TestHotMidplaneShare(t *testing.T) {
	// The ANL profile routes ~62% of fault episodes to midplane 0.
	// Count distinct logical fatal events (duplicates of one event
	// share their entry text) so the skew is measured per event, not
	// per raw record whose heavy-tailed fanout would swamp it.
	res := generateScaled(t, ANLProfile(), 0.1)
	byEntry := map[string]int{}
	for i := range res.Events {
		e := &res.Events[i]
		if e.Severity.IsFatal() {
			if _, seen := byEntry[e.EntryData]; !seen {
				byEntry[e.EntryData] = e.Location.MidplaneOf().Midplane
			}
		}
	}
	counts := map[int]int{}
	for _, mp := range byEntry {
		counts[mp]++
	}
	total := counts[0] + counts[1]
	if total == 0 {
		t.Fatal("no fatal records")
	}
	share := float64(counts[0]) / float64(total)
	if share < 0.54 || share > 0.70 {
		t.Fatalf("midplane-0 fatal share = %.3f, want ~0.62", share)
	}
}
