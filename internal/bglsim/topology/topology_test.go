package topology

import (
	"math/rand/v2"
	"testing"

	"bglpred/internal/raslog"
)

func TestDefaultsMatchSingleRackBGL(t *testing.T) {
	m := New(Config{})
	if got := m.ComputeNodes(); got != 1024 {
		t.Errorf("ComputeNodes = %d, want 1024", got)
	}
	if got := m.IONodes(); got != 32 {
		t.Errorf("IONodes = %d, want 32 (ANL I/O-poor default)", got)
	}
	if got := m.ChipsPerMidplane(); got != 512 {
		t.Errorf("ChipsPerMidplane = %d, want 512", got)
	}
	if got := len(m.Midplanes()); got != 2 {
		t.Errorf("midplanes = %d, want 2", got)
	}
}

func TestSDSCIORichConfig(t *testing.T) {
	m := New(Config{IOChipsPerNodeCard: 4})
	if got := m.IONodes(); got != 128 {
		t.Errorf("IONodes = %d, want 128 (SDSC I/O-rich)", got)
	}
}

func TestChipIndexRoundTrip(t *testing.T) {
	m := New(Config{})
	mp := raslog.Location{Kind: raslog.KindMidplane, Rack: 0, Midplane: 1}
	for idx := 0; idx < m.ChipsPerMidplane(); idx++ {
		chip := m.ChipByIndex(mp, idx)
		if chip.Kind != raslog.KindComputeChip {
			t.Fatalf("ChipByIndex(%d).Kind = %v", idx, chip.Kind)
		}
		if got := m.ChipIndex(chip); got != idx {
			t.Fatalf("round trip %d -> %d", idx, got)
		}
		if !mp.Contains(chip) {
			t.Fatalf("chip %v not in midplane %v", chip, mp)
		}
	}
}

func TestChipByIndexPanicsOutOfRange(t *testing.T) {
	m := New(Config{})
	mp := m.Midplanes()[0]
	for _, idx := range []int{-1, 512} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ChipByIndex(%d) did not panic", idx)
				}
			}()
			m.ChipByIndex(mp, idx)
		}()
	}
}

func TestCheckMidplanePanicsOnBadInput(t *testing.T) {
	m := New(Config{})
	bad := []raslog.Location{
		{Kind: raslog.KindRack},
		{Kind: raslog.KindMidplane, Rack: 5}, // only 1 rack
		{},
	}
	for _, loc := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RandomChip(%v) did not panic", loc)
				}
			}()
			m.RandomChip(rand.New(rand.NewPCG(1, 1)), loc)
		}()
	}
}

func TestRandomLocationsStayInMidplane(t *testing.T) {
	m := New(Config{IOChipsPerNodeCard: 4})
	rng := rand.New(rand.NewPCG(3, 3))
	mp := m.Midplanes()[1]
	for i := 0; i < 200; i++ {
		if loc := m.RandomChip(rng, mp); !mp.Contains(loc) {
			t.Fatalf("RandomChip %v escaped %v", loc, mp)
		}
		if loc := m.RandomIONode(rng, mp); !mp.Contains(loc) {
			t.Fatalf("RandomIONode %v escaped %v", loc, mp)
		}
		if loc := m.RandomNodeCard(rng, mp); !mp.Contains(loc) {
			t.Fatalf("RandomNodeCard %v escaped %v", loc, mp)
		}
		if loc := m.RandomLinkCard(rng, mp); !mp.Contains(loc) || loc.Card >= 4 {
			t.Fatalf("RandomLinkCard %v bad", loc)
		}
	}
	sc := m.ServiceCard(mp)
	if sc.Kind != raslog.KindServiceCard || !mp.Contains(sc) {
		t.Fatalf("ServiceCard = %v", sc)
	}
}

func TestTorusNeighborsFullMidplane(t *testing.T) {
	m := New(Config{})
	mp := m.Midplanes()[0]
	rng := rand.New(rand.NewPCG(9, 9))
	for i := 0; i < 100; i++ {
		chip := m.RandomChip(rng, mp)
		nbrs := m.TorusNeighbors(chip)
		if len(nbrs) != 6 {
			t.Fatalf("chip %v has %d torus neighbours, want 6", chip, len(nbrs))
		}
		seen := map[raslog.Location]bool{chip: true}
		for _, n := range nbrs {
			if seen[n] {
				t.Fatalf("duplicate neighbour %v of %v", n, chip)
			}
			seen[n] = true
			if !mp.Contains(n) {
				t.Fatalf("neighbour %v escaped midplane", n)
			}
		}
	}
}

func TestTorusNeighborsSymmetric(t *testing.T) {
	m := New(Config{})
	mp := m.Midplanes()[0]
	rng := rand.New(rand.NewPCG(11, 12))
	contains := func(list []raslog.Location, x raslog.Location) bool {
		for _, l := range list {
			if l == x {
				return true
			}
		}
		return false
	}
	for i := 0; i < 50; i++ {
		a := m.RandomChip(rng, mp)
		for _, b := range m.TorusNeighbors(a) {
			if !contains(m.TorusNeighbors(b), a) {
				t.Fatalf("torus adjacency not symmetric: %v <-> %v", a, b)
			}
		}
	}
}

func TestTorusNeighborsTinyMachine(t *testing.T) {
	// A scaled-down machine degenerates to a ring; neighbours must stay
	// distinct and in range.
	m := New(Config{NodeCardsPerMidplane: 2, ChipsPerNodeCard: 4})
	mp := m.Midplanes()[0]
	chip := m.ChipByIndex(mp, 0)
	nbrs := m.TorusNeighbors(chip)
	if len(nbrs) != 2 {
		t.Fatalf("ring neighbours = %d, want 2", len(nbrs))
	}
}

func TestConfigEcho(t *testing.T) {
	m := New(Config{Racks: 2})
	cfg := m.Config()
	if cfg.Racks != 2 || cfg.NodeCardsPerMidplane != 16 || cfg.ChipsPerNodeCard != 32 ||
		cfg.IOChipsPerNodeCard != 1 || cfg.LinkCardsPerMidplane != 4 {
		t.Fatalf("defaulted config = %+v", cfg)
	}
	if m.ComputeNodes() != 2048 {
		t.Fatalf("2-rack ComputeNodes = %d, want 2048", m.ComputeNodes())
	}
}
