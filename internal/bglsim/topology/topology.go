// Package topology models the Blue Gene/L packaging and network
// hierarchy (paper §2.1, Gara et al. [9]): racks of two midplanes,
// midplanes of sixteen node cards plus four link cards and a service
// card, node cards of 32 compute chips and a configurable number of
// I/O chips, and the 8x8x8 torus neighbourhood within a midplane.
package topology

import (
	"fmt"
	"math/rand/v2"

	"bglpred/internal/raslog"
)

// Config sizes a machine. Zero values select a single-rack BG/L like
// the ANL and SDSC systems (1024 compute nodes).
type Config struct {
	// Racks is the rack count; default 1.
	Racks int
	// NodeCardsPerMidplane is fixed at 16 on real hardware; default 16.
	NodeCardsPerMidplane int
	// ChipsPerNodeCard is fixed at 32 on real hardware; default 32.
	ChipsPerNodeCard int
	// IOChipsPerNodeCard distinguishes I/O-poor ANL (1: 32 I/O nodes per
	// rack) from I/O-rich SDSC (4: 128 I/O nodes per rack). Default 1.
	IOChipsPerNodeCard int
	// LinkCardsPerMidplane is fixed at 4 on real hardware; default 4.
	LinkCardsPerMidplane int
}

func (c Config) withDefaults() Config {
	if c.Racks == 0 {
		c.Racks = 1
	}
	if c.NodeCardsPerMidplane == 0 {
		c.NodeCardsPerMidplane = 16
	}
	if c.ChipsPerNodeCard == 0 {
		c.ChipsPerNodeCard = 32
	}
	if c.IOChipsPerNodeCard == 0 {
		c.IOChipsPerNodeCard = 1
	}
	if c.LinkCardsPerMidplane == 0 {
		c.LinkCardsPerMidplane = 4
	}
	return c
}

// Machine is an immutable machine description.
type Machine struct {
	cfg Config
}

// New builds a machine from the config (zero values defaulted).
func New(cfg Config) *Machine {
	return &Machine{cfg: cfg.withDefaults()}
}

// Config returns the effective (defaulted) configuration.
func (m *Machine) Config() Config { return m.cfg }

// Midplanes returns every midplane location in the machine.
func (m *Machine) Midplanes() []raslog.Location {
	out := make([]raslog.Location, 0, m.cfg.Racks*2)
	for r := 0; r < m.cfg.Racks; r++ {
		for mp := 0; mp < 2; mp++ {
			out = append(out, raslog.Location{Kind: raslog.KindMidplane, Rack: r, Midplane: mp})
		}
	}
	return out
}

// ComputeNodes returns the total compute chip count.
func (m *Machine) ComputeNodes() int {
	return m.cfg.Racks * 2 * m.cfg.NodeCardsPerMidplane * m.cfg.ChipsPerNodeCard
}

// IONodes returns the total I/O chip count.
func (m *Machine) IONodes() int {
	return m.cfg.Racks * 2 * m.cfg.NodeCardsPerMidplane * m.cfg.IOChipsPerNodeCard
}

// ChipsPerMidplane returns the compute chips in one midplane (512 on
// real hardware).
func (m *Machine) ChipsPerMidplane() int {
	return m.cfg.NodeCardsPerMidplane * m.cfg.ChipsPerNodeCard
}

// checkMidplane panics when mp is not a midplane of this machine;
// generator bugs should fail loudly.
func (m *Machine) checkMidplane(mp raslog.Location) {
	if mp.Kind != raslog.KindMidplane || mp.Rack < 0 || mp.Rack >= m.cfg.Racks ||
		mp.Midplane < 0 || mp.Midplane > 1 {
		panic(fmt.Sprintf("topology: %v is not a midplane of this machine", mp))
	}
}

// ChipByIndex returns the compute chip with the given index in
// [0, ChipsPerMidplane()) inside midplane mp. Chips are numbered
// card-major: index = card*ChipsPerNodeCard + chip.
func (m *Machine) ChipByIndex(mp raslog.Location, idx int) raslog.Location {
	m.checkMidplane(mp)
	if idx < 0 || idx >= m.ChipsPerMidplane() {
		panic(fmt.Sprintf("topology: chip index %d out of range", idx))
	}
	return raslog.Location{
		Kind:     raslog.KindComputeChip,
		Rack:     mp.Rack,
		Midplane: mp.Midplane,
		Card:     idx / m.cfg.ChipsPerNodeCard,
		Chip:     idx % m.cfg.ChipsPerNodeCard,
	}
}

// ChipIndex is the inverse of ChipByIndex.
func (m *Machine) ChipIndex(chip raslog.Location) int {
	if chip.Kind != raslog.KindComputeChip {
		panic(fmt.Sprintf("topology: %v is not a compute chip", chip))
	}
	return chip.Card*m.cfg.ChipsPerNodeCard + chip.Chip
}

// RandomChip draws a uniform compute chip within midplane mp.
func (m *Machine) RandomChip(rng *rand.Rand, mp raslog.Location) raslog.Location {
	return m.ChipByIndex(mp, rng.IntN(m.ChipsPerMidplane()))
}

// RandomIONode draws a uniform I/O chip within midplane mp.
func (m *Machine) RandomIONode(rng *rand.Rand, mp raslog.Location) raslog.Location {
	m.checkMidplane(mp)
	return raslog.Location{
		Kind:     raslog.KindIONode,
		Rack:     mp.Rack,
		Midplane: mp.Midplane,
		Card:     rng.IntN(m.cfg.NodeCardsPerMidplane),
		Chip:     rng.IntN(m.cfg.IOChipsPerNodeCard),
	}
}

// RandomNodeCard draws a uniform node card within midplane mp.
func (m *Machine) RandomNodeCard(rng *rand.Rand, mp raslog.Location) raslog.Location {
	m.checkMidplane(mp)
	return raslog.Location{
		Kind:     raslog.KindNodeCard,
		Rack:     mp.Rack,
		Midplane: mp.Midplane,
		Card:     rng.IntN(m.cfg.NodeCardsPerMidplane),
	}
}

// RandomLinkCard draws a uniform link card within midplane mp.
func (m *Machine) RandomLinkCard(rng *rand.Rand, mp raslog.Location) raslog.Location {
	m.checkMidplane(mp)
	return raslog.Location{
		Kind:     raslog.KindLinkCard,
		Rack:     mp.Rack,
		Midplane: mp.Midplane,
		Card:     rng.IntN(m.cfg.LinkCardsPerMidplane),
	}
}

// ServiceCard returns midplane mp's service card.
func (m *Machine) ServiceCard(mp raslog.Location) raslog.Location {
	m.checkMidplane(mp)
	return raslog.Location{Kind: raslog.KindServiceCard, Rack: mp.Rack, Midplane: mp.Midplane}
}

// torusDims returns the x/y/z extents of the midplane torus. A full
// 512-chip midplane is 8x8x8; scaled-down test machines get a flat
// x-by-1-by-1 ring.
func (m *Machine) torusDims() (x, y, z int) {
	n := m.ChipsPerMidplane()
	if n >= 512 {
		return 8, 8, n / 64
	}
	return n, 1, 1
}

// TorusNeighbors returns the torus-adjacent compute chips of chip
// (up to six; fewer on degenerate dimensions). The torus wraps, so a
// full midplane always yields six distinct neighbours.
func (m *Machine) TorusNeighbors(chip raslog.Location) []raslog.Location {
	mp := chip.MidplaneOf()
	m.checkMidplane(mp)
	xd, yd, zd := m.torusDims()
	idx := m.ChipIndex(chip)
	x, y, z := idx%xd, (idx/xd)%yd, idx/(xd*yd)

	seen := map[int]bool{idx: true}
	var out []raslog.Location
	add := func(nx, ny, nz int) {
		n := nz*(xd*yd) + ny*xd + nx
		if !seen[n] {
			seen[n] = true
			out = append(out, m.ChipByIndex(mp, n))
		}
	}
	mod := func(v, d int) int { return ((v % d) + d) % d }
	if xd > 1 {
		add(mod(x-1, xd), y, z)
		add(mod(x+1, xd), y, z)
	}
	if yd > 1 {
		add(x, mod(y-1, yd), z)
		add(x, mod(y+1, yd), z)
	}
	if zd > 1 {
		add(x, y, mod(z-1, zd))
		add(x, y, mod(z+1, zd))
	}
	return out
}
