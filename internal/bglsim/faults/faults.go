// Package faults models the failure behaviour of a Blue Gene/L system
// as a set of stochastic episode templates whose structure matches the
// fault patterns the paper's predictor mines:
//
//   - Chain episodes: non-fatal precursor events followed (with a
//     template confidence) by a fatal event — the causal correlations
//     behind the rule-based predictor and paper Figure 3's rules.
//     With probability 1-confidence the chain aborts: precursors appear
//     but no failure follows (the rule predictor's false positives).
//   - Cascade episodes: bursts of fatal events in close temporal
//     proximity, dominated by network and I/O-stream failures — the
//     temporal correlation behind the statistical predictor and the
//     steep head of paper Figure 2's CDF.
//   - Isolated episodes: single fatal events with no precursors — the
//     31-75% of failures the paper reports as unpredictable by rules.
//   - Noise processes: background non-fatal events uncorrelated with
//     failures.
package faults

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"time"

	"bglpred/internal/catalog"
)

// Kind tags a logical event with the episode mechanism that produced
// it — the simulator's ground truth, used for calibration tests.
type Kind int

// Episode kinds.
const (
	KindNoise Kind = iota
	KindChainPrecursor
	KindChainFatal
	KindChainAbortedPrecursor
	KindCascadePrecursor
	KindCascadeFatal
	KindIsolatedFatal
)

var kindNames = [...]string{
	KindNoise:                 "noise",
	KindChainPrecursor:        "chain-precursor",
	KindChainFatal:            "chain-fatal",
	KindChainAbortedPrecursor: "chain-aborted-precursor",
	KindCascadePrecursor:      "cascade-precursor",
	KindCascadeFatal:          "cascade-fatal",
	KindIsolatedFatal:         "isolated-fatal",
}

// String names the kind.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// LogicalEvent is one deduplicated event prior to CMCS duplication:
// what a perfect preprocessor would recover from the raw log.
type LogicalEvent struct {
	Time    time.Time
	Sub     *catalog.Subcategory
	Kind    Kind
	Episode int // episode sequence number; 0 for noise
}

// Delay is a truncated exponential delay distribution.
type Delay struct {
	Min  time.Duration
	Mean time.Duration // mean of the exponential part, added to Min
	Max  time.Duration // 0 means unbounded
}

// Draw samples the delay.
func (d Delay) Draw(rng *rand.Rand) time.Duration {
	v := d.Min
	if d.Mean > 0 {
		v += time.Duration(-math.Log(1-rng.Float64()) * float64(d.Mean))
	}
	if d.Max > 0 && v > d.Max {
		v = d.Max
	}
	return v
}

// Chain is a precursor-chain template (one fault family). Episodes
// arrive as a Poisson process; each instance emits the precursor
// subcategories in order, then, with probability Confidence, the fatal.
type Chain struct {
	// Name identifies the template in ground-truth summaries.
	Name string
	// Precursors are emitted in order, separated by PrecursorGap.
	Precursors []*catalog.Subcategory
	// PrecursorGap separates consecutive precursors.
	PrecursorGap Delay
	// FatalGap separates the last precursor from the fatal event. Its
	// scale is what makes a rule-generation window "best" for a system
	// (15 min at ANL, 25 min at SDSC in the paper).
	FatalGap Delay
	// Fatal is the failure this family culminates in.
	Fatal *catalog.Subcategory
	// Confidence is the completion probability; aborted instances leave
	// precursors with no failure (rule false positives).
	Confidence float64
	// PrecursorDrop is the probability each precursor is independently
	// missing from an instance (imperfect reporting).
	PrecursorDrop float64
	// Episodes is the expected instance count over the full log span.
	Episodes float64

	// BurstMembers, when non-empty, turns a completed chain's fatal
	// into the first member of a failure burst: BurstExtraMean further
	// fatal events (geometric) follow at Gap/GapLong spacing. This
	// models the I/O and network fault families whose failures both
	// have precursors (rule-predictable) and cluster in time
	// (statistically predictable) — the overlap that lets the paper's
	// meta-learner beat both bases at once.
	BurstMembers    []Weighted
	BurstExtraMean  float64
	BurstGap        Delay
	BurstGapLong    Delay
	BurstGapLongPct float64

	// TailMembers, drawn with probability TailProb after the last
	// burst member (TailGap later), model casualties of the storm:
	// typically application failures brought down by the I/O or
	// network trouble. Tails are followed by nothing, so they add
	// statistical-recall coverage without making their category a
	// trigger.
	TailMembers []Weighted
	TailProb    float64
	TailGap     Delay
}

// Weighted pairs a cascade member subcategory with a selection weight.
type Weighted struct {
	Sub    *catalog.Subcategory
	Weight float64
}

// Cascade is a correlated-burst template: a first fatal event followed
// by a geometrically distributed number of further fatal events in
// close succession.
type Cascade struct {
	Name string
	// Members is the weighted mix the burst draws from.
	Members []Weighted
	// ExtraMean is the mean number of events following the first
	// (burst size = 1 + Geometric with this mean).
	ExtraMean float64
	// Gap separates consecutive burst members (the common, short mode:
	// paper Figure 2 shows "a significant number of failures happen in
	// close proximity"). GapLong, drawn with probability GapLongProb,
	// models the slower tail that the standalone statistical predictor
	// harvests in its (5 min, 1 h] window.
	Gap         Delay
	GapLong     Delay
	GapLongProb float64
	// Episodes is the expected burst count over the full log span.
	Episodes float64
	// Precursors, when non-empty, are emitted before the first burst
	// member with probability PrecursorProb — some failure storms do
	// announce themselves, which lets the rule predictor catch a
	// cascade's first member while the statistical predictor catches
	// the rest.
	Precursors    []*catalog.Subcategory
	PrecursorProb float64
	// PrecursorGap separates consecutive precursors; LeadGap separates
	// the last precursor from the first burst member.
	PrecursorGap Delay
	LeadGap      Delay

	// TailMembers/TailProb/TailGap: storm casualties, as on Chain.
	TailMembers []Weighted
	TailProb    float64
	TailGap     Delay
}

// Isolated is a lone-failure template: fatal events with neither
// precursors nor followers.
type Isolated struct {
	Sub      *catalog.Subcategory
	Episodes float64
}

// Noise is a background process of non-fatal events.
type Noise struct {
	Sub *catalog.Subcategory
	// PerDay is the expected unique-event rate per day.
	PerDay float64
}

// Model is the full fault behaviour of one system profile.
type Model struct {
	Chains   []Chain
	Cascades []Cascade
	Isolated []Isolated
	Noise    []Noise

	// ClusterProb is the probability that an episode starts near a
	// previously placed episode instead of uniformly in the span —
	// large systems see instability periods in which unrelated fault
	// families fire together, which is part of the temporal
	// correlation Figure 2 measures.
	ClusterProb float64
	// ClusterGap is the offset of a clustered episode from its
	// anchor's start (default mean 20 minutes).
	ClusterGap Delay
}

// Validate checks template sanity: probabilities in range, fatal heads
// fatal, precursors non-fatal, positive episode counts.
func (m *Model) Validate() error {
	for _, c := range m.Chains {
		if c.Fatal == nil || !c.Fatal.IsFatal() {
			return fmt.Errorf("faults: chain %q: fatal subcategory missing or non-fatal", c.Name)
		}
		if len(c.Precursors) == 0 {
			return fmt.Errorf("faults: chain %q: no precursors", c.Name)
		}
		for _, p := range c.Precursors {
			if p.IsFatal() {
				return fmt.Errorf("faults: chain %q: precursor %s is fatal", c.Name, p.Name)
			}
		}
		if c.Confidence <= 0 || c.Confidence > 1 {
			return fmt.Errorf("faults: chain %q: confidence %v out of (0,1]", c.Name, c.Confidence)
		}
		if c.PrecursorDrop < 0 || c.PrecursorDrop >= 1 {
			return fmt.Errorf("faults: chain %q: precursor drop %v out of [0,1)", c.Name, c.PrecursorDrop)
		}
		if c.Episodes <= 0 {
			return fmt.Errorf("faults: chain %q: nonpositive episodes", c.Name)
		}
		for _, w := range c.BurstMembers {
			if !w.Sub.IsFatal() {
				return fmt.Errorf("faults: chain %q: burst member %s not fatal", c.Name, w.Sub.Name)
			}
			if w.Weight <= 0 {
				return fmt.Errorf("faults: chain %q: nonpositive weight for burst member %s", c.Name, w.Sub.Name)
			}
		}
		for _, w := range c.TailMembers {
			if !w.Sub.IsFatal() {
				return fmt.Errorf("faults: chain %q: tail member %s not fatal", c.Name, w.Sub.Name)
			}
		}
		if c.TailProb < 0 || c.TailProb > 1 {
			return fmt.Errorf("faults: chain %q: tail probability %v out of [0,1]", c.Name, c.TailProb)
		}
	}
	for _, c := range m.Cascades {
		if len(c.Members) == 0 {
			return fmt.Errorf("faults: cascade %q: no members", c.Name)
		}
		for _, w := range c.Members {
			if !w.Sub.IsFatal() {
				return fmt.Errorf("faults: cascade %q: member %s not fatal", c.Name, w.Sub.Name)
			}
			if w.Weight <= 0 {
				return fmt.Errorf("faults: cascade %q: nonpositive weight for %s", c.Name, w.Sub.Name)
			}
		}
		if c.Episodes <= 0 {
			return fmt.Errorf("faults: cascade %q: nonpositive episodes", c.Name)
		}
		for _, p := range c.Precursors {
			if p.IsFatal() {
				return fmt.Errorf("faults: cascade %q: precursor %s is fatal", c.Name, p.Name)
			}
		}
		if c.PrecursorProb < 0 || c.PrecursorProb > 1 {
			return fmt.Errorf("faults: cascade %q: precursor probability %v out of [0,1]", c.Name, c.PrecursorProb)
		}
		for _, w := range c.TailMembers {
			if !w.Sub.IsFatal() {
				return fmt.Errorf("faults: cascade %q: tail member %s not fatal", c.Name, w.Sub.Name)
			}
		}
		if c.TailProb < 0 || c.TailProb > 1 {
			return fmt.Errorf("faults: cascade %q: tail probability %v out of [0,1]", c.Name, c.TailProb)
		}
	}
	for _, i := range m.Isolated {
		if !i.Sub.IsFatal() {
			return fmt.Errorf("faults: isolated %s not fatal", i.Sub.Name)
		}
	}
	for _, n := range m.Noise {
		if n.Sub.IsFatal() {
			return fmt.Errorf("faults: noise %s is fatal", n.Sub.Name)
		}
		if n.PerDay < 0 {
			return fmt.Errorf("faults: noise %s: negative rate", n.Sub.Name)
		}
	}
	return nil
}

// ExpectedFatals returns the expected fatal-event count per main
// category over the full span — the calibration target of paper
// Table 4.
func (m *Model) ExpectedFatals() map[catalog.Main]float64 {
	out := make(map[catalog.Main]float64)
	addWeighted := func(members []Weighted, expected float64) {
		var totalW float64
		for _, w := range members {
			totalW += w.Weight
		}
		if totalW == 0 {
			return
		}
		for _, w := range members {
			out[w.Sub.Main] += expected * w.Weight / totalW
		}
	}
	for _, c := range m.Chains {
		out[c.Fatal.Main] += c.Episodes * c.Confidence
		if len(c.BurstMembers) > 0 && c.BurstExtraMean > 0 {
			addWeighted(c.BurstMembers, c.Episodes*c.Confidence*c.BurstExtraMean)
		}
		addWeighted(c.TailMembers, c.Episodes*c.Confidence*c.TailProb)
	}
	for _, c := range m.Cascades {
		addWeighted(c.Members, c.Episodes*(1+c.ExtraMean))
		addWeighted(c.TailMembers, c.Episodes*c.TailProb)
	}
	for _, i := range m.Isolated {
		out[i.Sub.Main] += i.Episodes
	}
	return out
}

// Synthesize draws one realization of the model over [start, end),
// scaling episode counts by the span relative to fullSpan (so a
// shortened log keeps the same event *rates*). Events are returned in
// time order.
func (m *Model) Synthesize(rng *rand.Rand, start, end time.Time, fullSpan time.Duration) []LogicalEvent {
	span := end.Sub(start)
	if span <= 0 {
		return nil
	}
	scale := float64(span) / float64(fullSpan)
	var out []LogicalEvent
	episode := 0

	clusterGap := m.ClusterGap
	if clusterGap.Mean == 0 && clusterGap.Min == 0 {
		clusterGap = Delay{Min: time.Minute, Mean: 20 * time.Minute, Max: 2 * time.Hour}
	}
	// Episode start placement: uniform, or — with ClusterProb — near a
	// previously placed episode, modelling instability periods.
	var anchors []time.Time
	place := func() time.Time {
		if len(anchors) > 0 && rng.Float64() < m.ClusterProb {
			at := anchors[rng.IntN(len(anchors))].Add(clusterGap.Draw(rng))
			if at.Before(end) {
				anchors = append(anchors, at)
				return at
			}
		}
		at := start.Add(time.Duration(rng.Float64() * float64(span)))
		anchors = append(anchors, at)
		return at
	}

	for _, c := range m.Chains {
		n := poisson(rng, c.Episodes*scale)
		for i := 0; i < n; i++ {
			episode++
			out = append(out, synthChain(rng, &c, place(), episode)...)
		}
	}
	for _, c := range m.Cascades {
		n := poisson(rng, c.Episodes*scale)
		for i := 0; i < n; i++ {
			episode++
			out = append(out, synthCascade(rng, &c, place(), episode)...)
		}
	}
	for _, iso := range m.Isolated {
		n := poisson(rng, iso.Episodes*scale)
		for i := 0; i < n; i++ {
			episode++
			out = append(out, LogicalEvent{Time: place(), Sub: iso.Sub, Kind: KindIsolatedFatal, Episode: episode})
		}
	}
	days := span.Hours() / 24
	for _, nz := range m.Noise {
		n := poisson(rng, nz.PerDay*days)
		for i := 0; i < n; i++ {
			at := start.Add(time.Duration(rng.Float64() * float64(span)))
			out = append(out, LogicalEvent{Time: at, Sub: nz.Sub, Kind: KindNoise})
		}
	}

	sort.Slice(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out
}

func synthChain(rng *rand.Rand, c *Chain, at time.Time, episode int) []LogicalEvent {
	completes := rng.Float64() < c.Confidence
	pKind := KindChainPrecursor
	if !completes {
		pKind = KindChainAbortedPrecursor
	}
	var out []LogicalEvent
	t := at
	for i, p := range c.Precursors {
		if i > 0 {
			t = t.Add(c.PrecursorGap.Draw(rng))
		}
		if rng.Float64() < c.PrecursorDrop {
			continue
		}
		out = append(out, LogicalEvent{Time: t, Sub: p, Kind: pKind, Episode: episode})
	}
	// A chain instance that dropped every precursor and aborted emits
	// nothing; one that completes always emits its fatal.
	if !completes {
		return out
	}
	t = t.Add(c.FatalGap.Draw(rng))
	out = append(out, LogicalEvent{Time: t, Sub: c.Fatal, Kind: KindChainFatal, Episode: episode})

	if len(c.BurstMembers) > 0 && c.BurstExtraMean > 0 {
		extra := geometric(rng, c.BurstExtraMean)
		var totalW float64
		for _, w := range c.BurstMembers {
			totalW += w.Weight
		}
		prev := c.Fatal
		for i := 0; i < extra; i++ {
			gap := c.BurstGap
			if c.BurstGapLongPct > 0 && rng.Float64() < c.BurstGapLongPct {
				gap = c.BurstGapLong
			}
			t = t.Add(gap.Draw(rng))
			sub := pickWeighted(rng, c.BurstMembers, totalW)
			for len(c.BurstMembers) > 1 && sub == prev {
				sub = pickWeighted(rng, c.BurstMembers, totalW)
			}
			prev = sub
			out = append(out, LogicalEvent{Time: t, Sub: sub, Kind: KindCascadeFatal, Episode: episode})
		}
	}
	return appendTail(rng, out, t, c.TailMembers, c.TailProb, c.TailGap, episode)
}

// appendTail emits a storm-casualty event with probability prob.
func appendTail(rng *rand.Rand, out []LogicalEvent, last time.Time, members []Weighted, prob float64, gap Delay, episode int) []LogicalEvent {
	if len(members) == 0 || rng.Float64() >= prob {
		return out
	}
	var totalW float64
	for _, w := range members {
		totalW += w.Weight
	}
	return append(out, LogicalEvent{
		Time:    last.Add(gap.Draw(rng)),
		Sub:     pickWeighted(rng, members, totalW),
		Kind:    KindCascadeFatal,
		Episode: episode,
	})
}

func pickWeighted(rng *rand.Rand, members []Weighted, totalW float64) *catalog.Subcategory {
	x := rng.Float64() * totalW
	for _, w := range members {
		x -= w.Weight
		if x < 0 {
			return w.Sub
		}
	}
	return members[len(members)-1].Sub
}

func synthCascade(rng *rand.Rand, c *Cascade, at time.Time, episode int) []LogicalEvent {
	size := 1 + geometric(rng, c.ExtraMean)
	var totalW float64
	for _, w := range c.Members {
		totalW += w.Weight
	}
	pick := func() *catalog.Subcategory { return pickWeighted(rng, c.Members, totalW) }
	out := make([]LogicalEvent, 0, size+len(c.Precursors))
	t := at
	if len(c.Precursors) > 0 && rng.Float64() < c.PrecursorProb {
		for i, p := range c.Precursors {
			if i > 0 {
				t = t.Add(c.PrecursorGap.Draw(rng))
			}
			out = append(out, LogicalEvent{Time: t, Sub: p, Kind: KindCascadePrecursor, Episode: episode})
		}
		t = t.Add(c.LeadGap.Draw(rng))
	}
	var prev *catalog.Subcategory
	for i := 0; i < size; i++ {
		if i > 0 {
			gap := c.Gap
			if c.GapLongProb > 0 && rng.Float64() < c.GapLongProb {
				gap = c.GapLong
			}
			t = t.Add(gap.Draw(rng))
		}
		sub := pick()
		// Avoid immediate same-subcategory repeats: short burst gaps
		// would otherwise fall to Phase 1's temporal compression and
		// vanish from the compressed log.
		for len(c.Members) > 1 && sub == prev {
			sub = pick()
		}
		prev = sub
		out = append(out, LogicalEvent{Time: t, Sub: sub, Kind: KindCascadeFatal, Episode: episode})
	}
	return appendTail(rng, out, t, c.TailMembers, c.TailProb, c.TailGap, episode)
}

// poisson draws a Poisson variate with the given mean, using inversion
// for small means and a normal approximation for large ones.
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 500 {
		v := int(math.Round(mean + math.Sqrt(mean)*rng.NormFloat64()))
		if v < 0 {
			v = 0
		}
		return v
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// geometric draws a geometric variate (support 0,1,2,...) with the
// given mean.
func geometric(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	p := 1 / (1 + mean) // success probability; mean = (1-p)/p
	n := 0
	for rng.Float64() >= p {
		n++
		if n > 10000 {
			return n
		}
	}
	return n
}

// SummarizeKinds tallies logical events by kind — ground truth for
// calibration tests.
func SummarizeKinds(events []LogicalEvent) map[Kind]int {
	out := make(map[Kind]int)
	for _, e := range events {
		out[e.Kind]++
	}
	return out
}

// FatalByMain tallies fatal logical events by main category — the
// simulator-side Table 4.
func FatalByMain(events []LogicalEvent) map[catalog.Main]int {
	out := make(map[catalog.Main]int)
	for _, e := range events {
		if e.Sub.IsFatal() {
			out[e.Sub.Main]++
		}
	}
	return out
}
