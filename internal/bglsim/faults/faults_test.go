package faults

import (
	"math"
	"math/rand/v2"
	"testing"
	"time"

	"bglpred/internal/catalog"
)

var (
	t0       = time.Date(2005, 1, 21, 0, 0, 0, 0, time.UTC)
	fullSpan = 100 * 24 * time.Hour
)

func sub(name string) *catalog.Subcategory { return catalog.MustByName(name) }

func testChain() Chain {
	return Chain{
		Name:         "test",
		Precursors:   []*catalog.Subcategory{sub("coredumpCreated")},
		PrecursorGap: Delay{Mean: time.Minute},
		FatalGap:     Delay{Min: time.Minute, Mean: 5 * time.Minute, Max: 30 * time.Minute},
		Fatal:        sub("loadProgramFailure"),
		Confidence:   0.6,
		Episodes:     200,
	}
}

func testCascade() Cascade {
	return Cascade{
		Name: "test-storm",
		Members: []Weighted{
			{Sub: sub("socketReadFailure"), Weight: 2},
			{Sub: sub("torusFailure"), Weight: 1},
		},
		ExtraMean: 2,
		Gap:       Delay{Min: 330 * time.Second, Mean: 7 * time.Minute, Max: 50 * time.Minute},
		Episodes:  100,
	}
}

func testModel() Model {
	return Model{
		Chains:   []Chain{testChain()},
		Cascades: []Cascade{testCascade()},
		Isolated: []Isolated{{Sub: sub("kernelPanicFailure"), Episodes: 50}},
		Noise:    []Noise{{Sub: sub("scrubCycleInfo"), PerDay: 10}},
	}
}

func TestValidateAcceptsGoodModel(t *testing.T) {
	m := testModel()
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	cases := map[string]func(*Model){
		"nonfatal chain head": func(m *Model) { m.Chains[0].Fatal = sub("scrubCycleInfo") },
		"nil chain head":      func(m *Model) { m.Chains[0].Fatal = nil },
		"fatal precursor":     func(m *Model) { m.Chains[0].Precursors[0] = sub("torusFailure") },
		"no precursors":       func(m *Model) { m.Chains[0].Precursors = nil },
		"confidence 0":        func(m *Model) { m.Chains[0].Confidence = 0 },
		"confidence > 1":      func(m *Model) { m.Chains[0].Confidence = 1.1 },
		"bad drop":            func(m *Model) { m.Chains[0].PrecursorDrop = 1 },
		"no chain episodes":   func(m *Model) { m.Chains[0].Episodes = 0 },
		"no cascade members":  func(m *Model) { m.Cascades[0].Members = nil },
		"nonfatal member":     func(m *Model) { m.Cascades[0].Members[0].Sub = sub("maskInfo") },
		"zero weight":         func(m *Model) { m.Cascades[0].Members[0].Weight = 0 },
		"no cascade episodes": func(m *Model) { m.Cascades[0].Episodes = 0 },
		"fatal cascade pre":   func(m *Model) { m.Cascades[0].Precursors = []*catalog.Subcategory{sub("torusFailure")} },
		"bad precursor prob":  func(m *Model) { m.Cascades[0].PrecursorProb = -0.1 },
		"nonfatal isolated":   func(m *Model) { m.Isolated[0].Sub = sub("maskInfo") },
		"fatal noise":         func(m *Model) { m.Noise[0].Sub = sub("torusFailure") },
		"negative noise":      func(m *Model) { m.Noise[0].PerDay = -1 },
	}
	for name, mutate := range cases {
		m := testModel()
		mutate(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate passed, want error", name)
		}
	}
}

func TestSynthesizeSorted(t *testing.T) {
	m := testModel()
	rng := rand.New(rand.NewPCG(1, 1))
	events := m.Synthesize(rng, t0, t0.Add(fullSpan), fullSpan)
	for i := 1; i < len(events); i++ {
		if events[i].Time.Before(events[i-1].Time) {
			t.Fatalf("events not sorted at %d", i)
		}
	}
	if len(events) == 0 {
		t.Fatal("no events synthesized")
	}
}

func TestSynthesizeCountsNearExpectation(t *testing.T) {
	m := testModel()
	rng := rand.New(rand.NewPCG(2, 2))
	events := m.Synthesize(rng, t0, t0.Add(fullSpan), fullSpan)
	kinds := SummarizeKinds(events)

	// Chain fatals: 200 episodes x 0.6 confidence = 120 expected.
	assertNear(t, "chain fatals", kinds[KindChainFatal], 120, 0.35)
	// Cascade fatals: 100 episodes x mean size 3 = 300 expected.
	assertNear(t, "cascade fatals", kinds[KindCascadeFatal], 300, 0.35)
	// Isolated: 50 expected.
	assertNear(t, "isolated", kinds[KindIsolatedFatal], 50, 0.5)
	// Noise: 10/day x 100 days = 1000 expected.
	assertNear(t, "noise", kinds[KindNoise], 1000, 0.2)
}

func assertNear(t *testing.T, what string, got, want int, tol float64) {
	t.Helper()
	if math.Abs(float64(got-want)) > tol*float64(want) {
		t.Errorf("%s = %d, want within %.0f%% of %d", what, got, tol*100, want)
	}
}

func TestSynthesizeScaling(t *testing.T) {
	// Half the span must halve expected counts (rates constant).
	m := testModel()
	rng := rand.New(rand.NewPCG(3, 3))
	half := m.Synthesize(rng, t0, t0.Add(fullSpan/2), fullSpan)
	kinds := SummarizeKinds(half)
	assertNear(t, "half-span chain fatals", kinds[KindChainFatal], 60, 0.5)
	assertNear(t, "half-span noise", kinds[KindNoise], 500, 0.3)
}

func TestSynthesizeEmptySpan(t *testing.T) {
	m := testModel()
	rng := rand.New(rand.NewPCG(4, 4))
	if got := m.Synthesize(rng, t0, t0, fullSpan); len(got) != 0 {
		t.Fatalf("empty span produced %d events", len(got))
	}
}

func TestChainStructure(t *testing.T) {
	// Within one completed chain episode, precursors precede the fatal.
	m := Model{Chains: []Chain{testChain()}}
	rng := rand.New(rand.NewPCG(5, 5))
	events := m.Synthesize(rng, t0, t0.Add(fullSpan), fullSpan)
	byEpisode := map[int][]LogicalEvent{}
	for _, e := range events {
		byEpisode[e.Episode] = append(byEpisode[e.Episode], e)
	}
	completed, aborted := 0, 0
	for ep, evs := range byEpisode {
		var fatalAt time.Time
		hasFatal := false
		for _, e := range evs {
			if e.Kind == KindChainFatal {
				hasFatal = true
				fatalAt = e.Time
			}
		}
		if hasFatal {
			completed++
			for _, e := range evs {
				if e.Kind == KindChainPrecursor && e.Time.After(fatalAt) {
					t.Fatalf("episode %d: precursor after fatal", ep)
				}
			}
		} else {
			aborted++
			for _, e := range evs {
				if e.Kind != KindChainAbortedPrecursor {
					t.Fatalf("episode %d: fatal-less episode has kind %v", ep, e.Kind)
				}
			}
		}
	}
	if completed == 0 || aborted == 0 {
		t.Fatalf("completed=%d aborted=%d; want both > 0 at confidence 0.6", completed, aborted)
	}
	ratio := float64(completed) / float64(completed+aborted)
	if ratio < 0.45 || ratio > 0.75 {
		t.Fatalf("completion ratio %v far from confidence 0.6", ratio)
	}
}

func TestCascadeGapRespectsMinimum(t *testing.T) {
	m := Model{Cascades: []Cascade{testCascade()}}
	rng := rand.New(rand.NewPCG(6, 6))
	events := m.Synthesize(rng, t0, t0.Add(fullSpan), fullSpan)
	byEpisode := map[int][]LogicalEvent{}
	for _, e := range events {
		byEpisode[e.Episode] = append(byEpisode[e.Episode], e)
	}
	for ep, evs := range byEpisode {
		for i := 1; i < len(evs); i++ {
			gap := evs[i].Time.Sub(evs[i-1].Time)
			if gap < 330*time.Second {
				t.Fatalf("episode %d: cascade gap %v below configured min", ep, gap)
			}
			if gap > 50*time.Minute {
				t.Fatalf("episode %d: cascade gap %v above configured max", ep, gap)
			}
		}
	}
}

func TestCascadePrecursorsEmitted(t *testing.T) {
	c := testCascade()
	c.Precursors = []*catalog.Subcategory{sub("midplaneServiceWarning")}
	c.PrecursorProb = 0.5
	c.LeadGap = Delay{Min: time.Minute, Mean: 5 * time.Minute}
	m := Model{Cascades: []Cascade{c}}
	rng := rand.New(rand.NewPCG(7, 7))
	events := m.Synthesize(rng, t0, t0.Add(fullSpan), fullSpan)
	kinds := SummarizeKinds(events)
	if kinds[KindCascadePrecursor] == 0 {
		t.Fatal("no cascade precursors emitted at probability 0.5")
	}
	// Roughly half the ~100 episodes should carry the one precursor.
	assertNear(t, "cascade precursors", kinds[KindCascadePrecursor], 50, 0.5)
}

func TestExpectedFatals(t *testing.T) {
	m := testModel()
	exp := m.ExpectedFatals()
	// Chain: 200 x 0.6 = 120 Application fatals.
	if got := exp[catalog.Application]; math.Abs(got-120) > 1e-9 {
		t.Errorf("Application expected = %v, want 120", got)
	}
	// Cascade: 100 episodes x 3 members; 2/3 iostream, 1/3 network.
	if got := exp[catalog.Iostream]; math.Abs(got-200) > 1e-9 {
		t.Errorf("Iostream expected = %v, want 200", got)
	}
	if got := exp[catalog.Network]; math.Abs(got-100) > 1e-9 {
		t.Errorf("Network expected = %v, want 100", got)
	}
	// Isolated kernel panic: 50.
	if got := exp[catalog.Kernel]; math.Abs(got-50) > 1e-9 {
		t.Errorf("Kernel expected = %v, want 50", got)
	}
}

func TestDelayDraw(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	d := Delay{Min: time.Minute, Mean: 2 * time.Minute, Max: 5 * time.Minute}
	var sum time.Duration
	for i := 0; i < 5000; i++ {
		v := d.Draw(rng)
		if v < time.Minute || v > 5*time.Minute {
			t.Fatalf("Draw = %v outside [1m, 5m]", v)
		}
		sum += v
	}
	mean := sum / 5000
	// Truncation pulls the mean below Min+Mean = 3m; it must still be
	// well above Min.
	if mean < 90*time.Second || mean > 3*time.Minute {
		t.Fatalf("mean draw %v implausible", mean)
	}
	zero := Delay{}
	if zero.Draw(rng) != 0 {
		t.Fatal("zero delay should draw 0")
	}
}

func TestPoissonMoments(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	for _, mean := range []float64{0.5, 4, 40, 800} {
		n := 20000
		sum := 0
		for i := 0; i < n; i++ {
			sum += poisson(rng, mean)
		}
		got := float64(sum) / float64(n)
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Errorf("poisson(%v) sample mean %v", mean, got)
		}
	}
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Error("nonpositive mean should give 0")
	}
}

func TestGeometricMoments(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 10))
	for _, mean := range []float64{0.5, 2, 10} {
		n := 20000
		sum := 0
		for i := 0; i < n; i++ {
			sum += geometric(rng, mean)
		}
		got := float64(sum) / float64(n)
		if math.Abs(got-mean) > 0.08*mean+0.05 {
			t.Errorf("geometric(%v) sample mean %v", mean, got)
		}
	}
	if geometric(rng, 0) != 0 {
		t.Error("zero mean should give 0")
	}
}

func TestKindString(t *testing.T) {
	if KindChainFatal.String() != "chain-fatal" || Kind(99).String() != "Kind(99)" {
		t.Error("Kind.String misbehaves")
	}
}

func TestFatalByMain(t *testing.T) {
	events := []LogicalEvent{
		{Sub: sub("torusFailure"), Kind: KindCascadeFatal},
		{Sub: sub("socketReadFailure"), Kind: KindCascadeFatal},
		{Sub: sub("scrubCycleInfo"), Kind: KindNoise},
	}
	got := FatalByMain(events)
	if got[catalog.Network] != 1 || got[catalog.Iostream] != 1 || len(got) != 2 {
		t.Fatalf("FatalByMain = %v", got)
	}
}
