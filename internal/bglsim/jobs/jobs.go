// Package jobs simulates the Blue Gene/L workload: a stream of
// scientific-computing jobs scheduled onto midplane partitions. RAS
// records carry the JOB ID of the job that detected the event
// (paper Table 2), and the CMCS duplication the preprocessor must undo
// comes from every chip of a job's partition reporting the same fault,
// so the generator needs to know which job occupies which midplane at
// any instant.
package jobs

import (
	"math"
	"math/rand/v2"
	"sort"
	"time"

	"bglpred/internal/bglsim/topology"
	"bglpred/internal/raslog"
)

// Job is one scheduled job occupying a single midplane partition for
// [Start, End).
type Job struct {
	ID       int64
	Start    time.Time
	End      time.Time
	Midplane raslog.Location
}

// Duration returns the job's runtime.
func (j *Job) Duration() time.Duration { return j.End.Sub(j.Start) }

// Config shapes the synthetic workload. Zero values select defaults
// typical of capability systems: multi-hour jobs with short drain gaps
// between them.
type Config struct {
	// MeanDuration is the mean job runtime; default 4h.
	MeanDuration time.Duration
	// MinDuration floors job runtimes; default 10min.
	MinDuration time.Duration
	// MeanGap is the mean idle gap between consecutive jobs on one
	// midplane; default 20min.
	MeanGap time.Duration
}

func (c Config) withDefaults() Config {
	if c.MeanDuration == 0 {
		c.MeanDuration = 4 * time.Hour
	}
	if c.MinDuration == 0 {
		c.MinDuration = 10 * time.Minute
	}
	if c.MeanGap == 0 {
		c.MeanGap = 20 * time.Minute
	}
	return c
}

// Schedule is the complete simulated job history, queryable by
// (time, midplane).
type Schedule struct {
	jobs       []Job
	byMidplane map[raslog.Location][]int // job indices sorted by start
}

// Simulate fills the span [start, end) with back-to-back jobs on every
// midplane of the machine. Each midplane runs an independent renewal
// process: exponential idle gap, then a job with exponential runtime
// (floored at MinDuration).
func Simulate(rng *rand.Rand, m *topology.Machine, start, end time.Time, cfg Config) *Schedule {
	cfg = cfg.withDefaults()
	s := &Schedule{byMidplane: make(map[raslog.Location][]int)}
	var nextID int64 = 1000 // arbitrary base so job IDs look realistic
	for _, mp := range m.Midplanes() {
		t := start
		for t.Before(end) {
			gap := expDuration(rng, cfg.MeanGap)
			runStart := t.Add(gap)
			if !runStart.Before(end) {
				break
			}
			dur := expDuration(rng, cfg.MeanDuration)
			if dur < cfg.MinDuration {
				dur = cfg.MinDuration
			}
			runEnd := runStart.Add(dur)
			if runEnd.After(end) {
				runEnd = end
			}
			s.byMidplane[mp] = append(s.byMidplane[mp], len(s.jobs))
			s.jobs = append(s.jobs, Job{ID: nextID, Start: runStart, End: runEnd, Midplane: mp})
			nextID++
			t = runEnd
		}
	}
	return s
}

// expDuration draws an exponential duration with the given mean.
func expDuration(rng *rand.Rand, mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	return time.Duration(-math.Log(1-rng.Float64()) * float64(mean))
}

// Jobs returns all jobs in scheduling order. The slice is shared;
// callers must not mutate it.
func (s *Schedule) Jobs() []Job { return s.jobs }

// JobAt returns the job running on midplane mp at time t, if any.
func (s *Schedule) JobAt(t time.Time, mp raslog.Location) (*Job, bool) {
	idxs := s.byMidplane[mp]
	// Last job starting at or before t.
	i := sort.Search(len(idxs), func(i int) bool {
		return s.jobs[idxs[i]].Start.After(t)
	}) - 1
	if i < 0 {
		return nil, false
	}
	j := &s.jobs[idxs[i]]
	if t.Before(j.End) {
		return j, true
	}
	return nil, false
}

// Utilization returns the fraction of midplane-time occupied by jobs
// over [start, end).
func (s *Schedule) Utilization(start, end time.Time) float64 {
	if !end.After(start) || len(s.byMidplane) == 0 {
		return 0
	}
	var busy time.Duration
	for _, j := range s.jobs {
		b, e := j.Start, j.End
		if b.Before(start) {
			b = start
		}
		if e.After(end) {
			e = end
		}
		if e.After(b) {
			busy += e.Sub(b)
		}
	}
	total := end.Sub(start) * time.Duration(len(s.byMidplane))
	return float64(busy) / float64(total)
}
