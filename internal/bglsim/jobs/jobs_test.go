package jobs

import (
	"math/rand/v2"
	"testing"
	"time"

	"bglpred/internal/bglsim/topology"
)

var (
	t0 = time.Date(2005, 1, 21, 0, 0, 0, 0, time.UTC)
	t1 = t0.Add(30 * 24 * time.Hour)
)

func simulate(t *testing.T, cfg Config) *Schedule {
	t.Helper()
	rng := rand.New(rand.NewPCG(1, 2))
	return Simulate(rng, topology.New(topology.Config{}), t0, t1, cfg)
}

func TestSimulateProducesJobs(t *testing.T) {
	s := simulate(t, Config{})
	if len(s.Jobs()) == 0 {
		t.Fatal("no jobs simulated")
	}
	// A month at ~4h mean runtime across 2 midplanes should produce on
	// the order of a hundred-plus jobs.
	if n := len(s.Jobs()); n < 50 || n > 1000 {
		t.Fatalf("job count %d implausible for 30 days x 2 midplanes", n)
	}
}

func TestJobsWellFormed(t *testing.T) {
	s := simulate(t, Config{})
	seen := map[int64]bool{}
	for i := range s.Jobs() {
		j := &s.Jobs()[i]
		if seen[j.ID] {
			t.Fatalf("duplicate job id %d", j.ID)
		}
		seen[j.ID] = true
		if !j.End.After(j.Start) {
			t.Fatalf("job %d has non-positive duration", j.ID)
		}
		if j.Start.Before(t0) || j.End.After(t1) {
			t.Fatalf("job %d [%v, %v] escapes span", j.ID, j.Start, j.End)
		}
		if j.Duration() != j.End.Sub(j.Start) {
			t.Fatalf("Duration inconsistent")
		}
	}
}

func TestJobsDoNotOverlapPerMidplane(t *testing.T) {
	s := simulate(t, Config{})
	last := map[string]time.Time{}
	for i := range s.Jobs() {
		j := &s.Jobs()[i]
		key := j.Midplane.String()
		if prev, ok := last[key]; ok && j.Start.Before(prev) {
			t.Fatalf("job %d on %s overlaps previous job", j.ID, key)
		}
		last[key] = j.End
	}
}

func TestJobAt(t *testing.T) {
	s := simulate(t, Config{})
	jobs := s.Jobs()
	j := &jobs[len(jobs)/2]
	mid := j.Start.Add(j.Duration() / 2)

	got, ok := s.JobAt(mid, j.Midplane)
	if !ok || got.ID != j.ID {
		t.Fatalf("JobAt(mid) = %v, %v; want job %d", got, ok, j.ID)
	}
	// Exactly at start: running. Exactly at end: not running.
	if got, ok := s.JobAt(j.Start, j.Midplane); !ok || got.ID != j.ID {
		t.Fatalf("JobAt(start) = %v, %v", got, ok)
	}
	if got, ok := s.JobAt(j.End, j.Midplane); ok && got.ID == j.ID {
		t.Fatalf("JobAt(end) returned the ended job")
	}
	// Before everything: nothing.
	if _, ok := s.JobAt(t0.Add(-time.Hour), j.Midplane); ok {
		t.Fatal("JobAt before span returned a job")
	}
	// Unknown midplane: nothing.
	if _, ok := s.JobAt(mid, topology.New(topology.Config{Racks: 2}).Midplanes()[3]); ok {
		t.Fatal("JobAt on foreign midplane returned a job")
	}
}

func TestJobAtConsistentWithIntervals(t *testing.T) {
	s := simulate(t, Config{})
	rng := rand.New(rand.NewPCG(5, 6))
	m := topology.New(topology.Config{})
	for i := 0; i < 500; i++ {
		at := t0.Add(time.Duration(rng.Int64N(int64(t1.Sub(t0)))))
		mp := m.Midplanes()[rng.IntN(2)]
		got, ok := s.JobAt(at, mp)
		// Brute-force check.
		var want *Job
		for k := range s.Jobs() {
			j := &s.Jobs()[k]
			if j.Midplane == mp && !at.Before(j.Start) && at.Before(j.End) {
				want = j
				break
			}
		}
		switch {
		case want == nil && ok:
			t.Fatalf("JobAt(%v, %v) = job %d, want none", at, mp, got.ID)
		case want != nil && !ok:
			t.Fatalf("JobAt(%v, %v) = none, want job %d", at, mp, want.ID)
		case want != nil && got.ID != want.ID:
			t.Fatalf("JobAt(%v, %v) = job %d, want %d", at, mp, got.ID, want.ID)
		}
	}
}

func TestUtilizationHigh(t *testing.T) {
	s := simulate(t, Config{})
	u := s.Utilization(t0, t1)
	// Mean gap 20 min vs mean runtime 4 h: utilization should be high
	// but not 1.
	if u < 0.75 || u >= 1 {
		t.Fatalf("utilization = %v, want in [0.75, 1)", u)
	}
}

func TestUtilizationDegenerate(t *testing.T) {
	s := simulate(t, Config{})
	if got := s.Utilization(t1, t0); got != 0 {
		t.Fatalf("inverted span utilization = %v", got)
	}
	rng := rand.New(rand.NewPCG(1, 1))
	s2 := Simulate(rng, topology.New(topology.Config{}), t0, t0, Config{})
	if got := s2.Utilization(t0, t1); got != 0 {
		t.Fatalf("empty schedule utilization = %v", got)
	}
}

func TestConfigDefaultsRespectOverrides(t *testing.T) {
	cfg := Config{MeanDuration: time.Hour, MinDuration: time.Minute, MeanGap: time.Hour}
	s := simulate(t, cfg)
	var total time.Duration
	for i := range s.Jobs() {
		j := &s.Jobs()[i]
		if j.Duration() < time.Minute {
			// Jobs clipped at span end may be shorter; allow those.
			if j.End.Before(t1) {
				t.Fatalf("job %d shorter than MinDuration", j.ID)
			}
		}
		total += j.Duration()
	}
	mean := total / time.Duration(len(s.Jobs()))
	if mean < 30*time.Minute || mean > 2*time.Hour {
		t.Fatalf("mean duration %v far from configured 1h", mean)
	}
}
