package bglsim

import (
	"time"

	"bglpred/internal/bglsim/faults"
	"bglpred/internal/bglsim/jobs"
	"bglpred/internal/bglsim/topology"
	"bglpred/internal/catalog"
)

// The two calibrated profiles correspond to paper Table 1:
//
//	            ANL          SDSC
//	Start       1/21/2005    12/6/2004
//	End         4/28/2006    2/21/2006
//	Records     4,172,359    428,953
//	I/O nodes   32           128
//
// and the fault models are dialled to the compressed fatal counts of
// paper Table 4 (ANL 2823, SDSC 2182 across eight categories). The
// chain templates instantiate the rule families of paper Figure 3;
// chain completion confidences sit in the 0.65-0.97 band so measured
// rule precision lands in the paper's 0.7-0.9 range; cascade bursts
// carry the short-gap temporal correlation of paper Figure 2.

func s(name string) *catalog.Subcategory { return catalog.MustByName(name) }

// chainGaps bundles the per-system timing of precursor chains; the
// fatal gap scale is what makes a 15-minute rule-generation window
// best at ANL and a 25-minute one best at SDSC.
type chainGaps struct {
	precursor faults.Delay
	fatal     faults.Delay
}

var (
	anlGaps = chainGaps{
		precursor: faults.Delay{Min: 20 * time.Second, Mean: 210 * time.Second, Max: 8 * time.Minute},
		fatal:     faults.Delay{Min: 90 * time.Second, Mean: 6 * time.Minute, Max: 40 * time.Minute},
	}
	sdscGaps = chainGaps{
		precursor: faults.Delay{Min: 30 * time.Second, Mean: 6 * time.Minute, Max: 14 * time.Minute},
		fatal:     faults.Delay{Min: 3 * time.Minute, Mean: 11 * time.Minute, Max: 50 * time.Minute},
	}
)

// chainTemplates instantiates the shared chain families with
// per-system confidences and episode counts. Figure-3 families come
// first; the remainder give every Table 4 category some rule-coverable
// failures.
func chainTemplates(g chainGaps, conf, episodes []float64) []faults.Chain {
	specs := []struct {
		name       string
		precursors []string
		fatal      string
	}{
		{"coredump-loadprogram", []string{"coredumpCreated"}, "loadProgramFailure"},
		{"nodemap", []string{"nodemapFileError"}, "nodemapCreateFailure"},
		{"applaunch", []string{"appLaunchWarning", "appArgumentError"}, "appExitFailure"},
		{"ddr-socket", []string{"ddrErrorCorrectionInfo", "maskInfo"}, "socketReadFailure"},
		{"ciodstream", []string{"ciodStreamWarning"}, "streamReadFailure"},
		{"socketclose", []string{"socketCloseError"}, "socketWriteFailure"},
		{"rtslink", []string{"ciodRestartInfo", "midplaneStartInfo", "controlNetworkInfo"}, "rtsLinkFailure"},
		{"nmcs-connection", []string{"controlNetworkNMCSError"}, "nodeConnectionFailure"},
		{"torus", []string{"torusConnectionErrorInfo", "ethernetLinkWarning"}, "torusFailure"},
		{"machinecheck", []string{"machineCheckError"}, "kernelPanicFailure"},
		{"programinterrupt", []string{"programInterruptError"}, "instructionAddressFailure"},
		{"memleak-watchdog", []string{"memoryLeakWarning"}, "watchdogTimeoutFailure"},
		{"ddr-double", []string{"ddrSingleSymbolWarning", "eccCorrectableInfo"}, "ddrDoubleSymbolFailure"},
		{"mmcs-cache", []string{"midplaneStartInfo", "controlNetworkInfo", "BGLMasterRestartInfo"}, "cacheFailure"},
		{"l3-edram", []string{"l3CacheError"}, "edramFailure"},
		{"linkcard-upd", []string{"nodecardUPDMismatch", "nodecardAssemblySevereDiscovery", "nodecardFunctionalityWarning"}, "linkcardFailure"},
		{"linkcard-discovery", []string{"nodecardDiscoveryError", "nodecardFunctionalityWarning", "endServiceWarning", "midplaneLinkcardRestartWarning"}, "linkcardFailure"},
		{"nodecard-clock", []string{"nodecardTempWarning", "fanSpeedWarning"}, "nodecardClockFailure"},
	}
	out := make([]faults.Chain, len(specs))
	for i, spec := range specs {
		pre := make([]*catalog.Subcategory, len(spec.precursors))
		for j, name := range spec.precursors {
			pre[j] = s(name)
		}
		out[i] = faults.Chain{
			Name:          spec.name,
			Precursors:    pre,
			PrecursorGap:  g.precursor,
			FatalGap:      g.fatal,
			Fatal:         s(spec.fatal),
			Confidence:    conf[i],
			PrecursorDrop: 0.05,
			Episodes:      episodes[i],
		}
	}
	return out
}

// cascadeMembers is the failure-storm mix. Only I/O-stream and network
// failures cascade, reproducing the paper's finding that those two
// categories form the temporally correlated majority while "none of
// the other categories of failures has such a temporal correlation"
// (§3.2.1 discussion). Weights are per-profile to honour each system's
// Table 4 column.
func cascadeMembers(weights map[string]float64) []faults.Weighted {
	names := []string{
		"socketReadFailure", "socketWriteFailure", "streamReadFailure",
		"streamWriteFailure", "torusFailure", "rtsFailure",
		"treeNetworkFailure", "ethernetFailure", "rtsPanicFailure",
	}
	out := make([]faults.Weighted, 0, len(names))
	for _, n := range names {
		if w := weights[n]; w > 0 {
			out = append(out, faults.Weighted{Sub: s(n), Weight: w})
		}
	}
	return out
}

func isolatedTemplates(counts map[string]float64) []faults.Isolated {
	out := make([]faults.Isolated, 0, len(counts))
	for _, name := range []string{
		// Deterministic order for reproducibility.
		"appSignalFatal", "appAssertFailure", "loginFailure",
		"socketReadFailure", "socketWriteFailure", "streamWriteFailure",
		"torusFailure", "rtsFailure", "ethernetFailure",
		"treeNetworkFailure", "nodeConnectionFailure",
		"kernelPanicFailure", "tlbExceptionFailure", "floatingPointFailure",
		"pageFaultFailure", "privilegedInstructionFailure", "stackOverflowFailure",
		"parityFailure", "edramFailure", "eccUncorrectableFailure",
		"memoryControllerFailure", "dmaErrorFailure", "dataReadFailure",
		"dataStoreFailure", "cachePrefetchFailure",
		"ciodSignalFailure", "nodecardClockFailure", "bglmasterFailure",
	} {
		if n, ok := counts[name]; ok && n > 0 {
			out = append(out, faults.Isolated{Sub: s(name), Episodes: n})
		}
	}
	return out
}

// noiseTemplates builds the uncorrelated background. rateScale scales
// the whole table (SDSC logs are quieter). Chain-precursor
// subcategories appear only at trace rates (roughly a tenth of their
// chain rates) so coincidental rule matches stay rare, as in the
// paper's sparse compressed logs.
func noiseTemplates(rateScale float64) []faults.Noise {
	table := []struct {
		name   string
		perDay float64
	}{
		// High-volume neutral noise.
		{"scrubCycleInfo", 20}, {"regDumpInfo", 8}, {"traceInterruptInfo", 4},
		{"kernelShutdownInfo", 6}, {"debugInterruptWarning", 3},
		{"kernelModeWarning", 2}, {"interruptVectorError", 1},
		{"dcrReadError", 2}, {"syscallError", 2},
		{"l1CacheError", 3}, {"l2CacheError", 2}, {"sramParityError", 1},
		{"lockboxTimeoutError", 1}, {"addressRangeError", 1},
		{"appReadError", 3}, {"appWriteError", 3},
		{"fileReadError", 3}, {"fileWriteError", 3},
		{"nodecardStatusInfo", 10}, {"pollingAgentInfo", 15},
		{"CMCScontrolInfo", 5}, {"consoleConnectionInfo", 2},
		{"linkcardServiceWarning", 1}, {"nodecardAssemblyWarning", 1},
		{"nodecardPowerError", 1}, {"nodecardVoltageError", 1},
		{"midplaneSwitchError", 0.5}, {"powerSupplyVoltageWarning", 1},
		{"serviceCardWarning", 0.5},
		// Trace rates for chain-precursor and cascade-precursor types.
		{"coredumpCreated", 0.08}, {"nodemapFileError", 0.02},
		{"appLaunchWarning", 0.06}, {"appArgumentError", 0.06},
		{"ddrErrorCorrectionInfo", 0.1}, {"maskInfo", 0.1},
		{"ciodStreamWarning", 0.06}, {"socketCloseError", 0.06},
		{"ciodRestartInfo", 0.08}, {"midplaneStartInfo", 0.08},
		{"controlNetworkInfo", 0.1}, {"controlNetworkNMCSError", 0.04},
		{"torusConnectionErrorInfo", 0.06}, {"ethernetLinkWarning", 0.06},
		{"machineCheckError", 0.06}, {"programInterruptError", 0.06},
		{"memoryLeakWarning", 0.04}, {"ddrSingleSymbolWarning", 0.04},
		{"eccCorrectableInfo", 0.08}, {"l3CacheError", 0.04},
		{"BGLMasterRestartInfo", 0.04}, {"nodecardUPDMismatch", 0.02},
		{"nodecardAssemblySevereDiscovery", 0.02}, {"nodecardFunctionalityWarning", 0.04},
		{"nodecardDiscoveryError", 0.04}, {"endServiceWarning", 0.04},
		{"midplaneLinkcardRestartWarning", 0.02}, {"nodecardTempWarning", 0.04},
		{"fanSpeedWarning", 0.04}, {"midplaneServiceWarning", 0.04},
		{"dbLoggingError", 0.04},
	}
	out := make([]faults.Noise, len(table))
	for i, row := range table {
		out[i] = faults.Noise{Sub: s(row.name), PerDay: row.perDay * rateScale}
	}
	return out
}

// attachBursts turns the I/O and network chain families into burst
// seeds: their fatal events start short failure storms, so those
// failures are both rule-predictable (precursors) and statistically
// predictable (followers) — the overlap paper §3.3 exploits.
func attachBursts(chains []faults.Chain, members []faults.Weighted, extraMean float64, gap, gapLong faults.Delay, longPct float64) {
	netio := map[string]bool{
		"ddr-socket": true, "ciodstream": true, "socketclose": true,
		"rtslink": true, "nmcs-connection": true, "torus": true,
	}
	for i := range chains {
		if netio[chains[i].Name] {
			chains[i].BurstMembers = members
			chains[i].BurstExtraMean = extraMean
			chains[i].BurstGap = gap
			chains[i].BurstGapLong = gapLong
			chains[i].BurstGapLongPct = longPct
		}
	}
}

// attachTails gives the I/O and network chain families a storm-tail:
// an application casualty following the burst.
func attachTails(chains []faults.Chain, members []faults.Weighted, prob float64, gap faults.Delay) {
	netio := map[string]bool{
		"ddr-socket": true, "ciodstream": true, "socketclose": true,
		"rtslink": true, "nmcs-connection": true, "torus": true,
	}
	for i := range chains {
		if netio[chains[i].Name] {
			chains[i].TailMembers = members
			chains[i].TailProb = prob
			chains[i].TailGap = gap
		}
	}
}

// ANLProfile models the Argonne Blue Gene/L: 1024 compute nodes, 32
// I/O nodes, a 15-month log of ~4.2M raw records compressing to 2823
// fatal events.
func ANLProfile() Profile {
	start := time.Date(2005, 1, 21, 0, 0, 0, 0, time.UTC)
	end := time.Date(2006, 4, 28, 0, 0, 0, 0, time.UTC)
	//                coredump nodemap launch  ddr ciod close  rts nmcs torus mchk pint leak ddr2 cache  l3  updA discB clock
	conf := []float64{0.82, 0.97, 0.87, 0.85, 0.79, 0.82, 0.77, 0.79, 0.77, 0.82, 0.79, 0.75, 0.77, 0.72, 0.72, 0.82, 0.77, 0.79}
	episodes := []float64{183, 88, 92, 248, 200, 137, 109, 82, 64, 64, 50, 45, 27, 18, 18, 64, 45, 18}

	stormMembers := cascadeMembers(map[string]float64{
		"socketReadFailure": 14, "socketWriteFailure": 8,
		"streamReadFailure": 6.5, "streamWriteFailure": 4,
		"torusFailure": 4, "rtsFailure": 3,
		"treeNetworkFailure": 2, "ethernetFailure": 2,
		"rtsPanicFailure": 2,
	})
	shortGap := faults.Delay{Min: 40 * time.Second, Mean: 150 * time.Second, Max: 270 * time.Second}
	longGap := faults.Delay{Min: 330 * time.Second, Mean: 14 * time.Minute, Max: 50 * time.Minute}
	chains := chainTemplates(anlGaps, conf, episodes)
	attachBursts(chains, stormMembers, 0.54, shortGap, longGap, 0.7)
	tailMembers := []faults.Weighted{
		{Sub: s("appSignalFatal"), Weight: 5.5},
		{Sub: s("appExitFailure"), Weight: 4.5},
	}
	tailGap := faults.Delay{Min: 330 * time.Second, Mean: 18 * time.Minute, Max: 55 * time.Minute}
	attachTails(chains, tailMembers, 0.30, tailGap)

	return Profile{
		Name:     "ANL",
		Start:    start,
		End:      end,
		FullSpan: end.Sub(start),
		Machine:  topology.Config{IOChipsPerNodeCard: 1},
		Jobs:     jobs.Config{},
		Faults: faults.Model{
			Chains: chains,
			Cascades: []faults.Cascade{{
				Name:        "netio-storm",
				Members:     stormMembers,
				ExtraMean:   3.1,
				Gap:         shortGap,
				GapLong:     longGap,
				GapLongProb: 0.7,
				Episodes:    80,
				Precursors: []*catalog.Subcategory{
					s("midplaneServiceWarning"), s("dbLoggingError"),
				},
				PrecursorProb: 0.35,
				PrecursorGap:  anlGaps.precursor,
				LeadGap:       anlGaps.fatal,
				TailMembers:   tailMembers,
				TailProb:      0.5,
				TailGap:       tailGap,
			}},
			Isolated: isolatedTemplates(map[string]float64{
				"appSignalFatal": 62, "appAssertFailure": 98, "loginFailure": 63,
				"socketReadFailure": 92, "streamWriteFailure": 82, "socketWriteFailure": 72,
				"torusFailure": 21, "rtsFailure": 21, "ethernetFailure": 4,
				"treeNetworkFailure": 3, "nodeConnectionFailure": 3,
				"kernelPanicFailure": 20, "tlbExceptionFailure": 22,
				"floatingPointFailure": 14, "pageFaultFailure": 16,
				"privilegedInstructionFailure": 12, "stackOverflowFailure": 14,
				"parityFailure": 2, "edramFailure": 1, "eccUncorrectableFailure": 1,
				"memoryControllerFailure": 1,
				"ciodSignalFailure":       14, "nodecardClockFailure": 6,
				"bglmasterFailure": 8,
			}),
			Noise:       noiseTemplates(1),
			ClusterProb: 0.22,
			ClusterGap:  faults.Delay{Min: 2 * time.Minute, Mean: 25 * time.Minute, Max: 2 * time.Hour},
		},
		Dup: DupConfig{
			FatalChipFanoutMean:    80,
			NonfatalChipFanoutMean: 38,
			IOFanoutMean:           20,
			RepeatMean:             2,
			CardRepeatMean:         2,
			Spread:                 2 * time.Minute,
		},
		HotMidplaneShare: 0.62,
		Seed:             20050121,
	}
}

// SDSCProfile models the San Diego Blue Gene/L: I/O-rich (128 I/O
// nodes), a 14.5-month log of ~429K raw records compressing to 2182
// fatal events. Relative to ANL its chains are slower (best
// rule-generation window 25 min vs 15 min) and more reliable (higher
// confidences, hence the near-perfect small-window meta precision of
// paper Figure 5), while its storms have shorter-fused follow-ups —
// which starves the standalone statistical predictor's (5 min, 1 h]
// window and yields paper Table 5's weak SDSC numbers.
func SDSCProfile() Profile {
	start := time.Date(2004, 12, 6, 0, 0, 0, 0, time.UTC)
	end := time.Date(2006, 2, 21, 0, 0, 0, 0, time.UTC)
	conf := []float64{0.88, 0.97, 0.85, 0.90, 0.80, 0.82, 0.85, 0.85, 0.80, 0.85, 0.80, 0.75, 0.75, 0.70, 0.70, 0.85, 0.80, 0.80}
	episodes := []float64{170, 72, 94, 144, 88, 61, 47, 47, 38, 47, 38, 27, 13, 7, 7, 47, 31, 13}

	stormMembers := cascadeMembers(map[string]float64{
		"socketReadFailure": 13, "socketWriteFailure": 7.5,
		"streamReadFailure": 6, "streamWriteFailure": 3.5,
		"torusFailure": 4, "rtsFailure": 3,
		"treeNetworkFailure": 1.5, "ethernetFailure": 1.5,
		"rtsPanicFailure": 1.5,
	})
	shortGap := faults.Delay{Min: 40 * time.Second, Mean: 90 * time.Second, Max: 240 * time.Second}
	longGap := faults.Delay{Min: 330 * time.Second, Mean: 16 * time.Minute, Max: 55 * time.Minute}
	chains := chainTemplates(sdscGaps, conf, episodes)
	attachBursts(chains, stormMembers, 0.6, shortGap, longGap, 0.18)
	tailMembers := []faults.Weighted{
		{Sub: s("appSignalFatal"), Weight: 5.5},
		{Sub: s("appExitFailure"), Weight: 4.5},
	}
	tailGap := faults.Delay{Min: 330 * time.Second, Mean: 20 * time.Minute, Max: 55 * time.Minute}
	attachTails(chains, tailMembers, 0.10, tailGap)

	return Profile{
		Name:     "SDSC",
		Start:    start,
		End:      end,
		FullSpan: end.Sub(start),
		Machine:  topology.Config{IOChipsPerNodeCard: 4},
		Jobs:     jobs.Config{},
		Faults: faults.Model{
			Chains: chains,
			Cascades: []faults.Cascade{{
				Name:        "netio-storm",
				Members:     stormMembers,
				ExtraMean:   1.5,
				Gap:         shortGap,
				GapLong:     longGap,
				GapLongProb: 0.18,
				Episodes:    159,
				Precursors: []*catalog.Subcategory{
					s("midplaneServiceWarning"), s("dbLoggingError"),
				},
				PrecursorProb: 0.30,
				PrecursorGap:  sdscGaps.precursor,
				LeadGap:       sdscGaps.fatal,
				TailMembers:   tailMembers,
				TailProb:      0.25,
				TailGap:       tailGap,
			}},
			Isolated: isolatedTemplates(map[string]float64{
				"appSignalFatal": 65, "appAssertFailure": 95, "loginFailure": 58,
				"socketReadFailure": 85, "streamWriteFailure": 90, "socketWriteFailure": 70,
				"torusFailure": 25, "rtsFailure": 23, "ethernetFailure": 9,
				"treeNetworkFailure": 6, "nodeConnectionFailure": 7,
				"kernelPanicFailure": 18, "tlbExceptionFailure": 20,
				"floatingPointFailure": 13, "pageFaultFailure": 15,
				"privilegedInstructionFailure": 11, "stackOverflowFailure": 14,
				"parityFailure": 2, "edramFailure": 1, "eccUncorrectableFailure": 1,
				"memoryControllerFailure": 1,
				"ciodSignalFailure":       32, "nodecardClockFailure": 7,
				"bglmasterFailure": 3,
			}),
			Noise:       noiseTemplates(0.4),
			ClusterProb: 0.05,
			ClusterGap:  faults.Delay{Min: 2 * time.Minute, Mean: 25 * time.Minute, Max: 2 * time.Hour},
		},
		Dup: DupConfig{
			FatalChipFanoutMean:    35,
			NonfatalChipFanoutMean: 9,
			IOFanoutMean:           9,
			RepeatMean:             1.2,
			CardRepeatMean:         2,
			Spread:                 2 * time.Minute,
		},
		HotMidplaneShare: 0.57,
		Seed:             20041206,
	}
}

// Profiles returns both calibrated profiles, ANL first.
func Profiles() []Profile {
	return []Profile{ANLProfile(), SDSCProfile()}
}

// ProfileByName resolves "ANL" or "SDSC" (case-sensitive).
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
