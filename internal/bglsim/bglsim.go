// Package bglsim synthesizes raw Blue Gene/L RAS logs. It stands in
// for the proprietary ANL and SDSC CMCS logs the paper evaluates on
// (see DESIGN.md §2): a machine topology, a job schedule, and a fault
// model produce logical events, which a CMCS duplication model then
// expands into the redundant raw records that Phase 1 preprocessing
// must compress away — every chip of a job's partition reports the
// same fault, and each polling agent repeats reports at sub-second
// granularity while timestamps are recorded in seconds.
package bglsim

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"time"

	"bglpred/internal/bglsim/faults"
	"bglpred/internal/bglsim/jobs"
	"bglpred/internal/bglsim/topology"
	"bglpred/internal/catalog"
	"bglpred/internal/raslog"
)

// DupConfig controls the CMCS duplication model: how many raw records
// one logical event expands into.
type DupConfig struct {
	// FatalChipFanoutMean is the mean number of additional compute
	// chips (beyond the first) reporting a job-visible fatal event.
	FatalChipFanoutMean float64
	// NonfatalChipFanoutMean is the same for non-fatal job-visible
	// events.
	NonfatalChipFanoutMean float64
	// IOFanoutMean is the mean additional I/O chips reporting a
	// CIOD-scope event.
	IOFanoutMean float64
	// RepeatMean is the mean number of additional repeats each
	// reporting chip emits (sub-second polling repetition).
	RepeatMean float64
	// CardRepeatMean is the repeat mean for card-scope events (node
	// card, link card, service card, midplane), which only ever have a
	// single reporting location.
	CardRepeatMean float64
	// Spread bounds the time interval the duplicates land in. Keep it
	// below the preprocessor's 300 s threshold so duplicates compress
	// into one unique event.
	Spread time.Duration
}

func (d DupConfig) withDefaults() DupConfig {
	if d.Spread == 0 {
		d.Spread = 2 * time.Minute
	}
	return d
}

// Profile fully describes one synthetic system (ANL-like or
// SDSC-like): machine size, log span, workload, fault model,
// duplication intensity.
type Profile struct {
	// Name labels outputs ("ANL", "SDSC").
	Name string
	// Start and End bound the log span.
	Start, End time.Time
	// FullSpan is the reference span episode counts are calibrated to;
	// Scaled() shrinks End while keeping rates constant.
	FullSpan time.Duration
	// Machine is the topology configuration.
	Machine topology.Config
	// Jobs is the workload configuration.
	Jobs jobs.Config
	// Faults is the fault model (calibrated to paper Table 4).
	Faults faults.Model
	// Dup is the duplication model (calibrated to paper Table 1).
	Dup DupConfig
	// HotMidplaneShare is the fraction of fault episodes placed on
	// midplane 0 of rack 0 — real BG/L logs show failure hotspots
	// (Liang et al.); 0 means uniform placement.
	HotMidplaneShare float64
	// Seed makes generation deterministic.
	Seed uint64
}

// Span returns the profile's current log span.
func (p *Profile) Span() time.Duration { return p.End.Sub(p.Start) }

// Scaled returns a copy whose span is scale times the full span, with
// identical event rates (episode counts scale proportionally). scale
// is clamped to (0, 1].
func (p Profile) Scaled(scale float64) Profile {
	if scale <= 0 {
		scale = 1e-3
	}
	if scale > 1 {
		scale = 1
	}
	p.End = p.Start.Add(time.Duration(float64(p.FullSpan) * scale))
	return p
}

// Result is one generated log with its ground truth.
type Result struct {
	// Profile echoes the generating profile.
	Profile *Profile
	// Events is the raw log: time-sorted records with assigned RecIDs.
	Events []raslog.Event
	// Logical is the deduplicated ground truth, time-sorted.
	Logical []faults.LogicalEvent
	// Schedule is the simulated job history.
	Schedule *jobs.Schedule
	// Machine is the simulated machine.
	Machine *topology.Machine
}

// Generate synthesizes a raw RAS log from the profile.
func Generate(p Profile) (*Result, error) {
	if err := p.Faults.Validate(); err != nil {
		return nil, err
	}
	if !p.End.After(p.Start) {
		return nil, fmt.Errorf("bglsim: profile %q has empty span", p.Name)
	}
	dup := p.Dup.withDefaults()
	rng := rand.New(rand.NewPCG(p.Seed, 0x6267736d))
	machine := topology.New(p.Machine)
	schedule := jobs.Simulate(rng, machine, p.Start, p.End, p.Jobs)
	logical := p.Faults.Synthesize(rng, p.Start, p.End, p.FullSpan)

	mps := machine.Midplanes()
	ex := expander{
		rng:      rng,
		machine:  machine,
		schedule: schedule,
		dup:      dup,
		mps:      mps,
		hotShare: p.HotMidplaneShare,
	}
	var events []raslog.Event
	for i := range logical {
		events = ex.expand(&logical[i], events)
	}

	// CMCS stores whole-second timestamps; stable-sort by that and
	// assign record IDs in storage order.
	sort.SliceStable(events, func(i, j int) bool {
		return events[i].Time.Before(events[j].Time)
	})
	for i := range events {
		events[i].RecID = int64(i + 1)
	}
	return &Result{
		Profile:  &p,
		Events:   events,
		Logical:  logical,
		Schedule: schedule,
		Machine:  machine,
	}, nil
}

// expander turns logical events into raw duplicated records.
type expander struct {
	rng      *rand.Rand
	machine  *topology.Machine
	schedule *jobs.Schedule
	dup      DupConfig
	mps      []raslog.Location
	hotShare float64
}

// scope classifies where a subcategory's records originate.
type scope int

const (
	scopeCompute scope = iota // compute chips of the detecting job
	scopeIO                   // I/O chips (CIOD)
	scopeNodeCard
	scopeLinkCard
	scopeServiceCard
	scopeMidplane // MMCS/CMCS/BGLMaster system software
)

func scopeFor(sub *catalog.Subcategory) scope {
	switch sub.Facility {
	case catalog.FacApp, catalog.FacKernel, catalog.FacHardware:
		return scopeCompute
	case catalog.FacCiod:
		return scopeIO
	case catalog.FacDiscovery, catalog.FacMonitor:
		return scopeNodeCard
	case catalog.FacLinkcard:
		return scopeLinkCard
	case catalog.FacServiceCard:
		return scopeServiceCard
	default:
		return scopeMidplane
	}
}

// midplaneFor keeps all events of one episode on one midplane, so
// chains and cascades are spatially coherent; noise scatters randomly.
// With HotMidplaneShare set, a matching share of episodes lands on
// midplane 0 (the hotspot), the rest round-robin over the others.
func (ex *expander) midplaneFor(le *faults.LogicalEvent) raslog.Location {
	if le.Episode == 0 {
		return ex.mps[ex.rng.IntN(len(ex.mps))]
	}
	if ex.hotShare > 0 && len(ex.mps) > 1 {
		// Episode-keyed deterministic hash so every event of the
		// episode agrees without shared state.
		h := uint64(le.Episode) * 0x9e3779b97f4a7c15
		if float64(h%1000)/1000 < ex.hotShare {
			return ex.mps[0]
		}
		rest := ex.mps[1:]
		return rest[le.Episode%len(rest)]
	}
	return ex.mps[le.Episode%len(ex.mps)]
}

// detail appends harmless variable text to an entry; it is constant
// across one logical event's duplicates so spatial compression can
// merge them, and distinct between logical events so it never
// over-merges.
func (ex *expander) detail() string {
	switch ex.rng.IntN(4) {
	case 0:
		return fmt.Sprintf(" at 0x%08x", ex.rng.Uint32())
	case 1:
		return fmt.Sprintf(" rc=%d", -(1 + ex.rng.IntN(120)))
	case 2:
		return fmt.Sprintf(" seq=%d", 1+ex.rng.IntN(1<<20))
	default:
		return ""
	}
}

func (ex *expander) expand(le *faults.LogicalEvent, out []raslog.Event) []raslog.Event {
	mp := ex.midplaneFor(le)
	entry := le.Sub.Phrase + ex.detail()

	jobID := raslog.NoJob
	if job, ok := ex.schedule.JobAt(le.Time, mp); ok {
		switch scopeFor(le.Sub) {
		case scopeCompute, scopeIO:
			jobID = job.ID
		}
	}

	emit := func(loc raslog.Location, at time.Time) {
		out = append(out, raslog.Event{
			Type:      raslog.EventTypeRAS,
			Time:      at.Truncate(time.Second),
			JobID:     jobID,
			Location:  loc,
			EntryData: entry,
			Facility:  le.Sub.Facility,
			Severity:  le.Sub.Severity,
		})
	}
	// jitter places a duplicate inside the spread window.
	jitter := func() time.Time {
		return le.Time.Add(time.Duration(ex.rng.Float64() * float64(ex.dup.Spread)))
	}
	// repeats draws how many records one location emits.
	repeats := func(mean float64) int { return 1 + geometric(ex.rng, mean) }

	switch scopeFor(le.Sub) {
	case scopeCompute:
		fan := ex.dup.NonfatalChipFanoutMean
		if le.Sub.IsFatal() {
			fan = ex.dup.FatalChipFanoutMean
		}
		n := 1 + geometric(ex.rng, fan)
		if max := ex.machine.ChipsPerMidplane(); n > max {
			n = max
		}
		for _, idx := range ex.rng.Perm(ex.machine.ChipsPerMidplane())[:n] {
			loc := ex.machine.ChipByIndex(mp, idx)
			for r := repeats(ex.dup.RepeatMean); r > 0; r-- {
				emit(loc, jitter())
			}
		}
	case scopeIO:
		cfg := ex.machine.Config()
		maxIO := cfg.NodeCardsPerMidplane * cfg.IOChipsPerNodeCard
		n := 1 + geometric(ex.rng, ex.dup.IOFanoutMean)
		if n > maxIO {
			n = maxIO
		}
		for _, k := range ex.rng.Perm(maxIO)[:n] {
			loc := raslog.Location{
				Kind:     raslog.KindIONode,
				Rack:     mp.Rack,
				Midplane: mp.Midplane,
				Card:     k / cfg.IOChipsPerNodeCard,
				Chip:     k % cfg.IOChipsPerNodeCard,
			}
			for r := repeats(ex.dup.RepeatMean); r > 0; r-- {
				emit(loc, jitter())
			}
		}
	case scopeNodeCard:
		loc := ex.machine.RandomNodeCard(ex.rng, mp)
		for r := repeats(ex.dup.CardRepeatMean); r > 0; r-- {
			emit(loc, jitter())
		}
	case scopeLinkCard:
		loc := ex.machine.RandomLinkCard(ex.rng, mp)
		for r := repeats(ex.dup.CardRepeatMean); r > 0; r-- {
			emit(loc, jitter())
		}
	case scopeServiceCard:
		loc := ex.machine.ServiceCard(mp)
		for r := repeats(ex.dup.CardRepeatMean); r > 0; r-- {
			emit(loc, jitter())
		}
	default: // scopeMidplane
		for r := repeats(ex.dup.CardRepeatMean); r > 0; r-- {
			emit(mp, jitter())
		}
	}
	return out
}

// geometric draws a geometric variate (support 0,1,2,...) with the
// given mean.
func geometric(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	// Inversion: ~Geom(p) with p = 1/(1+mean).
	u := rng.Float64()
	n := int(math.Log(1-u) / math.Log(mean/(1+mean)))
	if n < 0 {
		n = 0
	}
	return n
}
