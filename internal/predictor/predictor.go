// Package predictor implements Phase 2 and Phase 3 of the three-phase
// framework: the statistical base predictor (paper §3.2.1), the
// association-rule base predictor (§3.2.2), and the coverage-based
// meta-learner that integrates them (§3.3).
//
// # Warning semantics
//
// A predictor consumes the time-ordered unique-event stream produced
// by Phase 1 and emits warnings. A warning issued at time t with
// prediction window W asserts "a fatal event will occur in (Start,
// End]" where Start >= t and End = t + W. The evaluation package
// scores a warning as a true positive when at least one fatal event
// falls inside its interval, and a fatal event as predicted when at
// least one warning interval contains it.
package predictor

import (
	"time"

	"bglpred/internal/preprocess"
)

// Warning is one prediction: a claim that a fatal event will occur
// within (Start, End].
type Warning struct {
	// At is the event timestamp that triggered the prediction.
	At time.Time
	// Start and End delimit the covered interval (Start exclusive,
	// End inclusive). Start is At for rule warnings, At plus the
	// actionability lead for statistical warnings.
	Start time.Time
	End   time.Time
	// Confidence is the predictor's confidence in (0, 1].
	Confidence float64
	// Source names the base method by its registry name
	// ("statistical", "rule", or another registered base such as
	// "ecg").
	Source string
	// Detail describes the trigger (rule text or trigger category).
	Detail string
}

// Covers reports whether the warning's interval contains t.
func (w *Warning) Covers(t time.Time) bool {
	return t.After(w.Start) && !t.After(w.End)
}

// Predictor is a trainable failure predictor evaluated offline, in
// the paper's n-fold cross-validation style.
type Predictor interface {
	// Name identifies the method in reports.
	Name() string
	// Train fits the predictor on a time-ordered unique-event stream.
	Train(events []preprocess.Event) error
	// Predict replays a time-ordered test stream and returns the
	// warnings the method would have raised with the given prediction
	// window, in issue order.
	Predict(events []preprocess.Event, window time.Duration) []Warning
}

// SegmentedTrainer is implemented by predictors that can train on a
// discontiguous stream: each segment is a time-ordered, internally
// contiguous slice of the unique-event stream, and no training
// window (rule-generation window, follow-correlation window) may
// span the gap between two segments. Cross-validation excises the
// test fold from the middle of the stream and trains on the two
// remaining segments; concatenating them instead would fabricate
// event-sets that never co-occurred (fold-boundary leakage).
type SegmentedTrainer interface {
	// TrainSegments fits the predictor on the segments, which must be
	// in time order. TrainSegments(s) with a single segment is
	// equivalent to Train(s[0]).
	TrainSegments(segments [][]preprocess.Event) error
}

// Factory builds a fresh predictor; cross-validation uses one per fold.
type Factory func() Predictor

// SourceStatistical and SourceRule are the Warning.Source values of
// the two base methods.
const (
	SourceStatistical = "statistical"
	SourceRule        = "rule"
)
