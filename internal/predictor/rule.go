package predictor

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"bglpred/internal/assoc"
	"bglpred/internal/catalog"
	"bglpred/internal/preprocess"
)

// RuleConfig parameterizes the rule-based predictor.
type RuleConfig struct {
	// RuleGenWindow is the window preceding each fatal event from which
	// event-sets are built (paper §3.2.2 step 1). Zero selects the
	// window automatically from Candidates on a held-out slice of the
	// training data (step 5) — the paper's sweep picked 15 minutes for
	// ANL and 25 minutes for SDSC.
	RuleGenWindow time.Duration
	// Candidates are the windows the automatic selection sweeps;
	// default 5, 10, ..., 60 minutes.
	Candidates []time.Duration
	// MinSupport is the fractional minimum support. The paper states
	// 0.04, but with one event-set per fatal event that threshold would
	// exclude the very rule families Figure 3 prints (linkcardFailure
	// occurs ~100 times among ~2800 event-sets, i.e. support ~0.035);
	// we default to 0.01 and record the discrepancy in EXPERIMENTS.md.
	MinSupport float64
	// MinConfidence is the minimum rule confidence (paper: 0.2).
	MinConfidence float64
	// MaxBodyLen bounds precursor-set size (default 4, the longest
	// body in paper Figure 3).
	MaxBodyLen int
	// MaxBodyItemShare, MinLift, MinCountFloor and MinZ forward to
	// assoc.Config; zero selects that package's defaults (0.15, 2.2,
	// 5 and 2.5).
	MaxBodyItemShare float64
	MinLift          float64
	MinCountFloor    int
	MinZ             float64
	// Miner selects Apriori or FPGrowth; default FPGrowth.
	Miner assoc.Miner
	// KeepDominated retains rules whose body is a superset of an
	// equally confident rule's body. Pruning them never changes a
	// prediction (see assoc.RuleSet.Prune); the default prunes.
	KeepDominated bool
}

func (c RuleConfig) withDefaults() RuleConfig {
	if len(c.Candidates) == 0 {
		for m := 5; m <= 60; m += 5 {
			c.Candidates = append(c.Candidates, time.Duration(m)*time.Minute)
		}
	}
	if c.MinSupport == 0 {
		c.MinSupport = 0.01
	}
	if c.MinConfidence == 0 {
		c.MinConfidence = 0.2
	}
	if c.MaxBodyLen == 0 {
		c.MaxBodyLen = 4
	}
	if c.Miner == nil {
		c.Miner = &assoc.FPGrowth{}
	}
	return c
}

// Rule is the rule-based base predictor (paper §3.2.2): it mines
// association rules from event-sets of non-fatal precursors preceding
// fatal events, then raises a warning whenever a rule body is observed
// in the prediction window.
type Rule struct {
	Config RuleConfig

	rules        *assoc.RuleSet
	chosenWindow time.Duration
}

// NewRule returns a rule predictor with the paper's defaults and
// automatic rule-generation-window selection.
func NewRule() *Rule { return &Rule{} }

// Name implements Predictor.
func (r *Rule) Name() string { return SourceRule }

// Rules exposes the mined rule set (nil before Train).
func (r *Rule) Rules() *assoc.RuleSet { return r.rules }

// ChosenWindow reports the rule-generation window used.
func (r *Rule) ChosenWindow() time.Duration { return r.chosenWindow }

// BuildTransactions constructs one event-set per fatal event: the
// fatal's subcategory plus every distinct non-fatal subcategory
// observed within the window before it (paper §3.2.2 step 1).
func BuildTransactions(events []preprocess.Event, window time.Duration) []assoc.Transaction {
	var tx []assoc.Transaction
	start := 0
	for i := range events {
		if !events[i].Sub.IsFatal() {
			continue
		}
		for events[start].Time.Before(events[i].Time.Add(-window)) {
			start++
		}
		items := []assoc.Item{events[i].Sub.ID}
		for j := start; j < i; j++ {
			if !events[j].Sub.IsFatal() {
				items = append(items, events[j].Sub.ID)
			}
		}
		tx = append(tx, assoc.NewItemset(items...))
	}
	return tx
}

// isFatalItem classifies items (subcategory IDs) as rule heads.
func isFatalItem(it assoc.Item) bool {
	s, ok := catalog.ByID(it)
	return ok && s.IsFatal()
}

// itemName resolves an item to its subcategory name for Figure 3-style
// rule rendering.
func itemName(it assoc.Item) string {
	if s, ok := catalog.ByID(it); ok {
		return s.Name
	}
	return fmt.Sprintf("item%d", it)
}

// Train implements Predictor: step 5's window selection (when
// configured) followed by steps 1-4 on the full training stream.
func (r *Rule) Train(events []preprocess.Event) error {
	return r.TrainSegments([][]preprocess.Event{events})
}

// TrainSegments implements SegmentedTrainer: event-sets are built per
// segment, so no rule-generation window spans the gap between two
// segments (cross-validation excises the test fold from the middle of
// the stream; building event-sets over the concatenation would mine
// precursor sets that never co-occurred).
func (r *Rule) TrainSegments(segments [][]preprocess.Event) error {
	r.Config = r.Config.withDefaults()
	window := r.Config.RuleGenWindow
	if window == 0 {
		window = r.selectWindow(segments)
	}
	r.chosenWindow = window
	r.rules = assoc.NewRuleSet(r.mine(segments, window))
	if !r.Config.KeepDominated {
		r.rules.Prune()
	}
	return nil
}

func (r *Rule) mine(segments [][]preprocess.Event, window time.Duration) []assoc.Rule {
	var tx []assoc.Transaction
	for _, seg := range segments {
		tx = append(tx, BuildTransactions(seg, window)...)
	}
	return assoc.MineRules(tx, isFatalItem, assoc.Config{
		MinSupport:       r.Config.MinSupport,
		MinConfidence:    r.Config.MinConfidence,
		MaxBodyLen:       r.Config.MaxBodyLen,
		MaxBodyItemShare: r.Config.MaxBodyItemShare,
		MinLift:          r.Config.MinLift,
		MinCountFloor:    r.Config.MinCountFloor,
		MinZ:             r.Config.MinZ,
		Miner:            r.Config.Miner,
	})
}

// selectWindow implements step 5: mine rules per candidate window on
// the first three quarters of the training stream, score predictions
// on the held-out quarter, and keep the best window by F1 (the paper's
// "best precision with highest recall" criterion, made precise).
// Candidates are probed concurrently — each probe mines and scores an
// independent rule set — and ties resolve to the earliest candidate,
// matching the sequential sweep exactly.
func (r *Rule) selectWindow(segments [][]preprocess.Event) time.Duration {
	best := r.Config.Candidates[0]
	total := 0
	for _, seg := range segments {
		total += len(seg)
	}
	if total < 20 {
		return best
	}
	train, hold := splitSegments(segments, total*3/4)
	const predWindow = 30 * time.Minute
	scores := make([]float64, len(r.Config.Candidates))
	var wg sync.WaitGroup
	for ci, cand := range r.Config.Candidates {
		wg.Add(1)
		go func(ci int, cand time.Duration) {
			defer wg.Done()
			probe := &Rule{Config: r.Config}
			probe.Config.RuleGenWindow = cand
			probe.chosenWindow = cand
			probe.rules = assoc.NewRuleSet(probe.mine(train, cand))
			var warnings []Warning
			var events []preprocess.Event
			for _, seg := range hold {
				warnings = append(warnings, probe.Predict(seg, predWindow)...)
				events = append(events, seg...)
			}
			scores[ci] = scoreF1(warnings, events)
		}(ci, cand)
	}
	wg.Wait()
	bestScore := -1.0
	for ci, cand := range r.Config.Candidates {
		if scores[ci] > bestScore {
			bestScore, best = scores[ci], cand
		}
	}
	return best
}

// splitSegments cuts a segment list at the cut-th event overall.
// Splitting a contiguous segment yields two contiguous pieces, so the
// train/holdout seam never admits a window spanning it.
func splitSegments(segments [][]preprocess.Event, cut int) (train, hold [][]preprocess.Event) {
	seen := 0
	for _, seg := range segments {
		switch {
		case seen+len(seg) <= cut:
			train = append(train, seg)
		case seen >= cut:
			hold = append(hold, seg)
		default:
			train = append(train, seg[:cut-seen])
			hold = append(hold, seg[cut-seen:])
		}
		seen += len(seg)
	}
	return train, hold
}

// scoreF1 computes the harmonic mean of warning precision and fatal
// recall over a test stream; used only for internal window selection.
func scoreF1(warnings []Warning, events []preprocess.Event) float64 {
	var fatals []time.Time
	for i := range events {
		if events[i].Sub.IsFatal() {
			fatals = append(fatals, events[i].Time)
		}
	}
	if len(fatals) == 0 || len(warnings) == 0 {
		return 0
	}
	covered := make([]bool, len(fatals))
	tp := 0
	for i := range warnings {
		w := &warnings[i]
		idx := sort.Search(len(fatals), func(k int) bool { return fatals[k].After(w.Start) })
		hit := false
		for k := idx; k < len(fatals) && !fatals[k].After(w.End); k++ {
			covered[k] = true
			hit = true
		}
		if hit {
			tp++
		}
	}
	nCovered := 0
	for _, c := range covered {
		if c {
			nCovered++
		}
	}
	precision := float64(tp) / float64(len(warnings))
	recall := float64(nCovered) / float64(len(fatals))
	if precision+recall == 0 {
		return 0
	}
	return 2 * precision * recall / (precision + recall)
}

// Predict implements Predictor (step 6): slide a window of recent
// non-fatal events over the test stream; whenever the observed set
// matches a rule body, raise a warning carrying the best matching
// rule's confidence. A warning behaves as a standing alarm: while it
// is active, further matching evidence renews it (extending its
// coverage and upgrading its confidence) instead of raising a second
// alarm — one precursor episode therefore yields one prediction.
func (r *Rule) Predict(events []preprocess.Event, window time.Duration) []Warning {
	if r.rules == nil || r.rules.Len() == 0 {
		return nil
	}
	return PredictBase(r, events, window)
}

// renewWarning appends w, or — when w overlaps the last standing
// warning — renews that warning in place: coverage extends to w.End
// and the higher confidence (with its detail) wins.
func renewWarning(out *[]Warning, w Warning) {
	if n := len(*out); n > 0 {
		last := &(*out)[n-1]
		if !w.Start.After(last.End) {
			if w.End.After(last.End) {
				last.End = w.End
			}
			if w.Confidence > last.Confidence {
				last.Confidence = w.Confidence
				last.Detail = w.Detail
			}
			return
		}
	}
	*out = append(*out, w)
}
