package predictor

import (
	"strings"
	"testing"
	"time"

	"bglpred/internal/assoc"
	"bglpred/internal/catalog"
	"bglpred/internal/preprocess"
)

// chainStream yields n completed coredump->loadProgram chains spaced
// spacing apart (precursor 4 minutes before the fatal), plus aborted
// instances (precursor without fatal) every abortEvery-th slot.
func chainStream(n int, spacing time.Duration, abortEvery int) []preprocess.Event {
	var out []preprocess.Event
	at := t0
	for i := 0; i < n; i++ {
		out = append(out, ue(at, "coredumpCreated"))
		if abortEvery == 0 || i%abortEvery != abortEvery-1 {
			out = append(out, ue(at.Add(4*time.Minute), "loadProgramFailure"))
		}
		at = at.Add(spacing)
	}
	return out
}

// ruleWithWindow builds a rule predictor with permissive ubiquity and
// lift settings: the hand-built single-family streams in these tests
// put the precursor in every event-set, which the production defaults
// would rightly treat as an uninformative heartbeat.
func ruleWithWindow(w time.Duration) *Rule {
	r := NewRule()
	r.Config.RuleGenWindow = w
	r.Config.MinSupport = 0.05
	r.Config.MaxBodyItemShare = 1
	r.Config.MinLift = 1e-9
	return r
}

func TestBuildTransactions(t *testing.T) {
	events := stream(
		0*time.Minute, "coredumpCreated",
		4*time.Minute, "loadProgramFailure", // fatal: window holds coredump
		30*time.Minute, "scrubCycleInfo",
		31*time.Minute, "torusFailure", // fatal: window holds scrub only
		200*time.Minute, "kernelPanicFailure", // fatal: empty window
	)
	tx := BuildTransactions(events, 15*time.Minute)
	if len(tx) != 3 {
		t.Fatalf("got %d transactions, want 3", len(tx))
	}
	core := catalog.MustByName("coredumpCreated").ID
	load := catalog.MustByName("loadProgramFailure").ID
	scrub := catalog.MustByName("scrubCycleInfo").ID
	torus := catalog.MustByName("torusFailure").ID
	panicID := catalog.MustByName("kernelPanicFailure").ID

	if !tx[0].Equal(assoc.NewItemset(core, load)) {
		t.Errorf("tx[0] = %v", tx[0])
	}
	if !tx[1].Equal(assoc.NewItemset(scrub, torus)) {
		t.Errorf("tx[1] = %v", tx[1])
	}
	if !tx[2].Equal(assoc.NewItemset(panicID)) {
		t.Errorf("tx[2] = %v", tx[2])
	}
}

func TestBuildTransactionsExcludesEarlierFatals(t *testing.T) {
	// A fatal inside another fatal's window is NOT part of its
	// event-set body (bodies are non-fatal only), and boundary events
	// exactly window-old are included.
	events := stream(
		0*time.Minute, "torusFailure",
		10*time.Minute, "coredumpCreated",
		25*time.Minute, "loadProgramFailure",
	)
	tx := BuildTransactions(events, 25*time.Minute)
	last := tx[len(tx)-1]
	if last.Contains(catalog.MustByName("torusFailure").ID) {
		t.Errorf("earlier fatal leaked into body: %v", last)
	}
	if !last.Contains(catalog.MustByName("coredumpCreated").ID) {
		t.Errorf("precursor missing: %v", last)
	}
}

func TestRuleTrainMinesChain(t *testing.T) {
	r := ruleWithWindow(15 * time.Minute)
	if err := r.Train(chainStream(60, 3*time.Hour, 4)); err != nil {
		t.Fatal(err)
	}
	if r.Rules().Len() == 0 {
		t.Fatal("no rules mined")
	}
	rule := r.Rules().Rules[0]
	text := rule.Format(itemName)
	if !strings.Contains(text, "coredumpCreated ==> loadProgramFailure") {
		t.Fatalf("unexpected top rule %q", text)
	}
	// 3 of 4 instances complete; mined confidence is fatal-anchored so
	// it reflects the share of coredump-containing event-sets headed by
	// loadProgramFailure (here ~1.0 since it is the only fatal).
	if rule.Confidence < 0.9 {
		t.Fatalf("confidence = %v", rule.Confidence)
	}
	if r.ChosenWindow() != 15*time.Minute {
		t.Fatalf("chosen window = %v", r.ChosenWindow())
	}
}

func TestRulePredictRenewalSemantics(t *testing.T) {
	r := ruleWithWindow(15 * time.Minute)
	if err := r.Train(chainStream(60, 3*time.Hour, 0)); err != nil {
		t.Fatal(err)
	}
	// Two coredump events 2 minutes apart then the fatal: the second
	// match must renew the standing alarm, not add a second warning.
	test := stream(
		0*time.Minute, "coredumpCreated",
		2*time.Minute, "coredumpCreated",
		6*time.Minute, "loadProgramFailure",
	)
	w := r.Predict(test, 10*time.Minute)
	if len(w) != 1 {
		t.Fatalf("got %d warnings, want 1 renewed alarm: %v", len(w), w)
	}
	if !w[0].Start.Equal(t0) {
		t.Errorf("Start = %v, want first evidence time", w[0].Start)
	}
	if !w[0].End.Equal(t0.Add(12 * time.Minute)) {
		t.Errorf("End = %v, want last evidence + window", w[0].End)
	}
	if !w[0].Covers(t0.Add(6 * time.Minute)) {
		t.Error("alarm does not cover the failure")
	}
}

func TestRulePredictSeparateEpisodesSeparateWarnings(t *testing.T) {
	r := ruleWithWindow(15 * time.Minute)
	if err := r.Train(chainStream(60, 3*time.Hour, 0)); err != nil {
		t.Fatal(err)
	}
	test := stream(
		0*time.Minute, "coredumpCreated",
		300*time.Minute, "coredumpCreated",
	)
	w := r.Predict(test, 10*time.Minute)
	if len(w) != 2 {
		t.Fatalf("got %d warnings, want 2 (episodes far apart): %v", len(w), w)
	}
}

func TestRulePredictIgnoresFatalsAndUnmatched(t *testing.T) {
	r := ruleWithWindow(15 * time.Minute)
	if err := r.Train(chainStream(60, 3*time.Hour, 0)); err != nil {
		t.Fatal(err)
	}
	test := stream(
		0*time.Minute, "torusFailure", // fatal: never triggers rule path
		10*time.Minute, "scrubCycleInfo", // matches nothing
	)
	if w := r.Predict(test, 10*time.Minute); len(w) != 0 {
		t.Fatalf("warnings on unmatched stream: %v", w)
	}
}

func TestRulePredictUntrained(t *testing.T) {
	r := NewRule()
	if w := r.Predict(chainStream(3, time.Hour, 0), time.Minute); w != nil {
		t.Fatalf("untrained Predict = %v", w)
	}
}

func TestRuleWindowSelectionPicksCoveringWindow(t *testing.T) {
	// Precursor sits 4 minutes before the fatal; candidate windows of
	// 1 minute cannot capture the chain, 10 minutes can. Selection must
	// pick the covering window.
	r := NewRule()
	r.Config.Candidates = []time.Duration{time.Minute, 10 * time.Minute}
	r.Config.MinSupport = 0.05
	r.Config.MaxBodyItemShare = 1
	r.Config.MinLift = 1e-9
	if err := r.Train(chainStream(80, 2*time.Hour, 0)); err != nil {
		t.Fatal(err)
	}
	if r.ChosenWindow() != 10*time.Minute {
		t.Fatalf("chosen window = %v, want 10m", r.ChosenWindow())
	}
}

func TestRuleApriorAndFPGrowthAgreeEndToEnd(t *testing.T) {
	events := chainStream(60, 3*time.Hour, 4)
	mk := func(m assoc.Miner) *Rule {
		r := ruleWithWindow(15 * time.Minute)
		r.Config.Miner = m
		if err := r.Train(events); err != nil {
			t.Fatal(err)
		}
		return r
	}
	ap := mk(&assoc.Apriori{})
	fp := mk(&assoc.FPGrowth{})
	if ap.Rules().Len() != fp.Rules().Len() {
		t.Fatalf("apriori %d rules, fpgrowth %d", ap.Rules().Len(), fp.Rules().Len())
	}
	test := chainStream(10, 2*time.Hour, 0)
	wa := ap.Predict(test, 10*time.Minute)
	wf := fp.Predict(test, 10*time.Minute)
	if len(wa) != len(wf) {
		t.Fatalf("prediction counts differ: %d vs %d", len(wa), len(wf))
	}
}

func TestScoreF1(t *testing.T) {
	events := stream(
		10*time.Minute, "torusFailure",
		300*time.Minute, "torusFailure",
	)
	// One warning covering the first fatal only.
	warnings := []Warning{{Start: t0, End: t0.Add(20 * time.Minute)}}
	got := scoreF1(warnings, events)
	// precision 1, recall 0.5 -> F1 = 2/3.
	if want := 2.0 / 3.0; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("scoreF1 = %v, want %v", got, want)
	}
	if scoreF1(nil, events) != 0 {
		t.Error("no warnings should score 0")
	}
	if scoreF1(warnings, nil) != 0 {
		t.Error("no fatals should score 0")
	}
}

func TestRuleName(t *testing.T) {
	if NewRule().Name() != "rule" {
		t.Error("bad name")
	}
}
