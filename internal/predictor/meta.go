package predictor

import (
	"fmt"
	"time"

	"bglpred/internal/assoc"
	"bglpred/internal/preprocess"
)

// Policy selects how the meta-learner arbitrates between base
// predictions. DESIGN.md §5 lists the alternatives as an ablation.
type Policy int

const (
	// PolicyCoverage is the paper's coverage-based stacked
	// generalization (§3.3): non-fatal events in the window route to
	// the rule method, fatal-only windows route to the statistical
	// method, and when both methods produce a prediction the higher
	// confidence wins.
	PolicyCoverage Policy = iota
	// PolicyStrictCoverage reads §3.3 case (2) literally: the
	// statistical method is consulted only when NO non-fatal event is
	// in the observation window. With realistic background noise the
	// window is rarely empty, so this variant starves the statistical
	// path — the ablation shows why the operative reading above is the
	// one that reproduces the paper's Figure 5.
	PolicyStrictCoverage
	// PolicyMaxConfidence always issues the higher-confidence
	// candidate, regardless of window coverage. In the event-driven
	// replay it coincides with PolicyCoverage; it is kept distinct for
	// configurations where the two could diverge.
	PolicyMaxConfidence
	// PolicyRulePriority suppresses statistical predictions whenever a
	// rule warning is standing, regardless of confidence.
	PolicyRulePriority
	// PolicyUnion issues every base prediction (no arbitration) — an
	// upper bound on recall and lower bound on precision.
	PolicyUnion
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyCoverage:
		return "coverage"
	case PolicyStrictCoverage:
		return "strict-coverage"
	case PolicyMaxConfidence:
		return "max-confidence"
	case PolicyRulePriority:
		return "rule-priority"
	case PolicyUnion:
		return "union"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Meta is the meta-learning predictor (paper §3.3): it trains both
// base methods on the same stream and adaptively integrates their
// predictions.
type Meta struct {
	// Stat and Rule are the base predictors; NewMeta wires defaults.
	Stat *Statistical
	Rule *Rule
	// Policy is the arbitration policy; zero value is the paper's
	// coverage-based policy.
	Policy Policy
}

// NewMeta returns a meta-learner over fresh base predictors with
// paper defaults.
func NewMeta() *Meta {
	return &Meta{Stat: NewStatistical(), Rule: NewRule()}
}

// Name implements Predictor.
func (m *Meta) Name() string { return "meta" }

// Train implements Predictor: both base methods learn from the same
// training stream (paper §3.3 learning-set step).
func (m *Meta) Train(events []preprocess.Event) error {
	return m.TrainSegments([][]preprocess.Event{events})
}

// TrainSegments implements SegmentedTrainer by forwarding the
// segments to both base methods.
func (m *Meta) TrainSegments(segments [][]preprocess.Event) error {
	if m.Stat == nil {
		m.Stat = NewStatistical()
	}
	if m.Rule == nil {
		m.Rule = NewRule()
	}
	if err := m.Stat.TrainSegments(segments); err != nil {
		return err
	}
	return m.Rule.TrainSegments(segments)
}

// Predict implements Predictor: it replays the stream through a
// Stepper and collects the alarms it raises.
func (m *Meta) Predict(events []preprocess.Event, window time.Duration) []Warning {
	var out []Warning
	s := m.Stepper(window)
	for i := range events {
		switch w, res := s.Step(&events[i]); res {
		case StepNew:
			out = append(out, w)
		case StepRenewed:
			out[len(out)-1] = w
		}
	}
	return out
}

// StepResult describes what one Stepper.Step did.
type StepResult int

const (
	// StepNone: the event raised no prediction.
	StepNone StepResult = iota
	// StepNew: a new alarm was raised.
	StepNew
	// StepRenewed: the standing alarm was renewed (extended coverage
	// and possibly upgraded confidence); the returned Warning is its
	// updated value and replaces the previous one.
	StepRenewed
)

// Stepper is the incremental form of the meta-learner: feed events in
// time order, get alarm transitions out. Both the offline evaluation
// (Predict) and the online engine (package online) run on it, so the
// deployed behaviour is exactly the evaluated behaviour.
type Stepper struct {
	m      *Meta
	window time.Duration

	deque   []stepEntry // non-fatal events in the last `window`
	current Warning
	active  bool
}

type stepEntry struct {
	at  time.Time
	sub int
}

// Stepper returns a fresh incremental predictor over the trained
// meta-learner with the given prediction window.
func (m *Meta) Stepper(window time.Duration) *Stepper {
	return &Stepper{m: m, window: window}
}

// Standing returns the alarm covering time t, if any.
func (s *Stepper) Standing(t time.Time) (Warning, bool) {
	if s.active && !t.After(s.current.End) {
		return s.current, true
	}
	return Warning{}, false
}

// emit routes a candidate warning through the standing-alarm renewal.
func (s *Stepper) emit(w Warning) (Warning, StepResult) {
	if s.active && !w.Start.After(s.current.End) {
		if w.End.After(s.current.End) {
			s.current.End = w.End
		}
		if w.Confidence > s.current.Confidence {
			s.current.Confidence = w.Confidence
			s.current.Detail = w.Detail
		}
		return s.current, StepRenewed
	}
	s.current = w
	s.active = true
	return s.current, StepNew
}

// Step feeds one unique event (in time order) into the meta-learner:
//
//   - a non-fatal arrival can complete a rule body -> rule alarm;
//   - a fatal arrival of a trigger category -> statistical candidate,
//     which the policy admits or suppresses against a standing rule
//     alarm (paper §3.3's coverage-based arbitration).
func (s *Stepper) Step(e *preprocess.Event) (Warning, StepResult) {
	m := s.m
	cutoff := e.Time.Add(-s.window)
	k := 0
	for k < len(s.deque) && s.deque[k].at.Before(cutoff) {
		k++
	}
	s.deque = s.deque[k:]

	if !e.Sub.IsFatal() {
		s.deque = append(s.deque, stepEntry{at: e.Time, sub: e.Sub.ID})
		if m.Rule == nil || m.Rule.rules == nil || m.Rule.rules.Len() == 0 {
			return Warning{}, StepNone
		}
		items := make([]assoc.Item, len(s.deque))
		for j, d := range s.deque {
			items[j] = d.sub
		}
		rule, ok := m.Rule.rules.BestMatch(assoc.NewItemset(items...))
		if !ok {
			return Warning{}, StepNone
		}
		return s.emit(Warning{
			At:         e.Time,
			Start:      e.Time,
			End:        e.Time.Add(s.window),
			Confidence: rule.Confidence,
			Source:     SourceRule,
			Detail:     rule.Format(itemName),
		})
	}

	// Fatal arrival: statistical candidate, policy-gated. The meta
	// prediction window applies directly, with no actionability lead
	// (see Statistical.triggerWithLead).
	cand, ok := m.Stat.triggerWithLead(e, s.window, 0)
	if !ok {
		return Warning{}, StepNone
	}
	alarm, active := s.Standing(e.Time)
	ruleStanding := active && alarm.Source == SourceRule
	admit := true
	switch m.Policy {
	case PolicyCoverage:
		// Paper case (3): both kinds of evidence in the window ->
		// higher confidence wins. Cases (1)/(2) follow naturally:
		// with no standing rule prediction the statistical candidate
		// is the only prediction and is admitted.
		if ruleStanding && alarm.Confidence >= cand.Confidence {
			admit = false
		}
	case PolicyStrictCoverage:
		if len(s.deque) > 0 {
			admit = false
		}
	case PolicyMaxConfidence:
		if ruleStanding && alarm.Confidence >= cand.Confidence {
			admit = false
		}
	case PolicyRulePriority:
		if ruleStanding {
			admit = false
		}
	case PolicyUnion:
		// always admit
	}
	if !admit {
		return Warning{}, StepNone
	}
	return s.emit(cand)
}
