package predictor

import (
	"fmt"
	"time"

	"bglpred/internal/preprocess"
)

// Policy selects how the meta-learner arbitrates between base
// predictions. DESIGN.md §5 lists the alternatives as an ablation.
type Policy int

const (
	// PolicyCoverage is the paper's coverage-based stacked
	// generalization (§3.3): non-fatal events in the window route to
	// the precursor methods, fatal-only windows route to the
	// point-of-failure method, and when both kinds of evidence produce
	// a prediction the higher confidence wins.
	PolicyCoverage Policy = iota
	// PolicyStrictCoverage reads §3.3 case (2) literally: the
	// statistical method is consulted only when NO non-fatal event is
	// in the observation window. With realistic background noise the
	// window is rarely empty, so this variant starves the statistical
	// path — the ablation shows why the operative reading above is the
	// one that reproduces the paper's Figure 5.
	PolicyStrictCoverage
	// PolicyMaxConfidence always issues the higher-confidence
	// candidate, regardless of window coverage. In the event-driven
	// replay it coincides with PolicyCoverage; it is kept distinct for
	// configurations where the two could diverge.
	PolicyMaxConfidence
	// PolicyRulePriority suppresses statistical predictions whenever a
	// precursor warning (rule or correlation-graph) is standing,
	// regardless of confidence.
	PolicyRulePriority
	// PolicyUnion issues every base prediction (no arbitration) — an
	// upper bound on recall and lower bound on precision.
	PolicyUnion
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyCoverage:
		return "coverage"
	case PolicyStrictCoverage:
		return "strict-coverage"
	case PolicyMaxConfidence:
		return "max-confidence"
	case PolicyRulePriority:
		return "rule-priority"
	case PolicyUnion:
		return "union"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Meta is the meta-learning predictor (paper §3.3): it trains its
// base methods on the same stream and adaptively integrates their
// predictions. The classic pair keeps typed fields; any further
// registered base predictor (e.g. the event-correlation-graph method)
// rides in Extras, and arbitration treats all bases uniformly:
// the most specific covering predictor wins, confidence breaks ties.
type Meta struct {
	// Stat and Rule are the paper's base predictors; NewMeta wires
	// defaults, and Train wires any that are nil unless the meta was
	// built from an explicit base selection (NewMetaBases).
	Stat *Statistical
	Rule *Rule
	// Extras are additional registered base predictors arbitrated
	// alongside the classic pair, in order.
	Extras []Base
	// Policy is the arbitration policy; zero value is the paper's
	// coverage-based policy.
	Policy Policy

	// explicit marks a meta built from an explicit base selection:
	// Train then trains exactly the given bases instead of wiring the
	// classic pair.
	explicit bool
}

// NewMeta returns a meta-learner over fresh base predictors with
// paper defaults.
func NewMeta() *Meta {
	return &Meta{Stat: NewStatistical(), Rule: NewRule()}
}

// NewMetaBases returns a meta-learner over exactly the given base
// predictors (typically built via NewBase from registry names). A
// *Statistical or *Rule lands in its typed field; everything else in
// Extras. Unlike the zero Meta, Train does not wire missing classic
// bases.
func NewMetaBases(bases ...Base) *Meta {
	m := &Meta{explicit: true}
	for _, b := range bases {
		switch t := b.(type) {
		case *Statistical:
			m.Stat = t
		case *Rule:
			m.Rule = t
		default:
			m.Extras = append(m.Extras, b)
		}
	}
	return m
}

// Bases returns the base predictors in arbitration order: the classic
// pair first (statistical, rule — when present), then Extras.
func (m *Meta) Bases() []Base {
	out := make([]Base, 0, 2+len(m.Extras))
	if m.Stat != nil {
		out = append(out, m.Stat)
	}
	if m.Rule != nil {
		out = append(out, m.Rule)
	}
	return append(out, m.Extras...)
}

// BaseNames returns the registry names of the bases, in arbitration
// order — the /v1/model "predictors" field.
func (m *Meta) BaseNames() []string {
	bases := m.Bases()
	out := make([]string, len(bases))
	for i, b := range bases {
		out[i] = b.Name()
	}
	return out
}

// Name implements Predictor.
func (m *Meta) Name() string { return "meta" }

// Train implements Predictor: every base method learns from the same
// training stream (paper §3.3 learning-set step).
func (m *Meta) Train(events []preprocess.Event) error {
	return m.TrainSegments([][]preprocess.Event{events})
}

// TrainSegments implements SegmentedTrainer by forwarding the
// segments to every base method.
func (m *Meta) TrainSegments(segments [][]preprocess.Event) error {
	if !m.explicit {
		if m.Stat == nil {
			m.Stat = NewStatistical()
		}
		if m.Rule == nil {
			m.Rule = NewRule()
		}
	}
	for _, b := range m.Bases() {
		if err := b.TrainSegments(segments); err != nil {
			return err
		}
	}
	return nil
}

// Predict implements Predictor: it replays the stream through a
// Stepper and collects the alarms it raises.
func (m *Meta) Predict(events []preprocess.Event, window time.Duration) []Warning {
	var out []Warning
	s := m.Stepper(window)
	for i := range events {
		switch w, res := s.Step(&events[i]); res {
		case StepNew:
			out = append(out, w)
		case StepRenewed:
			out[len(out)-1] = w
		}
	}
	return out
}

// StepResult describes what one Stepper.Step did.
type StepResult int

const (
	// StepNone: the event raised no prediction.
	StepNone StepResult = iota
	// StepNew: a new alarm was raised.
	StepNew
	// StepRenewed: the standing alarm was renewed (extended coverage
	// and possibly upgraded confidence); the returned Warning is its
	// updated value and replaces the previous one.
	StepRenewed
)

// Stepper is the incremental form of the meta-learner: feed events in
// time order, get alarm transitions out. Both the offline evaluation
// (Predict) and the online engine (package online) run on it, so the
// deployed behaviour is exactly the evaluated behaviour.
type Stepper struct {
	m      *Meta
	bases  []Base
	kinds  map[string]Kind // Warning.Source -> evidence kind
	window time.Duration

	deque   []StepObservation // non-fatal events in the last `window`
	current Warning
	active  bool
}

// Stepper returns a fresh incremental predictor over the trained
// meta-learner with the given prediction window.
func (m *Meta) Stepper(window time.Duration) *Stepper {
	bases := m.Bases()
	kinds := make(map[string]Kind, len(bases))
	for _, b := range bases {
		kinds[b.Name()] = b.Kind()
	}
	return &Stepper{m: m, bases: bases, kinds: kinds, window: window}
}

// Standing returns the alarm covering time t, if any.
func (s *Stepper) Standing(t time.Time) (Warning, bool) {
	if s.active && !t.After(s.current.End) {
		return s.current, true
	}
	return Warning{}, false
}

// emit routes a candidate warning through the standing-alarm renewal.
func (s *Stepper) emit(w Warning) (Warning, StepResult) {
	if s.active && !w.Start.After(s.current.End) {
		if w.End.After(s.current.End) {
			s.current.End = w.End
		}
		if w.Confidence > s.current.Confidence {
			s.current.Confidence = w.Confidence
			s.current.Detail = w.Detail
		}
		return s.current, StepRenewed
	}
	s.current = w
	s.active = true
	return s.current, StepNew
}

// Step feeds one unique event (in time order) into the meta-learner.
// Every base observes the event; the most specific candidate wins,
// confidence breaking ties (bases order breaking the rest). A
// point-of-failure candidate is additionally policy-gated against a
// standing precursor alarm (paper §3.3's coverage-based arbitration,
// generalized to N bases); precursor candidates always renew.
func (s *Stepper) Step(e *preprocess.Event) (Warning, StepResult) {
	cutoff := e.Time.Add(-s.window)
	k := 0
	for k < len(s.deque) && s.deque[k].At.Before(cutoff) {
		k++
	}
	s.deque = s.deque[k:]
	if !e.Sub.IsFatal() {
		s.deque = append(s.deque, StepObservation{At: e.Time, Sub: e.Sub.ID})
	}

	var best Candidate
	var bestBase Base
	for _, b := range s.bases {
		c, ok := b.Observe(e, s.deque, s.window)
		if !ok {
			continue
		}
		if bestBase == nil || c.Specificity > best.Specificity ||
			(c.Specificity == best.Specificity && c.Warning.Confidence > best.Warning.Confidence) {
			best, bestBase = c, b
		}
	}
	if bestBase == nil {
		return Warning{}, StepNone
	}

	if bestBase.Kind() == KindPointOfFailure {
		// Point-of-failure candidate (statistical), policy-gated
		// against a standing precursor alarm.
		alarm, active := s.Standing(e.Time)
		precursorStanding := active && s.kinds[alarm.Source] == KindPrecursor
		admit := true
		switch s.m.Policy {
		case PolicyCoverage:
			// Paper case (3): both kinds of evidence in the window ->
			// higher confidence wins. Cases (1)/(2) follow naturally:
			// with no standing precursor prediction the candidate is
			// the only prediction and is admitted.
			if precursorStanding && alarm.Confidence >= best.Warning.Confidence {
				admit = false
			}
		case PolicyStrictCoverage:
			if len(s.deque) > 0 {
				admit = false
			}
		case PolicyMaxConfidence:
			if precursorStanding && alarm.Confidence >= best.Warning.Confidence {
				admit = false
			}
		case PolicyRulePriority:
			if precursorStanding {
				admit = false
			}
		case PolicyUnion:
			// always admit
		}
		if !admit {
			return Warning{}, StepNone
		}
	}
	return s.emit(best.Warning)
}
