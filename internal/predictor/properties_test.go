package predictor

import (
	"testing"
	"time"

	"bglpred/internal/bglsim"
	"bglpred/internal/preprocess"
)

// generated returns a preprocessed small ANL log shared by the
// property tests.
func generated(t *testing.T) []preprocess.Event {
	t.Helper()
	gen, err := bglsim.Generate(bglsim.ANLProfile().Scaled(0.08))
	if err != nil {
		t.Fatal(err)
	}
	return preprocess.Run(gen.Events, preprocess.Options{}).Events
}

func TestMetaStepperEquivalentToPredict(t *testing.T) {
	// The batch evaluator and the incremental stepper must be the same
	// machine: replaying a stream through Stepper and collecting
	// transitions reproduces Predict exactly.
	events := generated(t)
	cut := len(events) * 3 / 4
	m := NewMeta()
	m.Rule.Config.RuleGenWindow = 15 * time.Minute
	if err := m.Train(events[:cut]); err != nil {
		t.Fatal(err)
	}
	test := events[cut:]
	window := 30 * time.Minute

	batch := m.Predict(test, window)

	var streamed []Warning
	s := m.Stepper(window)
	for i := range test {
		switch w, res := s.Step(&test[i]); res {
		case StepNew:
			streamed = append(streamed, w)
		case StepRenewed:
			streamed[len(streamed)-1] = w
		}
	}
	if len(batch) != len(streamed) {
		t.Fatalf("batch %d warnings, streamed %d", len(batch), len(streamed))
	}
	for i := range batch {
		if batch[i] != streamed[i] {
			t.Fatalf("warning %d differs:\n batch    %+v\n streamed %+v", i, batch[i], streamed[i])
		}
	}
}

func TestPredictorsDeterministic(t *testing.T) {
	events := generated(t)
	cut := len(events) * 3 / 4
	run := func() ([]Warning, []Warning, []Warning) {
		m := NewMeta()
		m.Rule.Config.RuleGenWindow = 15 * time.Minute
		if err := m.Train(events[:cut]); err != nil {
			t.Fatal(err)
		}
		w := 30 * time.Minute
		return m.Stat.Predict(events[cut:], w),
			m.Rule.Predict(events[cut:], w),
			m.Predict(events[cut:], w)
	}
	s1, r1, m1 := run()
	s2, r2, m2 := run()
	for name, pair := range map[string][2][]Warning{
		"statistical": {s1, s2}, "rule": {r1, r2}, "meta": {m1, m2},
	} {
		a, b := pair[0], pair[1]
		if len(a) != len(b) {
			t.Fatalf("%s: %d vs %d warnings across runs", name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: warning %d differs across runs", name, i)
			}
		}
	}
}

func TestWarningsInvariants(t *testing.T) {
	events := generated(t)
	cut := len(events) * 3 / 4
	m := NewMeta()
	m.Rule.Config.RuleGenWindow = 15 * time.Minute
	if err := m.Train(events[:cut]); err != nil {
		t.Fatal(err)
	}
	for _, window := range []time.Duration{5 * time.Minute, 30 * time.Minute, time.Hour} {
		for name, warnings := range map[string][]Warning{
			"statistical": m.Stat.Predict(events[cut:], window),
			"rule":        m.Rule.Predict(events[cut:], window),
			"meta":        m.Predict(events[cut:], window),
		} {
			var prevStart time.Time
			for i, w := range warnings {
				if !w.Start.Before(w.End) {
					t.Fatalf("%s@%v: warning %d has empty interval", name, window, i)
				}
				if w.Confidence <= 0 || w.Confidence > 1 {
					t.Fatalf("%s@%v: warning %d confidence %v", name, window, i, w.Confidence)
				}
				if w.Start.Before(prevStart) {
					t.Fatalf("%s@%v: warnings out of order at %d", name, window, i)
				}
				prevStart = w.Start
				if w.Source != SourceStatistical && w.Source != SourceRule {
					t.Fatalf("%s@%v: warning %d has source %q", name, window, i, w.Source)
				}
			}
			// Standing-alarm predictors never emit overlapping warnings.
			if name != "statistical" {
				for i := 1; i < len(warnings); i++ {
					if !warnings[i].Start.After(warnings[i-1].End) {
						t.Fatalf("%s@%v: warnings %d and %d overlap", name, window, i-1, i)
					}
				}
			}
		}
	}
}

func TestRuleRecallGrowsWithWindow(t *testing.T) {
	// Paper Figure 4's key shape: coverage of the test fatals rises
	// with the prediction window.
	events := generated(t)
	cut := len(events) * 3 / 4
	r := NewRule()
	r.Config.RuleGenWindow = 15 * time.Minute
	if err := r.Train(events[:cut]); err != nil {
		t.Fatal(err)
	}
	test := events[cut:]
	var fatals []time.Time
	for i := range test {
		if test[i].Sub.IsFatal() {
			fatals = append(fatals, test[i].Time)
		}
	}
	covered := func(window time.Duration) int {
		n := 0
		warnings := r.Predict(test, window)
		for _, f := range fatals {
			for _, w := range warnings {
				if w.Covers(f) {
					n++
					break
				}
			}
		}
		return n
	}
	small, large := covered(5*time.Minute), covered(time.Hour)
	if small > large {
		t.Fatalf("coverage fell with window: %d@5m vs %d@1h", small, large)
	}
	if large == 0 {
		t.Fatal("no coverage at 1h")
	}
}
