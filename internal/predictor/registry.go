package predictor

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// The base-predictor registry maps names to factories so that model
// artifacts (per-predictor sections), pipeline configuration
// (core.Config.Predictors) and tool flags (-predictors) can select
// base methods without linking against their packages directly. The
// statistical and rule methods register here; internal/ecg registers
// itself in its package init.

var (
	regMu      sync.Mutex
	registry   = make(map[string]BaseFactory)
	regOrder   []string
	regAliases = map[string]string{"stat": SourceStatistical}
)

// Register adds a base-predictor factory under a canonical name. It
// is meant to be called from package init functions; registering a
// duplicate or empty name panics, like gob.Register.
func Register(name string, f BaseFactory) {
	regMu.Lock()
	defer regMu.Unlock()
	if name == "" || f == nil {
		panic("predictor: Register with empty name or nil factory")
	}
	if _, dup := registry[name]; dup {
		panic("predictor: Register called twice for " + name)
	}
	if _, dup := regAliases[name]; dup {
		panic("predictor: Register name collides with alias " + name)
	}
	registry[name] = f
	regOrder = append(regOrder, name)
}

// Registered returns the canonical registered names, in registration
// order (the classic pair first, extensions after).
func Registered() []string {
	regMu.Lock()
	defer regMu.Unlock()
	return append([]string(nil), regOrder...)
}

// CanonicalName resolves aliases ("stat" -> "statistical"); unknown
// names pass through unchanged for NewBase to reject.
func CanonicalName(name string) string {
	name = strings.TrimSpace(name)
	if c, ok := regAliases[name]; ok {
		return c
	}
	return name
}

// NewBase builds a fresh, untrained base predictor by registry name
// (aliases accepted). Unknown names fail fast, listing the known set.
func NewBase(name string) (Base, error) {
	canonical := CanonicalName(name)
	regMu.Lock()
	f, ok := registry[canonical]
	regMu.Unlock()
	if !ok {
		return nil, fmt.Errorf("predictor: unknown base predictor %q (known: %s)",
			name, strings.Join(knownNames(), ", "))
	}
	return f(), nil
}

// Resolve canonicalizes and validates a predictor-name selection,
// rejecting unknown names and duplicates. It is the fail-fast half of
// the -predictors flag.
func Resolve(names []string) ([]string, error) {
	out := make([]string, 0, len(names))
	seen := make(map[string]bool, len(names))
	for _, name := range names {
		canonical := CanonicalName(name)
		regMu.Lock()
		_, ok := registry[canonical]
		regMu.Unlock()
		if !ok {
			return nil, fmt.Errorf("predictor: unknown base predictor %q (known: %s)",
				name, strings.Join(knownNames(), ", "))
		}
		if seen[canonical] {
			return nil, fmt.Errorf("predictor: base predictor %q selected twice", canonical)
		}
		seen[canonical] = true
		out = append(out, canonical)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("predictor: empty base predictor selection (known: %s)",
			strings.Join(knownNames(), ", "))
	}
	return out, nil
}

// knownNames lists canonical names plus aliases, sorted, for error
// messages.
func knownNames() []string {
	regMu.Lock()
	names := append([]string(nil), regOrder...)
	for alias := range regAliases {
		names = append(names, alias)
	}
	regMu.Unlock()
	sort.Strings(names)
	return names
}

func init() {
	Register(SourceStatistical, func() Base { return NewStatistical() })
	Register(SourceRule, func() Base { return NewRule() })
}
