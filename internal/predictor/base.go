package predictor

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"

	"bglpred/internal/assoc"
	"bglpred/internal/catalog"
	"bglpred/internal/preprocess"
	"bglpred/internal/stats"
)

// Kind classifies a base predictor's evidence for the meta-learner's
// coverage-based arbitration (paper §3.3, generalized): a precursor
// method predicts from non-fatal evidence observed in the window,
// while a point-of-failure method predicts from the fatal arrival
// itself. The policy gates point-of-failure candidates against a
// standing precursor alarm; precursor candidates always renew.
type Kind int

const (
	// KindPointOfFailure predicts at the fatal event (the statistical
	// method: "this failure will be followed by another"). It is the
	// zero value so that a standing alarm whose Source is no longer
	// registered — e.g. after a hot-swap to a model without that base —
	// never suppresses anything.
	KindPointOfFailure Kind = iota
	// KindPrecursor predicts from non-fatal precursor evidence (the
	// rule method, the event-correlation-graph method).
	KindPrecursor
)

// Candidate is one base predictor's proposed warning for the current
// event, with the specificity the meta-learner arbitrates on.
type Candidate struct {
	// Warning is the proposed prediction.
	Warning Warning
	// Specificity counts the observed events backing the prediction: a
	// rule match reports its body length, the statistical trigger
	// reports 1, the correlation graph reports its matched precursor
	// count. The most specific covering predictor wins; confidence
	// breaks ties (DESIGN.md §11).
	Specificity int
}

// Base is a registrable base predictor the meta-learner can arbitrate
// over. Beyond offline Train/Predict it supports the Stepper's
// incremental protocol (Observe) and the model artifact's
// per-predictor sections (State/SetState).
//
// Observe must be read-only on the receiver: one trained Base is
// shared by every shard's Stepper concurrently.
type Base interface {
	Predictor
	SegmentedTrainer
	// Kind classifies the evidence the predictor fires on.
	Kind() Kind
	// Observe considers one unique event in time order. recent holds
	// the non-fatal events inside the observation window, oldest
	// first, including e itself when e is non-fatal; window is the
	// prediction window. It returns the predictor's candidate warning
	// for this event, if any.
	Observe(e *preprocess.Event, recent []StepObservation, window time.Duration) (Candidate, bool)
	// State serializes the trained model (a gob payload private to the
	// implementation) for a version-2 artifact section. It errors when
	// the predictor is untrained.
	State() ([]byte, error)
	// SetState restores a trained model from a State payload.
	SetState(data []byte) error
}

// BaseFactory builds a fresh, untrained Base; the registry holds one
// per registered predictor name.
type BaseFactory func() Base

// PredictBase replays a test stream through a Base's Observe exactly
// as a Stepper would — sliding observation window, standing-alarm
// renewal — and returns the warnings raised. It is the offline
// Predict shared by every precursor-kind base predictor, so the
// evaluated behaviour is the deployed behaviour.
func PredictBase(b Base, events []preprocess.Event, window time.Duration) []Warning {
	var out []Warning
	var deque []StepObservation
	for i := range events {
		e := &events[i]
		cutoff := e.Time.Add(-window)
		k := 0
		for k < len(deque) && deque[k].At.Before(cutoff) {
			k++
		}
		deque = deque[k:]
		if !e.Sub.IsFatal() {
			deque = append(deque, StepObservation{At: e.Time, Sub: e.Sub.ID})
		}
		c, ok := b.Observe(e, deque, window)
		if !ok {
			continue
		}
		renewWarning(&out, c.Warning)
	}
	return out
}

// Kind implements Base: the statistical method predicts at the fatal
// arrival itself.
func (s *Statistical) Kind() Kind { return KindPointOfFailure }

// Observe implements Base: a fatal arrival of a trigger category is a
// candidate. The meta prediction window applies directly, with no
// actionability lead (see triggerWithLead).
func (s *Statistical) Observe(e *preprocess.Event, _ []StepObservation, window time.Duration) (Candidate, bool) {
	w, ok := s.triggerWithLead(e, window, 0)
	if !ok {
		return Candidate{}, false
	}
	return Candidate{Warning: w, Specificity: 1}, true
}

// statState is the gob payload of Statistical.State: configuration
// plus the learned temporal-correlation tables.
type statState struct {
	MinLead        time.Duration
	MaxWindow      time.Duration
	MinProbability float64
	MinCount       int
	FollowMinLead  time.Duration
	FollowWindow   time.Duration
	Total          map[int]int
	Followed       map[int]int
	Triggers       map[int]float64
}

// State implements Base.
func (s *Statistical) State() ([]byte, error) {
	if s.follow == nil {
		return nil, fmt.Errorf("predictor: statistical predictor is not trained")
	}
	st := statState{
		MinLead:        s.MinLead,
		MaxWindow:      s.MaxWindow,
		MinProbability: s.MinProbability,
		MinCount:       s.MinCount,
		FollowMinLead:  s.follow.MinLead,
		FollowWindow:   s.follow.Window,
		Total:          s.follow.Total,
		Followed:       s.follow.Followed,
		Triggers:       make(map[int]float64),
	}
	for m, conf := range s.Triggers() {
		st.Triggers[int(m)] = conf
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("predictor: encode statistical state: %w", err)
	}
	return buf.Bytes(), nil
}

// SetState implements Base.
func (s *Statistical) SetState(data []byte) error {
	var st statState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("predictor: decode statistical state: %w", err)
	}
	s.MinLead = st.MinLead
	s.MaxWindow = st.MaxWindow
	s.MinProbability = st.MinProbability
	s.MinCount = st.MinCount
	follow := &stats.FollowStats{
		MinLead:  st.FollowMinLead,
		Window:   st.FollowWindow,
		Total:    st.Total,
		Followed: st.Followed,
	}
	if follow.Total == nil {
		follow.Total = make(map[int]int)
	}
	if follow.Followed == nil {
		follow.Followed = make(map[int]int)
	}
	triggers := make(map[catalog.Main]float64, len(st.Triggers))
	for main, conf := range st.Triggers {
		triggers[catalog.Main(main)] = conf
	}
	s.SetTrained(follow, triggers)
	return nil
}

// Kind implements Base: rules fire on non-fatal precursor evidence.
func (r *Rule) Kind() Kind { return KindPrecursor }

// Observe implements Base: when the observation window's event set
// matches a rule body, the best matching rule is a candidate whose
// specificity is its body length.
func (r *Rule) Observe(e *preprocess.Event, recent []StepObservation, window time.Duration) (Candidate, bool) {
	if e.Sub.IsFatal() || r.rules == nil || r.rules.Len() == 0 {
		return Candidate{}, false
	}
	items := make([]assoc.Item, len(recent))
	for j, d := range recent {
		items[j] = d.Sub
	}
	rule, ok := r.rules.BestMatch(assoc.NewItemset(items...))
	if !ok {
		return Candidate{}, false
	}
	return Candidate{
		Warning: Warning{
			At:         e.Time,
			Start:      e.Time,
			End:        e.Time.Add(window),
			Confidence: rule.Confidence,
			Source:     SourceRule,
			Detail:     rule.Format(itemName),
		},
		Specificity: len(rule.Body),
	}, true
}

// ruleState is the gob payload of Rule.State: the mined rule set and
// its rule-generation window (the restore half of Rules and
// ChosenWindow, like the v1 artifact's RuleModel).
type ruleState struct {
	Window time.Duration
	Rules  []assoc.Rule
}

// State implements Base.
func (r *Rule) State() ([]byte, error) {
	if r.rules == nil {
		return nil, fmt.Errorf("predictor: rule predictor is not trained")
	}
	st := ruleState{Window: r.chosenWindow, Rules: make([]assoc.Rule, len(r.rules.Rules))}
	for i, rl := range r.rules.Rules {
		rl.Body = rl.Body.Clone()
		rl.Heads = rl.Heads.Clone()
		st.Rules[i] = rl
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("predictor: encode rule state: %w", err)
	}
	return buf.Bytes(), nil
}

// SetState implements Base.
func (r *Rule) SetState(data []byte) error {
	var st ruleState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("predictor: decode rule state: %w", err)
	}
	r.SetTrained(assoc.NewRuleSet(st.Rules), st.Window)
	return nil
}
