package predictor

import (
	"testing"
	"time"

	"bglpred/internal/assoc"
	"bglpred/internal/catalog"
	"bglpred/internal/preprocess"
)

// spyMiner records the transactions MineRules hands it, which are
// exactly the event-sets the rule-generation windows formed.
type spyMiner struct {
	tx []assoc.Transaction
}

func (s *spyMiner) Mine(tx []assoc.Transaction, minCount, maxLen int) []assoc.FrequentItemset {
	s.tx = append(s.tx, tx...)
	return nil
}

// seamStream builds two adjacent segments: A ends with a distinctive
// non-fatal precursor, B opens with a fatal 2 minutes later — inside
// any reasonable rule-generation window if the seam is ignored.
func seamStream() (a, b []preprocess.Event) {
	a = stream(
		0*time.Minute, "scrubCycleInfo",
		60*time.Minute, "coredumpCreated", // marker precursor, ends segment A
	)
	b = stream(
		62*time.Minute, "torusFailure", // fatal, opens segment B
		90*time.Minute, "scrubCycleInfo",
		95*time.Minute, "kernelPanicFailure",
	)
	return a, b
}

// TestRuleTrainSegmentsNoCrossSeamWindows is the fold-boundary
// leakage regression test for the rule predictor: a rule-generation
// window must not reach across the gap between training segments.
// Before the fix, CrossValidate concatenated events[:lo] and
// events[hi:], and the fatal opening the post-fold piece swept the
// pre-fold piece's trailing non-fatals into its event-set.
func TestRuleTrainSegmentsNoCrossSeamWindows(t *testing.T) {
	a, b := seamStream()
	marker := catalog.MustByName("coredumpCreated").ID

	hasMarkerWithFatal := func(tx []assoc.Transaction) bool {
		torus := catalog.MustByName("torusFailure").ID
		for _, set := range tx {
			if set.Contains(marker) && set.Contains(torus) {
				return true
			}
		}
		return false
	}

	// The concatenated stream demonstrates the leakage shape: the
	// torusFailure window reaches back into segment A.
	concat := append(append([]preprocess.Event(nil), a...), b...)
	leaky := &spyMiner{}
	r := NewRule()
	r.Config.RuleGenWindow = 15 * time.Minute
	r.Config.Miner = leaky
	if err := r.Train(concat); err != nil {
		t.Fatal(err)
	}
	if !hasMarkerWithFatal(leaky.tx) {
		t.Fatal("sanity: concatenated stream should pair the marker with the cross-seam fatal")
	}

	// Segmented training must not form that pair.
	spy := &spyMiner{}
	r = NewRule()
	r.Config.RuleGenWindow = 15 * time.Minute
	r.Config.Miner = spy
	if err := r.TrainSegments([][]preprocess.Event{a, b}); err != nil {
		t.Fatal(err)
	}
	if len(spy.tx) == 0 {
		t.Fatal("segmented training mined no transactions")
	}
	if hasMarkerWithFatal(spy.tx) {
		t.Fatal("rule-generation window leaked across the segment seam")
	}
}

// TestStatisticalTrainSegmentsNoCrossSeamFollow pins the same
// property for the statistical predictor: a fatal closing one segment
// is not "followed" by the fatal opening the next.
func TestStatisticalTrainSegmentsNoCrossSeamFollow(t *testing.T) {
	a := stream(0*time.Minute, "torusFailure")
	b := stream(10*time.Minute, "torusFailure") // within (5m, 1h] of a's fatal
	net := int(catalog.MustByName("torusFailure").Main)

	s := NewStatistical()
	if err := s.Train(append(append([]preprocess.Event(nil), a...), b...)); err != nil {
		t.Fatal(err)
	}
	if got := s.FollowStats().Followed[net]; got != 1 {
		t.Fatalf("sanity: concatenated stream should count 1 follow, got %d", got)
	}

	s = NewStatistical()
	if err := s.TrainSegments([][]preprocess.Event{a, b}); err != nil {
		t.Fatal(err)
	}
	if got := s.FollowStats().Followed[net]; got != 0 {
		t.Fatalf("follow window leaked across the segment seam: %d follows", got)
	}
	if got := s.FollowStats().Total[net]; got != 2 {
		t.Fatalf("merged totals = %d, want 2", got)
	}
}

// TestMetaTrainSegmentsForwards checks the meta-learner hands the
// segment structure to both base methods.
func TestMetaTrainSegmentsForwards(t *testing.T) {
	a, b := seamStream()
	spy := &spyMiner{}
	m := NewMeta()
	m.Rule.Config.RuleGenWindow = 15 * time.Minute
	m.Rule.Config.Miner = spy
	if err := m.TrainSegments([][]preprocess.Event{a, b}); err != nil {
		t.Fatal(err)
	}
	if m.Stat.FollowStats() == nil {
		t.Fatal("statistical base not trained")
	}
	marker := catalog.MustByName("coredumpCreated").ID
	torus := catalog.MustByName("torusFailure").ID
	for _, set := range spy.tx {
		if set.Contains(marker) && set.Contains(torus) {
			t.Fatal("meta training leaked a window across the segment seam")
		}
	}
}

// TestSplitSegmentsContiguity exercises the window-selection holdout
// split: the cut must partition without reordering, duplicating, or
// dropping events.
func TestSplitSegmentsContiguity(t *testing.T) {
	a, b := seamStream()
	segments := [][]preprocess.Event{a, b}
	total := len(a) + len(b)
	for cut := 0; cut <= total; cut++ {
		train, hold := splitSegments(segments, cut)
		n := 0
		for _, s := range train {
			n += len(s)
		}
		if n != cut {
			t.Fatalf("cut %d: train holds %d events", cut, n)
		}
		for _, s := range hold {
			n += len(s)
		}
		if n != total {
			t.Fatalf("cut %d: split covers %d of %d events", cut, n, total)
		}
	}
}
