package predictor

import (
	"testing"
	"time"

	"bglpred/internal/catalog"
	"bglpred/internal/preprocess"
	"bglpred/internal/raslog"
)

var t0 = time.Date(2005, 1, 21, 0, 0, 0, 0, time.UTC)

// ue builds a unique event of the named subcategory at time at.
func ue(at time.Time, name string) preprocess.Event {
	sub := catalog.MustByName(name)
	return preprocess.Event{
		Event: raslog.Event{
			Type:      raslog.EventTypeRAS,
			Time:      at,
			JobID:     1,
			EntryData: sub.Phrase,
			Facility:  sub.Facility,
			Severity:  sub.Severity,
		},
		Sub:       sub,
		Count:     1,
		Locations: 1,
	}
}

// stream builds a time-ordered event stream from (offset, subcategory)
// pairs.
func stream(pairs ...any) []preprocess.Event {
	var out []preprocess.Event
	for i := 0; i < len(pairs); i += 2 {
		out = append(out, ue(t0.Add(pairs[i].(time.Duration)), pairs[i+1].(string)))
	}
	return out
}

// correlatedTraining yields a training stream where network fatals are
// reliably followed by another fatal inside (5m, 1h], and kernel
// fatals never are.
func correlatedTraining(n int) []preprocess.Event {
	var out []preprocess.Event
	at := t0
	for i := 0; i < n; i++ {
		out = append(out, ue(at, "torusFailure"))
		out = append(out, ue(at.Add(10*time.Minute), "socketReadFailure"))
		out = append(out, ue(at.Add(3*time.Hour), "kernelPanicFailure"))
		at = at.Add(6 * time.Hour)
	}
	return out
}

func TestStatisticalLearnsTriggers(t *testing.T) {
	s := NewStatistical()
	s.MinCount = 5
	if err := s.Train(correlatedTraining(40)); err != nil {
		t.Fatal(err)
	}
	trig := s.Triggers()
	if _, ok := trig[catalog.Network]; !ok {
		t.Errorf("Network not learned as trigger: %v", trig)
	}
	if _, ok := trig[catalog.Kernel]; ok {
		t.Errorf("Kernel wrongly learned as trigger: %v", trig)
	}
	// Network fatals are always followed at +10m: probability 1.
	if p := trig[catalog.Network]; p < 0.95 {
		t.Errorf("Network trigger confidence = %v, want ~1", p)
	}
}

func TestStatisticalMinCountGuardsSmallSamples(t *testing.T) {
	s := NewStatistical()
	s.MinCount = 100
	s.Train(correlatedTraining(10))
	if len(s.Triggers()) != 0 {
		t.Errorf("triggers learned from undersized sample: %v", s.Triggers())
	}
}

func TestStatisticalForceTriggers(t *testing.T) {
	s := NewStatistical()
	s.ForceTriggers = []catalog.Main{catalog.Network, catalog.Iostream}
	s.Train(correlatedTraining(5))
	trig := s.Triggers()
	if len(trig) != 2 {
		t.Fatalf("forced triggers = %v", trig)
	}
	for _, m := range []catalog.Main{catalog.Network, catalog.Iostream} {
		if trig[m] <= 0 {
			t.Errorf("forced trigger %v has confidence %v", m, trig[m])
		}
	}
}

func TestStatisticalPredictWarningShape(t *testing.T) {
	s := NewStatistical()
	s.MinCount = 5
	s.Train(correlatedTraining(20))

	test := stream(
		0*time.Minute, "torusFailure", // trigger
		90*time.Minute, "kernelPanicFailure", // not a trigger
		100*time.Minute, "scrubCycleInfo", // not fatal
	)
	w := s.Predict(test, time.Hour)
	if len(w) != 1 {
		t.Fatalf("got %d warnings, want 1: %v", len(w), w)
	}
	if w[0].Source != SourceStatistical {
		t.Errorf("source = %q", w[0].Source)
	}
	if !w[0].Start.Equal(t0.Add(5 * time.Minute)) {
		t.Errorf("Start = %v, want trigger+5m actionability lead", w[0].Start)
	}
	if !w[0].End.Equal(t0.Add(time.Hour)) {
		t.Errorf("End = %v, want trigger+1h", w[0].End)
	}
	if w[0].Confidence <= 0 || w[0].Confidence > 1 {
		t.Errorf("confidence = %v", w[0].Confidence)
	}
}

func TestStatisticalLeadClampedForTinyWindows(t *testing.T) {
	s := NewStatistical()
	s.MinCount = 5
	s.Train(correlatedTraining(20))
	test := stream(0*time.Minute, "torusFailure")
	w := s.Predict(test, 2*time.Minute) // window below the 5m lead
	if len(w) != 1 {
		t.Fatalf("got %d warnings", len(w))
	}
	if !w[0].Start.Before(w[0].End) {
		t.Errorf("degenerate window not clamped: %+v", w[0])
	}
}

func TestStatisticalPredictUntrained(t *testing.T) {
	s := NewStatistical()
	if w := s.Predict(stream(0*time.Minute, "torusFailure"), time.Hour); w != nil {
		t.Fatalf("untrained Predict = %v", w)
	}
}

func TestStatisticalZeroLeadForMeta(t *testing.T) {
	s := NewStatistical()
	s.MinCount = 5
	s.Train(correlatedTraining(20))
	ev := ue(t0, "torusFailure")
	w, ok := s.triggerWithLead(&ev, time.Hour, 0)
	if !ok {
		t.Fatal("trigger refused")
	}
	if !w.Start.Equal(t0) {
		t.Errorf("zero-lead Start = %v, want trigger time", w.Start)
	}
}

func TestStatisticalWarningCovers(t *testing.T) {
	w := Warning{Start: t0, End: t0.Add(time.Hour)}
	if w.Covers(t0) {
		t.Error("Start is exclusive")
	}
	if !w.Covers(t0.Add(time.Hour)) {
		t.Error("End is inclusive")
	}
	if !w.Covers(t0.Add(time.Minute)) {
		t.Error("interior not covered")
	}
	if w.Covers(t0.Add(2 * time.Hour)) {
		t.Error("beyond End covered")
	}
}

func TestStatisticalName(t *testing.T) {
	if NewStatistical().Name() != "statistical" {
		t.Error("bad name")
	}
}
