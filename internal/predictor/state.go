package predictor

import (
	"time"

	"bglpred/internal/assoc"
	"bglpred/internal/catalog"
	"bglpred/internal/stats"
)

// This file is the serialization seam of the predictor package: it
// exposes exactly the state a trained predictor and a running Stepper
// carry, so internal/model can persist a predictor to a versioned
// artifact and internal/lifecycle can checkpoint and hot-swap live
// engines without reaching into unexported fields.

// SetTrained installs previously learned state into the statistical
// predictor, as Train would have: the follow statistics and the
// trigger categories with their confidences. It is the restore half of
// FollowStats and Triggers; internal/model uses it to rebuild a
// predictor from a saved artifact.
func (s *Statistical) SetTrained(follow *stats.FollowStats, triggers map[catalog.Main]float64) {
	s.withDefaults()
	s.follow = follow
	s.triggers = make(map[catalog.Main]bool, len(triggers))
	s.confidence = make(map[catalog.Main]float64, len(triggers))
	for m, conf := range triggers {
		s.triggers[m] = true
		s.confidence[m] = conf
	}
}

// SetTrained installs a previously mined rule set and its
// rule-generation window, as Train would have. It is the restore half
// of Rules and ChosenWindow.
func (r *Rule) SetTrained(rules *assoc.RuleSet, window time.Duration) {
	r.Config = r.Config.withDefaults()
	r.rules = rules
	r.chosenWindow = window
}

// StepObservation is one non-fatal event held in a Stepper's
// observation window.
type StepObservation struct {
	// At is the event time.
	At time.Time
	// Sub is the event's subcategory ID.
	Sub int
}

// StepperState is the complete mutable state of a Stepper: the
// observation window of recent non-fatal events and the standing
// alarm, if any. It is plain data (gob- and JSON-serializable) so a
// checkpoint can persist it and a model hot-swap can transplant it
// onto a Stepper over a new meta-learner.
type StepperState struct {
	// Deque holds the non-fatal events inside the observation window,
	// oldest first.
	Deque []StepObservation
	// Current is the standing alarm; meaningful only when Active.
	Current Warning
	// Active reports whether an alarm is standing.
	Active bool
}

// State exports the Stepper's mutable state.
func (s *Stepper) State() StepperState {
	st := StepperState{Current: s.current, Active: s.active}
	if len(s.deque) > 0 {
		st.Deque = append([]StepObservation(nil), s.deque...)
	}
	return st
}

// Restore replaces the Stepper's mutable state with a previously
// exported one. The prediction window and trained model are not part
// of the state: restoring onto a Stepper over a retrained meta-learner
// is exactly how a hot-swap preserves the observation window and the
// standing alarm.
func (s *Stepper) Restore(st StepperState) {
	s.deque = append(s.deque[:0], st.Deque...)
	s.current = st.Current
	s.active = st.Active
}

// Window reports the prediction window the Stepper was built with.
func (s *Stepper) Window() time.Duration { return s.window }
