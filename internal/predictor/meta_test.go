package predictor

import (
	"testing"
	"time"

	"bglpred/internal/catalog"
	"bglpred/internal/preprocess"
)

// mixedTraining interleaves a rule-predictable chain family with a
// statistically predictable network cascade family.
func mixedTraining(n int) []preprocess.Event {
	var out []preprocess.Event
	at := t0
	for i := 0; i < n; i++ {
		// Chain episode: coredump -> loadProgramFailure.
		out = append(out, ue(at, "coredumpCreated"))
		out = append(out, ue(at.Add(4*time.Minute), "loadProgramFailure"))
		// Cascade episode: three network fatals 10 minutes apart.
		base := at.Add(2 * time.Hour)
		out = append(out, ue(base, "torusFailure"))
		out = append(out, ue(base.Add(10*time.Minute), "rtsFailure"))
		out = append(out, ue(base.Add(20*time.Minute), "treeNetworkFailure"))
		at = at.Add(6 * time.Hour)
	}
	return out
}

func trainedMeta(t *testing.T, policy Policy) *Meta {
	t.Helper()
	m := NewMeta()
	m.Policy = policy
	m.Rule.Config.RuleGenWindow = 15 * time.Minute
	m.Rule.Config.MinSupport = 0.05
	m.Rule.Config.MaxBodyItemShare = 1
	m.Rule.Config.MinLift = 1e-9
	m.Stat.MinCount = 5
	if err := m.Train(mixedTraining(40)); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMetaTrainsBothBases(t *testing.T) {
	m := trainedMeta(t, PolicyCoverage)
	if m.Rule.Rules().Len() == 0 {
		t.Error("rule base not trained")
	}
	if _, ok := m.Stat.Triggers()[catalog.Network]; !ok {
		t.Errorf("statistical base missed Network trigger: %v", m.Stat.Triggers())
	}
}

func TestMetaCombinesBothSources(t *testing.T) {
	m := trainedMeta(t, PolicyCoverage)
	test := stream(
		0*time.Minute, "coredumpCreated", // rule evidence
		4*time.Minute, "loadProgramFailure",
		300*time.Minute, "torusFailure", // statistical evidence
		310*time.Minute, "rtsFailure",
	)
	w := m.Predict(test, 30*time.Minute)
	var sources = map[string]int{}
	for _, x := range w {
		sources[x.Source]++
	}
	if sources[SourceRule] == 0 {
		t.Errorf("no rule-sourced warnings: %v", w)
	}
	if sources[SourceStatistical] == 0 {
		t.Errorf("no statistical-sourced warnings: %v", w)
	}
}

func TestMetaRenewsAlarmsAcrossCascade(t *testing.T) {
	m := trainedMeta(t, PolicyCoverage)
	// A 3-member cascade within one window: the engine should keep one
	// standing alarm, renewed by each member.
	test := stream(
		0*time.Minute, "torusFailure",
		10*time.Minute, "rtsFailure",
		20*time.Minute, "treeNetworkFailure",
	)
	w := m.Predict(test, 30*time.Minute)
	if len(w) != 1 {
		t.Fatalf("got %d alarms, want 1 renewed: %v", len(w), w)
	}
	if !w[0].Covers(t0.Add(20 * time.Minute)) {
		t.Error("alarm lost coverage of the last member")
	}
}

func TestMetaStrictCoverageSuppressesStatWithNoise(t *testing.T) {
	m := trainedMeta(t, PolicyStrictCoverage)
	// Non-fatal noise sits in the window, so the literal reading of
	// §3.3 case (2) refuses the statistical path.
	test := stream(
		0*time.Minute, "scrubCycleInfo",
		5*time.Minute, "torusFailure",
	)
	if w := m.Predict(test, 30*time.Minute); len(w) != 0 {
		t.Fatalf("strict coverage issued %v", w)
	}
	// With an empty window the statistical path fires.
	test = stream(0*time.Minute, "torusFailure")
	if w := m.Predict(test, 30*time.Minute); len(w) != 1 {
		t.Fatalf("strict coverage on clean window issued %d warnings", len(w))
	}
}

func TestMetaRulePrioritySuppressesStat(t *testing.T) {
	m := trainedMeta(t, PolicyRulePriority)
	test := stream(
		0*time.Minute, "coredumpCreated", // raises rule alarm
		5*time.Minute, "torusFailure", // stat candidate, must be suppressed
	)
	w := m.Predict(test, 30*time.Minute)
	if len(w) != 1 || w[0].Source != SourceRule {
		t.Fatalf("rule-priority warnings = %v", w)
	}
}

func TestMetaUnionIssuesEverything(t *testing.T) {
	union := trainedMeta(t, PolicyUnion)
	coverage := trainedMeta(t, PolicyCoverage)
	test := mixedTraining(10)
	wu := union.Predict(test, 30*time.Minute)
	wc := coverage.Predict(test, 30*time.Minute)
	if len(wu) < len(wc) {
		t.Fatalf("union issued fewer warnings (%d) than coverage (%d)", len(wu), len(wc))
	}
}

func TestMetaCoverageHigherConfidenceWins(t *testing.T) {
	m := trainedMeta(t, PolicyCoverage)
	// Rule alarm stands with the chain's high mined confidence; the
	// statistical candidate (lower confidence) must be suppressed.
	ruleConf := m.Rule.Rules().Rules[0].Confidence
	statConf := m.Stat.Triggers()[catalog.Network]
	if statConf >= ruleConf {
		t.Skipf("fixture assumption violated: stat %v >= rule %v", statConf, ruleConf)
	}
	test := stream(
		0*time.Minute, "coredumpCreated",
		5*time.Minute, "torusFailure",
	)
	w := m.Predict(test, 30*time.Minute)
	if len(w) != 1 || w[0].Source != SourceRule {
		t.Fatalf("coverage warnings = %v, want single rule alarm", w)
	}
}

func TestMetaPredictUntrainedRuleBase(t *testing.T) {
	m := NewMeta()
	m.Stat.MinCount = 5
	if err := m.Stat.Train(mixedTraining(20)); err != nil {
		t.Fatal(err)
	}
	// Rule base untrained: meta must still serve statistical warnings.
	test := stream(0*time.Minute, "torusFailure")
	w := m.Predict(test, 30*time.Minute)
	if len(w) != 1 || w[0].Source != SourceStatistical {
		t.Fatalf("warnings = %v", w)
	}
}

func TestMetaName(t *testing.T) {
	if NewMeta().Name() != "meta" {
		t.Error("bad name")
	}
}

func TestPolicyString(t *testing.T) {
	cases := map[Policy]string{
		PolicyCoverage:       "coverage",
		PolicyStrictCoverage: "strict-coverage",
		PolicyMaxConfidence:  "max-confidence",
		PolicyRulePriority:   "rule-priority",
		PolicyUnion:          "union",
		Policy(99):           "Policy(99)",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("Policy(%d).String() = %q, want %q", int(p), got, want)
		}
	}
}

func TestMetaTrainWiresNilBases(t *testing.T) {
	m := &Meta{}
	if err := m.Train(mixedTraining(5)); err != nil {
		t.Fatal(err)
	}
	if m.Stat == nil || m.Rule == nil {
		t.Fatal("Train left base predictors nil")
	}
}
