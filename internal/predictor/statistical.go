package predictor

import (
	"fmt"
	"time"

	"bglpred/internal/catalog"
	"bglpred/internal/preprocess"
	"bglpred/internal/stats"
)

// Statistical is the statistical-based base predictor (paper §3.2.1).
// Training measures, per main category, the probability that a fatal
// event is followed by another fatal event within (MinLead, MaxWindow]
// — the temporal correlation of paper Figure 2. Categories whose
// follow probability clears MinProbability become triggers (on the
// paper's logs these are Network and Iostream). At prediction time
// every fatal event of a trigger category raises a warning covering
// (t + MinLead, t + W].
type Statistical struct {
	// MinLead is the actionability lead: predictions nearer than this
	// are useless for proactive action (paper: 5 minutes). Default 5m.
	MinLead time.Duration
	// MaxWindow is the correlation window learned during training
	// (paper: 1 hour). Default 1h.
	MaxWindow time.Duration
	// MinProbability qualifies a category as a trigger. Default 0.4
	// (on the calibrated logs this selects exactly Network and
	// Iostream, the categories the paper hardcodes).
	MinProbability float64
	// MinCount is the minimum training occurrences for a category to
	// qualify (avoids spurious triggers from tiny samples). Default 20.
	MinCount int
	// ForceTriggers, when non-empty, bypasses trigger learning and
	// pins the trigger set (the paper hardcodes Network and Iostream).
	ForceTriggers []catalog.Main

	follow     *stats.FollowStats
	triggers   map[catalog.Main]bool
	confidence map[catalog.Main]float64
}

// NewStatistical returns a predictor with the paper's defaults.
func NewStatistical() *Statistical { return &Statistical{} }

func (s *Statistical) withDefaults() {
	if s.MinLead == 0 {
		s.MinLead = 5 * time.Minute
	}
	if s.MaxWindow == 0 {
		s.MaxWindow = time.Hour
	}
	if s.MinProbability == 0 {
		s.MinProbability = 0.4
	}
	if s.MinCount == 0 {
		s.MinCount = 20
	}
}

// Name implements Predictor.
func (s *Statistical) Name() string { return SourceStatistical }

// Train implements Predictor: it learns per-category follow
// probabilities over the training stream's fatal events.
func (s *Statistical) Train(events []preprocess.Event) error {
	return s.TrainSegments([][]preprocess.Event{events})
}

// TrainSegments implements SegmentedTrainer: follow statistics are
// analyzed per segment and merged, so no correlation window spans the
// gap between segments. A fatal at the end of one segment is never
// scored as "followed" by a fatal that opens the next — across a
// cross-validation seam those two events can be days apart in the
// real stream.
func (s *Statistical) TrainSegments(segments [][]preprocess.Event) error {
	s.withDefaults()
	s.follow = &stats.FollowStats{
		MinLead:  s.MinLead,
		Window:   s.MaxWindow,
		Total:    make(map[int]int),
		Followed: make(map[int]int),
	}
	for _, seg := range segments {
		var fatal []stats.TimedEvent
		for i := range seg {
			if seg[i].Sub.IsFatal() {
				fatal = append(fatal, stats.TimedEvent{
					Time:     seg[i].Time,
					Category: int(seg[i].Sub.Main),
				})
			}
		}
		s.follow.Merge(stats.AnalyzeFollow(fatal, s.MinLead, s.MaxWindow))
	}
	s.triggers = make(map[catalog.Main]bool)
	s.confidence = make(map[catalog.Main]float64)

	if len(s.ForceTriggers) > 0 {
		for _, m := range s.ForceTriggers {
			s.triggers[m] = true
			s.confidence[m] = s.follow.Probability(int(m))
			if s.confidence[m] == 0 {
				s.confidence[m] = s.MinProbability
			}
		}
		return nil
	}
	for _, c := range s.follow.Categories() {
		p := s.follow.Probability(c)
		if p >= s.MinProbability && s.follow.Total[c] >= s.MinCount {
			s.triggers[catalog.Main(c)] = true
			s.confidence[catalog.Main(c)] = p
		}
	}
	return nil
}

// Triggers returns the learned trigger categories and their
// confidences (the learned analogue of the paper's "network or I/O
// stream failure" rule).
func (s *Statistical) Triggers() map[catalog.Main]float64 {
	out := make(map[catalog.Main]float64, len(s.confidence))
	for m := range s.triggers {
		out[m] = s.confidence[m]
	}
	return out
}

// FollowStats exposes the learned temporal-correlation statistics.
func (s *Statistical) FollowStats() *stats.FollowStats { return s.follow }

// trigger returns a warning for the event if it is a trigger fatal,
// with the standalone predictor's actionability lead.
func (s *Statistical) trigger(e *preprocess.Event, window time.Duration) (Warning, bool) {
	return s.triggerWithLead(e, window, s.MinLead)
}

// triggerWithLead is trigger with an explicit lead. The meta-learner
// passes lead 0: inside the meta prediction window there is no
// separate actionability floor (paper §3.3 simply "applies the
// statistical based method for failure prediction" over the window).
func (s *Statistical) triggerWithLead(e *preprocess.Event, window time.Duration, lead time.Duration) (Warning, bool) {
	if !e.Sub.IsFatal() || !s.triggers[e.Sub.Main] {
		return Warning{}, false
	}
	if lead >= window {
		// Degenerate configuration: keep a sliver of coverage.
		lead = window / 2
	}
	return Warning{
		At:         e.Time,
		Start:      e.Time.Add(lead),
		End:        e.Time.Add(window),
		Confidence: s.confidence[e.Sub.Main],
		Source:     SourceStatistical,
		Detail:     fmt.Sprintf("%s failure followed by another failure p=%.3f", e.Sub.Main, s.confidence[e.Sub.Main]),
	}, true
}

// Predict implements Predictor.
func (s *Statistical) Predict(events []preprocess.Event, window time.Duration) []Warning {
	if s.follow == nil {
		return nil
	}
	var out []Warning
	for i := range events {
		if w, ok := s.trigger(&events[i], window); ok {
			out = append(out, w)
		}
	}
	return out
}
