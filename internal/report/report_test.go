package report

import (
	"strings"
	"testing"
	"time"

	"bglpred/internal/eval"
)

func TestTableRenderAligned(t *testing.T) {
	tb := NewTable("Table X", "name", "count")
	tb.AddRow("alpha", 1)
	tb.AddRow("b", 123456)
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Table X" {
		t.Fatalf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Fatalf("header = %q", lines[1])
	}
	if !strings.Contains(lines[2], "----") {
		t.Fatalf("separator = %q", lines[2])
	}
	// Columns align: "alpha" and "b" rows have count starting at the
	// same offset.
	offA := strings.Index(lines[3], "1")
	offB := strings.Index(lines[4], "123456")
	if offA != offB {
		t.Fatalf("misaligned columns:\n%s", out)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestTableFormatsFloatsAndDurations(t *testing.T) {
	tb := NewTable("", "w", "p")
	tb.AddRow(15*time.Minute, 0.51234567)
	out := tb.Render()
	if !strings.Contains(out, "15min") {
		t.Errorf("duration not minute-formatted: %s", out)
	}
	if !strings.Contains(out, "0.5123") {
		t.Errorf("float not 4-decimal: %s", out)
	}
	tb2 := NewTable("", "w")
	tb2.AddRow(90 * time.Second)
	if !strings.Contains(tb2.Render(), "1m30s") {
		t.Errorf("odd duration mangled: %s", tb2.Render())
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("ignored title", "a", "b")
	tb.AddRow(1, 2)
	got := tb.CSV()
	want := "a,b\n1,2\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func sweep() []eval.SweepPoint {
	mk := func(w time.Duration, tp, fp, cov, tot int) eval.SweepPoint {
		var r eval.CVResult
		o := eval.Outcome{Warnings: tp + fp, TruePositive: tp, FalsePositive: fp,
			TotalFatal: tot, PredictedFatal: cov}
		r.Folds = []eval.Outcome{o}
		r.MeanPrecision = o.Precision()
		r.MeanRecall = o.Recall()
		r.Pooled = o
		return eval.SweepPoint{Window: w, Result: r}
	}
	return []eval.SweepPoint{
		mk(5*time.Minute, 8, 2, 10, 40),
		mk(time.Hour, 7, 3, 25, 40),
	}
}

func TestSweepTable(t *testing.T) {
	tb := SweepTable("Figure 4", sweep())
	out := tb.Render()
	for _, want := range []string{"Figure 4", "5min", "60min", "0.8000", "0.6250"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestSweepComparisonTable(t *testing.T) {
	paper := map[time.Duration][2]float64{
		5 * time.Minute: {0.88, 0.64},
	}
	tb := SweepComparisonTable("Figure 5", sweep(), paper)
	out := tb.Render()
	if !strings.Contains(out, "0.8800") {
		t.Errorf("paper value missing:\n%s", out)
	}
	// The 1h row has no paper reference: dashes.
	if !strings.Contains(out, "-") {
		t.Errorf("missing dash placeholders:\n%s", out)
	}
}

func TestEmptyTable(t *testing.T) {
	tb := NewTable("empty", "only")
	out := tb.Render()
	if !strings.Contains(out, "only") {
		t.Fatalf("header missing: %q", out)
	}
	if tb.CSV() != "only\n" {
		t.Fatalf("CSV = %q", tb.CSV())
	}
}
