// Package report renders experiment results as aligned ASCII tables
// and CSV series, the output format of cmd/bglbench and the paper
// reproduction harness.
package report

import (
	"fmt"
	"strings"
	"time"

	"bglpred/internal/eval"
)

// Table is a titled grid with a header row.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		case time.Duration:
			row[i] = formatDuration(v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render returns the aligned ASCII form.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	return b.String()
}

// CSV returns the comma-separated form (no title).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ","))
	b.WriteByte('\n')
	for _, row := range t.rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// formatDuration renders durations in the paper's minute-based style.
func formatDuration(d time.Duration) string {
	if d%time.Minute == 0 {
		return fmt.Sprintf("%dmin", int(d/time.Minute))
	}
	return d.String()
}

// SweepTable renders a prediction-window sweep (paper Figures 4/5) as
// a window/precision/recall table.
func SweepTable(title string, points []eval.SweepPoint) *Table {
	t := NewTable(title, "window", "precision", "recall")
	for _, pt := range points {
		t.AddRow(pt.Window, pt.Result.MeanPrecision, pt.Result.MeanRecall)
	}
	return t
}

// SweepComparisonTable renders measured precision/recall beside
// paper-reported values at matching windows.
func SweepComparisonTable(title string, points []eval.SweepPoint, paper map[time.Duration][2]float64) *Table {
	t := NewTable(title, "window", "precision", "recall", "paper-precision", "paper-recall")
	for _, pt := range points {
		if ref, ok := paper[pt.Window]; ok {
			t.AddRow(pt.Window, pt.Result.MeanPrecision, pt.Result.MeanRecall, ref[0], ref[1])
		} else {
			t.AddRow(pt.Window, pt.Result.MeanPrecision, pt.Result.MeanRecall, "-", "-")
		}
	}
	return t
}
