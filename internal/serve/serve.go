// Package serve is the deployed form of the online prediction engine
// (paper §3.3): an HTTP service that ingests raw RAS records over
// POST /v1/ingest (newline-delimited, pipe or NDJSON dialect), fans
// them out to N sharded online.Engine instances keyed by the
// rack/midplane prefix of each record's location, and exposes the
// resulting alarms over a pull endpoint (GET /v1/alerts), a push
// stream (GET /v1/alerts/stream, server-sent events), a health probe
// (GET /healthz), and a Prometheus-style text exposition
// (GET /metrics).
//
// Each shard owns one engine, one bounded channel, and one goroutine;
// a full channel blocks the ingest handler, which is the service's
// backpressure. Records within one request preserve arrival order per
// shard, so each engine still sees its substream in CMCS log order.
package serve

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"bglpred/internal/online"
	"bglpred/internal/predictor"
	"bglpred/internal/raslog"
)

// Config parameterizes the service. The zero value serves four shards
// with the online package's defaults.
type Config struct {
	// Shards is the number of engine shards (default 4). Records are
	// routed by the rack/midplane prefix of their location, so all
	// evidence for one midplane — the granularity jobs are scheduled
	// at — lands on one engine.
	Shards int
	// QueueDepth is the per-shard channel capacity (default 1024).
	// A full queue blocks ingestion: backpressure, not loss.
	QueueDepth int
	// History is the capacity of the recent-alerts ring buffer served
	// by GET /v1/alerts (default 256).
	History int
	// MinConfidence suppresses alerts below this confidence from the
	// alert surfaces (they still count as engine activity).
	MinConfidence float64
	// Window and the thresholds parameterize each shard's engine
	// (zero values take the online package defaults).
	Window            time.Duration
	TemporalThreshold time.Duration
	SpatialThreshold  time.Duration
	// Model identifies the trained model the server starts with
	// (surfaced by GET /v1/model). Zero-value fields get defaults:
	// Version 1, LoadedAt now.
	Model ModelInfo
	// Observer, when set, sees every record accepted by /v1/ingest, in
	// request order, on the request goroutine — the model-lifecycle
	// subsystem's tap for its sliding retraining window. It must be
	// cheap and must not block.
	Observer func(raslog.Event)
	// Reload, when set, backs POST /v1/model/reload: it should retrain
	// or re-read the model and hot-swap it via SwapModel before
	// returning.
	Reload func() error
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.History <= 0 {
		c.History = 256
	}
	return c
}

// Alert is one alarm as served over the HTTP API.
type Alert struct {
	// Seq is a server-assigned monotonically increasing sequence
	// number (also the SSE event id).
	Seq int64 `json:"seq"`
	// Shard is the engine shard that raised the alarm.
	Shard int `json:"shard"`
	// At is the event timestamp that triggered the prediction; the
	// alarm covers (Start, End].
	At    time.Time `json:"at"`
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	// Confidence, Source and Detail mirror predictor.Warning.
	Confidence float64 `json:"confidence"`
	Source     string  `json:"source"`
	Detail     string  `json:"detail"`
}

// IngestResponse is the body of a POST /v1/ingest reply.
type IngestResponse struct {
	// Accepted counts records decoded and enqueued by this request.
	Accepted int64 `json:"accepted"`
	// RejectedTotal is the server-lifetime count of records rejected
	// by an engine (out of log order).
	RejectedTotal int64 `json:"rejected_total"`
	// Error describes the decode failure that stopped the request
	// early, if any.
	Error string `json:"error,omitempty"`
}

// AlertsResponse is the body of a GET /v1/alerts reply.
type AlertsResponse struct {
	// Standing lists the alarm currently in force on each shard that
	// has one (evaluated at that shard's last-seen event time).
	Standing []Alert `json:"standing"`
	// Recent is the ring buffer of the newest alerts, oldest first.
	Recent []Alert `json:"recent"`
	// TotalAlerts counts every alert raised since startup (the ring
	// may have evicted older ones).
	TotalAlerts int64 `json:"total_alerts"`
}

// shardMsg is one unit of work on a shard channel: a record, or a
// barrier when done is non-nil.
type shardMsg struct {
	ev   raslog.Event
	at   time.Time // enqueue time, for the ingest-latency histogram
	done *sync.WaitGroup
}

// shard is one engine plus its feed.
type shard struct {
	id       int
	ch       chan shardMsg
	eng      *online.Engine
	rejected atomic.Int64 // records the engine refused (out of order)
}

// Server is the sharded prediction service. It implements
// http.Handler; Close drains the shards.
type Server struct {
	cfg    Config
	mux    *http.ServeMux
	shards []*shard
	wg     sync.WaitGroup

	// closeMu is held shared by in-flight ingest requests and
	// exclusively by Close, so shard channels never see a send after
	// close.
	closeMu sync.RWMutex
	closed  bool

	start      time.Time
	parseErrs  atomic.Int64
	ingestReqs atomic.Int64
	latency    histogram

	// model is the RCU-published identity of the serving model; swaps
	// replace the pointer after the engines have switched over.
	model atomic.Pointer[ModelInfo]
	swaps atomic.Int64

	history alertLog
	broker  broker
}

// New builds a server over a trained meta-learner. Each shard gets an
// independent streaming engine (a fresh Stepper over the shared,
// read-only meta-learner).
func New(meta *predictor.Meta, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		mux:   http.NewServeMux(),
		start: time.Now(),
	}
	s.latency.init()
	s.history.init(cfg.History)
	s.broker.init()
	for i := 0; i < cfg.Shards; i++ {
		sh := &shard{id: i, ch: make(chan shardMsg, cfg.QueueDepth)}
		sh.eng = online.New(meta, online.Config{
			Window:            cfg.Window,
			TemporalThreshold: cfg.TemporalThreshold,
			SpatialThreshold:  cfg.SpatialThreshold,
			OnAlert:           s.onAlert(i),
		})
		s.shards = append(s.shards, sh)
		s.wg.Add(1)
		go s.runShard(sh)
	}
	info := cfg.Model
	if info.Version == 0 {
		info.Version = 1
	}
	if info.LoadedAt.IsZero() {
		info.LoadedAt = s.start
	}
	s.model.Store(&info)
	s.mux.HandleFunc("/v1/ingest", s.handleIngest)
	s.mux.HandleFunc("/v1/alerts", s.handleAlerts)
	s.mux.HandleFunc("/v1/alerts/stream", s.handleStream)
	s.mux.HandleFunc("/v1/model", s.handleModel)
	s.mux.HandleFunc("/v1/model/reload", s.handleModelReload)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close drains and stops the shards: in-flight ingest requests finish,
// the queues run dry, and the SSE subscribers are disconnected. The
// server rejects new ingestion afterwards; read endpoints keep
// working. Close is idempotent.
func (s *Server) Close() error {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return nil
	}
	s.closed = true
	for _, sh := range s.shards {
		close(sh.ch)
	}
	s.closeMu.Unlock()
	s.wg.Wait() // drain: every queued record reaches its engine
	s.broker.close()
	return nil
}

// runShard is the per-shard worker: it owns all ingestion into one
// engine, so the engine sees a single writer in channel order.
func (s *Server) runShard(sh *shard) {
	defer s.wg.Done()
	for msg := range sh.ch {
		if msg.done != nil {
			msg.done.Done()
			continue
		}
		if _, err := sh.eng.Ingest(&msg.ev); err != nil {
			sh.rejected.Add(1)
		}
		s.latency.observe(time.Since(msg.at))
	}
}

// onAlert builds the engine callback for shard i. It runs on the
// shard goroutine, outside the engine's state lock.
func (s *Server) onAlert(i int) func(predictor.Warning) {
	return func(w predictor.Warning) {
		if w.Confidence < s.cfg.MinConfidence {
			return
		}
		a := Alert{
			Shard:      i,
			At:         w.At,
			Start:      w.Start,
			End:        w.End,
			Confidence: w.Confidence,
			Source:     w.Source,
			Detail:     w.Detail,
		}
		s.history.add(&a) // assigns Seq
		s.broker.publish(a)
	}
}

// shardFor routes a location to a shard by its rack/midplane prefix.
// Locations below midplane level collapse to their midplane, so all
// evidence for one scheduling unit shares an engine; unknown
// locations go to shard 0.
func (s *Server) shardFor(loc raslog.Location) *shard {
	mp := loc.MidplaneOf()
	var key int
	switch mp.Kind {
	case raslog.KindUnknown:
		key = 0
	case raslog.KindRack:
		key = mp.Rack * 2
	default:
		key = mp.Rack*2 + mp.Midplane
	}
	return s.shards[key%len(s.shards)]
}

// rejectedTotal sums engine-rejected records across shards.
func (s *Server) rejectedTotal() int64 {
	var n int64
	for _, sh := range s.shards {
		n += sh.rejected.Load()
	}
	return n
}

// handleIngest streams the request body through the raslog decoder,
// routing each record to its shard. The reply is written only after
// every record of this request has been processed by its engine (a
// per-shard barrier), so a 200 means the alert surfaces reflect the
// batch.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	s.ingestReqs.Add(1)

	var resp IngestResponse
	touched := make([]bool, len(s.shards))
	rd := raslog.NewReader(r.Body)
	for {
		ev, err := rd.Read()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				s.parseErrs.Add(1)
				resp.Error = err.Error()
			}
			break
		}
		if s.cfg.Observer != nil {
			s.cfg.Observer(ev)
		}
		sh := s.shardFor(ev.Location)
		sh.ch <- shardMsg{ev: ev, at: time.Now()}
		touched[sh.id] = true
		resp.Accepted++
	}

	// Barrier: wait until each touched shard has drained this
	// request's records.
	var barrier sync.WaitGroup
	for i, t := range touched {
		if t {
			barrier.Add(1)
			s.shards[i].ch <- shardMsg{done: &barrier}
		}
	}
	barrier.Wait()

	resp.RejectedTotal = s.rejectedTotal()
	code := http.StatusOK
	if resp.Error != "" {
		code = http.StatusBadRequest
	}
	writeJSON(w, code, resp)
}

// handleAlerts serves the standing alarms and the recent-alert ring.
func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	var resp AlertsResponse
	resp.Standing = []Alert{}
	for i, sh := range s.shards {
		// One snapshot per shard: the standing alarm comes from the same
		// consistent view a checkpoint persists.
		snap := sh.eng.Snapshot()
		if alarm := snap.Standing; alarm != nil {
			resp.Standing = append(resp.Standing, Alert{
				Shard:      i,
				At:         alarm.At,
				Start:      alarm.Start,
				End:        alarm.End,
				Confidence: alarm.Confidence,
				Source:     alarm.Source,
				Detail:     alarm.Detail,
			})
		}
	}
	resp.Recent, resp.TotalAlerts = s.history.snapshot()
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz is the liveness/readiness probe.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.closeMu.RLock()
	closed := s.closed
	s.closeMu.RUnlock()
	status, code := "ok", http.StatusOK
	if closed {
		status, code = "draining", http.StatusServiceUnavailable
	}
	// Standing alarms come from the same per-shard snapshot checkpoints
	// persist, so "drained but still carrying predictions" is visible
	// here exactly as it would be in a checkpoint.
	standing := 0
	for _, sh := range s.shards {
		if sh.eng.Snapshot().Standing != nil {
			standing++
		}
	}
	writeJSON(w, code, map[string]any{
		"status":          status,
		"shards":          len(s.shards),
		"standing_alarms": standing,
		"model_version":   s.model.Load().Version,
		"uptime_seconds":  time.Since(s.start).Seconds(),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		// The status line is already out; nothing to do but log-free
		// best effort (the client sees a truncated body).
		_ = err
	}
}

// alertLog is the fixed-capacity ring of recent alerts.
type alertLog struct {
	mu   sync.Mutex
	buf  []Alert
	cap  int
	next int64 // total alerts ever added; also the next Seq
}

func (l *alertLog) init(capacity int) {
	l.cap = capacity
	l.buf = make([]Alert, 0, capacity)
}

// add assigns the alert's Seq and records it.
func (l *alertLog) add(a *Alert) {
	l.mu.Lock()
	defer l.mu.Unlock()
	a.Seq = l.next
	if len(l.buf) < l.cap {
		l.buf = append(l.buf, *a)
	} else {
		l.buf[l.next%int64(l.cap)] = *a
	}
	l.next++
}

// snapshot returns the ring contents oldest-first plus the lifetime
// alert count.
func (l *alertLog) snapshot() ([]Alert, int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Alert, 0, len(l.buf))
	if len(l.buf) < l.cap {
		out = append(out, l.buf...)
	} else {
		head := l.next % int64(l.cap)
		out = append(out, l.buf[head:]...)
		out = append(out, l.buf[:head]...)
	}
	return out, l.next
}
