// Package serve is the deployed form of the online prediction engine
// (paper §3.3): an HTTP service that ingests raw RAS records over
// POST /v1/ingest (newline-delimited pipe/NDJSON dialect, or the
// binary wire-frame format negotiated via
// Content-Type: application/x-bglbin), fans
// them out to N sharded online.Engine instances keyed by the
// rack/midplane prefix of each record's location, and exposes the
// resulting alarms over a pull endpoint (GET /v1/alerts), a push
// stream (GET /v1/alerts/stream, server-sent events), a health probe
// (GET /healthz), a quarantine inspection endpoint
// (GET /v1/quarantine), and a Prometheus-style text exposition
// (GET /metrics).
//
// Each shard owns one engine, one bounded channel, and one supervised
// goroutine; a full channel blocks the ingest handler briefly
// (backpressure), and a channel that stays full past the shed timeout
// fails the request with 429 instead of wedging the client. Records
// within one request preserve arrival order per shard, so each engine
// still sees its substream in CMCS log order.
//
// Resilience properties (see README "Failure modes and recovery"):
//
//   - A panic on a shard worker is isolated to that shard: the
//     supervisor rebuilds the engine from its last good state
//     snapshot and resumes the queue. Alerts already raised live in
//     the server-side history ring and are never lost; the standing
//     alarm survives inside the snapshot; at most SnapshotEvery
//     records of dedup/window evidence are lost per restart.
//   - Malformed or unclassifiable ingest lines are quarantined (a
//     bounded ring inspectable at /v1/quarantine) instead of failing
//     the batch or silently vanishing.
//   - Every ingest request runs under a deadline, and saturation is
//     shed with 429 plus a degraded flag on /healthz, so a stalled
//     shard degrades the service instead of accumulating wedged
//     connections.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"bglpred/internal/faultinject"
	"bglpred/internal/ledger"
	"bglpred/internal/online"
	"bglpred/internal/predictor"
	"bglpred/internal/raslog"
)

// Config parameterizes the service. The zero value serves four shards
// with the online package's defaults.
type Config struct {
	// Shards is the number of engine shards (default 4). Records are
	// routed by the rack/midplane prefix of their location, so all
	// evidence for one midplane — the granularity jobs are scheduled
	// at — lands on one engine.
	Shards int
	// QueueDepth is the per-shard channel capacity (default 1024).
	// A full queue blocks ingestion up to ShedTimeout: backpressure
	// first, load-shedding after.
	QueueDepth int
	// History is the capacity of the recent-alerts ring buffer served
	// by GET /v1/alerts (default 256).
	History int
	// QuarantineCap bounds the ring of malformed ingest records kept
	// for inspection at GET /v1/quarantine (default 128).
	QuarantineCap int
	// MinConfidence suppresses alerts below this confidence from the
	// alert surfaces (they still count as engine activity).
	MinConfidence float64
	// RequestTimeout bounds one POST /v1/ingest request end to end,
	// including queue waits and the completion barrier (default 60 s;
	// negative disables). An expired deadline answers 503 with the
	// records accepted so far.
	RequestTimeout time.Duration
	// ShedTimeout is how long one record may wait on a saturated shard
	// queue before the request is shed with 429 (default 1 s; negative
	// sheds immediately when a queue is full).
	ShedTimeout time.Duration
	// SnapshotEvery is the shard supervisor's state-snapshot cadence
	// in records (default 1024). It bounds what a shard panic can
	// lose: the records processed since the last snapshot.
	SnapshotEvery int
	// StreamHeartbeat is the SSE comment-heartbeat interval on
	// GET /v1/alerts/stream (default 15 s; negative disables), which
	// lets dead subscriber connections be detected and reaped even
	// when no alerts flow.
	StreamHeartbeat time.Duration
	// Window and the thresholds parameterize each shard's engine
	// (zero values take the online package defaults).
	Window            time.Duration
	TemporalThreshold time.Duration
	SpatialThreshold  time.Duration
	// Model identifies the trained model the server starts with
	// (surfaced by GET /v1/model). Zero-value fields get defaults:
	// Version 1, LoadedAt now.
	Model ModelInfo
	// ShardBy, when set, overrides the default rack/midplane-modulo
	// shard routing: it receives the record's location and the shard
	// count and returns the shard index (reduced modulo the count).
	// The cluster layer uses it to make a single reference node
	// partition a stream exactly as a consistent-hash-routed gate
	// would, so the two can be compared alert-for-alert.
	ShardBy func(loc raslog.Location, shards int) int
	// Observer, when set, sees every record accepted by /v1/ingest, in
	// request order, on the request goroutine — the model-lifecycle
	// subsystem's tap for its sliding retraining window. It must be
	// cheap and must not block.
	Observer func(raslog.Event)
	// Reload, when set, backs POST /v1/model/reload: it should retrain
	// or re-read the model and hot-swap it via SwapModel before
	// returning.
	Reload func() error
	// AuxMetrics, when set, is invoked at the end of GET /metrics to
	// append extra exposition lines (the daemon wires lifecycle
	// retry/give-up counters through it).
	AuxMetrics func(io.Writer)
	// Inject is the fault-injection harness consulted at the serving
	// layer's fault points (shard panic/slow, ingest corruption). Nil
	// — the production configuration — compiles every fault point down
	// to a nil-receiver check.
	Inject *faultinject.Injector
	// Ledger, when set, receives a tamper-evident audit trail: the
	// digest of every accepted ingest batch and every emitted alert is
	// appended (group-committed, one fsync per batch), GET /v1/proofs
	// serves client-side verifiable inclusion proofs, /healthz and
	// /metrics report the ledger root and sequence, and /metrics gains
	// the bglledger_ families.
	Ledger *ledger.Ledger
	// AuxHealth, when set, is invoked with the /healthz response map
	// before it is written, so the daemon can add lifecycle facts
	// (last-checkpoint age) without the serve layer knowing about them.
	AuxHealth func(map[string]any)
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.History <= 0 {
		c.History = 256
	}
	if c.QuarantineCap <= 0 {
		c.QuarantineCap = 128
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.ShedTimeout == 0 {
		c.ShedTimeout = time.Second
	}
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 1024
	}
	if c.StreamHeartbeat == 0 {
		c.StreamHeartbeat = 15 * time.Second
	}
	return c
}

// degradedHold is how long after a load-shed /healthz keeps reporting
// degraded (the queue may drain instantly; the signal should not).
const degradedHold = 15 * time.Second

// Alert is one alarm as served over the HTTP API.
type Alert struct {
	// Seq is a server-assigned monotonically increasing sequence
	// number (also the SSE event id).
	Seq int64 `json:"seq"`
	// Shard is the engine shard that raised the alarm.
	Shard int `json:"shard"`
	// At is the event timestamp that triggered the prediction; the
	// alarm covers (Start, End].
	At    time.Time `json:"at"`
	Start time.Time `json:"start"`
	End   time.Time `json:"end"`
	// Confidence, Source and Detail mirror predictor.Warning.
	Confidence float64 `json:"confidence"`
	Source     string  `json:"source"`
	Detail     string  `json:"detail"`
}

// IngestResponse is the body of a POST /v1/ingest reply.
type IngestResponse struct {
	// Accepted counts records decoded and enqueued by this request.
	Accepted int64 `json:"accepted"`
	// Quarantined counts this request's undecodable (or
	// fault-injected-corrupt) lines, parked in the quarantine ring
	// instead of failing the batch.
	Quarantined int64 `json:"quarantined,omitempty"`
	// RejectedTotal is the server-lifetime count of records rejected
	// by an engine (out of log order).
	RejectedTotal int64 `json:"rejected_total"`
	// Error describes what stopped the request early, if anything: a
	// stream-level read failure (400), a saturated shard (429), or an
	// expired request deadline (503). Per-line decode failures no
	// longer stop a request; they quarantine.
	Error string `json:"error,omitempty"`
}

// AlertsResponse is the body of a GET /v1/alerts reply.
type AlertsResponse struct {
	// Standing lists the alarm currently in force on each shard that
	// has one (evaluated at that shard's last-seen event time).
	Standing []Alert `json:"standing"`
	// Recent is the ring buffer of the newest alerts, oldest first.
	Recent []Alert `json:"recent"`
	// TotalAlerts counts every alert raised since startup (the ring
	// may have evicted older ones).
	TotalAlerts int64 `json:"total_alerts"`
}

// shardMsg is one unit of work on a shard channel: a record, a batch
// of records (the wire-frame path; evs non-empty), or a barrier when
// done is non-nil.
type shardMsg struct {
	ev   raslog.Event
	evs  []raslog.Event
	at   time.Time // enqueue time, for the ingest-latency histogram
	done *sync.WaitGroup
}

// n is the record count this message carries.
func (m *shardMsg) n() int {
	if len(m.evs) > 0 {
		return len(m.evs)
	}
	return 1
}

// shard is one engine plus its feed. The engine lives behind an
// atomic pointer because the supervisor replaces it wholesale when a
// panic escapes the worker: observability readers must never see a
// half-dead engine (whose internal mutex a panic may have wedged).
type shard struct {
	id       int
	ch       chan shardMsg
	eng      atomic.Pointer[online.Engine]
	rejected atomic.Int64 // records the engine refused (out of order)
	restarts atomic.Int64 // supervisor restarts after worker panics

	// lastGood is the supervisor's most recent consistent engine-state
	// snapshot — what a restart restores from. Written by the shard
	// goroutine, read by the supervisor on the same goroutine after a
	// recover, and refreshed by RestoreShards at startup.
	lastGood  atomic.Pointer[online.State]
	sinceSnap int // records since lastGood; shard goroutine only
}

func (sh *shard) engine() *online.Engine { return sh.eng.Load() }

// Server is the sharded prediction service. It implements
// http.Handler; Close drains the shards.
type Server struct {
	cfg    Config
	mux    *http.ServeMux
	shards []*shard
	wg     sync.WaitGroup

	// meta is the currently served trained model; the supervisor reads
	// it when rebuilding a crashed shard's engine, and SwapModel
	// publishes retrained models through it before touching engines.
	meta atomic.Pointer[predictor.Meta]

	// closeMu is held shared by in-flight ingest requests and
	// exclusively by Close, so shard channels never see a send after
	// close.
	closeMu sync.RWMutex
	closed  bool

	start      time.Time
	parseErrs  atomic.Int64
	ingestReqs atomic.Int64
	shedTotal  atomic.Int64
	lastShed   atomic.Int64 // unixnano of the most recent shed, 0 if none
	deadlined  atomic.Int64 // ingest requests cut short by their deadline
	latency    histogram

	// model is the RCU-published identity of the serving model; swaps
	// replace the pointer after the engines have switched over.
	model atomic.Pointer[ModelInfo]
	swaps atomic.Int64

	history    alertLog
	quarantine quarantineLog
	broker     broker

	// Audit-ledger append outcomes (both 0 when cfg.Ledger is nil).
	ledgerAppends atomic.Int64
	ledgerErrs    atomic.Int64
}

// New builds a server over a trained meta-learner. Each shard gets an
// independent streaming engine (a fresh Stepper over the shared,
// read-only meta-learner).
func New(meta *predictor.Meta, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		mux:   http.NewServeMux(),
		start: time.Now(),
	}
	s.meta.Store(meta)
	s.latency.init()
	s.history.init(cfg.History)
	s.quarantine.init(cfg.QuarantineCap)
	s.broker.init()
	for i := 0; i < cfg.Shards; i++ {
		sh := &shard{id: i, ch: make(chan shardMsg, cfg.QueueDepth)}
		sh.eng.Store(s.newEngine(i))
		s.shards = append(s.shards, sh)
		s.wg.Add(1)
		go s.runShard(sh)
	}
	info := cfg.Model
	if info.Version == 0 {
		info.Version = 1
	}
	if info.LoadedAt.IsZero() {
		info.LoadedAt = s.start
	}
	if info.Predictors == nil {
		info.Predictors = meta.BaseNames()
	}
	s.model.Store(&info)
	s.mux.HandleFunc("/v1/ingest", s.handleIngest)
	s.mux.HandleFunc("/v1/alerts", s.handleAlerts)
	s.mux.HandleFunc("/v1/alerts/stream", s.handleStream)
	s.mux.HandleFunc("/v1/quarantine", s.handleQuarantine)
	s.mux.HandleFunc("/v1/proofs", s.handleProofs)
	s.mux.HandleFunc("/v1/model", s.handleModel)
	s.mux.HandleFunc("/v1/model/reload", s.handleModelReload)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// newEngine builds a fresh engine for shard i over the currently
// published meta-learner.
func (s *Server) newEngine(i int) *online.Engine {
	return online.New(s.meta.Load(), online.Config{
		Window:            s.cfg.Window,
		TemporalThreshold: s.cfg.TemporalThreshold,
		SpatialThreshold:  s.cfg.SpatialThreshold,
		OnAlert:           s.onAlert(i),
	})
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close drains and stops the shards: in-flight ingest requests finish,
// the queues run dry, and the SSE subscribers are disconnected. The
// server rejects new ingestion afterwards; read endpoints keep
// working. Close is idempotent.
func (s *Server) Close() error {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return nil
	}
	s.closed = true
	for _, sh := range s.shards {
		close(sh.ch)
	}
	s.closeMu.Unlock()
	s.wg.Wait() // drain: every queued record reaches its engine
	s.broker.close()
	return nil
}

// runShard supervises the per-shard worker: shardLoop owns all
// ingestion into one engine, and any panic that escapes it — an
// engine bug, a poisonous record, an injected fault — is contained
// here. The supervisor discards the suspect engine (a panic mid-step
// can leave its internal mutex held), rebuilds a fresh one over the
// current model, restores the last good state snapshot, and resumes
// the same queue. Alerts already published live in the server-side
// history ring, so none are lost; the standing alarm rides inside the
// snapshot; at most SnapshotEvery records of compression/window
// evidence are lost per restart.
func (s *Server) runShard(sh *shard) {
	defer s.wg.Done()
	for !s.shardLoop(sh) {
		sh.restarts.Add(1)
		eng := s.newEngine(sh.id)
		if st := sh.lastGood.Load(); st != nil {
			// Restore cannot fail here: the engine is fresh by
			// construction. A nil lastGood restarts cold.
			_ = eng.Restore(*st)
		}
		sh.eng.Store(eng)
		sh.sinceSnap = 0
	}
}

// shardLoop consumes the shard queue until it closes (returning true)
// or a panic escapes a message (returning false to the supervisor).
func (s *Server) shardLoop(sh *shard) (clean bool) {
	defer func() {
		if r := recover(); r != nil {
			clean = false
		}
	}()
	for msg := range sh.ch {
		if msg.done != nil {
			msg.done.Done()
			continue
		}
		_ = s.cfg.Inject.Fire(faultinject.ShardSlow) // delay-only point
		if len(msg.evs) > 0 {
			// Wire-frame batch: one lock acquisition for the lot.
			if rej := sh.engine().IngestBatch(msg.evs); rej > 0 {
				sh.rejected.Add(rej)
			}
			recycleBatch(msg.evs)
		} else if _, err := sh.engine().Ingest(&msg.ev); err != nil {
			sh.rejected.Add(1)
		}
		s.latency.observe(time.Since(msg.at))
		if sh.sinceSnap += msg.n(); sh.sinceSnap >= s.cfg.SnapshotEvery {
			st := sh.engine().State()
			sh.lastGood.Store(&st)
			sh.sinceSnap = 0
		}
		// The panic point sits after the snapshot update, so an
		// injected crash at SnapshotEvery=1 is provably lossless — the
		// chaos acceptance test's exact-continuity half.
		_ = s.cfg.Inject.Fire(faultinject.ShardPanic)
	}
	return true
}

// Restarts sums supervisor restarts across shards.
func (s *Server) Restarts() int64 {
	var n int64
	for _, sh := range s.shards {
		n += sh.restarts.Load()
	}
	return n
}

// onAlert builds the engine callback for shard i. It runs on the
// shard goroutine, outside the engine's state lock.
func (s *Server) onAlert(i int) func(predictor.Warning) {
	return func(w predictor.Warning) {
		if w.Confidence < s.cfg.MinConfidence {
			return
		}
		a := Alert{
			Shard:      i,
			At:         w.At,
			Start:      w.Start,
			End:        w.End,
			Confidence: w.Confidence,
			Source:     w.Source,
			Detail:     w.Detail,
		}
		s.history.add(&a) // assigns Seq
		s.broker.publish(a)
		s.appendAlertRecord(a)
	}
}

// shardFor routes a location to a shard by its rack/midplane prefix.
// Locations below midplane level collapse to their midplane, so all
// evidence for one scheduling unit shares an engine; unknown
// locations go to shard 0.
func (s *Server) shardFor(loc raslog.Location) *shard {
	if s.cfg.ShardBy != nil {
		i := s.cfg.ShardBy(loc, len(s.shards)) % len(s.shards)
		if i < 0 {
			i += len(s.shards)
		}
		return s.shards[i]
	}
	mp := loc.MidplaneOf()
	var key int
	switch mp.Kind {
	case raslog.KindUnknown:
		key = 0
	case raslog.KindRack:
		key = mp.Rack * 2
	default:
		key = mp.Rack*2 + mp.Midplane
	}
	return s.shards[key%len(s.shards)]
}

// rejectedTotal sums engine-rejected records across shards.
func (s *Server) rejectedTotal() int64 {
	var n int64
	for _, sh := range s.shards {
		n += sh.rejected.Load()
	}
	return n
}

// degraded reports whether the service is in degraded mode: it shed
// load within the last degradedHold, or a shard queue is saturated
// right now. Surfaced on /healthz and /metrics so operators (and load
// balancers doing readiness) see saturation before clients see 429s.
func (s *Server) degraded() bool {
	if last := s.lastShed.Load(); last != 0 && time.Since(time.Unix(0, last)) < degradedHold {
		return true
	}
	for _, sh := range s.shards {
		if len(sh.ch) >= cap(sh.ch) {
			return true
		}
	}
	return false
}

// noteShed records a load-shed for the degraded-mode window.
func (s *Server) noteShed() {
	s.shedTotal.Add(1)
	s.lastShed.Store(time.Now().UnixNano())
}

// handleIngest streams the request body through the raslog decoder,
// routing each record to its shard. Undecodable lines are quarantined,
// not fatal. The reply is written only after every record of this
// request has been processed by its engine (a per-shard barrier), so a
// 200 means the alert surfaces reflect the batch. The whole request
// runs under RequestTimeout; a saturated shard sheds with 429.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	s.ingestReqs.Add(1)

	ctx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}

	var resp IngestResponse
	var code int
	touched := make([]bool, len(s.shards))
	// The ledger digest streams alongside decoding — one pass over the
	// body, no buffering of the batch.
	body, digest := s.teeIngestBody(r.Body)
	if r.Header.Get("Content-Type") == raslog.WireContentType {
		code = s.ingestWire(ctx, body, &resp, touched)
	} else {
		code = s.ingestText(ctx, body, &resp, touched)
	}

	// Barrier: wait until each touched shard has drained this
	// request's records, bounded by the request deadline (enqueued
	// records are processed regardless; the deadline only stops the
	// confirmation wait).
	if !s.barrier(ctx, touched) && code == http.StatusOK {
		s.deadlined.Add(1)
		resp.Error = "request deadline exceeded before all records were confirmed"
		code = http.StatusServiceUnavailable
	}

	// Record the accepted batch in the audit ledger before replying:
	// a 200 means the batch is both processed and auditable.
	s.appendIngestRecord(digest, &resp)

	resp.RejectedTotal = s.rejectedTotal()
	writeJSON(w, code, resp)
}

// ingestText streams a newline-delimited body (pipe or NDJSON dialect)
// record by record. Undecodable lines quarantine; a stream-level
// failure stops the request with 400. Returns the HTTP status.
func (s *Server) ingestText(ctx context.Context, body io.Reader, resp *IngestResponse, touched []bool) int {
	code := http.StatusOK
	rd := raslog.NewReader(body).Lenient(func(le raslog.LineError) {
		s.quarantine.add(le.Line, le.Raw, le.Err)
		resp.Quarantined++
	})
loop:
	for {
		ev, err := rd.Read()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				// Stream-level failure (oversized line, body read error):
				// nothing after this point is decodable.
				s.parseErrs.Add(1)
				resp.Error = err.Error()
				code = http.StatusBadRequest
			}
			break
		}
		if err := s.cfg.Inject.Fire(faultinject.IngestCorrupt); err != nil {
			s.quarantine.add(0, ev.EntryData, err)
			resp.Quarantined++
			continue
		}
		if s.cfg.Observer != nil {
			// closeMu.RLock is held for the whole request. Observer is
			// contractually cheap, non-blocking and must not call back into
			// the server; invoking it here (not after unlock) is what gives
			// it records in request order.
			s.cfg.Observer(ev)
		}
		sh := s.shardFor(ev.Location)
		msg := shardMsg{ev: ev, at: time.Now()}
		select {
		case sh.ch <- msg:
		default:
			// Queue full: backpressure for up to ShedTimeout, then shed.
			if !s.enqueueSlow(ctx, sh, msg) {
				code = s.enqueueFailed(ctx, resp)
				break loop
			}
		}
		touched[sh.id] = true
		resp.Accepted++
	}
	return code
}

// wireDecoders pools zero-alloc wire decoders across ingest requests:
// a warm decoder's payload buffer, frame table, event arena and string
// intern map all carry over, so steady-state binary ingest does not
// allocate per frame.
var wireDecoders = sync.Pool{
	New: func() any { return raslog.NewWireDecoder(eofReader{}) },
}

// eofReader is the parked state of a pooled decoder (no body retained).
type eofReader struct{}

func (eofReader) Read([]byte) (int, error) { return 0, io.EOF }

// wireBatchCap bounds a per-shard event batch: large enough to
// amortize the channel send and the engine-lock acquisition over
// thousands of records, small enough that pooled buffers stay warm
// and a shard starts chewing while the request is still decoding.
const wireBatchCap = 4096

// eventBatches recycles per-shard batch buffers between the wire
// ingest path (producer) and the shard loops (consumer). Growing a
// fresh multi-thousand-event slice per frame would reintroduce, on
// the far side of the zero-alloc decoder, exactly the allocation and
// GC-scan traffic the decoder removed; steady-state binary ingest
// instead cycles a small set of fixed-capacity buffers. A pooled
// buffer may pin the strings of its last batch until reuse — bounded
// by wireBatchCap and the pool's lifetime, and cheaper than clearing.
var eventBatches = sync.Pool{
	New: func() any {
		s := make([]raslog.Event, 0, wireBatchCap)
		return &s
	},
}

// recycleBatch parks a consumed wire batch for reuse. Only buffers at
// the pooled capacity return; oddballs fall to the GC.
func recycleBatch(evs []raslog.Event) {
	if cap(evs) != wireBatchCap {
		return
	}
	evs = evs[:0]
	eventBatches.Put(&evs)
}

// ingestWire streams a binary wire-frame body. Each frame decodes on a
// pooled zero-alloc decoder, is split per shard, and is enqueued as
// per-shard batches (one engine-lock acquisition per batch instead of
// per record). Corrupt event records quarantine via the decoder's
// skip hook; frame-level corruption stops the request with 400, as a
// text stream failure does. Returns the HTTP status.
//
//bglvet:hotpath
func (s *Server) ingestWire(ctx context.Context, body io.Reader, resp *IngestResponse, touched []bool) int {
	code := http.StatusOK
	dec := wireDecoders.Get().(*raslog.WireDecoder)
	dec.Reset(body)
	//bglvet:ignore hotpathalloc one closure per request, not per record; it captures the per-request response
	dec.OnSkip = func(rec []byte, err error) {
		//bglvet:ignore hotpathalloc the copy happens only for corrupt records, on their way into quarantine
		s.quarantine.add(0, string(rec), err)
		resp.Quarantined++
	}
	defer func() {
		dec.Reset(eofReader{}) // drop the body reference before pooling
		wireDecoders.Put(dec)
	}()
	byShard := make([][]raslog.Event, len(s.shards))
	// flush hands shard id's batch (never empty) to its queue; false
	// means the request must shed.
	flush := func(id int) bool {
		batch := byShard[id]
		byShard[id] = nil // ownership moves to the shard
		sh := s.shards[id]
		msg := shardMsg{evs: batch, at: time.Now()}
		select {
		case sh.ch <- msg:
		default:
			if !s.enqueueSlow(ctx, sh, msg) {
				return false
			}
		}
		touched[id] = true
		resp.Accepted += int64(len(batch))
		return true
	}
loop:
	for {
		evs, err := dec.ReadFrame()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				s.parseErrs.Add(1)
				resp.Error = err.Error()
				code = http.StatusBadRequest
			}
			break
		}
		for i := range evs {
			if err := s.cfg.Inject.Fire(faultinject.IngestCorrupt); err != nil {
				s.quarantine.add(0, evs[i].EntryData, err)
				resp.Quarantined++
				continue
			}
			if s.cfg.Observer != nil {
				// Same contract and ordering argument as the text path.
				s.cfg.Observer(evs[i])
			}
			sh := s.shardFor(evs[i].Location)
			b := byShard[sh.id]
			if b == nil {
				b = (*eventBatches.Get().(*[]raslog.Event))[:0]
			}
			// Copy out of the decoder arena: the batch outlives this frame.
			b = append(b, evs[i])
			byShard[sh.id] = b
			if len(b) >= wireBatchCap {
				if !flush(sh.id) {
					code = s.enqueueFailed(ctx, resp)
					break loop
				}
			}
		}
	}
	// Deliver the partial batches — including ahead of a corrupt frame,
	// where every record of the intact prefix still counts.
	for id := range byShard {
		if len(byShard[id]) > 0 && !flush(id) {
			code = s.enqueueFailed(ctx, resp)
			break
		}
	}
	return code
}

// enqueueFailed classifies why a record or batch could not be
// enqueued, updating the response, and returns the HTTP status.
func (s *Server) enqueueFailed(ctx context.Context, resp *IngestResponse) int {
	if ctx.Err() != nil {
		s.deadlined.Add(1)
		resp.Error = "request deadline exceeded"
		return http.StatusServiceUnavailable
	}
	s.noteShed()
	resp.Error = "shard queue saturated; retry with backoff"
	return http.StatusTooManyRequests
}

// enqueueSlow waits up to ShedTimeout (and the request deadline) for
// room on a saturated shard queue; false means the record did not
// land and the request should shed.
func (s *Server) enqueueSlow(ctx context.Context, sh *shard, msg shardMsg) bool {
	if s.cfg.ShedTimeout < 0 {
		return false
	}
	t := time.NewTimer(s.cfg.ShedTimeout)
	defer t.Stop()
	select {
	case sh.ch <- msg:
		return true
	case <-t.C:
		return false
	case <-ctx.Done():
		return false
	}
}

// barrier enqueues a completion token on every touched shard and
// waits for all of them, bounded by ctx. It returns false if the
// deadline expired before confirmation.
func (s *Server) barrier(ctx context.Context, touched []bool) bool {
	var wg sync.WaitGroup
	for i, t := range touched {
		if !t {
			continue
		}
		wg.Add(1)
		select {
		case s.shards[i].ch <- shardMsg{done: &wg}:
		case <-ctx.Done():
			wg.Done() // token never enqueued; don't wait for it
		}
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
		return ctx.Err() == nil
	case <-ctx.Done():
		return false
	}
}

// handleAlerts serves the standing alarms and the recent-alert ring.
func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	var resp AlertsResponse
	resp.Standing = []Alert{}
	for i, sh := range s.shards {
		// One snapshot per shard: the standing alarm comes from the same
		// consistent view a checkpoint persists.
		snap := sh.engine().Snapshot()
		if alarm := snap.Standing; alarm != nil {
			resp.Standing = append(resp.Standing, Alert{
				Shard:      i,
				At:         alarm.At,
				Start:      alarm.Start,
				End:        alarm.End,
				Confidence: alarm.Confidence,
				Source:     alarm.Source,
				Detail:     alarm.Detail,
			})
		}
	}
	resp.Recent, resp.TotalAlerts = s.history.snapshot()
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz is the liveness/readiness probe. A degraded service
// (recent load-shed or a saturated queue) still answers 200 — it is
// alive and partially serving — with "degraded": true for readiness
// policies that want to route around it.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.closeMu.RLock()
	closed := s.closed
	s.closeMu.RUnlock()
	degraded := s.degraded()
	status, code := "ok", http.StatusOK
	if degraded {
		status = "degraded"
	}
	if closed {
		status, code = "draining", http.StatusServiceUnavailable
	}
	// Standing alarms come from the same per-shard snapshot checkpoints
	// persist, so "drained but still carrying predictions" is visible
	// here exactly as it would be in a checkpoint.
	standing := 0
	for _, sh := range s.shards {
		if sh.engine().Snapshot().Standing != nil {
			standing++
		}
	}
	// Queue depth and model identity ride along so a cluster gate's
	// single health probe doubles as its version check — one request
	// instead of two per backend per probe interval.
	queued := 0
	for _, sh := range s.shards {
		queued += len(sh.ch)
	}
	model := s.model.Load()
	resp := map[string]any{
		"status":          status,
		"degraded":        degraded,
		"shards":          len(s.shards),
		"queued":          queued,
		"shard_restarts":  s.Restarts(),
		"standing_alarms": standing,
		"model_sha":       model.SHA256,
		"model_version":   model.Version,
		"uptime_seconds":  time.Since(s.start).Seconds(),
	}
	// The ledger head rides along so the cluster gate's health probe
	// doubles as its tamper check, and AuxHealth lets the daemon add
	// checkpoint freshness — a stalled Checkpointer shows up here, not
	// first in a post-crash data-loss window.
	if s.cfg.Ledger != nil {
		seq, root := s.cfg.Ledger.Head()
		resp["ledger_seq"] = seq
		resp["ledger_root"] = root
	}
	if s.cfg.AuxHealth != nil {
		s.cfg.AuxHealth(resp)
	}
	writeJSON(w, code, resp)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		// The status line is already out; nothing to do but log-free
		// best effort (the client sees a truncated body).
		_ = err
	}
}

// alertLog is the fixed-capacity ring of recent alerts.
type alertLog struct {
	mu   sync.Mutex
	buf  []Alert
	cap  int
	next int64 // total alerts ever added; also the next Seq
}

func (l *alertLog) init(capacity int) {
	l.cap = capacity
	l.buf = make([]Alert, 0, capacity)
}

// add assigns the alert's Seq and records it.
func (l *alertLog) add(a *Alert) {
	l.mu.Lock()
	defer l.mu.Unlock()
	a.Seq = l.next
	if len(l.buf) < l.cap {
		l.buf = append(l.buf, *a)
	} else {
		l.buf[l.next%int64(l.cap)] = *a
	}
	l.next++
}

// snapshot returns the ring contents oldest-first plus the lifetime
// alert count.
func (l *alertLog) snapshot() ([]Alert, int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Alert, 0, len(l.buf))
	if len(l.buf) < l.cap {
		out = append(out, l.buf...)
	} else {
		head := l.next % int64(l.cap)
		out = append(out, l.buf[head:]...)
		out = append(out, l.buf[:head]...)
	}
	return out, l.next
}
