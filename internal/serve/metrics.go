package serve

import (
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"bglpred/internal/online"
)

// latencyBounds are the upper bounds (inclusive) of the ingest-latency
// histogram buckets. The range spans a cache-warm engine step (tens of
// microseconds) up to a queue saturated by backpressure.
var latencyBounds = []time.Duration{
	50 * time.Microsecond,
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	time.Millisecond,
	5 * time.Millisecond,
	25 * time.Millisecond,
	100 * time.Millisecond,
	500 * time.Millisecond,
	time.Second,
}

// histogram is a lock-free fixed-bucket latency histogram in the
// Prometheus cumulative-bucket style.
type histogram struct {
	buckets []atomic.Int64 // one per bound, non-cumulative internally
	over    atomic.Int64   // observations above the last bound (+Inf)
	sumNS   atomic.Int64
	count   atomic.Int64
}

func (h *histogram) init() {
	h.buckets = make([]atomic.Int64, len(latencyBounds))
}

// observe records one latency sample. Safe for concurrent use.
func (h *histogram) observe(d time.Duration) {
	h.sumNS.Add(int64(d))
	h.count.Add(1)
	for i, bound := range latencyBounds {
		if d <= bound {
			h.buckets[i].Add(1)
			return
		}
	}
	h.over.Add(1)
}

// handleMetrics writes the Prometheus text exposition: aggregate and
// per-shard engine counters, queue depths, and the ingest-latency
// histogram. Latency is measured from enqueue to engine completion,
// so queue wait (backpressure) is included.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	var total struct {
		ingested, unique, unclassified, alerts, renewals int64
	}
	type perShard struct {
		snap  online.Snapshot
		depth int
	}
	shards := make([]perShard, len(s.shards))
	for i, sh := range s.shards {
		snap := sh.engine().Snapshot()
		shards[i] = perShard{snap: snap, depth: len(sh.ch)}
		total.ingested += snap.Ingested
		total.unique += snap.Unique
		total.unclassified += snap.Unclassified
		total.alerts += snap.Alerts
		total.renewals += snap.Renewals
	}

	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("bglserved_ingested_total", "Raw RAS records ingested.", total.ingested)
	counter("bglserved_unique_total", "Records surviving streaming compression.", total.unique)
	counter("bglserved_unclassified_total", "Records matching no subcategory.", total.unclassified)
	counter("bglserved_alerts_total", "New alarms raised.", total.alerts)
	counter("bglserved_renewals_total", "Standing-alarm renewals.", total.renewals)
	counter("bglserved_rejected_total", "Records rejected as out of log order.", s.rejectedTotal())
	counter("bglserved_parse_errors_total", "Ingest requests aborted by a stream-level read error.", s.parseErrs.Load())
	counter("bglserved_ingest_requests_total", "POST /v1/ingest requests served.", s.ingestReqs.Load())
	counter("bglserved_stream_dropped_total", "SSE events dropped on slow subscribers.", s.broker.droppedTotal())
	counter("bglserved_quarantined_total", "Malformed ingest records parked in quarantine.", s.quarantine.total())
	counter("bglserved_quarantine_dropped_total", "Quarantined records evicted from the inspection ring on overflow.", s.quarantine.droppedCount())
	counter("bglserved_shed_total", "Ingest requests shed with 429 on saturated shard queues.", s.shedTotal.Load())
	counter("bglserved_deadline_exceeded_total", "Ingest requests cut short by the request deadline.", s.deadlined.Load())
	counter("bglserved_shard_restarts_total", "Shard workers restarted after a panic, all shards.", s.Restarts())

	degraded := 0
	if s.degraded() {
		degraded = 1
	}
	fmt.Fprintf(w, "# HELP bglserved_degraded Whether the service is in degraded mode (recent shed or saturated queue).\n# TYPE bglserved_degraded gauge\nbglserved_degraded %d\n", degraded)

	fmt.Fprintf(w, "# HELP bglserved_shard_worker_restarts_total Shard-worker restarts after panics, per shard.\n# TYPE bglserved_shard_worker_restarts_total counter\n")
	for i, sh := range s.shards {
		fmt.Fprintf(w, "bglserved_shard_worker_restarts_total{shard=\"%d\"} %d\n", i, sh.restarts.Load())
	}

	fmt.Fprintf(w, "# HELP bglserved_shard_queue_depth Records queued per shard.\n# TYPE bglserved_shard_queue_depth gauge\n")
	for i, ps := range shards {
		fmt.Fprintf(w, "bglserved_shard_queue_depth{shard=\"%d\"} %d\n", i, ps.depth)
	}
	fmt.Fprintf(w, "# HELP bglserved_shard_ingested_total Records ingested per shard.\n# TYPE bglserved_shard_ingested_total counter\n")
	for i, ps := range shards {
		fmt.Fprintf(w, "bglserved_shard_ingested_total{shard=\"%d\"} %d\n", i, ps.snap.Ingested)
	}
	fmt.Fprintf(w, "# HELP bglserved_shard_pending_keys Streaming-compression dedup keys held per shard.\n# TYPE bglserved_shard_pending_keys gauge\n")
	for i, ps := range shards {
		fmt.Fprintf(w, "bglserved_shard_pending_keys{shard=\"%d\"} %d\n", i, ps.snap.PendingKeys)
	}

	fmt.Fprintf(w, "# HELP bglserved_ingest_latency_seconds Enqueue-to-engine latency per record.\n# TYPE bglserved_ingest_latency_seconds histogram\n")
	var cum int64
	for i, bound := range latencyBounds {
		cum += s.latency.buckets[i].Load()
		fmt.Fprintf(w, "bglserved_ingest_latency_seconds_bucket{le=\"%g\"} %d\n", bound.Seconds(), cum)
	}
	cum += s.latency.over.Load()
	fmt.Fprintf(w, "bglserved_ingest_latency_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "bglserved_ingest_latency_seconds_sum %g\n", time.Duration(s.latency.sumNS.Load()).Seconds())
	fmt.Fprintf(w, "bglserved_ingest_latency_seconds_count %d\n", s.latency.count.Load())

	model := s.model.Load()
	fmt.Fprintf(w, "# HELP bglserved_model_version Generation of the serving model (1 = startup model; each hot-swap increments).\n# TYPE bglserved_model_version gauge\nbglserved_model_version %d\n",
		model.Version)
	fmt.Fprintf(w, "# HELP bglserved_model_age_seconds Seconds since the serving model was loaded.\n# TYPE bglserved_model_age_seconds gauge\nbglserved_model_age_seconds %g\n",
		time.Since(model.LoadedAt).Seconds())
	fmt.Fprintf(w, "# HELP bglserved_model_swaps_total Completed model hot-swaps.\n# TYPE bglserved_model_swaps_total counter\nbglserved_model_swaps_total %d\n",
		s.swaps.Load())
	standing := 0
	for _, ps := range shards {
		if ps.snap.Standing != nil {
			standing++
		}
	}
	fmt.Fprintf(w, "# HELP bglserved_standing_alarms Shards currently carrying an active alarm.\n# TYPE bglserved_standing_alarms gauge\nbglserved_standing_alarms %d\n",
		standing)

	fmt.Fprintf(w, "# HELP bglserved_uptime_seconds Seconds since startup.\n# TYPE bglserved_uptime_seconds gauge\nbglserved_uptime_seconds %g\n",
		time.Since(s.start).Seconds())

	if s.cfg.Ledger != nil {
		counter("bglserved_ledger_appends_total", "Audit-ledger entries appended by the serving layer.", s.ledgerAppends.Load())
		counter("bglserved_ledger_append_failures_total", "Audit-ledger appends that failed (the served request itself succeeded).", s.ledgerErrs.Load())
		s.cfg.Ledger.WriteMetrics(w)
	}

	if s.cfg.AuxMetrics != nil {
		s.cfg.AuxMetrics(w)
	}
}
