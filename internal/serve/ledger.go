package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"hash"
	"io"
	"net/http"
	"strconv"

	"bglpred/internal/ledger"
)

// ingestDigest accumulates the SHA-256 and byte count of one ingest
// request body as it streams through the decoder.
type ingestDigest struct {
	h hash.Hash
	n int64
}

func (d *ingestDigest) Write(p []byte) (int, error) {
	d.h.Write(p)
	d.n += int64(len(p))
	return len(p), nil
}

// teeIngestBody interposes the audit digest on the request body; with
// no ledger configured it is a pass-through.
func (s *Server) teeIngestBody(body io.Reader) (io.Reader, *ingestDigest) {
	if s.cfg.Ledger == nil {
		return body, nil
	}
	d := &ingestDigest{h: sha256.New()}
	return io.TeeReader(body, d), d
}

// ingestLedgerRecord is the KindIngest payload: enough to re-derive
// whether a batch an operator holds is the batch the server accepted.
type ingestLedgerRecord struct {
	SHA256      string `json:"sha256"`
	Bytes       int64  `json:"bytes"`
	Accepted    int64  `json:"accepted"`
	Quarantined int64  `json:"quarantined,omitempty"`
}

// appendIngestRecord group-commits the accepted batch's digest. It
// runs on the request goroutine after the shard barrier: the reply is
// held until the audit record is durable, so an acknowledged batch is
// always an auditable batch. An append failure degrades to a counter
// (the ingest itself already succeeded).
func (s *Server) appendIngestRecord(d *ingestDigest, resp *IngestResponse) {
	if s.cfg.Ledger == nil || d == nil || resp.Accepted == 0 {
		return
	}
	payload, err := json.Marshal(ingestLedgerRecord{
		SHA256:      hex.EncodeToString(d.h.Sum(nil)),
		Bytes:       d.n,
		Accepted:    resp.Accepted,
		Quarantined: resp.Quarantined,
	})
	if err != nil {
		s.ledgerErrs.Add(1)
		return
	}
	if _, err := s.cfg.Ledger.Append(ledger.KindIngest, payload); err != nil {
		s.ledgerErrs.Add(1)
		return
	}
	s.ledgerAppends.Add(1)
}

// appendAlertRecord records one emitted alert. It runs on the shard
// goroutine, outside the engine lock; alert rates are low enough that
// the group commit's fsync is the only cost, shared with any
// concurrent ingest digests.
func (s *Server) appendAlertRecord(a Alert) {
	if s.cfg.Ledger == nil {
		return
	}
	payload, err := json.Marshal(a)
	if err != nil {
		s.ledgerErrs.Add(1)
		return
	}
	if _, err := s.cfg.Ledger.Append(ledger.KindAlert, payload); err != nil {
		s.ledgerErrs.Add(1)
		return
	}
	s.ledgerAppends.Add(1)
}

// ProofsHead is the body of GET /v1/proofs with no seq parameter: the
// ledger's current head, the trusted root a client verifies proofs
// against.
type ProofsHead struct {
	Seq  uint64 `json:"seq"`
	Root string `json:"root"`
}

// handleProofs serves inclusion proofs from the audit ledger.
// GET /v1/proofs returns the head (sequence and chain root);
// GET /v1/proofs?seq=N returns entry N's proof, verifiable client-side
// with nothing but the proof body (fold leaf through siblings, compare
// root) plus a trusted root for its commit.
func (s *Server) handleProofs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	if s.cfg.Ledger == nil {
		http.Error(w, "no audit ledger configured", http.StatusNotFound)
		return
	}
	q := r.URL.Query().Get("seq")
	if q == "" {
		seq, root := s.cfg.Ledger.Head()
		writeJSON(w, http.StatusOK, ProofsHead{Seq: seq, Root: root})
		return
	}
	seq, err := strconv.ParseUint(q, 10, 64)
	if err != nil {
		http.Error(w, "seq must be a non-negative integer", http.StatusBadRequest)
		return
	}
	p, err := s.cfg.Ledger.ProofOf(seq)
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, ledger.ErrNoEntry) {
			code = http.StatusNotFound
		}
		http.Error(w, err.Error(), code)
		return
	}
	writeJSON(w, http.StatusOK, p)
}
