package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"bglpred/internal/bglsim"
	"bglpred/internal/online"
	"bglpred/internal/predictor"
	"bglpred/internal/preprocess"
	"bglpred/internal/raslog"
)

// fixtureOnce shares one trained meta-learner and held-out tail across
// the package's tests (training dominates test wall time).
var fixtureOnce struct {
	sync.Once
	meta *predictor.Meta
	tail []raslog.Event
	err  error
}

func fixture(t *testing.T) (*predictor.Meta, []raslog.Event) {
	t.Helper()
	fixtureOnce.Do(func() {
		gen, err := bglsim.Generate(bglsim.ANLProfile().Scaled(0.05))
		if err != nil {
			fixtureOnce.err = err
			return
		}
		cut := len(gen.Events) * 8 / 10
		pre := preprocess.Run(gen.Events[:cut], preprocess.Options{})
		m := predictor.NewMeta()
		if err := m.Train(pre.Events); err != nil {
			fixtureOnce.err = err
			return
		}
		fixtureOnce.meta = m
		fixtureOnce.tail = gen.Events[cut:]
	})
	if fixtureOnce.err != nil {
		t.Fatal(fixtureOnce.err)
	}
	return fixtureOnce.meta, fixtureOnce.tail
}

// encode renders events in the pipe dialect.
func encode(t *testing.T, events []raslog.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := raslog.NewWriter(&buf)
	for i := range events {
		if err := w.Write(&events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// post ingests a body directly through the handler (no network).
func post(t *testing.T, s *Server, body []byte) IngestResponse {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/ingest", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest: status %d: %s", rec.Code, rec.Body.String())
	}
	var resp IngestResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// getAlerts fetches /v1/alerts through the handler.
func getAlerts(t *testing.T, s *Server) AlertsResponse {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/v1/alerts", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("alerts: status %d", rec.Code)
	}
	var resp AlertsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestEndToEndMatchesLibraryPath(t *testing.T) {
	meta, tail := fixture(t)

	// Library path: one engine driven directly.
	var direct []predictor.Warning
	eng := online.New(meta, online.Config{
		Window:  30 * time.Minute,
		OnAlert: func(w predictor.Warning) { direct = append(direct, w) },
	})
	for i := range tail {
		if _, err := eng.Ingest(&tail[i]); err != nil {
			t.Fatal(err)
		}
	}
	if len(direct) == 0 {
		t.Fatal("library path raised no alerts over a failure-rich tail")
	}

	// Served path: one shard is the single engine, so the alert stream
	// must match the library path exactly.
	s := New(meta, Config{Shards: 1, History: 1 << 16, Window: 30 * time.Minute})
	defer s.Close()
	// Several requests, to cross request boundaries mid-stream.
	third := len(tail) / 3
	for _, chunk := range [][]raslog.Event{tail[:third], tail[third : 2*third], tail[2*third:]} {
		resp := post(t, s, encode(t, chunk))
		if resp.Accepted != int64(len(chunk)) {
			t.Fatalf("accepted %d of %d", resp.Accepted, len(chunk))
		}
	}

	got := getAlerts(t, s)
	if got.TotalAlerts != int64(len(direct)) {
		t.Fatalf("served %d alerts, library path raised %d", got.TotalAlerts, len(direct))
	}
	if len(got.Recent) != len(direct) {
		t.Fatalf("ring holds %d of %d alerts", len(got.Recent), len(direct))
	}
	for i, a := range got.Recent {
		w := direct[i]
		if !a.At.Equal(w.At) || a.Source != w.Source || !a.End.Equal(w.End) || a.Confidence != w.Confidence {
			t.Fatalf("alert %d mismatch:\n got %+v\nwant %+v", i, a, w)
		}
	}

	// Engine counters must agree too.
	snap := s.shards[0].engine().Snapshot()
	want := eng.Snapshot()
	if snap.Counters != want.Counters {
		t.Fatalf("served counters %+v, library %+v", snap.Counters, want.Counters)
	}
}

func TestShardedIngestFansOut(t *testing.T) {
	meta, tail := fixture(t)
	s := New(meta, Config{Shards: 4, History: 1 << 16, Window: 30 * time.Minute})
	defer s.Close()

	resp := post(t, s, encode(t, tail))
	if resp.Accepted != int64(len(tail)) {
		t.Fatalf("accepted %d of %d", resp.Accepted, len(tail))
	}
	if resp.RejectedTotal != 0 {
		t.Fatalf("%d records rejected: per-shard substreams should stay in order", resp.RejectedTotal)
	}
	var sum int64
	busy := 0
	for _, sh := range s.shards {
		n := sh.engine().Snapshot().Ingested
		sum += n
		if n > 0 {
			busy++
		}
	}
	if sum != int64(len(tail)) {
		t.Fatalf("shards ingested %d of %d", sum, len(tail))
	}
	if busy < 2 {
		t.Fatalf("only %d of 4 shards saw traffic; routing looks degenerate", busy)
	}
	if got := getAlerts(t, s); got.TotalAlerts == 0 {
		t.Fatal("no alerts over a failure-rich tail")
	}
}

func TestIngestNDJSONDialect(t *testing.T) {
	meta, tail := fixture(t)
	s := New(meta, Config{Shards: 2, Window: 30 * time.Minute})
	defer s.Close()

	n := 200
	if n > len(tail) {
		n = len(tail)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := 0; i < n; i++ {
		if err := enc.Encode(tail[i]); err != nil {
			t.Fatal(err)
		}
	}
	resp := post(t, s, buf.Bytes())
	if resp.Accepted != int64(n) {
		t.Fatalf("accepted %d of %d NDJSON records", resp.Accepted, n)
	}
}

func TestIngestParseErrorQuarantines(t *testing.T) {
	// A malformed line no longer fails the batch: it lands in the
	// quarantine ring, and every decodable record around it is served.
	meta, tail := fixture(t)
	s := New(meta, Config{Shards: 2, Window: 30 * time.Minute})
	defer s.Close()

	body := append(encode(t, tail[:5]), []byte("this is not a record\n")...)
	body = append(body, encode(t, tail[5:10])...)
	req := httptest.NewRequest(http.MethodPost, "/v1/ingest", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want 200: %s", rec.Code, rec.Body.Bytes())
	}
	var resp IngestResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 10 || resp.Quarantined != 1 || resp.Error != "" {
		t.Fatalf("resp = %+v; want 10 accepted, 1 quarantined, records after the bad line still landing", resp)
	}

	qreq := httptest.NewRequest(http.MethodGet, "/v1/quarantine", nil)
	qrec := httptest.NewRecorder()
	s.ServeHTTP(qrec, qreq)
	var q QuarantineResponse
	if err := json.Unmarshal(qrec.Body.Bytes(), &q); err != nil {
		t.Fatal(err)
	}
	if q.Total != 1 || len(q.Recent) != 1 {
		t.Fatalf("quarantine = %+v, want exactly the one bad line", q)
	}
	if q.Recent[0].Line != 6 {
		t.Fatalf("quarantined line number = %d, want 6", q.Recent[0].Line)
	}
	if !strings.Contains(q.Recent[0].Raw, "this is not a record") {
		t.Fatalf("quarantined raw = %q, want the offending text", q.Recent[0].Raw)
	}
	if q.Recent[0].Cause == "" {
		t.Fatal("quarantined record has no cause")
	}
}

func TestBackpressureQueueDepthOne(t *testing.T) {
	// A tiny queue must slow ingestion down, never drop or deadlock.
	meta, tail := fixture(t)
	s := New(meta, Config{Shards: 2, QueueDepth: 1, Window: 30 * time.Minute})
	defer s.Close()
	n := 500
	if n > len(tail) {
		n = len(tail)
	}
	resp := post(t, s, encode(t, tail[:n]))
	if resp.Accepted != int64(n) {
		t.Fatalf("accepted %d of %d", resp.Accepted, n)
	}
}

func TestCloseDrainsAndRejectsIngest(t *testing.T) {
	meta, tail := fixture(t)
	s := New(meta, Config{Shards: 2, Window: 30 * time.Minute})
	post(t, s, encode(t, tail[:100]))

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err) // idempotent
	}

	req := httptest.NewRequest(http.MethodPost, "/v1/ingest", strings.NewReader(""))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("ingest after Close: status %d, want 503", rec.Code)
	}

	req = httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "draining") {
		t.Fatalf("healthz after Close: %d %s", rec.Code, rec.Body.String())
	}

	// Read surfaces keep working on the drained state.
	if got := getAlerts(t, s); got.TotalAlerts < 0 {
		t.Fatal("alerts unavailable after Close")
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	meta, tail := fixture(t)
	s := New(meta, Config{Shards: 3, Window: 30 * time.Minute})
	defer s.Close()
	post(t, s, encode(t, tail))

	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"ok"`) {
		t.Fatalf("healthz: %d %s", rec.Code, rec.Body.String())
	}

	req = httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"bglserved_ingested_total " + strconv.Itoa(len(tail)),
		"bglserved_alerts_total",
		"bglserved_shard_queue_depth{shard=\"2\"} 0",
		// Counter families end in _total; the per-shard restart family
		// is named apart from the aggregate bglserved_shard_restarts_total.
		"bglserved_shard_worker_restarts_total{shard=\"0\"} 0",
		"bglserved_shard_restarts_total 0",
		"bglserved_ingest_latency_seconds_bucket{le=\"+Inf\"} " + strconv.Itoa(len(tail)),
		"bglserved_ingest_latency_seconds_count " + strconv.Itoa(len(tail)),
		"bglserved_uptime_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, body)
		}
	}
}
