package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bglpred/internal/raslog"
)

// sseClient connects to /v1/alerts/stream on a live test server and
// decodes alert events into a channel until the stream or context
// ends.
func sseClient(t *testing.T, ctx context.Context, url string) (<-chan Alert, *http.Response) {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/alerts/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream: content type %q", ct)
	}
	events := make(chan Alert, 1024)
	go func() {
		defer close(events)
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var a Alert
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &a); err != nil {
				continue
			}
			events <- a
		}
	}()
	return events, resp
}

func TestSSEStreamMidRunSubscriber(t *testing.T) {
	meta, tail := fixture(t)
	s := New(meta, Config{Shards: 2, History: 1 << 16, Window: 30 * time.Minute})
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Phase 1: ingest a head slice before anyone subscribes.
	cut := len(tail) / 10
	post(t, s, encode(t, tail[:cut]))
	n1 := getAlerts(t, s).TotalAlerts

	// Subscribe mid-run.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events, resp := sseClient(t, ctx, ts.URL)
	defer resp.Body.Close()

	// Phase 2: ingest the rest; the subscriber must see exactly the
	// alarms raised from here on (none from phase 1).
	post(t, s, encode(t, tail[cut:]))
	n2 := getAlerts(t, s).TotalAlerts
	if n2 == n1 {
		t.Skip("no alerts in second chunk (seed-dependent)")
	}

	want := n2 - n1
	var got []Alert
	deadline := time.After(10 * time.Second)
	for int64(len(got)) < want {
		select {
		case a, live := <-events:
			if !live {
				t.Fatalf("stream closed after %d of %d events", len(got), want)
			}
			got = append(got, a)
		case <-deadline:
			t.Fatalf("timed out after %d of %d events", len(got), want)
		}
	}
	for _, a := range got {
		if a.Seq < n1 {
			t.Fatalf("received pre-subscribe alert seq %d (< %d)", a.Seq, n1)
		}
	}
	select {
	case a, live := <-events:
		if live {
			t.Fatalf("unexpected extra event seq %d", a.Seq)
		}
	case <-time.After(100 * time.Millisecond):
	}

	// Disconnect, then keep ingesting: shard goroutines must not
	// stall on the dead subscriber.
	cancel()
	resp.Body.Close()
	shifted := append([]raslog.Event(nil), tail[len(tail)-200:]...)
	for i := range shifted {
		shifted[i].Time = shifted[i].Time.Add(24 * time.Hour)
	}
	done := make(chan struct{})
	go func() {
		post(t, s, encode(t, shifted))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("ingest stalled after subscriber disconnect")
	}
}

func TestSSESlowSubscriberNeverBlocksIngest(t *testing.T) {
	meta, tail := fixture(t)
	s := New(meta, Config{Shards: 2, History: 1 << 16, Window: 30 * time.Minute})
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	// A subscriber that never reads: its buffer fills and overflow is
	// dropped, but ingestion keeps its throughput.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/alerts/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	done := make(chan struct{})
	go func() {
		post(t, s, encode(t, tail))
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("ingest blocked behind an unread SSE subscriber")
	}
}

func TestSSECloseDisconnectsSubscribers(t *testing.T) {
	meta, tail := fixture(t)
	s := New(meta, Config{Shards: 2, Window: 30 * time.Minute})
	ts := httptest.NewServer(s)
	defer ts.Close()
	post(t, s, encode(t, tail[:100]))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events, resp := sseClient(t, ctx, ts.URL)
	defer resp.Body.Close()

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case _, live := <-events:
		if live {
			// Drain any buffered events; the channel must close soon.
			for range events {
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("subscriber not disconnected by Close")
	}
}
