package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bglpred/internal/ledger"
)

func openTestLedger(t *testing.T) *ledger.Ledger {
	t.Helper()
	led, _, err := ledger.Open(filepath.Join(t.TempDir(), "audit.bgll"), ledger.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { led.Close() })
	return led
}

func TestLedgerChainsIngestAndAlerts(t *testing.T) {
	meta, tail := fixture(t)
	led := openTestLedger(t)
	s := New(meta, Config{Shards: 2, History: 1 << 16, Window: 30 * time.Minute, Ledger: led})
	defer s.Close()

	body := encode(t, tail)
	resp := post(t, s, body)
	if resp.Accepted != int64(len(tail)) {
		t.Fatalf("accepted %d of %d", resp.Accepted, len(tail))
	}

	// The acknowledged batch is in the ledger, with the digest of the
	// exact bytes posted.
	seq, ok := led.LastSeqOf(ledger.KindIngest)
	if !ok {
		t.Fatal("no ingest-batch entry after an acknowledged ingest")
	}
	_, payload, err := led.Payload(seq)
	if err != nil {
		t.Fatal(err)
	}
	var rec ingestLedgerRecord
	if err := json.Unmarshal(payload, &rec); err != nil {
		t.Fatal(err)
	}
	wantSHA := sha256.Sum256(body)
	if rec.SHA256 != hex.EncodeToString(wantSHA[:]) {
		t.Fatalf("ledgered batch digest %s, posted bytes hash %s", rec.SHA256, hex.EncodeToString(wantSHA[:]))
	}
	if rec.Accepted != resp.Accepted || rec.Bytes != int64(len(body)) {
		t.Fatalf("ledgered %+v, response %+v over %d bytes", rec, resp, len(body))
	}

	// Alerts were raised over the failure-rich tail, and each is in the
	// ledger too (alert appends ride the shard goroutines, which the
	// ingest barrier has flushed).
	alerts := getAlerts(t, s)
	if alerts.TotalAlerts == 0 {
		t.Fatal("no alerts over a failure-rich tail")
	}
	var ledgered int64
	for i := uint64(0); ; i++ {
		e, err := led.Entry(i)
		if err != nil {
			break
		}
		if e.Kind == ledger.KindAlert {
			ledgered++
		}
	}
	if ledgered != alerts.TotalAlerts {
		t.Fatalf("%d alerts ledgered, %d emitted", ledgered, alerts.TotalAlerts)
	}

	// /v1/proofs with no seq: the head. With seq: a proof that verifies
	// client-side from the response body alone.
	recd := httptest.NewRecorder()
	s.ServeHTTP(recd, httptest.NewRequest(http.MethodGet, "/v1/proofs", nil))
	var head ProofsHead
	if err := json.Unmarshal(recd.Body.Bytes(), &head); err != nil {
		t.Fatalf("proofs head: %v: %s", err, recd.Body.String())
	}
	hseq, hroot := led.Head()
	if head.Seq != hseq || head.Root != hroot {
		t.Fatalf("proofs head %+v, ledger head (%d, %s)", head, hseq, hroot)
	}

	recd = httptest.NewRecorder()
	s.ServeHTTP(recd, httptest.NewRequest(http.MethodGet, fmt.Sprintf("/v1/proofs?seq=%d", seq), nil))
	if recd.Code != http.StatusOK {
		t.Fatalf("proof of seq %d: status %d: %s", seq, recd.Code, recd.Body.String())
	}
	var proof ledger.Proof
	if err := json.Unmarshal(recd.Body.Bytes(), &proof); err != nil {
		t.Fatal(err)
	}
	if err := proof.Verify(); err != nil {
		t.Fatalf("served proof does not verify: %v", err)
	}

	recd = httptest.NewRecorder()
	s.ServeHTTP(recd, httptest.NewRequest(http.MethodGet, "/v1/proofs?seq=999999", nil))
	if recd.Code != http.StatusNotFound {
		t.Fatalf("proof of absent entry: status %d, want 404", recd.Code)
	}

	// /healthz reports the ledger head alongside liveness.
	recd = httptest.NewRecorder()
	s.ServeHTTP(recd, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var hz map[string]any
	if err := json.Unmarshal(recd.Body.Bytes(), &hz); err != nil {
		t.Fatal(err)
	}
	if hz["ledger_root"] != hroot {
		t.Fatalf("healthz ledger_root %v, want %s", hz["ledger_root"], hroot)
	}
	if uint64(hz["ledger_seq"].(float64)) != hseq {
		t.Fatalf("healthz ledger_seq %v, want %d", hz["ledger_seq"], hseq)
	}

	// /metrics exposes both the server's append counters and the
	// ledger's own families.
	recd = httptest.NewRecorder()
	s.ServeHTTP(recd, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	for _, want := range []string{
		"bglserved_ledger_appends_total",
		"bglserved_ledger_append_failures_total 0",
		"bglledger_entries_total",
		"bglledger_commits_total",
		"bglledger_seq",
	} {
		if !strings.Contains(recd.Body.String(), want) {
			t.Fatalf("metrics missing %s", want)
		}
	}
}

func TestProofsWithoutLedger(t *testing.T) {
	meta, _ := fixture(t)
	s := New(meta, Config{Shards: 1, History: 16, Window: 30 * time.Minute})
	defer s.Close()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/proofs", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("proofs without a ledger: status %d, want 404", rec.Code)
	}
}

func TestQuarantineReportsDropped(t *testing.T) {
	meta, _ := fixture(t)
	s := New(meta, Config{Shards: 1, History: 16, Window: 30 * time.Minute, QuarantineCap: 2})
	defer s.Close()

	var junk strings.Builder
	for i := 0; i < 5; i++ {
		fmt.Fprintf(&junk, "not a ras record %d\n", i)
	}
	resp := post(t, s, []byte(junk.String()))
	if resp.Quarantined != 5 {
		t.Fatalf("quarantined %d of 5 junk lines", resp.Quarantined)
	}

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/quarantine", nil))
	var q QuarantineResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &q); err != nil {
		t.Fatal(err)
	}
	if q.Total != 5 || len(q.Recent) != 2 {
		t.Fatalf("quarantine total %d recent %d, want 5/2", q.Total, len(q.Recent))
	}
	if q.Dropped != 3 {
		t.Fatalf("quarantine dropped %d, want 3 (5 records through a 2-slot ring)", q.Dropped)
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "bglserved_quarantine_dropped_total 3") {
		t.Fatal("metrics missing bglserved_quarantine_dropped_total 3")
	}
}
