package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// broker fans alerts out to SSE subscribers. Publishing never blocks:
// a subscriber whose buffer is full loses that event (counted in
// dropped), so a stalled client can never stall a shard goroutine.
type broker struct {
	mu      sync.Mutex
	subs    map[chan Alert]struct{}
	closed  bool
	dropped atomic.Int64
}

// subBuffer is the per-subscriber channel capacity; alerts are rare
// relative to ingest volume, so a small buffer absorbs normal jitter.
const subBuffer = 64

func (b *broker) init() {
	b.subs = make(map[chan Alert]struct{})
}

// subscribe registers a new subscriber; ok is false after close.
func (b *broker) subscribe() (ch chan Alert, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, false
	}
	ch = make(chan Alert, subBuffer)
	b.subs[ch] = struct{}{}
	return ch, true
}

// unsubscribe removes a subscriber; pending events are discarded.
func (b *broker) unsubscribe(ch chan Alert) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, live := b.subs[ch]; live {
		delete(b.subs, ch)
		close(ch)
	}
}

// publish delivers to every subscriber without blocking.
func (b *broker) publish(a Alert) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for ch := range b.subs {
		select {
		case ch <- a:
		default:
			b.dropped.Add(1)
		}
	}
}

// close disconnects all subscribers and refuses new ones.
func (b *broker) close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for ch := range b.subs {
		delete(b.subs, ch)
		close(ch)
	}
}

func (b *broker) droppedTotal() int64 { return b.dropped.Load() }

// subscribers reports the live subscriber count (tests assert that a
// disconnected client's subscription is reaped).
func (b *broker) subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// handleStream serves GET /v1/alerts/stream as server-sent events.
// A subscriber sees only alarms raised after it connects; use
// GET /v1/alerts for history. Each event is
//
//	id: <seq>
//	event: alert
//	data: <Alert JSON>
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	ch, ok := s.broker.subscribe()
	if !ok {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	defer s.broker.unsubscribe(ch)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	// An initial comment line commits the headers so clients see the
	// stream is live before the first alert.
	fmt.Fprint(w, ": connected\n\n")
	flusher.Flush()

	// Heartbeat comments keep intermediaries from timing the stream out
	// during quiet stretches and force a write error on dead peers, so
	// the deferred unsubscribe reaps them even when no alerts flow.
	var hb <-chan time.Time
	if s.cfg.StreamHeartbeat > 0 {
		t := time.NewTicker(s.cfg.StreamHeartbeat)
		defer t.Stop()
		hb = t.C
	}

	for {
		select {
		case <-r.Context().Done():
			return
		case <-hb:
			if _, err := fmt.Fprint(w, ": hb\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case a, live := <-ch:
			if !live {
				return // broker closed (server draining)
			}
			data, err := json.Marshal(a)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "id: %d\nevent: alert\ndata: %s\n\n", a.Seq, data)
			flusher.Flush()
		}
	}
}
