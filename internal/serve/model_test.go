package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"bglpred/internal/raslog"
)

// getModel fetches /v1/model through the handler.
func getModel(t *testing.T, s *Server) ModelResponse {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/v1/model", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("model: status %d: %s", rec.Code, rec.Body.String())
	}
	var resp ModelResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestModelEndpointReportsIdentity(t *testing.T) {
	meta, _ := fixture(t)
	trainedAt := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	s := New(meta, Config{Shards: 2, Model: ModelInfo{
		SHA256:    "deadbeef",
		TrainedAt: trainedAt,
		Source:    "unit fixture",
		Rules:     7,
	}})
	defer s.Close()

	got := getModel(t, s)
	if got.Version != 1 || got.SHA256 != "deadbeef" || got.Source != "unit fixture" || got.Rules != 7 {
		t.Fatalf("model info = %+v", got)
	}
	if got.Swaps != 0 || got.AgeSeconds < 0 {
		t.Fatalf("swaps=%d age=%g", got.Swaps, got.AgeSeconds)
	}
	if !got.TrainedAt.Equal(trainedAt) {
		t.Fatalf("trained_at = %v", got.TrainedAt)
	}
}

func TestSwapModelBumpsVersionAndKeepsServing(t *testing.T) {
	meta, tail := fixture(t)
	s := New(meta, Config{Shards: 2, Window: 30 * time.Minute})
	defer s.Close()

	half := len(tail) / 2
	post(t, s, encode(t, tail[:half]))
	before := getAlerts(t, s)

	info := s.SwapModel(meta, ModelInfo{SHA256: "cafe", Source: "retrain"})
	if info.Version != 2 {
		t.Fatalf("swap produced version %d, want 2", info.Version)
	}
	if got := getModel(t, s); got.Version != 2 || got.Swaps != 1 || got.SHA256 != "cafe" {
		t.Fatalf("after swap: %+v", got)
	}

	// Swapping in the same trained model must not disturb the alert
	// stream: ingestion continues as one logical stream.
	post(t, s, encode(t, tail[half:]))
	after := getAlerts(t, s)
	if after.TotalAlerts < before.TotalAlerts {
		t.Fatalf("alerts went backwards across swap: %d -> %d", before.TotalAlerts, after.TotalAlerts)
	}

	// The two-server control: same stream, no swap, must agree.
	control := New(meta, Config{Shards: 2, Window: 30 * time.Minute})
	defer control.Close()
	post(t, control, encode(t, tail))
	want := getAlerts(t, control)
	if after.TotalAlerts != want.TotalAlerts {
		t.Fatalf("swap changed the alert stream: got %d alerts, control %d", after.TotalAlerts, want.TotalAlerts)
	}
}

func TestModelReloadEndpoint(t *testing.T) {
	meta, _ := fixture(t)

	// Without a hook: 501.
	s := New(meta, Config{Shards: 1})
	req := httptest.NewRequest(http.MethodPost, "/v1/model/reload", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotImplemented {
		t.Fatalf("reload without hook: status %d, want 501", rec.Code)
	}
	s.Close()

	// With a hook that swaps: 200 and the new identity.
	var s2 *Server
	calls := 0
	s2 = New(meta, Config{Shards: 1, Reload: func() error {
		calls++
		s2.SwapModel(meta, ModelInfo{Source: "reloaded"})
		return nil
	}})
	defer s2.Close()
	rec = httptest.NewRecorder()
	s2.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/model/reload", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("reload: status %d: %s", rec.Code, rec.Body.String())
	}
	var resp ModelResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if calls != 1 || resp.Version != 2 || resp.Source != "reloaded" {
		t.Fatalf("calls=%d resp=%+v", calls, resp)
	}

	// A failing hook surfaces as 500.
	s3 := New(meta, Config{Shards: 1, Reload: func() error { return errors.New("mining failed") }})
	defer s3.Close()
	rec = httptest.NewRecorder()
	s3.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/model/reload", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("failing reload: status %d, want 500", rec.Code)
	}
}

func TestExportRestoreShardsRoundTrip(t *testing.T) {
	meta, tail := fixture(t)
	s := New(meta, Config{Shards: 2, Window: 30 * time.Minute})
	defer s.Close()
	post(t, s, encode(t, tail[:len(tail)/2]))

	states := s.ExportShards()
	if len(states) != 2 {
		t.Fatalf("exported %d states", len(states))
	}

	// Mismatched shard count is refused with a actionable error.
	wrong := New(meta, Config{Shards: 3})
	defer wrong.Close()
	if err := wrong.RestoreShards(states); err == nil {
		t.Fatal("restore into a 3-shard server accepted a 2-shard checkpoint")
	}

	fresh := New(meta, Config{Shards: 2, Window: 30 * time.Minute})
	defer fresh.Close()
	if err := fresh.RestoreShards(states); err != nil {
		t.Fatal(err)
	}
	for i, sh := range fresh.shards {
		got, want := sh.engine().Snapshot(), s.shards[i].engine().Snapshot()
		if got.Counters != want.Counters || !got.LastSeen.Equal(want.LastSeen) || got.PendingKeys != want.PendingKeys {
			t.Fatalf("shard %d: restored %+v, want %+v", i, got, want)
		}
	}

	// Restoring into a server that already ingested is refused.
	if err := s.RestoreShards(states); err == nil {
		t.Fatal("restore into a non-fresh server accepted")
	}
}

func TestObserverSeesAcceptedRecords(t *testing.T) {
	meta, tail := fixture(t)
	n := 100
	if n > len(tail) {
		n = len(tail)
	}
	var mu sync.Mutex
	var seen []raslog.Event
	s := New(meta, Config{Shards: 2, Observer: func(ev raslog.Event) {
		mu.Lock()
		seen = append(seen, ev)
		mu.Unlock()
	}})
	defer s.Close()

	post(t, s, encode(t, tail[:n]))
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != n {
		t.Fatalf("observer saw %d of %d records", len(seen), n)
	}
	for i := range seen {
		if seen[i].RecID != tail[i].RecID {
			t.Fatalf("observer record %d out of order: got RecID %d, want %d", i, seen[i].RecID, tail[i].RecID)
		}
	}
}
