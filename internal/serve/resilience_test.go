package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bglpred/internal/faultinject"
	"bglpred/internal/online"
	"bglpred/internal/predictor"
)

func TestShardPanicSupervisionIsLossless(t *testing.T) {
	meta, tail := fixture(t)

	// Reference: the alert stream of a fault-free single engine.
	var direct []predictor.Warning
	eng := online.New(meta, online.Config{
		Window:  30 * time.Minute,
		OnAlert: func(w predictor.Warning) { direct = append(direct, w) },
	})
	for i := range tail {
		if _, err := eng.Ingest(&tail[i]); err != nil {
			t.Fatal(err)
		}
	}
	if len(direct) == 0 {
		t.Fatal("no alerts over a failure-rich tail")
	}

	// Faulty run: the worker panics every 500 records. With
	// SnapshotEvery=1 the panic point sits after the snapshot of the
	// record just processed, so every restart resumes exactly where the
	// crash happened and the alert stream must match the reference
	// bit for bit.
	in := faultinject.New(7)
	in.Set(faultinject.ShardPanic, faultinject.Plan{Every: 500, Panic: true})
	s := New(meta, Config{
		Shards:        1,
		History:       1 << 16,
		Window:        30 * time.Minute,
		SnapshotEvery: 1,
		Inject:        in,
	})
	defer s.Close()

	third := len(tail) / 3
	for _, bounds := range [][2]int{{0, third}, {third, 2 * third}, {2 * third, len(tail)}} {
		chunk := tail[bounds[0]:bounds[1]]
		resp := post(t, s, encode(t, chunk))
		if resp.Accepted != int64(len(chunk)) {
			t.Fatalf("accepted %d of %d", resp.Accepted, len(chunk))
		}
	}

	if restarts := s.Restarts(); restarts == 0 {
		t.Fatal("no supervisor restarts despite the armed panic point")
	} else if want := int64(len(tail) / 500); restarts != want {
		t.Fatalf("restarts = %d, want %d (Every=500 over %d records)", restarts, want, len(tail))
	}

	got := getAlerts(t, s)
	if got.TotalAlerts != int64(len(direct)) {
		t.Fatalf("faulty run raised %d alerts, fault-free reference %d", got.TotalAlerts, len(direct))
	}
	for i, a := range got.Recent {
		w := direct[i]
		if !a.At.Equal(w.At) || a.Source != w.Source || !a.End.Equal(w.End) || a.Confidence != w.Confidence {
			t.Fatalf("alert %d diverged after restarts:\n got %+v\nwant %+v", i, a, w)
		}
	}

	// healthz must never have flagged the panics as unhealth — the
	// service stayed alive throughout; restarts are reported.
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz after restarts: %d", rec.Code)
	}
	var hz struct {
		Status        string `json:"status"`
		ShardRestarts int64  `json:"shard_restarts"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.ShardRestarts != s.Restarts() {
		t.Fatalf("healthz = %+v", hz)
	}
}

func TestInjectedCorruptionQuarantinesDeterministically(t *testing.T) {
	meta, tail := fixture(t)
	in := faultinject.New(7)
	// Fires on the 10th, 20th and 30th decoded record, then goes quiet.
	in.Set(faultinject.IngestCorrupt, faultinject.Plan{Every: 10, Times: 3})
	s := New(meta, Config{Shards: 2, Window: 30 * time.Minute, Inject: in})
	defer s.Close()

	n := 100
	resp := post(t, s, encode(t, tail[:n]))
	if resp.Quarantined != 3 || resp.Accepted != int64(n-3) {
		t.Fatalf("resp = %+v, want 3 quarantined of %d", resp, n)
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/quarantine", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var q QuarantineResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &q); err != nil {
		t.Fatal(err)
	}
	if q.Total != 3 {
		t.Fatalf("quarantine total = %d, want 3", q.Total)
	}
	for _, r := range q.Recent {
		if !strings.Contains(r.Cause, "serve.ingest.corrupt") {
			t.Fatalf("cause = %q, want the fault point name", r.Cause)
		}
	}
}

func TestSaturatedShardShedsWith429(t *testing.T) {
	meta, tail := fixture(t)
	in := faultinject.New(7)
	// Each record takes 100 ms on the single shard; queue depth 1 and
	// immediate shedding mean the third in-flight record is refused.
	in.Set(faultinject.ShardSlow, faultinject.Plan{Delay: 100 * time.Millisecond})
	s := New(meta, Config{
		Shards:      1,
		QueueDepth:  1,
		Window:      30 * time.Minute,
		ShedTimeout: -1,
		Inject:      in,
	})
	defer s.Close()

	req := httptest.NewRequest(http.MethodPost, "/v1/ingest", strings.NewReader(string(encode(t, tail[:10]))))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", rec.Code, rec.Body.String())
	}
	var resp IngestResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error == "" || resp.Accepted == 0 || resp.Accepted >= 10 {
		t.Fatalf("resp = %+v; a shed reply reports the partial acceptance", resp)
	}

	// The shed flips the service into degraded mode on /healthz...
	hreq := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	hrec := httptest.NewRecorder()
	s.ServeHTTP(hrec, hreq)
	if hrec.Code != http.StatusOK {
		t.Fatalf("healthz status %d (degraded is not dead)", hrec.Code)
	}
	var hz struct {
		Status   string `json:"status"`
		Degraded bool   `json:"degraded"`
	}
	if err := json.Unmarshal(hrec.Body.Bytes(), &hz); err != nil {
		t.Fatal(err)
	}
	if !hz.Degraded || hz.Status != "degraded" {
		t.Fatalf("healthz = %+v, want degraded after a shed", hz)
	}

	// ...and onto /metrics.
	mreq := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	mrec := httptest.NewRecorder()
	s.ServeHTTP(mrec, mreq)
	body := mrec.Body.String()
	if !strings.Contains(body, "bglserved_shed_total 1") {
		t.Fatalf("metrics missing shed counter:\n%s", body)
	}
	if !strings.Contains(body, "bglserved_degraded 1") {
		t.Fatal("metrics missing degraded gauge")
	}
}

func TestRequestDeadlineBoundsQueueWait(t *testing.T) {
	meta, tail := fixture(t)
	in := faultinject.New(7)
	in.Set(faultinject.ShardSlow, faultinject.Plan{Delay: 200 * time.Millisecond})
	s := New(meta, Config{
		Shards:         1,
		QueueDepth:     1,
		Window:         30 * time.Minute,
		RequestTimeout: 100 * time.Millisecond,
		ShedTimeout:    10 * time.Second, // longer than the deadline: the deadline must win
		Inject:         in,
	})
	defer s.Close()

	start := time.Now()
	req := httptest.NewRequest(http.MethodPost, "/v1/ingest", strings.NewReader(string(encode(t, tail[:10]))))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	elapsed := time.Since(start)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 on deadline: %s", rec.Code, rec.Body.String())
	}
	if elapsed > 5*time.Second {
		t.Fatalf("request took %v; the deadline did not bound the queue wait", elapsed)
	}
	var resp IngestResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Error, "deadline") {
		t.Fatalf("resp.Error = %q, want a deadline explanation", resp.Error)
	}
}

func TestSSEHeartbeatAndDisconnectCleanup(t *testing.T) {
	meta, _ := fixture(t)
	s := New(meta, Config{Shards: 1, Window: 30 * time.Minute, StreamHeartbeat: 30 * time.Millisecond})
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/alerts/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	if got := s.broker.subscribers(); got != 1 {
		t.Fatalf("subscribers = %d after connect, want 1", got)
	}

	// With no alerts flowing, the quiet stream must still carry
	// periodic heartbeat comments.
	hb := make(chan string, 16)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, ":") {
				select {
				case hb <- line:
				default:
				}
			}
		}
	}()
	var beats int
	deadline := time.After(5 * time.Second)
	for beats < 3 {
		select {
		case line := <-hb:
			if line == ": hb" {
				beats++
			}
		case <-deadline:
			t.Fatalf("saw %d heartbeats in 5s at a 30ms interval", beats)
		}
	}

	// Client disconnect: the handler must notice and unsubscribe.
	cancel()
	resp.Body.Close()
	cleanupDeadline := time.Now().Add(5 * time.Second)
	for s.broker.subscribers() != 0 {
		if time.Now().After(cleanupDeadline) {
			t.Fatalf("subscribers = %d after disconnect, want 0", s.broker.subscribers())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
