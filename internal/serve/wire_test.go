package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"bglpred/internal/raslog"
)

// encodeWire renders events as binary wire frames.
func encodeWire(t *testing.T, events []raslog.Event) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := raslog.NewWireWriter(&buf)
	for i := range events {
		if err := w.Write(&events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// postWire ingests a binary wire body through the handler.
func postWire(t *testing.T, s *Server, body []byte) IngestResponse {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/v1/ingest", bytes.NewReader(body))
	req.Header.Set("Content-Type", raslog.WireContentType)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("wire ingest: status %d: %s", rec.Code, rec.Body.String())
	}
	var resp IngestResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// alertsJSON fetches the raw /v1/alerts body for byte-level compare.
func alertsJSON(t *testing.T, s *Server) []byte {
	t.Helper()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/alerts", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("alerts: status %d", rec.Code)
	}
	return rec.Body.Bytes()
}

// TestWireIngestMatchesTextIngest is the serve-level differential: the
// same held-out tail through the text path and the binary wire path
// must produce byte-equal /v1/alerts bodies — the wire is an encoding
// of the same stream, not a second ingestion semantics. A single shard
// makes the whole body deterministic (one engine, one alert order);
// the 4-shard leg compares each shard's alert subsequence, since the
// merged ring's cross-shard interleaving is scheduling-dependent on
// the text path too.
func TestWireIngestMatchesTextIngest(t *testing.T) {
	meta, tail := fixture(t)

	feed := func(srv *Server, wire bool) {
		t.Helper()
		// Several requests each, crossing request and frame boundaries.
		third := len(tail) / 3
		for _, chunk := range [][]raslog.Event{tail[:third], tail[third : 2*third], tail[2*third:]} {
			var resp IngestResponse
			if wire {
				resp = postWire(t, srv, encodeWire(t, chunk))
			} else {
				resp = post(t, srv, encode(t, chunk))
			}
			if resp.Accepted != int64(len(chunk)) || resp.Quarantined != 0 {
				t.Fatalf("wire=%v: accepted %d of %d, quarantined %d", wire, resp.Accepted, len(chunk), resp.Quarantined)
			}
		}
	}

	// Leg 1: one shard, whole-body byte equality.
	textSrv := New(meta, Config{Shards: 1, History: 1 << 16, Window: 30 * time.Minute})
	wireSrv := New(meta, Config{Shards: 1, History: 1 << 16, Window: 30 * time.Minute})
	defer textSrv.Close()
	defer wireSrv.Close()
	feed(textSrv, false)
	feed(wireSrv, true)
	if len(getAlerts(t, textSrv).Recent) == 0 {
		t.Fatal("text path raised no alerts; the differential is vacuous")
	}
	gotText, gotWire := alertsJSON(t, textSrv), alertsJSON(t, wireSrv)
	if !bytes.Equal(gotText, gotWire) {
		t.Fatalf("single-shard alert bodies diverge:\ntext %s\nwire %s", gotText, gotWire)
	}

	// Leg 2: four shards, per-shard subsequence equality (seq is a
	// global arrival stamp, so it is masked before comparing).
	textSh := New(meta, Config{Shards: 4, History: 1 << 16, Window: 30 * time.Minute})
	wireSh := New(meta, Config{Shards: 4, History: 1 << 16, Window: 30 * time.Minute})
	defer textSh.Close()
	defer wireSh.Close()
	feed(textSh, false)
	feed(wireSh, true)
	perShard := func(srv *Server) map[int][]string {
		out := make(map[int][]string)
		for _, a := range getAlerts(t, srv).Recent {
			a.Seq = 0
			b, err := json.Marshal(a)
			if err != nil {
				t.Fatal(err)
			}
			out[a.Shard] = append(out[a.Shard], string(b))
		}
		return out
	}
	wantBy, gotBy := perShard(textSh), perShard(wireSh)
	if len(wantBy) < 2 {
		t.Fatalf("alerts landed on %d shards; the sharded leg is degenerate", len(wantBy))
	}
	for sh, want := range wantBy {
		got := gotBy[sh]
		if len(got) != len(want) {
			t.Fatalf("shard %d: wire raised %d alerts, text %d", sh, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shard %d alert %d diverges:\ntext %s\nwire %s", sh, i, want[i], got[i])
			}
		}
	}
}

// TestWireIngestQuarantinesCorruptRecords pins the lenient wire path:
// an undecodable event record inside an otherwise-valid frame is
// quarantined and counted, never dropped, and never kills the frame's
// other records.
func TestWireIngestQuarantinesCorruptRecords(t *testing.T) {
	meta, tail := fixture(t)
	s := New(meta, Config{Shards: 2, History: 1 << 16, Window: 30 * time.Minute})
	defer s.Close()

	n := 20
	body := encodeWire(t, tail[:n])
	evil := []byte{raslog.WireTagEvent, 1, 0xEE}
	frame := raslog.AppendWireFrameHeader(nil, 0, 0, len(evil))
	frame = append(frame, evil...)
	body = append(body, frame...)

	resp := postWire(t, s, body)
	if resp.Accepted != int64(n) {
		t.Fatalf("accepted %d, want the %d valid records", resp.Accepted, n)
	}
	if resp.Quarantined != 1 {
		t.Fatalf("quarantined %d, want the 1 corrupt record", resp.Quarantined)
	}

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/quarantine", nil))
	var q QuarantineResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &q); err != nil {
		t.Fatal(err)
	}
	if q.Total != 1 {
		t.Fatalf("quarantine total %d, want 1", q.Total)
	}
}

// TestWireIngestRejectsCorruptFrame pins frame-level strictness: a
// body whose frame header lies fails the request with a 400 after the
// preceding intact frames were ingested.
func TestWireIngestRejectsCorruptFrame(t *testing.T) {
	meta, tail := fixture(t)
	s := New(meta, Config{Shards: 1, History: 1 << 16, Window: 30 * time.Minute})
	defer s.Close()

	n := 10
	body := encodeWire(t, tail[:n])
	body = append(body, []byte("GARBAGE-NOT-A-FRAME")...)

	req := httptest.NewRequest(http.MethodPost, "/v1/ingest", bytes.NewReader(body))
	req.Header.Set("Content-Type", raslog.WireContentType)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("corrupt frame: status %d, want 400", rec.Code)
	}
	var resp IngestResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != int64(n) {
		t.Fatalf("accepted %d of the %d records before the corruption", resp.Accepted, n)
	}
	if resp.Error == "" {
		t.Fatal("response lacks the stream-level error")
	}
}
