package serve

import (
	"fmt"
	"net/http"
	"time"

	"bglpred/internal/online"
	"bglpred/internal/predictor"
)

// ModelInfo identifies the trained model a server is currently serving
// with. It is the RCU-published half of a hot-swap: readers
// (/v1/model, /metrics, /healthz) load the pointer without touching
// the engines.
type ModelInfo struct {
	// Version counts model generations in this process: 1 is the model
	// the server started with, and every hot-swap increments it.
	Version int64 `json:"version"`
	// SHA256 is the hex payload hash of the model artifact, when the
	// model came from (or was saved to) one; empty for a model trained
	// in memory and never persisted.
	SHA256 string `json:"sha256,omitempty"`
	// TrainedAt is when training finished.
	TrainedAt time.Time `json:"trained_at,omitempty"`
	// LoadedAt is when this server started serving with the model.
	LoadedAt time.Time `json:"loaded_at"`
	// Source describes the training data.
	Source string `json:"source,omitempty"`
	// Rules is the mined rule count, a quick sanity signal.
	Rules int `json:"rules"`
	// Predictors names the base predictors the model's meta-learner
	// arbitrates over, in arbitration order (registry names). New and
	// SwapModel fill it from the meta-learner when left nil.
	Predictors []string `json:"predictors,omitempty"`
}

// ModelResponse is the body of a GET /v1/model reply.
type ModelResponse struct {
	ModelInfo
	// AgeSeconds is time since LoadedAt.
	AgeSeconds float64 `json:"age_seconds"`
	// Swaps counts completed hot-swaps since startup.
	Swaps int64 `json:"swaps"`
}

// Model returns the currently served model's identity.
func (s *Server) Model() ModelInfo { return *s.model.Load() }

// Swaps returns the number of completed model hot-swaps.
func (s *Server) Swaps() int64 { return s.swaps.Load() }

// SwapModel hot-swaps a new trained meta-learner into every shard and
// publishes its identity. Each engine transplants its observation
// window and standing alarm onto the new model between two records, so
// concurrent ingestion loses nothing and no duplicate alarms are
// raised; the swap is complete when SwapModel returns. info.Version is
// assigned by the server (previous version + 1).
func (s *Server) SwapModel(meta *predictor.Meta, info ModelInfo) ModelInfo {
	// Publish the meta before touching engines, so a shard supervisor
	// rebuilding concurrently never resurrects the outgoing model.
	s.meta.Store(meta)
	for _, sh := range s.shards {
		sh.engine().SwapModel(meta)
	}
	info.Version = s.model.Load().Version + 1
	if info.LoadedAt.IsZero() {
		info.LoadedAt = time.Now()
	}
	if info.Predictors == nil {
		info.Predictors = meta.BaseNames()
	}
	s.model.Store(&info)
	s.swaps.Add(1)
	return info
}

// ExportShards snapshots every shard engine's mutable state, indexed
// by shard ID — the serving half of a checkpoint. Each shard's state
// is internally consistent; with concurrent ingestion, shards may be
// captured at slightly different stream positions, which is sound
// because shards process disjoint substreams.
func (s *Server) ExportShards() []online.State {
	out := make([]online.State, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.engine().State()
	}
	return out
}

// RestoreShards installs previously exported shard states, shard by
// shard. It must run before the server has ingested anything (i.e. at
// daemon startup), and the shard count must match the checkpoint's.
func (s *Server) RestoreShards(states []online.State) error {
	if len(states) != len(s.shards) {
		return fmt.Errorf("serve: checkpoint holds %d shard states, server runs %d shards (restart with -shards matching the checkpoint, or discard it)",
			len(states), len(s.shards))
	}
	for i, sh := range s.shards {
		if err := sh.engine().Restore(states[i]); err != nil {
			return err
		}
		// The restored state is also the supervisor's first known-good
		// snapshot: a panic before the first periodic snapshot must fall
		// back to the checkpoint, not to a cold engine.
		st := states[i]
		sh.lastGood.Store(&st)
	}
	return nil
}

// handleModel serves GET /v1/model (identity and age of the serving
// model) and dispatches POST /v1/model/reload via handleModelReload.
func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	info := s.Model()
	writeJSON(w, http.StatusOK, ModelResponse{
		ModelInfo:  info,
		AgeSeconds: time.Since(info.LoadedAt).Seconds(),
		Swaps:      s.swaps.Load(),
	})
}

// handleModelReload serves POST /v1/model/reload: it invokes the
// configured reload hook (retrain-now, or re-read the artifact from
// disk — the daemon decides) and replies with the model that is
// serving afterwards.
func (s *Server) handleModelReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.cfg.Reload == nil {
		http.Error(w, "no reload hook configured (start with -load-model or -retrain-interval)", http.StatusNotImplemented)
		return
	}
	if err := s.cfg.Reload(); err != nil {
		http.Error(w, "reload: "+err.Error(), http.StatusInternalServerError)
		return
	}
	info := s.Model()
	writeJSON(w, http.StatusOK, ModelResponse{
		ModelInfo:  info,
		AgeSeconds: time.Since(info.LoadedAt).Seconds(),
		Swaps:      s.swaps.Load(),
	})
}
