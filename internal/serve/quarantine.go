package serve

import (
	"net/http"
	"sync"
	"time"
)

// rawSnippet bounds how much of an offending line the quarantine
// keeps: enough to diagnose, too little to let a hostile payload bloat
// the ring.
const rawSnippet = 256

// QuarantinedRecord is one malformed (or fault-injected-corrupt)
// ingest line parked for inspection instead of failing its batch.
type QuarantinedRecord struct {
	// Seq is the lifetime quarantine sequence number (monotonic).
	Seq int64 `json:"seq"`
	// At is when the record was quarantined.
	At time.Time `json:"at"`
	// Line is the 1-based line number within the request body that
	// carried the record (0 when the record decoded but was rejected
	// later, e.g. by an injected corruption fault).
	Line int64 `json:"line,omitempty"`
	// Raw is the offending text, truncated to a diagnostic snippet.
	Raw string `json:"raw"`
	// Cause is why the record could not be accepted.
	Cause string `json:"cause"`
}

// QuarantineResponse is the body of a GET /v1/quarantine reply.
type QuarantineResponse struct {
	// Total counts every record ever quarantined; the ring may have
	// evicted older entries.
	Total int64 `json:"total"`
	// Dropped counts entries evicted from the ring to make room —
	// records that were quarantined but can no longer be inspected
	// here. Nonzero means the ring is undersized for the error rate.
	Dropped int64 `json:"dropped,omitempty"`
	// Recent is the bounded ring of the newest entries, oldest first.
	Recent []QuarantinedRecord `json:"recent"`
}

// quarantineLog is the bounded ring of malformed ingest records, same
// shape as alertLog: lifetime total plus the newest capacity entries.
type quarantineLog struct {
	mu      sync.Mutex
	buf     []QuarantinedRecord
	cap     int
	next    int64
	dropped int64 // entries evicted by the ring on overflow
}

func (q *quarantineLog) init(capacity int) {
	q.cap = capacity
	q.buf = make([]QuarantinedRecord, 0, capacity)
}

func (q *quarantineLog) add(line int64, raw string, cause error) {
	if len(raw) > rawSnippet {
		raw = raw[:rawSnippet]
	}
	rec := QuarantinedRecord{
		At:    time.Now(),
		Line:  line,
		Raw:   raw,
		Cause: cause.Error(),
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	rec.Seq = q.next
	if len(q.buf) < q.cap {
		q.buf = append(q.buf, rec)
	} else {
		// Overwriting the oldest entry loses it for inspection; count
		// the eviction instead of letting it happen silently.
		q.buf[q.next%int64(q.cap)] = rec
		q.dropped++
	}
	q.next++
}

func (q *quarantineLog) droppedCount() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.dropped
}

func (q *quarantineLog) total() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.next
}

func (q *quarantineLog) snapshot() ([]QuarantinedRecord, int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]QuarantinedRecord, 0, len(q.buf))
	if len(q.buf) < q.cap {
		out = append(out, q.buf...)
	} else {
		head := q.next % int64(q.cap)
		out = append(out, q.buf[head:]...)
		out = append(out, q.buf[:head]...)
	}
	return out, q.next
}

// handleQuarantine serves GET /v1/quarantine: the recent malformed
// ingest records and the lifetime count, for debugging upstream
// producers without scraping server logs.
func (s *Server) handleQuarantine(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	var resp QuarantineResponse
	resp.Recent, resp.Total = s.quarantine.snapshot()
	resp.Dropped = s.quarantine.droppedCount()
	writeJSON(w, http.StatusOK, resp)
}
