package eval

import (
	"sort"
	"time"

	"bglpred/internal/catalog"
	"bglpred/internal/predictor"
	"bglpred/internal/preprocess"
	"bglpred/internal/stats"
)

// This file extends the paper's precision/recall scoring with two
// analyses operators of a deployed predictor need: how much advance
// notice each correct prediction gives (the actionability the paper's
// 5-minute floor gestures at), and which failure categories the
// predictions actually cover.

// LeadTimes returns, for every predicted fatal event, the lead between
// the earliest covering warning's trigger (Warning.At) and the
// failure — the time a fault tolerance mechanism has to act.
func LeadTimes(warnings []predictor.Warning, events []preprocess.Event) []time.Duration {
	type fatal struct {
		at   time.Time
		lead time.Duration
		hit  bool
	}
	var fatals []fatal
	for i := range events {
		if events[i].Sub.IsFatal() {
			fatals = append(fatals, fatal{at: events[i].Time})
		}
	}
	for i := range warnings {
		w := &warnings[i]
		idx := sort.Search(len(fatals), func(k int) bool { return fatals[k].at.After(w.Start) })
		for k := idx; k < len(fatals) && !fatals[k].at.After(w.End); k++ {
			lead := fatals[k].at.Sub(w.At)
			if !fatals[k].hit || lead > fatals[k].lead {
				// Earliest covering warning = longest lead.
				fatals[k].hit = true
				fatals[k].lead = lead
			}
		}
	}
	var out []time.Duration
	for _, f := range fatals {
		if f.hit {
			out = append(out, f.lead)
		}
	}
	return out
}

// LeadCDF wraps LeadTimes into an empirical distribution.
func LeadCDF(warnings []predictor.Warning, events []preprocess.Event) *stats.CDF {
	return stats.NewCDF(LeadTimes(warnings, events))
}

// CategoryOutcome is the per-main-category slice of an evaluation.
type CategoryOutcome struct {
	Category catalog.Main
	// Total and Predicted count this category's fatal events and how
	// many were covered by a warning.
	Total     int
	Predicted int
	// BySource counts covered events by the source of the earliest
	// covering warning ("rule" or "statistical") — which base method
	// the coverage came from.
	BySource map[string]int
}

// Recall returns the per-category recall.
func (c CategoryOutcome) Recall() float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(c.Predicted) / float64(c.Total)
}

// ByCategory breaks recall down per main category — the analysis
// behind the paper's observation that the statistical method covers
// only network and I/O-stream failures while rules reach the
// precursor-rich categories.
func ByCategory(warnings []predictor.Warning, events []preprocess.Event) []CategoryOutcome {
	type fatal struct {
		at     time.Time
		main   catalog.Main
		hit    bool
		source string
		lead   time.Duration
	}
	var fatals []fatal
	for i := range events {
		if events[i].Sub.IsFatal() {
			fatals = append(fatals, fatal{at: events[i].Time, main: events[i].Sub.Main})
		}
	}
	for i := range warnings {
		w := &warnings[i]
		idx := sort.Search(len(fatals), func(k int) bool { return fatals[k].at.After(w.Start) })
		for k := idx; k < len(fatals) && !fatals[k].at.After(w.End); k++ {
			lead := fatals[k].at.Sub(w.At)
			if !fatals[k].hit || lead > fatals[k].lead {
				fatals[k].hit = true
				fatals[k].lead = lead
				fatals[k].source = w.Source
			}
		}
	}
	by := make(map[catalog.Main]*CategoryOutcome)
	for _, f := range fatals {
		co := by[f.main]
		if co == nil {
			co = &CategoryOutcome{Category: f.main, BySource: make(map[string]int)}
			by[f.main] = co
		}
		co.Total++
		if f.hit {
			co.Predicted++
			co.BySource[f.source]++
		}
	}
	out := make([]CategoryOutcome, 0, len(by))
	for _, m := range catalog.Mains() {
		if co, ok := by[m]; ok {
			out = append(out, *co)
		}
	}
	return out
}
