// Package eval measures prediction accuracy the way the paper does:
// precision and recall under n-fold cross-validation (paper §3.2),
// swept over prediction windows from 5 minutes to 1 hour (Figures 4
// and 5).
//
// Matching semantics: a warning is a true positive when at least one
// fatal event falls in its (Start, End] interval, otherwise a false
// positive; a fatal event is predicted (counts toward recall) when at
// least one warning interval contains it. Precision = TP / warnings,
// recall = predicted fatals / fatals.
package eval

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"bglpred/internal/predictor"
	"bglpred/internal/preprocess"
)

// Outcome aggregates one evaluation run.
type Outcome struct {
	// Warnings is the number of predictions issued.
	Warnings int
	// TruePositive counts warnings whose interval contains a fatal.
	TruePositive int
	// FalsePositive counts warnings whose interval contains none.
	FalsePositive int
	// TotalFatal is the number of fatal events in the test stream.
	TotalFatal int
	// PredictedFatal counts fatal events covered by some warning.
	PredictedFatal int
}

// Precision returns TruePositive / Warnings (0 when no warnings).
func (o Outcome) Precision() float64 {
	if o.Warnings == 0 {
		return 0
	}
	return float64(o.TruePositive) / float64(o.Warnings)
}

// Recall returns PredictedFatal / TotalFatal (0 when no fatals).
func (o Outcome) Recall() float64 {
	if o.TotalFatal == 0 {
		return 0
	}
	return float64(o.PredictedFatal) / float64(o.TotalFatal)
}

// F1 returns the harmonic mean of precision and recall.
func (o Outcome) F1() float64 {
	p, r := o.Precision(), o.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Add accumulates counts from another outcome.
func (o *Outcome) Add(other Outcome) {
	o.Warnings += other.Warnings
	o.TruePositive += other.TruePositive
	o.FalsePositive += other.FalsePositive
	o.TotalFatal += other.TotalFatal
	o.PredictedFatal += other.PredictedFatal
}

// String renders the outcome compactly.
func (o Outcome) String() string {
	return fmt.Sprintf("precision=%.4f recall=%.4f (tp=%d fp=%d fatal=%d/%d)",
		o.Precision(), o.Recall(), o.TruePositive, o.FalsePositive,
		o.PredictedFatal, o.TotalFatal)
}

// Match scores warnings against the fatal events of a test stream.
func Match(warnings []predictor.Warning, events []preprocess.Event) Outcome {
	var fatals []time.Time
	for i := range events {
		if events[i].Sub.IsFatal() {
			fatals = append(fatals, events[i].Time)
		}
	}
	return MatchTimes(warnings, fatals)
}

// MatchTimes scores warnings against sorted fatal timestamps.
func MatchTimes(warnings []predictor.Warning, fatals []time.Time) Outcome {
	o := Outcome{Warnings: len(warnings), TotalFatal: len(fatals)}
	covered := make([]bool, len(fatals))
	for i := range warnings {
		w := &warnings[i]
		idx := sort.Search(len(fatals), func(k int) bool { return fatals[k].After(w.Start) })
		hit := false
		for k := idx; k < len(fatals) && !fatals[k].After(w.End); k++ {
			covered[k] = true
			hit = true
		}
		if hit {
			o.TruePositive++
		} else {
			o.FalsePositive++
		}
	}
	for _, c := range covered {
		if c {
			o.PredictedFatal++
		}
	}
	return o
}

// CVResult is an n-fold cross-validation result.
type CVResult struct {
	// Folds holds each fold's outcome in fold order.
	Folds []Outcome
	// MeanPrecision and MeanRecall average the per-fold metrics, the
	// paper's reporting convention; folds that issued no warnings
	// contribute zero precision.
	MeanPrecision float64
	MeanRecall    float64
	// Pooled aggregates raw counts across folds (micro-average).
	Pooled Outcome
}

// StddevPrecision returns the fold-to-fold standard deviation of
// precision — the error bar on MeanPrecision.
func (r CVResult) StddevPrecision() float64 {
	return stddevOf(r.Folds, Outcome.Precision, r.MeanPrecision)
}

// StddevRecall returns the fold-to-fold standard deviation of recall.
func (r CVResult) StddevRecall() float64 {
	return stddevOf(r.Folds, Outcome.Recall, r.MeanRecall)
}

func stddevOf(folds []Outcome, metric func(Outcome) float64, mean float64) float64 {
	if len(folds) == 0 {
		return 0
	}
	var ss float64
	for _, o := range folds {
		d := metric(o) - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(folds)))
}

// CrossValidate runs the paper's n-fold protocol: the unique-event
// stream is cut into n contiguous, equally sized folds; each fold in
// turn is the test set while the remaining folds form the training
// set. Folds run concurrently, each on a fresh predictor from the
// factory.
//
// When the predictor implements predictor.SegmentedTrainer, the two
// remaining pieces (before and after the test fold) are passed as
// separate training segments, so no training window spans the excised
// fold. A predictor that only implements Train receives the pieces
// concatenated; because events carry timestamps, windows formed across
// that seam pair events that are really a fold apart — precursor sets
// that never co-occurred. All predictors in this module implement
// SegmentedTrainer; the fallback remains for external ones.
func CrossValidate(events []preprocess.Event, folds int, factory predictor.Factory, window time.Duration) (CVResult, error) {
	if folds < 2 {
		return CVResult{}, fmt.Errorf("eval: need at least 2 folds, got %d", folds)
	}
	if len(events) < folds {
		return CVResult{}, fmt.Errorf("eval: %d events cannot fill %d folds", len(events), folds)
	}
	bounds := foldBounds(len(events), folds)
	outcomes := make([]Outcome, folds)
	errs := make([]error, folds)
	var wg sync.WaitGroup
	for f := 0; f < folds; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			lo, hi := bounds[f], bounds[f+1]
			test := events[lo:hi]
			p := factory()
			if err := trainExcising(p, events, lo, hi); err != nil {
				errs[f] = fmt.Errorf("fold %d: %w", f, err)
				return
			}
			outcomes[f] = Match(p.Predict(test, window), test)
		}(f)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return CVResult{}, err
		}
	}
	res := CVResult{Folds: outcomes}
	for _, o := range outcomes {
		res.MeanPrecision += o.Precision()
		res.MeanRecall += o.Recall()
		res.Pooled.Add(o)
	}
	res.MeanPrecision /= float64(folds)
	res.MeanRecall /= float64(folds)
	return res, nil
}

// trainExcising trains p on events with [lo, hi) removed, preserving
// the segment boundary when p supports it.
func trainExcising(p predictor.Predictor, events []preprocess.Event, lo, hi int) error {
	var segments [][]preprocess.Event
	if lo > 0 {
		segments = append(segments, events[:lo])
	}
	if hi < len(events) {
		segments = append(segments, events[hi:])
	}
	if st, ok := p.(predictor.SegmentedTrainer); ok {
		return st.TrainSegments(segments)
	}
	if len(segments) == 1 {
		return p.Train(segments[0])
	}
	train := make([]preprocess.Event, 0, len(events)-(hi-lo))
	train = append(train, events[:lo]...)
	train = append(train, events[hi:]...)
	return p.Train(train)
}

// foldBounds cuts n items into `folds` contiguous slices; bounds has
// folds+1 entries.
func foldBounds(n, folds int) []int {
	bounds := make([]int, folds+1)
	for f := 0; f <= folds; f++ {
		bounds[f] = f * n / folds
	}
	return bounds
}

// SweepPoint is one (window, result) pair of a prediction-window sweep.
type SweepPoint struct {
	Window time.Duration
	Result CVResult
}

// WindowSweep cross-validates the factory's predictor at each
// prediction window — the x-axis of paper Figures 4 and 5. Windows
// run concurrently (each already fans out per fold); results come
// back in window order, and the first failing window's error wins.
func WindowSweep(events []preprocess.Event, folds int, factory predictor.Factory, windows []time.Duration) ([]SweepPoint, error) {
	out := make([]SweepPoint, len(windows))
	errs := make([]error, len(windows))
	var wg sync.WaitGroup
	for i, w := range windows {
		wg.Add(1)
		go func(i int, w time.Duration) {
			defer wg.Done()
			res, err := CrossValidate(events, folds, factory, w)
			if err != nil {
				errs[i] = err
				return
			}
			out[i] = SweepPoint{Window: w, Result: res}
		}(i, w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// PaperWindows returns the paper's prediction windows: 5 to 60
// minutes.
func PaperWindows() []time.Duration {
	var out []time.Duration
	for m := 5; m <= 60; m += 5 {
		out = append(out, time.Duration(m)*time.Minute)
	}
	return out
}
